// A persistent concurrent queue (Michael & Scott's two-lock algorithm, the
// paper's `queue` micro-benchmark) driven by several threads, comparing the
// flush traffic of the six persistence techniques. Per-thread software
// caches need no locks and do not affect scalability (paper Section II-B).
#include <cstdio>
#include <mutex>

#include "common/barrier.hpp"
#include "common/stopwatch.hpp"
#include "runtime/runtime.hpp"

namespace {

struct Node {
  std::uint64_t value;
  Node* next;
};

struct Queue {
  alignas(nvc::kCacheLineSize) Node* head;
  alignas(nvc::kCacheLineSize) Node* tail;
  std::mutex head_lock;
  std::mutex tail_lock;
};

void enqueue(nvc::runtime::Runtime& rt, Queue& q, std::uint64_t value) {
  auto* node = rt.pm_new<Node>();
  std::lock_guard<std::mutex> guard(q.tail_lock);
  nvc::runtime::FaseScope fase(rt);
  rt.pstore(node->value, value);
  rt.pstore(node->next, static_cast<Node*>(nullptr));
  rt.pstore(q.tail->next, node);
  rt.pstore(q.tail, node);
}

bool dequeue(nvc::runtime::Runtime& rt, Queue& q, std::uint64_t* out) {
  std::lock_guard<std::mutex> guard(q.head_lock);
  Node* old_head = q.head;
  Node* new_head = old_head->next;
  if (new_head == nullptr) return false;
  *out = new_head->value;
  nvc::runtime::FaseScope fase(rt);
  rt.pstore(q.head, new_head);
  return true;
}

}  // namespace

int main() {
  using namespace nvc;
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kOpsPerThread = 20000;

  for (const auto policy :
       {core::PolicyKind::kEager, core::PolicyKind::kLazy,
        core::PolicyKind::kAtlas, core::PolicyKind::kSoftCache,
        core::PolicyKind::kBest}) {
    runtime::RuntimeConfig config;
    config.region_name = "example-queue";
    config.region_size = 64u << 20;
    config.policy = policy;
    runtime::Runtime rt(config);

    // The queue anchors live in persistent memory; the locks are transient.
    auto* q = new (rt.pm_alloc(sizeof(Queue))) Queue();
    auto* dummy = rt.pm_new<Node>();
    {
      runtime::FaseScope fase(rt);
      rt.pstore(dummy->value, std::uint64_t{0});
      rt.pstore(dummy->next, static_cast<Node*>(nullptr));
      rt.pstore(q->head, dummy);
      rt.pstore(q->tail, dummy);
    }

    Stopwatch timer;
    ThreadTeam::run(kThreads, [&](std::size_t tid) {
      std::uint64_t popped = 0;
      for (std::uint64_t i = 0; i < kOpsPerThread; ++i) {
        enqueue(rt, *q, tid * kOpsPerThread + i);
        if ((i & 1u) != 0) dequeue(rt, *q, &popped);
      }
    });
    const double seconds = timer.seconds();

    const auto stats = rt.stats();
    std::printf("%-11s %7.0f ops/ms  stores=%-8llu flushes=%-8llu "
                "flush_ratio=%.3f\n",
                core::to_string(policy),
                static_cast<double>(kThreads * kOpsPerThread) /
                    (seconds * 1e3),
                static_cast<unsigned long long>(stats.stores),
                static_cast<unsigned long long>(stats.flushes),
                stats.flush_ratio());
    q->~Queue();
    rt.destroy_storage();
  }
  return 0;
}
