// A durable key-value store in ~60 lines of application code: the MDB-style
// copy-on-write B+-tree running on the FASE runtime. Write transactions are
// failure-atomic sections; snapshot readers run in parallel with the writer.
#include <cstdio>

#include "mdb/btree.hpp"
#include "runtime/runtime.hpp"
#include "workloads/api.hpp"

int main() {
  using namespace nvc;

  runtime::RuntimeConfig config;
  config.region_name = "example-kv";
  config.region_size = 128u << 20;
  config.policy = core::PolicyKind::kSoftCache;  // adaptive write caching
  runtime::Runtime rt(config);
  workloads::RuntimeApi api(rt);

  mdb::Db db(api, /*max_pages=*/2048);

  // Insert some pairs in small durable transactions.
  for (mdb::Key batch = 0; batch < 100; ++batch) {
    auto txn = db.begin_write(/*tid=*/0);
    for (mdb::Key k = 0; k < 100; ++k) {
      const mdb::Key key = batch * 100 + k;
      txn.put(key, key * key);
    }
    txn.commit();  // FASE end: buffered lines flushed, commit durable
  }

  // Point lookups against a consistent snapshot.
  auto read = db.begin_read();
  std::printf("count=%zu, get(1234)=%llu, get(424242)=%s\n", read.count(),
              static_cast<unsigned long long>(*read.get(1234)),
              read.get(424242) ? "found" : "absent");

  // Range scan.
  std::printf("keys from 9990: ");
  auto print_pair = [](mdb::Key k, mdb::Value, void*) {
    std::printf("%llu ", static_cast<unsigned long long>(k));
  };
  read.scan(9990, 10, print_pair, nullptr);
  std::printf("\n");

  // A transaction that aborts leaves no trace.
  {
    auto txn = db.begin_write(0);
    txn.put(777777, 1);
    txn.abort();
  }
  std::printf("after abort, get(777777)=%s\n",
              db.begin_read().get(777777) ? "found (BUG)" : "absent");

  // Show what adaptive write caching saved.
  const auto stats = rt.stats();
  std::printf("stores=%llu flushes=%llu flush_ratio=%.3f "
              "(page copies=%llu, reused pages=%llu)\n",
              static_cast<unsigned long long>(stats.stores),
              static_cast<unsigned long long>(stats.flushes),
              stats.flush_ratio(),
              static_cast<unsigned long long>(db.stats().page_copies),
              static_cast<unsigned long long>(db.stats().page_reuses));

  rt.destroy_storage();
  return 0;
}
