// Quickstart: persist data through failure-atomic sections with the
// adaptive software write-combining cache.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "runtime/pvar.hpp"
#include "runtime/runtime.hpp"

int main() {
  using namespace nvc;

  // 1. Configure a runtime: a tmpfs-backed persistent region (the paper's
  //    NVRAM emulation), the adaptive software-cache policy (SC), and
  //    durable undo logging for failure atomicity.
  runtime::RuntimeConfig config;
  config.region_name = "quickstart";
  config.region_size = 16u << 20;
  config.policy = core::PolicyKind::kSoftCache;
  config.undo_logging = true;

  // Re-open the region if a previous run left one behind; recover if that
  // run died inside a FASE.
  config.fresh = !pmem::PmemRegion::exists("quickstart");
  runtime::Runtime rt(config);
  if (rt.needs_recovery()) {
    std::printf("recovering %zu uncommitted undo records\n", rt.recover());
  }

  // 2. Allocate persistent data and find it again across runs via the root.
  struct Counter {
    std::uint64_t runs;
    std::uint64_t total_increments;
  };
  auto* counter = static_cast<Counter*>(rt.get_root());
  if (counter == nullptr) {
    counter = rt.pm_new<Counter>();
    runtime::FaseScope fase(rt);
    rt.pstore(counter->runs, std::uint64_t{0});
    rt.pstore(counter->total_increments, std::uint64_t{0});
    rt.set_root(counter);
  }

  // 3. Mutate persistent state inside FASEs. Each FASE is failure-atomic:
  //    on a crash, either all of its stores survive or none do.
  {
    runtime::FaseScope fase(rt);
    rt.pstore(counter->runs, counter->runs + 1);
  }
  for (int i = 0; i < 1000; ++i) {
    runtime::FaseScope fase(rt);
    rt.pstore(counter->total_increments, counter->total_increments + 1);
  }

  // 4. The software cache combined most of those writes before flushing.
  const runtime::RuntimeStats stats = rt.stats();
  std::printf("run #%llu: total increments ever = %llu\n",
              static_cast<unsigned long long>(counter->runs),
              static_cast<unsigned long long>(counter->total_increments));
  std::printf("persistent stores: %llu, data flushes: %llu (ratio %.3f), "
              "undo-log flushes: %llu\n",
              static_cast<unsigned long long>(stats.stores),
              static_cast<unsigned long long>(stats.flushes),
              stats.flush_ratio(),
              static_cast<unsigned long long>(stats.log_flushes));
  std::printf("run me again: the counter survives process exit.\n");
  return 0;
}
