// Crash recovery, live: this example forks a child process that dies with
// _exit() in the middle of a failure-atomic section, then recovers in the
// parent and shows that the interrupted FASE was rolled back while every
// committed FASE survived. Run it repeatedly — the ledger keeps growing by
// exactly the committed entries.
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

#include "runtime/pcontainers.hpp"
#include "runtime/runtime.hpp"

namespace {

nvc::runtime::RuntimeConfig ledger_config(bool fresh) {
  nvc::runtime::RuntimeConfig config;
  config.region_name = "crash-demo";
  config.region_size = 16u << 20;
  config.fresh = fresh;
  config.undo_logging = true;  // the FASE atomicity mechanism
  config.policy = nvc::core::PolicyKind::kSoftCache;
  return config;
}

}  // namespace

int main() {
  using namespace nvc;

  // Open (or create) the persistent ledger.
  const bool fresh = !pmem::PmemRegion::exists("crash-demo");
  {
    runtime::Runtime rt(ledger_config(fresh));
    if (rt.needs_recovery()) {
      std::printf("[parent] leftover crash detected; recovering %zu records\n",
                  rt.recover());
    }
    if (rt.get_root() == nullptr) {
      auto ledger = runtime::PVector<std::uint64_t>::create(rt, 1024);
      rt.set_root(ledger.root());
    }
  }

  // Child: append two committed entries, then die mid-FASE on a third.
  const pid_t pid = fork();
  if (pid == 0) {
    runtime::Runtime rt(ledger_config(/*fresh=*/false));
    auto ledger =
        runtime::PVector<std::uint64_t>::open(rt, rt.get_root());
    for (std::uint64_t v = 1; v <= 2; ++v) {
      runtime::FaseScope fase(rt);
      ledger.push_back(1000 + ledger.size());
    }
    // The fatal FASE: the push happens, the FASE never ends.
    rt.fase_begin();
    ledger.push_back(999999);  // must NOT survive
    std::printf("[child] wrote a poison entry and crashing now (size=%zu)\n",
                ledger.size());
    ::_exit(1);  // no destructors, no flush, no commit
  }
  int status = 0;
  ::waitpid(pid, &status, 0);

  // Parent: recover and inspect.
  runtime::Runtime rt(ledger_config(/*fresh=*/false));
  if (rt.needs_recovery()) {
    std::printf("[parent] child crashed mid-FASE; rolling back %zu records\n",
                rt.recover());
  }
  auto ledger = runtime::PVector<std::uint64_t>::open(rt, rt.get_root());
  std::printf("[parent] ledger after recovery (%zu entries):", ledger.size());
  for (const std::uint64_t v : ledger) std::printf(" %llu",
                                                   (unsigned long long)v);
  std::printf("\n[parent] no 999999 entry: the interrupted FASE was atomic.\n");
  return 0;
}
