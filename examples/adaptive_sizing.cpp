// The analysis pipeline, end to end, on a workload of your choice:
// record the persistent-write trace, run the linear-time reuse analysis,
// convert it to a miss-ratio curve (paper Eq. 2-3), find the knees, select
// a size, and verify the selection against a brute-force size sweep.
//
// Usage: adaptive_sizing [workload]      (default: water-spatial)
#include <cstdio>
#include <string>

#include "core/mrc.hpp"
#include "core/sampler.hpp"
#include "workloads/replay.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace nvc;
  const std::string name = argc > 1 ? argv[1] : "water-spatial";

  // 1. Record the FASE-structured persistent-write trace.
  workloads::WorkloadParams params;
  workloads::TraceApi api(1, 512u << 20);
  workloads::make_workload(name)->run(api, params);
  std::vector<LineAddr> stores;
  std::vector<std::size_t> boundaries;
  api.trace(0).store_trace(&stores, &boundaries);
  std::printf("%s: %zu persistent writes in %zu FASEs\n", name.c_str(),
              stores.size(), boundaries.size());

  // 2. FASE renaming + linear-time reuse(k) + MRC + knee selection.
  core::Mrc mrc;
  const core::KneeResult knee = core::BurstSampler::analyze_offline(
      stores, boundaries, core::KneeConfig{}, &mrc);

  std::printf("\nmodel MRC (miss ratio by cache size):\n");
  for (std::size_t c = 1; c <= mrc.max_size(); ++c) {
    const int bars = static_cast<int>(mrc.at(c) * 60);
    std::printf("%3zu %7.4f |%.*s%s\n", c, mrc.at(c), bars,
                "############################################################",
                c == knee.chosen_size ? "  <= selected" : "");
  }
  std::printf("\nselected cache size: %zu (knees ranked:", knee.chosen_size);
  for (const auto c : knee.candidates) std::printf(" %zu", c);
  std::printf(")\n");

  // 3. Validate: sweep the actual write-combining cache over sizes and show
  //    the flush ratio the selection achieves vs neighbors.
  std::printf("\nverification sweep (flush ratio of SC-offline at size):\n");
  for (const std::size_t size :
       {std::size_t{2}, std::size_t{8}, knee.chosen_size, std::size_t{50}}) {
    core::PolicyConfig config;
    config.cache_size = size;
    const auto counts = workloads::replay_flush_count_all(
        api, core::PolicyKind::kSoftCacheOffline, config);
    std::printf("  size %2zu -> flush ratio %.5f%s\n", size,
                counts.flush_ratio(),
                size == knee.chosen_size ? "   (selected)" : "");
  }
  return 0;
}
