// Figure 2 — the MRC of the water-spatial software-cache write stream, its
// knees, and the selected cache size. Paper: several knees; size 23 chosen
// (the largest-size knee under the bound of 50).
#include <cstdio>

#include "core/knee.hpp"
#include "core/mrc.hpp"
#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Figure 2: MRC of water-spatial",
               "Fig. 2 — knees in the MRC; chosen cache size 23");

  const auto traces = record_trace("water-spatial", params_from_env(1));
  core::Mrc model;
  const core::KneeResult knee = offline_knee(traces, &model);

  // Ground truth for comparison: direct write-cache simulation.
  std::vector<LineAddr> stores;
  std::vector<std::size_t> boundaries;
  traces.trace(0).store_trace(&stores, &boundaries);
  const core::Mrc actual = core::mrc_simulate_write_cache(
      stores, boundaries, core::KneeConfig{}.max_size);

  std::printf("# cache_size  model_miss_ratio  simulated_miss_ratio\n");
  for (std::size_t c = 1; c <= model.max_size(); ++c) {
    std::printf("%3zu  %8.5f  %8.5f\n", c, model.at(c), actual.at(c));
  }

  std::printf("\ncandidate knees (ranked by miss-ratio drop):");
  for (const std::size_t c : knee.candidates) std::printf(" %zu", c);
  std::printf("\nchosen cache size: %zu%s  (paper: 23)\n", knee.chosen_size,
              knee.had_knees ? "" : " [no knees: max size]");
  return 0;
}
