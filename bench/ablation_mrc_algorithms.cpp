// Ablation — MRC analysis algorithms. The paper motivates its reuse-based
// timescale analysis by the cost of classical reuse-distance measurement
// (Section III-A: "reuse distance is costly to measure, especially online").
// This bench quantifies the claim on our traces, comparing
//
//   timescale  — the paper's linear-time reuse(k) analysis (O(n + r));
//   mattson    — exact LRU stack distances via a Fenwick tree (O(n log n));
//   shards     — sampled reuse distance at rate 1/8 (Waldspurger et al.);
//
// on (a) analysis wall time, (b) the cache size each selects, and (c) mean
// absolute error against the ground-truth write-cache simulation.
#include <cmath>
#include <cstdio>

#include "core/fase_trace.hpp"
#include "core/shards.hpp"
#include "harness.hpp"

namespace {

double mean_abs_error(const nvc::core::Mrc& a, const nvc::core::Mrc& b) {
  double total = 0;
  for (std::size_t c = 1; c <= a.max_size(); ++c) {
    total += std::abs(a.at(c) - b.at(c));
  }
  return total / static_cast<double>(a.max_size());
}

}  // namespace

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Ablation: MRC analysis algorithms",
               "Section III-A — timescale analysis vs classical "
               "reuse-distance measurement");

  const std::size_t max_size = core::KneeConfig{}.max_size;
  TablePrinter table({"Workload", "Algorithm", "analysis (ms)", "chosen",
                      "mean |err|"});

  for (const char* name :
       {"barnes", "ocean", "water-nsquared", "water-spatial", "fft",
        "radix"}) {
    const auto traces = record_trace(name, params_from_env(1));
    std::vector<LineAddr> stores;
    std::vector<std::size_t> boundaries;
    traces.trace(0).store_trace(&stores, &boundaries);
    const auto renamed = core::rename_trace(stores, boundaries);
    const core::Mrc truth =
        core::mrc_simulate_write_cache(stores, boundaries, max_size);
    const core::KneeFinder finder{core::KneeConfig{}};

    // 1. The paper's timescale analysis (renamed ids are dense, so the
    // direct-indexed interval extraction applies — same as analyze_burst).
    Stopwatch t1;
    const auto intervals = core::intervals_of_dense_trace(
        renamed, static_cast<LineAddr>(renamed.size()));
    const auto reuse = core::compute_reuse_all_k(
        intervals, static_cast<LogicalTime>(renamed.size()));
    const core::Mrc timescale = core::mrc_from_reuse(reuse, max_size);
    const double ms1 = t1.seconds() * 1e3;

    // 2. Exact Mattson stack distances.
    Stopwatch t2;
    const core::Mrc mattson = core::mrc_exact_lru(renamed, max_size);
    const double ms2 = t2.seconds() * 1e3;

    // 3. SHARDS at rate 1/8.
    Stopwatch t3;
    core::ShardsConfig sconfig;
    sconfig.threshold = 1;
    sconfig.modulus = 8;
    const core::Mrc shards = core::mrc_shards(renamed, max_size, sconfig);
    const double ms3 = t3.seconds() * 1e3;

    const struct {
      const char* label;
      const core::Mrc* mrc;
      double ms;
    } rows[] = {{"timescale", &timescale, ms1},
                {"mattson", &mattson, ms2},
                {"shards-1/8", &shards, ms3}};
    for (const auto& row : rows) {
      table.add_row({name, row.label, TablePrinter::fmt(row.ms, 2),
                     TablePrinter::fmt_count(
                         finder.select(*row.mrc).chosen_size),
                     TablePrinter::fmt(mean_abs_error(*row.mrc, truth), 4)});
    }
  }
  table.print();
  std::printf("\n'chosen' sizes within a few entries of each other mean the "
              "knee decision is robust to the analysis method; the paper's "
              "timescale analysis should be the fastest at full trace "
              "lengths.\n");
  return 0;
}
