// Ablation — thread grouping (the paper's Section III-C future work,
// implemented in core/thread_groups): compute each thread's sampled MRC for
// a multithreaded run, cluster threads by write-locality similarity, and
// compare (a) the number of analyses needed and (b) the flush ratio achieved
// by group-shared sizes vs per-thread sizes vs one global size.
#include <cstdio>

#include "core/thread_groups.hpp"
#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Ablation: thread grouping for MRC sharing",
               "Section III-C future work — 'group threads with similar "
               "write locality and calculate one MRC for each group'");

  const std::size_t threads = 8;
  TablePrinter table({"Workload", "groups", "per-thread ratio",
                      "grouped ratio", "global ratio"});

  for (const char* name :
       {"ocean", "water-spatial", "raytrace", "radix"}) {
    const auto traces = record_trace(name, params_from_env(threads));

    // Per-thread offline MRCs.
    std::vector<core::Mrc> mrcs;
    std::vector<std::size_t> per_thread_sizes;
    for (std::size_t t = 0; t < threads; ++t) {
      std::vector<LineAddr> stores;
      std::vector<std::size_t> boundaries;
      traces.trace(t).store_trace(&stores, &boundaries);
      core::Mrc mrc;
      if (stores.empty()) {
        mrc = core::Mrc(std::vector<double>(core::KneeConfig{}.max_size, 1.0));
        per_thread_sizes.push_back(core::WriteCache::kDefaultCapacity);
      } else {
        const auto knee = core::BurstSampler::analyze_offline(
            stores, boundaries, core::KneeConfig{}, &mrc);
        per_thread_sizes.push_back(knee.chosen_size);
      }
      mrcs.push_back(std::move(mrc));
    }

    const core::ThreadGroups groups = core::group_threads(mrcs);

    // Flush ratio under a size assignment (per-thread policies).
    auto ratio_with_sizes = [&](auto size_of_thread) {
      std::uint64_t stores = 0, flushes = 0;
      for (std::size_t t = 0; t < threads; ++t) {
        core::PolicyConfig config;
        config.cache_size = size_of_thread(t);
        const auto r = workloads::replay_flush_count(
            traces.trace(t), core::PolicyKind::kSoftCacheOffline, config);
        stores += r.stores;
        flushes += r.flushes;
      }
      return static_cast<double>(flushes) / static_cast<double>(stores);
    };

    const double per_thread = ratio_with_sizes(
        [&](std::size_t t) { return per_thread_sizes[t]; });
    const double grouped = ratio_with_sizes([&](std::size_t t) {
      return groups.group_size[groups.group_of[t]];
    });
    // Global: thread 0's size for everyone (what a non-grouped, single-MRC
    // system would do).
    const double global = ratio_with_sizes(
        [&](std::size_t) { return per_thread_sizes[0]; });

    table.add_row({name, TablePrinter::fmt_count(groups.num_groups()),
                   TablePrinter::fmt(per_thread, 5),
                   TablePrinter::fmt(grouped, 5),
                   TablePrinter::fmt(global, 5)});
  }
  table.print();
  std::printf("\nFewer groups than threads with a grouped ratio matching the "
              "per-thread ratio means the clustering captures the locality "
              "structure at a fraction of the sampling cost.\n");
  return 0;
}
