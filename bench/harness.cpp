#include "harness.hpp"

#include <cstdio>
#include <unistd.h>

namespace nvc::bench {

std::vector<std::string> all_workloads() {
  auto names = workloads::workload_names();
  names.push_back("mdb");
  return names;
}

std::vector<std::string> splash_workloads() {
  return {"barnes",  "fmm",           "ocean",        "raytrace",
          "volrend", "water-nsquared", "water-spatial"};
}

std::unique_ptr<workloads::Workload> make_any_workload(
    const std::string& name) {
  if (name == "mdb") {
    mdb::MtestConfig config;
    config.inserts_quick =
        static_cast<std::uint64_t>(env_int("NVC_MDB_INSERTS", 20000));
    // Full scale is capped below the paper's 1M by default: recording the
    // Mtest trace at 1M inserts needs ~10 GB of event memory. Live-only
    // runs can raise it (NVC_MDB_INSERTS_FULL=1000000).
    config.inserts_full = static_cast<std::uint64_t>(
        env_int("NVC_MDB_INSERTS_FULL", 200000));
    return mdb::make_mdb_workload(config);
  }
  return workloads::make_workload(name);
}

workloads::WorkloadParams params_from_env(std::size_t threads) {
  workloads::WorkloadParams p;
  p.threads = threads;
  p.seed = static_cast<std::uint64_t>(env_int("NVC_SEED", 42));
  p.full = full_scale();
  return p;
}

workloads::TraceApi record_trace(const std::string& name,
                                 const workloads::WorkloadParams& params) {
  const std::size_t arena_mb =
      static_cast<std::size_t>(env_int("NVC_ARENA_MB", 512));
  workloads::TraceApi api(params.threads, arena_mb << 20);
  make_any_workload(name)->run(api, params);
  return api;
}

core::KneeResult offline_knee(const workloads::TraceApi& traces,
                              core::Mrc* mrc_out) {
  std::vector<LineAddr> stores;
  std::vector<std::size_t> boundaries;
  traces.trace(0).store_trace(&stores, &boundaries);
  return core::BurstSampler::analyze_offline(stores, boundaries,
                                             core::KneeConfig{}, mrc_out);
}

core::PolicyConfig default_policy_config() {
  core::PolicyConfig config;
  config.atlas_table_size = 8;
  config.cache_size = core::WriteCache::kDefaultCapacity;
  // The paper's burst is 64M writes on multi-billion-write runs (~1%); the
  // scaled defaults keep the same burst:execution proportion.
  config.sampler.burst_length =
      static_cast<std::uint64_t>(env_int("NVC_BURST", full_scale()
                                                          ? (1 << 16)
                                                          : (1 << 12)));
  // Skip the initialization FASE before the burst (calibration choice
  // documented in EXPERIMENTS.md; NVC_SKIP_FASES=0 restores the paper's
  // sample-from-the-start behavior).
  config.sampler.skip_fases =
      static_cast<std::uint32_t>(env_int("NVC_SKIP_FASES", 1));
  // NVC_ASYNC=1 hands burst analysis to the shared background worker; the
  // selection is applied at the next FASE boundary (see DESIGN.md).
  config.sampler.async_analysis = env_int("NVC_ASYNC", 0) != 0;
  // NVC_ADMIT=always|write-once|reuse selects the write-admission policy
  // (DESIGN.md §12); NVC_ADMIT_WINDOW sizes the doorkeeper tag table and
  // NVC_ADMIT_THRESHOLD sets the hit-ratio bound below which the reuse
  // verdict arms the bypass.
  const std::string admit = env_str("NVC_ADMIT", "always");
  if (const auto mode = core::parse_admit_mode(admit)) {
    config.admission.mode = *mode;
  } else {
    std::fprintf(stderr, "NVC_ADMIT: unknown mode '%s' (want always|write-once|reuse)\n",
                 admit.c_str());
  }
  config.admission.window = static_cast<std::size_t>(env_int(
      "NVC_ADMIT_WINDOW", static_cast<std::int64_t>(config.admission.window)));
  config.admission.reuse_threshold =
      env_double("NVC_ADMIT_THRESHOLD", config.admission.reuse_threshold);
  return config;
}

LiveResult run_live(const std::string& workload, core::PolicyKind kind,
                    const workloads::WorkloadParams& params,
                    const core::PolicyConfig& policy_config) {
  static int run_counter = 0;
  runtime::RuntimeConfig config;
  config.region_name = "bench." + std::to_string(::getpid()) + "." +
                       std::to_string(run_counter++);
  config.region_size =
      static_cast<std::size_t>(env_int("NVC_REGION_MB", 512)) << 20;
  config.policy = kind;
  config.policy_config = policy_config;
  // Default: the simulated backend at a paper-era clflush-to-memory cost.
  // Modern cores retire clflush in tens of ns, which erases the flush-cost
  // premium the paper measures on its 2.8 GHz Xeon E7 (see DESIGN.md);
  // NVC_FLUSH=clflush|clflushopt|clwb selects the real instructions.
  config.flush =
      pmem::parse_flush_kind(env_str("NVC_FLUSH", "sim").c_str());
  config.simulated_flush_ns =
      static_cast<std::uint32_t>(env_int("NVC_FLUSH_NS", 250));
  // NVC_FLUSH_ASYNC=1 routes data-line write-backs through the flush-behind
  // pipeline (DESIGN.md §8); NVC_FLUSH_QUEUE sets the per-thread ring depth.
  config.async_flush = env_int("NVC_FLUSH_ASYNC", 0) != 0;
  config.flush_queue_depth = static_cast<std::size_t>(
      env_int("NVC_FLUSH_QUEUE",
              static_cast<std::int64_t>(config.flush_queue_depth)));
  config.simulated_flush_issue_ns = static_cast<std::uint32_t>(
      env_int("NVC_FLUSH_ISSUE_NS",
              static_cast<std::int64_t>(config.simulated_flush_issue_ns)));
  // NVC_LOG=1 turns on durable undo logging; NVC_LOG_SYNC=strict|batched
  // picks the durability protocol (DESIGN.md §7).
  config.undo_logging = env_int("NVC_LOG", 0) != 0;
  config.log_sync =
      runtime::parse_log_sync_mode(env_str("NVC_LOG_SYNC", "strict").c_str());
  // NVC_FAULT_* attaches the media-fault injector and configures the retry/
  // degradation machinery (DESIGN.md §10); all-defaults = disabled.
  config.fault = pmem::FaultConfig::from_env();
  // NVC_WEAR=1 attaches the endurance tracker: per-line media write counts
  // surfaced as wear statistics in RuntimeStats/HealthReport (DESIGN.md §12).
  config.wear_tracking = env_int("NVC_WEAR", 0) != 0;
  // NVC_ELIDE=1 arms FliT-style flush elision: a shared per-line
  // pending-counter table dedups already-scheduled write-backs across
  // contexts (DESIGN.md §13); NVC_ELIDE_TABLE sets the slot count.
  config.elide = env_int("NVC_ELIDE", 0) != 0;
  config.elide_table_slots = static_cast<std::size_t>(
      env_int("NVC_ELIDE_TABLE",
              static_cast<std::int64_t>(config.elide_table_slots)));
  // NVC_VERIFY_DATA=1 publishes a CRC32C per committed data line; the
  // recovery pipeline's verify stage and the scrubber check against it.
  // NVC_SCRUB=1 registers the online scrubber on the flush workers' idle
  // hook; NVC_SCRUB_BATCH / NVC_SCRUB_REPAIR tune it (DESIGN.md §14).
  config.verify_data = env_int("NVC_VERIFY_DATA", 0) != 0;
  config.scrub = env_int("NVC_SCRUB", 0) != 0;
  config.scrub_batch_lines = static_cast<std::size_t>(
      env_int("NVC_SCRUB_BATCH",
              static_cast<std::int64_t>(config.scrub_batch_lines)));
  config.scrub_repair = env_int("NVC_SCRUB_REPAIR", 1) != 0;

  runtime::Runtime rt(config);
  workloads::RuntimeApi api(rt);
  auto w = make_any_workload(workload);

  Stopwatch timer;
  w->run(api, params);
  LiveResult result;
  result.seconds = timer.seconds();
  result.stats = rt.stats();
  rt.destroy_storage();
  return result;
}

LiveResult run_live_repeated(const std::string& workload,
                             core::PolicyKind kind,
                             const workloads::WorkloadParams& params,
                             const core::PolicyConfig& policy_config,
                             int repeats) {
  LiveResult best;
  best.seconds = 1e300;
  for (int r = 0; r < repeats; ++r) {
    LiveResult one = run_live(workload, kind, params, policy_config);
    if (one.seconds < best.seconds) best = std::move(one);
  }
  return best;
}

workloads::SimConfig sim_config_for_threads(std::size_t threads,
                                            const core::PolicyConfig& pc) {
  workloads::SimConfig sim;
  sim.policy = pc;
  // Strong scaling: each thread observes ~1/t of the total writes, so its
  // sampling burst shrinks accordingly (the paper's burst is likewise a
  // fixed small fraction of the per-thread write stream).
  sim.policy.sampler.burst_length = std::max<std::uint64_t>(
      512, pc.sampler.burst_length / threads);
  sim.l1.contention_prob = hwsim::contention_for_threads(threads);
  return sim;
}

void print_banner(const std::string& experiment,
                  const std::string& paper_ref) {
  std::printf("=== %s ===\n", experiment.c_str());
  std::printf("paper: %s\n", paper_ref.c_str());
  std::printf("mode: %s | flush backend: %s | seed %lld\n\n",
              full_scale() ? "FULL (paper-scale)" : "quick (NVC_FULL=1 for paper-scale)",
              env_str("NVC_FLUSH", "sim").c_str(),
              static_cast<long long>(env_int("NVC_SEED", 42)));
}

}  // namespace nvc::bench
