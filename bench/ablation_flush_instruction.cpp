// Ablation — flush-instruction choice. Atlas uses clflush (strongly
// ordered, invalidating); clflushopt is weakly ordered; clwb writes back
// without invalidating (the paper notes Atlas avoids it for staleness
// visibility, but it removes the indirect re-miss cost). This bench times
// the SC policy under each available backend plus the calibrated simulated
// one.
#include <cstdio>

#include "common/cpu.hpp"
#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Ablation: flush instruction (clflush / clflushopt / clwb / sim)",
               "Section II-A discussion — clflush invalidates (indirect "
               "miss cost); clwb does not");

  const auto& features = cpu_features();
  std::printf("cpu support: clflush=%d clflushopt=%d clwb=%d\n\n",
              features.clflush, features.clflushopt, features.clwb);

  const int repeats = static_cast<int>(env_int("NVC_REPEATS", 3));
  const auto params = params_from_env(1);

  TablePrinter table({"Workload", "Backend", "SC time (s)", "ER time (s)"});
  for (const char* workload : {"persistent-array", "water-nsquared"}) {
    for (const char* backend : {"clflush", "clflushopt", "clwb", "sim"}) {
      ::setenv("NVC_FLUSH", backend, 1);
      const auto sc =
          run_live_repeated(workload, core::PolicyKind::kSoftCache, params,
                            default_policy_config(), repeats);
      const auto er =
          run_live_repeated(workload, core::PolicyKind::kEager, params,
                            default_policy_config(), repeats);
      table.add_row({workload, backend, TablePrinter::fmt(sc.seconds, 4),
                     TablePrinter::fmt(er.seconds, 4)});
    }
  }
  ::unsetenv("NVC_FLUSH");
  table.print();

  // Model-side ablation: the share of flush cost that is *indirect*
  // (invalidation => re-miss). clwb keeps the line resident; the paper
  // notes Atlas still uses clflush for cross-thread visibility.
  std::printf("\ncost-model view (simulated cycles, ER policy — every store\n"
              "flushed, so invalidation hits every line revisit):\n");
  TablePrinter model({"Workload", "clflush semantics", "clwb semantics",
                      "indirect share"});
  for (const char* workload : {"barnes", "water-nsquared", "raytrace"}) {
    const auto traces = record_trace(workload, params_from_env(1));
    auto sim = sim_config_for_threads(1, default_policy_config());
    sim.cost.invalidate_on_flush = true;
    const double clflush_cycles = workloads::simulate_run(
        traces, core::PolicyKind::kEager, sim).makespan_cycles();
    sim.cost.invalidate_on_flush = false;
    const double clwb_cycles = workloads::simulate_run(
        traces, core::PolicyKind::kEager, sim).makespan_cycles();
    model.add_row({workload, TablePrinter::fmt(clflush_cycles / 1e6, 2),
                   TablePrinter::fmt(clwb_cycles / 1e6, 2),
                   TablePrinter::fmt_percent(
                       (clflush_cycles - clwb_cycles) / clflush_cycles)});
  }
  model.print();
  return 0;
}
