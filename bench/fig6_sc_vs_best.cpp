// Figure 6 — the instruction overhead of adaptive caching, measured as the
// slowdown of SC over BEST across thread counts (hwsim cost model).
// Paper: ocean starts near 11x and falls to ~3x; the other programs sit
// between 1x and 2x, roughly flat across thread counts.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Figure 6: slowdown of SC over BEST vs threads",
               "Fig. 6 — ocean 11x -> 3x; others flat between 1x and 2x");

  const std::size_t max_threads =
      static_cast<std::size_t>(env_int("NVC_THREADS", 32));
  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  TablePrinter table({"Program", "Threads", "BEST (Mcycles)", "SC (Mcycles)",
                      "SC/BEST"});
  for (const auto& name : splash_workloads()) {
    for (const std::size_t threads : thread_counts) {
      const auto traces = record_trace(name, params_from_env(threads));
      const auto sim =
          sim_config_for_threads(threads, default_policy_config());
      const double best = workloads::simulate_run(
          traces, core::PolicyKind::kBest, sim).makespan_cycles();
      const double sc = workloads::simulate_run(
          traces, core::PolicyKind::kSoftCache, sim).makespan_cycles();
      table.add_row({name, TablePrinter::fmt_count(threads),
                     TablePrinter::fmt(best / 1e6, 2),
                     TablePrinter::fmt(sc / 1e6, 2),
                     TablePrinter::fmt_ratio(sc / best)});
    }
  }
  table.print();
  return 0;
}
