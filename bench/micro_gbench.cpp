// Micro-benchmarks (google-benchmark): hot-path costs of the building
// blocks — software-cache operations, the linear-time reuse analysis, FASE
// renaming, Mattson stack distances, and the flush instructions themselves.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/analyzer.hpp"
#include "core/flush_pipeline.hpp"
#include "core/fase_trace.hpp"
#include "core/mrc.hpp"
#include "core/policy.hpp"
#include "core/reuse_locality.hpp"
#include "core/sampler.hpp"
#include "core/write_cache.hpp"
#include "core/admission.hpp"
#include "pmem/flush.hpp"
#include "runtime/recovery.hpp"
#include "runtime/runtime.hpp"
#include "runtime/scrub.hpp"
#include "runtime/undo_log.hpp"
#include "structures/durable_queue.hpp"
#include "structures/pspace.hpp"
#include "testing/interleave.hpp"
#include "workloads/admission_micro.hpp"

namespace {

using namespace nvc;
using namespace nvc::core;

std::vector<LineAddr> random_trace(std::size_t n, std::size_t distinct,
                                   std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<LineAddr> trace(n);
  for (auto& a : trace) a = rng.below(distinct);
  return trace;
}

/// A trace whose `distinct` lines are scattered across a 64 GiB line-address
/// space, like real heap addresses — NOT the dense 0..distinct ids of
/// random_trace(). The analysis kernels hash raw addresses like these; dense
/// ids would flatter std::unordered_map's identity hash.
std::vector<LineAddr> sparse_trace(std::size_t n, std::size_t distinct,
                                   std::uint64_t seed = 7) {
  Rng rng(seed);
  std::vector<LineAddr> lines(distinct);
  for (auto& l : lines) l = rng.below(1ull << 30);
  std::vector<LineAddr> trace(n);
  for (auto& a : trace) a = lines[rng.below(distinct)];
  return trace;
}

void BM_WriteCacheHit(benchmark::State& state) {
  WriteCache cache(static_cast<std::size_t>(state.range(0)));
  CountingSink sink;
  for (LineAddr l = 0; l < static_cast<LineAddr>(state.range(0)); ++l) {
    cache.access(l, sink);
  }
  LineAddr l = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(l, sink));
    l = (l + 1) % static_cast<LineAddr>(state.range(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteCacheHit)->Arg(8)->Arg(50)->Arg(1024);

void BM_WriteCacheMissEvict(benchmark::State& state) {
  WriteCache cache(static_cast<std::size_t>(state.range(0)));
  CountingSink sink;
  LineAddr next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(next++, sink));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteCacheMissEvict)->Arg(8)->Arg(50)->Arg(1024);

void BM_AtlasTableStore(benchmark::State& state) {
  auto policy = make_policy(PolicyKind::kAtlas);
  CountingSink sink;
  Rng rng(3);
  for (auto _ : state) {
    policy->on_store(rng.below(64) + 1, sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AtlasTableStore);

void BM_ScPolicyStore(benchmark::State& state) {
  PolicyConfig config;
  config.cache_size = 23;
  auto policy = make_policy(PolicyKind::kSoftCacheOffline, config);
  CountingSink sink;
  Rng rng(3);
  for (auto _ : state) {
    policy->on_store(rng.below(64) + 1, sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ScPolicyStore);

void BM_ReuseAllK(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto trace = random_trace(n, 64);
  const auto intervals = intervals_of_trace(trace);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compute_reuse_all_k(intervals, static_cast<LogicalTime>(n)));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n));
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ReuseAllK)->Range(1 << 12, 1 << 20)->Complexity(benchmark::oN);

void BM_IntervalExtraction(benchmark::State& state) {
  const auto trace = random_trace(1 << 16, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(intervals_of_trace(trace));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * (1 << 16));
}
BENCHMARK(BM_IntervalExtraction);

void BM_FaseRename(benchmark::State& state) {
  FaseRenamer renamer;
  Rng rng(5);
  int i = 0;
  for (auto _ : state) {
    if ((++i & 63) == 0) renamer.fase_boundary();
    benchmark::DoNotOptimize(renamer.rename(rng.below(128)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FaseRename);

void BM_MattsonExactLru(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto trace = random_trace(n, 128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mrc_exact_lru(trace, 50));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MattsonExactLru)->Range(1 << 12, 1 << 18);

// --- burst-analysis throughput (the async pipeline's kernels) ---------------

void BM_IntervalExtractionSparse(benchmark::State& state) {
  // Raw (unrenamed) addresses: the flat-hash path of intervals_of_trace.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto trace = sparse_trace(n, n / 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(intervals_of_trace(trace));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IntervalExtractionSparse)->Range(1 << 14, 1 << 20);

void BM_IntervalExtractionDense(benchmark::State& state) {
  // FASE-renamed ids (dense in [0, n)): the direct-indexed path used by
  // analyze_burst — no hashing at all.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto trace = random_trace(n, n / 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        intervals_of_dense_trace(trace, static_cast<LineAddr>(n / 16)));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_IntervalExtractionDense)->Range(1 << 14, 1 << 20);

void BM_AnalyzeOffline1M(benchmark::State& state) {
  // The full pipeline on a 1M-write trace of realistic sparse addresses:
  // rename -> intervals -> reuse(k) -> MRC -> knee.
  constexpr std::size_t kWrites = 1 << 20;
  const auto trace = sparse_trace(kWrites, 1 << 16);
  std::vector<std::size_t> boundaries;
  for (std::size_t b = 4096; b < kWrites; b += 4096) boundaries.push_back(b);
  KneeConfig knee;
  knee.max_size = 1 << 12;
  for (auto _ : state) {
    Mrc mrc;
    benchmark::DoNotOptimize(
        BurstSampler::analyze_offline(trace, boundaries, knee, &mrc));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWrites));
}
BENCHMARK(BM_AnalyzeOffline1M)->Unit(benchmark::kMillisecond);

void BM_SyncBurstAnalysis(benchmark::State& state) {
  // What the application thread pays at burst end in synchronous mode:
  // the whole analysis, O(n) in the burst length.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto burst = random_trace(n, n / 16);  // renamed ids are dense
  KneeConfig knee;
  knee.max_size = 1 << 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analyze_burst(burst, knee));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SyncBurstAnalysis)
    ->Range(1 << 12, 1 << 20)
    ->Complexity(benchmark::oN);

void BM_AsyncBurstHandoff(benchmark::State& state) {
  // What the application thread pays at burst end in async mode: one vector
  // move into the SPSC ring plus a wakeup — flat across burst sizes.
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto burst = random_trace(n, n / 16);
  KneeConfig knee;
  knee.max_size = 1 << 10;
  auto channel = AnalysisWorker::shared().open_channel();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<LineAddr> copy = burst;
    channel->drain();  // keep the ring empty so every submit succeeds
    state.ResumeTiming();
    benchmark::DoNotOptimize(channel->submit(std::move(copy), knee));
  }
  channel->drain();
  channel->close();
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AsyncBurstHandoff)
    ->Range(1 << 12, 1 << 20)
    // Fixed iteration count: the untimed per-iteration work (copying the
    // burst, draining the worker) would otherwise dwarf the timed ~µs
    // handoff and let the auto-tuner pick runaway iteration counts.
    ->Iterations(300)
    ->Complexity(benchmark::o1);

// --- full-runtime pstore latency (the per-store constants) ------------------

std::string unique_region() {
  static int counter = 0;
  return "gbench.pstore." + std::to_string(::getpid()) + "." +
         std::to_string(counter++);
}

/// NVC_FLUSH selects the flush backend like every harness binary does;
/// unset keeps the historical default (best real instruction on this CPU)
/// so committed baselines stay comparable. NVC_FLUSH_NS tunes kSimulated.
pmem::FlushKind flush_kind_from_env() {
  const std::string name = env_str("NVC_FLUSH", "");
  return name.empty() ? pmem::default_flush_kind()
                      : pmem::parse_flush_kind(name.c_str());
}

void apply_flush_env(runtime::RuntimeConfig& config) {
  config.flush = flush_kind_from_env();
  config.simulated_flush_ns = static_cast<std::uint32_t>(
      env_int("NVC_FLUSH_NS", config.simulated_flush_ns));
  config.flush_queue_depth = static_cast<std::size_t>(env_int(
      "NVC_FLUSH_QUEUE", static_cast<std::int64_t>(config.flush_queue_depth)));
  config.simulated_flush_issue_ns = static_cast<std::uint32_t>(
      env_int("NVC_FLUSH_ISSUE_NS",
              static_cast<std::int64_t>(config.simulated_flush_issue_ns)));
}

void run_pstore_fase(benchmark::State& state, bool fault_idle) {
  // End-to-end pstore cost through the Runtime hot path (ctx lookup, undo
  // logging, policy, flush backend), as FASEs of 16 stores over 16 lines.
  // Arg0 selects the log protocol: 0 = logging off, 1 = strict (Atlas,
  // 2 flush+fence pairs per record), 2 = batched (one sync per epoch).
  // Arg1 selects the policy: 0 = ER (flush per store), 1 = SC-offline.
  // Arg2 routes data write-backs through the flush-behind pipeline
  // (DESIGN.md §8) instead of flushing inline on this thread.
  // `fault_idle` attaches the media-fault injector with every rate at zero:
  // the fault-tolerant wrappers sit on the flush path but never fire, so the
  // delta against the plain variant is the pure cost of the hooks.
  const int log_mode = static_cast<int>(state.range(0));
  const bool soft_cache = state.range(1) == 1;
  const bool async = state.range(2) == 1;
  runtime::RuntimeConfig config;
  config.region_name = unique_region();
  config.region_size = 4u << 20;
  config.policy = soft_cache ? core::PolicyKind::kSoftCacheOffline
                             : core::PolicyKind::kEager;
  config.policy_config.cache_size = 23;
  apply_flush_env(config);
  config.async_flush = async;
  config.undo_logging = log_mode != 0;
  config.log_sync = log_mode == 2 ? runtime::LogSyncMode::kBatched
                                  : runtime::LogSyncMode::kStrict;
  config.fault.attach = fault_idle;
  runtime::Runtime rt(config);
  constexpr int kStoresPerFase = 16;
  auto* arr = static_cast<std::uint64_t*>(
      rt.pm_alloc(kStoresPerFase * kCacheLineSize));
  std::uint64_t v = 0;
  for (auto _ : state) {
    rt.fase_begin();
    for (int s = 0; s < kStoresPerFase; ++s) {
      rt.pstore(arr[s * 8], v++);
    }
    rt.fase_end();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kStoresPerFase);
  const runtime::RuntimeStats stats = rt.stats();
  state.counters["flushes"] =
      benchmark::Counter(static_cast<double>(stats.flushes));
  state.counters["fences"] =
      benchmark::Counter(static_cast<double>(stats.fences));
  state.counters["log_fences"] =
      benchmark::Counter(static_cast<double>(stats.log_fences));
  state.counters["log_syncs"] =
      benchmark::Counter(static_cast<double>(stats.log_syncs));
  state.SetLabel(std::string(log_mode == 0 ? "log=off"
                             : log_mode == 1 ? "log=strict"
                                             : "log=batched") +
                 (soft_cache ? "/SC" : "/ER") + (async ? "/async" : "") +
                 (fault_idle ? "/fault-idle" : ""));
  rt.destroy_storage();
}

void BM_PstoreFase(benchmark::State& state) { run_pstore_fase(state, false); }
BENCHMARK(BM_PstoreFase)->ArgsProduct({{0, 1, 2}, {0, 1}, {0, 1}});

void BM_PstoreFaseFaultIdle(benchmark::State& state) {
  // Same hot path with the fault injector attached but idle (all rates
  // zero). EXPERIMENTS.md holds the paired numbers; the acceptance bar is
  // that this stays within 2% of BM_PstoreFase for the same args.
  run_pstore_fase(state, true);
}
BENCHMARK(BM_PstoreFaseFaultIdle)->ArgsProduct({{0, 1, 2}, {0, 1}, {0, 1}});

// --- hardened recovery (DESIGN.md §14) --------------------------------------

void BM_PstoreFaseScrubIdle(benchmark::State& state) {
  // Foreground cost of the hardening knobs on the BM_PstoreFase shape
  // (log=strict, SC-offline, sync flush = BM_PstoreFase/1/1/0). Arg0:
  //   0  NVC_VERIFY_DATA only — prices the commit-time CRC publish plus the
  //      per-store dirty marking;
  //   1  NVC_SCRUB only — the scrubber runs on the flush workers' idle hook
  //      while this thread commits FASEs; the delta is the interference of
  //      background image re-reads with the foreground store path;
  //   2  both.
  // The acceptance bar (EXPERIMENTS.md): arg 1 stays within 1% of
  // BM_PstoreFase/1/1/0 — scrubbing must be free when the pool is busy.
  const int knobs = static_cast<int>(state.range(0));
  runtime::RuntimeConfig config;
  config.region_name = unique_region();
  config.region_size = 4u << 20;
  config.policy = core::PolicyKind::kSoftCacheOffline;
  config.policy_config.cache_size = 23;
  apply_flush_env(config);
  config.undo_logging = true;
  config.log_sync = runtime::LogSyncMode::kStrict;
  config.verify_data = knobs != 1;
  config.scrub = knobs != 0;
  runtime::Runtime rt(config);
  constexpr int kStoresPerFase = 16;
  auto* arr = static_cast<std::uint64_t*>(
      rt.pm_alloc(kStoresPerFase * kCacheLineSize));
  std::uint64_t v = 0;
  for (auto _ : state) {
    rt.fase_begin();
    for (int s = 0; s < kStoresPerFase; ++s) {
      rt.pstore(arr[s * 8], v++);
    }
    rt.fase_end();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kStoresPerFase);
  const runtime::ScrubStats scrub = rt.scrub_stats();
  state.counters["scrub_slices"] =
      benchmark::Counter(static_cast<double>(scrub.slices));
  state.counters["scrub_lines"] =
      benchmark::Counter(static_cast<double>(scrub.lines_scanned));
  state.SetLabel(knobs == 0   ? "verify"
                 : knobs == 1 ? "scrub"
                              : "verify+scrub");
  rt.destroy_storage();
}
BENCHMARK(BM_PstoreFaseScrubIdle)->Arg(0)->Arg(1)->Arg(2);

void BM_RecoveryReplay(benchmark::State& state) {
  // Salvage-pipeline throughput: one log segment holding Arg0 certified
  // uncommitted records over a 256-line data region, replayed (walk +
  // certify + newest-first rollback + commit) from a pristine copy each
  // iteration. items/sec = records replayed per second; the memcpy of the
  // working image is included (it is what a real restart pays to page the
  // image in).
  const std::size_t records = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kLines = 256;
  constexpr std::size_t kPayload = 48;
  const std::size_t entry_size =
      sizeof(runtime::UndoLog::EntryHead) + ((kPayload + 7) & ~std::size_t{7});
  const std::size_t seg_size =
      runtime::UndoLog::kHeaderSize + records * entry_size + 64;

  std::vector<std::uint8_t> data0(kLines * kCacheLineSize);
  Rng rng(11);
  for (auto& b : data0) b = static_cast<std::uint8_t>(rng());
  std::vector<std::uint8_t> log0(seg_size, 0);
  runtime::UndoLog::LogHeader header{};
  header.magic = runtime::UndoLog::kMagic;
  std::uint64_t off = runtime::UndoLog::kHeaderSize;
  for (std::size_t r = 0; r < records; ++r) {
    const std::uint64_t token =
        (rng.below(kLines * kCacheLineSize - kPayload)) & ~std::uint64_t{7};
    std::uint8_t payload[kPayload];
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    runtime::UndoLog::EntryHead entry{};
    entry.addr_token = token;
    entry.len = kPayload;
    entry.check = runtime::UndoLog::entry_check(token, kPayload, 1, payload);
    std::memcpy(log0.data() + off, &entry, sizeof(entry));
    std::memcpy(log0.data() + off + sizeof(entry), payload, kPayload);
    off += entry_size;
  }
  header.state = runtime::UndoLog::pack_state(1, off);
  std::memcpy(log0.data(), &header, sizeof(header));

  std::vector<std::uint8_t> data = data0;
  std::vector<std::uint8_t> log = log0;
  std::size_t undone = 0;
  for (auto _ : state) {
    std::memcpy(data.data(), data0.data(), data0.size());
    std::memcpy(log.data(), log0.data(), log0.size());
    runtime::RegionView view;
    view.data = data.data();
    view.data_size = data.size();
    view.logs = log.data();
    view.log_segment_size = log.size();
    view.log_segments = 1;
    view.heap_header = false;
    runtime::RecoveryManager manager(view);
    runtime::RecoveryReport report = manager.run();
    undone = report.records_undone;
    benchmark::DoNotOptimize(report);
  }
  if (undone != records) state.SkipWithError("replay did not certify");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(records));
}
BENCHMARK(BM_RecoveryReplay)->Arg(16)->Arg(256)->Arg(2048);

// --- write-admission ablation (DESIGN.md §12) -------------------------------

void BM_PstoreFaseAdmit(benchmark::State& state) {
  // Admission pricing on the BM_PstoreFase shape (log=off, SC-offline,
  // sync flush). Arg0:
  //   0  NVC_ADMIT=always — no filter attached; the control. The delta
  //      against BM_PstoreFase/0/1/0 is one null-pointer test per store,
  //      the <1% idle bound from EXPERIMENTS.md.
  //   1  write-once over the same 16 hot lines — after the first FASE every
  //      store re-admits from the doorkeeper, so this prices the tag probe
  //      on a hot path that never bypasses.
  //   2  write-once over a 8192-line cycle (twice the doorkeeper window, so
  //      tags are always evicted between revisits) — steady-state bypass:
  //      every store writes through immediately.
  const int mode = static_cast<int>(state.range(0));
  constexpr int kStoresPerFase = 16;
  constexpr std::size_t kStreamLines = 8192;
  runtime::RuntimeConfig config;
  config.region_name = unique_region();
  config.region_size = 4u << 20;
  config.policy = core::PolicyKind::kSoftCacheOffline;
  config.policy_config.cache_size = 23;
  config.policy_config.admission.mode =
      mode == 0 ? core::AdmitMode::kAlways : core::AdmitMode::kWriteOnce;
  apply_flush_env(config);
  runtime::Runtime rt(config);
  const std::size_t lines = mode == 2 ? kStreamLines : kStoresPerFase;
  auto* arr =
      static_cast<std::uint64_t*>(rt.pm_alloc(lines * kCacheLineSize));
  std::uint64_t v = 0;
  std::size_t next = 0;
  for (auto _ : state) {
    rt.fase_begin();
    for (int s = 0; s < kStoresPerFase; ++s) {
      rt.pstore(arr[(next % lines) * 8], v++);
      ++next;
    }
    rt.fase_end();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kStoresPerFase);
  const runtime::RuntimeStats stats = rt.stats();
  state.counters["flushes"] =
      benchmark::Counter(static_cast<double>(stats.flushes));
  state.counters["bypassed"] =
      benchmark::Counter(static_cast<double>(stats.bypassed_stores));
  state.SetLabel(mode == 0   ? "admit=always"
                 : mode == 1 ? "admit=write-once/hot"
                             : "admit=write-once/stream");
  rt.destroy_storage();
}
BENCHMARK(BM_PstoreFaseAdmit)->Arg(0)->Arg(1)->Arg(2);

void BM_AdmissionBytesPerFase(benchmark::State& state) {
  // The bytes-written-to-media ablation: policy x admission mode x traffic
  // shape (workloads/admission_micro.hpp documents both shapes and their
  // closed-form byte counts). The headline metrics are the exact_ counters,
  // computed from one fixed 32-FASE run OUTSIDE the timing loop — they are
  // bit-deterministic and iteration-count-independent, and bench/compare.py
  // gates them exactly (no tolerance) instead of with the noisy-time
  // envelope. The timed loop runs a short 8-FASE replay end to end so the
  // entry also carries a real cost.
  const core::PolicyKind kinds[] = {
      core::PolicyKind::kEager, core::PolicyKind::kLazy,
      core::PolicyKind::kAtlas, core::PolicyKind::kSoftCacheOffline,
      core::PolicyKind::kSoftCache};
  const auto policy = kinds[state.range(0)];
  const auto admit = static_cast<core::AdmitMode>(state.range(1));
  const auto shape =
      static_cast<workloads::AdmissionWorkload>(state.range(2));
  const auto exact = workloads::run_admission_micro(policy, admit, shape, 32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        workloads::run_admission_micro(policy, admit, shape, 8));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 8);
  state.counters["exact_bytes_per_fase"] =
      benchmark::Counter(exact.bytes_per_fase);
  state.counters["exact_media_line_writes"] =
      benchmark::Counter(static_cast<double>(exact.media_line_writes));
  state.counters["exact_bypassed"] =
      benchmark::Counter(static_cast<double>(exact.bypassed));
  state.counters["wear_max_line_writes"] =
      benchmark::Counter(static_cast<double>(exact.wear_max_line_writes));
  state.SetLabel(std::string(core::to_string(policy)) + "/" +
                 core::to_string(admit) + "/" +
                 workloads::to_string(shape));
}
BENCHMARK(BM_AdmissionBytesPerFase)
    // ER/LA/AT/SC-offline x {always, write-once}; kReuse needs the online
    // sampler, so only the online SC rows carry all three modes.
    ->ArgsProduct({{0, 1, 2, 3}, {0, 1}, {0, 1}})
    ->ArgsProduct({{4}, {0, 1, 2}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

// --- flush-behind pipeline (DESIGN.md §8) -----------------------------------

void BM_FlushPipelineIssue(benchmark::State& state) {
  // What one evicted line costs the application thread. Sync mode pays the
  // device (simulated write-back, NVC_FLUSH_NS, default 100 ns); async mode
  // pays a ring push plus the in-flight ticket upsert — the "eviction-path
  // cost = ring push" claim in executable form.
  const bool async = state.range(0) == 1;
  const auto sim_ns =
      static_cast<std::uint32_t>(env_int("NVC_FLUSH_NS", 100));
  if (async) {
    // Ring deeper than the fixed iteration count: nothing overflows, so
    // every timed iteration is the pure enqueue path.
    auto channel = FlushWorker::shared().open_channel(
        std::make_unique<CountingSink>(), 32768);
    CountingSink local;
    AsyncFlushSink sink(channel, &local);
    LineAddr l = 0;
    for (auto _ : state) {
      sink.flush_line(++l);
    }
    sink.drain();
  } else {
    pmem::FlushBackend backend(pmem::FlushKind::kSimulated, sim_ns);
    alignas(64) static char buffer[64] = {};
    for (auto _ : state) {
      backend.flush(&buffer[0]);
    }
    backend.fence();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(async ? "async:ring-push" : "sync:sim-flush");
}
BENCHMARK(BM_FlushPipelineIssue)->Arg(0)->Arg(1)->Iterations(16384);

void BM_FlushPipelineFase(benchmark::State& state) {
  // Eviction-heavy FASE: 64 distinct lines through an 8-line soft cache, so
  // ~56 evictions plus the end-of-FASE drain hit the flush path every
  // iteration. Sync mode serializes the simulated write-backs on this
  // thread; async mode overlaps them in the pipelined device (issue slots
  // instead of full latencies).
  const bool async = state.range(0) == 1;
  runtime::RuntimeConfig config;
  config.region_name = unique_region();
  config.region_size = 4u << 20;
  config.policy = core::PolicyKind::kSoftCacheOffline;
  config.policy_config.cache_size = 8;
  config.flush = pmem::FlushKind::kSimulated;
  config.simulated_flush_ns =
      static_cast<std::uint32_t>(env_int("NVC_FLUSH_NS", 100));
  config.flush_queue_depth = static_cast<std::size_t>(env_int(
      "NVC_FLUSH_QUEUE", static_cast<std::int64_t>(config.flush_queue_depth)));
  config.async_flush = async;
  config.undo_logging = true;
  config.log_sync = runtime::LogSyncMode::kBatched;
  runtime::Runtime rt(config);
  constexpr int kLines = 64;
  auto* arr = static_cast<std::uint64_t*>(rt.pm_alloc(kLines * kCacheLineSize));
  std::uint64_t v = 0;
  for (auto _ : state) {
    rt.fase_begin();
    for (int s = 0; s < kLines; ++s) {
      rt.pstore(arr[s * 8], v++);
    }
    rt.fase_end();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kLines);
  const runtime::RuntimeStats stats = rt.stats();
  state.counters["flushes"] =
      benchmark::Counter(static_cast<double>(stats.flushes));
  state.counters["fences"] =
      benchmark::Counter(static_cast<double>(stats.fences));
  state.SetLabel(async ? "async" : "sync");
  rt.destroy_storage();
}
BENCHMARK(BM_FlushPipelineFase)->Arg(0)->Arg(1);

// --- worker pools (DESIGN.md §11) -------------------------------------------

/// Shared-fixture handshake for the multi-threaded pool benchmarks: thread 0
/// publishes the pool, every thread spins for it, and the last thread out
/// tears it down (google-benchmark joins all threads between runs, so the
/// statics cycle cleanly run to run).
template <typename Pool>
Pool* await_pool(benchmark::State& state, std::atomic<Pool*>& slot,
                 std::size_t pool_size) {
  if (state.thread_index() == 0) {
    slot.store(new Pool(pool_size), std::memory_order_release);
  }
  Pool* pool;
  while ((pool = slot.load(std::memory_order_acquire)) == nullptr) {
    std::this_thread::yield();
  }
  return pool;
}

void BM_FlushPipelineDrainPool(benchmark::State& state) {
  // N app threads (one flush channel each, ->Threads axis) against an
  // M-worker pool (Arg axis): each iteration pushes a burst of 64 lines and
  // drains. With M=1 this is the pre-pool pipeline; larger M engages homed
  // sweeps plus stealing, and the counter reports how much stealing the run
  // actually saw. The gate compares these entries under --threads-noise.
  static std::atomic<FlushWorker*> shared_pool{nullptr};
  static std::atomic<int> done_threads{0};
  const auto workers = static_cast<std::size_t>(state.range(0));
  if (state.thread_index() == 0) done_threads.store(0);
  FlushWorker* pool = await_pool(state, shared_pool, workers);
  auto channel = pool->open_channel(std::make_unique<CountingSink>(), 256);
  constexpr int kBurst = 64;
  LineAddr next = static_cast<LineAddr>(state.thread_index() + 1) << 32;
  for (auto _ : state) {
    for (int i = 0; i < kBurst; ++i) {
      ++next;
      while (!channel->try_push(next)) {
        channel->request_wake();
        std::this_thread::yield();
      }
    }
    channel->request_wake();
    channel->wait_drained();
  }
  channel->close();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBurst);
  if (done_threads.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      state.threads()) {
    state.counters["steals"] =
        benchmark::Counter(static_cast<double>(pool->steals()));
    state.counters["worker_flushes"] =
        benchmark::Counter(static_cast<double>(pool->worker_flushes()));
    delete pool;
    shared_pool.store(nullptr, std::memory_order_release);
  }
}
BENCHMARK(BM_FlushPipelineDrainPool)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Threads(1)
    ->Threads(8)
    ->Threads(32)
    ->Threads(64)
    ->UseRealTime();

void BM_AnalysisPoolDrain(benchmark::State& state) {
  // Same shape for the analysis pool: N producer threads each submit one
  // 4 KiB renamed burst per iteration and drain. Analyses are the unit of
  // stealing here (ms-scale jobs, so the per-channel consumer lock is held
  // across each one).
  static std::atomic<AnalysisWorker*> shared_pool{nullptr};
  static std::atomic<int> done_threads{0};
  const auto workers = static_cast<std::size_t>(state.range(0));
  if (state.thread_index() == 0) done_threads.store(0);
  AnalysisWorker* pool = await_pool(state, shared_pool, workers);
  auto channel = pool->open_channel();
  const auto burst = random_trace(4096, 256);
  KneeConfig knee;
  knee.max_size = 1 << 8;
  for (auto _ : state) {
    std::vector<LineAddr> copy = burst;
    if (!channel->submit(std::move(copy), knee)) {
      benchmark::DoNotOptimize(analyze_burst(burst, knee));  // ring full
    }
    channel->drain();
  }
  channel->close();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  if (done_threads.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      state.threads()) {
    state.counters["steals"] =
        benchmark::Counter(static_cast<double>(pool->steals()));
    delete pool;
    shared_pool.store(nullptr, std::memory_order_release);
  }
}
BENCHMARK(BM_AnalysisPoolDrain)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Threads(1)
    ->Threads(8)
    ->Threads(32)
    ->UseRealTime();

void BM_FaseNoop(benchmark::State& state) {
  // An empty begin/end pair: isolates the per-FASE constant (two context
  // lookups + policy boundary calls), the cost the thread-local fast path
  // in Runtime::ctx() targets.
  runtime::RuntimeConfig config;
  config.region_name = unique_region();
  config.region_size = 1u << 20;
  config.policy = core::PolicyKind::kBest;
  config.flush = pmem::FlushKind::kCountOnly;
  runtime::Runtime rt(config);
  for (auto _ : state) {
    rt.fase_begin();
    rt.fase_end();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  rt.destroy_storage();
}
BENCHMARK(BM_FaseNoop);

void BM_FlushInstruction(benchmark::State& state) {
  const auto kind = static_cast<pmem::FlushKind>(state.range(0));
  pmem::FlushBackend backend(kind, /*simulated_latency_ns=*/100);
  alignas(64) static volatile char buffer[64 * 64];
  std::size_t i = 0;
  for (auto _ : state) {
    buffer[(i % 64) * 64] = static_cast<char>(i);
    backend.flush(const_cast<const char*>(&buffer[(i % 64) * 64]));
    ++i;
  }
  backend.fence();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel(pmem::to_string(backend.kind()));
}
BENCHMARK(BM_FlushInstruction)
    ->Arg(static_cast<int>(pmem::FlushKind::kClflush))
    ->Arg(static_cast<int>(pmem::FlushKind::kClflushopt))
    ->Arg(static_cast<int>(pmem::FlushKind::kClwb))
    ->Arg(static_cast<int>(pmem::FlushKind::kCountOnly));

// --- durable structures (DESIGN.md §13) -------------------------------------

/// Shared queue fixture, same handshake as the pool benchmarks above.
struct QueueFixture {
  structures::HeapPSpace ps;
  structures::DurableQueue q;
  explicit QueueFixture(std::size_t bytes)
      : ps(bytes, nvc::env_int("NVC_ELIDE", 1) != 0), q(ps) {}
};

void BM_DurableQueue(benchmark::State& state) {
  // N free-running threads, one enqueue + one dequeue per iteration: the
  // hot path of the durable MPMC queue with FliT persistence (pload per
  // hop, cas_persist at publications). Iterations are pinned because every
  // enqueue bump-allocates a node line from the shared arena.
  static std::atomic<QueueFixture*> shared{nullptr};
  static std::atomic<int> done_threads{0};
  if (state.thread_index() == 0) done_threads.store(0);
  QueueFixture* fx = await_pool(state, shared, std::size_t{16} << 20);
  std::uint64_t v = 0;
  for (auto _ : state) {
    fx->q.enqueue(v);
    fx->q.dequeue(&v);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2);
  if (done_threads.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      state.threads()) {
    state.counters["media_writes"] =
        benchmark::Counter(static_cast<double>(fx->ps.media_writes()));
    state.counters["helper_elisions"] =
        benchmark::Counter(static_cast<double>(fx->ps.helper_elisions()));
    delete fx;
    shared.store(nullptr, std::memory_order_release);
  }
}
BENCHMARK(BM_DurableQueue)
    ->Iterations(8192)
    ->Threads(1)
    ->Threads(2)
    ->Threads(4)
    ->UseRealTime();

void BM_ElisionHitRate(benchmark::State& state) {
  // The elision lever, measured: the SAME seeded turnstile schedule (3
  // virtual threads x 16 queue ops, deterministic switch sequence) with
  // helper flush elision off (Arg 0, the flush-everything durable-structure
  // baseline) vs on (Arg 1, FliT). The exact_* counters come from one
  // deterministic replay outside the timing loop, so compare.py gates them
  // with zero tolerance: media writes drop and every skipped helper flush
  // shows up as an elision.
  const bool elide = state.range(0) != 0;
  constexpr std::uint64_t kSeed = 20260808;
  const auto run_once = [](bool on) {
    auto ps = std::make_unique<structures::HeapPSpace>(1u << 20, on);
    structures::DurableQueue q(*ps);
    nvc::testing::InterleaveScheduler sched(kSeed);
    ps->set_yield_hook(sched.hook());
    std::vector<std::function<void(std::size_t)>> bodies;
    for (std::size_t i = 0; i < 3; ++i) {
      bodies.push_back([&q, i](std::size_t) {
        Rng rng(kSeed ^ (0x9E3779B9ULL * (i + 1)));
        for (int k = 0; k < 16; ++k) {
          if (rng.chance(0.6)) {
            q.enqueue(100 * (i + 1) + static_cast<std::uint64_t>(k));
          } else {
            std::uint64_t v = 0;
            q.dequeue(&v);
          }
        }
      });
    }
    sched.run(bodies);
    return ps;
  };
  {
    const auto ps = run_once(elide);
    state.counters["exact_media_writes"] =
        benchmark::Counter(static_cast<double>(ps->media_writes()));
    state.counters["exact_helper_elisions"] =
        benchmark::Counter(static_cast<double>(ps->helper_elisions()));
    state.counters["exact_helper_flushes"] =
        benchmark::Counter(static_cast<double>(ps->helper_flushes()));
    state.counters["exact_writer_flushes"] =
        benchmark::Counter(static_cast<double>(ps->writer_flushes()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_once(elide));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 48);
  state.SetLabel(elide ? "elide=on" : "elide=off");
}
BENCHMARK(BM_ElisionHitRate)->Arg(0)->Arg(1)->UseRealTime();

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): when NVC_BENCH_JSON names a file
// (default: BENCH_micro.json at the repo root, baked in at configure time;
// empty string disables), results are written there as google-benchmark
// JSON — name, real/cpu time, and the flush/fence counters — alongside the
// normal console output. The committed bench/BENCH_micro.baseline.json was
// produced this way, and bench/compare.py diffs a fresh run against it.
// Implemented by injecting --benchmark_out flags so an explicit flag on the
// command line still wins.
#ifndef NVC_BENCH_DEFAULT_JSON
#define NVC_BENCH_DEFAULT_JSON "BENCH_micro.json"
#endif
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  const std::string json_path =
      nvc::env_str("NVC_BENCH_JSON", NVC_BENCH_DEFAULT_JSON);
  std::string out_flag = "--benchmark_out=" + json_path;
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out_flag = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) {
      has_out_flag = true;
    }
  }
  if (!json_path.empty() && !has_out_flag) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
