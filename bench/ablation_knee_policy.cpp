// Ablation — knee-selection policy. The paper picks the *largest* of the
// top gradient-ranked knees (bounded by 50). This sweep compares that rule
// against: the single steepest knee, the fixed default (8), and the maximum
// (50), reporting the flush ratio each achieves.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Ablation: cache-size selection rule",
               "Section III-C — rank gradients, take top few, choose the "
               "largest-size knee");

  const auto params = params_from_env(1);
  TablePrinter table({"Workload", "paper rule", "ratio", "steepest", "ratio",
                      "fixed 8", "ratio", "max 50", "ratio"});

  for (const auto& name : all_workloads()) {
    const auto traces = record_trace(name, params);
    core::Mrc mrc;
    const auto knee = offline_knee(traces, &mrc);
    const std::size_t steepest =
        knee.candidates.empty() ? 50 : knee.candidates.front();

    auto ratio_at = [&](std::size_t size) {
      core::PolicyConfig config;
      config.cache_size = size;
      return workloads::replay_flush_count_all(
                 traces, core::PolicyKind::kSoftCacheOffline, config)
          .flush_ratio();
    };

    table.add_row({name, TablePrinter::fmt_count(knee.chosen_size),
                   TablePrinter::fmt(ratio_at(knee.chosen_size), 5),
                   TablePrinter::fmt_count(steepest),
                   TablePrinter::fmt(ratio_at(steepest), 5), "8",
                   TablePrinter::fmt(ratio_at(8), 5), "50",
                   TablePrinter::fmt(ratio_at(50), 5)});
  }
  table.print();
  std::printf("\nNote: 'max 50' has the lowest ratio by construction; the "
              "paper's rule approaches it with a fraction of the FASE-end "
              "drain cost (see ablation_cache_size_sweep for the cycle "
              "trade-off).\n");
  return 0;
}
