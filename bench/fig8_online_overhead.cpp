// Figure 8 — the cost of online cache-size selection: run SC once with the
// best size preset (no sampling) and once with online sampling + adaptation,
// and report the time difference, for 1 and 8 threads.
// Paper: overhead is a near-fixed absolute cost (avg 0.52 s on their
// machine), 1%..10% of execution time, avg 6.78%.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Figure 8: online cache-size-selection overhead",
               "Fig. 8 — overhead 1%..10% of execution time, avg 6.78%");

  const int repeats = static_cast<int>(env_int("NVC_REPEATS", 3));
  TablePrinter table({"Program", "Threads", "preset (s)", "online (s)",
                      "overhead"});
  std::vector<double> overheads;

  for (const auto& name : splash_workloads()) {
    const auto knee = offline_knee(record_trace(name, params_from_env(1)));
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const auto params = params_from_env(threads);
      auto preset_config = default_policy_config();
      preset_config.cache_size = knee.chosen_size;
      const auto preset = run_live_repeated(
          name, core::PolicyKind::kSoftCacheOffline, params, preset_config,
          repeats);
      const auto online = run_live_repeated(
          name, core::PolicyKind::kSoftCache, params,
          default_policy_config(), repeats);
      const double overhead =
          (online.seconds - preset.seconds) / online.seconds;
      overheads.push_back(overhead);
      table.add_row({name, TablePrinter::fmt_count(threads),
                     TablePrinter::fmt(preset.seconds, 3),
                     TablePrinter::fmt(online.seconds, 3),
                     TablePrinter::fmt_percent(overhead)});
    }
  }
  table.print();
  std::printf("\naverage overhead: %s (paper: 6.78%%)\n",
              TablePrinter::fmt_percent(
                  summarize_means(overheads).arithmetic)
                  .c_str());
  return 0;
}
