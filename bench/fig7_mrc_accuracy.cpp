// Figure 7 — accuracy of the MRC analysis on four programs: the actual MRC
// (direct write-cache simulation at every size), the full-trace (offline)
// model, and the sampled (online, one-burst) model.
// Paper: the sampled MRC is less precise but has the same inflection points
// as the accurate MRC, so size selection is unaffected.
#include <cstdio>

#include "core/mrc.hpp"
#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Figure 7: actual vs full-trace vs sampled MRC",
               "Fig. 7 — sampled MRC shares the accurate MRC's knees on "
               "barnes, ocean, water-nsquared, water-spatial");

  const std::size_t max_size = core::KneeConfig{}.max_size;
  for (const char* name :
       {"barnes", "ocean", "water-nsquared", "water-spatial"}) {
    const auto traces = record_trace(name, params_from_env(1));
    std::vector<LineAddr> stores;
    std::vector<std::size_t> boundaries;
    traces.trace(0).store_trace(&stores, &boundaries);

    // Actual: simulate the write cache at every size.
    const core::Mrc actual =
        core::mrc_simulate_write_cache(stores, boundaries, max_size);

    // Full-trace model: offline analysis over the whole trace.
    core::Mrc full_model;
    const auto offline = core::BurstSampler::analyze_offline(
        stores, boundaries, core::KneeConfig{}, &full_model);

    // Sampled model: one burst of the first ~1/8 of the trace (the online
    // sampler's view).
    core::BurstSampler sampler([&] {
      core::SamplerConfig config;
      config.burst_length = std::max<std::uint64_t>(stores.size() / 8, 1000);
      return config;
    }());
    std::size_t bi = 0;
    std::optional<std::size_t> online_choice;
    for (std::size_t i = 0; i < stores.size() && !online_choice; ++i) {
      while (bi < boundaries.size() && boundaries[bi] == i) {
        sampler.on_fase_boundary();
        ++bi;
      }
      online_choice = sampler.on_store(stores[i]);
    }
    const core::Mrc& sampled = sampler.last_mrc();

    std::printf("## %s\n", name);
    std::printf("# size  actual  full_trace  sampled\n");
    for (std::size_t c = 1; c <= max_size; ++c) {
      std::printf("%3zu  %8.5f  %8.5f  %8.5f\n", c, actual.at(c),
                  full_model.at(c),
                  sampled.empty() ? -1.0 : sampled.at(c));
    }
    // Extension: periodic re-sampling (the fix for phase-sensitive
    // programs whose first burst is unrepresentative — see EXPERIMENTS.md
    // on barnes).
    core::SamplerConfig re_config;
    re_config.burst_length = std::max<std::uint64_t>(stores.size() / 8, 1000);
    re_config.hibernation_length = re_config.burst_length * 2;
    core::BurstSampler resampler(re_config);
    std::optional<std::size_t> last_choice;
    bi = 0;
    for (std::size_t i = 0; i < stores.size(); ++i) {
      while (bi < boundaries.size() && boundaries[bi] == i) {
        resampler.on_fase_boundary();
        ++bi;
      }
      if (const auto s2 = resampler.on_store(stores[i])) last_choice = s2;
    }
    std::printf("offline choice: %zu, online (one burst): %zu, online with "
                "re-sampling (extension): %zu\n\n",
                offline.chosen_size, online_choice.value_or(0),
                last_choice.value_or(0));
  }
  return 0;
}
