// Table IV — detailed performance analysis of water-spatial across thread
// counts for AT, SC and BEST: executed instructions, software flush ratio,
// and L1 data-cache miss ratio (hwsim cost model; the paper used Linux perf
// on a 60-core Xeon — see DESIGN.md substitutions).
// Paper shapes: SC flush ratio 6-10x below AT, both rising with threads;
// SC executes ~8% more instructions than AT; L1 miss ratios SC < AT, both
// converging toward BEST's (contention) floor as threads grow.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner(
      "Table IV: water-spatial detail (instructions / flush ratio / L1 mr)",
      "Table IV — e.g. 1 thread: AT flush 2.61% vs SC 0.43%; L1 mr AT "
      "58.2% vs SC 30.8% vs BEST 20.3%; BEST L1 mr rises 20%->71% with "
      "threads");

  const std::size_t max_threads =
      static_cast<std::size_t>(env_int("NVC_THREADS", 32));
  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  struct Technique {
    const char* label;
    core::PolicyKind kind;
  };
  const Technique techniques[] = {
      {"AT", core::PolicyKind::kAtlas},
      {"SC", core::PolicyKind::kSoftCache},
      {"BE", core::PolicyKind::kBest},
  };

  TablePrinter table({"Metric", "Tech", "1", "2", "4", "8", "16", "32"});
  std::vector<std::vector<std::string>> rows(9);
  std::map<std::size_t, std::map<std::string, workloads::SimRunResult>> runs;

  for (const std::size_t threads : thread_counts) {
    const auto traces = record_trace("water-spatial",
                                     params_from_env(threads));
    const auto sim = sim_config_for_threads(threads, default_policy_config());
    for (const Technique& t : techniques) {
      runs[threads][t.label] =
          workloads::simulate_run(traces, t.kind, sim);
    }
  }

  for (std::size_t ti = 0; ti < 3; ++ti) {
    const Technique& t = techniques[ti];
    std::vector<std::string> instr{"inst. (M)", t.label};
    std::vector<std::string> flush{"flush ratio", t.label};
    std::vector<std::string> l1{"hw L1 mr", t.label};
    for (const std::size_t threads : thread_counts) {
      const auto& run = runs[threads][t.label];
      instr.push_back(TablePrinter::fmt(
          static_cast<double>(run.total_instructions()) / 1e6, 2));
      flush.push_back(TablePrinter::fmt_percent(run.flush_ratio()));
      l1.push_back(TablePrinter::fmt_percent(run.l1_miss_ratio()));
    }
    // Pad when max_threads < 32.
    while (instr.size() < 8) {
      instr.push_back("-");
      flush.push_back("-");
      l1.push_back("-");
    }
    table.add_row(std::move(instr));
    table.add_row(std::move(flush));
    table.add_row(std::move(l1));
  }
  table.print();
  return 0;
}
