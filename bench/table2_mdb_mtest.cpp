// Table II — execution times of the Mtest workload on MDB under the five
// timed techniques, with speedups normalized to ER.
// Paper (1M inserts, 8 threads): ER 24.58s, AT 2.94x, SC 5.07x,
// SC-offline 5.60x, BEST 6.94x.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Table II: Mtest on MDB",
               "Table II — speedups over ER: AT 2.94x, SC 5.07x, "
               "SC-offline 5.60x, BEST 6.94x");

  const std::size_t threads =
      static_cast<std::size_t>(env_int("NVC_THREADS", 8));
  const auto params = params_from_env(threads);
  const int repeats = static_cast<int>(env_int("NVC_REPEATS", 3));

  // SC-offline profiles a run first (trace mode) and fixes the knee size.
  auto profile_params = params;
  profile_params.threads = 1;
  const auto traces = record_trace("mdb", profile_params);
  const auto knee = offline_knee(traces);
  std::printf("offline-profiled cache size: %zu (paper: 20)\n\n",
              knee.chosen_size);

  struct Technique {
    const char* label;
    core::PolicyKind kind;
    std::size_t cache_size;  // 0 = policy default
  };
  const Technique techniques[] = {
      {"ER", core::PolicyKind::kEager, 0},
      {"AT", core::PolicyKind::kAtlas, 0},
      {"SC", core::PolicyKind::kSoftCache, 8},
      {"SC-o", core::PolicyKind::kSoftCacheOffline, knee.chosen_size},
      {"BEST", core::PolicyKind::kBest, 0},
  };

  TablePrinter table({"Method", "Time(sec)", "Speedup", "Flush ratio"});
  double er_seconds = 0.0;
  for (const Technique& t : techniques) {
    auto config = default_policy_config();
    if (t.cache_size != 0) config.cache_size = t.cache_size;
    const auto result =
        run_live_repeated("mdb", t.kind, params, config, repeats);
    if (t.kind == core::PolicyKind::kEager) er_seconds = result.seconds;
    table.add_row({t.label, TablePrinter::fmt(result.seconds, 3),
                   TablePrinter::fmt_ratio(er_seconds / result.seconds),
                   TablePrinter::fmt(result.stats.flush_ratio(), 5)});
  }
  table.print();
  return 0;
}
