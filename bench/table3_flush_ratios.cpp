// Table III — benchmark statistics and data flush ratios of the techniques
// on all 12 applications. ER is 1 by construction; LA is the lower bound;
// the paper's headline is the AT/SC column (avg ~12x excluding the cases
// the text calls out) and SC/LA (avg 1.43x).
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner(
      "Table III: data flush ratios of ER / LA / AT / SC",
      "Table III — e.g. barnes AT 0.082 vs SC 0.0039 (20.99x); "
      "water-spatial AT 0.071 vs SC 0.0016 (45.4x); avg AT/SC 11.9x");

  const auto params = params_from_env(1);
  auto base_config = default_policy_config();

  TablePrinter table({"Benchmark", "Size", "FASEs", "Stores", "ER", "LA",
                      "AT", "SC", "AT/SC", "SC/LA", "knee"});
  std::vector<double> at_over_sc;
  std::vector<double> sc_over_la;

  for (const auto& name : all_workloads()) {
    const auto traces = record_trace(name, params);
    const auto knee = offline_knee(traces);

    auto sc_config = base_config;
    sc_config.cache_size = knee.chosen_size;

    const auto er =
        workloads::replay_flush_count_all(traces, core::PolicyKind::kEager);
    const auto la =
        workloads::replay_flush_count_all(traces, core::PolicyKind::kLazy);
    const auto at = workloads::replay_flush_count_all(
        traces, core::PolicyKind::kAtlas, base_config);
    // SC: online policy starting at the default size with bursty sampling.
    auto online_config = base_config;
    const auto sc = workloads::replay_flush_count_all(
        traces, core::PolicyKind::kSoftCache, online_config);

    const double at_sc = sc.flushes > 0 ? static_cast<double>(at.flushes) /
                                              static_cast<double>(sc.flushes)
                                        : 1.0;
    const double sc_la = la.flushes > 0 ? static_cast<double>(sc.flushes) /
                                              static_cast<double>(la.flushes)
                                        : 1.0;
    at_over_sc.push_back(at_sc);
    sc_over_la.push_back(sc_la);

    std::uint64_t fases = 0;
    for (std::size_t t = 0; t < traces.threads(); ++t) {
      fases += traces.trace(t).fase_count;
    }

    auto workload = make_any_workload(name);
    table.add_row({name, workload->problem_size(params),
                   TablePrinter::fmt_count(fases),
                   TablePrinter::fmt_count(er.stores),
                   TablePrinter::fmt(er.flush_ratio(), 5),
                   TablePrinter::fmt(la.flush_ratio(), 5),
                   TablePrinter::fmt(at.flush_ratio(), 5),
                   TablePrinter::fmt(sc.flush_ratio(), 5),
                   TablePrinter::fmt_ratio(at_sc),
                   TablePrinter::fmt_ratio(sc_la),
                   TablePrinter::fmt_count(knee.chosen_size)});
  }
  table.add_row({"average", "-", "-", "-", "1.00000", "-", "-", "-",
                 TablePrinter::fmt_ratio(summarize_means(at_over_sc).arithmetic),
                 TablePrinter::fmt_ratio(summarize_means(sc_over_la).arithmetic),
                 "-"});
  table.print();
  std::printf("\nknee column: the size SC's offline analysis selects "
              "(paper Section IV-G: 15, 10, 2, 8, 3, 28, 23, 20 for the "
              "SPLASH2 programs and mdb)\n");
  return 0;
}
