#!/usr/bin/env python3
"""Compare a micro_gbench JSON run against the committed baseline.

Usage:
    bench/compare.py [--threads-noise F] [current.json] [baseline.json]
        current  defaults to BENCH_micro.json (micro_gbench's default output)
        baseline defaults to bench/BENCH_micro.baseline.json

The committed baseline is produced with the *simulated* flush backend —
real clflush latency swings tens of percent run-to-run on this host, the
same reason the bench harness defaults to `sim` (see bench/harness.cpp) —
and is a conservative envelope over several independent runs: per name,
the fastest repetition within each run, the slowest such value across
runs. That calibrates the gate to observed host variance (machine state —
frequency, cache pressure — shifts whole runs by >10% for some kernels);
a failure means slower than every observed good state by the tolerance.
Refresh it with:

    for i in 1 2 3; do
      NVC_FLUSH=sim NVC_FLUSH_NS=100 NVC_BENCH_JSON=/tmp/run$i.json \
          ./build/bench/micro_gbench --benchmark_min_time=0.1 --benchmark_repetitions=3
    done
    bench/compare.py --merge bench/BENCH_micro.baseline.json /tmp/run{1,2,3}.json

and run the comparison side under the same NVC_FLUSH environment.

Exits nonzero when any benchmark present in both files regressed by more
than the tolerance (default 10%, override with NVC_BENCH_TOLERANCE, e.g.
NVC_BENCH_TOLERANCE=0.25). Benchmarks only in one file are reported but are
not failures (families come and go across PRs; the baseline is refreshed
whenever micro_gbench changes shape).

Regression = real_time above baseline * (1 + tolerance) AND above baseline
by an absolute floor (default 20 ns, NVC_BENCH_MIN_DELTA_NS): a 3 ns shift
on an 8 ns ring-push micro is below this host's measurement noise, not a
regression. Counters (flushes, fences, ...) are carried through to the
report for context but are not gated: they are exact re-runnable
invariants covered by the test suite, while wall-clock needs slack.

Exception: counters named `exact_*` (the bytes-per-FASE and line-write
counts of the admission ablation, BM_AdmissionBytesPerFase) are
bit-deterministic by construction — computed from a fixed-length replay
outside the timing loop — so when one is present in both files it is gated
EXACTLY, no tolerance at all. Any divergence is a byte-accounting
regression and fails the gate; an exact counter present on only one side
is reported (EXACT?) but does not fail, mirroring the MISSING/NEW policy
for whole benchmarks.

Multi-threaded families (google-benchmark "threads" field > 1 — the
pool-size sweeps of BM_FlushPipelineDrainPool and friends) swing far more
than single-threaded micros on a shared host: N timed threads multiplex
over whatever cores the container actually grants, so scheduler placement
shifts whole configurations by 2x. `--threads-noise F` (or
NVC_BENCH_THREADS_NOISE) widens the tolerance to F for exactly those
entries, leaving single-threaded gating tight (default 0.75).

Exit codes: 0 = no regression, 1 = at least one gated regression,
2 = the gate could not run (bad usage, missing or malformed input file).
Covered by tests/test_compare_gate.py against golden fixtures in
tests/data/compare/.
"""

import json
import os
import sys


def load_results(path):
    """name -> entry, keeping the fastest raw run per name.

    With --benchmark_repetitions=N every repetition shares one name;
    min-of-N is the stable statistic on a noisy shared host (the fastest
    run is the one least perturbed by scheduling), matching how both the
    committed baseline and fresh comparison runs should be produced.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    results = {}
    for entry in data.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) — compare raw runs only.
        if entry.get("run_type") == "aggregate":
            continue
        name = entry["name"]
        best = results.get(name)
        if best is None or entry.get("real_time", 0.0) < best.get(
                "real_time", 0.0):
            results[name] = entry
    return results


def fmt_time(entry):
    return "%.0f %s" % (entry.get("real_time", 0.0), entry.get("time_unit", "ns"))


def exact_counters(entry):
    """The bit-deterministic `exact_*` counters of a benchmark entry
    (google-benchmark flattens UserCounters into the entry itself)."""
    return {key: value for key, value in entry.items()
            if key.startswith("exact_") and isinstance(value, (int, float))}


def merge(out_path, in_paths):
    """Write the envelope baseline: per name, max across runs of the
    per-run fastest repetition (see the module docstring)."""
    merged = {}
    for path in in_paths:
        for name, entry in load_results(path).items():
            best = merged.get(name)
            if best is None or entry.get("real_time", 0.0) > best.get(
                    "real_time", 0.0):
                merged[name] = entry
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump({"benchmarks": [merged[n] for n in sorted(merged)]},
                  handle, indent=1)
        handle.write("\n")
    print("merged %d benchmarks from %d runs into %s"
          % (len(merged), len(in_paths), out_path))
    return 0


def main(argv):
    if len(argv) > 1 and argv[1] == "--merge":
        if len(argv) < 4:
            print("usage: compare.py --merge <out.json> <run.json>...")
            return 2
        return merge(argv[2], argv[3:])
    threads_noise = float(os.environ.get("NVC_BENCH_THREADS_NOISE", "0.75"))
    args = []
    i = 1
    while i < len(argv):
        if argv[i] == "--threads-noise":
            if i + 1 >= len(argv):
                print("usage: compare.py --threads-noise <float> ...")
                return 2
            try:
                threads_noise = float(argv[i + 1])
            except ValueError:
                print("compare.py: bad --threads-noise value: %s" % argv[i + 1])
                return 2
            i += 2
            continue
        args.append(argv[i])
        i += 1
    current_path = args[0] if len(args) > 0 else "BENCH_micro.json"
    baseline_path = (
        args[1]
        if len(args) > 1
        else os.path.join(os.path.dirname(os.path.abspath(__file__)),
                          "BENCH_micro.baseline.json")
    )
    tolerance = float(os.environ.get("NVC_BENCH_TOLERANCE", "0.10"))
    min_delta_ns = float(os.environ.get("NVC_BENCH_MIN_DELTA_NS", "20"))
    to_ns = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

    try:
        current = load_results(current_path)
        baseline = load_results(baseline_path)
    except FileNotFoundError as err:
        # Distinct from a regression (1): the gate could not run at all.
        print("compare.py: cannot load results: %s" % err)
        return 2
    except json.JSONDecodeError as err:
        print("compare.py: malformed results file: %s" % err)
        return 2

    regressions = []
    exact_failures = []
    compared = 0
    compared_exact = 0
    for name, base in sorted(baseline.items()):
        cur = current.get(name)
        if cur is None:
            print("MISSING  %-55s (in baseline only)" % name)
            continue
        if cur.get("time_unit") != base.get("time_unit"):
            print("UNIT?    %-55s %s vs %s" % (name, cur.get("time_unit"),
                                               base.get("time_unit")))
            continue
        compared += 1
        base_t = base.get("real_time", 0.0)
        cur_t = cur.get("real_time", 0.0)
        ratio = cur_t / base_t if base_t > 0 else 1.0
        delta_ns = (cur_t - base_t) * to_ns.get(base.get("time_unit", "ns"),
                                                1.0)
        # Multi-threaded entries get the wider threads-noise envelope; the
        # baseline's thread count decides (both sides should agree, and the
        # baseline is the committed contract).
        gate = tolerance
        if base.get("threads", 1) > 1 or cur.get("threads", 1) > 1:
            gate = max(tolerance, threads_noise)
        status = "OK"
        if (base_t > 0 and cur_t > base_t * (1.0 + gate)
                and delta_ns > min_delta_ns):
            status = "REGRESSED"
            regressions.append((name, ratio))
        print("%-8s %-55s %12s -> %12s  (%+5.1f%%)"
              % (status, name, fmt_time(base), fmt_time(cur),
                 (ratio - 1.0) * 100.0))
        # Exact counters: no tolerance, any divergence fails the gate.
        for key, base_value in sorted(exact_counters(base).items()):
            cur_value = cur.get(key)
            if not isinstance(cur_value, (int, float)):
                print("EXACT?   %-55s %s (in baseline only)" % (name, key))
                continue
            compared_exact += 1
            if abs(cur_value - base_value) > 1e-9:
                exact_failures.append((name, key, base_value, cur_value))
                print("EXACT!   %-55s %s: %g -> %g"
                      % (name, key, base_value, cur_value))
    for name in sorted(set(current) - set(baseline)):
        print("NEW      %-55s %s" % (name, fmt_time(current[name])))

    print()
    failed = False
    if exact_failures:
        print("%d/%d exact counters diverged (gated with zero tolerance):"
              % (len(exact_failures), compared_exact))
        for name, key, base_value, cur_value in exact_failures:
            print("  %s %s: %g -> %g" % (name, key, base_value, cur_value))
        failed = True
    if regressions:
        print("%d/%d benchmarks regressed more than %.0f%%:"
              % (len(regressions), compared, tolerance * 100.0))
        for name, ratio in regressions:
            print("  %s  (%.2fx baseline)" % (name, ratio))
        failed = True
    if failed:
        return 1
    print("no regression beyond %.0f%% across %d benchmarks"
          " (%d exact counters matched)"
          % (tolerance * 100.0, compared, compared_exact))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
