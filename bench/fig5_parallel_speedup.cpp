// Figure 5 — parallel performance of SC and SC-offline relative to AT for
// thread counts 1..64, on the deterministic hwsim cost model (the paper ran
// a 60-core Xeon; see DESIGN.md substitutions). NVC_THREADS caps the sweep.
// Paper: SC beats AT in 36/42 configurations; greatest speedup 4.13x
// (water-nsquared, 4 threads); the gap narrows or inverts at 16-32 threads
// for fmm and water-spatial.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Figure 5: SC and SC-offline speedup over AT vs threads",
               "Fig. 5 — SC > AT in 36/42 tests; max 4.13x; inversions at "
               "high thread counts for cache-contention-bound programs");

  const std::size_t max_threads =
      static_cast<std::size_t>(env_int("NVC_THREADS", 64));
  std::vector<std::size_t> thread_counts;
  for (std::size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  int sc_wins = 0;
  int total = 0;
  TablePrinter table({"Program", "Threads", "AT (Mcycles)", "SC/AT",
                      "SC-offline/AT"});
  for (const auto& name : splash_workloads()) {
    // Offline size from the single-thread profile (as SC-offline does).
    const auto knee = offline_knee(record_trace(name, params_from_env(1)));

    for (const std::size_t threads : thread_counts) {
      const auto traces = record_trace(name, params_from_env(threads));
      auto pc = default_policy_config();
      const auto sim = sim_config_for_threads(threads, pc);

      const double at = workloads::simulate_run(
          traces, core::PolicyKind::kAtlas, sim).makespan_cycles();
      const double sc = workloads::simulate_run(
          traces, core::PolicyKind::kSoftCache, sim).makespan_cycles();
      auto sim_off = sim;
      sim_off.policy.cache_size = knee.chosen_size;
      const double sco = workloads::simulate_run(
          traces, core::PolicyKind::kSoftCacheOffline, sim_off)
                             .makespan_cycles();

      ++total;
      if (sc < at) ++sc_wins;
      table.add_row({name, TablePrinter::fmt_count(threads),
                     TablePrinter::fmt(at / 1e6, 2),
                     TablePrinter::fmt_ratio(at / sc),
                     TablePrinter::fmt_ratio(at / sco)});
    }
  }
  table.print();
  std::printf("\nSC faster than AT in %d/%d configurations (paper: 36/42)\n",
              sc_wins, total);
  return 0;
}
