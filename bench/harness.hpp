// Shared plumbing for the per-table / per-figure benchmark binaries.
//
// Two measurement substrates (see DESIGN.md):
//  * live wall-clock: workloads run through the FASE runtime against a
//    tmpfs-backed region with real clflush* instructions;
//  * trace + cost model: workloads are recorded once per thread count and
//    replayed through the policies on hwsim cores (deterministic; used for
//    the thread-scaling figures since this host exposes one core).
//
// Every binary honors NVC_FULL=1 (paper-scale inputs), NVC_THREADS,
// NVC_SEED, and NVC_FLUSH (clflush|clflushopt|clwb|sim|count).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "core/policy.hpp"
#include "core/sampler.hpp"
#include "hwsim/contention.hpp"
#include "mdb/mtest.hpp"
#include "runtime/runtime.hpp"
#include "workloads/replay.hpp"
#include "workloads/workload.hpp"

namespace nvc::bench {

/// Paper Table III order, including mdb.
std::vector<std::string> all_workloads();

/// SPLASH2-style subset used by Table I / Fig. 5 / Fig. 6 / Table IV.
std::vector<std::string> splash_workloads();

/// Instantiate any workload, including "mdb".
std::unique_ptr<workloads::Workload> make_any_workload(
    const std::string& name);

/// Default workload parameters from the environment.
workloads::WorkloadParams params_from_env(std::size_t threads = 1);

/// Record the per-thread write trace of a workload (trace mode).
workloads::TraceApi record_trace(const std::string& name,
                                 const workloads::WorkloadParams& params);

/// Offline analysis of a recorded trace: best cache size per paper rules
/// (thread 0's trace, as SC-offline profiles one representative thread).
core::KneeResult offline_knee(const workloads::TraceApi& traces,
                              core::Mrc* mrc_out = nullptr);

struct LiveResult {
  double seconds = 0.0;
  runtime::RuntimeStats stats;
};

/// Run a workload live through the runtime and time it.
LiveResult run_live(const std::string& workload, core::PolicyKind kind,
                    const workloads::WorkloadParams& params,
                    const core::PolicyConfig& policy_config);

/// Best-of-n live timing (the paper averages five runs; quick mode uses 3).
LiveResult run_live_repeated(const std::string& workload,
                             core::PolicyKind kind,
                             const workloads::WorkloadParams& params,
                             const core::PolicyConfig& policy_config,
                             int repeats);

/// Policy config with the sampler scaled to the environment: the paper's
/// burst is 64M writes; quick runs sample 64K writes.
core::PolicyConfig default_policy_config();

/// Cost-model configuration for a given thread count (contention grows with
/// threads, per hwsim/contention.hpp).
workloads::SimConfig sim_config_for_threads(std::size_t threads,
                                            const core::PolicyConfig& pc);

/// Print the standard header every bench emits.
void print_banner(const std::string& experiment, const std::string& paper_ref);

}  // namespace nvc::bench
