// Ablation — software cache size sweep. For water-spatial, sweep the
// SC-offline size from 1 to 50 and report both the flush ratio and the
// simulated cycle cost. The cycle curve is the reason the paper bounds the
// size and picks a knee rather than the maximum: beyond the knee, extra
// capacity stops removing flushes but keeps adding FASE-end drain latency
// and per-op overhead.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Ablation: cache-size sweep on water-spatial",
               "Fig. 2 + Section III-C — knees in the flush-ratio curve; "
               "diminishing returns beyond the selected size");

  const auto traces = record_trace("water-spatial", params_from_env(1));
  const auto knee = offline_knee(traces);

  std::printf("# size  flush_ratio  sim_Mcycles\n");
  for (std::size_t size = 1; size <= 50; ++size) {
    core::PolicyConfig config;
    config.cache_size = size;
    const auto counts = workloads::replay_flush_count_all(
        traces, core::PolicyKind::kSoftCacheOffline, config);
    auto sim = sim_config_for_threads(1, config);
    const double cycles = workloads::simulate_run(
        traces, core::PolicyKind::kSoftCacheOffline, sim).makespan_cycles();
    std::printf("%3zu  %9.6f  %10.3f%s\n", size, counts.flush_ratio(),
                cycles / 1e6, size == knee.chosen_size ? "   <- selected" : "");
  }
  return 0;
}
