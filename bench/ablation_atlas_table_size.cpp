// Ablation — Atlas table size. The paper's baseline uses an 8-entry
// direct-mapped table; this sweep shows why no fixed table size matches the
// adaptive cache: bigger tables help conflict-heavy workloads but never
// reach SC's fully-associative LRU behavior at the knee size.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Ablation: Atlas direct-mapped table size",
               "Section II-A — Atlas is 'a direct-mapped, fixed size "
               "cache'; SC replaces it with adaptive fully-assoc LRU");

  const auto params = params_from_env(1);
  TablePrinter table({"Workload", "AT-4", "AT-8", "AT-8x2", "AT-8x8",
                      "AT-16", "AT-64", "AT-256", "SC@knee"});
  for (const char* name :
       {"barnes", "ocean", "water-nsquared", "water-spatial", "hash"}) {
    const auto traces = record_trace(name, params);
    const auto knee = offline_knee(traces);
    std::vector<std::string> row{name};
    // (table entries, ways): AT-8x2 keeps the 8-entry budget but makes it
    // 2-way; AT-8x8 is the fully associative 8-entry table — the gap to
    // AT-8 isolates conflict misses from capacity misses.
    const std::pair<std::size_t, std::size_t> variants[] = {
        {4, 1}, {8, 1}, {8, 2}, {8, 8}, {16, 1}, {64, 1}, {256, 1}};
    for (const auto& [size, ways] : variants) {
      core::PolicyConfig config;
      config.atlas_table_size = size;
      config.atlas_associativity = ways;
      const auto at = workloads::replay_flush_count_all(
          traces, core::PolicyKind::kAtlas, config);
      row.push_back(TablePrinter::fmt(at.flush_ratio(), 5));
    }
    core::PolicyConfig sc_config;
    sc_config.cache_size = knee.chosen_size;
    const auto sc = workloads::replay_flush_count_all(
        traces, core::PolicyKind::kSoftCacheOffline, sc_config);
    row.push_back(TablePrinter::fmt(sc.flush_ratio(), 5));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nAT-8x8 vs AT-8 isolates the conflict-miss share of Atlas' "
              "table; SC@knee additionally fixes capacity by adapting.\n");
  return 0;
}
