// Figure 4 — end-to-end performance of AT, SC, SC-offline and BEST as
// speedups over ER (wall clock, real flush instructions; single thread
// except mdb, which uses 8 as in the paper).
// Paper: SC 1.4x..34.2x over ER (avg 9.6x); AT avg 4.5x; SC/AT avg 2.1x.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Figure 4: speedups over ER",
               "Fig. 4 — SC avg 9.6x over ER; AT avg 4.5x; SC over AT 2.1x; "
               "BEST avg 16.1x");

  const int repeats = static_cast<int>(env_int("NVC_REPEATS", 3));
  TablePrinter table(
      {"Program", "ER(s)", "AT", "SC", "SC-offline", "BEST", "SC/AT"});
  std::vector<double> sc_over_at;

  for (const auto& name : all_workloads()) {
    const std::size_t threads = name == "mdb" ? 8 : 1;
    const auto params = params_from_env(threads);

    auto profile_params = params;
    profile_params.threads = 1;
    const auto knee = offline_knee(record_trace(name, profile_params));

    auto config = default_policy_config();
    const auto er = run_live_repeated(name, core::PolicyKind::kEager, params,
                                      config, repeats);
    const auto at = run_live_repeated(name, core::PolicyKind::kAtlas, params,
                                      config, repeats);
    const auto sc = run_live_repeated(name, core::PolicyKind::kSoftCache,
                                      params, config, repeats);
    auto offline_config = config;
    offline_config.cache_size = knee.chosen_size;
    const auto sco = run_live_repeated(
        name, core::PolicyKind::kSoftCacheOffline, params, offline_config,
        repeats);
    const auto best = run_live_repeated(name, core::PolicyKind::kBest,
                                        params, config, repeats);

    sc_over_at.push_back(at.seconds / sc.seconds);
    table.add_row({name, TablePrinter::fmt(er.seconds, 3),
                   TablePrinter::fmt_ratio(er.seconds / at.seconds),
                   TablePrinter::fmt_ratio(er.seconds / sc.seconds),
                   TablePrinter::fmt_ratio(er.seconds / sco.seconds),
                   TablePrinter::fmt_ratio(er.seconds / best.seconds),
                   TablePrinter::fmt_ratio(at.seconds / sc.seconds)});
  }
  table.add_row({"average", "-", "-", "-", "-", "-",
                 TablePrinter::fmt_ratio(summarize_means(sc_over_at).arithmetic)});
  table.print();
  return 0;
}
