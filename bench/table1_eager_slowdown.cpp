// Table I — the cost of eager data persistence on the SPLASH2 programs:
// slowdown of ER (clflush after every persistent store) relative to running
// with no persistence overhead (BEST). Paper: 6x..33x, average 22x.
#include <cstdio>

#include "harness.hpp"

int main() {
  using namespace nvc;
  using namespace nvc::bench;
  print_banner("Table I: eager-persistence slowdown on SPLASH2",
               "Table I — barnes 22x, fmm 24x, ocean 17x, raytrace 6x, "
               "volrend 26x, water-nsquared 24x, water-spatial 33x; avg 22x");

  const auto params = params_from_env(1);
  const int repeats = static_cast<int>(env_int("NVC_REPEATS", 3));
  const auto config = default_policy_config();

  TablePrinter table({"Program", "BEST (s)", "ER (s)", "Slowdown"});
  std::vector<double> slowdowns;
  for (const auto& name : splash_workloads()) {
    const auto best = run_live_repeated(name, core::PolicyKind::kBest,
                                        params, config, repeats);
    const auto er = run_live_repeated(name, core::PolicyKind::kEager, params,
                                      config, repeats);
    const double slowdown = er.seconds / best.seconds;
    slowdowns.push_back(slowdown);
    table.add_row({name, TablePrinter::fmt(best.seconds, 3),
                   TablePrinter::fmt(er.seconds, 3),
                   TablePrinter::fmt_ratio(slowdown)});
  }
  table.add_row({"average", "-", "-",
                 TablePrinter::fmt_ratio(summarize_means(slowdowns).arithmetic)});
  table.print();
  return 0;
}
