#!/usr/bin/env bash
# One-command verification gate (referenced from README "Development"):
#
#   scripts/check.sh            tier-1 build + full ctest sweep
#                               + asan build of the policy tier (admission/
#                                 wear suites, `ctest -L policy`)
#                               + asan pass of the recovery tier (the
#                                 image-corruption fuzzer + salvage units,
#                                 `ctest -L recovery`)
#                               + the bench regression gate when a fresh
#                                 BENCH_micro.json exists at the repo root
#
# Flags / env:
#   --no-asan        skip the asan policy tier (e.g. hosts without the rt)
#   --no-bench       skip the compare.py gate
#   CTEST_PARALLEL   ctest -j value (default: nproc)
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${CTEST_PARALLEL:-$(nproc)}"
run_asan=1
run_bench=1
for arg in "$@"; do
  case "$arg" in
    --no-asan) run_asan=0 ;;
    --no-bench) run_bench=0 ;;
    *) echo "usage: scripts/check.sh [--no-asan] [--no-bench]" >&2; exit 2 ;;
  esac
done

echo "== tier-1: default build + full test sweep =="
cmake --preset default >/dev/null
cmake --build build -j "$(nproc)"
ctest --test-dir build -j "$jobs" --output-on-failure

# The durable-structure tier runs again with FliT elision DISABLED: the
# flush-everything baseline is a distinct protocol dimension (every
# persist_help hits media), so the linearizability + power-cut oracles get
# one fuzzer iteration against it too.
echo "== structures: durable suite, elision off (NVC_ELIDE=0) =="
NVC_ELIDE=0 NVC_FUZZ_ITERS=1 \
  ctest --test-dir build -L structures -j "$jobs" --output-on-failure

if [ "$run_asan" = 1 ]; then
  echo "== asan: policy tier (admission + wear suites) =="
  cmake --preset asan >/dev/null
  cmake --build build-asan -j "$(nproc)" --target test_admission test_fuzz_crash
  ctest --test-dir build-asan -L policy -j "$jobs" --output-on-failure

  # The hardened-recovery tier (DESIGN.md §14) walks deliberately hostile
  # bytes — exactly where an out-of-bounds read would hide — so the
  # image-corruption fuzzer and the salvage units get a dedicated asan pass.
  echo "== asan: recovery tier (salvage units + image-corruption fuzzer) =="
  cmake --build build-asan -j "$(nproc)" \
      --target test_recovery_units test_recovery_fuzz
  ctest --test-dir build-asan -L recovery -j "$jobs" --output-on-failure
fi

if [ "$run_bench" = 1 ]; then
  if [ -f BENCH_micro.json ]; then
    echo "== bench: regression gate (bench/compare.py) =="
    python3 bench/compare.py
  else
    echo "== bench: no BENCH_micro.json at repo root; run" \
         "./build/bench/micro_gbench first (skipping gate) =="
  fi
fi

echo "check.sh: all selected gates passed"
