#include "pmem/pmem_alloc.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "common/assert.hpp"
#include "common/checksum.hpp"
#include "common/types.hpp"

namespace nvc::pmem {

namespace {
constexpr std::uint32_t kBlockAllocated = 0xA110CA7Eu;
constexpr std::uint32_t kBlockFree = 0xF4EEF4EEu;
}  // namespace

struct PmemAllocator::Header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t reserved;
  POffset root;
  POffset bump;                    // next unreserved byte
  std::uint64_t bytes_in_use;      // live allocation payload bytes
  POffset free_list[kNumClasses];  // heads of size-class free lists
  std::uint64_t seal;              // clean-shutdown seal (see header comment)
};

struct PmemAllocator::BlockHeader {
  std::uint32_t state;       // kBlockAllocated | kBlockFree
  std::uint32_t size_class;  // index into the class table
  std::uint64_t payload;     // requested payload size
  POffset next_free;         // link when on a free list
  std::uint64_t pad;         // keep payload 16-byte aligned (header = 32B)
};

PmemAllocator::PmemAllocator(PmemRegion region, bool format)
    : region_(std::move(region)) {
  static_assert(sizeof(BlockHeader) == 32);
  // The seal word occupies what was zero padding before the bump frontier
  // (136 -> align_up(136, 16) = 144), so pre-seal images reopen unchanged:
  // their seal reads 0 = unsealed, and every other field keeps its offset.
  static_assert(sizeof(Header) == 144);
  NVC_REQUIRE(region_.valid());
  if (format) {
    NVC_REQUIRE(region_.size() > sizeof(Header) + kCacheLineSize);
    Header* h = header();
    std::memset(h, 0, sizeof(Header));
    h->magic = kMagic;
    h->version = kVersion;
    h->root = kNullOffset;
    h->bump = align_up(sizeof(Header), kMinBlock);
    h->bytes_in_use = 0;
  } else {
    // The open path treats the file as untrusted input: a truncated or
    // foreign image is a diagnosable error, never an abort.
    if (region_.size() <= sizeof(Header) + kCacheLineSize) {
      throw std::runtime_error(
          "PmemAllocator: region too small to hold a heap (" +
          std::to_string(region_.size()) + " bytes)");
    }
    const HeaderStatus st = inspect(region_.base(), region_.size());
    if (!st.magic_ok) {
      throw std::runtime_error("PmemAllocator: region is not a nvcache heap");
    }
    if (!st.version_ok) {
      throw std::runtime_error(
          "PmemAllocator: heap layout version mismatch (found " +
          std::to_string(st.version) + ", want " + std::to_string(kVersion) +
          ")");
    }
    if (st.seal_valid) seal_gen_ = st.seal_gen;
  }
}

PmemAllocator::Header* PmemAllocator::header() const {
  return static_cast<Header*>(region_.base());
}

PmemAllocator::BlockHeader* PmemAllocator::block_at(POffset offset) const {
  NVC_ASSERT(offset >= sizeof(Header) + sizeof(BlockHeader));
  return static_cast<BlockHeader*>(
      region_.at(offset - sizeof(BlockHeader)));
}

std::size_t PmemAllocator::class_for(std::size_t size) {
  std::size_t cls = 0;
  std::size_t block = kMinBlock;
  while (block < size && cls + 1 < kNumClasses) {
    block <<= 1;
    ++cls;
  }
  return block >= size ? cls : kNumClasses;  // kNumClasses => oversized
}

std::size_t PmemAllocator::class_block_size(std::size_t cls) {
  return kMinBlock << cls;
}

POffset PmemAllocator::allocate(std::size_t size) {
  if (size == 0) size = 1;
  Header* h = header();
  const std::size_t cls = class_for(size);

  // Fast path: reuse a block from the size-class free list.
  if (cls < kNumClasses && h->free_list[cls] != kNullOffset) {
    const POffset off = h->free_list[cls];
    BlockHeader* b = block_at(off);
    NVC_ASSERT(b->state == kBlockFree);
    h->free_list[cls] = b->next_free;
    b->state = kBlockAllocated;
    b->payload = size;
    b->next_free = kNullOffset;
    h->bytes_in_use += size;
    return off;
  }

  // Slow path: bump-allocate a fresh block. Payloads are cache-line aligned
  // so persistent objects never straddle lines gratuitously (and alignas(64)
  // members work); recycled blocks keep the alignment they were created
  // with.
  const std::size_t payload_capacity =
      cls < kNumClasses ? class_block_size(cls) : align_up(size, kMinBlock);
  const std::size_t total = sizeof(BlockHeader) + payload_capacity;
  const POffset start =
      align_up(h->bump + sizeof(BlockHeader), kCacheLineSize) -
      sizeof(BlockHeader);
  if (start + total > region_.size()) return kNullOffset;  // region exhausted
  h->bump = start + total;

  auto* b = static_cast<BlockHeader*>(region_.at(start));
  b->state = kBlockAllocated;
  b->size_class =
      cls < kNumClasses ? static_cast<std::uint32_t>(cls) : ~0u;
  b->payload = size;
  b->next_free = kNullOffset;
  b->pad = 0;
  h->bytes_in_use += size;
  return start + sizeof(BlockHeader);
}

void PmemAllocator::deallocate(POffset offset) {
  if (offset == kNullOffset) return;
  Header* h = header();
  BlockHeader* b = block_at(offset);
  NVC_REQUIRE(b->state == kBlockAllocated, "double free or corruption");
  h->bytes_in_use -= b->payload;
  b->state = kBlockFree;
  if (b->size_class != ~0u) {
    NVC_ASSERT(b->size_class < kNumClasses);
    b->next_free = h->free_list[b->size_class];
    h->free_list[b->size_class] = offset;
  }
  // Oversized blocks are not recycled; the experiments never churn them.
}

std::size_t PmemAllocator::block_size(POffset offset) const {
  const BlockHeader* b = block_at(offset);
  NVC_REQUIRE(b->state == kBlockAllocated);
  return b->size_class != ~0u ? class_block_size(b->size_class)
                              : align_up(b->payload, kMinBlock);
}

POffset PmemAllocator::root() const { return header()->root; }

void PmemAllocator::set_root(POffset offset) { header()->root = offset; }

std::size_t PmemAllocator::bytes_in_use() const {
  return header()->bytes_in_use;
}

std::size_t PmemAllocator::bytes_reserved() const { return header()->bump; }

std::uint64_t PmemAllocator::compute_seal(const void* header_bytes,
                                          std::uint32_t gen) {
  // CRC over the header image with the seal field zeroed (the seal cannot
  // cover itself); the generation in the high word keeps the whole seal
  // nonzero and distinguishes successive clean shutdowns for the scrubber's
  // stale-image detection.
  Header copy;
  std::memcpy(&copy, header_bytes, sizeof(copy));
  copy.seal = 0;
  const std::uint32_t crc = crc32c(&copy, sizeof(copy));
  return (static_cast<std::uint64_t>(gen) << 32) | crc;
}

std::uint64_t PmemAllocator::seal() {
  Header* h = header();
  ++seal_gen_;
  if (seal_gen_ == 0) seal_gen_ = 1;  // wrap: 0 is reserved for "never"
  h->seal = compute_seal(h, seal_gen_);
  return h->seal;
}

void PmemAllocator::unseal() {
  header()->seal = 0;
}

bool PmemAllocator::sealed_clean() const {
  const Header* h = header();
  if (h->seal == 0) return false;
  return h->seal == compute_seal(h, static_cast<std::uint32_t>(h->seal >> 32));
}

PmemAllocator::HeaderStatus PmemAllocator::inspect(const void* base,
                                                   std::size_t size) {
  HeaderStatus st;
  if (base == nullptr || size < sizeof(Header)) return st;
  Header h;
  std::memcpy(&h, base, sizeof(h));
  st.magic_ok = h.magic == kMagic;
  st.version = h.version;
  st.version_ok = h.version == kVersion;
  st.root = h.root;
  st.bump = h.bump;
  st.bump_plausible = h.bump >= align_up(sizeof(Header), kMinBlock) &&
                      h.bump <= size;
  st.sealed = h.seal != 0;
  if (st.sealed) {
    st.seal_gen = static_cast<std::uint32_t>(h.seal >> 32);
    st.seal_valid = h.seal == compute_seal(&h, st.seal_gen);
  }
  return st;
}

std::size_t PmemAllocator::seal_offset() noexcept {
  return offsetof(Header, seal);
}

std::size_t PmemAllocator::header_size() noexcept { return sizeof(Header); }

}  // namespace nvc::pmem
