#include "pmem/flush.hpp"

#include <chrono>
#include <cstring>

#include "common/assert.hpp"
#include "common/cpu.hpp"
#include "pmem/fault.hpp"
#include "pmem/wear.hpp"

namespace nvc::pmem {

namespace {

#if defined(__x86_64__)
inline void do_clflush(const void* p) noexcept {
  asm volatile("clflush %0"
               : "+m"(*static_cast<volatile char*>(const_cast<void*>(p))));
}
inline void do_clflushopt(const void* p) noexcept {
  asm volatile("clflushopt %0"
               : "+m"(*static_cast<volatile char*>(const_cast<void*>(p))));
}
inline void do_clwb(const void* p) noexcept {
  asm volatile("clwb %0"
               : "+m"(*static_cast<volatile char*>(const_cast<void*>(p))));
}
inline void do_sfence() noexcept { asm volatile("sfence" ::: "memory"); }
#else
inline void do_clflush(const void*) noexcept {}
inline void do_clflushopt(const void*) noexcept {}
inline void do_clwb(const void*) noexcept {}
inline void do_sfence() noexcept {
  std::atomic_thread_fence(std::memory_order_seq_cst);
}
#endif

inline void spin_ns(std::uint32_t ns) noexcept {
  const auto start = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - start)
             .count() < ns) {
    // busy wait: models a synchronous flush-to-NVRAM latency
  }
}

}  // namespace

FlushKind default_flush_kind() {
#if defined(__x86_64__)
  if (cpu_features().clflush) return FlushKind::kClflush;
#endif
  return FlushKind::kSimulated;
}

FlushKind parse_flush_kind(const char* name) {
  if (name == nullptr) return default_flush_kind();
  if (std::strcmp(name, "clflush") == 0) return FlushKind::kClflush;
  if (std::strcmp(name, "clflushopt") == 0) return FlushKind::kClflushopt;
  if (std::strcmp(name, "clwb") == 0) return FlushKind::kClwb;
  if (std::strcmp(name, "sim") == 0) return FlushKind::kSimulated;
  if (std::strcmp(name, "count") == 0) return FlushKind::kCountOnly;
  return default_flush_kind();
}

const char* to_string(FlushKind kind) {
  switch (kind) {
    case FlushKind::kClflush:
      return "clflush";
    case FlushKind::kClflushopt:
      return "clflushopt";
    case FlushKind::kClwb:
      return "clwb";
    case FlushKind::kSimulated:
      return "sim";
    case FlushKind::kCountOnly:
      return "count";
  }
  NVC_UNREACHABLE("invalid FlushKind");
}

FlushBackend::FlushBackend(FlushKind kind, std::uint32_t simulated_latency_ns)
    : kind_(kind), simulated_latency_ns_(simulated_latency_ns) {
  // Downgrade unavailable hardware instructions to the simulated backend so
  // that a configuration string never silently produces no-op flushes.
  const auto& f = cpu_features();
  const bool ok = (kind_ == FlushKind::kSimulated) ||
                  (kind_ == FlushKind::kCountOnly) ||
                  (kind_ == FlushKind::kClflush && f.clflush) ||
                  (kind_ == FlushKind::kClflushopt && f.clflushopt) ||
                  (kind_ == FlushKind::kClwb && f.clwb);
  if (!ok) kind_ = FlushKind::kSimulated;
}

FlushResult FlushBackend::consult_injector(const void* addr) noexcept {
  // kCountOnly backends skip the spike spin: they exist for pure counting
  // where wall-clock fidelity is explicitly not wanted.
  const auto line = line_of(reinterpret_cast<PmAddr>(addr));
  const FaultDecision d = injector_->on_flush_attempt(line);
  if (d.spike_ns > 0 && kind_ != FlushKind::kCountOnly) spin_ns(d.spike_ns);
  if (!d.fail) return FlushResult::kOk;
  ++faults_;
  return d.bad ? FlushResult::kBadLine : FlushResult::kTransient;
}

FlushResult FlushBackend::flush(const void* addr) noexcept {
  ++flushes_;
  if (injector_ != nullptr && !injector_->idle()) {
    const FlushResult r = consult_injector(addr);
    if (r != FlushResult::kOk) return r;  // the write-back never lands
  }
  switch (kind_) {
    case FlushKind::kClflush:
      do_clflush(addr);
      break;
    case FlushKind::kClflushopt:
      do_clflushopt(addr);
      break;
    case FlushKind::kClwb:
      do_clwb(addr);
      break;
    case FlushKind::kSimulated:
      spin_ns(simulated_latency_ns_);
      break;
    case FlushKind::kCountOnly:
      break;
  }
  if (wear_ != nullptr) {
    wear_->record(line_of(reinterpret_cast<PmAddr>(addr)));
  }
  return FlushResult::kOk;
}

FlushResult FlushBackend::issue(const void* addr) noexcept {
  ++flushes_;
  if (injector_ != nullptr && !injector_->idle()) {
    const FlushResult r = consult_injector(addr);
    if (r != FlushResult::kOk) return r;
  }
  switch (kind_) {
    case FlushKind::kClflush:
      do_clflush(addr);
      break;
    case FlushKind::kClflushopt:
      do_clflushopt(addr);
      break;
    case FlushKind::kClwb:
      do_clwb(addr);
      break;
    case FlushKind::kSimulated:
    case FlushKind::kCountOnly:
      break;
  }
  if (wear_ != nullptr) {
    wear_->record(line_of(reinterpret_cast<PmAddr>(addr)));
  }
  return FlushResult::kOk;
}

FlushResult FlushBackend::flush_range(const void* addr,
                                      std::size_t size) noexcept {
  FlushResult worst = FlushResult::kOk;
  if (size == 0) return worst;
  auto first = reinterpret_cast<std::uintptr_t>(addr) & ~(kCacheLineSize - 1);
  const auto last = reinterpret_cast<std::uintptr_t>(addr) + size - 1;
  for (std::uintptr_t line = first; line <= last; line += kCacheLineSize) {
    const FlushResult r = flush(reinterpret_cast<const void*>(line));
    if (static_cast<int>(r) > static_cast<int>(worst)) worst = r;
  }
  return worst;
}

void FlushBackend::fence() noexcept {
  ++fences_;
  if (kind_ == FlushKind::kCountOnly) return;
  do_sfence();
}

}  // namespace nvc::pmem
