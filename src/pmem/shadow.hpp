// Shadow persistent-memory model for crash-consistency testing.
//
// Real hardware keeps recently written lines in the (volatile) CPU cache;
// only flushed lines are guaranteed durable. ShadowPmem makes that split
// explicit: every store lands in the volatile image, a flush copies the
// affected cache line into the durable image, and crash() discards all
// unflushed state. Tests drive a policy against this model and then check
// what an actual power failure would have left in NVRAM.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <unordered_map>
#include <unordered_set>

#include "common/types.hpp"
#include "pmem/wear.hpp"

namespace nvc::pmem {

class FaultInjector;

class ShadowPmem {
 public:
  explicit ShadowPmem(std::size_t size);

  std::size_t size() const noexcept { return size_; }

  /// Write `len` bytes at byte offset `addr` into the volatile image.
  void store(PmAddr addr, const void* data, std::size_t len);

  /// Convenience: store a trivially-copyable value.
  template <typename T>
  void store_value(PmAddr addr, const T& value) {
    store(addr, &value, sizeof(T));
  }

  /// Read from the volatile image (what the running program sees).
  void load(PmAddr addr, void* out, std::size_t len) const;

  template <typename T>
  T load_value(PmAddr addr) const {
    T v{};
    load(addr, &v, sizeof(T));
    return v;
  }

  /// Persist one cache line: copy it from volatile to durable. Dropped
  /// (volatile image untouched, flush not counted) while frozen. Returns
  /// false when an attached FaultInjector failed the attempt (the durable
  /// image is untouched); frozen drops return true — power is off, so no
  /// software could observe the failure anyway.
  bool flush_line(LineAddr line);

  /// Torn write-back: persist only the first `bytes` bytes of `line`
  /// (a multiple of 8 < 64). Works even while frozen — this models the
  /// write-back that raced the power cut and partially landed. The line
  /// stays dirty: its remaining bytes are still unpersisted.
  void flush_line_torn(LineAddr line, std::size_t bytes);

  /// Persist the line containing byte offset `addr`.
  void flush_addr(PmAddr addr) { flush_line(line_of(addr)); }

  /// Route every flush_line decision through `injector` (nullptr detaches).
  /// Not owned. Recovery paths detach before re-reading the image.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Persist every dirty line (models a whole-cache flush).
  void flush_all();

  /// Power failure: all unflushed lines are lost; the volatile image is
  /// reloaded from the durable image (as a restarted process would see).
  /// Power is back after the restart: a preceding freeze() is cleared.
  void crash();

  /// Power is off from this instant: every subsequent flush is dropped —
  /// nothing can reach the durable image until crash() restarts the
  /// machine. Crash-injection rigs call this at their freeze point so no
  /// write-back path, however indirect, can leak past the power cut.
  void freeze() noexcept { frozen_ = true; }
  bool frozen() const noexcept { return frozen_; }

  /// Read from the durable image (what recovery would see after a crash).
  void load_durable(PmAddr addr, void* out, std::size_t len) const;

  template <typename T>
  T durable_value(PmAddr addr) const {
    T v{};
    load_durable(addr, &v, sizeof(T));
    return v;
  }

  std::size_t dirty_line_count() const noexcept { return dirty_.size(); }
  bool line_dirty(LineAddr line) const { return dirty_.contains(line); }

  std::uint64_t stores() const noexcept { return stores_; }
  std::uint64_t flushes() const noexcept { return flushes_; }
  std::uint64_t fault_drops() const noexcept { return fault_drops_; }
  std::uint64_t torn_flushes() const noexcept { return torn_flushes_; }

  /// Endurance accounting (DESIGN.md §12): bytes that actually programmed
  /// the durable image — full lines plus torn prefixes; dropped attempts
  /// (frozen, out-of-range, injected failure) never count.
  std::uint64_t bytes_written() const noexcept { return bytes_written_; }
  /// Write-backs that programmed (part of) `line`.
  std::uint64_t line_write_count(LineAddr line) const {
    const auto it = line_writes_.find(line);
    return it == line_writes_.end() ? 0 : it->second;
  }
  /// Max/mean/leveling-skew over the per-line write counts.
  WearStats wear_stats() const;

  /// Raw base of the volatile image, 64-byte aligned — lets components that
  /// write through pointers (the undo log) live inside the crash model.
  /// Writes through this pointer bypass store()/dirty accounting, but
  /// flush_line() copies the whole line regardless of the dirty set, so a
  /// pointer-writing component persists correctly as long as every byte it
  /// needs durable is covered by a flush_line() before crash().
  std::uint8_t* volatile_base() noexcept { return volatile_.get(); }

 private:
  using AlignedImage = std::unique_ptr<std::uint8_t[], decltype(&std::free)>;
  static AlignedImage make_image(std::size_t size);

  std::size_t size_;
  AlignedImage volatile_;
  AlignedImage durable_;
  bool frozen_ = false;
  FaultInjector* injector_ = nullptr;
  std::unordered_set<LineAddr> dirty_;
  std::unordered_map<LineAddr, std::uint64_t> line_writes_;
  std::uint64_t stores_ = 0;
  std::uint64_t flushes_ = 0;
  std::uint64_t fault_drops_ = 0;
  std::uint64_t torn_flushes_ = 0;
  std::uint64_t bytes_written_ = 0;
};

}  // namespace nvc::pmem
