#include "pmem/pmem_region.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "common/assert.hpp"
#include "common/env.hpp"

namespace nvc::pmem {

namespace {

std::string region_path(const std::string& name) {
  return region_dir() + "/nvcache." + name + ".pmem";
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

std::string region_dir() {
  std::string dir = env_str("NVC_PMEM_DIR", "");
  if (!dir.empty()) return dir;
  struct stat st {};
  if (::stat("/dev/shm", &st) == 0 && S_ISDIR(st.st_mode)) return "/dev/shm";
  return "/tmp";
}

PmemRegion PmemRegion::create(const std::string& name, std::size_t size) {
  NVC_REQUIRE(size > 0);
  const std::string path = region_path(name);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0600);
  if (fd < 0) throw_errno("PmemRegion::create open " + path);
  if (::ftruncate(fd, static_cast<off_t>(size)) != 0) {
    ::close(fd);
    throw_errno("PmemRegion::create ftruncate " + path);
  }
  void* base =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) throw_errno("PmemRegion::create mmap " + path);
  return PmemRegion(name, path, base, size);
}

PmemRegion PmemRegion::open(const std::string& name) {
  const std::string path = region_path(name);
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) throw_errno("PmemRegion::open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw_errno("PmemRegion::open fstat " + path);
  }
  if (st.st_size <= 0) {
    // Not an OS error (errno is stale here): the backing file was truncated
    // to nothing — a corrupt image, reported as such rather than crashing
    // in mmap or in a later header read.
    ::close(fd);
    throw std::runtime_error("PmemRegion::open " + path +
                             ": region file is empty (truncated image?)");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* base =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) throw_errno("PmemRegion::open mmap " + path);
  return PmemRegion(name, path, base, size);
}

bool PmemRegion::exists(const std::string& name) {
  struct stat st {};
  return ::stat(region_path(name).c_str(), &st) == 0;
}

void PmemRegion::destroy(const std::string& name) {
  ::unlink(region_path(name).c_str());
}

PmemRegion::PmemRegion(PmemRegion&& other) noexcept
    : name_(std::move(other.name_)), path_(std::move(other.path_)),
      base_(std::exchange(other.base_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

PmemRegion& PmemRegion::operator=(PmemRegion&& other) noexcept {
  if (this != &other) {
    unmap();
    name_ = std::move(other.name_);
    path_ = std::move(other.path_);
    base_ = std::exchange(other.base_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

PmemRegion::~PmemRegion() { unmap(); }

std::uint64_t PmemRegion::offset_of(const void* p) const noexcept {
  NVC_ASSERT(contains(p));
  return static_cast<std::uint64_t>(static_cast<const char*>(p) -
                                    static_cast<const char*>(base_));
}

void* PmemRegion::at(std::uint64_t offset) const noexcept {
  NVC_ASSERT(offset < size_);
  return static_cast<char*>(base_) + offset;
}

bool PmemRegion::contains(const void* p) const noexcept {
  const auto* c = static_cast<const char*>(p);
  const auto* b = static_cast<const char*>(base_);
  return base_ != nullptr && c >= b && c < b + size_;
}

void PmemRegion::sync() const {
  if (base_ != nullptr) ::msync(base_, size_, MS_SYNC);
}

void PmemRegion::close_and_destroy() {
  const std::string path = path_;
  unmap();
  if (!path.empty()) ::unlink(path.c_str());
}

void PmemRegion::unmap() noexcept {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
    size_ = 0;
  }
}

}  // namespace nvc::pmem
