#include "pmem/wear.hpp"

#include <algorithm>

namespace nvc::pmem {

void WearTracker::record(LineAddr line) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++counts_[line];
  }
  // Publish after the per-line count so an acquire-reader of the total
  // never sees a byte counted whose map entry is still being written.
  total_.fetch_add(1, std::memory_order_release);
}

WearStats WearTracker::stats() const {
  WearStats s;
  std::lock_guard<std::mutex> lock(mutex_);
  s.lines_touched = counts_.size();
  std::uint64_t total = 0;
  for (const auto& [line, n] : counts_) {
    (void)line;
    total += n;
    s.max_line_writes = std::max(s.max_line_writes, n);
  }
  s.line_writes = total;
  s.bytes_written = total * kCacheLineSize;
  if (!counts_.empty()) {
    s.mean_line_writes =
        static_cast<double>(total) / static_cast<double>(counts_.size());
    if (s.mean_line_writes > 0.0) {
      s.leveling_skew =
          static_cast<double>(s.max_line_writes) / s.mean_line_writes - 1.0;
    }
  }
  return s;
}

std::uint64_t WearTracker::line_write_count(LineAddr line) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counts_.find(line);
  return it == counts_.end() ? 0 : it->second;
}

void WearTracker::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counts_.clear();
  total_.store(0, std::memory_order_release);
}

}  // namespace nvc::pmem
