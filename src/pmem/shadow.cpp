#include "pmem/shadow.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace nvc::pmem {

ShadowPmem::ShadowPmem(std::size_t size)
    : volatile_(size, 0), durable_(size, 0) {
  NVC_REQUIRE(size > 0);
}

void ShadowPmem::store(PmAddr addr, const void* data, std::size_t len) {
  NVC_REQUIRE(addr + len <= volatile_.size(), "store out of region");
  std::memcpy(volatile_.data() + addr, data, len);
  ++stores_;
  const LineAddr first = line_of(addr);
  const LineAddr last = line_of(addr + len - 1);
  for (LineAddr line = first; line <= last; ++line) dirty_.insert(line);
}

void ShadowPmem::load(PmAddr addr, void* out, std::size_t len) const {
  NVC_REQUIRE(addr + len <= volatile_.size(), "load out of region");
  std::memcpy(out, volatile_.data() + addr, len);
}

void ShadowPmem::flush_line(LineAddr line) {
  ++flushes_;
  const PmAddr base = line_base(line);
  if (base >= volatile_.size()) return;  // flush of a line we never mapped
  const std::size_t len = std::min(kCacheLineSize, volatile_.size() - base);
  std::memcpy(durable_.data() + base, volatile_.data() + base, len);
  dirty_.erase(line);
}

void ShadowPmem::flush_all() {
  // Copy to avoid iterating a set while erasing from it.
  std::vector<LineAddr> lines(dirty_.begin(), dirty_.end());
  for (LineAddr line : lines) flush_line(line);
}

void ShadowPmem::crash() {
  volatile_ = durable_;
  dirty_.clear();
}

void ShadowPmem::load_durable(PmAddr addr, void* out, std::size_t len) const {
  NVC_REQUIRE(addr + len <= durable_.size(), "durable load out of region");
  std::memcpy(out, durable_.data() + addr, len);
}

}  // namespace nvc::pmem
