#include "pmem/shadow.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "pmem/fault.hpp"

namespace nvc::pmem {

ShadowPmem::AlignedImage ShadowPmem::make_image(std::size_t size) {
  // Cache-line aligned so pointer-based line arithmetic (volatile_base())
  // agrees with the offset-based line model.
  auto* p = static_cast<std::uint8_t*>(
      std::aligned_alloc(kCacheLineSize, align_up(size, kCacheLineSize)));
  NVC_REQUIRE(p != nullptr);
  std::memset(p, 0, size);
  return AlignedImage(p, &std::free);
}

ShadowPmem::ShadowPmem(std::size_t size)
    : size_(size), volatile_(make_image(size)), durable_(make_image(size)) {
  NVC_REQUIRE(size > 0);
}

void ShadowPmem::store(PmAddr addr, const void* data, std::size_t len) {
  NVC_REQUIRE(addr + len <= size_, "store out of region");
  std::memcpy(volatile_.get() + addr, data, len);
  ++stores_;
  const LineAddr first = line_of(addr);
  const LineAddr last = line_of(addr + len - 1);
  for (LineAddr line = first; line <= last; ++line) dirty_.insert(line);
}

void ShadowPmem::load(PmAddr addr, void* out, std::size_t len) const {
  NVC_REQUIRE(addr + len <= size_, "load out of region");
  std::memcpy(out, volatile_.get() + addr, len);
}

bool ShadowPmem::flush_line(LineAddr line) {
  if (frozen_) return true;  // power is off: the write-back never happens
  ++flushes_;
  const PmAddr base = line_base(line);
  if (base >= size_) return true;  // flush of a line we never mapped
  if (injector_ != nullptr && injector_->on_flush_attempt(line).fail) {
    ++fault_drops_;
    return false;  // media rejected the write-back; durable image untouched
  }
  const std::size_t len = std::min(kCacheLineSize, size_ - base);
  std::memcpy(durable_.get() + base, volatile_.get() + base, len);
  dirty_.erase(line);
  bytes_written_ += len;
  ++line_writes_[line];
  return true;
}

void ShadowPmem::flush_line_torn(LineAddr line, std::size_t bytes) {
  NVC_REQUIRE(bytes > 0 && bytes < kCacheLineSize && bytes % 8 == 0,
              "torn length must be a multiple of 8 below a full line");
  const PmAddr base = line_base(line);
  if (base >= size_) return;
  ++torn_flushes_;
  const std::size_t len = std::min(bytes, size_ - base);
  std::memcpy(durable_.get() + base, volatile_.get() + base, len);
  // The line stays dirty: bytes past the tear never persisted. The prefix
  // did program media cells, so it wears the line like any write.
  bytes_written_ += len;
  ++line_writes_[line];
}

void ShadowPmem::flush_all() {
  // Copy to avoid iterating a set while erasing from it.
  std::vector<LineAddr> lines(dirty_.begin(), dirty_.end());
  for (LineAddr line : lines) flush_line(line);
}

void ShadowPmem::crash() {
  frozen_ = false;  // the restarted machine has power again
  std::memcpy(volatile_.get(), durable_.get(), size_);
  dirty_.clear();
}

WearStats ShadowPmem::wear_stats() const {
  WearStats s;
  s.lines_touched = line_writes_.size();
  std::uint64_t total = 0;
  for (const auto& [line, n] : line_writes_) {
    (void)line;
    total += n;
    s.max_line_writes = std::max(s.max_line_writes, n);
  }
  s.line_writes = total;
  s.bytes_written = bytes_written_;
  if (!line_writes_.empty()) {
    s.mean_line_writes =
        static_cast<double>(total) / static_cast<double>(line_writes_.size());
    if (s.mean_line_writes > 0.0) {
      s.leveling_skew =
          static_cast<double>(s.max_line_writes) / s.mean_line_writes - 1.0;
    }
  }
  return s;
}

void ShadowPmem::load_durable(PmAddr addr, void* out, std::size_t len) const {
  NVC_REQUIRE(addr + len <= size_, "durable load out of region");
  std::memcpy(out, durable_.get() + addr, len);
}

}  // namespace nvc::pmem
