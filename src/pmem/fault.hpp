// Deterministic NVRAM media-fault injection.
//
// Real NVRAM write paths fail in ways the paper's model ignores: transient
// flush errors (media busy, thermal throttling — "Writes Hurt" documents
// Optane latency spikes that look exactly like this to software), lines that
// go permanently bad, and write-backs torn mid-line by a power cut. The
// FaultInjector makes those failure classes reproducible: every decision is
// a pure function of (seed, line, per-line attempt ordinal), so a fuzzing
// campaign replays bit-for-bit from NVC_FAULT_SEED and a crash-injection
// sweep sees identical pre-freeze fault outcomes at every freeze point
// (the ordinal sequence of the common prefix never depends on where the
// power cut lands).
//
// Fault classes:
//  - transient: this attempt fails; a retry (next ordinal) may succeed.
//  - bad line: a stable per-line verdict — every attempt fails until the
//    line is quarantined by the fault-tolerant sink above.
//  - torn write-back: at a crash point, the first dropped flush may instead
//    persist a prefix of the line. Torn lengths are multiples of 8 bytes,
//    matching the 8-byte power-fail atomicity unit real platforms (ADR)
//    guarantee — a packed 8-byte header word can never itself tear.
//  - latency spike: an attempt is delayed but succeeds; consumers decide
//    whether to spin (hardware backends) or just count (shadow model).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"

namespace nvc::pmem {

/// Knobs for the injector, all settable through NVC_FAULT_* (see from_env).
/// Retry/degradation policy lives here too: the runtime copies those fields
/// into its (pmem-agnostic) core retry machinery so one env surface controls
/// both sides.
struct FaultConfig {
  bool attach = false;          // attach even when every rate is zero
  double rate = 0.0;            // P(transient failure) per flush attempt
  double bad_line_rate = 0.0;   // P(a given line is permanently bad)
  std::vector<LineAddr> bad_lines;  // explicit bad set (tests), additive
  double torn_rate = 0.0;       // P(the crash-point write-back tears)
  std::uint32_t latency_ns = 0;     // spike magnitude (0 disables spikes)
  double latency_rate = 0.0;        // P(spike) per flush attempt
  std::uint32_t max_retries = 8;    // attempts after the first failure
  std::uint64_t backoff_ns = 200;       // first retry backoff
  std::uint64_t backoff_cap_ns = 10000;  // exponential backoff ceiling
  std::uint32_t degrade_after = 4;  // transients before a mode latch fires
  std::uint64_t seed = 1;

  /// True when the injector would ever fire (or attach forces the hooks in).
  bool enabled() const noexcept {
    return attach || rate > 0.0 || bad_line_rate > 0.0 || !bad_lines.empty() ||
           torn_rate > 0.0 || (latency_ns > 0 && latency_rate > 0.0);
  }

  /// Read NVC_FAULT_RATE / _BAD_LINES / _TORN / _LATENCY_NS / _LATENCY_RATE /
  /// _RETRIES / _BACKOFF_NS / _BACKOFF_CAP_NS / _DEGRADE_AFTER / _SEED
  /// (defaults to NVC_SEED) / _ATTACH.
  static FaultConfig from_env();

  /// One-line "NVC_FAULT_RATE=... NVC_FAULT_SEED=..." fragment for replay
  /// commands; empty when the config is all-defaults and detached.
  std::string describe() const;
};

/// Verdict for one flush attempt.
struct FaultDecision {
  bool fail = false;           // the line does not persist this attempt
  bool bad = false;            // permanent: set only together with fail
  std::uint32_t spike_ns = 0;  // artificial latency to model (0 = none)
};

/// Shared, thread-safe decision source consulted by ShadowPmem and
/// FlushBackend. Counters use release publication so stats readers racing
/// the async flush worker see consistent values.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultConfig& config);

  /// Decide the fate of the next write-back attempt of `line`, advancing
  /// the line's attempt ordinal. Thread-safe.
  FaultDecision on_flush_attempt(LineAddr line);

  /// Stable per-line verdict: permanently bad media.
  bool line_bad(LineAddr line) const noexcept;

  /// Bytes of `line` that a torn crash-point write-back would persist:
  /// 0 = the write-back drops whole (no tear), else a multiple of 8 in
  /// [8, 56]. Pure — same answer every call, no ordinal advance.
  std::size_t torn_bytes(LineAddr line) const noexcept;

  const FaultConfig& config() const noexcept { return config_; }

  /// True when no decision stream can ever fire (attach=true with every
  /// rate zero and no explicit bad lines). Callers on the flush hot path
  /// check this before consulting, so an attached-but-idle injector costs
  /// one predictable branch per flush.
  bool idle() const noexcept { return idle_; }

  std::uint64_t transients() const noexcept {
    return transients_.load(std::memory_order_acquire);
  }
  std::uint64_t bad_hits() const noexcept {
    return bad_hits_.load(std::memory_order_acquire);
  }
  std::uint64_t spikes() const noexcept {
    return spikes_.load(std::memory_order_acquire);
  }
  void reset_counters() noexcept;

 private:
  FaultConfig config_;
  std::unordered_set<LineAddr> explicit_bad_;
  // True when no decision stream can ever fire (attach=true with all rates
  // zero): on_flush_attempt returns kOk without touching the mutex or the
  // per-line ordinal map, keeping an attached-but-idle injector off the
  // flush hot path.
  bool idle_ = false;
  std::atomic<std::uint64_t> transients_{0};
  std::atomic<std::uint64_t> bad_hits_{0};
  std::atomic<std::uint64_t> spikes_{0};
  mutable std::mutex mu_;
  std::unordered_map<LineAddr, std::uint64_t> attempts_;
};

}  // namespace nvc::pmem
