// Endurance accounting for NVRAM media (DESIGN.md §12).
//
// NVRAM cells wear out per write; the interesting quantities are how many
// bytes actually reached the media (failed injected attempts do not program
// cells) and how evenly those writes spread over lines. A WearTracker is
// shared by every flush backend of a Runtime — application-thread backends
// and the worker-side backends below the flush-behind rings — so the hot
// path publishes with a release-ordered atomic and a short critical section,
// exactly like the PR 3 flushed counters: stats() never reads a plain
// counter another thread may be mutating.
//
// Opt-in (NVC_WEAR): with no tracker attached, the backends' write-back path
// keeps a single null-pointer test.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "common/types.hpp"

namespace nvc::pmem {

/// Snapshot of the media's wear state.
struct WearStats {
  std::uint64_t line_writes = 0;     // successful line write-backs to media
  std::uint64_t bytes_written = 0;   // line_writes * kCacheLineSize
  std::uint64_t lines_touched = 0;   // distinct lines ever written
  std::uint64_t max_line_writes = 0; // hottest line's write count
  double mean_line_writes = 0.0;
  /// Estimated leveling skew, max/mean - 1: 0 = perfectly leveled writes,
  /// large = a hot spot burning through one line's endurance budget.
  double leveling_skew = 0.0;
};

/// Thread-safe shared wear accounting; attach to FlushBackends like a
/// FaultInjector. record() is called only for write-backs that landed.
class WearTracker {
 public:
  /// Account one successful full-line write-back of `line`.
  void record(LineAddr line);

  /// Race-free total without taking the map mutex (release-published by
  /// record(), acquire-read here) — the cheap counter worker-pool stats
  /// aggregation polls.
  std::uint64_t line_writes() const noexcept {
    return total_.load(std::memory_order_acquire);
  }
  std::uint64_t bytes_written() const noexcept {
    return line_writes() * kCacheLineSize;
  }

  /// Full per-line aggregation (max/mean/skew) under the map mutex.
  WearStats stats() const;

  /// Writes recorded against one line (0 if never written).
  std::uint64_t line_write_count(LineAddr line) const;

  void reset();

 private:
  std::atomic<std::uint64_t> total_{0};
  mutable std::mutex mutex_;
  std::unordered_map<LineAddr, std::uint64_t> counts_;
};

}  // namespace nvc::pmem
