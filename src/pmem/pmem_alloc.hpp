// A persistent heap allocator over a PmemRegion, in the spirit of Makalu
// (Bhandari et al., OOPSLA'16), scoped to what the experiments need:
//
//  * position-independent: all metadata is stored as region offsets, so a
//    region can be re-mapped at a different base address and re-opened;
//  * size-class segregated free lists with an append-only bump frontier;
//  * a root-object slot so recovery can find the application's data;
//  * a magic/version header so open() can reject foreign files.
//
// The allocator itself is NOT failure-atomic; the FASE runtime provides
// atomicity by logging. This matches Atlas, where allocation durability is
// the job of the persistent allocator and consistency the job of FASEs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "pmem/pmem_region.hpp"

namespace nvc::pmem {

/// Offset-based persistent pointer. 0 is the null offset.
using POffset = std::uint64_t;
inline constexpr POffset kNullOffset = 0;

class PmemAllocator {
 public:
  /// Format a fresh region as a heap.
  explicit PmemAllocator(PmemRegion region, bool format);

  PmemAllocator(PmemAllocator&&) = default;
  PmemAllocator& operator=(PmemAllocator&&) = default;

  /// Allocate `size` bytes (16-byte aligned). Returns kNullOffset when the
  /// region is exhausted.
  POffset allocate(std::size_t size);

  /// Return a block to its size-class free list.
  void deallocate(POffset offset);

  /// Usable size of an allocated block (>= requested size).
  std::size_t block_size(POffset offset) const;

  /// Root-object offset: the durable entry point for recovery.
  POffset root() const;
  void set_root(POffset offset);

  /// Resolve an offset to a live pointer in this mapping.
  template <typename T = void>
  T* resolve(POffset offset) const {
    return offset == kNullOffset ? nullptr
                                 : static_cast<T*>(region_.at(offset));
  }

  /// Offset of a pointer previously returned by resolve/allocate.
  POffset offset_of(const void* p) const { return region_.offset_of(p); }

  PmemRegion& region() noexcept { return region_; }
  const PmemRegion& region() const noexcept { return region_; }

  /// Bytes handed out minus bytes freed (for tests and leak accounting).
  std::size_t bytes_in_use() const;

  /// Total bytes consumed from the bump frontier.
  std::size_t bytes_reserved() const;

  // Clean-shutdown seal (DESIGN.md §14). The header ends in one 8-byte seal
  // word: 0 = unsealed (heap in use, or a crash interrupted a session);
  // nonzero = (seal_generation << 32) | CRC32C of the header bytes with the
  // seal field zeroed. Writing it is a single aligned 8-byte store, atomic
  // with respect to power failure: a cut mid-seal leaves either the old
  // word (image reads as dirty — safe) or the new one (header was already
  // quiescent — also safe); no torn state can fake a clean image whose
  // header bytes don't match the checksum. Callers flush the header line
  // through their own sink; the allocator only mutates the mapping.

  /// Write the seal word (bumping the seal generation). Call only when the
  /// heap is quiescent; returns the word written.
  std::uint64_t seal();
  /// Clear the seal word (first mutation of a session does this before any
  /// other header byte changes).
  void unseal();
  /// True when the seal word is present and its checksum matches the
  /// current header bytes.
  bool sealed_clean() const;
  /// Generation of the last valid seal seen at open (0 = never sealed).
  std::uint32_t seal_generation() const noexcept { return seal_gen_; }

  /// Untrusted read of a raw region's heap header: never throws, aborts, or
  /// reads outside [base, base+size). The salvage pipeline's first stage.
  struct HeaderStatus {
    bool magic_ok = false;
    bool version_ok = false;
    bool sealed = false;          // nonzero seal word present
    bool seal_valid = false;      // ...and its CRC matches the header bytes
    bool bump_plausible = false;  // frontier lands inside the region
    std::uint32_t version = 0;
    std::uint32_t seal_gen = 0;
    std::uint64_t root = 0;
    std::uint64_t bump = 0;
  };
  static HeaderStatus inspect(const void* base, std::size_t size);

  static constexpr std::uint64_t kMagic = 0x4e56434148454150ULL;  // "NVCAHEAP"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kNumClasses = 12;  // 16B .. 32KiB
  static constexpr std::size_t kMinBlock = 16;
  /// Region offset of the 8-byte seal word (the corruptor targets it).
  static std::size_t seal_offset() noexcept;
  static std::size_t header_size() noexcept;

 private:
  struct Header;       // region-resident superblock
  struct BlockHeader;  // per-allocation header

  Header* header() const;
  BlockHeader* block_at(POffset offset) const;
  static std::size_t class_for(std::size_t size);
  static std::size_t class_block_size(std::size_t cls);
  static std::uint64_t compute_seal(const void* header_bytes,
                                    std::uint32_t gen);

  PmemRegion region_;
  std::uint32_t seal_gen_ = 0;
};

}  // namespace nvc::pmem
