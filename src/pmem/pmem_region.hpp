// DRAM-emulated persistent memory regions, following the paper's emulation
// methodology (Section IV-A): a file on tmpfs is memory-mapped MAP_SHARED into
// the process. Data in tmpfs survives process termination, so the mapping
// behaves as directly mapped, byte-addressable persistent memory across
// process lifetimes (though not across host power loss — exactly as in the
// paper's emulator).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace nvc::pmem {

/// Directory used for region backing files; NVC_PMEM_DIR overrides, default
/// is /dev/shm (tmpfs) falling back to /tmp.
std::string region_dir();

/// RAII owner of one mmap'ed persistent region.
class PmemRegion {
 public:
  /// Create (or truncate) a region file of `size` bytes and map it.
  static PmemRegion create(const std::string& name, std::size_t size);

  /// Map an existing region file; size is taken from the file.
  static PmemRegion open(const std::string& name);

  /// Whether a region file with this name exists (used by recovery).
  static bool exists(const std::string& name);

  /// Remove a region's backing file without mapping it.
  static void destroy(const std::string& name);

  PmemRegion() = default;
  PmemRegion(PmemRegion&& other) noexcept;
  PmemRegion& operator=(PmemRegion&& other) noexcept;
  PmemRegion(const PmemRegion&) = delete;
  PmemRegion& operator=(const PmemRegion&) = delete;
  ~PmemRegion();

  bool valid() const noexcept { return base_ != nullptr; }
  void* base() const noexcept { return base_; }
  std::size_t size() const noexcept { return size_; }
  const std::string& name() const noexcept { return name_; }
  const std::string& path() const noexcept { return path_; }

  /// Byte offset of a pointer inside the region (for position-independent
  /// persistent pointers).
  std::uint64_t offset_of(const void* p) const noexcept;

  /// Pointer at a byte offset.
  void* at(std::uint64_t offset) const noexcept;

  /// True if p points inside [base, base+size).
  bool contains(const void* p) const noexcept;

  /// msync the whole region (heavyweight durability point; used at clean
  /// shutdown, not on the store path).
  void sync() const;

  /// Unmap and delete the backing file.
  void close_and_destroy();

 private:
  PmemRegion(std::string name, std::string path, void* base, std::size_t size)
      : name_(std::move(name)), path_(std::move(path)), base_(base),
        size_(size) {}

  void unmap() noexcept;

  std::string name_;
  std::string path_;
  void* base_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace nvc::pmem
