// Cache-line flush backends.
//
// The paper's system (Atlas) persists data with x86 `clflush`; newer parts
// offer `clflushopt` (weakly ordered) and `clwb` (no invalidation; the paper
// notes Atlas avoids it for visibility reasons). This module wraps all three
// plus a simulated backend (busy-wait of configurable cost) so experiments run
// identically on hardware without the instructions, and an accounting-only
// backend for pure flush counting.
//
// All backends count issued flushes and fences; counters are per-instance so
// per-thread backends need no atomics on the hot path.
#pragma once

#include <cstdint>
#include <memory>

#include "common/types.hpp"

namespace nvc::pmem {

class WearTracker;

enum class FlushKind : std::uint8_t {
  kClflush,     // flush + invalidate, strongly ordered (Atlas' choice)
  kClflushopt,  // flush + invalidate, weakly ordered (needs sfence)
  kClwb,        // write back, line stays valid (needs sfence)
  kSimulated,   // spin for a configured latency; for hosts without the insns
  kCountOnly,   // no work at all; used when only flush counts matter
};

/// Pick the best available backend for real-hardware timing experiments:
/// clflush if supported (paper fidelity), else simulated.
FlushKind default_flush_kind();

/// Parse "clflush" / "clflushopt" / "clwb" / "sim" / "count".
FlushKind parse_flush_kind(const char* name);

const char* to_string(FlushKind kind);

class FaultInjector;

/// Outcome of one write-back attempt. Real hardware reports media errors
/// asynchronously (machine-check / poisoned reads); the simulated backends
/// surface them synchronously through this result so software-level retry
/// and quarantine policy is exercisable.
enum class FlushResult : std::uint8_t {
  kOk,         // line accepted by the media
  kTransient,  // this attempt failed; a retry may succeed
  kBadLine,    // the line is permanently bad; retries are pointless
};

/// Issues cache-line write-backs and memory fences, counting both.
class FlushBackend {
 public:
  explicit FlushBackend(FlushKind kind = default_flush_kind(),
                        std::uint32_t simulated_latency_ns = 100);

  /// Write back (and possibly invalidate) the cache line holding `addr`.
  FlushResult flush(const void* addr) noexcept;

  /// Posted variant for the flush-behind pipeline: issue the write-back
  /// without stalling for its completion. The hardware kinds execute the
  /// (posted) instruction — the fence is where completion is awaited; the
  /// simulated kind only counts, because the async sink models the device
  /// timeline at the producer instead of spinning here on the worker.
  FlushResult issue(const void* addr) noexcept;

  /// Flush every line in [addr, addr+size). Returns the worst per-line
  /// result (kBadLine > kTransient > kOk).
  FlushResult flush_range(const void* addr, std::size_t size) noexcept;

  /// Order previously issued weak flushes (sfence; no-op for kCountOnly).
  void fence() noexcept;

  /// Route every flush/issue decision through `injector` (nullptr detaches).
  /// Not owned; must outlive the backend or be detached first.
  void set_fault_injector(FaultInjector* injector) noexcept {
    injector_ = injector;
  }
  FaultInjector* fault_injector() const noexcept { return injector_; }

  /// Record every successful write-back against `wear` (endurance
  /// accounting, DESIGN.md §12; nullptr detaches). Shared ownership because
  /// worker-side backends inside a FlushChannel may outlive the Runtime
  /// that owns the tracker.
  void set_wear_tracker(std::shared_ptr<WearTracker> wear) noexcept {
    wear_ = std::move(wear);
  }
  WearTracker* wear_tracker() const noexcept { return wear_.get(); }

  FlushKind kind() const noexcept { return kind_; }
  std::uint64_t flush_count() const noexcept { return flushes_; }
  std::uint64_t fence_count() const noexcept { return fences_; }
  std::uint64_t fault_count() const noexcept { return faults_; }
  /// Write-backs that actually reached the media: attempts minus injected
  /// failures (a rejected attempt programs no cells).
  std::uint64_t media_writes() const noexcept { return flushes_ - faults_; }
  std::uint64_t bytes_written() const noexcept {
    return media_writes() * kCacheLineSize;
  }
  void reset_counters() noexcept { flushes_ = fences_ = faults_ = 0; }

 private:
  FlushResult consult_injector(const void* addr) noexcept;

  FlushKind kind_;
  std::uint32_t simulated_latency_ns_;
  FaultInjector* injector_ = nullptr;
  std::shared_ptr<WearTracker> wear_;
  std::uint64_t flushes_ = 0;
  std::uint64_t fences_ = 0;
  std::uint64_t faults_ = 0;  // injected failures observed by this backend
};

}  // namespace nvc::pmem
