// Cache-line flush backends.
//
// The paper's system (Atlas) persists data with x86 `clflush`; newer parts
// offer `clflushopt` (weakly ordered) and `clwb` (no invalidation; the paper
// notes Atlas avoids it for visibility reasons). This module wraps all three
// plus a simulated backend (busy-wait of configurable cost) so experiments run
// identically on hardware without the instructions, and an accounting-only
// backend for pure flush counting.
//
// All backends count issued flushes and fences; counters are per-instance so
// per-thread backends need no atomics on the hot path.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace nvc::pmem {

enum class FlushKind : std::uint8_t {
  kClflush,     // flush + invalidate, strongly ordered (Atlas' choice)
  kClflushopt,  // flush + invalidate, weakly ordered (needs sfence)
  kClwb,        // write back, line stays valid (needs sfence)
  kSimulated,   // spin for a configured latency; for hosts without the insns
  kCountOnly,   // no work at all; used when only flush counts matter
};

/// Pick the best available backend for real-hardware timing experiments:
/// clflush if supported (paper fidelity), else simulated.
FlushKind default_flush_kind();

/// Parse "clflush" / "clflushopt" / "clwb" / "sim" / "count".
FlushKind parse_flush_kind(const char* name);

const char* to_string(FlushKind kind);

/// Issues cache-line write-backs and memory fences, counting both.
class FlushBackend {
 public:
  explicit FlushBackend(FlushKind kind = default_flush_kind(),
                        std::uint32_t simulated_latency_ns = 100);

  /// Write back (and possibly invalidate) the cache line holding `addr`.
  void flush(const void* addr) noexcept;

  /// Posted variant for the flush-behind pipeline: issue the write-back
  /// without stalling for its completion. The hardware kinds execute the
  /// (posted) instruction — the fence is where completion is awaited; the
  /// simulated kind only counts, because the async sink models the device
  /// timeline at the producer instead of spinning here on the worker.
  void issue(const void* addr) noexcept;

  /// Flush every line in [addr, addr+size).
  void flush_range(const void* addr, std::size_t size) noexcept;

  /// Order previously issued weak flushes (sfence; no-op for kCountOnly).
  void fence() noexcept;

  FlushKind kind() const noexcept { return kind_; }
  std::uint64_t flush_count() const noexcept { return flushes_; }
  std::uint64_t fence_count() const noexcept { return fences_; }
  void reset_counters() noexcept { flushes_ = fences_ = 0; }

 private:
  FlushKind kind_;
  std::uint32_t simulated_latency_ns_;
  std::uint64_t flushes_ = 0;
  std::uint64_t fences_ = 0;
};

}  // namespace nvc::pmem
