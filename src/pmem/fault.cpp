#include "pmem/fault.hpp"

#include <cstdio>

#include "common/env.hpp"
#include "common/rng.hpp"

namespace nvc::pmem {

namespace {

// Salts keep the independent decision streams (transient / bad / torn /
// spike) uncorrelated even though they share one seed.
constexpr std::uint64_t kTransientSalt = 0x7261746520666c75ULL;
constexpr std::uint64_t kBadSalt = 0x6261646c696e6573ULL;
constexpr std::uint64_t kTornSalt = 0x746f726e77726974ULL;
constexpr std::uint64_t kSpikeSalt = 0x7370696b656c6174ULL;

/// Stateless mix of up to three words through splitmix64; the basis of
/// every injector decision (pure => replayable).
std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  std::uint64_t s = a ^ (b * 0x9e3779b97f4a7c15ULL) ^
                    (c * 0x94d049bb133111ebULL);
  std::uint64_t h = splitmix64(s);
  return splitmix64(s) ^ h;
}

/// Uniform [0, 1) from a hash word (same construction as Rng::uniform).
double unit(std::uint64_t h) noexcept {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

FaultConfig FaultConfig::from_env() {
  FaultConfig c;
  c.rate = env_double("NVC_FAULT_RATE", c.rate);
  c.bad_line_rate = env_double("NVC_FAULT_BAD_LINES", c.bad_line_rate);
  c.torn_rate = env_double("NVC_FAULT_TORN", c.torn_rate);
  c.latency_ns = static_cast<std::uint32_t>(
      env_int("NVC_FAULT_LATENCY_NS", c.latency_ns));
  c.latency_rate = env_double("NVC_FAULT_LATENCY_RATE", c.latency_rate);
  c.max_retries = static_cast<std::uint32_t>(
      env_int("NVC_FAULT_RETRIES", c.max_retries));
  c.backoff_ns = static_cast<std::uint64_t>(
      env_int("NVC_FAULT_BACKOFF_NS", static_cast<std::int64_t>(c.backoff_ns)));
  c.backoff_cap_ns = static_cast<std::uint64_t>(env_int(
      "NVC_FAULT_BACKOFF_CAP_NS", static_cast<std::int64_t>(c.backoff_cap_ns)));
  c.degrade_after = static_cast<std::uint32_t>(
      env_int("NVC_FAULT_DEGRADE_AFTER", c.degrade_after));
  c.seed = static_cast<std::uint64_t>(
      env_int("NVC_FAULT_SEED", env_int("NVC_SEED", 1)));
  c.attach = env_int("NVC_FAULT_ATTACH", 0) != 0;
  return c;
}

std::string FaultConfig::describe() const {
  if (!enabled()) return "";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "NVC_FAULT_RATE=%g NVC_FAULT_BAD_LINES=%g NVC_FAULT_TORN=%g "
                "NVC_FAULT_RETRIES=%u NVC_FAULT_DEGRADE_AFTER=%u "
                "NVC_FAULT_SEED=%llu",
                rate, bad_line_rate, torn_rate, max_retries, degrade_after,
                static_cast<unsigned long long>(seed));
  return buf;
}

FaultInjector::FaultInjector(const FaultConfig& config) : config_(config) {
  explicit_bad_.insert(config_.bad_lines.begin(), config_.bad_lines.end());
  idle_ = config_.rate <= 0.0 && config_.bad_line_rate <= 0.0 &&
          explicit_bad_.empty() &&
          !(config_.latency_ns > 0 && config_.latency_rate > 0.0);
}

bool FaultInjector::line_bad(LineAddr line) const noexcept {
  if (explicit_bad_.contains(line)) return true;
  if (config_.bad_line_rate <= 0.0) return false;
  return unit(mix(config_.seed, kBadSalt, line)) < config_.bad_line_rate;
}

std::size_t FaultInjector::torn_bytes(LineAddr line) const noexcept {
  if (config_.torn_rate <= 0.0) return 0;
  std::uint64_t h = mix(config_.seed, kTornSalt, line);
  if (unit(h) >= config_.torn_rate) return 0;
  // 8..56 bytes in units of 8: never tears an aligned 8-byte word (ADR
  // power-fail atomicity), never the whole line (that would be a clean
  // flush, not a tear).
  return 8 * (1 + (splitmix64_mix(h) % 7));
}

FaultDecision FaultInjector::on_flush_attempt(LineAddr line) {
  FaultDecision d;
  if (idle_) return d;
  if (line_bad(line)) {
    d.fail = d.bad = true;
    bad_hits_.fetch_add(1, std::memory_order_release);
    return d;
  }
  std::uint64_t ordinal;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ordinal = attempts_[line]++;
  }
  if (config_.rate > 0.0 &&
      unit(mix(config_.seed ^ kTransientSalt, line, ordinal)) < config_.rate) {
    d.fail = true;
    transients_.fetch_add(1, std::memory_order_release);
    return d;
  }
  if (config_.latency_ns > 0 && config_.latency_rate > 0.0 &&
      unit(mix(config_.seed ^ kSpikeSalt, line, ordinal)) <
          config_.latency_rate) {
    d.spike_ns = config_.latency_ns;
    spikes_.fetch_add(1, std::memory_order_release);
  }
  return d;
}

void FaultInjector::reset_counters() noexcept {
  transients_.store(0, std::memory_order_release);
  bad_hits_.store(0, std::memory_order_release);
  spikes_.store(0, std::memory_order_release);
}

}  // namespace nvc::pmem
