#include "core/mrc.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/flat_hash.hpp"
#include "core/write_cache.hpp"

namespace nvc::core {

double Mrc::at(std::size_t c) const {
  NVC_REQUIRE(c >= 1 && c <= mr_.size(), "cache size out of MRC range");
  return mr_[c - 1];
}

double Mrc::gradient(std::size_t c) const {
  NVC_REQUIRE(c >= 2 && c <= mr_.size());
  return mr_[c - 2] - mr_[c - 1];
}

Mrc mrc_from_reuse(const ReuseCurve& reuse, std::size_t max_size) {
  NVC_REQUIRE(max_size >= 1);
  const LogicalTime n = reuse.trace_length();
  std::vector<double> mr(max_size, 1.0);
  if (n < 2) return Mrc(std::move(mr));

  // Scattered model samples: c(k) = k - reuse(k) is nondecreasing in k, so a
  // single sweep assigns, for each integer size, the first sample at or past
  // it. hr(c) = reuse(k+1) - reuse(k)  =>  mr = 1 - hr (Eq. 3 / Eq. 6).
  std::size_t next_c = 1;
  for (LogicalTime k = 1; k < n && next_c <= max_size; ++k) {
    const double c = static_cast<double>(k) - reuse.at(k);
    const double hr = reuse.at(k + 1) - reuse.at(k);
    const double miss = std::clamp(1.0 - hr, 0.0, 1.0);
    while (next_c <= max_size && static_cast<double>(next_c) <= c) {
      mr[next_c - 1] = miss;
      ++next_c;
    }
  }
  // Sizes beyond the largest sampled c: extend with the final miss ratio.
  if (next_c > 1) {
    for (std::size_t c = next_c; c <= max_size; ++c) mr[c - 1] = mr[next_c - 2];
  }

  // Enforce LRU inclusion: non-increasing in cache size.
  for (std::size_t c = 1; c < max_size; ++c) {
    mr[c] = std::min(mr[c], mr[c - 1]);
  }
  return Mrc(std::move(mr));
}

namespace {

/// Fenwick tree over logical times for the Mattson stack-distance pass.
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}

  void add(std::size_t i, int delta) {
    for (; i < tree_.size(); i += i & (~i + 1)) {
      tree_[i] += delta;
    }
  }

  std::int64_t prefix(std::size_t i) const {
    std::int64_t s = 0;
    for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<std::int64_t> tree_;
};

}  // namespace

Mrc mrc_exact_lru(std::span<const LineAddr> trace, std::size_t max_size) {
  NVC_REQUIRE(max_size >= 1);
  const std::size_t n = trace.size();
  // distance_hist[d] = accesses with stack distance exactly d (1-based);
  // index 0 collects cold misses (infinite distance).
  std::vector<std::uint64_t> distance_hist(max_size + 1, 0);
  std::uint64_t beyond = 0;  // distances > max_size
  std::uint64_t cold = 0;

  Fenwick marks(n);
  FlatHashMap<LineAddr, std::size_t> last;  // line -> 1-based time

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t t = i + 1;
    auto [entry, inserted] = last.try_emplace(trace[i], t);
    if (inserted) {
      ++cold;
    } else {
      const std::size_t prev = *entry;
      // Stack distance = number of distinct lines accessed in (prev, t),
      // plus one for the line itself.
      const auto between =
          static_cast<std::uint64_t>(marks.prefix(t - 1) - marks.prefix(prev));
      const std::uint64_t dist = between + 1;
      if (dist <= max_size) {
        ++distance_hist[static_cast<std::size_t>(dist)];
      } else {
        ++beyond;
      }
      marks.add(prev, -1);
      *entry = t;
    }
    marks.add(t, +1);
  }

  std::vector<double> mr(max_size, 1.0);
  if (n == 0) return Mrc(std::move(mr));
  // Misses at size c = cold + accesses with distance > c.
  std::uint64_t hits_within = 0;
  for (std::size_t c = 1; c <= max_size; ++c) {
    hits_within += distance_hist[c];
    const std::uint64_t misses = cold + beyond +
                                 (static_cast<std::uint64_t>(n) - cold -
                                  beyond - hits_within);
    mr[c - 1] = static_cast<double>(misses) / static_cast<double>(n);
  }
  return Mrc(std::move(mr));
}

Mrc mrc_simulate_write_cache(std::span<const LineAddr> trace,
                             std::span<const std::size_t> boundaries,
                             std::size_t max_size) {
  NVC_REQUIRE(max_size >= 1);
  std::vector<double> mr(max_size, 1.0);
  if (trace.empty()) return Mrc(std::move(mr));

  for (std::size_t c = 1; c <= max_size; ++c) {
    WriteCache cache(c);
    CountingSink sink;
    std::size_t next_boundary = 0;
    std::uint64_t hits = 0;
    for (std::size_t i = 0; i < trace.size(); ++i) {
      while (next_boundary < boundaries.size() &&
             boundaries[next_boundary] == i) {
        cache.flush_all(sink);
        ++next_boundary;
      }
      if (cache.access(trace[i], sink)) ++hits;
    }
    mr[c - 1] = 1.0 - static_cast<double>(hits) /
                          static_cast<double>(trace.size());
  }
  return Mrc(std::move(mr));
}

}  // namespace nvc::core
