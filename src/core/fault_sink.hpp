// Retry, backoff, and quarantine for fallible write-backs.
//
// A FlushSink below this decorator may reject a line (media busy, bad
// line — pmem/fault.hpp injects both). FaultTolerantSink absorbs the
// transient class with capped exponential backoff and converts the
// persistent class into *quarantine*: the line is recorded in a shared
// FaultStats poisoned set, further flushes of it fail fast, and the
// runtime above reads the stats to latch graceful degradation (async →
// sync flushing, batched → strict log sync) and to answer HealthReport
// queries.
//
// This module is deliberately pmem-agnostic: core never sees the injector,
// only boolean flush outcomes, so the same machinery would wrap a real
// machine-check-reporting backend. Counters follow the release-publish
// discipline of the flush pipeline (PR 3): the async worker publishes with
// release stores, stats readers on other threads acquire.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "common/types.hpp"
#include "core/write_cache.hpp"

namespace nvc::core {

/// Retry schedule for transiently failing write-backs. Backoff doubles per
/// retry up to the cap; zero backoff spins not at all (deterministic test
/// schedulers rely on that — a retry is then just another attempt).
struct RetryPolicy {
  std::uint32_t max_retries = 8;
  std::uint64_t backoff_ns = 200;
  std::uint64_t backoff_cap_ns = 10000;
};

/// Shared fault accounting: one instance per runtime (or rig context),
/// written by every FaultTolerantSink wrapping that runtime's paths —
/// including the one living worker-side inside a FlushChannel — and read
/// by stats/health aggregation on the application thread.
class FaultStats {
 public:
  /// A write-back attempt failed (before any retry verdict).
  void note_transient() noexcept {
    transients_.fetch_add(1, std::memory_order_release);
  }

  /// A retry attempt was issued.
  void note_retry() noexcept {
    retries_.fetch_add(1, std::memory_order_release);
  }

  /// `line` exhausted its retries: poison it. Idempotent.
  void quarantine(LineAddr line) {
    std::lock_guard<std::mutex> lock(mu_);
    if (poisoned_.insert(line).second) {
      quarantined_.fetch_add(1, std::memory_order_release);
    }
  }

  /// Fast-fail check: true when `line` is poisoned. The common healthy
  /// case is one acquire load (count == 0), no lock.
  bool quarantined(LineAddr line) const {
    if (quarantined_.load(std::memory_order_acquire) == 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    return poisoned_.contains(line);
  }

  std::uint64_t transients() const noexcept {
    return transients_.load(std::memory_order_acquire);
  }
  std::uint64_t retries() const noexcept {
    return retries_.load(std::memory_order_acquire);
  }
  std::uint64_t quarantined_count() const noexcept {
    return quarantined_.load(std::memory_order_acquire);
  }

  /// Snapshot of the poisoned-line set, sorted for stable reporting.
  std::vector<LineAddr> quarantined_lines() const;

  void reset();

 private:
  std::atomic<std::uint64_t> transients_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> quarantined_{0};
  mutable std::mutex mu_;
  std::unordered_set<LineAddr> poisoned_;
};

/// FlushSink decorator implementing retry + quarantine over a fallible
/// inner sink. Flush outcome contract: true = line durable (possibly after
/// retries); false = line quarantined (now or earlier) and NOT durable.
class FaultTolerantSink final : public FlushSink {
 public:
  /// Non-owning inner (application-thread paths).
  FaultTolerantSink(FlushSink* inner, FaultStats* stats, RetryPolicy policy);

  /// Owning inner (worker-side: the FlushChannel owns this sink, which in
  /// turn owns the forwarding sink it retries through).
  FaultTolerantSink(std::unique_ptr<FlushSink> inner, FaultStats* stats,
                    RetryPolicy policy);

  bool flush_line(LineAddr line) override;
  void drain() override { inner_->drain(); }

  const RetryPolicy& policy() const noexcept { return policy_; }

 private:
  std::unique_ptr<FlushSink> owned_;
  FlushSink* inner_;
  FaultStats* stats_;
  RetryPolicy policy_;
};

}  // namespace nvc::core
