#include "core/reuse_locality.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "common/flat_hash.hpp"
#include "common/simd.hpp"

namespace nvc::core {

double ReuseCurve::at(LogicalTime k) const {
  NVC_REQUIRE(k >= 1 && k <= n_, "timescale out of range");
  return values_[static_cast<std::size_t>(k - 1)];
}

double FootprintCurve::at(LogicalTime k) const {
  NVC_REQUIRE(k >= 1 && k <= n_, "timescale out of range");
  return values_[static_cast<std::size_t>(k - 1)];
}

ReuseCurve compute_reuse_all_k(std::span<const ReuseInterval> intervals,
                               LogicalTime n) {
  NVC_REQUIRE(n >= 1);
  const auto size = static_cast<std::size_t>(n);

  // dd is the second difference of the window-count totals g(k):
  // one prefix sum gives h(k) = g(k) - g(k-1), a second gives g(k).
  std::vector<double> dd(size + 2, 0.0);
  for (const ReuseInterval& iv : intervals) {
    NVC_ASSERT(iv.s >= 1 && iv.e > iv.s && iv.e <= n, "malformed interval");
    const LogicalTime d = iv.e - iv.s;     // interval gap
    const LogicalTime L = d + 1;           // smallest enclosing window length
    const LogicalTime k1 = std::min(iv.e, n - iv.s + 1);
    const LogicalTime k2 = std::max(iv.e, n - iv.s + 1);
    dd[static_cast<std::size_t>(L)] += 1.0;
    dd[static_cast<std::size_t>(k1) + 1] -= 1.0;
    dd[static_cast<std::size_t>(k2) + 1] -= 1.0;
    // The final +1 entry of the second difference lands at k = n+2, past the
    // largest timescale we evaluate, so it is dropped.
  }

  std::vector<double> values(size, 0.0);
  double h = 0.0;  // first prefix sum
  double g = 0.0;  // second prefix sum: total enclosing-window count
  std::size_t k = 1;
#if NVC_SIMD_AVX2
  // Four timescales per iteration. With p = in-block prefix sum of dd and
  // q = prefix sum of p, the lane values of the two running sums are
  //   h_i = h + p_i          g_i = g + (i+1)*h + q_i
  // and the carries out of the block are h += p_3, g = g_3. Every addend is
  // an integer-valued double (interval counts), so the reassociation is
  // exact and each values[] entry is bit-identical to the scalar loop's.
  {
    const __m256d lane_ix = _mm256_set_pd(4.0, 3.0, 2.0, 1.0);
    for (; k + 3 <= size; k += 4) {
      const __m256d d = _mm256_loadu_pd(&dd[k]);
      const __m256d p = nvc::simd::prefix_sum_pd(d);
      const __m256d q = nvc::simd::prefix_sum_pd(p);
      const __m256d gv = _mm256_add_pd(
          _mm256_add_pd(_mm256_set1_pd(g),
                        _mm256_mul_pd(lane_ix, _mm256_set1_pd(h))),
          q);
      // windows = n-k+1 descending: (n-k+1) - lane offset [0,1,2,3].
      const __m256d windows = _mm256_sub_pd(
          _mm256_set1_pd(static_cast<double>(n - static_cast<LogicalTime>(k) +
                                             2)),
          lane_ix);
      _mm256_storeu_pd(&values[k - 1], _mm256_div_pd(gv, windows));
      alignas(32) double carry[4];
      _mm256_store_pd(carry, p);
      h += carry[3];
      alignas(32) double gout[4];
      _mm256_store_pd(gout, gv);
      g = gout[3];
    }
  }
#endif
  for (; k <= size; ++k) {
    h += dd[k];
    g += h;
    const double windows = static_cast<double>(n - k + 1);
    values[k - 1] = g / windows;
  }
  return ReuseCurve(std::move(values), n);
}

ReuseCurve compute_reuse_brute_force(std::span<const ReuseInterval> intervals,
                                     LogicalTime n) {
  NVC_REQUIRE(n >= 1);
  const auto size = static_cast<std::size_t>(n);
  std::vector<double> values(size, 0.0);
  for (LogicalTime k = 1; k <= n; ++k) {
    std::uint64_t total = 0;
    for (LogicalTime w = 1; w + k - 1 <= n; ++w) {
      const LogicalTime lo = w;
      const LogicalTime hi = w + k - 1;
      for (const ReuseInterval& iv : intervals) {
        if (iv.s >= lo && iv.e <= hi) ++total;
      }
    }
    values[static_cast<std::size_t>(k - 1)] =
        static_cast<double>(total) / static_cast<double>(n - k + 1);
  }
  return ReuseCurve(std::move(values), n);
}

std::vector<ReuseInterval> intervals_of_trace(
    std::span<const LineAddr> trace) {
  std::vector<ReuseInterval> intervals;
  FlatHashMap<LineAddr, LogicalTime> last_access;
  // Every access after a line's first contributes one interval; sizing the
  // table for the trace keeps the open-addressing probe sequences short
  // through the whole pass instead of rehashing mid-extraction.
  last_access.reserve(trace.size());
  intervals.reserve(trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const LogicalTime t = static_cast<LogicalTime>(i) + 1;
    auto [prev, inserted] = last_access.try_emplace(trace[i], t);
    if (!inserted) {
      intervals.push_back(ReuseInterval{*prev, t});
      *prev = t;
    }
  }
  return intervals;
}

std::vector<ReuseInterval> intervals_of_dense_trace(
    std::span<const LineAddr> trace, LineAddr id_bound) {
  std::vector<ReuseInterval> intervals;
  intervals.reserve(trace.size());
  // 0 = never seen; recorded times are 1-indexed.
  std::vector<LogicalTime> last_access(static_cast<std::size_t>(id_bound), 0);
  // The last_access table is the only randomly-indexed memory here (the
  // trace itself streams); issuing its loads a fixed distance ahead hides
  // the table miss behind the interval append. Pure scheduling — extraction
  // order and output are untouched.
  constexpr std::size_t kPrefetchAhead = 16;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (i + kPrefetchAhead < trace.size()) {
      __builtin_prefetch(
          &last_access[static_cast<std::size_t>(trace[i + kPrefetchAhead])]);
    }
    NVC_ASSERT(trace[i] < id_bound, "trace address outside the dense range");
    const LogicalTime t = static_cast<LogicalTime>(i) + 1;
    LogicalTime& prev = last_access[static_cast<std::size_t>(trace[i])];
    if (prev != 0) intervals.push_back(ReuseInterval{prev, t});
    prev = t;
  }
  return intervals;
}

FootprintCurve compute_footprint_all_k(std::span<const LineAddr> trace) {
  const LogicalTime n = static_cast<LogicalTime>(trace.size());
  NVC_REQUIRE(n >= 1);
  const auto size = static_cast<std::size_t>(n);

  // Collect, per datum, the gaps in which no access to it occurs: before its
  // first access, between consecutive accesses, and after its last access.
  // A window of length k "misses" the datum iff it fits in such a gap, which
  // happens in max(0, g - k + 1) start positions.
  FlatHashMap<LineAddr, LogicalTime> last_access;
  std::vector<std::uint64_t> gap_count(size + 1, 0);  // gap_count[g]
  std::uint64_t distinct = 0;

  for (std::size_t i = 0; i < trace.size(); ++i) {
    const LogicalTime t = static_cast<LogicalTime>(i) + 1;
    auto [prev, inserted] = last_access.try_emplace(trace[i], t);
    if (inserted) {
      ++distinct;
      if (t > 1) ++gap_count[static_cast<std::size_t>(t - 1)];  // head gap
    } else {
      const LogicalTime gap = t - *prev - 1;
      if (gap > 0) ++gap_count[static_cast<std::size_t>(gap)];
      *prev = t;
    }
  }
  last_access.for_each([&](LineAddr, LogicalTime last) {
    if (last < n) ++gap_count[static_cast<std::size_t>(n - last)];  // tail gap
  });

  // For all k: miss_total(k) = sum_g gap_count[g] * max(0, g - k + 1).
  // Build it with suffix sums: let C(k) = #gaps with g >= k and
  // S(k) = sum of g over gaps with g >= k; then
  // miss_total(k) = S(k) - (k - 1) * C(k).
  std::vector<double> suffix_cnt(size + 2, 0.0);
  std::vector<double> suffix_sum(size + 2, 0.0);
  for (std::size_t g = size; g >= 1; --g) {
    suffix_cnt[g] = suffix_cnt[g + 1] + static_cast<double>(gap_count[g]);
    suffix_sum[g] = suffix_sum[g + 1] +
                    static_cast<double>(gap_count[g]) * static_cast<double>(g);
  }

  std::vector<double> values(size, 0.0);
  std::size_t k = 1;
#if NVC_SIMD_AVX2
  // Pure elementwise pass: lane k computes exactly the scalar expression
  // over the same operands (gap counts and sums are integer-valued), so the
  // results are bit-identical to the fallback below.
  {
    const __m256d lane = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
    const __m256d distinct_v = _mm256_set1_pd(static_cast<double>(distinct));
    for (; k + 3 <= size; k += 4) {
      const __m256d km1 = _mm256_add_pd(
          _mm256_set1_pd(static_cast<double>(k - 1)), lane);
      const __m256d cnt = _mm256_loadu_pd(&suffix_cnt[k]);
      const __m256d sum = _mm256_loadu_pd(&suffix_sum[k]);
      const __m256d miss = _mm256_sub_pd(sum, _mm256_mul_pd(km1, cnt));
      const __m256d windows = _mm256_sub_pd(
          _mm256_set1_pd(static_cast<double>(n - static_cast<LogicalTime>(k) +
                                             1)),
          lane);
      _mm256_storeu_pd(&values[k - 1],
                       _mm256_sub_pd(distinct_v, _mm256_div_pd(miss, windows)));
    }
  }
#endif
  for (; k <= size; ++k) {
    const double miss_total =
        suffix_sum[k] - static_cast<double>(k - 1) * suffix_cnt[k];
    const double windows = static_cast<double>(n - k + 1);
    values[k - 1] = static_cast<double>(distinct) - miss_total / windows;
  }
  return FootprintCurve(std::move(values), n);
}

FootprintCurve compute_footprint_brute_force(
    std::span<const LineAddr> trace) {
  const LogicalTime n = static_cast<LogicalTime>(trace.size());
  NVC_REQUIRE(n >= 1);
  const auto size = static_cast<std::size_t>(n);
  std::vector<double> values(size, 0.0);
  for (std::size_t k = 1; k <= size; ++k) {
    std::uint64_t total = 0;
    for (std::size_t w = 0; w + k <= size; ++w) {
      std::unordered_set<LineAddr> distinct(trace.begin() + w,
                                            trace.begin() + w + k);
      total += distinct.size();
    }
    values[k - 1] =
        static_cast<double>(total) / static_cast<double>(size - k + 1);
  }
  return FootprintCurve(std::move(values), n);
}

}  // namespace nvc::core
