// The software write-combining cache (paper Sections II-B, III-C).
//
// A per-thread, fully associative, LRU-replacement, *resizable* cache of
// dirty cache-line addresses. Each persistent store inserts its line address;
// a hit means the write was combined with an earlier one. On eviction (cache
// full) or at FASE end, the owner flushes the evicted line from the hardware
// cache to NVRAM.
//
// Structure follows the paper: a hash map for O(1) search plus a doubly
// linked list for O(1) LRU update/insert/delete. The hash map here is a
// cache-friendly open-addressing table with backward-shift deletion, and the
// list is intrusive over a pooled node array, so a cache operation touches at
// most two small allocations-free structures.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace nvc::core {

/// Receives cache lines that must be written back to NVRAM.
class FlushSink {
 public:
  virtual ~FlushSink() = default;
  /// Write back (flush) one hardware cache line. Returns true when the
  /// line was accepted (durably written, or queued on a path that will
  /// retry/account for it); false when the media rejected the write-back
  /// and the line is NOT durable — fault-tolerant decorators
  /// (core/fault_sink.hpp) turn persistent false into quarantine.
  /// Infallible sinks simply return true.
  virtual bool flush_line(LineAddr line) = 0;
  /// Ordering point: wait until previously issued flushes are durable.
  virtual void drain() {}
};

/// Sink that only counts (used when an experiment needs flush ratios only).
class CountingSink final : public FlushSink {
 public:
  bool flush_line(LineAddr) override {
    ++count_;
    return true;
  }
  std::uint64_t count() const noexcept { return count_; }
  void reset() noexcept { count_ = 0; }

 private:
  std::uint64_t count_ = 0;
};

struct WriteCacheStats {
  std::uint64_t accesses = 0;   // persistent stores observed
  std::uint64_t hits = 0;       // writes combined with a buffered line
  std::uint64_t evictions = 0;  // flushes caused by capacity
  std::uint64_t fase_flushes = 0;  // flushes caused by FASE end

  std::uint64_t misses() const noexcept { return accesses - hits; }
  std::uint64_t flushes() const noexcept { return evictions + fase_flushes; }
  double hit_ratio() const noexcept {
    return accesses == 0
               ? 0.0
               : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class WriteCache {
 public:
  /// `capacity` is the number of line addresses buffered (paper default 8).
  explicit WriteCache(std::size_t capacity = kDefaultCapacity);

  WriteCache(const WriteCache&) = delete;
  WriteCache& operator=(const WriteCache&) = delete;

  /// Record a persistent store to `line`. Returns true if the write was
  /// combined (line already buffered). May evict the LRU line into `sink`.
  bool access(LineAddr line, FlushSink& sink);

  /// Flush and drop every buffered line (FASE end). Eviction order is LRU
  /// first, so the most recently written lines stay hot the longest.
  void flush_all(FlushSink& sink);

  /// Change the capacity. Shrinking evicts LRU lines into `sink`.
  void resize(std::size_t new_capacity, FlushSink& sink);

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return size_; }
  bool contains(LineAddr line) const noexcept;

  /// Buffered lines from LRU to MRU (test/diagnostic helper).
  std::vector<LineAddr> lru_order() const;

  const WriteCacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  /// Rough x86 instruction footprint of one cache operation; used by the
  /// cost model to account for the software cache's instruction overhead
  /// (paper Table IV: SC executes ~8% more instructions than AT).
  static constexpr std::uint64_t kInstrPerHit = 18;    // probe + list move
  static constexpr std::uint64_t kInstrPerInsert = 24; // probe + link
  static constexpr std::uint64_t kInstrPerEvict = 14;  // unlink + delete

  static constexpr std::size_t kDefaultCapacity = 8;  // paper Section III-C
  static constexpr std::size_t kMaxCapacity = 4096;   // implementation bound

 private:
  struct Node {
    LineAddr line = 0;
    std::uint32_t prev = kNil;
    std::uint32_t next = kNil;
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint32_t kEmptySlot = 0xffffffffu;

  // --- intrusive LRU list over the node pool ---
  void list_push_front(std::uint32_t idx) noexcept;  // MRU end
  void list_unlink(std::uint32_t idx) noexcept;
  void move_to_front(std::uint32_t idx) noexcept;

  // --- open-addressing hash map: line -> node index ---
  std::uint32_t* hash_slot(LineAddr line) noexcept;
  std::uint32_t hash_find(LineAddr line) const noexcept;  // node idx or kNil
  void hash_insert(LineAddr line, std::uint32_t idx);
  void hash_erase(LineAddr line) noexcept;
  void rehash(std::size_t min_slots);
  static std::uint64_t mix(LineAddr line) noexcept;

  std::uint32_t evict_lru(FlushSink& sink);

  std::size_t capacity_;
  std::size_t size_ = 0;
  std::uint32_t head_ = kNil;  // MRU
  std::uint32_t tail_ = kNil;  // LRU
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_nodes_;
  std::vector<std::uint32_t> slots_;  // node indices or kEmptySlot
  std::size_t slot_mask_ = 0;
  WriteCacheStats stats_;
};

}  // namespace nvc::core
