// Write-admission policies for the deferred-flush structures (DESIGN.md §12).
//
// The caching policies decide *when* buffered lines are flushed; admission
// decides *what* is worth buffering at all. A streaming store — a line
// written once and never again — gains nothing from the soft cache: it will
// be flushed exactly once either way, but while it sits in the cache it
// evicts lines that would have combined. Worse, on a capacity-limited
// structure (the soft cache, Atlas' table) a streaming scan turns every
// resident hot line into eviction churn: extra write-backs that cost media
// endurance without saving any.
//
// Three modes (NVC_ADMIT):
//   always      no filter at all (default). The policies' hot path keeps a
//               single null-pointer test.
//   write-once  doorkeeper detector: the first touch of a line within the
//               sampled window bypasses the deferred structure and writes
//               through immediately; a second touch within the window is
//               evidence of reuse and admits the line.
//   reuse       the doorkeeper gated by an MRC-driven verdict: bypass only
//               arms once the online sampler's last burst predicts a miss
//               ratio so high that caching is not paying for itself. The
//               verdict is re-published at burst boundaries exactly like the
//               cache-size selection (SoftCachePolicy::apply_pending_
//               selection); before the first burst completes, everything is
//               admitted. Requires the online sampling policy (SC); other
//               policies have no MRC and degrade to `always`.
//
// The doorkeeper is a direct-mapped tag table (window entries, power of
// two), indexed by splitmix64_mix(line): one hash, one compare, one store
// per filtered miss. A collision forgets an old line early — the penalty is
// one spurious write-through, never a correctness issue.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace nvc::core {

class BurstSampler;

enum class AdmitMode : std::uint8_t {
  kAlways,     // admit every store (no filter)
  kWriteOnce,  // first touch in the window bypasses the cache
  kReuse,      // write-once gated by the sampler's MRC verdict
};

const char* to_string(AdmitMode mode);

/// Parse "always" / "write-once" / "reuse" (NVC_ADMIT); empty for unknown.
std::optional<AdmitMode> parse_admit_mode(std::string_view name);

struct AdmissionConfig {
  AdmitMode mode = AdmitMode::kAlways;
  /// Doorkeeper entries (rounded up to a power of two). The "sampled
  /// window": a line must be re-touched before `window` distinct collisions
  /// evict its tag to count as reused.
  std::size_t window = 4096;
  /// kReuse: bypass arms when the predicted hit ratio at the selected cache
  /// size falls below this (a streaming-dominated MRC), and disarms again
  /// when a later burst shows reuse.
  double reuse_threshold = 0.5;
  /// Subtracted from every line before hashing into the doorkeeper. The
  /// Runtime stamps its data-region base line here so the collision pattern
  /// depends only on a line's offset within the region, not on where ASLR
  /// mapped it — which is what lets the admission ablation gate its
  /// media-byte counters with zero tolerance across processes
  /// (bench/compare.py `exact_*`). Indexing only: stored tags stay full
  /// line addresses, so 0 remains the empty sentinel.
  LineAddr line_base = 0;
};

struct AdmissionCounters {
  std::uint64_t bypassed = 0;    // stores written through past the cache
  std::uint64_t readmitted = 0;  // second-touch stores admitted by the tag
  std::uint64_t verdicts = 0;    // kReuse verdict publications consumed
};

class AdmissionFilter {
 public:
  explicit AdmissionFilter(const AdmissionConfig& config);

  /// Probe-and-update: true when `line` should bypass the deferred-flush
  /// structure and be written through now. Always updates the doorkeeper so
  /// the reuse evidence keeps accumulating even while bypass is disarmed.
  bool should_bypass(LineAddr line) noexcept;

  /// kReuse: consume a newly completed burst's MRC (no-op when the sampler
  /// has not finished a burst since the last publish). Called at the same
  /// points the cache-size selection lands: synchronously at burst end, or
  /// at the FASE boundary that polls an async selection.
  void publish_verdict(const BurstSampler& sampler);

  AdmitMode mode() const noexcept { return config_.mode; }
  bool bypass_armed() const noexcept { return armed_; }
  const AdmissionCounters& counters() const noexcept { return counters_; }

  /// Rough x86 footprint of one doorkeeper probe (hash, load, compare,
  /// store), for the policies' bookkeeping-instruction estimate.
  static constexpr std::uint64_t kInstrProbe = 6;

 private:
  AdmissionConfig config_;
  std::vector<LineAddr> tags_;  // 0 = empty (line 0 is never persistent)
  std::size_t mask_;
  bool armed_;
  std::uint64_t published_bursts_ = 0;
  AdmissionCounters counters_;
};

}  // namespace nvc::core
