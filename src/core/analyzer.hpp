// Off-critical-path burst analysis (paper Section III-C made asynchronous).
//
// The paper's pitch is that adaptive sizing costs almost nothing online, yet
// a naive implementation runs the full rename -> reuse -> MRC -> knee
// pipeline synchronously inside on_store() at every burst end — a
// multi-millisecond stall on the application thread. This module moves that
// work to one shared background worker:
//
//   app thread                        worker thread (std::jthread)
//   ----------                        ----------------------------
//   record burst trace
//   burst ends: move the trace  --->  SPSC ring (AnalysisChannel)
//   into the channel, O(1)            pop job, run analyze_burst()
//   keep running with the old         publish {Mrc, KneeResult} into the
//   cache size                        channel's result slot (mutex-guarded
//   at the next FASE boundary,        payload + release-ordered counter)
//   poll the slot and resize
//
// One worker is shared across all thread contexts (AnalysisWorker::shared());
// each producer owns a private AnalysisChannel, so every queue really is
// single-producer/single-consumer. Channels are shared_ptr-owned by both
// sides: a producer can be destroyed with a job in flight and the worker
// still has a live slot to publish into (the orphaned channel is pruned once
// its queue drains).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/spsc_queue.hpp"
#include "common/types.hpp"
#include "core/knee.hpp"
#include "core/mrc.hpp"

namespace nvc::core {

/// Result of analyzing one (already FASE-renamed) burst trace.
struct BurstAnalysis {
  Mrc mrc;
  KneeResult selection;
};

/// The full burst analysis: reuse intervals (dense path — renamed ids lie in
/// [0, trace.size())) -> reuse(k) for all k -> MRC -> knee selection.
/// Deterministic: the async and synchronous paths call exactly this.
BurstAnalysis analyze_burst(std::span<const LineAddr> renamed_trace,
                            const KneeConfig& knee);

class AnalysisWorker;

/// One producer's mailbox to the shared worker. Producer-side calls (submit,
/// poll, drain) must come from a single thread.
class AnalysisChannel {
 public:
  /// Hand a completed burst to the worker. O(1): one vector move into the
  /// ring plus a wakeup; no analysis work happens on the calling thread.
  /// Returns false (trace untouched) if the ring is full — the caller then
  /// falls back to synchronous analysis rather than losing the burst.
  bool submit(std::vector<LineAddr>&& renamed_trace, const KneeConfig& knee);

  /// Number of analyses completed so far (release-ordered with the result).
  std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_acquire);
  }

  /// True when every submitted job has been analyzed.
  bool idle() const noexcept {
    return completed() == submitted_.load(std::memory_order_relaxed);
  }

  /// Block until every submitted job has been analyzed (shutdown drain).
  /// On a manual channel this pumps the queue on the calling thread
  /// instead of waiting — there is no worker to wait for.
  void drain();

  /// Take the most recent published result (empty if none since last take).
  std::optional<BurstAnalysis> take_result();

  /// Thread that ran the most recent analysis (test hook: proves the
  /// pipeline left the application thread).
  std::thread::id last_analysis_thread() const;

  /// Producer is going away; the worker prunes the channel once drained.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  /// Pop one queued job, analyze it on the calling thread, and publish the
  /// result (true when a job ran). Only valid on *manual* channels
  /// (open_manual_channel), where the caller is the sole consumer — a
  /// deterministic test scheduler standing in for the worker thread.
  bool pump_one();

  /// True for channels the background worker never serves.
  bool manual() const noexcept { return manual_; }

 private:
  friend class AnalysisWorker;

  struct Job {
    std::vector<LineAddr> trace;
    KneeConfig knee;
  };

  AnalysisChannel(AnalysisWorker* worker, bool manual)
      : worker_(worker), manual_(manual) {}

  static constexpr std::size_t kRingSlots = 8;

  AnalysisWorker* worker_;
  /// Never served by the worker thread; jobs run only via pump_one() (or
  /// the producer's drain). submit() skips the worker handshake entirely.
  const bool manual_ = false;
  SpscQueue<Job> queue_{kRingSlots};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<bool> closed_{false};

  mutable std::mutex result_mutex_;  // guards the three fields below
  BurstAnalysis result_;
  bool has_result_ = false;
  std::thread::id analysis_thread_;
};

/// The shared background analyzer: one std::jthread serving every channel.
class AnalysisWorker {
 public:
  AnalysisWorker();
  ~AnalysisWorker();

  AnalysisWorker(const AnalysisWorker&) = delete;
  AnalysisWorker& operator=(const AnalysisWorker&) = delete;

  /// The process-wide worker used by async samplers.
  static AnalysisWorker& shared();

  /// Open a new producer channel served by this worker.
  std::shared_ptr<AnalysisChannel> open_channel();

  /// Open a channel this worker will NEVER serve: analyses run only when
  /// the owner calls AnalysisChannel::pump_one(). Lets the crash fuzzer
  /// decide deterministically (from a seed) *when* a background analysis
  /// completes relative to the application's FASE stream.
  std::shared_ptr<AnalysisChannel> open_manual_channel();

  std::uint64_t analyses_run() const noexcept {
    return analyses_.load(std::memory_order_relaxed);
  }

 private:
  friend class AnalysisChannel;

  void notify();  // a producer enqueued a job
  void run(std::stop_token st);

  std::mutex mutex_;  // guards channels_
  std::vector<std::shared_ptr<AnalysisChannel>> channels_;
  std::condition_variable_any cv_;
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> analyses_{0};
  std::jthread thread_;  // last member: joins before the rest is destroyed
};

}  // namespace nvc::core
