// Off-critical-path burst analysis (paper Section III-C made asynchronous).
//
// The paper's pitch is that adaptive sizing costs almost nothing online, yet
// a naive implementation runs the full rename -> reuse -> MRC -> knee
// pipeline synchronously inside on_store() at every burst end — a
// multi-millisecond stall on the application thread. This module moves that
// work to one shared background worker:
//
//   app thread                        worker thread (std::jthread)
//   ----------                        ----------------------------
//   record burst trace
//   burst ends: move the trace  --->  SPSC ring (AnalysisChannel)
//   into the channel, O(1)            pop job, run analyze_burst()
//   keep running with the old         publish {Mrc, KneeResult} into the
//   cache size                        channel's result slot (mutex-guarded
//   at the next FASE boundary,        payload + release-ordered counter)
//   poll the slot and resize
//
// One worker is shared across all thread contexts (AnalysisWorker::shared());
// each producer owns a private AnalysisChannel, so every queue really is
// single-producer/single-consumer. Channels are shared_ptr-owned by both
// sides: a producer can be destroyed with a job in flight and the worker
// still has a live slot to publish into (the orphaned channel is pruned once
// its queue drains).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <vector>

#include "common/spsc_queue.hpp"
#include "common/types.hpp"
#include "core/knee.hpp"
#include "core/mrc.hpp"

namespace nvc::core {

/// Result of analyzing one (already FASE-renamed) burst trace.
struct BurstAnalysis {
  Mrc mrc;
  KneeResult selection;
};

/// The full burst analysis: reuse intervals (dense path — renamed ids lie in
/// [0, trace.size())) -> reuse(k) for all k -> MRC -> knee selection.
/// Deterministic: the async and synchronous paths call exactly this.
BurstAnalysis analyze_burst(std::span<const LineAddr> renamed_trace,
                            const KneeConfig& knee);

class AnalysisWorker;

/// One producer's mailbox to the shared worker. Producer-side calls (submit,
/// poll, drain) must come from a single thread.
class AnalysisChannel {
 public:
  /// Hand a completed burst to the worker. O(1): one vector move into the
  /// ring plus a wakeup; no analysis work happens on the calling thread.
  /// Returns false (trace untouched) if the ring is full — the caller then
  /// falls back to synchronous analysis rather than losing the burst.
  bool submit(std::vector<LineAddr>&& renamed_trace, const KneeConfig& knee);

  /// Number of analyses completed so far (release-ordered with the result).
  std::uint64_t completed() const noexcept {
    return completed_.load(std::memory_order_acquire);
  }

  /// True when every submitted job has been analyzed.
  bool idle() const noexcept {
    return completed() == submitted_.load(std::memory_order_relaxed);
  }

  /// Block until every submitted job has been analyzed (shutdown drain).
  /// On a manual channel this pumps the queue on the calling thread
  /// instead of waiting — there is no worker to wait for.
  void drain();

  /// Take the most recent published result (empty if none since last take).
  std::optional<BurstAnalysis> take_result();

  /// Thread that ran the most recent analysis (test hook: proves the
  /// pipeline left the application thread).
  std::thread::id last_analysis_thread() const;

  /// Producer is going away; the worker prunes the channel once drained.
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  /// Pop one queued job, analyze it on the calling thread, and publish the
  /// result (true when a job ran). Only valid on *manual* channels
  /// (open_manual_channel), where the caller is the sole consumer — a
  /// deterministic test scheduler standing in for the worker thread.
  /// `worker` is the virtual worker identity the scheduler is simulating
  /// (recorded as last_analysis_worker(); no pool thread is involved).
  bool pump_one(std::size_t worker = 0);

  /// True for channels the background worker never serves.
  bool manual() const noexcept { return manual_; }

  /// Home pool worker serving this channel (0 for manual channels).
  std::uint32_t home() const noexcept { return home_; }

  /// Pool-worker index that published the most recent result (pump_one
  /// records its virtual worker argument). Test hook.
  std::uint32_t last_analysis_worker() const;

 private:
  friend class AnalysisWorker;

  struct Job {
    std::vector<LineAddr> trace;
    KneeConfig knee;
  };

  AnalysisChannel(AnalysisWorker* worker, bool manual)
      : worker_(worker), manual_(manual) {}

  static constexpr std::size_t kRingSlots = 8;

  AnalysisWorker* worker_;
  /// Never served by the worker thread; jobs run only via pump_one() (or
  /// the producer's drain). submit() skips the worker handshake entirely.
  const bool manual_ = false;
  SpscQueue<Job> queue_{kRingSlots};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<bool> closed_{false};
  /// Index of the pool worker that serves this channel by default.
  std::uint32_t home_ = 0;
  /// Serializes the consumer side when the pool has more than one worker
  /// (home worker vs. an idle worker stealing). Held across the analysis of
  /// a job, not just the pop, so each channel publishes results in
  /// submission order no matter who serves it; contenders skip rather than
  /// spin. Never touched in pool-size-1 mode (bit-for-bit original path)
  /// or by manual pumping.
  std::atomic_flag consume_lock_ = ATOMIC_FLAG_INIT;

  mutable std::mutex result_mutex_;  // guards the four fields below
  BurstAnalysis result_;
  bool has_result_ = false;
  std::thread::id analysis_thread_;
  std::uint32_t analysis_worker_ = 0;
};

/// The shared background analyzer, generalized to a sized pool
/// (NVC_ANALYSIS_WORKERS, default 1 = the original single-worker behavior,
/// 0 = one per NUMA node). Channels are homed round-robin; each worker
/// blocks on its own pending count, and in pooled mode an idle worker
/// periodically scans sibling channels and steals their backlog under a
/// per-channel consumer lock (held across the analysis, so each channel
/// still publishes results in submission order). Pool size 1 takes the
/// exact pre-pool wait path — no doze tick, no lock — so the default is
/// behavior-identical, and manual channels are invisible to every pool
/// thread regardless of size.
class AnalysisWorker {
 public:
  AnalysisWorker();
  /// Fixed pool size (tests / benchmarks); env is ignored except NVC_PIN.
  explicit AnalysisWorker(std::size_t pool_size);
  ~AnalysisWorker();

  AnalysisWorker(const AnalysisWorker&) = delete;
  AnalysisWorker& operator=(const AnalysisWorker&) = delete;

  /// The process-wide pool used by async samplers.
  static AnalysisWorker& shared();

  /// Open a new producer channel homed on the next pool worker.
  std::shared_ptr<AnalysisChannel> open_channel();

  /// Open a channel NO pool worker will ever serve: analyses run only when
  /// the owner calls AnalysisChannel::pump_one(). Lets the crash fuzzer
  /// decide deterministically (from a seed) *when* a background analysis
  /// completes relative to the application's FASE stream.
  std::shared_ptr<AnalysisChannel> open_manual_channel();

  /// Number of pool threads (>= 1).
  std::size_t pool_size() const noexcept { return workers_.size(); }

  std::uint64_t analyses_run() const noexcept {
    return analyses_.load(std::memory_order_relaxed);
  }

  /// Jobs analyzed by a worker other than the channel's home (pooled mode
  /// only). Diagnostic; proves the stealing path engaged.
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kMaxPool = 64;

 private:
  friend class AnalysisChannel;

  struct Worker {
    std::condition_variable_any cv;
    /// Jobs queued on channels homed here, counted before they become
    /// poppable (see AnalysisChannel::submit). Guides this worker's wait;
    /// decremented by whichever worker pops the job.
    std::atomic<std::uint64_t> pending{0};
    std::jthread thread;  // started after every Worker exists
  };

  void start();
  void notify(std::size_t home);  // a producer enqueued a job
  /// Serve every queued job on `ch` (consumer-locked in pooled mode).
  /// Returns jobs run; 0 when another worker holds the channel.
  std::size_t serve(const std::shared_ptr<AnalysisChannel>& ch,
                    std::size_t w);
  void run(std::stop_token st, std::size_t w);

  const bool pin_;
  std::mutex mutex_;  // guards channels_ and next_home_
  std::vector<std::shared_ptr<AnalysisChannel>> channels_;
  std::size_t next_home_ = 0;
  std::vector<int> worker_cpu_;  // placement map, fixed at construction
  std::atomic<std::uint64_t> analyses_{0};
  std::atomic<std::uint64_t> steals_{0};
  /// Last member: jthreads stop and join before the rest is destroyed.
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace nvc::core
