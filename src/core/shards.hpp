// SHARDS-style sampled reuse-distance MRC construction (Waldspurger et al.,
// FAST'15 — the paper's reference [44] for the classical, reuse-distance
// side of the design space).
//
// Spatially-hashed sampling: a datum is monitored iff
// hash(addr) mod P < T, i.e. with rate R = T/P, a property of the address —
// so every access to a sampled datum is observed. Stack distances measured
// on the sampled sub-trace are scaled by 1/R to estimate full-trace
// distances. The paper argues reuse distance is "costly to measure,
// especially online"; this implementation exists so the claim can be
// checked quantitatively against the linear-time timescale analysis
// (bench/ablation_mrc_algorithms).
#pragma once

#include <cstdint>
#include <span>

#include "core/mrc.hpp"

namespace nvc::core {

struct ShardsConfig {
  /// Sampling rate R = threshold / modulus.
  std::uint64_t threshold = 1;
  std::uint64_t modulus = 16;

  double rate() const noexcept {
    return static_cast<double>(threshold) / static_cast<double>(modulus);
  }
};

/// Estimate the MRC of fully-associative LRU over `trace` by sampling.
/// Distances from the sampled sub-trace are scaled by modulus/threshold and
/// accumulated into the per-size miss counts, which are normalized by the
/// number of *sampled* accesses (SHARDS' unbiased estimator).
Mrc mrc_shards(std::span<const LineAddr> trace, std::size_t max_size,
               const ShardsConfig& config = {});

/// True if SHARDS would monitor this line under `config`.
bool shards_samples(LineAddr line, const ShardsConfig& config);

}  // namespace nvc::core
