// Miss-ratio curves for the software write-combining cache.
//
// Three ways to obtain an MRC, all used by the paper's evaluation:
//   1. the reuse-theory model (Eq. 3): hr(c) = reuse(k+1) - reuse(k) at
//      c = k - reuse(k) — the paper's linear-time contribution;
//   2. exact fully-associative LRU via stack distances (the classic Mattson
//      one-pass algorithm) — the "actual MRC" baseline of Fig. 7;
//   3. direct simulation of the WriteCache at each size with FASE clearing —
//      the ground truth including FASE-end compulsory misses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/reuse_locality.hpp"

namespace nvc::core {

/// Discrete miss-ratio curve over integer cache sizes 1..max_size.
class Mrc {
 public:
  Mrc() = default;
  explicit Mrc(std::vector<double> miss_ratio_by_size)
      : mr_(std::move(miss_ratio_by_size)) {}

  std::size_t max_size() const noexcept { return mr_.size(); }
  bool empty() const noexcept { return mr_.empty(); }

  /// Miss ratio at integer cache size c (1-based).
  double at(std::size_t c) const;

  /// Miss-ratio drop when growing the cache from c-1 to c (c >= 2).
  double gradient(std::size_t c) const;

  std::span<const double> values() const noexcept { return mr_; }

 private:
  std::vector<double> mr_;
};

/// Convert a reuse curve into an MRC over sizes 1..max_size (paper Eq. 3).
/// Produces scattered (c, mr) samples with c = k - reuse(k), resamples them
/// onto the integer grid, and clamps to [0, 1]. The curve is made
/// non-increasing (an LRU cache obeys inclusion, so a larger cache can only
/// lower the miss ratio; raw derivative noise would otherwise create false
/// knees).
Mrc mrc_from_reuse(const ReuseCurve& reuse, std::size_t max_size);

/// Exact fully-associative LRU MRC by Mattson stack distances, computed in
/// one pass with a Fenwick tree (O(n log n)). Cold misses count as misses at
/// every size.
Mrc mrc_exact_lru(std::span<const LineAddr> trace, std::size_t max_size);

/// Ground truth for the write-combining cache: replay the trace through a
/// WriteCache of each size in [1, max_size], flushing at every FASE boundary
/// (boundaries[i] = trace index before which a FASE ends). The miss ratio of
/// size c equals its flush ratio: every miss inserts a line that is flushed
/// exactly once, by eviction or at a FASE end.
Mrc mrc_simulate_write_cache(std::span<const LineAddr> trace,
                             std::span<const std::size_t> boundaries,
                             std::size_t max_size);

}  // namespace nvc::core
