#include "core/analyzer.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/reuse_locality.hpp"

namespace nvc::core {

BurstAnalysis analyze_burst(std::span<const LineAddr> renamed_trace,
                            const KneeConfig& knee) {
  NVC_REQUIRE(!renamed_trace.empty());
  const auto n = static_cast<LogicalTime>(renamed_trace.size());
  // Renamed identities are allocated sequentially from 0, so they are dense
  // in [0, n) and the direct-indexed interval extraction applies.
  const auto intervals =
      intervals_of_dense_trace(renamed_trace, static_cast<LineAddr>(n));
  const ReuseCurve reuse = compute_reuse_all_k(intervals, n);
  BurstAnalysis out;
  out.mrc = mrc_from_reuse(reuse, knee.max_size);
  out.selection = KneeFinder(knee).select(out.mrc);
  return out;
}

// --- AnalysisChannel --------------------------------------------------------

bool AnalysisChannel::submit(std::vector<LineAddr>&& renamed_trace,
                             const KneeConfig& knee) {
  Job job{std::move(renamed_trace), knee};
  if (manual_) {
    // No worker handshake: the job sits in the ring until the owner pumps
    // it (touching pending_ would leave the worker thread spinning on a
    // channel it cannot see).
    if (!queue_.try_push(std::move(job))) {
      renamed_trace = std::move(job.trace);
      return false;
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Count the job before it becomes poppable so the worker's per-pop
  // decrement can never underflow the counter.
  worker_->pending_.fetch_add(1, std::memory_order_release);
  if (!queue_.try_push(std::move(job))) {
    worker_->pending_.fetch_sub(1, std::memory_order_release);
    renamed_trace = std::move(job.trace);  // give the burst back: the caller
    return false;                          // falls back to sync analysis
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  worker_->notify();
  return true;
}

bool AnalysisChannel::pump_one() {
  NVC_REQUIRE(manual_, "pump_one is the manual channel's consumer side");
  auto job = queue_.try_pop();
  if (!job.has_value()) return false;
  BurstAnalysis result = analyze_burst(job->trace, job->knee);
  {
    std::lock_guard<std::mutex> publish(result_mutex_);
    result_ = std::move(result);
    has_result_ = true;
    analysis_thread_ = std::this_thread::get_id();
  }
  completed_.fetch_add(1, std::memory_order_release);
  return true;
}

void AnalysisChannel::drain() {
  if (manual_) {
    while (pump_one()) {
    }
    return;
  }
  const std::uint64_t target = submitted_.load(std::memory_order_relaxed);
  std::uint64_t done = completed_.load(std::memory_order_acquire);
  while (done < target) {
    completed_.wait(done, std::memory_order_acquire);
    done = completed_.load(std::memory_order_acquire);
  }
}

std::optional<BurstAnalysis> AnalysisChannel::take_result() {
  std::lock_guard<std::mutex> lock(result_mutex_);
  if (!has_result_) return std::nullopt;
  has_result_ = false;
  return std::move(result_);
}

std::thread::id AnalysisChannel::last_analysis_thread() const {
  std::lock_guard<std::mutex> lock(result_mutex_);
  return analysis_thread_;
}

// --- AnalysisWorker ---------------------------------------------------------

AnalysisWorker::AnalysisWorker()
    : thread_([this](std::stop_token st) { run(st); }) {}

AnalysisWorker::~AnalysisWorker() = default;  // jthread stops and joins

AnalysisWorker& AnalysisWorker::shared() {
  static AnalysisWorker worker;
  return worker;
}

std::shared_ptr<AnalysisChannel> AnalysisWorker::open_channel() {
  std::shared_ptr<AnalysisChannel> channel(
      new AnalysisChannel(this, /*manual=*/false));
  std::lock_guard<std::mutex> lock(mutex_);
  channels_.push_back(channel);
  return channel;
}

std::shared_ptr<AnalysisChannel> AnalysisWorker::open_manual_channel() {
  // Not registered in channels_: the worker thread never pops from it, so
  // pump_one() is the single consumer and completion timing is whatever
  // the owning test's scheduler decides.
  return std::shared_ptr<AnalysisChannel>(
      new AnalysisChannel(this, /*manual=*/true));
}

void AnalysisWorker::notify() {
  // Empty critical section: the waiter checks the predicate under mutex_, so
  // synchronizing with it here means the notify cannot fall into the gap
  // between its (failed) predicate check and its going to sleep.
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_one();
}

void AnalysisWorker::run(std::stop_token st) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    const bool keep_going = cv_.wait(lock, st, [&] {
      return pending_.load(std::memory_order_acquire) > 0;
    });
    if (!keep_going) return;  // stop requested and nothing pending

    // Snapshot the channel list; analysis runs without the registry lock so
    // producers can open channels and submit while a burst is in flight.
    std::vector<std::shared_ptr<AnalysisChannel>> channels = channels_;
    lock.unlock();

    for (const auto& ch : channels) {
      while (auto job = ch->queue_.try_pop()) {
        pending_.fetch_sub(1, std::memory_order_release);
        BurstAnalysis result = analyze_burst(job->trace, job->knee);
        analyses_.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> publish(ch->result_mutex_);
          ch->result_ = std::move(result);
          ch->has_result_ = true;
          ch->analysis_thread_ = std::this_thread::get_id();
        }
        ch->completed_.fetch_add(1, std::memory_order_release);
        ch->completed_.notify_all();
      }
    }

    lock.lock();
    // Prune channels whose producer is gone and whose queue has drained.
    std::erase_if(channels_, [](const std::shared_ptr<AnalysisChannel>& ch) {
      return ch->closed_.load(std::memory_order_acquire) &&
             ch->queue_.empty();
    });
  }
}

}  // namespace nvc::core
