#include "core/analyzer.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"
#include "common/cpu.hpp"
#include "common/env.hpp"
#include "core/reuse_locality.hpp"
#include "core/thread_groups.hpp"

namespace nvc::core {

namespace {

/// Idle-scan cadence for pooled mode: a worker with no home work wakes this
/// often to look for sibling backlog to steal. Analyses are ms-scale, so a
/// 500 µs tick costs nothing against the work it finds; pool size 1 never
/// ticks (pure cv wait, the original behavior).
constexpr auto kStealTick = std::chrono::microseconds(500);

/// Pool size from the environment: default 1, 0 = one worker per NUMA
/// node, clamped to [1, kMaxPool] (same convention as the flush pool).
std::size_t analysis_pool_from_env() {
  const std::int64_t requested = env_int("NVC_ANALYSIS_WORKERS", 1);
  if (requested <= 0) {
    return static_cast<std::size_t>(std::max(1, cpu_topology().numa_nodes));
  }
  return static_cast<std::size_t>(std::min<std::int64_t>(
      requested, static_cast<std::int64_t>(AnalysisWorker::kMaxPool)));
}

}  // namespace

BurstAnalysis analyze_burst(std::span<const LineAddr> renamed_trace,
                            const KneeConfig& knee) {
  NVC_REQUIRE(!renamed_trace.empty());
  const auto n = static_cast<LogicalTime>(renamed_trace.size());
  // Renamed identities are allocated sequentially from 0, so they are dense
  // in [0, n) and the direct-indexed interval extraction applies.
  const auto intervals =
      intervals_of_dense_trace(renamed_trace, static_cast<LineAddr>(n));
  const ReuseCurve reuse = compute_reuse_all_k(intervals, n);
  BurstAnalysis out;
  out.mrc = mrc_from_reuse(reuse, knee.max_size);
  out.selection = KneeFinder(knee).select(out.mrc);
  return out;
}

// --- AnalysisChannel --------------------------------------------------------

bool AnalysisChannel::submit(std::vector<LineAddr>&& renamed_trace,
                             const KneeConfig& knee) {
  Job job{std::move(renamed_trace), knee};
  if (manual_) {
    // No worker handshake: the job sits in the ring until the owner pumps
    // it (touching pending_ would leave the worker thread spinning on a
    // channel it cannot see).
    if (!queue_.try_push(std::move(job))) {
      renamed_trace = std::move(job.trace);
      return false;
    }
    submitted_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Count the job before it becomes poppable so the worker's per-pop
  // decrement can never underflow the counter.
  worker_->workers_[home_]->pending.fetch_add(1, std::memory_order_release);
  if (!queue_.try_push(std::move(job))) {
    worker_->workers_[home_]->pending.fetch_sub(1, std::memory_order_release);
    renamed_trace = std::move(job.trace);  // give the burst back: the caller
    return false;                          // falls back to sync analysis
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  worker_->notify(home_);
  return true;
}

bool AnalysisChannel::pump_one(std::size_t worker) {
  NVC_REQUIRE(manual_, "pump_one is the manual channel's consumer side");
  auto job = queue_.try_pop();
  if (!job.has_value()) return false;
  BurstAnalysis result = analyze_burst(job->trace, job->knee);
  {
    std::lock_guard<std::mutex> publish(result_mutex_);
    result_ = std::move(result);
    has_result_ = true;
    analysis_thread_ = std::this_thread::get_id();
    analysis_worker_ = static_cast<std::uint32_t>(worker);
  }
  completed_.fetch_add(1, std::memory_order_release);
  return true;
}

void AnalysisChannel::drain() {
  if (manual_) {
    while (pump_one()) {
    }
    return;
  }
  const std::uint64_t target = submitted_.load(std::memory_order_relaxed);
  std::uint64_t done = completed_.load(std::memory_order_acquire);
  while (done < target) {
    completed_.wait(done, std::memory_order_acquire);
    done = completed_.load(std::memory_order_acquire);
  }
}

std::optional<BurstAnalysis> AnalysisChannel::take_result() {
  std::lock_guard<std::mutex> lock(result_mutex_);
  if (!has_result_) return std::nullopt;
  has_result_ = false;
  return std::move(result_);
}

std::thread::id AnalysisChannel::last_analysis_thread() const {
  std::lock_guard<std::mutex> lock(result_mutex_);
  return analysis_thread_;
}

std::uint32_t AnalysisChannel::last_analysis_worker() const {
  std::lock_guard<std::mutex> lock(result_mutex_);
  return analysis_worker_;
}

// --- AnalysisWorker ---------------------------------------------------------

AnalysisWorker::AnalysisWorker() : AnalysisWorker(analysis_pool_from_env()) {}

AnalysisWorker::AnalysisWorker(std::size_t pool_size)
    : pin_(env_int("NVC_PIN", 0) != 0) {
  NVC_REQUIRE(pool_size >= 1 && pool_size <= kMaxPool);
  worker_cpu_ = place_workers(pool_size, cpu_topology()).worker_cpu;
  workers_.reserve(pool_size);
  for (std::size_t w = 0; w < pool_size; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  start();  // threads only start once workers_ is fully built
}

void AnalysisWorker::start() {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w]->thread =
        std::jthread([this, w](std::stop_token st) { run(st, w); });
  }
}

AnalysisWorker::~AnalysisWorker() {
  for (auto& w : workers_) w->thread.request_stop();
}  // workers_ (last member) joins; the rest is destroyed after

AnalysisWorker& AnalysisWorker::shared() {
  static AnalysisWorker worker;
  return worker;
}

std::shared_ptr<AnalysisChannel> AnalysisWorker::open_channel() {
  std::shared_ptr<AnalysisChannel> channel(
      new AnalysisChannel(this, /*manual=*/false));
  std::lock_guard<std::mutex> lock(mutex_);
  channel->home_ = static_cast<std::uint32_t>(next_home_);
  next_home_ = (next_home_ + 1) % workers_.size();
  channels_.push_back(channel);
  return channel;
}

std::shared_ptr<AnalysisChannel> AnalysisWorker::open_manual_channel() {
  // Not registered in channels_: no pool thread ever pops from it, so
  // pump_one() is the single consumer and completion timing is whatever
  // the owning test's scheduler decides.
  return std::shared_ptr<AnalysisChannel>(
      new AnalysisChannel(this, /*manual=*/true));
}

void AnalysisWorker::notify(std::size_t home) {
  // Empty critical section: the waiter checks the predicate under mutex_, so
  // synchronizing with it here means the notify cannot fall into the gap
  // between its (failed) predicate check and its going to sleep.
  { std::lock_guard<std::mutex> lock(mutex_); }
  workers_[home]->cv.notify_one();
}

std::size_t AnalysisWorker::serve(const std::shared_ptr<AnalysisChannel>& ch,
                                  std::size_t w) {
  const bool pooled = workers_.size() > 1;
  // In pooled mode the ring has potentially-concurrent consumers (home
  // worker vs. stealing worker): the per-channel lock serializes them, held
  // across the analysis so results publish in submission order. A held lock
  // means the channel is already being served — skip, don't wait.
  if (pooled && ch->consume_lock_.test_and_set(std::memory_order_acquire)) {
    return 0;
  }
  std::size_t served = 0;
  while (auto job = ch->queue_.try_pop()) {
    workers_[ch->home_]->pending.fetch_sub(1, std::memory_order_release);
    BurstAnalysis result = analyze_burst(job->trace, job->knee);
    analyses_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> publish(ch->result_mutex_);
      ch->result_ = std::move(result);
      ch->has_result_ = true;
      ch->analysis_thread_ = std::this_thread::get_id();
      ch->analysis_worker_ = static_cast<std::uint32_t>(w);
    }
    ch->completed_.fetch_add(1, std::memory_order_release);
    ch->completed_.notify_all();
    ++served;
  }
  if (pooled) ch->consume_lock_.clear(std::memory_order_release);
  return served;
}

void AnalysisWorker::run(std::stop_token st, std::size_t w) {
  if (pin_) pin_thread_to_cpu(worker_cpu_[w]);
  Worker& self = *workers_[w];
  const bool pooled = workers_.size() > 1;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (pooled) {
      // Doze-tick wait: wake on home work, a poke, stop, or the periodic
      // steal scan (an idle worker is the pool's slack capacity — it must
      // notice sibling backlog without being told).
      self.cv.wait_for(lock, st, kStealTick, [&] {
        return self.pending.load(std::memory_order_acquire) > 0;
      });
    } else {
      const bool keep_going = self.cv.wait(lock, st, [&] {
        return self.pending.load(std::memory_order_acquire) > 0;
      });
      if (!keep_going) return;  // stop requested and nothing pending
    }

    // Snapshot the channel list; analysis runs without the registry lock so
    // producers can open channels and submit while a burst is in flight.
    std::vector<std::shared_ptr<AnalysisChannel>> channels = channels_;
    lock.unlock();

    std::size_t own = 0;
    for (const auto& ch : channels) {
      if (ch->home_ == w) own += serve(ch, w);
    }
    if (pooled && own == 0) {
      std::size_t stolen = 0;
      for (const auto& ch : channels) {
        if (ch->home_ != w && !ch->queue_.empty()) stolen += serve(ch, w);
      }
      if (stolen != 0) steals_.fetch_add(stolen, std::memory_order_relaxed);
    }

    lock.lock();
    // Prune channels whose producer is gone and whose queue has drained.
    std::erase_if(channels_, [](const std::shared_ptr<AnalysisChannel>& ch) {
      return ch->closed_.load(std::memory_order_acquire) &&
             ch->queue_.empty();
    });
    if (pooled && st.stop_requested()) return;
  }
}

}  // namespace nvc::core
