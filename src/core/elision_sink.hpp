// FlushSink decorators around FlushElisionTable's scheduling-dedup face
// (DESIGN.md §13).
//
// ElidingSink sits on the application-thread write-back path, directly
// below the LogOrderedSink (the log sync for a data line must run whether
// or not the media write is elided — the log-before-data invariant of §7
// is decided above this layer). It consults announce() per line: owners
// forward to the inner sink (a synchronous backend sink, or the
// AsyncFlushSink feeding the flush-behind ring), elided lines are skipped
// and remembered. drain() — the commit-point barrier — re-checks every
// line elided since the last drain: one still pending means the owning
// write-back has not started yet (it may live in another thread's ring,
// which our drain ticket does not cover), so the line is flushed locally
// before the commit proceeds. This closes the cross-thread durability
// hole under the same in-model assumption as §7/§8: an *issued*
// write-back is durable (simulated/shadow backends; eADR-class hardware
// where the flush is ordering-only).
//
// RetiringSink is the executor-side counterpart: it retires the line
// immediately BEFORE forwarding to the real write-back — the
// decrement-before-write order the table's soundness argument requires.
// In the flush-behind composition it wraps the worker-side sink inside
// the FlushChannel (below the ring, above FaultTolerantSink/IssueSink);
// in the synchronous composition ElidingSink retires inline.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "core/elision.hpp"
#include "core/write_cache.hpp"

namespace nvc::core {

/// Executor-side decorator: retire, then write back.
class RetiringSink final : public FlushSink {
 public:
  /// Owning inner (worker-side: the FlushChannel owns this sink).
  RetiringSink(std::unique_ptr<FlushSink> inner,
               std::shared_ptr<FlushElisionTable> table)
      : owned_(std::move(inner)), inner_(owned_.get()),
        table_(std::move(table)) {}

  /// Non-owning inner (application-thread/rig paths).
  RetiringSink(FlushSink* inner, std::shared_ptr<FlushElisionTable> table)
      : inner_(inner), table_(std::move(table)) {}

  bool flush_line(LineAddr line) override {
    table_->retire(line);
    return inner_->flush_line(line);
  }
  void drain() override { inner_->drain(); }

 private:
  std::unique_ptr<FlushSink> owned_;
  FlushSink* inner_;
  std::shared_ptr<FlushElisionTable> table_;
};

/// Producer-side decorator: skip write-backs that are already scheduled.
class ElidingSink final : public FlushSink {
 public:
  /// `immediate`: the inner sink executes the write-back synchronously
  /// inside flush_line (no ring below), so the owner retires inline right
  /// before forwarding. With a ring below (AsyncFlushSink inner), pass
  /// false and wrap the worker-side sink in a RetiringSink instead.
  ElidingSink(FlushSink* inner, std::shared_ptr<FlushElisionTable> table,
              bool immediate)
      : inner_(inner), table_(std::move(table)), immediate_(immediate) {}

  bool flush_line(LineAddr line) override {
    switch (table_->announce(line)) {
      case FlushElisionTable::Announce::kOwner:
        if (immediate_) table_->retire(line);
        return inner_->flush_line(line);
      case FlushElisionTable::Announce::kElided:
        if (elided_.size() >= kMaxTracked) {
          // Tracking full (drain is overdue): stop eliding rather than
          // lose the commit-time re-check for this line.
          return inner_->flush_line(line);
        }
        elided_.push_back(line);
        elided_count_++;
        return true;
      case FlushElisionTable::Announce::kUntracked:
        return inner_->flush_line(line);
    }
    return inner_->flush_line(line);  // unreachable
  }

  void drain() override {
    inner_->drain();
    if (elided_.empty()) return;
    std::sort(elided_.begin(), elided_.end());
    elided_.erase(std::unique(elided_.begin(), elided_.end()), elided_.end());
    bool reflushed = false;
    for (const LineAddr line : elided_) {
      // Still pending at the barrier: the owning write-back has not started
      // (or the retire was lost — the seeded-bug dimension), so our bytes
      // are not on their way to the media. Flush locally, bypassing the
      // table: correctness beats a duplicate write here.
      if (table_->pending(line)) {
        inner_->flush_line(line);
        reflushed = true;
        reflushed_count_++;
      }
    }
    elided_.clear();
    if (reflushed) inner_->drain();
  }

  /// Write-backs skipped because an owner was already scheduled.
  std::uint64_t elided_count() const noexcept { return elided_count_; }
  /// Elided lines the drain barrier had to flush locally after all.
  std::uint64_t reflushed_count() const noexcept { return reflushed_count_; }

 private:
  static constexpr std::size_t kMaxTracked = 4096;

  FlushSink* inner_;
  std::shared_ptr<FlushElisionTable> table_;
  bool immediate_;
  /// Lines elided since the last drain (producer-thread private).
  std::vector<LineAddr> elided_;
  std::uint64_t elided_count_ = 0;
  std::uint64_t reflushed_count_ = 0;
};

}  // namespace nvc::core
