#include "core/fault_sink.hpp"

#include <algorithm>
#include <chrono>

#include "common/assert.hpp"

namespace nvc::core {

namespace {

/// Busy-wait backoff. Zero duration returns immediately so deterministic
/// schedulers (the crash fuzzer) can retry without consuming wall clock.
void backoff_spin(std::uint64_t ns) noexcept {
  if (ns == 0) return;
  const auto start = std::chrono::steady_clock::now();
  while (static_cast<std::uint64_t>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now() - start)
                 .count()) < ns) {
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

}  // namespace

std::vector<LineAddr> FaultStats::quarantined_lines() const {
  std::vector<LineAddr> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.assign(poisoned_.begin(), poisoned_.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FaultStats::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  poisoned_.clear();
  transients_.store(0, std::memory_order_release);
  retries_.store(0, std::memory_order_release);
  quarantined_.store(0, std::memory_order_release);
}

FaultTolerantSink::FaultTolerantSink(FlushSink* inner, FaultStats* stats,
                                     RetryPolicy policy)
    : inner_(inner), stats_(stats), policy_(policy) {
  NVC_REQUIRE(inner_ != nullptr && stats_ != nullptr);
}

FaultTolerantSink::FaultTolerantSink(std::unique_ptr<FlushSink> inner,
                                     FaultStats* stats, RetryPolicy policy)
    : owned_(std::move(inner)),
      inner_(owned_.get()),
      stats_(stats),
      policy_(policy) {
  NVC_REQUIRE(inner_ != nullptr && stats_ != nullptr);
}

bool FaultTolerantSink::flush_line(LineAddr line) {
  // Poisoned lines fail fast: retrying known-bad media wastes the backoff
  // budget of every later flush (and on the worker thread would stall the
  // whole ring behind one dead line).
  if (stats_->quarantined(line)) return false;
  std::uint64_t backoff = policy_.backoff_ns;
  for (std::uint32_t attempt = 0;; ++attempt) {
    if (inner_->flush_line(line)) return true;
    stats_->note_transient();
    if (attempt >= policy_.max_retries) break;
    stats_->note_retry();
    backoff_spin(backoff);
    backoff = std::min(backoff * 2, policy_.backoff_cap_ns);
  }
  stats_->quarantine(line);
  return false;
}

}  // namespace nvc::core
