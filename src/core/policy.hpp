// The six persistent-data-caching techniques compared in the paper
// (Section IV-A), behind one interface so every experiment runs them through
// identical plumbing:
//
//   ER          eager: flush each persistent store immediately
//   LA          lazy: record dirty lines, flush them all at FASE end
//   AT          Atlas: fixed-size direct-mapped address table (the paper's
//               state of the art, Section II-A)
//   SC          this paper: adaptive software write-combining cache with
//               online bursty-sampled MRC and knee-based sizing
//   SC-offline  the software cache with a size chosen from a profiling run
//   BEST        no flushes at all — invalid, but an upper bound on any
//               flush schedule (Section IV-A)
//
// Each policy reports the store/flush counts used for the paper's flush
// ratios (Table III) and an estimate of the bookkeeping instructions it
// executes per operation, which feeds the hwsim cost model (Table IV's
// instruction counts).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"
#include "core/admission.hpp"
#include "core/sampler.hpp"
#include "core/write_cache.hpp"

namespace nvc::core {

enum class PolicyKind : std::uint8_t {
  kEager,      // ER
  kLazy,       // LA
  kAtlas,      // AT
  kSoftCache,  // SC (online adaptive)
  kSoftCacheOffline,
  kBest,
};

const char* to_string(PolicyKind kind);

struct PolicyConfig {
  /// AT: number of table entries (Atlas uses 8).
  std::size_t atlas_table_size = 8;
  /// AT: ways per set. 1 = Atlas' direct-mapped table (the paper's
  /// baseline); >1 is an ablation variant with per-set LRU replacement.
  std::size_t atlas_associativity = 1;
  /// SC-offline: the profiled best size; SC: the initial (default) size.
  std::size_t cache_size = WriteCache::kDefaultCapacity;
  /// SC: online sampler configuration.
  SamplerConfig sampler;
  /// Write-admission filter (NVC_ADMIT, DESIGN.md §12). kAlways attaches no
  /// filter at all; kWriteOnce applies to every deferred-flush policy
  /// (LA/AT/SC/SC-offline); kReuse needs the online sampler's MRC and
  /// therefore only attaches to SC, degrading to kAlways elsewhere.
  AdmissionConfig admission;
};

struct PolicyCounters {
  std::uint64_t stores = 0;
  std::uint64_t combined = 0;     // stores absorbed by write combining
  std::uint64_t fases = 0;
  std::uint64_t instructions = 0; // bookkeeping instruction estimate
  std::uint64_t bypassed = 0;     // stores written through by admission

  /// The paper's headline metric: flushes / stores, computed by the caller
  /// from the sink's flush count and `stores`.
  double flush_ratio(std::uint64_t flushes) const noexcept {
    return stores == 0 ? 0.0
                       : static_cast<double>(flushes) /
                             static_cast<double>(stores);
  }
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual PolicyKind kind() const noexcept = 0;
  const char* name() const noexcept { return to_string(kind()); }

  /// A persistent store to `line` occurred inside a FASE.
  virtual void on_store(LineAddr line, FlushSink& sink) = 0;

  /// Outermost FASE boundaries. (Nested FASEs are handled by the runtime;
  /// policies only see outermost begin/end, as in Atlas.)
  virtual void on_fase_begin(FlushSink& sink);
  virtual void on_fase_end(FlushSink& sink);

  /// Mid-FASE persistence barrier: flush everything buffered and drain,
  /// WITHOUT signalling a FASE boundary. For stateless-at-boundary policies
  /// this is the same flushing work as on_fase_end (the default forwards),
  /// but the sampling policy must not advance its renamer epoch or apply a
  /// deferred resize here — the FASE is still open.
  virtual void flush_buffered(FlushSink& sink) { on_fase_end(sink); }

  /// Program end: release anything still buffered.
  virtual void finish(FlushSink& sink);

  const PolicyCounters& counters() const noexcept { return counters_; }

  /// SC / SC-offline: current software-cache capacity (0 for others).
  virtual std::size_t current_cache_size() const noexcept { return 0; }

  /// Attach a write-admission filter (make_policy wires this from
  /// PolicyConfig::admission). Null — the default, NVC_ADMIT=always —
  /// keeps the store hot path to one pointer test.
  void attach_admission(const AdmissionConfig& config) {
    admission_ = std::make_unique<AdmissionFilter>(config);
  }
  const AdmissionFilter* admission() const noexcept {
    return admission_.get();
  }

 protected:
  /// Probe the attached filter (caller guarantees admission_ != nullptr):
  /// true when the store was bypassed — counted and written through `sink`
  /// immediately, skipping the deferred-flush structure entirely.
  bool admit_bypass(LineAddr line, FlushSink& sink);

  PolicyCounters counters_;
  std::unique_ptr<AdmissionFilter> admission_;
};

/// Instantiate one of the six techniques.
std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                    const PolicyConfig& config = {});

// ---------------------------------------------------------------------------
// Concrete policies (exposed for white-box tests).
// ---------------------------------------------------------------------------

/// ER: clflush after every store. Cheap bookkeeping, maximal flush count.
class EagerPolicy final : public Policy {
 public:
  PolicyKind kind() const noexcept override { return PolicyKind::kEager; }
  void on_store(LineAddr line, FlushSink& sink) override;
};

/// LA: remember every dirty line, flush the whole set at FASE end. Minimal
/// flush count, maximal FASE-end stall.
class LazyPolicy final : public Policy {
 public:
  PolicyKind kind() const noexcept override { return PolicyKind::kLazy; }
  void on_store(LineAddr line, FlushSink& sink) override;
  void on_fase_end(FlushSink& sink) override;
  void finish(FlushSink& sink) override;

 private:
  void flush_pending(FlushSink& sink);
  /// line -> first-write sequence. Open addressing: LA's per-store cost is
  /// one linear probe instead of unordered_map's node allocation + chase.
  FlatHashMap<LineAddr, std::uint64_t> pending_;
  std::uint64_t seq_ = 0;
};

/// AT: Atlas' fixed-size direct-mapped table of modified line addresses
/// (paper Section II-A: "equivalent to a direct-mapped, fixed size cache").
/// An associativity knob (>1 ways, per-set LRU) is provided as an ablation.
class AtlasPolicy final : public Policy {
 public:
  AtlasPolicy(std::size_t table_size, std::size_t associativity = 1);
  PolicyKind kind() const noexcept override { return PolicyKind::kAtlas; }
  void on_store(LineAddr line, FlushSink& sink) override;
  void on_fase_end(FlushSink& sink) override;
  void finish(FlushSink& sink) override;

 private:
  struct Entry {
    LineAddr line = 0;  // 0 = empty (line 0 is never persistent)
    std::uint64_t stamp = 0;
  };
  void flush_table(FlushSink& sink);
  std::vector<Entry> table_;  // sets_ x ways_, row-major by set
  std::size_t sets_;
  std::size_t ways_;
  std::uint64_t clock_ = 0;
};

/// SC / SC-offline: the adaptive software write-combining cache.
///
/// With `SamplerConfig::async_analysis` the burst analysis runs on the
/// shared background worker and the selected size is *applied at the next
/// FASE boundary* (begin or end), never mid-FASE: the cache is empty (or
/// about to be flushed) at a boundary, so a resize there is free and the
/// FASE-clearing semantics the MRC was computed under are preserved. Until
/// the selection lands, the old cache size stays in effect.
class SoftCachePolicy final : public Policy {
 public:
  /// `online`: true = SC (bursty sampling + resize), false = SC-offline
  /// (fixed, profiled size).
  SoftCachePolicy(const PolicyConfig& config, bool online);
  PolicyKind kind() const noexcept override {
    return online_ ? PolicyKind::kSoftCache : PolicyKind::kSoftCacheOffline;
  }
  void on_store(LineAddr line, FlushSink& sink) override;
  void on_fase_begin(FlushSink& sink) override;
  void on_fase_end(FlushSink& sink) override;
  void flush_buffered(FlushSink& sink) override;
  void finish(FlushSink& sink) override;
  std::size_t current_cache_size() const noexcept override {
    return cache_.capacity();
  }

  /// Block until an in-flight background analysis (if any) completes; the
  /// next FASE boundary will then apply its selection (test hook — finish()
  /// already drains and applies).
  void drain_analysis() { sampler_.drain(); }

  /// Manual-analysis mode (SamplerConfig::manual_analysis): run one
  /// handed-off burst analysis now, on this thread. The deterministic
  /// stand-in for the background pool's scheduling; `worker` is the virtual
  /// pool-worker index the schedule charges the analysis to.
  bool pump_analysis(std::size_t worker = 0) {
    return sampler_.pump_analysis(worker);
  }

  const WriteCache& cache() const noexcept { return cache_; }
  const BurstSampler& sampler() const noexcept { return sampler_; }

 private:
  void apply_pending_selection(FlushSink& sink);
  void sample_store(LineAddr line, FlushSink& sink);

  WriteCache cache_;
  BurstSampler sampler_;
  bool online_;
};

/// BEST: never flush. Invalid as a persistence technique; used as the upper
/// bound of optimal caching.
class BestPolicy final : public Policy {
 public:
  PolicyKind kind() const noexcept override { return PolicyKind::kBest; }
  void on_store(LineAddr line, FlushSink& sink) override;
};

}  // namespace nvc::core
