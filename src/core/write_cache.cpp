#include "core/write_cache.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace nvc::core {

WriteCache::WriteCache(std::size_t capacity) : capacity_(capacity) {
  NVC_REQUIRE(capacity >= 1 && capacity <= kMaxCapacity);
  nodes_.reserve(capacity);
  rehash(capacity * 2);
}

std::uint64_t WriteCache::mix(LineAddr line) noexcept {
  // Fibonacci hashing with an extra xor-shift; line addresses are often
  // sequential, which plain masking would cluster badly.
  std::uint64_t x = line;
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

void WriteCache::rehash(std::size_t min_slots) {
  std::size_t n = 8;
  while (n < min_slots * 2) n <<= 1;  // keep load factor <= 0.5
  slots_.assign(n, kEmptySlot);
  slot_mask_ = n - 1;
  for (std::uint32_t idx = 0; idx < nodes_.size(); ++idx) {
    // Skip pooled-but-free nodes.
    if (std::find(free_nodes_.begin(), free_nodes_.end(), idx) !=
        free_nodes_.end()) {
      continue;
    }
    std::size_t slot = mix(nodes_[idx].line) & slot_mask_;
    while (slots_[slot] != kEmptySlot) slot = (slot + 1) & slot_mask_;
    slots_[slot] = idx;
  }
}

std::uint32_t WriteCache::hash_find(LineAddr line) const noexcept {
  std::size_t slot = mix(line) & slot_mask_;
  while (slots_[slot] != kEmptySlot) {
    const std::uint32_t idx = slots_[slot];
    if (nodes_[idx].line == line) return idx;
    slot = (slot + 1) & slot_mask_;
  }
  return kNil;
}

void WriteCache::hash_insert(LineAddr line, std::uint32_t idx) {
  std::size_t slot = mix(line) & slot_mask_;
  while (slots_[slot] != kEmptySlot) slot = (slot + 1) & slot_mask_;
  slots_[slot] = idx;
}

void WriteCache::hash_erase(LineAddr line) noexcept {
  std::size_t slot = mix(line) & slot_mask_;
  while (slots_[slot] != kEmptySlot) {
    if (nodes_[slots_[slot]].line == line) break;
    slot = (slot + 1) & slot_mask_;
  }
  NVC_ASSERT(slots_[slot] != kEmptySlot, "erasing a line not in the map");

  // Backward-shift deletion keeps probe chains tombstone-free.
  std::size_t hole = slot;
  std::size_t probe = (hole + 1) & slot_mask_;
  while (slots_[probe] != kEmptySlot) {
    const std::size_t home = mix(nodes_[slots_[probe]].line) & slot_mask_;
    // Move the entry back if its home position does not lie in (hole, probe].
    const bool movable = ((probe - home) & slot_mask_) >=
                         ((probe - hole) & slot_mask_);
    if (movable) {
      slots_[hole] = slots_[probe];
      hole = probe;
    }
    probe = (probe + 1) & slot_mask_;
  }
  slots_[hole] = kEmptySlot;
}

void WriteCache::list_push_front(std::uint32_t idx) noexcept {
  nodes_[idx].prev = kNil;
  nodes_[idx].next = head_;
  if (head_ != kNil) nodes_[head_].prev = idx;
  head_ = idx;
  if (tail_ == kNil) tail_ = idx;
}

void WriteCache::list_unlink(std::uint32_t idx) noexcept {
  const Node& n = nodes_[idx];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
}

void WriteCache::move_to_front(std::uint32_t idx) noexcept {
  if (head_ == idx) return;
  list_unlink(idx);
  list_push_front(idx);
}

std::uint32_t WriteCache::evict_lru(FlushSink& sink) {
  NVC_ASSERT(tail_ != kNil);
  const std::uint32_t victim = tail_;
  const LineAddr line = nodes_[victim].line;
  list_unlink(victim);
  hash_erase(line);
  --size_;
  ++stats_.evictions;
  sink.flush_line(line);
  return victim;
}

bool WriteCache::access(LineAddr line, FlushSink& sink) {
  ++stats_.accesses;
  const std::uint32_t found = hash_find(line);
  if (found != kNil) {
    ++stats_.hits;
    move_to_front(found);
    return true;
  }

  std::uint32_t idx;
  if (size_ == capacity_) {
    idx = evict_lru(sink);  // reuse the victim's node
  } else if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
  } else {
    // Rehash before appending: rehash() walks the node pool, so the new
    // (still uninitialized) node must not be visible to it yet.
    if ((nodes_.size() + 1) * 2 > slots_.size()) rehash(nodes_.size() + 1);
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
  }
  nodes_[idx].line = line;
  hash_insert(line, idx);
  list_push_front(idx);
  ++size_;
  return false;
}

void WriteCache::flush_all(FlushSink& sink) {
  while (tail_ != kNil) {
    const std::uint32_t victim = tail_;
    const LineAddr line = nodes_[victim].line;
    list_unlink(victim);
    hash_erase(line);
    free_nodes_.push_back(victim);
    --size_;
    ++stats_.fase_flushes;
    sink.flush_line(line);
  }
  NVC_ASSERT(size_ == 0);
}

void WriteCache::resize(std::size_t new_capacity, FlushSink& sink) {
  NVC_REQUIRE(new_capacity >= 1 && new_capacity <= kMaxCapacity);
  while (size_ > new_capacity) {
    const std::uint32_t victim = evict_lru(sink);
    free_nodes_.push_back(victim);
  }
  capacity_ = new_capacity;
}

bool WriteCache::contains(LineAddr line) const noexcept {
  return hash_find(line) != kNil;
}

std::vector<LineAddr> WriteCache::lru_order() const {
  std::vector<LineAddr> order;
  order.reserve(size_);
  for (std::uint32_t idx = tail_; idx != kNil; idx = nodes_[idx].prev) {
    order.push_back(nodes_[idx].line);
  }
  return order;
}

}  // namespace nvc::core
