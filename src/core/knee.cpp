#include "core/knee.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace nvc::core {

KneeResult KneeFinder::select(const Mrc& mrc) const {
  NVC_REQUIRE(!mrc.empty());
  NVC_REQUIRE(mrc.max_size() >= config_.max_size,
              "MRC does not cover the selectable size range");

  // Gradient at size c: drop in miss ratio from growing c-1 -> c.
  struct Candidate {
    std::size_t size;
    double drop;
  };
  std::vector<Candidate> drops;
  drops.reserve(config_.max_size);
  for (std::size_t c = 2; c <= config_.max_size; ++c) {
    const double d = mrc.gradient(c);
    if (d >= config_.min_drop) drops.push_back({c, d});
  }

  KneeResult result;
  if (drops.empty()) {
    // Flat curve: no knee to exploit; take the maximal size (paper rule).
    result.chosen_size = config_.max_size;
    result.had_knees = false;
    return result;
  }

  std::stable_sort(drops.begin(), drops.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.drop > b.drop;
                   });
  const std::size_t take = std::min(config_.top_candidates, drops.size());
  for (std::size_t i = 0; i < take; ++i) {
    result.candidates.push_back(drops[i].size);
  }

  // Among the top-ranked knees, the largest size captures every ranked drop
  // (paper: "choose the knee that has the largest cache size").
  result.chosen_size =
      *std::max_element(result.candidates.begin(), result.candidates.end());
  result.had_knees = true;
  return result;
}

}  // namespace nvc::core
