// Cache-size selection from an MRC (paper Section III-C, "Cache Size
// Optimization").
//
// The paper's procedure: compute the miss-ratio decrease for every unit
// increase of the cache size (the gradient), rank the decreases, take the
// top few as candidate knees, and choose the candidate with the largest
// cache size. The maximal size is bounded (default 50) to cap the FASE-end
// drain stall; if the MRC has no obvious inflection point, the maximal size
// is chosen.
#pragma once

#include <cstddef>
#include <vector>

#include "core/mrc.hpp"

namespace nvc::core {

struct KneeConfig {
  std::size_t default_size = 8;  // paper: initial cache size
  std::size_t max_size = 50;     // paper: bound on FASE-end stall
  std::size_t top_candidates = 5;
  /// A gradient below this is noise, not an inflection point. The paper's
  /// Fig. 2 knees are drops of several percentage points.
  double min_drop = 1e-3;
};

struct KneeResult {
  std::size_t chosen_size = 0;
  std::vector<std::size_t> candidates;  // ranked by gradient, best first
  bool had_knees = false;               // false => fell back to max_size
};

class KneeFinder {
 public:
  explicit KneeFinder(KneeConfig config = {}) : config_(config) {}

  /// Pick a cache size from the MRC. The MRC must cover [1, max_size].
  KneeResult select(const Mrc& mrc) const;

  const KneeConfig& config() const noexcept { return config_; }

 private:
  KneeConfig config_;
};

}  // namespace nvc::core
