#include "core/thread_groups.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"

namespace nvc::core {

double mrc_distance(const Mrc& a, const Mrc& b) {
  NVC_REQUIRE(!a.empty() && !b.empty());
  NVC_REQUIRE(a.max_size() == b.max_size(),
              "MRCs must cover the same size range");
  double total = 0.0;
  for (std::size_t c = 1; c <= a.max_size(); ++c) {
    total += std::abs(a.at(c) - b.at(c));
  }
  return total / static_cast<double>(a.max_size());
}

namespace {

Mrc average_mrc(const std::vector<Mrc>& mrcs,
                const std::vector<std::size_t>& members) {
  const std::size_t n = mrcs[members.front()].max_size();
  std::vector<double> avg(n, 0.0);
  for (const std::size_t m : members) {
    for (std::size_t c = 1; c <= n; ++c) {
      avg[c - 1] += mrcs[m].at(c);
    }
  }
  for (double& v : avg) v /= static_cast<double>(members.size());
  return Mrc(std::move(avg));
}

}  // namespace

ThreadGroups group_threads(const std::vector<Mrc>& per_thread_mrcs,
                           const ThreadGroupConfig& config) {
  NVC_REQUIRE(!per_thread_mrcs.empty());
  const std::size_t threads = per_thread_mrcs.size();

  // Start with singleton groups; greedily merge the closest pair while it
  // stays under the tolerance (average linkage via group-average MRCs).
  std::vector<std::vector<std::size_t>> members(threads);
  std::vector<Mrc> centroid;
  centroid.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    members[t] = {t};
    centroid.push_back(per_thread_mrcs[t]);
  }

  for (;;) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        const double d = mrc_distance(centroid[i], centroid[j]);
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    if (members.size() <= 1 || best > config.merge_tolerance) break;
    // Merge j into i.
    members[bi].insert(members[bi].end(), members[bj].begin(),
                       members[bj].end());
    members.erase(members.begin() + static_cast<std::ptrdiff_t>(bj));
    centroid.erase(centroid.begin() + static_cast<std::ptrdiff_t>(bj));
    centroid[bi] = average_mrc(per_thread_mrcs, members[bi]);
  }

  ThreadGroups result;
  result.group_of.assign(threads, 0);
  KneeFinder finder(config.knee);
  for (std::size_t g = 0; g < members.size(); ++g) {
    for (const std::size_t t : members[g]) result.group_of[t] = g;
    result.group_mrc.push_back(centroid[g]);
    result.group_size.push_back(finder.select(centroid[g]).chosen_size);
  }
  return result;
}

ShardPlacement place_workers(std::size_t workers, const CpuTopology& topo) {
  ShardPlacement placement;
  placement.worker_cpu.reserve(workers);
  placement.worker_node.reserve(workers);
  // Node-major CPU order: all of node 0, then node 1, ... A pool smaller
  // than one node never crosses it; a pool larger than the machine wraps.
  std::vector<int> order;
  std::vector<int> order_node;
  for (int node = 0; node < topo.numa_nodes; ++node) {
    for (int cpu : topo.cpus_on_node(node)) {
      order.push_back(cpu);
      order_node.push_back(node);
    }
  }
  if (order.empty()) {  // defensive: a topology with an empty cpu map
    order.push_back(0);
    order_node.push_back(0);
  }
  for (std::size_t w = 0; w < workers; ++w) {
    placement.worker_cpu.push_back(order[w % order.size()]);
    placement.worker_node.push_back(order_node[w % order.size()]);
  }
  return placement;
}

std::vector<std::size_t> place_shards(std::size_t shards, std::size_t workers) {
  NVC_REQUIRE(workers > 0);
  std::vector<std::size_t> home(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    // Block distribution: floor(s * W / S) yields contiguous runs of equal
    // (±1) length, never exceeding workers-1.
    home[s] = shards == 0 ? 0 : s * workers / shards;
  }
  return home;
}

}  // namespace nvc::core
