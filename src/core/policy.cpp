#include "core/policy.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace nvc::core {

namespace {
// Bookkeeping instruction estimates per operation (x86-ish, calibrated so the
// relative overheads match the paper's Table IV observation that SC executes
// about 8% more instructions than AT on a write-heavy workload).
constexpr std::uint64_t kInstrEagerStore = 2;
constexpr std::uint64_t kInstrLazyStore = 12;
constexpr std::uint64_t kInstrAtlasProbe = 8;
constexpr std::uint64_t kInstrAtlasReplace = 6;
constexpr std::uint64_t kInstrPerFlushIssue = 4;
constexpr std::uint64_t kInstrSamplerStore = 9;
constexpr std::uint64_t kInstrSamplerAnalysisPerWrite = 30;
// Async mode: the analysis runs on the background worker, so the app thread
// only pays the O(1) handoff at burst end and a poll + resize when the
// selection is applied at a FASE boundary.
constexpr std::uint64_t kInstrAsyncHandoff = 40;
constexpr std::uint64_t kInstrAsyncApply = 25;
}  // namespace

const char* to_string(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEager:
      return "ER";
    case PolicyKind::kLazy:
      return "LA";
    case PolicyKind::kAtlas:
      return "AT";
    case PolicyKind::kSoftCache:
      return "SC";
    case PolicyKind::kSoftCacheOffline:
      return "SC-offline";
    case PolicyKind::kBest:
      return "BEST";
  }
  NVC_UNREACHABLE("invalid PolicyKind");
}

void Policy::on_fase_begin(FlushSink&) { ++counters_.fases; }

bool Policy::admit_bypass(LineAddr line, FlushSink& sink) {
  counters_.instructions += AdmissionFilter::kInstrProbe;
  if (!admission_->should_bypass(line)) return false;
  // Write through the same sink the deferred flushes use: with a log it is
  // the LogOrderedSink route, so a bypassed line obeys the same
  // log-before-data ordering as an evicted one (DESIGN.md §12).
  ++counters_.stores;
  ++counters_.bypassed;
  counters_.instructions += kInstrPerFlushIssue;
  sink.flush_line(line);
  return true;
}

void Policy::on_fase_end(FlushSink& sink) { sink.drain(); }

void Policy::finish(FlushSink& sink) { sink.drain(); }

// --- ER ---------------------------------------------------------------------

void EagerPolicy::on_store(LineAddr line, FlushSink& sink) {
  ++counters_.stores;
  counters_.instructions += kInstrEagerStore + kInstrPerFlushIssue;
  sink.flush_line(line);
}

// --- LA ---------------------------------------------------------------------

void LazyPolicy::on_store(LineAddr line, FlushSink& sink) {
  if (admission_ != nullptr && admit_bypass(line, sink)) return;
  ++counters_.stores;
  counters_.instructions += kInstrLazyStore;
  const auto [slot, inserted] = pending_.try_emplace(line, seq_);
  (void)slot;
  if (inserted) {
    ++seq_;
  } else {
    ++counters_.combined;
  }
}

void LazyPolicy::flush_pending(FlushSink& sink) {
  // Flush in first-write order for determinism.
  std::vector<std::pair<std::uint64_t, LineAddr>> ordered;
  ordered.reserve(pending_.size());
  pending_.for_each([&ordered](LineAddr line, const std::uint64_t& seq) {
    ordered.emplace_back(seq, line);
  });
  std::sort(ordered.begin(), ordered.end());
  for (const auto& [seq, line] : ordered) {
    (void)seq;
    counters_.instructions += kInstrPerFlushIssue;
    sink.flush_line(line);
  }
  pending_.clear();
  seq_ = 0;
}

void LazyPolicy::on_fase_end(FlushSink& sink) {
  flush_pending(sink);
  sink.drain();
}

void LazyPolicy::finish(FlushSink& sink) {
  flush_pending(sink);
  sink.drain();
}

// --- AT ---------------------------------------------------------------------

AtlasPolicy::AtlasPolicy(std::size_t table_size, std::size_t associativity)
    : table_(table_size),
      sets_(table_size / associativity),
      ways_(associativity) {
  NVC_REQUIRE(associativity >= 1 && associativity <= table_size);
  NVC_REQUIRE(table_size % associativity == 0);
  NVC_REQUIRE(is_pow2(sets_), "Atlas sets must be a power of two");
}

void AtlasPolicy::on_store(LineAddr line, FlushSink& sink) {
  if (admission_ != nullptr && admit_bypass(line, sink)) return;
  ++counters_.stores;
  counters_.instructions += kInstrAtlasProbe;
  Entry* set = &table_[(static_cast<std::size_t>(line) & (sets_ - 1)) *
                       ways_];
  ++clock_;
  Entry* victim = &set[0];
  for (std::size_t w = 0; w < ways_; ++w) {
    if (set[w].line == line) {
      ++counters_.combined;  // already recorded: the write is absorbed
      set[w].stamp = clock_;
      return;
    }
    if (set[w].line == 0) {
      victim = &set[w];  // prefer an empty slot
      break;
    }
    if (set[w].stamp < victim->stamp) victim = &set[w];
  }
  if (victim->line != 0) {
    // Conflict: write back the previously recorded line, then replace it.
    counters_.instructions += kInstrAtlasReplace + kInstrPerFlushIssue;
    sink.flush_line(victim->line);
  }
  victim->line = line;
  victim->stamp = clock_;
}

void AtlasPolicy::flush_table(FlushSink& sink) {
  for (Entry& slot : table_) {
    if (slot.line != 0) {
      counters_.instructions += kInstrPerFlushIssue;
      sink.flush_line(slot.line);
      slot = Entry{};
    }
  }
}

void AtlasPolicy::on_fase_end(FlushSink& sink) {
  flush_table(sink);
  sink.drain();
}

void AtlasPolicy::finish(FlushSink& sink) {
  flush_table(sink);
  sink.drain();
}

// --- SC / SC-offline ---------------------------------------------------------

SoftCachePolicy::SoftCachePolicy(const PolicyConfig& config, bool online)
    : cache_(config.cache_size), sampler_(config.sampler), online_(online) {}

void SoftCachePolicy::on_store(LineAddr line, FlushSink& sink) {
  // Admission runs only on cache misses: a line the cache already buffers
  // combines more cheaply than any write-through, whatever the doorkeeper
  // remembers about it.
  if (admission_ != nullptr && !cache_.contains(line) &&
      admit_bypass(line, sink)) {
    // The sampler still sees bypassed stores: the MRC (and so the size
    // selection and the reuse verdict) must describe the full write stream,
    // not the post-filter residue.
    if (online_) sample_store(line, sink);
    return;
  }
  ++counters_.stores;
  const bool hit = cache_.access(line, sink);
  if (hit) {
    ++counters_.combined;
    counters_.instructions += WriteCache::kInstrPerHit;
  } else {
    counters_.instructions += WriteCache::kInstrPerInsert;
  }

  if (online_) sample_store(line, sink);
}

void SoftCachePolicy::sample_store(LineAddr line, FlushSink& sink) {
  const bool was_sampling = sampler_.sampling();
  if (was_sampling) counters_.instructions += kInstrSamplerStore;
  if (const auto selected = sampler_.on_store(line)) {
    // Synchronous analysis (or async ring-full fallback): the full
    // pipeline ran on this thread and the selection applies immediately —
    // as does the admission verdict this burst implies.
    counters_.instructions +=
        kInstrSamplerAnalysisPerWrite * sampler_.burst_length();
    cache_.resize(*selected, sink);
    if (admission_ != nullptr) admission_->publish_verdict(sampler_);
  } else if (sampler_.async() && was_sampling && !sampler_.sampling()) {
    // The burst was handed to the background worker in O(1); the old
    // cache size stays until the selection lands at a FASE boundary.
    counters_.instructions += kInstrAsyncHandoff;
  }
}

void SoftCachePolicy::apply_pending_selection(FlushSink& sink) {
  if (!online_ || !sampler_.async()) return;
  if (const auto selected = sampler_.poll_selection()) {
    counters_.instructions += kInstrAsyncApply;
    cache_.resize(*selected, sink);
  }
  // Burst-boundary republish, same cadence as the size selection: a burst
  // polled at this boundary also refreshes the reuse verdict.
  if (admission_ != nullptr) admission_->publish_verdict(sampler_);
}

void SoftCachePolicy::on_fase_begin(FlushSink& sink) {
  Policy::on_fase_begin(sink);
  apply_pending_selection(sink);
}

void SoftCachePolicy::flush_buffered(FlushSink& sink) {
  // Mid-FASE barrier: flush the cache, nothing else. No sampler boundary
  // (the renamer epoch is a FASE property, not a flush property) and no
  // pending-selection application (a resize must never land mid-FASE —
  // every FASE runs start-to-finish under one size, DESIGN.md §6).
  const std::uint64_t flushed = cache_.size();
  counters_.instructions += kInstrPerFlushIssue * flushed;
  cache_.flush_all(sink);
  sink.drain();
}

void SoftCachePolicy::on_fase_end(FlushSink& sink) {
  if (online_) sampler_.on_fase_boundary();
  const std::uint64_t flushed = cache_.size();
  counters_.instructions += kInstrPerFlushIssue * flushed;
  cache_.flush_all(sink);
  // The cache is empty right after the FASE flush, so applying a freshly
  // landed selection here is free.
  apply_pending_selection(sink);
  sink.drain();
}

void SoftCachePolicy::finish(FlushSink& sink) {
  // Shutdown: wait for any in-flight background analysis so its selection
  // is not lost, then apply it before the final flush.
  if (online_ && sampler_.async()) {
    sampler_.drain();
    apply_pending_selection(sink);
  }
  const std::uint64_t flushed = cache_.size();
  counters_.instructions += kInstrPerFlushIssue * flushed;
  cache_.flush_all(sink);
  sink.drain();
}

// --- BEST -------------------------------------------------------------------

void BestPolicy::on_store(LineAddr, FlushSink&) { ++counters_.stores; }

// --- factory ------------------------------------------------------------------

namespace {

std::unique_ptr<Policy> make_policy_bare(PolicyKind kind,
                                         const PolicyConfig& config) {
  switch (kind) {
    case PolicyKind::kEager:
      return std::make_unique<EagerPolicy>();
    case PolicyKind::kLazy:
      return std::make_unique<LazyPolicy>();
    case PolicyKind::kAtlas:
      return std::make_unique<AtlasPolicy>(config.atlas_table_size,
                                           config.atlas_associativity);
    case PolicyKind::kSoftCache:
      return std::make_unique<SoftCachePolicy>(config, /*online=*/true);
    case PolicyKind::kSoftCacheOffline:
      return std::make_unique<SoftCachePolicy>(config, /*online=*/false);
    case PolicyKind::kBest:
      return std::make_unique<BestPolicy>();
  }
  NVC_UNREACHABLE("invalid PolicyKind");
}

/// ER already writes every store through and BEST never flushes — a filter
/// would only distort their counters. The reuse predictor needs the online
/// sampler's MRC, so kReuse attaches to SC only and degrades to `always`
/// everywhere else (DESIGN.md §12).
bool admission_applies(PolicyKind kind, AdmitMode mode) {
  switch (mode) {
    case AdmitMode::kAlways:
      return false;
    case AdmitMode::kWriteOnce:
      return kind == PolicyKind::kLazy || kind == PolicyKind::kAtlas ||
             kind == PolicyKind::kSoftCache ||
             kind == PolicyKind::kSoftCacheOffline;
    case AdmitMode::kReuse:
      return kind == PolicyKind::kSoftCache;
  }
  NVC_UNREACHABLE("invalid AdmitMode");
}

}  // namespace

std::unique_ptr<Policy> make_policy(PolicyKind kind,
                                    const PolicyConfig& config) {
  std::unique_ptr<Policy> policy = make_policy_bare(kind, config);
  if (admission_applies(kind, config.admission.mode)) {
    policy->attach_admission(config.admission);
  }
  return policy;
}

}  // namespace nvc::core
