#include "core/sampler.hpp"

#include "common/assert.hpp"

namespace nvc::core {

BurstSampler::BurstSampler(SamplerConfig config)
    : config_(config), fases_to_skip_(config.skip_fases) {
  NVC_REQUIRE(config_.burst_length >= 2, "a burst must contain reuses");
  burst_trace_.reserve(static_cast<std::size_t>(config_.burst_length));
}

void BurstSampler::on_fase_boundary() {
  if (fases_to_skip_ > 0) {
    --fases_to_skip_;
    return;
  }
  if (sampling_) renamer_.fase_boundary();
}

std::optional<std::size_t> BurstSampler::on_store(LineAddr line) {
  ++writes_seen_;
  if (fases_to_skip_ > 0) {
    // Warmup: don't record, but give up skipping if no FASE boundary shows
    // up within a few bursts worth of writes (single-FASE programs).
    if (++warmup_writes_ >= 4 * config_.burst_length) fases_to_skip_ = 0;
    return std::nullopt;
  }
  if (!sampling_) {
    if (config_.hibernation_length == 0) return std::nullopt;  // forever
    if (++hibernated_ >= config_.hibernation_length) {
      sampling_ = true;
      hibernated_ = 0;
      renamer_.reset();
      burst_trace_.clear();
    } else {
      return std::nullopt;
    }
  }
  burst_trace_.push_back(renamer_.rename(line));
  if (burst_trace_.size() >= config_.burst_length) return finish_burst();
  return std::nullopt;
}

std::optional<std::size_t> BurstSampler::finish_burst() {
  const auto n = static_cast<LogicalTime>(burst_trace_.size());
  const auto intervals = intervals_of_trace(burst_trace_);
  const ReuseCurve reuse = compute_reuse_all_k(intervals, n);
  last_mrc_ = mrc_from_reuse(reuse, config_.knee.max_size);
  last_selection_ = KneeFinder(config_.knee).select(last_mrc_);
  ++bursts_;
  sampling_ = false;
  burst_trace_.clear();
  burst_trace_.shrink_to_fit();
  return last_selection_.chosen_size;
}

KneeResult BurstSampler::analyze_offline(
    const std::vector<LineAddr>& trace,
    const std::vector<std::size_t>& boundaries, const KneeConfig& knee,
    Mrc* mrc_out) {
  NVC_REQUIRE(!trace.empty());
  const std::vector<LineAddr> renamed = rename_trace(trace, boundaries);
  const auto intervals = intervals_of_trace(renamed);
  const ReuseCurve reuse =
      compute_reuse_all_k(intervals, static_cast<LogicalTime>(renamed.size()));
  Mrc mrc = mrc_from_reuse(reuse, knee.max_size);
  const KneeResult result = KneeFinder(knee).select(mrc);
  if (mrc_out != nullptr) *mrc_out = std::move(mrc);
  return result;
}

}  // namespace nvc::core
