#include "core/sampler.hpp"

#include "common/assert.hpp"

namespace nvc::core {

BurstSampler::BurstSampler(SamplerConfig config)
    : config_(config), fases_to_skip_(config.skip_fases) {
  NVC_REQUIRE(config_.burst_length >= 2, "a burst must contain reuses");
  if (config_.manual_analysis) config_.async_analysis = true;
  burst_trace_.reserve(static_cast<std::size_t>(config_.burst_length));
  if (config_.async_analysis) {
    channel_ = config_.manual_analysis
                   ? AnalysisWorker::shared().open_manual_channel()
                   : AnalysisWorker::shared().open_channel();
  }
}

BurstSampler::~BurstSampler() {
  if (channel_) channel_->close();
}

void BurstSampler::on_fase_boundary() {
  if (fases_to_skip_ > 0) {
    --fases_to_skip_;
    return;
  }
  if (sampling_) renamer_.fase_boundary();
}

std::optional<std::size_t> BurstSampler::on_store(LineAddr line) {
  ++writes_seen_;
  if (fases_to_skip_ > 0) {
    // Warmup: don't record, but give up skipping if no FASE boundary shows
    // up within a few bursts worth of writes (single-FASE programs).
    if (++warmup_writes_ >= 4 * config_.burst_length) fases_to_skip_ = 0;
    return std::nullopt;
  }
  if (!sampling_) {
    if (config_.hibernation_length == 0) return std::nullopt;  // forever
    if (++hibernated_ >= config_.hibernation_length) {
      // Don't start a new burst while the previous one is still being
      // analyzed in the background; keep hibernating until it lands.
      if (channel_ && !channel_->idle()) return std::nullopt;
      sampling_ = true;
      hibernated_ = 0;
      renamer_.reset();
      burst_trace_.clear();
      // The buffer was released at burst end (shrink_to_fit / move into the
      // analysis channel); re-reserve so the burst doesn't re-grow from
      // capacity 0 through repeated reallocation.
      burst_trace_.reserve(static_cast<std::size_t>(config_.burst_length));
    } else {
      return std::nullopt;
    }
  }
  burst_trace_.push_back(renamer_.rename(line));
  if (burst_trace_.size() >= config_.burst_length) return finish_burst();
  return std::nullopt;
}

void BurstSampler::apply_analysis(BurstAnalysis&& analysis) {
  last_mrc_ = std::move(analysis.mrc);
  last_selection_ = analysis.selection;
}

std::optional<std::size_t> BurstSampler::finish_burst() {
  sampling_ = false;
  if (channel_ && channel_->submit(std::move(burst_trace_), config_.knee)) {
    // O(1) handoff: the analysis runs on the worker; the current cache size
    // stays in effect until the selection is polled at a FASE boundary.
    // (burst_trace_ is moved-from; on_store re-reserves when re-sampling.)
    burst_trace_ = {};
    return std::nullopt;
  }
  // Synchronous mode — or the async ring was full (only possible with very
  // short hibernation), in which case the burst is analyzed in place rather
  // than dropped.
  BurstAnalysis analysis = analyze_burst(burst_trace_, config_.knee);
  apply_analysis(std::move(analysis));
  ++bursts_;
  burst_trace_.clear();
  burst_trace_.shrink_to_fit();
  return last_selection_.chosen_size;
}

std::optional<std::size_t> BurstSampler::poll_selection() {
  if (!channel_) return std::nullopt;
  const std::uint64_t done = channel_->completed();
  if (done == results_consumed_) return std::nullopt;
  if (auto result = channel_->take_result()) {
    apply_analysis(std::move(*result));
  }
  // Count every completed analysis even if a newer result overwrote an
  // unpolled older one (bursts_ tracks analyses, not polls).
  bursts_ += done - results_consumed_;
  results_consumed_ = done;
  return last_selection_.chosen_size;
}

void BurstSampler::drain() {
  if (channel_) channel_->drain();
}

bool BurstSampler::pump_analysis(std::size_t worker) {
  return channel_ && channel_->manual() && channel_->pump_one(worker);
}

bool BurstSampler::analysis_in_flight() const {
  return channel_ && !channel_->idle();
}

KneeResult BurstSampler::analyze_offline(
    const std::vector<LineAddr>& trace,
    const std::vector<std::size_t>& boundaries, const KneeConfig& knee,
    Mrc* mrc_out) {
  NVC_REQUIRE(!trace.empty());
  const std::vector<LineAddr> renamed = rename_trace(trace, boundaries);
  BurstAnalysis analysis = analyze_burst(renamed, knee);
  if (mrc_out != nullptr) *mrc_out = std::move(analysis.mrc);
  return analysis.selection;
}

}  // namespace nvc::core
