// FASE-aware trace transformation (paper Section III-B, "Adaptation to FASE
// Semantics").
//
// FASE semantics invalidate every data reuse that crosses a FASE boundary:
// the software cache is flushed and cleared at each FASE end, so a write in
// the next FASE can never be combined with one from the previous FASE. A
// locality analysis on the raw address trace would credit those impossible
// reuses. The fix is to rename addresses so that the same cache line gets a
// completely fresh identity in every FASE (the paper's "ab|ab|ab" ->
// "ab|cd|ef" example).
//
// The renamer is streaming and O(1) per write: each line remembers the FASE
// epoch in which its current identity was assigned; a write from a newer
// epoch allocates a fresh identity instead of clearing tables at FASE ends.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_hash.hpp"
#include "common/types.hpp"

namespace nvc::core {

class FaseRenamer {
 public:
  /// Note a FASE boundary: subsequent writes get fresh identities.
  void fase_boundary() noexcept { ++epoch_; }

  /// Map a write to its FASE-scoped identity.
  LineAddr rename(LineAddr line) {
    auto [entry, inserted] = table_.try_emplace(line, Entry{epoch_, next_id_});
    if (inserted || entry->epoch != epoch_) {
      if (!inserted) *entry = Entry{epoch_, next_id_};
      return next_id_++;
    }
    return entry->id;
  }

  /// Reset all state (new sampling burst).
  void reset() {
    table_.clear();
    epoch_ = 0;
    next_id_ = 0;
  }

  std::uint64_t epoch() const noexcept { return epoch_; }

 private:
  struct Entry {
    std::uint64_t epoch = 0;
    LineAddr id = 0;
  };
  FlatHashMap<LineAddr, Entry> table_;
  std::uint64_t epoch_ = 0;
  LineAddr next_id_ = 0;
};

/// Batch helper: rename a full trace given FASE boundary positions
/// (boundaries[i] = index in `trace` *before* which a FASE ends).
std::vector<LineAddr> rename_trace(const std::vector<LineAddr>& trace,
                                   const std::vector<std::size_t>& boundaries);

}  // namespace nvc::core
