// FliT-style flush elision: per-line flush-pending counters (DESIGN.md §13).
//
// FliT (PAPERS.md) observes that persistent lock-free structures flush the
// same cache line many times: the thread that wrote a location flushes it,
// and every concurrent helper that *depends* on that write flushes it again
// before proceeding, because it cannot know whether the writer's flush has
// happened yet. A per-location counter removes the redundancy: the writer
// tags the line for the duration of its write-back and untags it after, so
// a helper that reads the counter at zero knows the line is already durable
// and skips ("elides") its flush. On Optane-class media, where duplicate
// writes dominate cost ("Writes Hurt", PAPERS.md), this is the main lever.
//
// The table exposes two protocols over the same slot array:
//
//   FliT face — tag(line) / untag(line) around a writer's flush, and
//   pending(line) for helpers. Elision direction: a helper skips only when
//   the counter is ZERO (no write-back in flight => the line is durable).
//   A nonzero counter means some writer is mid-protocol, so the helper
//   flushes conservatively. Collisions and overflow fall back to a shared
//   counter that keeps pending() conservative: hash-colliding lines can
//   only cause spurious flushes, never a wrong elision.
//
//   Dedup face — announce(line) / retire(line) for write-back *scheduling*
//   paths (the runtime's eviction route). announce() answers "is a
//   write-back of this line already scheduled and not yet started?": the
//   first announcer becomes the owner and must schedule the flush; later
//   announcers are elided — the owner's still-unstarted write-back will
//   read the line through cache coherence and carry their bytes. The
//   executor calls retire(line) immediately BEFORE performing the media
//   write. That order is what makes elision sound: the slot's RMWs are
//   totally ordered, so an elider whose increment preceded the retire has
//   its payload store ordered before the executor's read of the line
//   (acq_rel on the slot), while an elider that loses the race finds the
//   slot empty and becomes the next owner itself. Collisions return
//   kUntracked: the caller schedules its own flush and never retires.
//
// The two faces share slot encoding but are never mixed on one table
// instance (a retire() clears the whole count, which would strand FliT
// taggers). Each deployment — a runtime's sink stack, a structure suite's
// persistence space — owns its own table.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/types.hpp"

namespace nvc::core {

class FlushElisionTable {
 public:
  static constexpr std::size_t kDefaultSlots = 4096;  // power of two

  /// Where a tag() landed; untag() must hand it back.
  enum class Tag : std::uint8_t {
    kSlot,    // counted in the line's own slot
    kShared,  // collision/overflow: counted in the shared fallback
  };

  /// announce() verdicts for the scheduling-dedup face.
  enum class Announce : std::uint8_t {
    kOwner,      // first announcer: schedule the write-back, retire() later
    kElided,     // an unstarted write-back is already scheduled: skip
    kUntracked,  // slot unavailable (collision/overflow): flush, no retire
  };

  struct Stats {
    std::uint64_t tags = 0;        // FliT-face writer tags
    std::uint64_t announces = 0;   // dedup-face scheduling probes
    std::uint64_t owners = 0;      // announces that must schedule
    std::uint64_t elisions = 0;    // dedup-face skipped write-backs
    std::uint64_t retires = 0;     // write-backs that cleared a pending slot
    std::uint64_t collisions = 0;  // slot held a different line
  };

  explicit FlushElisionTable(std::size_t slots = kDefaultSlots);

  // --- FliT face (writer tagging + helper elision) --------------------------

  /// A writer is about to flush `line`: raise its pending count. The
  /// returned token says where the count landed and must be passed back to
  /// untag() after the flush completed.
  Tag tag(LineAddr line);

  /// The writer's flush completed: drop the count raised by tag().
  void untag(LineAddr line, Tag where);

  /// Helper probe: true while any write-back of `line` may be in flight.
  /// False means every tagged flush of the line completed — a helper that
  /// needs the line durable may elide its own flush. Conservative under
  /// collisions/overflow (shared fallback nonzero => true for all lines).
  bool pending(LineAddr line) const;

  // --- Dedup face (write-back scheduling) -----------------------------------

  /// Probe-and-mark for a path about to schedule a write-back of `line`.
  Announce announce(LineAddr line);

  /// Called by the write-back executor immediately BEFORE the media write
  /// (decrement-before-write is the soundness hinge — see file comment).
  /// Returns the number of announces the write satisfies (0 when the slot
  /// held no pending count for `line`, e.g. after an untracked announce).
  std::uint32_t retire(LineAddr line);

  // --- Introspection --------------------------------------------------------

  Stats stats() const;
  std::size_t slot_count() const noexcept { return mask_ + 1; }

  /// Lines with a nonzero pending count right now (slot scan + shared
  /// fallback). Quiescence invariant for the harnesses: once every ring is
  /// drained and every sink's drain() ran, this must be zero — a stuck
  /// entry means some announced write-back never retired (exactly what the
  /// seeded revert-retire bug produces).
  std::size_t pending_count() const;

  /// Seeded-bug hook for the checker-validation tests (never set in
  /// production wiring): retire() reports the satisfied count but leaves
  /// the pending count in place — the "reverted decrement". Every later
  /// announce of the line is then elided although no write-back remains
  /// scheduled, so the line's newest bytes never reach the media and the
  /// durable-linearizability oracle must flag the recovered state.
  void set_bug_revert_retire(bool on) noexcept { bug_revert_retire_ = on; }
  bool bug_revert_retire() const noexcept { return bug_revert_retire_; }

 private:
  // Slot word: line in the high 48 bits, pending count in the low 16.
  // Lines at or above 2^48 (byte addresses >= 2^54) use the shared
  // fallback; count saturation does too.
  static constexpr std::uint64_t kCountBits = 16;
  static constexpr std::uint64_t kCountMask = (1ULL << kCountBits) - 1;
  static constexpr std::uint64_t kMaxLine = 1ULL << 48;

  static std::uint64_t pack(LineAddr line, std::uint64_t count) noexcept {
    return (line << kCountBits) | count;
  }
  static LineAddr slot_line(std::uint64_t word) noexcept {
    return word >> kCountBits;
  }
  static std::uint64_t slot_count_of(std::uint64_t word) noexcept {
    return word & kCountMask;
  }

  std::atomic<std::uint64_t>& slot_for(LineAddr line) noexcept {
    return slots_[splitmix64_hash(line) & mask_];
  }
  const std::atomic<std::uint64_t>& slot_for(LineAddr line) const noexcept {
    return slots_[splitmix64_hash(line) & mask_];
  }
  static std::uint64_t splitmix64_hash(LineAddr line) noexcept;

  std::size_t mask_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> slots_;
  /// Shared conservative fallback: collisions and overflow count here, so
  /// pending() stays true for every line while any fallback tag is live.
  std::atomic<std::uint64_t> shared_{0};
  bool bug_revert_retire_ = false;

  mutable std::atomic<std::uint64_t> tags_{0};
  mutable std::atomic<std::uint64_t> announces_{0};
  mutable std::atomic<std::uint64_t> owners_{0};
  mutable std::atomic<std::uint64_t> elisions_{0};
  mutable std::atomic<std::uint64_t> retires_{0};
  mutable std::atomic<std::uint64_t> collisions_{0};
};

}  // namespace nvc::core
