#include "core/shards.hpp"

#include <vector>

#include "common/assert.hpp"
#include "common/flat_hash.hpp"
#include "common/rng.hpp"

namespace nvc::core {

namespace {

/// Fenwick tree over sampled logical time (same structure as the exact
/// Mattson pass, but only sampled accesses enter it).
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}
  void add(std::size_t i, int delta) {
    for (; i < tree_.size(); i += i & (~i + 1)) tree_[i] += delta;
  }
  std::int64_t prefix(std::size_t i) const {
    std::int64_t s = 0;
    for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<std::int64_t> tree_;
};

std::uint64_t spatial_hash(LineAddr line) {
  std::uint64_t s = line;
  return splitmix64(s);
}

}  // namespace

bool shards_samples(LineAddr line, const ShardsConfig& config) {
  return spatial_hash(line) % config.modulus < config.threshold;
}

Mrc mrc_shards(std::span<const LineAddr> trace, std::size_t max_size,
               const ShardsConfig& config) {
  NVC_REQUIRE(max_size >= 1);
  NVC_REQUIRE(config.threshold >= 1 && config.threshold <= config.modulus);
  const double scale = 1.0 / config.rate();

  // Pass 1: count sampled accesses (to size the Fenwick tree tightly).
  std::size_t sampled = 0;
  for (const LineAddr a : trace) {
    if (shards_samples(a, config)) ++sampled;
  }
  std::vector<double> mr(max_size, 1.0);
  if (sampled == 0) return Mrc(std::move(mr));

  // Pass 2: Mattson over the sampled sub-trace with scaled distances.
  std::vector<std::uint64_t> distance_hist(max_size + 1, 0);
  std::uint64_t beyond = 0;
  std::uint64_t cold = 0;
  Fenwick marks(sampled);
  FlatHashMap<LineAddr, std::size_t> last;

  std::size_t t = 0;  // sampled logical time
  for (const LineAddr a : trace) {
    if (!shards_samples(a, config)) continue;
    ++t;
    auto [entry, inserted] = last.try_emplace(a, t);
    if (inserted) {
      ++cold;
    } else {
      const std::size_t prev = *entry;
      const auto between = static_cast<std::uint64_t>(
          marks.prefix(t - 1) - marks.prefix(prev));
      // Scale the sampled distance back to full-trace terms. Each of the
      // `between` other sampled lines stands for 1/R distinct lines; the
      // reused line itself contributes exactly 1 (E[B] = (D-1)R, so the
      // unbiased estimate is D = B/R + 1, not (B+1)/R).
      const auto dist = static_cast<std::uint64_t>(
          static_cast<double>(between) * scale) + 1;
      if (dist <= max_size) {
        ++distance_hist[static_cast<std::size_t>(dist)];
      } else {
        ++beyond;
      }
      marks.add(prev, -1);
      *entry = t;
    }
    marks.add(t, +1);
  }

  std::uint64_t hits_within = 0;
  for (std::size_t c = 1; c <= max_size; ++c) {
    hits_within += distance_hist[c];
    const std::uint64_t misses =
        static_cast<std::uint64_t>(sampled) - hits_within;
    mr[c - 1] = static_cast<double>(misses) / static_cast<double>(sampled);
  }
  (void)beyond;
  return Mrc(std::move(mr));
}

}  // namespace nvc::core
