#include "core/shards.hpp"

#include <bit>
#include <vector>

#include "common/assert.hpp"
#include "common/flat_hash.hpp"
#include "common/rng.hpp"
#include "common/simd.hpp"

namespace nvc::core {

namespace {

/// Fenwick tree over sampled logical time (same structure as the exact
/// Mattson pass, but only sampled accesses enter it).
class Fenwick {
 public:
  explicit Fenwick(std::size_t n) : tree_(n + 1, 0) {}
  void add(std::size_t i, int delta) {
    for (; i < tree_.size(); i += i & (~i + 1)) tree_[i] += delta;
  }
  std::int64_t prefix(std::size_t i) const {
    std::int64_t s = 0;
    for (; i > 0; i -= i & (~i + 1)) s += tree_[i];
    return s;
  }

 private:
  std::vector<std::int64_t> tree_;
};

/// Pass 1 of mrc_shards, hoisted: decide shards_samples() for every access
/// once, into a flag per access, so pass 2 reads a flag instead of
/// re-hashing. The default config (threshold=1, modulus=16) hits the
/// power-of-two fast path, where hash % modulus is a mask and the whole
/// decision vectorizes: four splitmix64 lanes per step (see simd.hpp),
/// mask, unsigned-compare, movemask. Returns the sampled count.
std::size_t compute_sampled_flags(std::span<const LineAddr> trace,
                                  const ShardsConfig& config,
                                  std::vector<std::uint8_t>* flags) {
  flags->assign(trace.size(), 0);
  std::size_t sampled = 0;
  std::size_t i = 0;
#if NVC_SIMD_AVX2
  // The masked remainder and the threshold are < modulus <= 2^62, so the
  // signed 64-bit compare AVX2 offers is exact for them.
  if (std::has_single_bit(config.modulus) && config.modulus <= (1ULL << 62)) {
    const __m256i mask =
        _mm256_set1_epi64x(static_cast<long long>(config.modulus - 1));
    const __m256i thr =
        _mm256_set1_epi64x(static_cast<long long>(config.threshold));
    for (; i + 4 <= trace.size(); i += 4) {
      const __m256i lines = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(&trace[i]));
      const __m256i rem =
          _mm256_and_si256(nvc::simd::splitmix64x4(lines), mask);
      const int bits = _mm256_movemask_pd(
          _mm256_castsi256_pd(_mm256_cmpgt_epi64(thr, rem)));
      (*flags)[i + 0] = static_cast<std::uint8_t>(bits & 1);
      (*flags)[i + 1] = static_cast<std::uint8_t>((bits >> 1) & 1);
      (*flags)[i + 2] = static_cast<std::uint8_t>((bits >> 2) & 1);
      (*flags)[i + 3] = static_cast<std::uint8_t>((bits >> 3) & 1);
      sampled += static_cast<std::size_t>(std::popcount(
          static_cast<unsigned>(bits)));
    }
  }
#endif
  for (; i < trace.size(); ++i) {
    const bool s = shards_samples(trace[i], config);
    (*flags)[i] = static_cast<std::uint8_t>(s);
    sampled += static_cast<std::size_t>(s);
  }
  return sampled;
}

}  // namespace

bool shards_samples(LineAddr line, const ShardsConfig& config) {
  return splitmix64_mix(line) % config.modulus < config.threshold;
}

Mrc mrc_shards(std::span<const LineAddr> trace, std::size_t max_size,
               const ShardsConfig& config) {
  NVC_REQUIRE(max_size >= 1);
  NVC_REQUIRE(config.threshold >= 1 && config.threshold <= config.modulus);
  const double scale = 1.0 / config.rate();

  // Pass 1: hash every access once into a sampled bitmap (also sizes the
  // Fenwick tree tightly).
  std::vector<std::uint8_t> sampled_flags;
  const std::size_t sampled =
      compute_sampled_flags(trace, config, &sampled_flags);
  std::vector<double> mr(max_size, 1.0);
  if (sampled == 0) return Mrc(std::move(mr));

  // Pass 2: Mattson over the sampled sub-trace with scaled distances,
  // reusing pass 1's decisions instead of re-hashing.
  std::vector<std::uint64_t> distance_hist(max_size + 1, 0);
  std::uint64_t beyond = 0;
  std::uint64_t cold = 0;
  Fenwick marks(sampled);
  FlatHashMap<LineAddr, std::size_t> last;

  std::size_t t = 0;  // sampled logical time
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const LineAddr a = trace[i];
    if (sampled_flags[i] == 0) continue;
    ++t;
    auto [entry, inserted] = last.try_emplace(a, t);
    if (inserted) {
      ++cold;
    } else {
      const std::size_t prev = *entry;
      const auto between = static_cast<std::uint64_t>(
          marks.prefix(t - 1) - marks.prefix(prev));
      // Scale the sampled distance back to full-trace terms. Each of the
      // `between` other sampled lines stands for 1/R distinct lines; the
      // reused line itself contributes exactly 1 (E[B] = (D-1)R, so the
      // unbiased estimate is D = B/R + 1, not (B+1)/R).
      const auto dist = static_cast<std::uint64_t>(
          static_cast<double>(between) * scale) + 1;
      if (dist <= max_size) {
        ++distance_hist[static_cast<std::size_t>(dist)];
      } else {
        ++beyond;
      }
      marks.add(prev, -1);
      *entry = t;
    }
    marks.add(t, +1);
  }

  std::uint64_t hits_within = 0;
  for (std::size_t c = 1; c <= max_size; ++c) {
    hits_within += distance_hist[c];
    const std::uint64_t misses =
        static_cast<std::uint64_t>(sampled) - hits_within;
    mr[c - 1] = static_cast<double>(misses) / static_cast<double>(sampled);
  }
  (void)beyond;
  return Mrc(std::move(mr));
}

}  // namespace nvc::core
