#include "core/flush_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/assert.hpp"
#include "common/cpu.hpp"
#include "common/env.hpp"
#include "core/thread_groups.hpp"

namespace nvc::core {

namespace {

inline void cpu_pause() noexcept {
#if defined(__x86_64__)
  __builtin_ia32_pause();
#endif
}

/// Worker doze tick. Long enough that an idle worker costs nothing
/// measurable (5k wakes/s upper bound), short enough that a ring filled
/// between FASE commits is swept before it backs up.
constexpr auto kDozeTick = std::chrono::microseconds(200);

/// After a sweep found work, keep polling this long before dozing again —
/// an eviction storm delivers lines faster than cv wakeups can. Only used
/// when a spare hardware thread exists; on a single-core host spinning
/// would steal the producer's timeslice.
constexpr auto kSpinWindow = std::chrono::microseconds(50);

std::uint64_t steady_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Pool size from the environment: default 1 (the original single-worker
/// pipeline, bit-for-bit), 0 = auto (one worker per NUMA node — "Writes
/// Hurt" rewards few batched issue streams per device, and one stream per
/// node keeps write-backs node-local), clamped to [1, kMaxPool].
std::size_t pool_size_from_env(const char* name) {
  const std::int64_t requested = env_int(name, 1);
  if (requested <= 0) {
    return static_cast<std::size_t>(std::max(1, cpu_topology().numa_nodes));
  }
  return static_cast<std::size_t>(std::min<std::int64_t>(
      requested, static_cast<std::int64_t>(FlushWorker::kMaxPool)));
}

}  // namespace

// --- FlushChannel -----------------------------------------------------------

FlushChannel::FlushChannel(FlushWorker* worker, std::unique_ptr<FlushSink> sink,
                           std::size_t capacity, bool manual)
    : worker_(worker),
      sink_(std::move(sink)),
      queue_(capacity),
      manual_(manual),
      drain_timeout_ns_(static_cast<std::uint64_t>(std::max<std::int64_t>(
                            0, env_int("NVC_FLUSH_DRAIN_TIMEOUT_MS", 0))) *
                        1000000ULL) {}

bool FlushChannel::try_push(LineAddr line) {
  if (!queue_.try_push(std::move(line))) return false;
  pushed_.store(pushed_.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
  return true;
}

bool FlushChannel::consume_one(std::uint32_t consumer) {
  if (consume_lock_.test_and_set(std::memory_order_acquire)) {
    return false;  // the other side holds the lock and is making progress
  }
  const std::optional<LineAddr> line = queue_.try_pop();
  if (line.has_value()) {
    // flushed_ counts lines *retired from the ring*, success or not: the
    // drain ticket must complete even when the media rejects a line. A
    // false outcome has already been accounted by the fault-tolerant sink
    // below (quarantine + FaultStats), whose release stores this counter's
    // release publish sequences after — a drain()er that sees the count
    // also sees the quarantine.
    sink_->flush_line(*line);
    last_flush_thread_ = std::this_thread::get_id();
    last_flush_worker_ = consumer;
    flushed_.fetch_add(1, std::memory_order_release);
  }
  consume_lock_.clear(std::memory_order_release);
  return line.has_value();
}

void FlushChannel::request_wake() {
  if (manual_) return;  // no worker serves this channel
  if (!wake_requested_.exchange(true, std::memory_order_relaxed)) {
    worker_->poke_home(home_);
  }
}

void FlushChannel::wait_drained() {
  const std::uint64_t target = pushed_.load(std::memory_order_relaxed);
  // Watchdog arm: "progress" is the retired-line counter moving. The only
  // way this loop fails to make progress itself is the consumer lock being
  // held continuously by a wedged worker (e.g. a backend stuck in a
  // latency spike or a debugger) — detect that, diagnose once per timeout
  // period, and keep helping so a recovered worker still completes us.
  std::uint64_t last_flushed = flushed_.load(std::memory_order_acquire);
  std::uint64_t stall_since_ns = 0;
  while (last_flushed < target) {
    // Help: pop and flush on this thread rather than waiting for the worker
    // to be scheduled. The whole backlog drains under one lock hold — one
    // acquire/release and one counter publish per drain, not per line.
    if (!consume_lock_.test_and_set(std::memory_order_acquire)) {
      std::uint64_t done = 0;
      while (std::optional<LineAddr> line = queue_.try_pop()) {
        sink_->flush_line(*line);
        ++done;
      }
      if (done != 0) {
        last_flush_thread_ = std::this_thread::get_id();
        last_flush_worker_ = kHelperConsumer;
        flushed_.fetch_add(done, std::memory_order_release);
      }
      consume_lock_.clear(std::memory_order_release);
      if (done == 0) {
        // Our ring is empty but the ticket is short: a consumer is mid-
        // flush on our last line. In a pool, spend the wait stealing a
        // sibling channel's backlog instead of just yielding (manual
        // channels never steal — a fuzzer schedule must not leak work
        // across channels it did not script).
        if (manual_ || worker_ == nullptr || worker_->pool_size() <= 1 ||
            !worker_->steal_one(this)) {
          std::this_thread::yield();
        }
      }
    } else {
      // A worker holds the consumer side and is mid-flush on our behalf;
      // yield so a descheduled worker (single-core host) gets the timeslice
      // it needs to finish.
      std::this_thread::yield();
    }
    const std::uint64_t now_flushed = flushed_.load(std::memory_order_acquire);
    if (now_flushed != last_flushed) {
      last_flushed = now_flushed;
      stall_since_ns = 0;
      continue;
    }
    if (drain_timeout_ns_ == 0) continue;
    const std::uint64_t now = steady_now_ns();
    if (stall_since_ns == 0) {
      stall_since_ns = now;
    } else if (now - stall_since_ns >= drain_timeout_ns_) {
      stall_warnings_.fetch_add(1, std::memory_order_relaxed);
      std::fprintf(
          stderr,
          "[nvc] flush drain watchdog: no write-back progress for %llu ms "
          "(queue depth=%zu pushed=%llu flushed=%llu); continuing as "
          "helping consumer\n",
          static_cast<unsigned long long>(drain_timeout_ns_ / 1000000ULL),
          queue_.size(), static_cast<unsigned long long>(target),
          static_cast<unsigned long long>(now_flushed));
      stall_since_ns = now;  // re-arm: one diagnostic per timeout period
    }
  }
}

// --- FlushWorker ------------------------------------------------------------

FlushWorker::FlushWorker() : FlushWorker(pool_size_from_env("NVC_FLUSH_WORKERS")) {}

FlushWorker::FlushWorker(std::size_t pool_size)
    : pin_(env_int("NVC_PIN", 0) != 0) {
  NVC_REQUIRE(pool_size >= 1 && pool_size <= kMaxPool);
  worker_cpu_ = place_workers(pool_size, cpu_topology()).worker_cpu;
  workers_.reserve(pool_size);
  for (std::size_t w = 0; w < pool_size; ++w) {
    workers_.push_back(std::make_unique<Worker>());
  }
  start();  // threads only start once workers_ is fully built
}

void FlushWorker::start() {
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    workers_[w]->thread =
        std::jthread([this, w](std::stop_token st) { run(st, w); });
  }
}

FlushWorker::~FlushWorker() {
  // Request every stop before the first join so pool shutdown overlaps
  // instead of paying one doze tick per worker serially.
  for (auto& w : workers_) w->thread.request_stop();
}  // workers_ (last member) joins; the rest is destroyed after

FlushWorker& FlushWorker::shared() {
  static FlushWorker worker;
  return worker;
}

std::shared_ptr<FlushChannel> FlushWorker::open_channel(
    std::unique_ptr<FlushSink> sink, std::size_t capacity) {
  NVC_REQUIRE(sink != nullptr);
  NVC_REQUIRE(is_pow2(capacity), "flush queue depth must be a power of two");
  std::shared_ptr<FlushChannel> channel(
      new FlushChannel(this, std::move(sink), capacity, /*manual=*/false));
  std::lock_guard<std::mutex> lock(mutex_);
  // Round-robin homes: channels arrive dynamically (one per runtime
  // thread), so the static block distribution of place_shards does not
  // apply; round-robin gives the same ±1 balance without knowing the final
  // producer count.
  channel->home_ = static_cast<std::uint32_t>(next_home_);
  next_home_ = (next_home_ + 1) % workers_.size();
  channels_.push_back(channel);
  return channel;
}

std::shared_ptr<FlushChannel> FlushWorker::open_manual_channel(
    std::unique_ptr<FlushSink> sink, std::size_t capacity) {
  NVC_REQUIRE(sink != nullptr);
  NVC_REQUIRE(is_pow2(capacity), "flush queue depth must be a power of two");
  // Deliberately NOT registered in channels_: no pool thread ever sees it,
  // so the only consumers are pump_one() calls and helping drains — both on
  // the owner's thread, both deterministic regardless of pool size.
  return std::shared_ptr<FlushChannel>(
      new FlushChannel(this, std::move(sink), capacity, /*manual=*/true));
}

void FlushWorker::poke() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto& w : workers_) w->poked = true;
  }
  for (auto& w : workers_) w->cv.notify_one();
}

void FlushWorker::poke_home(std::size_t w) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    workers_[w]->poked = true;
  }
  workers_[w]->cv.notify_one();
}

void FlushWorker::register_idle_task(std::weak_ptr<IdleTask> task) {
  std::lock_guard<std::mutex> lock(mutex_);
  idle_tasks_.push_back(std::move(task));
}

bool FlushWorker::run_idle_task() {
  std::shared_ptr<IdleTask> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    while (!idle_tasks_.empty() && task == nullptr) {
      idle_cursor_ %= idle_tasks_.size();
      task = idle_tasks_[idle_cursor_].lock();
      if (task != nullptr) {
        ++idle_cursor_;
      } else {
        // Owner died; expiry IS the deregistration protocol.
        idle_tasks_.erase(idle_tasks_.begin() +
                          static_cast<std::ptrdiff_t>(idle_cursor_));
      }
    }
  }
  if (task == nullptr) return false;
  // Off-mutex: the step may do real work (scrubbing a batch of lines) and
  // must not block channel registration or sibling workers.
  const bool worked = task->idle_step();
  if (worked) idle_steps_.fetch_add(1, std::memory_order_relaxed);
  return worked;
}

bool FlushWorker::steal_one(const FlushChannel* self) {
  std::vector<std::shared_ptr<FlushChannel>> channels;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    channels = channels_;
  }
  for (const auto& ch : channels) {
    if (ch.get() == self || ch->queue_.empty()) continue;
    if (ch->consume_one(FlushChannel::kHelperConsumer)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

std::size_t FlushWorker::sweep(
    std::size_t w, const std::vector<std::shared_ptr<FlushChannel>>& channels) {
  const std::uint32_t me = static_cast<std::uint32_t>(w);
  std::size_t total = 0;
  for (const auto& ch : channels) {
    if (ch->home_ != me) continue;
    ch->wake_requested_.store(false, std::memory_order_relaxed);
    while (ch->consume_one(me)) ++total;
  }
  // Idle worker: help any sibling's backlog. Same per-channel consumer
  // spinlock as the home worker, so retirement stays exactly-once and each
  // ring stays FIFO; the home worker finding its ring already empty is the
  // intended outcome, not a race.
  if (total == 0 && workers_.size() > 1) {
    std::size_t stolen = 0;
    for (const auto& ch : channels) {
      if (ch->home_ == me || ch->queue_.empty()) continue;
      while (ch->consume_one(me)) ++stolen;
    }
    if (stolen != 0) {
      steals_.fetch_add(stolen, std::memory_order_relaxed);
      total += stolen;
    }
  }
  if (total != 0) worker_flushes_.fetch_add(total, std::memory_order_relaxed);
  return total;
}

void FlushWorker::run(std::stop_token st, std::size_t w) {
  // Placement is a hint: pinning only under NVC_PIN, and failure to pin is
  // silently tolerated (containers often mask CPUs out of the affinity set).
  if (pin_) pin_thread_to_cpu(worker_cpu_[w]);
  // On a single-core host the post-work spin below would only steal the
  // producer's timeslice; drain()'s helping consumer covers latency there.
  // The topology probe is cached process-wide — no per-decision re-query.
  const bool can_spin = cpu_topology().can_spin();

  Worker& self = *workers_[w];
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    // Doze: wake on the periodic tick, an explicit poke, or stop. A plain
    // timeout (predicate false) still sweeps — the tick is the default
    // delivery mechanism; pokes only accelerate watermark crossings.
    self.cv.wait_for(lock, st, kDozeTick, [&] { return self.poked; });
    self.poked = false;
    std::vector<std::shared_ptr<FlushChannel>> channels = channels_;
    lock.unlock();

    bool idle = false;
    if (can_spin) {
      auto last_work = std::chrono::steady_clock::now();
      while (!st.stop_requested()) {
        if (sweep(w, channels) != 0) {
          last_work = std::chrono::steady_clock::now();
        } else if (std::chrono::steady_clock::now() - last_work >
                   kSpinWindow) {
          idle = true;
          break;
        } else {
          cpu_pause();
        }
      }
    } else {
      idle = sweep(w, channels) == 0;
    }
    // Idle worker: one bounded slice of background work (the online
    // scrubber). Flush traffic always wins — the slice runs only after a
    // sweep (plus spin window) found every home ring empty, and the next
    // doze tick re-checks the rings before another slice runs.
    if (idle && !st.stop_requested()) run_idle_task();

    lock.lock();
    // Prune channels whose producer is gone and whose queue has drained.
    std::erase_if(channels_, [](const std::shared_ptr<FlushChannel>& ch) {
      return ch->closed_.load(std::memory_order_acquire) && ch->queue_.empty();
    });
    if (st.stop_requested()) return;
  }
}

// --- AsyncFlushSink ---------------------------------------------------------

AsyncFlushSink::AsyncFlushSink(std::shared_ptr<FlushChannel> channel,
                               FlushSink* local, DeviceModel model)
    : channel_(std::move(channel)),
      local_(local),
      model_(model),
      watermark_(channel_->capacity() / 2) {
  NVC_REQUIRE(channel_ != nullptr && local_ != nullptr);
}

AsyncFlushSink::~AsyncFlushSink() {
  // Leave no line behind: the producer is going away, so write back
  // anything still queued (helping consumer) and release the channel for
  // pruning. The channel owns its sink, so the worker side stays valid
  // even though this producer (and its runtime) is being torn down.
  channel_->wait_drained();
  channel_->close();
}

std::uint64_t AsyncFlushSink::now_ns() const noexcept {
  return steady_now_ns();
}

bool AsyncFlushSink::maybe_inflight(LineAddr line) const noexcept {
  // pending_lines_[i] was push number pending_base_ + i + 1 and is out of
  // the ring once flushed() covers it, so the still-queued suffix starts at
  // flushed() - pending_base_. A stale flushed() read only widens the scan
  // (errs conservatively). The common case — nothing pending since the last
  // drain — is two counter loads and no scan.
  const std::uint64_t flushed = channel_->flushed();
  if (flushed >= pending_base_ + pending_lines_.size()) return false;
  for (std::size_t i = static_cast<std::size_t>(flushed - pending_base_);
       i < pending_lines_.size(); ++i) {
    if (pending_lines_[i] == line) return true;
  }
  return false;
}

bool AsyncFlushSink::flush_line(LineAddr line) {
  if (!channel_->try_push(line)) {
    // Ring full: absorb backpressure synchronously on this thread. The line
    // is flushed exactly once either way, so total data traffic is
    // identical to sync mode.
    ++overflows_;
    return local_->flush_line(line);
  }
  pending_lines_.push_back(line);
  if (model_.issue_ns != 0) {
    // Pipelined-device model: the line occupies the device for issue_ns
    // starting when the device is free (or now, if it went idle). The clock
    // is read once per burst; later pushes just extend the busy window
    // (over-estimating occupancy across a mid-burst pause is conservative).
    if (!burst_active_) {
      burst_active_ = true;
      device_free_ns_ = std::max(device_free_ns_, now_ns());
    }
    device_free_ns_ += model_.issue_ns;
  }
  if (channel_->depth() >= watermark_) channel_->request_wake();
  // Queued: the worker-side sink decides the line's fate (retry/quarantine
  // happen there); accepted from this producer's point of view.
  return true;
}

void AsyncFlushSink::drain() {
  channel_->wait_drained();
  // Every pending entry is now flushed; reset the shadow (capacity kept).
  pending_base_ += pending_lines_.size();
  pending_lines_.clear();
  burst_active_ = false;
  if (model_.latency_ns > model_.issue_ns) {
    // Everything is issued; durability of the last line lags its issue slot
    // by the device's remaining write latency.
    const std::uint64_t durable_at =
        device_free_ns_ + (model_.latency_ns - model_.issue_ns);
    while (now_ns() < durable_at) cpu_pause();
  }
  local_->drain();  // fence, counted on the application thread's backend
}

}  // namespace nvc::core
