// Thread grouping by write-locality similarity — the paper's stated future
// work (Section III-C): "To reduce the overhead, we could group threads with
// similar write locality and calculate one MRC for each group."
//
// Implementation: each thread contributes its sampled MRC as a feature
// vector; agglomerative clustering merges the closest pair of groups while
// their average-linkage L1 distance stays below a tolerance; each group then
// gets one shared MRC (the member average) and one knee-selected size.
// Sampling cost scales with groups, not threads.
#pragma once

#include <cstddef>
#include <vector>

#include "common/cpu.hpp"
#include "core/knee.hpp"
#include "core/mrc.hpp"

namespace nvc::core {

struct ThreadGroupConfig {
  /// Maximum mean per-size |Δ miss ratio| for two groups to merge.
  double merge_tolerance = 0.05;
  KneeConfig knee;
};

struct ThreadGroups {
  /// group_of[t] = group index of thread t.
  std::vector<std::size_t> group_of;
  /// Per group: the shared MRC and the knee-selected cache size.
  std::vector<Mrc> group_mrc;
  std::vector<std::size_t> group_size;

  std::size_t num_groups() const noexcept { return group_mrc.size(); }
};

/// Average per-size absolute miss-ratio difference between two MRCs of the
/// same max_size (the clustering metric).
double mrc_distance(const Mrc& a, const Mrc& b);

/// Cluster per-thread MRCs and select one cache size per group.
ThreadGroups group_threads(const std::vector<Mrc>& per_thread_mrcs,
                           const ThreadGroupConfig& config = {});

/// Topology-aware placement for the flush/analysis worker pools: where each
/// pool thread should run, and which pool thread serves each producer shard.
/// "Writes Hurt" (PAPERS.md) rewards few, batched issue streams per device,
/// so workers fill a NUMA node before spilling to the next (node-major)
/// rather than striping — a small pool stays co-located with the node whose
/// producers it serves.
struct ShardPlacement {
  /// worker_cpu[w] = preferred logical CPU of pool thread w (node-major,
  /// wrapping when the pool exceeds the machine). Pinning is opt-in
  /// (NVC_PIN); unpinned pools still use the map's node assignment.
  std::vector<int> worker_cpu;
  /// worker_node[w] = NUMA node of worker_cpu[w].
  std::vector<int> worker_node;
};

/// Place `workers` pool threads onto the probed topology (see above).
/// Always returns `workers` entries; on a flat machine every node is 0.
ShardPlacement place_workers(std::size_t workers, const CpuTopology& topo);

/// Home assignment for a known shard count: block-distribute `shards`
/// producer shards over `workers` homes (shard s -> s*workers/shards), so
/// consecutive shards — adjacent producers, typically co-located — share a
/// home worker and its node. Dynamic channel arrival (unknown final count)
/// uses round-robin instead; this is the static variant used when the
/// producer set is known up front (benchmarks, tests, fig5).
std::vector<std::size_t> place_shards(std::size_t shards, std::size_t workers);

}  // namespace nvc::core
