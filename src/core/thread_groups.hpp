// Thread grouping by write-locality similarity — the paper's stated future
// work (Section III-C): "To reduce the overhead, we could group threads with
// similar write locality and calculate one MRC for each group."
//
// Implementation: each thread contributes its sampled MRC as a feature
// vector; agglomerative clustering merges the closest pair of groups while
// their average-linkage L1 distance stays below a tolerance; each group then
// gets one shared MRC (the member average) and one knee-selected size.
// Sampling cost scales with groups, not threads.
#pragma once

#include <cstddef>
#include <vector>

#include "core/knee.hpp"
#include "core/mrc.hpp"

namespace nvc::core {

struct ThreadGroupConfig {
  /// Maximum mean per-size |Δ miss ratio| for two groups to merge.
  double merge_tolerance = 0.05;
  KneeConfig knee;
};

struct ThreadGroups {
  /// group_of[t] = group index of thread t.
  std::vector<std::size_t> group_of;
  /// Per group: the shared MRC and the knee-selected cache size.
  std::vector<Mrc> group_mrc;
  std::vector<std::size_t> group_size;

  std::size_t num_groups() const noexcept { return group_mrc.size(); }
};

/// Average per-size absolute miss-ratio difference between two MRCs of the
/// same max_size (the clustering metric).
double mrc_distance(const Mrc& a, const Mrc& b);

/// Cluster per-thread MRCs and select one cache size per group.
ThreadGroups group_threads(const std::vector<Mrc>& per_thread_mrcs,
                           const ThreadGroupConfig& config = {});

}  // namespace nvc::core
