// Online MRC analysis by bursty sampling (paper Section III-C).
//
// Execution is split into bursts and hibernation periods. During a burst the
// sampler records the FASE-renamed persistent-write trace; at burst end it
// runs the linear-time reuse analysis, converts to an MRC, and selects a
// cache size. The paper uses one 64M-write burst and an infinite hibernation
// ("we found it is sufficient to analyze MRC just once"); both knobs are
// configurable here, including periodic re-sampling for phase-changing
// programs (listed as future work in the paper, implemented here as an
// extension).
//
// Two analysis modes:
//   * synchronous (default): the analysis runs inside the on_store() that
//     completes the burst and the selection is returned from that call —
//     deterministic, used by the accuracy experiments (Fig. 7/8);
//   * asynchronous (SamplerConfig::async_analysis): the completed burst is
//     handed to the shared background AnalysisWorker in O(1) and on_store()
//     never blocks; the selection is picked up later via poll_selection()
//     (the SC policy polls at FASE boundaries, which preserves the paper's
//     semantics — the cache size only ever changes at a point where the
//     cache is empty anyway).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/analyzer.hpp"
#include "core/fase_trace.hpp"
#include "core/knee.hpp"
#include "core/mrc.hpp"
#include "core/reuse_locality.hpp"

namespace nvc::core {

struct SamplerConfig {
  /// Writes per burst. Paper: 64M; defaults here are scaled so the quick
  /// benchmarks sample meaningfully.
  std::uint64_t burst_length = 1u << 20;
  /// Writes to hibernate between bursts; 0 = hibernate forever after the
  /// first burst (the paper's configuration).
  std::uint64_t hibernation_length = 0;
  /// Warmup skipping: delay the first burst until this many FASE boundaries
  /// have passed (initialization writes usually all sit in the first FASE
  /// and have a different working set than steady state). Bounded: if no
  /// boundary arrives within one burst worth of writes, sampling starts
  /// anyway (after four bursts worth of writes), so single-FASE programs
  /// still get analyzed. 0 = the paper's sample-from-the-start behavior.
  std::uint32_t skip_fases = 0;
  /// Run the burst analysis on the shared background worker instead of
  /// synchronously inside on_store() (see file comment).
  bool async_analysis = false;
  /// Deterministic-test variant of async_analysis: the channel is never
  /// served by the background worker — handed-off bursts run only when the
  /// test's scheduler calls pump_analysis(). Lets the crash fuzzer replay
  /// the async analysis interleaving from a seed. Implies async_analysis.
  bool manual_analysis = false;
  KneeConfig knee;
};

class BurstSampler {
 public:
  explicit BurstSampler(SamplerConfig config = {});
  ~BurstSampler();

  BurstSampler(const BurstSampler&) = delete;
  BurstSampler& operator=(const BurstSampler&) = delete;

  /// Observe one persistent write. Returns a newly selected cache size when
  /// this write completes a burst *in synchronous mode*; in async mode the
  /// burst is handed off and the selection arrives via poll_selection().
  std::optional<std::size_t> on_store(LineAddr line);

  /// Observe a FASE boundary (needed for the renaming transform).
  void on_fase_boundary();

  /// Async mode: pick up a background selection if one has landed since the
  /// last poll (updates last_mrc()/last_selection()/bursts_completed()).
  /// Synchronous mode: always empty. O(1) when nothing is ready.
  std::optional<std::size_t> poll_selection();

  /// Async mode: block until any in-flight analysis completes (shutdown
  /// drain — the selection is then available to poll_selection()).
  void drain();

  /// Manual-analysis mode: run one handed-off burst analysis now, on this
  /// thread (true when a job ran). No-op in the other modes. `worker` is
  /// the virtual pool-worker identity a simulated schedule attributes the
  /// analysis to (defaults to 0, the single-worker schedule).
  bool pump_analysis(std::size_t worker = 0);

  /// Async mode: true while a handed-off burst has not been analyzed yet.
  bool analysis_in_flight() const;

  bool sampling() const noexcept { return sampling_; }
  std::uint64_t writes_seen() const noexcept { return writes_seen_; }
  std::uint64_t burst_length() const noexcept { return config_.burst_length; }
  bool async() const noexcept { return config_.async_analysis; }

  /// Reserved capacity of the burst trace buffer (test hook for the
  /// hibernation re-reserve behavior).
  std::size_t trace_capacity() const noexcept {
    return burst_trace_.capacity();
  }

  /// Results of the most recent completed burst (empty before the first).
  const Mrc& last_mrc() const noexcept { return last_mrc_; }
  const KneeResult& last_selection() const noexcept { return last_selection_; }
  std::uint64_t bursts_completed() const noexcept { return bursts_; }

  /// Analyze a complete trace offline and select a size (used by SC-offline
  /// and by the accuracy experiments). `boundaries` as in rename_trace().
  static KneeResult analyze_offline(const std::vector<LineAddr>& trace,
                                    const std::vector<std::size_t>& boundaries,
                                    const KneeConfig& knee, Mrc* mrc_out);

 private:
  std::optional<std::size_t> finish_burst();
  void apply_analysis(BurstAnalysis&& analysis);

  SamplerConfig config_;
  std::uint32_t fases_to_skip_ = 0;
  std::uint64_t warmup_writes_ = 0;
  FaseRenamer renamer_;
  std::vector<LineAddr> burst_trace_;
  bool sampling_ = true;
  std::uint64_t hibernated_ = 0;
  std::uint64_t writes_seen_ = 0;
  std::uint64_t bursts_ = 0;
  Mrc last_mrc_;
  KneeResult last_selection_;
  std::shared_ptr<AnalysisChannel> channel_;  // async mode only
  std::uint64_t results_consumed_ = 0;
};

}  // namespace nvc::core
