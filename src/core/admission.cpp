#include "core/admission.hpp"

#include <algorithm>
#include <bit>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "core/sampler.hpp"

namespace nvc::core {

const char* to_string(AdmitMode mode) {
  switch (mode) {
    case AdmitMode::kAlways:
      return "always";
    case AdmitMode::kWriteOnce:
      return "write-once";
    case AdmitMode::kReuse:
      return "reuse";
  }
  NVC_UNREACHABLE("invalid AdmitMode");
}

std::optional<AdmitMode> parse_admit_mode(std::string_view name) {
  if (name == "always") return AdmitMode::kAlways;
  if (name == "write-once") return AdmitMode::kWriteOnce;
  if (name == "reuse") return AdmitMode::kReuse;
  return std::nullopt;
}

AdmissionFilter::AdmissionFilter(const AdmissionConfig& config)
    : config_(config),
      tags_(std::bit_ceil(std::max<std::size_t>(config.window, 2)), 0),
      mask_(tags_.size() - 1),
      // write-once bypasses from the first store; reuse waits for MRC
      // evidence that caching is losing (publish_verdict).
      armed_(config.mode == AdmitMode::kWriteOnce) {}

bool AdmissionFilter::should_bypass(LineAddr line) noexcept {
  const std::size_t slot = static_cast<std::size_t>(
                               splitmix64_mix(line - config_.line_base)) &
                           mask_;
  if (tags_[slot] == line) {
    // Second touch within the window: the line reuses, admit it.
    ++counters_.readmitted;
    return false;
  }
  tags_[slot] = line;  // first touch (or a collision forgot it): record
  if (!armed_) return false;
  ++counters_.bypassed;
  return true;
}

void AdmissionFilter::publish_verdict(const BurstSampler& sampler) {
  if (config_.mode != AdmitMode::kReuse) return;
  if (sampler.bursts_completed() == published_bursts_) return;
  published_bursts_ = sampler.bursts_completed();
  const Mrc& mrc = sampler.last_mrc();
  if (mrc.empty()) return;
  const std::size_t size = std::clamp<std::size_t>(
      sampler.last_selection().chosen_size, 1, mrc.max_size());
  const double hit_ratio = 1.0 - mrc.at(size);
  armed_ = hit_ratio < config_.reuse_threshold;
  ++counters_.verdicts;
}

}  // namespace nvc::core
