#include "core/fase_trace.hpp"

#include "common/assert.hpp"

namespace nvc::core {

std::vector<LineAddr> rename_trace(
    const std::vector<LineAddr>& trace,
    const std::vector<std::size_t>& boundaries) {
  FaseRenamer renamer;
  std::vector<LineAddr> out;
  out.reserve(trace.size());
  std::size_t next_boundary = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    while (next_boundary < boundaries.size() &&
           boundaries[next_boundary] == i) {
      renamer.fase_boundary();
      ++next_boundary;
    }
    out.push_back(renamer.rename(trace[i]));
  }
  return out;
}

}  // namespace nvc::core
