// The flush-behind pipeline: data-line write-backs off the application
// thread (FliT-style persistence delegation; "Writes Hurt"-style batching).
//
// PR 1 moved burst *analysis* off the critical path; this module does the
// same for the data-line *write-backs* themselves. A policy that evicts a
// line mid-FASE no longer stalls for one flush latency — it pushes the line
// address into a per-thread SPSC ring and keeps computing:
//
//   app thread                          flush worker (std::jthread)
//   ----------                          ---------------------------
//   evict line L                        (dozes; wakes on a timer tick or a
//   push L into FlushChannel, O(1) ---> high-watermark poke)
//   keep executing the FASE             pop L, sink->flush_line(L)
//   ...                                 publish completed count (release)
//   FASE end: drain() = wait until
//   completed == pushed, then fence
//
// drain() is a *completion ticket*: the producer snapshots its own push
// count and waits for the worker's completed count to cover it. Crucially
// the waiting producer **helps**: the consumer side of the ring is guarded
// by a tiny spinlock, so whichever side gets there first pops and flushes.
// On a single-core host (or whenever the worker is descheduled) drain()
// degrades gracefully to "the producer writes back its own lines" instead
// of blocking on a context switch — the pipeline is never slower than the
// synchronous path by more than a ring push per line.
//
// Crash-consistency is preserved by construction (DESIGN.md §8): the
// LogOrderedSink decorator wraps *around* AsyncFlushSink, so the undo-log
// sync for a line happens on the application thread at **enqueue** time —
// before the line address ever enters the ring — and Runtime::fase_end
// writes the log commit record only after drain() returned, i.e. after
// every line of the FASE was handed to the backend and fenced.
//
// For the simulated backend the sink also carries a pipelined-device model
// (a write-pending-queue in the ADR sense): each accepted line occupies the
// device for `issue_ns` (bandwidth), durability lags the last issue by
// `latency_ns`. The sync path spins the full latency per line (clflush is
// strongly ordered — back-to-back flushes serialize); the async path only
// pays occupancy, which is what gives flush-behind its overlap win even
// where no second core exists to run the worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/spsc_queue.hpp"
#include "common/types.hpp"
#include "core/write_cache.hpp"

namespace nvc::core {

class FlushWorker;

/// One producer's flush-behind ring to the shared FlushWorker. The channel
/// *owns* the sink the worker flushes into, so a producer (and its runtime)
/// can be destroyed while the worker still holds a reference — nothing
/// dangles. Producer-side calls (try_push, wait_drained, pushed) must come
/// from a single thread; consume_one may race between worker and helping
/// producer and is serialized by the consumer lock.
class FlushChannel {
 public:
  /// Producer: hand one line to the pipeline. Wait-free; false when the
  /// ring is full (the caller falls back to a synchronous local flush so
  /// no line is ever dropped and total traffic matches sync mode).
  bool try_push(LineAddr line);

  /// Producer: completion ticket — wait until every line pushed so far has
  /// been written back through the sink. The waiter helps consume, so this
  /// makes progress even if the worker thread never runs. A watchdog
  /// (NVC_FLUSH_DRAIN_TIMEOUT_MS, read when the channel was opened; 0
  /// disables) fires when no line retires for that long — e.g. the worker
  /// wedged mid-flush while holding the consumer lock: it logs one
  /// diagnostic with the queue depth, bumps stall_warnings(), and keeps
  /// helping rather than aborting, so a recovered worker still completes
  /// the drain.
  void wait_drained();

  /// Times the drain watchdog fired (see wait_drained).
  std::uint64_t stall_warnings() const noexcept {
    return stall_warnings_.load(std::memory_order_relaxed);
  }

  /// Lines handed to the pipeline (producer-side count).
  std::uint64_t pushed() const noexcept {
    return pushed_.load(std::memory_order_relaxed);
  }

  /// Lines written back through the channel's sink. Release-published by
  /// whichever thread flushed; safe to read from any thread — this is the
  /// authoritative flush count for stats aggregation (the worker-owned
  /// backend's plain counters are never read concurrently).
  std::uint64_t flushed() const noexcept {
    return flushed_.load(std::memory_order_acquire);
  }

  /// Approximate ring depth (producer-side view is exact).
  std::size_t depth() const noexcept { return queue_.size(); }
  std::size_t capacity() const noexcept { return queue_.capacity(); }

  /// Producer is going away; the worker prunes the channel once drained.
  /// Call only after wait_drained().
  void close() noexcept { closed_.store(true, std::memory_order_release); }

  /// Pop and write back one queued line, if any (true when a line was
  /// flushed). Serialized against the worker and a helping drain by the
  /// consumer lock, so it is safe on any channel — but it exists for
  /// *manual* channels (open_manual_channel), where a deterministic test
  /// scheduler is the only consumer and interleavings replay from a seed.
  /// `worker` is the *virtual* worker identity the scheduler is simulating
  /// (recorded as last_flush_worker(); no pool thread is involved), so a
  /// fuzzer schedule can model an M-worker pool without one.
  bool pump_one(std::size_t worker = 0) {
    return consume_one(static_cast<std::uint32_t>(worker));
  }

  /// True for channels the background worker never sweeps (deterministic
  /// test channels; see FlushWorker::open_manual_channel).
  bool manual() const noexcept { return manual_; }

  /// Producer: wake the worker unless it has already been asked since its
  /// last sweep (high-watermark crossing). Amortizes the poke's mutex
  /// round-trip over a whole eviction burst.
  void request_wake();

  /// Thread that performed the most recent write-back (test hook: proves
  /// the pipeline can leave the application thread). Read when idle.
  std::thread::id last_flush_thread() const noexcept {
    return last_flush_thread_;
  }

  /// Consumer identity recorded by pump_one / the pool sweep when nothing
  /// pool-threaded did the work (helping producer in wait_drained, or a
  /// steal by a non-home worker reported as the stealing worker's index).
  static constexpr std::uint32_t kHelperConsumer = 0xffffffffu;

  /// Pool-worker index (or kHelperConsumer) that performed the most recent
  /// write-back. Test hook; read when idle.
  std::uint32_t last_flush_worker() const noexcept {
    return last_flush_worker_;
  }

  /// Home pool worker serving this channel (0 for manual channels).
  std::uint32_t home() const noexcept { return home_; }

 private:
  friend class FlushWorker;

  FlushChannel(FlushWorker* worker, std::unique_ptr<FlushSink> sink,
               std::size_t capacity, bool manual);

  /// Pop and flush one line if any is ready. Returns false when the ring
  /// was empty or another thread holds the consumer side right now (it is
  /// making progress on our behalf either way). `consumer` is recorded as
  /// last_flush_worker() on success.
  bool consume_one(std::uint32_t consumer = kHelperConsumer);

  FlushWorker* worker_;
  std::unique_ptr<FlushSink> sink_;  // worker-side write-back target
  SpscQueue<LineAddr> queue_;
  /// Never swept by the worker thread; consumed only by pump_one() and the
  /// helping drain. request_wake() is a no-op so a watermark crossing
  /// cannot put the worker thread into the interleaving.
  const bool manual_ = false;
  std::atomic<std::uint64_t> pushed_{0};
  std::atomic<std::uint64_t> flushed_{0};
  std::atomic<bool> closed_{false};
  /// Drain-watchdog state: timeout captured from the environment at open
  /// time (per-channel, so tests can vary it), warning count relaxed — it
  /// is a diagnostic, not a synchronization point.
  std::uint64_t drain_timeout_ns_ = 0;
  std::atomic<std::uint64_t> stall_warnings_{0};
  /// Set by the producer when it pokes the worker at the high watermark;
  /// cleared by the worker's sweep. Keeps poke() amortized O(1) per burst
  /// of evictions instead of one mutex round-trip per push.
  std::atomic<bool> wake_requested_{false};
  /// Serializes the consumer side (worker sweep, stealing worker, helping
  /// producer). Held only around one pop + one flush_line; uncontended cost
  /// is a single RMW each way.
  std::atomic_flag consume_lock_ = ATOMIC_FLAG_INIT;
  std::thread::id last_flush_thread_{};  // written under consume_lock_
  std::uint32_t last_flush_worker_ = kHelperConsumer;  // under consume_lock_
  /// Index of the pool worker that sweeps this channel (round-robin over
  /// the pool at open time; constant afterwards). Manual channels keep 0
  /// but are never registered with any worker.
  std::uint32_t home_ = 0;
};

/// Background work a pool worker runs when its sweep found nothing to flush
/// (the online scrubber piggybacks here, DESIGN.md §14). One bounded slice
/// per call; return true when the step did useful work (the worker may call
/// again within its spin window), false when there is nothing to do.
/// Registered as weak_ptr so a task simply expiring (its owner died) is the
/// deregistration protocol — no unregister call, no dangling task.
class IdleTask {
 public:
  virtual ~IdleTask() = default;
  virtual bool idle_step() = 0;
};

/// The shared background flusher, generalized to a sized pool: N jthreads
/// (NVC_FLUSH_WORKERS, default 1 = the original single-worker behavior),
/// each the *home* of a subset of channels assigned round-robin at open
/// time. Scheduling is doze-based — each worker sleeps in ~200 µs ticks and
/// sweeps its home channels on each wake; producers only pay a
/// condition-variable poke to the home worker when a ring crosses its high
/// watermark (sustained eviction storm). No per-push notify: a futex wake
/// costs more than the flush it would hide, and drain()'s helping consumer
/// already bounds the worst-case latency.
///
/// Work stealing: a worker whose own sweep came up empty helps pop any
/// other channel's ring, and a producer blocked in wait_drained() while the
/// consumer lock is held steals from sibling channels rather than just
/// yielding. Both go through the same per-channel consumer spinlock as the
/// home worker, so exactly-once retirement and per-channel FIFO order are
/// preserved no matter who pops (DESIGN.md §11 for the full argument).
/// Manual channels are invisible to every pool thread, so pool size cannot
/// perturb a deterministic fuzzer schedule.
class FlushWorker {
 public:
  /// Pool size from NVC_FLUSH_WORKERS (default 1; 0 = one per NUMA node;
  /// clamped to [1, kMaxPool]). NVC_PIN=1 pins each worker to its
  /// topology-placed CPU (see core::place_workers).
  FlushWorker();
  /// Fixed pool size (tests / benchmarks); env is ignored except NVC_PIN.
  explicit FlushWorker(std::size_t pool_size);
  ~FlushWorker();

  FlushWorker(const FlushWorker&) = delete;
  FlushWorker& operator=(const FlushWorker&) = delete;

  /// The process-wide pool used by async runtimes (sized from the
  /// environment at first use).
  static FlushWorker& shared();

  /// Open a producer channel homed on the next pool worker (round-robin).
  /// The channel owns `sink`; `capacity` must be a power of two.
  std::shared_ptr<FlushChannel> open_channel(std::unique_ptr<FlushSink> sink,
                                             std::size_t capacity);

  /// Open a channel NO pool worker will ever sweep: write-backs happen only
  /// when the owner calls FlushChannel::pump_one() or a drain helps. The
  /// crash fuzzer uses this to explore worker/application interleavings
  /// deterministically from a seed (a virtual scheduler decides when the
  /// "worker" runs) instead of depending on real thread scheduling.
  std::shared_ptr<FlushChannel> open_manual_channel(
      std::unique_ptr<FlushSink> sink, std::size_t capacity);

  /// Wake every pool worker now (tests, shutdown nudge). Watermark pokes
  /// from producers go to the channel's home worker only.
  void poke();

  /// Register background work for idle workers (see IdleTask). Tasks run on
  /// pool threads only — manual channels and their deterministic schedules
  /// never see them. Expired tasks are pruned lazily.
  void register_idle_task(std::weak_ptr<IdleTask> task);

  /// Idle-task invocations that reported useful work (diagnostic).
  std::uint64_t idle_steps() const noexcept {
    return idle_steps_.load(std::memory_order_relaxed);
  }

  /// Number of pool threads (>= 1).
  std::size_t pool_size() const noexcept { return workers_.size(); }

  /// Write-backs performed by pool threads (home sweeps and steals, not
  /// helping producers; test/diagnostic hook).
  std::uint64_t worker_flushes() const noexcept {
    return worker_flushes_.load(std::memory_order_relaxed);
  }

  /// Lines retired by a consumer other than the channel's home worker: an
  /// idle worker's steal sweep or a drain()-blocked producer helping a
  /// sibling channel. Diagnostic; proves the stealing path engaged.
  std::uint64_t steals() const noexcept {
    return steals_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kDefaultQueueDepth = 1024;
  static constexpr std::size_t kMaxPool = 64;

 private:
  friend class FlushChannel;

  struct Worker {
    std::condition_variable_any cv;
    bool poked = false;         // guarded by FlushWorker::mutex_
    std::jthread thread;        // started after every Worker exists
  };

  void start();
  void poke_home(std::size_t w);
  /// Run one registered idle task's step (round-robin), pruning expired
  /// registrations. Called off-mutex by a worker whose sweep came up empty;
  /// returns what the task's idle_step returned (false = nothing ran).
  bool run_idle_task();
  /// Steal one line from any registered channel other than `self` (used by
  /// a producer blocked in wait_drained). Returns true when a line was
  /// retired somewhere.
  bool steal_one(const FlushChannel* self);
  void run(std::stop_token st, std::size_t w);
  std::size_t sweep(std::size_t w,
                    const std::vector<std::shared_ptr<FlushChannel>>& channels);

  const bool pin_;
  std::mutex mutex_;  // guards channels_, next_home_ and Worker::poked
  std::vector<std::shared_ptr<FlushChannel>> channels_;
  std::size_t next_home_ = 0;
  std::vector<int> worker_cpu_;  // placement map, fixed at construction
  std::atomic<std::uint64_t> worker_flushes_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::vector<std::weak_ptr<IdleTask>> idle_tasks_;  // guarded by mutex_
  std::size_t idle_cursor_ = 0;                      // guarded by mutex_
  std::atomic<std::uint64_t> idle_steps_{0};
  /// Last member: jthreads stop and join before the rest is destroyed.
  std::vector<std::unique_ptr<Worker>> workers_;
};

/// Pipelined-device timing model for AsyncFlushSink, active only for the
/// simulated backend (zeros = model off; real hardware self-times).
/// `issue_ns` is the per-line device occupancy (bandwidth bound),
/// `latency_ns` the full write latency; durability of the last accepted
/// line lags its issue by latency_ns - issue_ns.
struct FlushDeviceModel {
  std::uint32_t latency_ns = 0;
  std::uint32_t issue_ns = 0;
};

/// FlushSink decorator that turns flush_line() into a ring push and drain()
/// into a completion-ticket wait. `local` is the producer-owned synchronous
/// sink used (a) as overflow fallback when the ring is full and (b) for the
/// fence accounting at drain — fences stay on the application thread, so
/// per-thread fence counters never race.
class AsyncFlushSink final : public FlushSink {
 public:
  using DeviceModel = FlushDeviceModel;

  AsyncFlushSink(std::shared_ptr<FlushChannel> channel, FlushSink* local,
                 DeviceModel model = DeviceModel());
  ~AsyncFlushSink() override;

  bool flush_line(LineAddr line) override;
  void drain() override;

  const FlushChannel& channel() const noexcept { return *channel_; }

  /// The write-after-enqueue hazard check (DESIGN.md §8): true when `line`
  /// may still be queued, i.e. a write-back of it — carrying bytes of any
  /// store the caller is about to make — can still happen. A caller pairing
  /// the store with an undo record must make that record durable *before*
  /// writing the data (the ring is FIFO, so "still queued" is exactly
  /// last-push-ticket > lines-flushed; a stale read errs conservatively).
  bool maybe_inflight(LineAddr line) const noexcept;

  /// Lines that overflowed to the synchronous local sink (ring full).
  std::uint64_t overflow_flushes() const noexcept { return overflows_; }

 private:
  std::uint64_t now_ns() const noexcept;

  std::shared_ptr<FlushChannel> channel_;
  FlushSink* local_;
  DeviceModel model_;
  std::size_t watermark_;
  std::uint64_t overflows_ = 0;
  /// FIFO shadow of the ring since the last drain: entry i was push number
  /// pending_base_ + i + 1, so the still-queued suffix starts at index
  /// flushed() - pending_base_. Appending is a vector push_back (the per-
  /// line cost the eviction path pays); the hazard query scans only that
  /// suffix, and the common "nothing pending" case is two counter loads.
  /// Producer-only; cleared at drain(), when every entry is known flushed.
  std::vector<LineAddr> pending_lines_;
  std::uint64_t pending_base_ = 0;
  /// Modeled device timeline: steady-clock ns at which the simulated device
  /// finishes accepting everything issued so far. Producer-only state.
  std::uint64_t device_free_ns_ = 0;
  /// True between the first push after a drain and the next drain. The
  /// clock is read once per burst (at its first push) rather than per line;
  /// a mid-burst pause the model consequently misses only makes drain()
  /// wait longer than strictly needed, never shorter than the device would.
  bool burst_active_ = false;
};

}  // namespace nvc::core
