// The FlushSink seam between caching policies and the durable undo log.
//
// With epoch-batched log persistence (runtime/undo_log.hpp,
// LogSyncMode::kBatched) an undo record only appends to the log segment;
// durability is enforced once per *epoch*, where an epoch ends exactly when
// the runtime is about to issue the first software-controlled data-line
// write-back since the last sync. The ordering invariant that keeps
// recovery sound is:
//
//   every log entry covering a data line is durable before that line is
//   flushed to NVRAM by software (DESIGN.md §7).
//
// LogOrderedSink enforces the invariant mechanically: it decorates the sink
// that policies flush into and forces EpochLog::sync() before forwarding
// each flush_line(). sync() is O(1) — a single compare — when nothing new
// has been appended, so only the first flush after a batch of records pays
// the (single) flush_range + fence + durable-tail update.
#pragma once

#include "common/assert.hpp"
#include "core/write_cache.hpp"

namespace nvc::core {

/// A durable log whose appended-but-not-yet-persistent entries must become
/// durable before any software-issued data flush (the undo log in batched
/// mode; a no-op in strict mode, where record() already persisted).
class EpochLog {
 public:
  virtual ~EpochLog() = default;

  /// Make every entry appended so far durable (flush + fence + durable tail
  /// publish). Must be O(1) when there is nothing pending. Returns false
  /// when the log media rejected a write-back — the entries are NOT
  /// durable and callers must not proceed with anything that depends on
  /// them (see LogOrderedSink::flush_line).
  virtual bool sync() = 0;
};

/// FlushSink decorator: forces `log->sync()` before each forwarded data-line
/// flush, so log-entry durability is ordered before data durability without
/// the policies knowing a log exists.
class LogOrderedSink final : public FlushSink {
 public:
  /// `log` may be null (no undo logging): the sink degrades to forwarding.
  LogOrderedSink(FlushSink* inner, EpochLog* log)
      : inner_(inner), log_(log) {
    NVC_REQUIRE(inner_ != nullptr);
  }

  bool flush_line(LineAddr line) override {
    // A failed log sync means undo records covering this line may not be
    // durable: flushing the data anyway could persist new bytes with no
    // durable record of the old ones, breaking all-or-nothing recovery.
    // Drop the data flush instead — the line stays volatile (lost on
    // crash, which recovery handles), and the caller's fault accounting
    // sees the false.
    if (log_ != nullptr && !log_->sync()) return false;
    return inner_->flush_line(line);
  }

  void drain() override { inner_->drain(); }

 private:
  FlushSink* inner_;
  EpochLog* log_;
};

}  // namespace nvc::core
