// Reuse-based timescale locality (paper Section III-B).
//
// For a trace of n data accesses, reuse(k) is the average number of
// intra-window reuses over all windows of length k. Counting reuses per
// window is O(n^2); the paper inverts the sum (Eq. 1) and instead counts, for
// each reuse interval [s, e], the number of k-length windows enclosing it
// (Eq. 2). With 1-indexed times, a window of length k starting at w covers
// [w, w+k-1] and encloses [s, e] iff
//
//     max(1, e-k+1) <= w <= min(s, n-k+1),
//
// so per interval the count, as a function of k, is piecewise linear with
// slope +1 on [e-s+1, K1], slope 0 on (K1, K2], and slope -1 on (K2, n],
// where K1 = min(e, n-s+1) and K2 = max(e, n-s+1). Each interval therefore
// adds four entries to a second-difference array; two prefix sums then yield
// the window-count totals for every k at once — O(n + r) overall.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace nvc::core {

/// One reuse interval: a write at time `s` and the next write to the same
/// (FASE-renamed) datum at time `e`, 1-indexed, s < e.
struct ReuseInterval {
  LogicalTime s = 0;
  LogicalTime e = 0;
};

/// Result of the all-k analysis. reuse[k] is valid for k in [1, n].
class ReuseCurve {
 public:
  ReuseCurve() = default;
  ReuseCurve(std::vector<double> values, LogicalTime n)
      : values_(std::move(values)), n_(n) {}

  /// reuse(k): average intra-window reuses over all windows of length k.
  double at(LogicalTime k) const;

  /// Trace length this curve was computed for.
  LogicalTime trace_length() const noexcept { return n_; }

  bool empty() const noexcept { return values_.empty(); }

 private:
  std::vector<double> values_;  // values_[k-1] = reuse(k)
  LogicalTime n_ = 0;
};

/// Compute reuse(k) for all k in [1, n] in O(n + r) (paper Eq. 2 via the
/// second-difference accumulation described above).
ReuseCurve compute_reuse_all_k(std::span<const ReuseInterval> intervals,
                               LogicalTime n);

/// Reference implementation: enumerate every window (O(n^2 + nr)); used by
/// the property tests to validate the linear-time algorithm.
ReuseCurve compute_reuse_brute_force(std::span<const ReuseInterval> intervals,
                                     LogicalTime n);

/// Extract reuse intervals from an explicit address trace (1-indexed times).
std::vector<ReuseInterval> intervals_of_trace(
    std::span<const LineAddr> trace);

/// Same, for a *dense* trace whose addresses all lie in [0, id_bound) — the
/// shape the FASE renamer produces (identities are allocated sequentially
/// from 0). A direct-indexed last-access array replaces hashing entirely,
/// which is both faster and allocation-predictable; this is the variant the
/// burst-analysis pipeline runs on renamed traces.
std::vector<ReuseInterval> intervals_of_dense_trace(
    std::span<const LineAddr> trace, LineAddr id_bound);

/// Average working-set size fp(k) for all k in [1, n], computed from the
/// trace's access-gap structure (equivalent to paper Eq. 4): a window of
/// length k misses a datum iff it fits entirely in one of the datum's access
/// gaps, so fp(k) = m - (sum over gaps g of max(0, g-k+1)) / (n-k+1).
class FootprintCurve {
 public:
  FootprintCurve() = default;
  FootprintCurve(std::vector<double> values, LogicalTime n)
      : values_(std::move(values)), n_(n) {}

  double at(LogicalTime k) const;
  LogicalTime trace_length() const noexcept { return n_; }
  bool empty() const noexcept { return values_.empty(); }

 private:
  std::vector<double> values_;
  LogicalTime n_ = 0;
};

FootprintCurve compute_footprint_all_k(std::span<const LineAddr> trace);

/// Reference O(n^2) footprint for the property tests.
FootprintCurve compute_footprint_brute_force(std::span<const LineAddr> trace);

}  // namespace nvc::core
