#include "core/elision.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace nvc::core {

FlushElisionTable::FlushElisionTable(std::size_t slots) {
  NVC_REQUIRE(slots >= 2);
  slots = std::bit_ceil(slots);
  mask_ = slots - 1;
  slots_ = std::make_unique<std::atomic<std::uint64_t>[]>(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

std::uint64_t FlushElisionTable::splitmix64_hash(LineAddr line) noexcept {
  return splitmix64_mix(line);
}

FlushElisionTable::Tag FlushElisionTable::tag(LineAddr line) {
  tags_.fetch_add(1, std::memory_order_relaxed);
  if (line >= kMaxLine) {
    shared_.fetch_add(1, std::memory_order_acq_rel);
    return Tag::kShared;
  }
  std::atomic<std::uint64_t>& slot = slot_for(line);
  std::uint64_t cur = slot.load(std::memory_order_acquire);
  for (;;) {
    if (cur == 0) {
      if (slot.compare_exchange_weak(cur, pack(line, 1),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        return Tag::kSlot;
      }
      continue;  // cur reloaded by the failed CAS
    }
    if (slot_line(cur) == line) {
      if (slot_count_of(cur) == kCountMask) break;  // saturated: fall back
      if (slot.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        return Tag::kSlot;
      }
      continue;
    }
    collisions_.fetch_add(1, std::memory_order_relaxed);
    break;
  }
  // Collision or saturation: count in the shared fallback, which keeps
  // pending() conservatively true for every line until the untag.
  shared_.fetch_add(1, std::memory_order_acq_rel);
  return Tag::kShared;
}

void FlushElisionTable::untag(LineAddr line, Tag where) {
  if (where == Tag::kShared) {
    const std::uint64_t prev = shared_.fetch_sub(1, std::memory_order_acq_rel);
    NVC_ASSERT(prev > 0);
    return;
  }
  std::atomic<std::uint64_t>& slot = slot_for(line);
  std::uint64_t cur = slot.load(std::memory_order_acquire);
  for (;;) {
    NVC_ASSERT(slot_line(cur) == line && slot_count_of(cur) > 0,
               "untag of a line this table never slot-tagged");
    const std::uint64_t next = slot_count_of(cur) == 1 ? 0 : cur - 1;
    if (slot.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      return;
    }
  }
}

bool FlushElisionTable::pending(LineAddr line) const {
  if (shared_.load(std::memory_order_acquire) != 0) return true;
  if (line >= kMaxLine) return false;  // shared-only lines were counted above
  const std::uint64_t cur = slot_for(line).load(std::memory_order_acquire);
  return cur != 0 && slot_line(cur) == line;
}

FlushElisionTable::Announce FlushElisionTable::announce(LineAddr line) {
  announces_.fetch_add(1, std::memory_order_relaxed);
  if (line >= kMaxLine) return Announce::kUntracked;
  std::atomic<std::uint64_t>& slot = slot_for(line);
  std::uint64_t cur = slot.load(std::memory_order_acquire);
  for (;;) {
    if (cur == 0) {
      if (slot.compare_exchange_weak(cur, pack(line, 1),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        owners_.fetch_add(1, std::memory_order_relaxed);
        return Announce::kOwner;
      }
      continue;
    }
    if (slot_line(cur) == line) {
      if (slot_count_of(cur) == kCountMask) return Announce::kUntracked;
      if (slot.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
        elisions_.fetch_add(1, std::memory_order_relaxed);
        return Announce::kElided;
      }
      continue;
    }
    collisions_.fetch_add(1, std::memory_order_relaxed);
    return Announce::kUntracked;
  }
}

std::uint32_t FlushElisionTable::retire(LineAddr line) {
  if (line >= kMaxLine) return 0;
  std::atomic<std::uint64_t>& slot = slot_for(line);
  std::uint64_t cur = slot.load(std::memory_order_acquire);
  for (;;) {
    if (cur == 0 || slot_line(cur) != line) return 0;
    const auto count = static_cast<std::uint32_t>(slot_count_of(cur));
    if (bug_revert_retire_) {
      // Seeded bug (test hook): report success but leave the pending count
      // in place. Future announces of this line elide forever.
      return count;
    }
    if (slot.compare_exchange_weak(cur, 0, std::memory_order_acq_rel,
                                   std::memory_order_acquire)) {
      retires_.fetch_add(1, std::memory_order_relaxed);
      return count;
    }
  }
}

std::size_t FlushElisionTable::pending_count() const {
  std::size_t n = shared_.load(std::memory_order_acquire) != 0 ? 1 : 0;
  for (std::size_t i = 0; i <= mask_; ++i) {
    if (slots_[i].load(std::memory_order_acquire) != 0) ++n;
  }
  return n;
}

FlushElisionTable::Stats FlushElisionTable::stats() const {
  Stats s;
  s.tags = tags_.load(std::memory_order_relaxed);
  s.announces = announces_.load(std::memory_order_relaxed);
  s.owners = owners_.load(std::memory_order_relaxed);
  s.elisions = elisions_.load(std::memory_order_relaxed);
  s.retires = retires_.load(std::memory_order_relaxed);
  s.collisions = collisions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace nvc::core
