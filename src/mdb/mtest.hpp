// Mtest — the MDB test-suite workload the paper uses for its case study
// (Section IV-C): insert a stream of key/value pairs interleaved with
// traversals and deletions, batched into durable write transactions (each
// write transaction is one FASE).
#pragma once

#include <memory>

#include "workloads/workload.hpp"

namespace nvc::mdb {

struct MtestConfig {
  /// Total puts (paper: 1,000,000). Quick default is 1/10 scale.
  std::uint64_t inserts_full = 1000000;
  std::uint64_t inserts_quick = 100000;
  /// Puts per write transaction; the paper observes ~652 persistent stores
  /// per FASE, which this batch size approximates through page COW traffic.
  std::uint64_t batch = 10;
  /// Every n-th batch runs a read-transaction range traversal.
  std::uint64_t traverse_every = 16;
  std::uint64_t traversal_length = 64;
  /// Every n-th batch deletes one earlier key.
  std::uint64_t delete_every = 4;
};

/// Workload adapter so mdb runs through the same harness as the mini-apps.
std::unique_ptr<workloads::Workload> make_mdb_workload(
    const MtestConfig& config = {});

}  // namespace nvc::mdb
