// MDB — a memory-mapped, copy-on-write B+-tree key-value store in the mold
// of OpenLDAP's MDB/LMDB (paper Section IV-B):
//
//   * fixed-size pages in one persistent slab;
//   * two alternating meta pages; a commit atomically installs a new root by
//     writing the older meta (single-page write = the durability point);
//   * writers copy-on-write every page they touch (never update in place),
//     so readers run lock-free against the root snapshot they started with
//     (MVCC); one writer at a time (exclusive lock), as in MDB;
//   * freed pages are recycled once no live reader can still see them.
//
// All page mutations are reported through PersistApi, so the store runs
// under any persistence policy, live or traced. A write transaction is one
// FASE (MDB's write txns are the paper's durable FASEs).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "common/assert.hpp"
#include "workloads/api.hpp"

namespace nvc::mdb {

using Key = std::uint64_t;
using Value = std::uint64_t;
using PageNo = std::uint32_t;
using TxnId = std::uint64_t;

inline constexpr std::size_t kPageSize = 4096;
inline constexpr PageNo kNoPage = 0xffffffffu;

struct DbStats {
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t gets = 0;
  std::uint64_t commits = 0;
  std::uint64_t page_copies = 0;
  std::uint64_t page_allocs = 0;
  std::uint64_t page_reuses = 0;
  std::uint32_t tree_depth = 0;
};

class Db {
 public:
  /// Create a fresh store backed by `max_pages` pages allocated from the
  /// API (tid 0). `api` must outlive the Db.
  Db(workloads::PersistApi& api, std::size_t max_pages);

  Db(const Db&) = delete;
  Db& operator=(const Db&) = delete;

  // --- transactions -----------------------------------------------------------

  /// Snapshot read transaction; cheap, many may run concurrently.
  class ReadTxn {
   public:
    /// Point lookup.
    std::optional<Value> get(Key key) const;

    /// In-order scan: visit up to `limit` pairs with key >= from; returns
    /// the number visited.
    std::size_t scan(Key from, std::size_t limit,
                     void (*visit)(Key, Value, void*) = nullptr,
                     void* arg = nullptr) const;

    /// Number of pairs reachable from this snapshot (full walk).
    std::size_t count() const;

    TxnId id() const noexcept { return txn_; }

    ~ReadTxn();
    ReadTxn(ReadTxn&& other) noexcept;
    ReadTxn& operator=(ReadTxn&&) = delete;
    ReadTxn(const ReadTxn&) = delete;

   private:
    friend class Db;
    ReadTxn(const Db* db, PageNo root, TxnId txn)
        : db_(db), root_(root), txn_(txn) {}
    const Db* db_;
    PageNo root_;
    TxnId txn_;
  };

  /// Exclusive write transaction (copy-on-write). One at a time; the Db
  /// serializes writers internally. Maps to one FASE.
  class WriteTxn {
   public:
    void put(Key key, Value value);
    /// Returns true if the key existed.
    bool del(Key key);
    std::optional<Value> get(Key key) const;

    /// Durably install this transaction's root. The txn is dead afterwards.
    void commit();
    /// Drop every page this txn allocated; the old root stays current.
    void abort();

    ~WriteTxn();
    WriteTxn(WriteTxn&& other) noexcept;
    WriteTxn& operator=(WriteTxn&&) = delete;
    WriteTxn(const WriteTxn&) = delete;

   private:
    friend class Db;
    WriteTxn(Db* db, std::size_t tid);

    PageNo cow(PageNo page);  // copy page unless already dirty in this txn
    void insert_rec(PageNo page, Key key, Value value, Key* promoted,
                    PageNo* right);
    bool delete_rec(PageNo page, Key key);

    Db* db_;
    std::size_t tid_;
    PageNo root_;
    TxnId txn_;
    std::vector<PageNo> allocated_;  // for abort
    std::vector<PageNo> freed_;      // enqueued to the freelist on commit
    bool open_ = true;
  };

  ReadTxn begin_read() const;
  WriteTxn begin_write(std::size_t tid);

  const DbStats& stats() const noexcept { return stats_; }
  std::size_t pages_in_use() const noexcept {
    return next_page_.load(std::memory_order_relaxed);
  }
  TxnId last_committed() const noexcept { return last_committed_; }

  /// Validate structural invariants of the current tree (tests): sorted
  /// keys, child counts, uniform leaf depth. Aborts on violation.
  void check_invariants() const;

  /// Recovery-side reader: interpret a raw durable image of a Db slab (as a
  /// restarted process — or the crash-consistency tests — would see it),
  /// select the newest *intact* meta (magic + checksum), validate the tree
  /// reachable from it, and return its contents along with the committed
  /// transaction id. Aborts if the reachable tree violates invariants.
  struct ImageContents {
    TxnId txn = 0;
    std::map<Key, Value> pairs;
  };
  static ImageContents read_image(const void* slab, std::size_t bytes);

 private:
  struct Meta;
  struct Node;

  Node* node(PageNo page) const;
  const Meta* newest_meta() const;
  PageNo alloc_page(std::size_t tid, TxnId txn);
  void release_readers(TxnId txn) const;

  workloads::PersistApi& api_;
  char* slab_;
  std::size_t max_pages_;
  /// Bump frontier. Mutated only under writer_mutex_, but read by readers'
  /// bounds checks, hence atomic (relaxed is enough: a reader's snapshot
  /// never references pages at or past the frontier it raced with).
  std::atomic<PageNo> next_page_;

  mutable std::mutex writer_mutex_;
  mutable std::mutex reader_mutex_;
  mutable std::multiset<TxnId> active_readers_;
  std::vector<std::pair<TxnId, PageNo>> freelist_;
  std::vector<TxnId> page_txn_;  // last txn that owned (dirtied) each page

  TxnId last_committed_ = 0;
  DbStats stats_;
};

}  // namespace nvc::mdb
