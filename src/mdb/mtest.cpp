#include "mdb/mtest.hpp"

#include <atomic>
#include <string>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "mdb/btree.hpp"

namespace nvc::mdb {

namespace {

class MtestWorkload final : public workloads::Workload {
 public:
  explicit MtestWorkload(const MtestConfig& config) : config_(config) {}

  std::string name() const override { return "mdb"; }
  std::string problem_size(const workloads::WorkloadParams& p) const override {
    return std::to_string(inserts(p));
  }
  std::uint64_t instr_per_store() const override { return 35; }

  void run(workloads::PersistApi& api,
           const workloads::WorkloadParams& p) override {
    const std::uint64_t total = inserts(p);
    // Slab sized for the live tree plus COW churn (pages are recycled two
    // commits after being freed).
    const std::size_t max_pages = p.full ? 16384 : 4096;
    Db db(api, max_pages);

    const std::uint64_t per_thread = total / p.threads;
    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      Rng rng(p.seed * 31 + tid);
      std::uint64_t batches = 0;
      for (std::uint64_t done = 0; done < per_thread;
           done += config_.batch, ++batches) {
        // One durable write transaction (= FASE) per batch of puts.
        {
          Db::WriteTxn txn = db.begin_write(tid);
          for (std::uint64_t i = 0; i < config_.batch; ++i) {
            const Key key = rng();
            txn.put(key, key * 2 + 1);
            last_key_.store(key, std::memory_order_relaxed);
          }
          if (batches % config_.delete_every == config_.delete_every - 1) {
            txn.del(last_key_.load(std::memory_order_relaxed));
          }
          txn.commit();
        }
        // Periodic snapshot traversal (parallel with writers in MDB).
        if (batches % config_.traverse_every ==
            config_.traverse_every - 1) {
          Db::ReadTxn read = db.begin_read();
          read.scan(rng(), config_.traversal_length);
          api.compute(tid, 12 * config_.traversal_length);
        }
      }
    });
  }

 private:
  std::uint64_t inserts(const workloads::WorkloadParams& p) const {
    return p.full ? config_.inserts_full : config_.inserts_quick;
  }

  MtestConfig config_;
  std::atomic<Key> last_key_{0};  // shared delete-candidate, like Mtest's mix
};

}  // namespace

std::unique_ptr<workloads::Workload> make_mdb_workload(
    const MtestConfig& config) {
  return std::make_unique<MtestWorkload>(config);
}

}  // namespace nvc::mdb
