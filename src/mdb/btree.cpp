#include "mdb/btree.hpp"

#include <algorithm>
#include <cstring>

namespace nvc::mdb {

namespace {
constexpr std::uint64_t kMetaMagic = 0x4d44424d45544121ULL;  // "MDBMETA!"
constexpr std::size_t kNodeHeader = 8;
constexpr std::size_t kLeafCap = (kPageSize - kNodeHeader) / 16;       // 255
constexpr std::size_t kIntCap = (kPageSize - kNodeHeader - 4) / 12;    // 340
}  // namespace

struct Db::Meta {
  std::uint64_t magic;
  TxnId txn;
  PageNo root;
  PageNo next_page;
  std::uint64_t checksum;  // guards against a torn meta write at a crash

  std::uint64_t expected_checksum() const noexcept {
    std::uint64_t x = magic ^ (txn * 0x9e3779b97f4a7c15ULL) ^
                      (std::uint64_t{root} << 32) ^ next_page;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
  }
  bool intact() const noexcept {
    return magic == kMetaMagic && checksum == expected_checksum();
  }
};

struct Db::Node {
  std::uint16_t is_leaf;
  std::uint16_t n;
  std::uint32_t pad;

  Key* keys() noexcept { return reinterpret_cast<Key*>(this + 1); }
  const Key* keys() const noexcept {
    return reinterpret_cast<const Key*>(this + 1);
  }
  /// Leaf values live after the key array.
  Value* vals() noexcept { return reinterpret_cast<Value*>(keys() + kLeafCap); }
  const Value* vals() const noexcept {
    return reinterpret_cast<const Value*>(keys() + kLeafCap);
  }
  /// Internal children live after the (larger) internal key array.
  PageNo* children() noexcept {
    return reinterpret_cast<PageNo*>(keys() + kIntCap);
  }
  const PageNo* children() const noexcept {
    return reinterpret_cast<const PageNo*>(keys() + kIntCap);
  }

  /// First index with keys[i] >= key.
  std::size_t lower_bound(Key key) const noexcept {
    return static_cast<std::size_t>(
        std::lower_bound(keys(), keys() + n, key) - keys());
  }
};

static_assert(kLeafCap * 16 + kNodeHeader <= kPageSize);
static_assert(kIntCap * 12 + 4 + kNodeHeader <= kPageSize);

Db::Db(workloads::PersistApi& api, std::size_t max_pages)
    : api_(api), max_pages_(max_pages), next_page_(2) {
  NVC_REQUIRE(max_pages >= 8);
  slab_ = static_cast<char*>(api_.alloc(0, max_pages * kPageSize));
  page_txn_.assign(max_pages, 0);

  workloads::ApiFase fase(api_, 0);
  for (int slot = 0; slot < 2; ++slot) {
    auto* meta = reinterpret_cast<Meta*>(slab_ + slot * kPageSize);
    meta->magic = kMetaMagic;
    meta->txn = 0;
    meta->root = kNoPage;
    meta->next_page = 2;
    meta->checksum = meta->expected_checksum();
    api_.wrote(0, meta, sizeof(Meta));
  }
  api_.persist_barrier(0);
}

Db::Node* Db::node(PageNo page) const {
  NVC_ASSERT(page >= 2 && page < next_page_.load(std::memory_order_relaxed));
  return reinterpret_cast<Node*>(slab_ + std::size_t{page} * kPageSize);
}

const Db::Meta* Db::newest_meta() const {
  const auto* m0 = reinterpret_cast<const Meta*>(slab_);
  const auto* m1 = reinterpret_cast<const Meta*>(slab_ + kPageSize);
  if (!m0->intact()) return m1;
  if (!m1->intact()) return m0;
  return m0->txn >= m1->txn ? m0 : m1;
}

PageNo Db::alloc_page(std::size_t tid, TxnId txn) {
  (void)tid;
  // Reuse the oldest freed page if (a) the freeing txn has committed and one
  // more commit has happened since (the alternating meta must stay valid),
  // and (b) no live reader might still traverse it.
  if (!freelist_.empty()) {
    TxnId oldest_reader = ~TxnId{0};
    {
      std::lock_guard<std::mutex> lock(reader_mutex_);
      if (!active_readers_.empty()) oldest_reader = *active_readers_.begin();
    }
    const auto& [freed_txn, page] = freelist_.front();
    if (freed_txn + 1 <= last_committed_ && oldest_reader >= freed_txn) {
      const PageNo reusable = page;
      freelist_.erase(freelist_.begin());
      ++stats_.page_reuses;
      page_txn_[reusable] = txn;
      return reusable;
    }
  }
  const PageNo frontier = next_page_.load(std::memory_order_relaxed);
  NVC_REQUIRE(frontier < max_pages_, "MDB slab exhausted");
  next_page_.store(frontier + 1, std::memory_order_relaxed);
  const PageNo fresh = frontier;
  ++stats_.page_allocs;
  page_txn_[fresh] = txn;
  return fresh;
}

// --- ReadTxn ------------------------------------------------------------------

Db::ReadTxn Db::begin_read() const {
  std::lock_guard<std::mutex> lock(reader_mutex_);
  const Meta* meta = newest_meta();
  active_readers_.insert(meta->txn);
  return ReadTxn(this, meta->root, meta->txn);
}

void Db::release_readers(TxnId txn) const {
  std::lock_guard<std::mutex> lock(reader_mutex_);
  const auto it = active_readers_.find(txn);
  if (it != active_readers_.end()) active_readers_.erase(it);
}

Db::ReadTxn::~ReadTxn() {
  if (db_ != nullptr) db_->release_readers(txn_);
}

Db::ReadTxn::ReadTxn(ReadTxn&& other) noexcept
    : db_(other.db_), root_(other.root_), txn_(other.txn_) {
  other.db_ = nullptr;
}

std::optional<Value> Db::ReadTxn::get(Key key) const {
  PageNo page = root_;
  if (page == kNoPage) return std::nullopt;
  for (;;) {
    const Node* nd = db_->node(page);
    if (nd->is_leaf) {
      const std::size_t i = nd->lower_bound(key);
      if (i < nd->n && nd->keys()[i] == key) return nd->vals()[i];
      return std::nullopt;
    }
    std::size_t i = nd->lower_bound(key);
    if (i < nd->n && nd->keys()[i] == key) ++i;  // separator = first of right
    page = nd->children()[i];
  }
}

std::size_t Db::ReadTxn::scan(Key from, std::size_t limit,
                              void (*visit)(Key, Value, void*),
                              void* arg) const {
  if (root_ == kNoPage || limit == 0) return 0;
  // Iterative DFS with an explicit stack of (page, next child index).
  struct Frame {
    PageNo page;
    std::size_t idx;
  };
  std::vector<Frame> stack;
  std::size_t visited = 0;
  stack.push_back({root_, 0});
  // Position the stack at the first leaf entry >= from.
  while (!stack.empty() && visited < limit) {
    Frame& top = stack.back();
    const Node* nd = db_->node(top.page);
    if (nd->is_leaf) {
      std::size_t i = (visited == 0) ? nd->lower_bound(from) : 0;
      for (; i < nd->n && visited < limit; ++i) {
        if (nd->keys()[i] < from) continue;
        if (visit != nullptr) visit(nd->keys()[i], nd->vals()[i], arg);
        ++visited;
      }
      stack.pop_back();
      continue;
    }
    if (top.idx > nd->n) {
      stack.pop_back();
      continue;
    }
    std::size_t child_idx = top.idx;
    if (top.idx == 0 && visited == 0) {
      // Descend directly toward `from` on the initial path.
      child_idx = nd->lower_bound(from);
      if (child_idx < nd->n && nd->keys()[child_idx] == from) ++child_idx;
      top.idx = child_idx + 1;
    } else {
      ++top.idx;
    }
    stack.push_back({nd->children()[child_idx], 0});
  }
  return visited;
}

std::size_t Db::ReadTxn::count() const {
  if (root_ == kNoPage) return 0;
  // Simple recursive count via an explicit stack.
  std::vector<PageNo> stack{root_};
  std::size_t total = 0;
  while (!stack.empty()) {
    const PageNo page = stack.back();
    stack.pop_back();
    const Node* nd = db_->node(page);
    if (nd->is_leaf) {
      total += nd->n;
    } else {
      for (std::size_t i = 0; i <= nd->n; ++i) {
        stack.push_back(nd->children()[i]);
      }
    }
  }
  return total;
}

// --- WriteTxn ------------------------------------------------------------------

Db::WriteTxn Db::begin_write(std::size_t tid) {
  writer_mutex_.lock();  // released by commit()/abort()
  return WriteTxn(this, tid);
}

Db::WriteTxn::WriteTxn(Db* db, std::size_t tid) : db_(db), tid_(tid) {
  const Meta* meta = db_->newest_meta();
  root_ = meta->root;
  txn_ = meta->txn + 1;
  db_->api_.fase_begin(tid_);
}

Db::WriteTxn::~WriteTxn() {
  if (open_) abort();
}

Db::WriteTxn::WriteTxn(WriteTxn&& other) noexcept
    : db_(other.db_), tid_(other.tid_), root_(other.root_), txn_(other.txn_),
      allocated_(std::move(other.allocated_)),
      freed_(std::move(other.freed_)), open_(other.open_) {
  other.open_ = false;
  other.db_ = nullptr;
}

PageNo Db::WriteTxn::cow(PageNo page) {
  if (db_->page_txn_[page] == txn_) return page;  // already ours
  const PageNo copy = db_->alloc_page(tid_, txn_);
  std::memcpy(db_->node(copy), db_->node(page), kPageSize);
  // Report the copy at store-instruction granularity (one 8-byte store per
  // word) over the *used* regions of the node — what Atlas' instrumentation
  // would see from copying the live content. The per-line repetition is the
  // write-combining opportunity the paper measures on MDB (~652 stores per
  // FASE).
  const Node* nd = db_->node(copy);
  auto report = [&](const void* base, std::size_t len) {
    const char* p = static_cast<const char*>(base);
    for (std::size_t off = 0; off < len; off += 8) {
      db_->api_.wrote(tid_, p + off, 8);
    }
  };
  report(nd, kNodeHeader + nd->n * sizeof(Key));  // header + key prefix
  if (nd->is_leaf) {
    report(nd->vals(), nd->n * sizeof(Value));
  } else {
    report(nd->children(), (nd->n + 1) * sizeof(PageNo));
  }
  ++db_->stats_.page_copies;
  allocated_.push_back(copy);
  freed_.push_back(page);
  return copy;
}

std::optional<Value> Db::WriteTxn::get(Key key) const {
  PageNo page = root_;
  if (page == kNoPage) return std::nullopt;
  for (;;) {
    const Node* nd = db_->node(page);
    if (nd->is_leaf) {
      const std::size_t i = nd->lower_bound(key);
      if (i < nd->n && nd->keys()[i] == key) return nd->vals()[i];
      return std::nullopt;
    }
    std::size_t i = nd->lower_bound(key);
    if (i < nd->n && nd->keys()[i] == key) ++i;
    page = nd->children()[i];
  }
}

void Db::WriteTxn::put(Key key, Value value) {
  NVC_REQUIRE(open_, "txn already finished");
  ++db_->stats_.puts;
  if (root_ == kNoPage) {
    root_ = db_->alloc_page(tid_, txn_);
    allocated_.push_back(root_);
    Node* leaf = db_->node(root_);
    std::memset(leaf, 0, kNodeHeader);
    leaf->is_leaf = 1;
    leaf->n = 1;
    leaf->keys()[0] = key;
    leaf->vals()[0] = value;
    db_->api_.wrote(tid_, leaf, kNodeHeader);
    db_->api_.wrote(tid_, &leaf->keys()[0], sizeof(Key));
    db_->api_.wrote(tid_, &leaf->vals()[0], sizeof(Value));
    return;
  }
  root_ = cow(root_);
  Key promoted = 0;
  PageNo right = kNoPage;
  insert_rec(root_, key, value, &promoted, &right);
  if (right != kNoPage) {
    // Root split: grow the tree by one level.
    const PageNo new_root = db_->alloc_page(tid_, txn_);
    allocated_.push_back(new_root);
    Node* nr = db_->node(new_root);
    std::memset(nr, 0, kNodeHeader);
    nr->is_leaf = 0;
    nr->n = 1;
    nr->keys()[0] = promoted;
    nr->children()[0] = root_;
    nr->children()[1] = right;
    db_->api_.wrote(tid_, nr, kNodeHeader);
    db_->api_.wrote(tid_, &nr->keys()[0], sizeof(Key));
    db_->api_.wrote(tid_, &nr->children()[0], 2 * sizeof(PageNo));
    root_ = new_root;
  }
}

void Db::WriteTxn::insert_rec(PageNo page, Key key, Value value,
                              Key* promoted, PageNo* right) {
  Node* nd = db_->node(page);
  auto& api = db_->api_;
  *right = kNoPage;

  if (nd->is_leaf) {
    const std::size_t i = nd->lower_bound(key);
    if (i < nd->n && nd->keys()[i] == key) {
      nd->vals()[i] = value;  // overwrite
      api.wrote(tid_, &nd->vals()[i], sizeof(Value));
      return;
    }
    // Shift and insert.
    std::memmove(&nd->keys()[i + 1], &nd->keys()[i],
                 (nd->n - i) * sizeof(Key));
    std::memmove(&nd->vals()[i + 1], &nd->vals()[i],
                 (nd->n - i) * sizeof(Value));
    nd->keys()[i] = key;
    nd->vals()[i] = value;
    ++nd->n;
    api.wrote(tid_, nd, kNodeHeader);
    api.wrote(tid_, &nd->keys()[i], (nd->n - i) * sizeof(Key));
    api.wrote(tid_, &nd->vals()[i], (nd->n - i) * sizeof(Value));

    if (nd->n < kLeafCap) return;
    // Split the full leaf.
    const PageNo rp = db_->alloc_page(tid_, txn_);
    allocated_.push_back(rp);
    Node* rn = db_->node(rp);
    std::memset(rn, 0, kNodeHeader);
    rn->is_leaf = 1;
    const std::size_t half = nd->n / 2;
    rn->n = static_cast<std::uint16_t>(nd->n - half);
    std::memcpy(rn->keys(), &nd->keys()[half], rn->n * sizeof(Key));
    std::memcpy(rn->vals(), &nd->vals()[half], rn->n * sizeof(Value));
    nd->n = static_cast<std::uint16_t>(half);
    api.wrote(tid_, nd, kNodeHeader);
    api.wrote(tid_, rn, kNodeHeader);
    api.wrote(tid_, rn->keys(), rn->n * sizeof(Key));
    api.wrote(tid_, rn->vals(), rn->n * sizeof(Value));
    *promoted = rn->keys()[0];
    *right = rp;
    return;
  }

  // Internal node: descend with COW, then absorb a possible child split.
  std::size_t i = nd->lower_bound(key);
  if (i < nd->n && nd->keys()[i] == key) ++i;
  const PageNo child = cow(nd->children()[i]);
  if (child != nd->children()[i]) {
    nd->children()[i] = child;
    api.wrote(tid_, &nd->children()[i], sizeof(PageNo));
  }
  Key child_promoted = 0;
  PageNo child_right = kNoPage;
  insert_rec(child, key, value, &child_promoted, &child_right);
  if (child_right == kNoPage) return;

  std::memmove(&nd->keys()[i + 1], &nd->keys()[i], (nd->n - i) * sizeof(Key));
  std::memmove(&nd->children()[i + 2], &nd->children()[i + 1],
               (nd->n - i) * sizeof(PageNo));
  nd->keys()[i] = child_promoted;
  nd->children()[i + 1] = child_right;
  ++nd->n;
  api.wrote(tid_, nd, kNodeHeader);
  api.wrote(tid_, &nd->keys()[i], (nd->n - i) * sizeof(Key));
  api.wrote(tid_, &nd->children()[i + 1], (nd->n - i) * sizeof(PageNo));

  if (nd->n < kIntCap) return;
  // Split the full internal node.
  const PageNo rp = db_->alloc_page(tid_, txn_);
  allocated_.push_back(rp);
  Node* rn = db_->node(rp);
  std::memset(rn, 0, kNodeHeader);
  rn->is_leaf = 0;
  const std::size_t half = nd->n / 2;
  *promoted = nd->keys()[half];
  rn->n = static_cast<std::uint16_t>(nd->n - half - 1);
  std::memcpy(rn->keys(), &nd->keys()[half + 1], rn->n * sizeof(Key));
  std::memcpy(rn->children(), &nd->children()[half + 1],
              (rn->n + 1) * sizeof(PageNo));
  nd->n = static_cast<std::uint16_t>(half);
  api.wrote(tid_, nd, kNodeHeader);
  api.wrote(tid_, rn, kNodeHeader);
  api.wrote(tid_, rn->keys(), rn->n * sizeof(Key));
  api.wrote(tid_, rn->children(), (rn->n + 1) * sizeof(PageNo));
  *right = rp;
}

bool Db::WriteTxn::del(Key key) {
  NVC_REQUIRE(open_, "txn already finished");
  if (root_ == kNoPage) return false;
  root_ = cow(root_);
  const bool existed = delete_rec(root_, key);
  if (existed) ++db_->stats_.deletes;
  return existed;
}

bool Db::WriteTxn::delete_rec(PageNo page, Key key) {
  Node* nd = db_->node(page);
  auto& api = db_->api_;
  if (nd->is_leaf) {
    const std::size_t i = nd->lower_bound(key);
    if (i >= nd->n || nd->keys()[i] != key) return false;
    std::memmove(&nd->keys()[i], &nd->keys()[i + 1],
                 (nd->n - i - 1) * sizeof(Key));
    std::memmove(&nd->vals()[i], &nd->vals()[i + 1],
                 (nd->n - i - 1) * sizeof(Value));
    --nd->n;
    api.wrote(tid_, nd, kNodeHeader);
    if (nd->n > i) {
      api.wrote(tid_, &nd->keys()[i], (nd->n - i) * sizeof(Key));
      api.wrote(tid_, &nd->vals()[i], (nd->n - i) * sizeof(Value));
    }
    return true;
  }
  std::size_t i = nd->lower_bound(key);
  if (i < nd->n && nd->keys()[i] == key) ++i;
  const PageNo child = cow(nd->children()[i]);
  if (child != nd->children()[i]) {
    nd->children()[i] = child;
    api.wrote(tid_, &nd->children()[i], sizeof(PageNo));
  }
  // Lazy deletion: leaves may run empty; no rebalancing (scans skip them).
  return delete_rec(child, key);
}

void Db::WriteTxn::commit() {
  NVC_REQUIRE(open_, "txn already finished");
  open_ = false;
  Db* db = db_;
  auto& api = db->api_;

  // Durability point 1 (LMDB's data fsync): every page this transaction
  // wrote must be durable before the meta can point at it. A crash after
  // this barrier but before the meta flush leaves the old tree intact.
  api.persist_barrier(tid_);

  {
    // Publish the new root in the older meta slot; guarded by reader_mutex_
    // so begin_read never sees a half-written meta.
    std::lock_guard<std::mutex> lock(db->reader_mutex_);
    auto* meta = reinterpret_cast<Meta*>(db->slab_ +
                                         (txn_ % 2) * kPageSize);
    meta->magic = kMetaMagic;
    meta->txn = txn_;
    meta->root = root_;
    meta->next_page = db->next_page_.load(std::memory_order_relaxed);
    meta->checksum = meta->expected_checksum();
    api.wrote(tid_, meta, sizeof(Meta));
    db->last_committed_ = txn_;
  }
  for (const PageNo page : freed_) {
    db->freelist_.emplace_back(txn_, page);
  }
  ++db->stats_.commits;
  api.fase_end(tid_);  // FASE end: the policy flushes, then the commit record
  db->writer_mutex_.unlock();
}

void Db::WriteTxn::abort() {
  NVC_REQUIRE(open_, "txn already finished");
  open_ = false;
  Db* db = db_;
  // Give back everything we allocated; the committed tree never saw it.
  for (const PageNo page : allocated_) {
    db->page_txn_[page] = 0;
    db->freelist_.emplace_back(0, page);
  }
  db->api_.fase_end(tid_);
  db->writer_mutex_.unlock();
}

// --- recovery-side image reader ---------------------------------------------------

Db::ImageContents Db::read_image(const void* slab, std::size_t bytes) {
  NVC_REQUIRE(bytes >= 2 * kPageSize, "image too small for meta pages");
  const char* base = static_cast<const char*>(slab);
  const auto* m0 = reinterpret_cast<const Meta*>(base);
  const auto* m1 = reinterpret_cast<const Meta*>(base + kPageSize);
  const Meta* meta = nullptr;
  if (m0->intact() && m1->intact()) {
    meta = m0->txn >= m1->txn ? m0 : m1;
  } else if (m0->intact()) {
    meta = m0;
  } else if (m1->intact()) {
    meta = m1;
  }
  NVC_REQUIRE(meta != nullptr, "no intact meta page in image");

  ImageContents out;
  out.txn = meta->txn;
  if (meta->root == kNoPage) return out;

  const std::size_t num_pages = bytes / kPageSize;
  auto node_at = [&](PageNo page) -> const Node* {
    NVC_REQUIRE(page >= 2 && page < num_pages, "page out of image bounds");
    return reinterpret_cast<const Node*>(base + std::size_t{page} *
                                                    kPageSize);
  };

  struct Frame {
    PageNo page;
    Key lo;
    Key hi;
    std::size_t depth;
  };
  std::vector<Frame> stack{{meta->root, 0, ~Key{0}, 0}};
  std::size_t leaf_depth = ~std::size_t{0};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node* nd = node_at(f.page);
    for (std::size_t i = 1; i < nd->n; ++i) {
      NVC_REQUIRE(nd->keys()[i - 1] < nd->keys()[i],
                  "image keys out of order");
    }
    for (std::size_t i = 0; i < nd->n; ++i) {
      NVC_REQUIRE(nd->keys()[i] >= f.lo && nd->keys()[i] <= f.hi,
                  "image key outside separator range");
    }
    if (nd->is_leaf) {
      NVC_REQUIRE(nd->is_leaf == 1, "corrupt leaf flag");
      if (leaf_depth == ~std::size_t{0}) leaf_depth = f.depth;
      NVC_REQUIRE(leaf_depth == f.depth, "image leaves at different depths");
      for (std::size_t i = 0; i < nd->n; ++i) {
        out.pairs.emplace(nd->keys()[i], nd->vals()[i]);
      }
    } else {
      NVC_REQUIRE(nd->n >= 1, "image internal node without separators");
      for (std::size_t i = 0; i <= nd->n; ++i) {
        const Key lo = i == 0 ? f.lo : nd->keys()[i - 1];
        const Key hi = i == nd->n ? f.hi : nd->keys()[i];
        stack.push_back({nd->children()[i], lo, hi, f.depth + 1});
      }
    }
  }
  return out;
}

// --- invariants -----------------------------------------------------------------

void Db::check_invariants() const {
  const Meta* meta = newest_meta();
  if (meta->root == kNoPage) return;
  struct Frame {
    PageNo page;
    Key lo;
    Key hi;
    std::size_t depth;
  };
  std::vector<Frame> stack{{meta->root, 0, ~Key{0}, 0}};
  std::size_t leaf_depth = ~std::size_t{0};
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node* nd = node(f.page);
    for (std::size_t i = 1; i < nd->n; ++i) {
      NVC_REQUIRE(nd->keys()[i - 1] < nd->keys()[i], "keys out of order");
    }
    for (std::size_t i = 0; i < nd->n; ++i) {
      NVC_REQUIRE(nd->keys()[i] >= f.lo && nd->keys()[i] <= f.hi,
                  "key outside separator range");
    }
    if (nd->is_leaf) {
      if (leaf_depth == ~std::size_t{0}) leaf_depth = f.depth;
      NVC_REQUIRE(leaf_depth == f.depth, "leaves at different depths");
    } else {
      NVC_REQUIRE(nd->n >= 1, "internal node without separators");
      for (std::size_t i = 0; i <= nd->n; ++i) {
        const Key lo = i == 0 ? f.lo : nd->keys()[i - 1];
        const Key hi = i == nd->n ? f.hi : nd->keys()[i];
        stack.push_back({nd->children()[i], lo, hi, f.depth + 1});
      }
    }
  }
}

}  // namespace nvc::mdb
