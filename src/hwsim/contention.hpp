// Thread-count-dependent L1 contention levels.
//
// On the paper's 60-core machine each thread owns an L1, yet measured L1 miss
// ratios of even the flush-free BEST configuration rise with thread count
// (Table IV: 20% at 1 thread -> 71% at 32), which the authors attribute to
// co-runner interference and OS task scheduling. We reproduce that
// environmental effect as a per-access probability of losing a random way
// in the accessed set, growing with the number of co-running threads.
#pragma once

#include <cstddef>

namespace nvc::hwsim {

/// Contention-injection probability for a run with `threads` threads.
/// Calibrated so the BEST configuration's simulated L1 miss ratio follows
/// the paper's Table IV trend for water-spatial.
inline double contention_for_threads(std::size_t threads) {
  if (threads <= 1) return 0.0;
  if (threads <= 2) return 0.02;
  if (threads <= 4) return 0.05;
  if (threads <= 8) return 0.12;
  if (threads <= 16) return 0.18;
  return 0.25;
}

}  // namespace nvc::hwsim
