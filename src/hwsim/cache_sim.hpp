// Set-associative, write-back, write-allocate LRU hardware cache simulator.
//
// Used as the "L1 data cache" of the deterministic cost model that stands in
// for the paper's 60-core Xeon when reproducing the thread-scaling
// experiments (Fig. 5/6, Table IV). It models the two effects the paper
// measures:
//   * a clflush evicts-and-invalidates the line, so the next access misses
//     (the *indirect* cost of flushing, Section II-A);
//   * cache contention from co-running threads, injected as a configurable
//     per-access probability of losing a random line from the accessed set.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace nvc::hwsim {

struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;  // L1D default
  std::size_t associativity = 8;
  /// Per-access probability that contention invalidates one random way of
  /// the accessed set (models co-runner interference / OS scheduling noise).
  double contention_prob = 0.0;
  std::uint64_t seed = 1;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;        // dirty evictions (capacity/conflict)
  std::uint64_t flush_writebacks = 0;  // dirty lines written back by clflush
  std::uint64_t flush_ops = 0;

  double miss_ratio() const noexcept {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

class CacheSim {
 public:
  explicit CacheSim(const CacheConfig& config = {});

  /// Access one cache line; returns true on hit. Write accesses mark the
  /// line dirty.
  bool access(LineAddr line, bool is_write);

  /// clflush semantics: write back if dirty and invalidate. Returns true if
  /// the line was present (and therefore actually evicted).
  bool clflush(LineAddr line);

  /// clwb semantics: write back if dirty, line stays resident and clean.
  bool clwb(LineAddr line);

  /// Invalidate everything without counting writebacks (test helper).
  void clear();

  bool contains(LineAddr line) const;
  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }
  std::size_t num_sets() const noexcept { return sets_; }
  std::size_t associativity() const noexcept { return ways_; }

 private:
  struct Way {
    LineAddr tag = 0;
    std::uint64_t lru = 0;  // last-touch stamp
    bool valid = false;
    bool dirty = false;
  };

  std::size_t set_index(LineAddr line) const noexcept {
    return static_cast<std::size_t>(line) & (sets_ - 1);
  }
  Way* find(LineAddr line);
  void maybe_inject_contention(std::size_t set);

  std::size_t sets_;
  std::size_t ways_;
  double contention_prob_;
  std::vector<Way> ways_storage_;  // sets_ * ways_, row-major by set
  std::uint64_t clock_ = 0;
  CacheStats stats_;
  Rng rng_;
};

}  // namespace nvc::hwsim
