#include "hwsim/cache_sim.hpp"

#include "common/assert.hpp"

namespace nvc::hwsim {

CacheSim::CacheSim(const CacheConfig& config)
    : sets_(config.size_bytes / kCacheLineSize / config.associativity),
      ways_(config.associativity),
      contention_prob_(config.contention_prob),
      rng_(config.seed) {
  NVC_REQUIRE(config.associativity > 0);
  NVC_REQUIRE(sets_ > 0, "cache smaller than one set");
  NVC_REQUIRE(is_pow2(sets_), "number of sets must be a power of two");
  ways_storage_.resize(sets_ * ways_);
}

CacheSim::Way* CacheSim::find(LineAddr line) {
  const std::size_t set = set_index(line);
  Way* base = &ways_storage_[set * ways_];
  for (std::size_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == line) return &base[w];
  }
  return nullptr;
}

void CacheSim::maybe_inject_contention(std::size_t set) {
  if (contention_prob_ <= 0.0 || !rng_.chance(contention_prob_)) return;
  // A co-runner displaced one resident line of this set. Its writeback
  // happens on the other core's budget; we only lose residency here.
  Way* base = &ways_storage_[set * ways_];
  std::size_t valid_count = 0;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (base[w].valid) ++valid_count;
  }
  if (valid_count == 0) return;
  std::size_t pick = rng_.below(valid_count);
  for (std::size_t w = 0; w < ways_; ++w) {
    if (!base[w].valid) continue;
    if (pick-- == 0) {
      base[w].valid = false;
      base[w].dirty = false;
      return;
    }
  }
}

bool CacheSim::access(LineAddr line, bool is_write) {
  ++stats_.accesses;
  ++clock_;
  const std::size_t set = set_index(line);
  maybe_inject_contention(set);

  if (Way* hit = find(line)) {
    ++stats_.hits;
    hit->lru = clock_;
    hit->dirty = hit->dirty || is_write;
    return true;
  }

  ++stats_.misses;
  // Choose a victim: an invalid way if any, else the LRU way.
  Way* base = &ways_storage_[set * ways_];
  Way* victim = &base[0];
  for (std::size_t w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  if (victim->valid) {
    ++stats_.evictions;
    if (victim->dirty) ++stats_.writebacks;
  }
  victim->valid = true;
  victim->tag = line;
  victim->lru = clock_;
  victim->dirty = is_write;
  return false;
}

bool CacheSim::clflush(LineAddr line) {
  ++stats_.flush_ops;
  Way* way = find(line);
  if (way == nullptr) return false;
  if (way->dirty) ++stats_.flush_writebacks;
  way->valid = false;
  way->dirty = false;
  return true;
}

bool CacheSim::clwb(LineAddr line) {
  ++stats_.flush_ops;
  Way* way = find(line);
  if (way == nullptr) return false;
  if (way->dirty) ++stats_.flush_writebacks;
  way->dirty = false;
  return true;
}

void CacheSim::clear() {
  for (auto& w : ways_storage_) w = Way{};
}

bool CacheSim::contains(LineAddr line) const {
  const std::size_t set = set_index(line);
  const Way* base = &ways_storage_[set * ways_];
  for (std::size_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == line) return true;
  }
  return false;
}

}  // namespace nvc::hwsim
