#include "hwsim/cost_model.hpp"

#include <algorithm>

namespace nvc::hwsim {

CacheConfig CoreSim::default_l2(const CacheConfig& l1_config) {
  CacheConfig l2 = l1_config;
  l2.size_bytes = l1_config.size_bytes * 8;
  l2.seed = l1_config.seed * 31 + 7;
  return l2;
}

CoreSim::CoreSim(const CostParams& params, const CacheConfig& l1_config)
    : params_(params), l1_(l1_config), l2_(default_l2(l1_config)) {}

void CoreSim::execute(std::uint64_t n) {
  counters_.instructions += n;
  cycles_ += static_cast<double>(n) * params_.cpi;
}

void CoreSim::memory_access(LineAddr line, bool is_write) {
  counters_.instructions += 1;
  cycles_ += params_.cpi;
  if (l1_.access(line, is_write)) return;
  if (!params_.enable_l2) {
    cycles_ += static_cast<double>(params_.l1_miss_penalty);
    return;
  }
  // Inclusive two-level hierarchy: an L1 miss probes the private L2.
  if (l2_.access(line, is_write)) {
    cycles_ += static_cast<double>(params_.l2_hit_penalty);
  } else {
    cycles_ += static_cast<double>(params_.l2_hit_penalty +
                                   params_.memory_penalty);
  }
}

void CoreSim::flush(LineAddr line) {
  ++counters_.flushes;
  if (params_.invalidate_on_flush) {
    l1_.clflush(line);
    if (params_.enable_l2) l2_.clflush(line);
  } else {
    l1_.clwb(line);
    if (params_.enable_l2) l2_.clwb(line);
  }
  cycles_ += static_cast<double>(params_.flush_issue);

  // The NVRAM write engine services flushes asynchronously but serially.
  const double start = std::max(cycles_, engine_free_);
  engine_free_ = start + static_cast<double>(params_.nvram_write);

  // Bounded backlog: once more than max_backlog writes are outstanding the
  // core stalls until the backlog shrinks (write-combining buffer pressure).
  const double backlog_limit =
      static_cast<double>(params_.max_backlog * params_.nvram_write);
  if (engine_free_ - cycles_ > backlog_limit) {
    const double stall = engine_free_ - cycles_ - backlog_limit;
    counters_.stall_cycles += static_cast<std::uint64_t>(stall);
    cycles_ += stall;
  }
}

void CoreSim::drain() {
  ++counters_.fences;
  if (engine_free_ > cycles_) {
    counters_.stall_cycles +=
        static_cast<std::uint64_t>(engine_free_ - cycles_);
    cycles_ = engine_free_;
  }
  cycles_ += static_cast<double>(params_.fence);
}

}  // namespace nvc::hwsim
