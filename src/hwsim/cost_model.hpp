// Deterministic per-core cycle cost model.
//
// The paper times its techniques on a 60-core Xeon emulator; this host has a
// single core, so the thread-scaling experiments (Fig. 5/6, Table IV) are
// replayed through this model instead (see DESIGN.md substitution table).
// The model charges, per simulated core:
//
//   * instruction cost       — executed instructions x CPI;
//   * L1 miss penalty        — from the CacheSim, including the *indirect*
//                              flush cost (clflush invalidation => re-miss);
//   * flush issue + drain    — an asynchronous NVRAM write engine with
//                              bounded backlog: mid-FASE flushes overlap
//                              computation (the eager benefit), but the
//                              engine's bandwidth bounds the overlap, and a
//                              FASE-end fence drains the backlog (the lazy
//                              penalty).
#pragma once

#include <cstdint>

#include "hwsim/cache_sim.hpp"

namespace nvc::hwsim {

struct CostParams {
  double cpi = 1.0;                   // base cycles per instruction
  /// Penalty for an L1 miss that hits in L2, and for a miss in both levels.
  std::uint64_t l2_hit_penalty = 12;
  std::uint64_t memory_penalty = 60;
  /// Legacy single-level penalty, used when the L2 is disabled.
  std::uint64_t l1_miss_penalty = 30;
  bool enable_l2 = true;
  /// Core-occupied cycles per clflush. Calibrated to the paper's hardware:
  /// a serializing clflush on a 2.8 GHz Xeon E7 costs O(100 ns) of core
  /// time before the asynchronous memory-side write completes.
  std::uint64_t flush_issue = 300;
  std::uint64_t nvram_write = 500;    // engine cycles per line written back
  std::uint64_t fence = 80;           // sfence / drain-ordering cost
  /// Outstanding NVRAM writes the core may run ahead of. Atlas issues
  /// *ordered* clflush, which overlaps very little — hence a small window.
  std::uint64_t max_backlog = 2;
  /// clflush semantics (true): the flushed line is invalidated, so the next
  /// access re-misses — the *indirect* cost of flushing (paper Section
  /// II-A). clwb semantics (false): the line stays resident and clean; the
  /// paper notes Atlas avoids clwb for cross-thread staleness visibility.
  bool invalidate_on_flush = true;
};

struct CoreCounters {
  std::uint64_t instructions = 0;
  std::uint64_t flushes = 0;
  std::uint64_t fences = 0;
  std::uint64_t stall_cycles = 0;  // cycles blocked on engine backlog/drains
};

/// One simulated core: a cycle clock, an L1 + private L2 model, and an
/// NVRAM write engine.
class CoreSim {
 public:
  explicit CoreSim(const CostParams& params = {},
                   const CacheConfig& l1_config = {});

  /// Default private-L2 configuration derived from the L1's (8x capacity,
  /// same contention level — co-runners pollute both levels).
  static CacheConfig default_l2(const CacheConfig& l1_config);

  /// Retire `n` instructions of ordinary computation.
  void execute(std::uint64_t n);

  /// A data access to persistent memory (runs through the L1 model).
  void memory_access(LineAddr line, bool is_write);

  /// Issue clflush for a line: L1 invalidation + async NVRAM write.
  void flush(LineAddr line);

  /// Fence: wait until the NVRAM engine backlog drains (FASE-end stall).
  void drain();

  double cycles() const noexcept { return cycles_; }
  const CoreCounters& counters() const noexcept { return counters_; }
  const CacheStats& l1_stats() const noexcept { return l1_.stats(); }
  const CacheStats& l2_stats() const noexcept { return l2_.stats(); }
  CacheSim& l1() noexcept { return l1_; }
  CacheSim& l2() noexcept { return l2_; }

 private:
  CostParams params_;
  CacheSim l1_;
  CacheSim l2_;
  double cycles_ = 0.0;
  double engine_free_ = 0.0;  // time when the NVRAM write engine is idle
  CoreCounters counters_;
};

}  // namespace nvc::hwsim
