#include "structures/durable_map.hpp"

#include <bit>

#include "common/assert.hpp"

namespace nvc::structures {

std::uint64_t DurableMap::reverse_bits(std::uint64_t x) noexcept {
  x = ((x & 0x5555555555555555ULL) << 1) | ((x >> 1) & 0x5555555555555555ULL);
  x = ((x & 0x3333333333333333ULL) << 2) | ((x >> 2) & 0x3333333333333333ULL);
  x = ((x & 0x0F0F0F0F0F0F0F0FULL) << 4) | ((x >> 4) & 0x0F0F0F0F0F0F0F0FULL);
  return __builtin_bswap64(x);
}

DurableMap::DurableMap(PSpace& ps, std::size_t buckets)
    : ps_(ps), list_(&ps), mask_(buckets - 1), buckets_(buckets) {
  NVC_REQUIRE(buckets >= 1 && is_pow2(buckets), "bucket count: power of two");
  head_ = list_.make_head();  // sort 0 == so_dummy(0): bucket 0's dummy
  buckets_[0].store(head_, std::memory_order_release);
  for (std::size_t b = 1; b < buckets_.size(); ++b) {
    buckets_[b].store(0, std::memory_order_relaxed);
  }
}

POffset DurableMap::bucket_start(std::size_t b) {
  POffset start = buckets_[b].load(std::memory_order_acquire);
  if (start != 0) return start;
  // Parent-first lazy init: clear b's highest set bit. Searching for our
  // dummy from the parent's dummy keeps init cost O(bucket load), the
  // split-ordering trick.
  const std::size_t parent =
      b & ~(std::size_t{1} << (std::bit_width(b) - 1));
  const POffset from = bucket_start(parent);
  start = list_.insert_dummy(from, from, so_dummy(b));
  POffset expected = 0;
  buckets_[b].compare_exchange_strong(expected, start,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
  return buckets_[b].load(std::memory_order_acquire);
}

bool DurableMap::insert(std::uint64_t key, std::uint64_t value) {
  NVC_REQUIRE(key < (std::uint64_t{1} << 63), "keys must fit in 63 bits");
  const POffset start = bucket_start(key & mask_);
  return list_.insert(start, start, so_regular(key), key, value);
}

bool DurableMap::erase(std::uint64_t key, std::uint64_t* value_out) {
  NVC_REQUIRE(key < (std::uint64_t{1} << 63), "keys must fit in 63 bits");
  const POffset start = bucket_start(key & mask_);
  return list_.erase(start, start, so_regular(key), value_out);
}

bool DurableMap::contains(std::uint64_t key, std::uint64_t* value_out) {
  NVC_REQUIRE(key < (std::uint64_t{1} << 63), "keys must fit in 63 bits");
  const POffset start = bucket_start(key & mask_);
  return list_.contains(start, so_regular(key), value_out);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
DurableMap::recovered_contents() const {
  // Dummies are even sorts; mappings are odd. Recovery never consults the
  // volatile bucket table.
  return list_.recover(head_,
                       [](std::uint64_t sort) { return (sort & 1) != 0; });
}

}  // namespace nvc::structures
