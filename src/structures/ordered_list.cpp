#include "structures/ordered_list.hpp"

#include "common/assert.hpp"

namespace nvc::structures::detail {

namespace {

bool cas(std::atomic<std::uint64_t>& word, std::uint64_t expected,
         std::uint64_t desired) {
  return word.compare_exchange_strong(expected, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
}

}  // namespace

POffset OrderedList::make_head() {
  const POffset head = ps_->alloc_lines(1);
  ps_->word(head + kSort).store(0, std::memory_order_relaxed);
  ps_->word(head + kKey).store(0, std::memory_order_relaxed);
  ps_->word(head + kValue).store(0, std::memory_order_relaxed);
  ps_->word(head + kNext).store(0, std::memory_order_release);
  ps_->persist(head, kCacheLineSize);
  return head;
}

OrderedList::Find OrderedList::find(POffset start, std::uint64_t sort) {
  // Every link hop is a pload: the window this find returns — and any
  // verdict derived from it — depends on each traversed link, so each must
  // be durable (or its flush elided as already-durable) before the caller
  // acts. Node fields other than next are immutable and were persisted
  // before the node was ever linked, so plain loads suffice for them.
retry:
  POffset pred = start;
  std::uint64_t pred_w = ps_->pload(pred + kNext);
  // A stale-hint start may itself be marked: read through it (marked nodes
  // keep their forward links and the arena never reuses offsets) but never
  // CAS its word — only preds this traversal observed clean get unlinked.
  bool pred_clean = (pred_w & kMark) == 0;
  POffset curr = pred_w & kPtr;
  while (curr != 0) {
    ps_->yield();
    const std::uint64_t next_w = ps_->pload(curr + kNext);
    if ((next_w & kMark) != 0) {
      // curr is logically deleted; the mark was just ploaded (helped
      // durable). Unlink it — a failed unlink means pred moved: restart.
      if (pred_clean && !cas(ps_->word(pred + kNext), curr, next_w & kPtr)) {
        goto retry;
      }
      curr = next_w & kPtr;
      continue;
    }
    if (sort_of(curr) >= sort) break;
    pred = curr;
    pred_clean = true;
    curr = next_w & kPtr;
  }
  return {pred, curr};
}

bool OrderedList::insert(POffset start, POffset safe, std::uint64_t sort,
                         std::uint64_t key, std::uint64_t value,
                         POffset* node_out) {
  NVC_ASSERT(sort > 0, "sort 0 is the head dummy");
  POffset n = 0;
  for (;;) {
    ps_->yield();
    const Find w = find(start, sort);
    if (w.curr != 0 && sort_of(w.curr) == sort) {
      // Taken. The links that prove it were ploaded during find(); the
      // matched node's fields were durable before it was ever linked.
      return false;
    }
    if (n == 0) {
      n = ps_->alloc_lines(1);
      ps_->word(n + kSort).store(sort, std::memory_order_relaxed);
      ps_->word(n + kKey).store(key, std::memory_order_relaxed);
      ps_->word(n + kValue).store(value, std::memory_order_relaxed);
    }
    ps_->word(n + kNext).store(w.curr, std::memory_order_release);
    // Node before link: a durable link must never point at an unpersisted
    // node, so the fully initialized node line goes to media first.
    ps_->persist(n, kCacheLineSize);
    // Publish-and-persist: the link CAS and its write-back are one tagged
    // unit (helpers may elide only once the link is on media).
    if (ps_->cas_persist(w.pred + kNext, w.curr, n)) {
      if (node_out != nullptr) *node_out = n;
      return true;
    }
    // The window moved — or the hint start was dead (a marked pred's word
    // never matches an unmarked expected). Retry from the safe start.
    start = safe;
  }
}

POffset OrderedList::insert_dummy(POffset start, POffset safe,
                                  std::uint64_t sort) {
  POffset n = 0;
  for (;;) {
    ps_->yield();
    const Find w = find(start, sort);
    if (w.curr != 0 && sort_of(w.curr) == sort) {
      // Lost the race (or the dummy predates us): the existing dummy is
      // the bucket; find() ploaded the links that reach it.
      return w.curr;
    }
    if (n == 0) {
      n = ps_->alloc_lines(1);
      ps_->word(n + kSort).store(sort, std::memory_order_relaxed);
      ps_->word(n + kKey).store(0, std::memory_order_relaxed);
      ps_->word(n + kValue).store(0, std::memory_order_relaxed);
    }
    ps_->word(n + kNext).store(w.curr, std::memory_order_release);
    ps_->persist(n, kCacheLineSize);
    if (ps_->cas_persist(w.pred + kNext, w.curr, n)) return n;
    start = safe;
  }
}

bool OrderedList::erase(POffset start, POffset safe, std::uint64_t sort,
                        std::uint64_t* value_out) {
  for (;;) {
    ps_->yield();
    const Find w = find(start, sort);
    start = safe;  // any retry below resumes from the safe start
    if (w.curr == 0 || sort_of(w.curr) != sort) return false;
    const std::uint64_t next_w = ps_->pload(w.curr + kNext);
    if ((next_w & kMark) != 0) {
      // A competing eraser won. Our "absent" answer depends on its mark,
      // which the pload above just made durable-dependable.
      return false;
    }
    // Publish-and-persist: the mark CAS is the durable linearization point
    // — the mark reaches media before the erase returns, and the tagged
    // window covers the CAS itself so helper elisions stay sound.
    if (ps_->cas_persist(w.curr + kNext, next_w, next_w | kMark)) {
      if (value_out != nullptr) {
        *value_out =
            ps_->word(w.curr + kValue).load(std::memory_order_relaxed);
      }
      // Volatile cleanup only — never persisted; a stale durable link
      // through the marked node is skipped by recovery.
      ps_->yield();  // window: the mark is observable but not yet unlinked
      cas(ps_->word(w.pred + kNext), w.curr, next_w & kPtr);
      return true;
    }
  }
}

bool OrderedList::contains(POffset start, std::uint64_t sort,
                           std::uint64_t* value_out) {
  // Read-only traversal (no unlinking), same pload discipline as find():
  // whichever verdict comes out, every link it rests on is durable (or
  // elided-as-durable) by the time we return.
  POffset pred = start;
  POffset curr = ps_->pload(pred + kNext) & kPtr;
  while (curr != 0) {
    ps_->yield();
    const std::uint64_t next_w = ps_->pload(curr + kNext);
    const std::uint64_t s = sort_of(curr);
    if (s >= sort) {
      if (s != sort) return false;
      if ((next_w & kMark) != 0) {
        // Present but marked: absent. The ploaded mark carries the verdict.
        return false;
      }
      if (value_out != nullptr) {
        *value_out = ps_->word(curr + kValue).load(std::memory_order_relaxed);
      }
      return true;
    }
    pred = curr;
    curr = next_w & kPtr;
  }
  return false;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> OrderedList::recover(
    POffset head, bool (*keep)(std::uint64_t sort)) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  POffset curr = ps_->durable_u64(head + kNext) & kPtr;
  while (curr != 0) {
    const std::uint64_t next_w = ps_->durable_u64(curr + kNext);
    const std::uint64_t sort = ps_->durable_u64(curr + kSort);
    if ((next_w & kMark) == 0 && keep(sort)) {
      out.emplace_back(ps_->durable_u64(curr + kKey),
                       ps_->durable_u64(curr + kValue));
    }
    curr = next_w & kPtr;
  }
  return out;
}

}  // namespace nvc::structures::detail
