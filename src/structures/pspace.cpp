#include "structures/pspace.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace nvc::structures {

PSpace::PSpace(bool elide) : elide_(elide) {}

POffset PSpace::alloc_lines(std::size_t lines) {
  NVC_REQUIRE(lines > 0);
  const POffset off =
      bump_.fetch_add(lines * kCacheLineSize, std::memory_order_relaxed);
  NVC_REQUIRE(off + lines * kCacheLineSize <= size(),
              "PSpace arena exhausted — size the test's arena up");
  return off;
}

void PSpace::flush_range(POffset off, std::size_t len, bool writer) {
  NVC_ASSERT(len > 0 && off + len <= size());
  const LineAddr first = line_of(off);
  const LineAddr last = line_of(off + len - 1);
  for (LineAddr line = first; line <= last; ++line) {
    if (writer) {
      // Writer protocol: tag → write-back → untag. The helper-visible
      // pending count covers the whole window in which the write-back may
      // not have completed; an elision is legal only strictly after it.
      const core::FlushElisionTable::Tag tag = flit_.tag(line);
      if (bug_early_untag_) flit_.untag(line, tag);  // seeded bug
      yield();  // the window the turnstile parks writers in
      flush_line_impl(line);
      media_writes_.fetch_add(1, std::memory_order_relaxed);
      writer_flushes_.fetch_add(1, std::memory_order_relaxed);
      if (!bug_early_untag_) flit_.untag(line, tag);
    } else {
      yield();
      if (elide_ && !flit_.pending(line)) {
        // Every tagged write-back of this line completed: the bytes this
        // helper depends on are durable, the flush is redundant (FliT).
        helper_elisions_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      flush_line_impl(line);
      media_writes_.fetch_add(1, std::memory_order_relaxed);
      helper_flushes_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void PSpace::persist(POffset off, std::size_t len) {
  flush_range(off, len, /*writer=*/true);
}

bool PSpace::cas_persist(POffset off, std::uint64_t expected,
                         std::uint64_t desired) {
  NVC_ASSERT(off % sizeof(std::uint64_t) == 0 && off + 8 <= size());
  const LineAddr line = line_of(off);
  // Tag BEFORE the CAS: from a helper's point of view the publication and
  // its write-back are one pending unit. A zero count therefore proves the
  // published value is on media, not merely that no flush is running.
  const core::FlushElisionTable::Tag tag = flit_.tag(line);
  yield();
  const bool won = word(off).compare_exchange_strong(
      expected, desired, std::memory_order_acq_rel, std::memory_order_acquire);
  if (!won) {
    flit_.untag(line, tag);
    return false;
  }
  if (bug_early_untag_) flit_.untag(line, tag);  // seeded bug
  yield();  // the window the turnstile parks writers in
  flush_line_impl(line);
  media_writes_.fetch_add(1, std::memory_order_relaxed);
  writer_flushes_.fetch_add(1, std::memory_order_relaxed);
  if (!bug_early_untag_) flit_.untag(line, tag);
  return true;
}

void PSpace::persist_help(POffset off, std::size_t len) {
  flush_range(off, len, /*writer=*/false);
}

// --- HeapPSpace -------------------------------------------------------------

HeapPSpace::HeapPSpace(std::size_t bytes, bool elide, pmem::WearTracker* wear)
    : PSpace(elide), size_(bytes), wear_(wear) {
  NVC_REQUIRE(bytes >= 2 * kCacheLineSize);
  arena_ = std::make_unique<std::uint8_t[]>(bytes + kCacheLineSize);
  const auto raw = reinterpret_cast<std::uintptr_t>(arena_.get());
  aligned_ = reinterpret_cast<std::uint8_t*>(
      align_up(raw, kCacheLineSize));
  std::memset(aligned_, 0, bytes);
}

std::uint64_t HeapPSpace::durable_u64(POffset off) const {
  std::uint64_t v;
  std::memcpy(&v, aligned_ + off, sizeof v);
  return v;
}

void HeapPSpace::flush_line_impl(LineAddr line) {
  if (wear_ != nullptr) wear_->record(line);
}

// --- ShadowPSpace -----------------------------------------------------------

ShadowPSpace::ShadowPSpace(std::size_t bytes, bool elide)
    : PSpace(elide), shadow_(bytes) {}

std::uint64_t ShadowPSpace::claim_event() {
  return events_.fetch_add(1, std::memory_order_relaxed) + 1;
}

void ShadowPSpace::flush_line_impl(LineAddr line) {
  const std::uint64_t e = claim_event();
  if (e > freeze_event_) {
    // Power failed before this write-back: it never reaches the durable
    // image. Cut the shadow's own power too (belt and braces, exactly as
    // the crash rig's deterministic mode does) so no later path leaks.
    if (!shadow_.frozen()) shadow_.freeze();
    return;
  }
  shadow_.flush_line(line);
}

}  // namespace nvc::structures
