// Durable lock-free MPMC queue (Michael–Scott with FliT-style persistence,
// after Friedman et al.'s durable queue — PAPERS.md). DESIGN.md §13.
//
// Layout in the PSpace arena (offsets, 0 = null):
//   header line 0:  +0 head (atomic offset)   +8 tail (atomic offset)
//   node (1 line):  +0 value                  +8 next (atomic offset)
//
// Persistence protocol:
//   enqueue — persist the initialized node (value + null next) BEFORE the
//     link CAS; persist the predecessor's link after winning it (writer
//     protocol, tagged). A thread that finds the tail lagging HELPS: it
//     persist_help()s the dangling link before swinging the tail — the
//     FliT elision case: when the winning enqueuer's tagged flush already
//     completed, the helper skips its redundant flush.
//   dequeue — after winning the head CAS, persist the head word before
//     returning (the durable linearization point). The tail word is never
//     required durable: recovery ignores it and re-derives the tail by
//     walking the chain.
//
// The durable image is self-describing: recovered contents = the chain of
// durable next links from the durable head. The chain is prefix-closed
// (node-before-link write ordering), and every completed operation's
// effect is durable before it returns, so the recovered state is always
// explained by a linearization of the pre-crash history in which every
// completed op appears (durable linearizability — checked by
// src/testing/linearizability.hpp).
//
// No reclamation: the arena is a bump allocator and dequeued sentinels are
// simply abandoned (the tests and benchmarks size their arenas; ABA cannot
// occur because offsets are never reused).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "structures/pspace.hpp"

namespace nvc::structures {

class DurableQueue {
 public:
  /// Builds a fresh queue in `ps` (allocates the sentinel, persists the
  /// header). The space must be freshly constructed (header line free).
  explicit DurableQueue(PSpace& ps);

  void enqueue(std::uint64_t value);
  /// False when the queue is (linearizably) empty.
  bool dequeue(std::uint64_t* value_out);

  /// Recovery reader: queue contents a restarted process would observe in
  /// the space's durable image (front first).
  std::vector<std::uint64_t> recovered_contents() const;

 private:
  static constexpr POffset kHead = 0;  // header word offsets
  static constexpr POffset kTail = 8;
  static constexpr POffset kValue = 0;  // node word offsets
  static constexpr POffset kNext = 8;

  PSpace& ps_;
};

}  // namespace nvc::structures
