// Durable lock-free skiplist: a volatile tower index over the durable
// Harris OrderedList bottom level. DESIGN.md §13.
//
// Only the bottom level is persistent — it IS an OrderedList with
// sort = key, and every durability obligation (node-before-link,
// mark-persist, FliT helping) is discharged there. The towers are a
// volatile, insert-only search accelerator:
//
//   - tower height is DETERMINISTIC, h(key) = 1 + ctz(mix64(key)) capped at
//     kMaxLevel, so the structure's shape is a pure function of its key set
//     (no RNG: the turnstile-scheduled crash tests stay reproducible);
//   - towers store a bottom-node offset used only as a search START HINT.
//     A hint may go stale (its node erased): that is safe, because marked
//     nodes keep valid forward links in the arena (never reclaimed), so a
//     Harris find starting from one still reaches the target window;
//   - towers are never removed. Erase only touches the bottom list; a
//     stale tower merely costs a few extra hops.
//
// Recovery rebuilds from the durable bottom chain alone (towers are
// volatile and deterministic, so a restarted process regrows the identical
// index by re-inserting the recovered keys).
//
// Keys must be >= 1 (sort 0 is the bottom list's head dummy).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "structures/ordered_list.hpp"
#include "structures/pspace.hpp"

namespace nvc::structures {

class DurableSkiplist {
 public:
  static constexpr std::size_t kMaxLevel = 8;

  /// `max_towers` bounds the volatile tower pool; on exhaustion new keys
  /// simply get no tower (hints degrade, correctness does not).
  explicit DurableSkiplist(PSpace& ps, std::size_t max_towers = 1 << 12);

  /// False (no overwrite) when `key` is already present. Requires key >= 1.
  bool insert(std::uint64_t key, std::uint64_t value);
  /// False when absent.
  bool erase(std::uint64_t key, std::uint64_t* value_out = nullptr);
  bool contains(std::uint64_t key, std::uint64_t* value_out = nullptr);

  /// Recovery reader: (key, value) in key order from the durable bottom
  /// chain.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> recovered_contents()
      const;

  /// Deterministic tower height for `key` (exposed for the tests).
  static std::size_t height(std::uint64_t key) noexcept;

 private:
  struct Tower {
    std::uint64_t key = 0;
    POffset node = 0;  // bottom-list hint; may be stale (marked) — safe
    std::array<std::atomic<Tower*>, kMaxLevel> next{};
  };

  /// Bottom-list start hint: the bottom node of the largest indexed key
  /// strictly below `key` (the index head when none).
  POffset hint(std::uint64_t key);
  /// Link a tower for (key -> node) into levels [0, h). Insert-only CAS
  /// races are retried per level; pool exhaustion silently skips.
  void link_tower(std::uint64_t key, POffset node);

  PSpace& ps_;
  detail::OrderedList list_;
  POffset head_;  // bottom list head (sort 0)

  std::unique_ptr<Tower[]> pool_;
  std::size_t pool_cap_;
  std::atomic<std::size_t> pool_used_{0};
  Tower index_head_;
};

}  // namespace nvc::structures
