#include "structures/durable_queue.hpp"

#include "common/assert.hpp"

namespace nvc::structures {

namespace {

bool cas(std::atomic<std::uint64_t>& word, std::uint64_t expected,
         std::uint64_t desired) {
  return word.compare_exchange_strong(expected, desired,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire);
}

}  // namespace

DurableQueue::DurableQueue(PSpace& ps) : ps_(ps) {
  const POffset sentinel = ps_.alloc_lines(1);
  ps_.word(sentinel + kValue).store(0, std::memory_order_relaxed);
  ps_.word(sentinel + kNext).store(0, std::memory_order_relaxed);
  ps_.persist(sentinel, kCacheLineSize);
  ps_.word(kHead).store(sentinel, std::memory_order_relaxed);
  ps_.word(kTail).store(sentinel, std::memory_order_release);
  ps_.persist(kHead, 2 * sizeof(std::uint64_t));
}

void DurableQueue::enqueue(std::uint64_t value) {
  const POffset n = ps_.alloc_lines(1);
  ps_.word(n + kValue).store(value, std::memory_order_relaxed);
  ps_.word(n + kNext).store(0, std::memory_order_release);
  // Node before link: the durable chain must never reach an unpersisted
  // node, so the initialized node line goes to media first.
  ps_.persist(n, kCacheLineSize);
  for (;;) {
    ps_.yield();
    // Tail is volatile-only (recovery re-derives it), so plain loads; the
    // link word is ploaded — whatever this op concludes rests on it.
    const POffset last = ps_.word(kTail).load(std::memory_order_acquire);
    const POffset next = ps_.pload(last + kNext);
    if (last != ps_.word(kTail).load(std::memory_order_acquire)) continue;
    if (next == 0) {
      // Publish-and-persist: the link CAS and its write-back are one
      // tagged unit (helpers may elide only once the link is on media).
      if (ps_.cas_persist(last + kNext, 0, n)) {
        ps_.yield();  // window: tail observably lags — helpers kick in here
        cas(ps_.word(kTail), last, n);  // tail is volatile; recovery walks
        return;
      }
    } else {
      // Tail lags: the winning enqueuer's link was just ploaded (helped
      // durable, or elided as already-durable — the FliT case), so swing
      // the tail over it and retry.
      cas(ps_.word(kTail), last, next);
    }
  }
}

bool DurableQueue::dequeue(std::uint64_t* value_out) {
  for (;;) {
    ps_.yield();
    // Head and the head node's link are ploaded: an "empty" verdict (and
    // the position every successful dequeue pops from) rests on both being
    // durable-current — a racer's parked head write-back must not leave the
    // durable image behind the state this return reports.
    const POffset first = ps_.pload(kHead);
    const POffset last = ps_.word(kTail).load(std::memory_order_acquire);
    const POffset next = ps_.pload(first + kNext);
    if (first != ps_.word(kHead).load(std::memory_order_acquire)) continue;
    if (first == last) {
      if (next == 0) return false;  // linearizably empty
      // Tail lags behind a half-finished enqueue: its link was ploaded
      // above; swing the tail over it, exactly as the enqueue path does.
      cas(ps_.word(kTail), last, next);
      continue;
    }
    const std::uint64_t value =
        ps_.word(next + kValue).load(std::memory_order_acquire);
    // Durable linearization point: the new head reaches media before the
    // dequeue returns, and the tagged window covers the CAS itself.
    if (ps_.cas_persist(kHead, first, next)) {
      if (value_out != nullptr) *value_out = value;
      return true;
    }
  }
}

std::vector<std::uint64_t> DurableQueue::recovered_contents() const {
  std::vector<std::uint64_t> out;
  POffset curr = ps_.durable_u64(kHead);
  if (curr == 0) return out;  // header never persisted: empty queue
  for (;;) {
    const POffset next = ps_.durable_u64(curr + kNext);
    if (next == 0) break;
    out.push_back(ps_.durable_u64(next + kValue));
    curr = next;
  }
  return out;
}

}  // namespace nvc::structures
