#include "structures/durable_skiplist.hpp"

#include <bit>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace nvc::structures {

std::size_t DurableSkiplist::height(std::uint64_t key) noexcept {
  const std::uint64_t h = splitmix64_mix(key);
  const std::size_t z = static_cast<std::size_t>(std::countr_zero(h));
  return z + 1 < kMaxLevel ? z + 1 : kMaxLevel;
}

DurableSkiplist::DurableSkiplist(PSpace& ps, std::size_t max_towers)
    : ps_(ps), list_(&ps), pool_cap_(max_towers) {
  head_ = list_.make_head();
  pool_ = std::make_unique<Tower[]>(pool_cap_);
  index_head_.key = 0;
  index_head_.node = head_;
  for (auto& n : index_head_.next) n.store(nullptr, std::memory_order_relaxed);
}

POffset DurableSkiplist::hint(std::uint64_t key) {
  const Tower* pred = &index_head_;
  POffset best = head_;
  for (std::size_t lvl = kMaxLevel; lvl-- > 0;) {
    for (;;) {
      const Tower* next = pred->next[lvl].load(std::memory_order_acquire);
      if (next == nullptr || next->key >= key) break;
      pred = next;
      // Only a node currently observed UNMARKED may seed a traversal: an
      // erased node's frozen forward chain rejoins the live list at an
      // arbitrary later point, so starting inside it could skip the
      // target's live position entirely. Towers over erased nodes stay
      // linked (walked, never returned); `best` is monotone in key.
      if ((ps_.word(pred->node + detail::kNext)
               .load(std::memory_order_acquire) &
           detail::kMark) == 0) {
        best = pred->node;
      }
    }
  }
  return best;
}

void DurableSkiplist::link_tower(std::uint64_t key, POffset node) {
  const std::size_t h = height(key);
  const std::size_t i = pool_used_.fetch_add(1, std::memory_order_acq_rel);
  if (i >= pool_cap_) return;  // hints degrade; correctness lives below
  Tower* t = &pool_[i];
  t->key = key;
  t->node = node;
  for (std::size_t lvl = 0; lvl < h; ++lvl) {
    for (;;) {
      Tower* pred = &index_head_;
      for (;;) {
        Tower* next = pred->next[lvl].load(std::memory_order_acquire);
        if (next == nullptr || next->key >= key) break;
        pred = next;
      }
      Tower* succ = pred->next[lvl].load(std::memory_order_acquire);
      if (succ != nullptr && succ->key < key) continue;  // pred moved; rescan
      t->next[lvl].store(succ, std::memory_order_release);
      if (pred->next[lvl].compare_exchange_strong(succ, t,
                                                  std::memory_order_acq_rel,
                                                  std::memory_order_acquire)) {
        break;
      }
    }
  }
}

bool DurableSkiplist::insert(std::uint64_t key, std::uint64_t value) {
  NVC_REQUIRE(key >= 1, "key 0 is the bottom head dummy");
  const POffset start = hint(key);
  POffset node = 0;
  if (!list_.insert(start, head_, key, key, value, &node)) return false;
  // The tower is volatile and added after the durable insert completed; a
  // crash in between loses only a hint.
  link_tower(key, node);
  return true;
}

bool DurableSkiplist::erase(std::uint64_t key, std::uint64_t* value_out) {
  NVC_REQUIRE(key >= 1, "key 0 is the bottom head dummy");
  return list_.erase(hint(key), head_, key, value_out);
}

bool DurableSkiplist::contains(std::uint64_t key, std::uint64_t* value_out) {
  NVC_REQUIRE(key >= 1, "key 0 is the bottom head dummy");
  return list_.contains(hint(key), key, value_out);
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
DurableSkiplist::recovered_contents() const {
  return list_.recover(head_, [](std::uint64_t) { return true; });
}

}  // namespace nvc::structures
