// Durable lock-free ordered list (Harris, with FliT-style persistence) —
// the shared core under DurableMap (split-ordered) and DurableSkiplist
// (bottom level). DESIGN.md §13.
//
// Nodes are one cache line each in a PSpace arena, linked by offsets:
//
//   +0  sort  — total-order key (immutable after init)
//   +8  key   — user key (immutable)
//   +16 value — user value (immutable; no in-place update op)
//   +24 next  — atomic offset; LOW BIT = deletion mark (Harris)
//
// Persistence protocol (the durable-linearizability contract every op
// keeps: anything a completed operation's return value depends on is
// durable before it returns):
//
//   insert  — persist the fully initialized node line, THEN CAS the
//             predecessor link, THEN persist the link (writer protocol:
//             tagged, so helpers can elide). Node-before-link is the write
//             ordering that makes the durable chain prefix-closed: a
//             durable link never points at an unpersisted node.
//   erase   — CAS the mark into the victim's next word, persist it (the
//             durable linearization point), then best-effort volatile
//             unlink. Physical unlinks are never persisted — recovery
//             skips marked nodes by reading the durable mark.
//   lookup  — helping persists (FliT): a positive answer depends on the
//             matched node and the link that reached it; an "absent"
//             answer that observed a competing eraser's mark depends on
//             that mark. Both are persist_help — elidable exactly when the
//             writer's tagged flush already completed.
//
// Recovery reads the durable image only: walk the chain by durable next
// words, keep nodes the caller's predicate accepts whose durable mark is
// clear. The durable chain is always a consistent prefix of the logical
// list (see DESIGN.md §13 for the ordering argument).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "structures/pspace.hpp"

namespace nvc::structures::detail {

inline constexpr POffset kSort = 0;
inline constexpr POffset kKey = 8;
inline constexpr POffset kValue = 16;
inline constexpr POffset kNext = 24;
inline constexpr std::uint64_t kMark = 1;
inline constexpr std::uint64_t kPtr = ~kMark;

class OrderedList {
 public:
  explicit OrderedList(PSpace* ps) : ps_(ps) {}

  /// Allocate and initialize a head dummy (sort 0, smaller than every
  /// element sort) and persist it. Returns its offset.
  POffset make_head();

  /// Insert (key, value) at total-order position `sort`, searching from
  /// node `start`. False (and helping persists) when `sort` is taken. On
  /// success `node_out` (if given) receives the new node's offset.
  ///
  /// `safe` is the retry start: a node guaranteed to precede `sort` in the
  /// LIVE list forever (a head or an unerasable dummy). `start` may be a
  /// stale hint that gets marked (or already rejoined the dead chain past
  /// the target), in which case the publication CAS fails — every retry
  /// resumes from `safe` so the op cannot livelock on a dead window.
  bool insert(POffset start, POffset safe, std::uint64_t sort,
              std::uint64_t key, std::uint64_t value,
              POffset* node_out = nullptr);

  /// Insert a dummy node (split-order bucket sentinel) at `sort`; returns
  /// the offset of the dummy — preexisting or newly linked.
  POffset insert_dummy(POffset start, POffset safe, std::uint64_t sort);

  /// Mark + persist + best-effort unlink the node at `sort`. False when
  /// absent (or a competing eraser won — its mark is helped durable).
  bool erase(POffset start, POffset safe, std::uint64_t sort,
             std::uint64_t* value_out);

  /// Read-only membership probe with helping persists.
  bool contains(POffset start, std::uint64_t sort,
                std::uint64_t* value_out);

  /// Durable-image walk from `head`: (key, value) of every node whose
  /// durable mark is clear and whose sort `keep_dummies ? any : odd-sort
  /// elements only`... callers pass a predicate instead:
  std::vector<std::pair<std::uint64_t, std::uint64_t>> recover(
      POffset head, bool (*keep)(std::uint64_t sort)) const;

 private:
  struct Find {
    POffset pred;
    POffset curr;  // 0, or first node with sort >= target
  };

  /// Harris find: returns the insertion window, unlinking marked nodes on
  /// the way (their marks are helped durable first — an "absent" verdict
  /// downstream may depend on them). Unlinks are attempted only from a
  /// pred this traversal observed clean; a marked `start` is read through
  /// without CASing (its forward links still reach the live tail).
  Find find(POffset start, std::uint64_t sort);

  std::uint64_t sort_of(POffset n) noexcept {
    return ps_->word(n + kSort).load(std::memory_order_relaxed);
  }

  PSpace* ps_;
};

}  // namespace nvc::structures::detail
