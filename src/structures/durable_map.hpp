// Durable lock-free hash map: split-ordered list (Shalev & Shavit) over the
// durable Harris OrderedList. DESIGN.md §13.
//
// Everything durable lives in ONE ordered list whose sort keys are
// bit-reversed user keys:
//
//   regular node (a mapping):  sort = reverse_bits(key) | 1   (odd)
//   dummy node (a bucket):     sort = reverse_bits(bucket)    (even)
//
// Bit reversal makes bucket b's dummy an immediate predecessor of every key
// hashing to b, so buckets are just shortcuts INTO the list. The bucket
// table itself is volatile (a vector of atomic offsets, lazily initialized
// parent-first); recovery needs none of it — the durable list alone is the
// map: walk it, keep unmarked odd-sort nodes.
//
// Keys must be < 2^63 so that `reverse_bits(key) | 1` stays injective (the
// top bit of the key would collide with the forced low bit of the sort).
//
// Durability is inherited wholesale from OrderedList's protocol: regular
// inserts persist node-before-link, erases persist the mark, lookups help
// (FliT-elidable). Dummy insertion uses the same node-before-link protocol,
// so a durable chain never routes through an unpersisted dummy.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "structures/ordered_list.hpp"
#include "structures/pspace.hpp"

namespace nvc::structures {

class DurableMap {
 public:
  /// `buckets` must be a power of two. The table is fixed-size (no
  /// resizing): split-ordering makes growth easy but this suite only needs
  /// the durable face, and a fixed table keeps the crash-state space small.
  DurableMap(PSpace& ps, std::size_t buckets = 16);

  /// False (no overwrite) when `key` is already present.
  bool insert(std::uint64_t key, std::uint64_t value);
  /// False when absent.
  bool erase(std::uint64_t key, std::uint64_t* value_out = nullptr);
  bool contains(std::uint64_t key, std::uint64_t* value_out = nullptr);

  /// Recovery reader: the (key, value) mappings a restarted process would
  /// observe in the durable image (split-order = bit-reversed-key order).
  std::vector<std::pair<std::uint64_t, std::uint64_t>> recovered_contents()
      const;

  static std::uint64_t reverse_bits(std::uint64_t x) noexcept;
  static std::uint64_t so_regular(std::uint64_t key) noexcept {
    return reverse_bits(key) | 1;
  }
  static std::uint64_t so_dummy(std::uint64_t bucket) noexcept {
    return reverse_bits(bucket);
  }

 private:
  /// Offset of bucket b's dummy, initializing it (and, recursively, its
  /// parent — b with its highest set bit cleared) on first touch.
  POffset bucket_start(std::size_t b);

  PSpace& ps_;
  detail::OrderedList list_;
  std::size_t mask_;
  POffset head_;  // bucket 0's dummy = the list head (sort 0)
  std::vector<std::atomic<POffset>> buckets_;
};

}  // namespace nvc::structures
