// Persistence space for the durable lock-free structure suite (DESIGN.md
// §13).
//
// A PSpace is a flat, line-aligned arena of emulated NVRAM with the two
// persist primitives the structures are written against:
//
//   persist(off, len)      — the WRITER protocol for bytes this thread just
//                            wrote and must make durable before its next
//                            publication step. FliT-style (PAPERS.md): the
//                            line's pending counter is tagged for the
//                            duration of the write-back and untagged only
//                            after it completed, so a concurrent helper
//                            that reads the counter at zero *knows* the
//                            line is durable.
//   persist_help(off, len) — the HELPER protocol for bytes some other
//                            thread wrote but this thread's operation
//                            depends on (the classic "flush before you act
//                            on what you read" of durable lock-free
//                            structures). With elision on, the helper skips
//                            the flush exactly when the counter is zero —
//                            every tagged write-back of the line has
//                            completed, the bytes are already on media.
//                            With elision off (NVC_ELIDE=0), every helper
//                            flushes conservatively: the baseline the
//                            BM_ElisionHitRate benchmark compares against.
//
// A seeded yield hook fires at every persist step (and on request from the
// structures' retry loops), which is where the deterministic turnstile
// scheduler (src/testing/interleave.hpp) switches virtual threads — the
// tag→flush→untag window is exactly where elision bugs live, so the
// scheduler must be able to park a writer inside it.
//
// Two backends:
//   HeapPSpace   — plain heap arena, media writes only counted (optionally
//                  into a shared pmem::WearTracker). Thread-safe; used by
//                  the free-running tsan stress tests and the benchmarks.
//   ShadowPSpace — pmem::ShadowPmem arena with the event-clock power-cut
//                  model of the crash rig: every media write-back claims a
//                  monotonically increasing event index, freeze_at(e) drops
//                  all later write-backs, and the durable image is what a
//                  restarted process would see. Single-threaded by design
//                  (the turnstile scheduler serializes virtual threads).
//
// The seeded-bug hook set_bug_early_untag() reorders the writer protocol to
// tag→untag→flush: a helper arriving inside that window reads the counter
// at zero and elides a flush of a line whose write-back has NOT completed —
// the durable-linearizability harness must catch the resulting loss.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/elision.hpp"
#include "pmem/shadow.hpp"
#include "pmem/wear.hpp"

namespace nvc::structures {

/// Byte offset into a PSpace arena. 0 is reserved (null): the first line of
/// every arena holds the structure header, so no node ever lives at 0.
using POffset = std::uint64_t;

class PSpace {
 public:
  /// `elide`: arm FliT-style helper elision (NVC_ELIDE=1). Off = every
  /// persist_help flushes.
  explicit PSpace(bool elide);
  virtual ~PSpace() = default;

  PSpace(const PSpace&) = delete;
  PSpace& operator=(const PSpace&) = delete;

  // --- arena ----------------------------------------------------------------

  virtual std::uint8_t* base() noexcept = 0;
  virtual std::size_t size() const noexcept = 0;

  /// Bump-allocate `lines` whole cache lines (thread-safe). Returns the
  /// byte offset of the first line. Throws nothing; asserts on exhaustion
  /// (the tests size their arenas).
  POffset alloc_lines(std::size_t lines);

  /// Volatile view of the arena at `off` (what running threads read/write;
  /// the structures place std::atomic fields here).
  template <typename T>
  T* at(POffset off) noexcept {
    return reinterpret_cast<T*>(base() + off);
  }
  std::atomic<std::uint64_t>& word(POffset off) noexcept {
    return *reinterpret_cast<std::atomic<std::uint64_t>*>(base() + off);
  }

  /// Durable view (recovery): what a crash at this instant would leave.
  /// HeapPSpace has no crash model, so durable == volatile.
  virtual std::uint64_t durable_u64(POffset off) const = 0;

  // --- persist protocols ----------------------------------------------------

  void persist(POffset off, std::size_t len);
  void persist_help(POffset off, std::size_t len);

  /// Publish-and-persist (the FliT pstore shape): CAS `word(off)` with the
  /// line's pending count raised ACROSS the CAS, and on success keep it
  /// raised until the write-back completed. This is the primitive every
  /// shared-word publication (link CAS, deletion mark, head swing) must
  /// use: plain persist() tags only around the flush, so a helper probing
  /// between a raw CAS and a later persist() would read pending == 0 and
  /// elide a line whose new value never reached media. On CAS failure the
  /// tag is dropped without a flush (the transient nonzero count only makes
  /// concurrent helpers conservative). Returns the CAS result.
  bool cas_persist(POffset off, std::uint64_t expected,
                   std::uint64_t desired);

  /// Persistent load (FliT's pload): read a shared mutable word and make
  /// the read durable-dependable before acting on it — helper protocol, so
  /// the flush is ELIDED whenever the publishing writer's tagged write-back
  /// already completed. This is what durable linearizability demands of
  /// traversals: an operation's return may depend on every link it hopped,
  /// and each hop must be on media before the op returns. Elision turns the
  /// discipline from a flush-per-hop into a counter-probe-per-hop (the
  /// BM_ElisionHitRate lever).
  std::uint64_t pload(POffset off) {
    const std::uint64_t v = word(off).load(std::memory_order_acquire);
    persist_help(off, sizeof(std::uint64_t));
    return v;
  }

  /// Scheduler hook: called at every persist step; structures also call it
  /// at retry-loop heads so the turnstile can interleave at CAS races.
  void yield() {
    if (yield_hook_) yield_hook_();
  }
  void set_yield_hook(std::function<void()> hook) {
    yield_hook_ = std::move(hook);
  }

  bool elide_enabled() const noexcept { return elide_; }
  const core::FlushElisionTable& table() const noexcept { return flit_; }

  /// Seeded bug (checker validation): writer untags BEFORE the write-back
  /// instead of after — the reverted flush-pending decrement on the FliT
  /// face. Helpers then elide unflushed lines; the durable-linearizability
  /// oracle must flag the loss.
  void set_bug_early_untag(bool on) noexcept { bug_early_untag_ = on; }

  // --- counters (relaxed; exact under the turnstile) ------------------------

  std::uint64_t media_writes() const noexcept {
    return media_writes_.load(std::memory_order_relaxed);
  }
  std::uint64_t writer_flushes() const noexcept {
    return writer_flushes_.load(std::memory_order_relaxed);
  }
  std::uint64_t helper_flushes() const noexcept {
    return helper_flushes_.load(std::memory_order_relaxed);
  }
  std::uint64_t helper_elisions() const noexcept {
    return helper_elisions_.load(std::memory_order_relaxed);
  }

 protected:
  /// One media write-back of the line (line = arena byte offset >> 6).
  /// Must be thread-safe in free-running backends.
  virtual void flush_line_impl(LineAddr line) = 0;

 private:
  void flush_range(POffset off, std::size_t len, bool writer);

  bool elide_;
  bool bug_early_untag_ = false;
  core::FlushElisionTable flit_;
  std::function<void()> yield_hook_;
  std::atomic<POffset> bump_{kCacheLineSize};  // line 0 = header, 0 = null
  std::atomic<std::uint64_t> media_writes_{0};
  std::atomic<std::uint64_t> writer_flushes_{0};
  std::atomic<std::uint64_t> helper_flushes_{0};
  std::atomic<std::uint64_t> helper_elisions_{0};
};

/// Heap arena: media writes are counted, not modeled. For real-thread
/// stress tests (tsan) and benchmarks.
class HeapPSpace final : public PSpace {
 public:
  HeapPSpace(std::size_t bytes, bool elide,
             pmem::WearTracker* wear = nullptr);

  std::uint8_t* base() noexcept override { return aligned_; }
  std::size_t size() const noexcept override { return size_; }
  std::uint64_t durable_u64(POffset off) const override;

 protected:
  void flush_line_impl(LineAddr line) override;

 private:
  std::size_t size_;
  std::unique_ptr<std::uint8_t[]> arena_;
  std::uint8_t* aligned_;
  pmem::WearTracker* wear_;
};

/// ShadowPmem arena with the crash rig's event-clock power-cut model.
/// Single-threaded (turnstile-scheduled virtual threads only).
class ShadowPSpace final : public PSpace {
 public:
  ShadowPSpace(std::size_t bytes, bool elide);

  std::uint8_t* base() noexcept override { return shadow_.volatile_base(); }
  std::size_t size() const noexcept override { return shadow_.size(); }
  std::uint64_t durable_u64(POffset off) const override {
    return shadow_.durable_value<std::uint64_t>(off);
  }

  /// Claim the next event index. Media write-backs claim internally; the
  /// history recorder claims for invocations/returns so crash cuts and
  /// flush drops live on ONE clock.
  std::uint64_t claim_event();
  std::uint64_t events() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }

  /// Power fails once the clock passes `event`: later write-backs drop.
  void freeze_at(std::uint64_t event) noexcept { freeze_event_ = event; }

  pmem::ShadowPmem& shadow() noexcept { return shadow_; }
  const pmem::ShadowPmem& shadow() const noexcept { return shadow_; }

 protected:
  void flush_line_impl(LineAddr line) override;

 private:
  pmem::ShadowPmem shadow_;
  std::atomic<std::uint64_t> events_{0};
  std::uint64_t freeze_event_ = ~std::uint64_t{0};
};

}  // namespace nvc::structures
