// Persistent containers over the FASE runtime: durable data structures whose
// mutations are instrumented stores, so they are failure-atomic when used
// inside FASEs (with undo logging) and write-combined by the active policy.
//
//   PVector<T>  — bounded-capacity persistent vector (size + element array
//                 in persistent memory; push/pop/assign are pstore-ed).
//   PCounter    — persistent monotonic counter with saturating add.
//
// Layout is position independent (the header stores no pointers), so a
// container found via Runtime::get_root works across re-opens.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"
#include "runtime/runtime.hpp"

namespace nvc::runtime {

/// Bounded persistent vector. The control block and the element storage are
/// one allocation: [Header | T x capacity].
template <typename T>
class PVector {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// Allocate a new, empty vector on the runtime's persistent heap.
  static PVector create(Runtime& rt, std::size_t capacity) {
    NVC_REQUIRE(capacity > 0);
    auto* header = static_cast<Header*>(
        rt.pm_alloc(sizeof(Header) + capacity * sizeof(T)));
    FaseScope fase(rt);
    rt.pstore(header->magic, kMagic);
    rt.pstore(header->capacity, static_cast<std::uint64_t>(capacity));
    rt.pstore(header->size, std::uint64_t{0});
    return PVector(rt, header);
  }

  /// Adopt an existing vector (e.g. from Runtime::get_root after re-open).
  static PVector open(Runtime& rt, void* location) {
    auto* header = static_cast<Header*>(location);
    NVC_REQUIRE(header->magic == kMagic, "not a PVector");
    return PVector(rt, header);
  }

  /// Address to stash in Runtime::set_root.
  void* root() const noexcept { return header_; }

  std::size_t size() const noexcept {
    return static_cast<std::size_t>(header_->size);
  }
  std::size_t capacity() const noexcept {
    return static_cast<std::size_t>(header_->capacity);
  }
  bool empty() const noexcept { return header_->size == 0; }

  /// Append; must run inside a FASE for atomicity with other updates.
  void push_back(const T& value) {
    NVC_REQUIRE(header_->size < header_->capacity, "PVector full");
    rt_->pstore(data()[header_->size], value);
    rt_->pstore(header_->size, header_->size + 1);
  }

  void pop_back() {
    NVC_REQUIRE(header_->size > 0, "PVector empty");
    rt_->pstore(header_->size, header_->size - 1);
  }

  const T& operator[](std::size_t i) const noexcept {
    NVC_ASSERT(i < size());
    return data()[i];
  }

  void assign(std::size_t i, const T& value) {
    NVC_REQUIRE(i < size());
    rt_->pstore(data()[i], value);
  }

  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size(); }

 private:
  struct Header {
    std::uint64_t magic;
    std::uint64_t capacity;
    std::uint64_t size;
    std::uint64_t pad;  // keep elements 16-byte aligned within 64B lines
  };
  static constexpr std::uint64_t kMagic = 0x504e56454354ULL;  // "PNVECT"

  PVector(Runtime& rt, Header* header) : rt_(&rt), header_(header) {}

  T* data() const noexcept {
    return reinterpret_cast<T*>(header_ + 1);
  }

  Runtime* rt_;
  Header* header_;
};

/// Persistent counter: a durable uint64 with instrumented increments.
class PCounter {
 public:
  static PCounter create(Runtime& rt) {
    auto* cell = rt.pm_new<std::uint64_t>();
    FaseScope fase(rt);
    rt.pstore(*cell, std::uint64_t{0});
    return PCounter(rt, cell);
  }
  static PCounter open(Runtime& rt, void* location) {
    return PCounter(rt, static_cast<std::uint64_t*>(location));
  }

  void* root() const noexcept { return cell_; }
  std::uint64_t get() const noexcept { return *cell_; }

  void add(std::uint64_t delta) {
    const std::uint64_t now = *cell_;
    rt_->pstore(*cell_, now + delta <= now ? ~std::uint64_t{0} : now + delta);
  }

 private:
  PCounter(Runtime& rt, std::uint64_t* cell) : rt_(&rt), cell_(cell) {}
  Runtime* rt_;
  std::uint64_t* cell_;
};

}  // namespace nvc::runtime
