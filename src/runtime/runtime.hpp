// The FASE runtime: the piece Atlas implements with an LLVM pass plus a
// runtime library. Our LLVM-pass substitution (see DESIGN.md) is an explicit
// instrumentation API with identical semantics:
//
//   Runtime rt(config);
//   {
//     FaseScope fase(rt);              // lock-acquire in Atlas terms
//     rt.pstore(&node->next, value);   // instrumented persistent store
//   }                                  // FASE end: policy flush + log commit
//
// Responsibilities:
//   * owns the persistent data region and heap (pmem::PmemAllocator);
//   * maintains one ThreadContext per thread: caching policy instance, flush
//     backend, undo-log segment — all thread-private, lock-free on the hot
//     path (paper Section II-B);
//   * FASE nesting: only outermost begin/end reach the policy and the log
//     commit (a FASE is lock-scoped and may nest, unlike a transaction);
//   * durable undo logging + recovery for failure atomicity;
//   * aggregation of per-thread statistics for the benchmark harness.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/elision.hpp"
#include "core/fault_sink.hpp"
#include "core/policy.hpp"
#include "pmem/fault.hpp"
#include "pmem/flush.hpp"
#include "pmem/pmem_alloc.hpp"
#include "pmem/pmem_region.hpp"
#include "runtime/health.hpp"
#include "runtime/recovery.hpp"
#include "runtime/undo_log.hpp"

namespace nvc::runtime {

class Scrubber;
struct ScrubStats;

struct RuntimeConfig {
  std::string region_name = "default";
  std::size_t region_size = 64u << 20;  // data region bytes
  /// If false, open an existing region (recovery / restart path).
  bool fresh = true;

  core::PolicyKind policy = core::PolicyKind::kSoftCache;
  core::PolicyConfig policy_config;

  pmem::FlushKind flush = pmem::default_flush_kind();
  std::uint32_t simulated_flush_ns = 100;

  /// Flush-behind pipeline (NVC_FLUSH_ASYNC=1): data-line write-backs are
  /// enqueued to the shared background FlushWorker instead of executing on
  /// the application thread; commit points (drain) wait on a completion
  /// ticket. Synchronous flushing stays the default (DESIGN.md §8).
  bool async_flush = false;
  /// Per-thread flush ring capacity in lines (NVC_FLUSH_QUEUE; power of
  /// two). A full ring falls back to a synchronous local flush.
  std::size_t flush_queue_depth = 1024;
  /// Simulated backend only: modeled per-line device occupancy (pipelined
  /// issue interval) used by the async path. 0 = simulated_flush_ns / 4.
  std::uint32_t simulated_flush_issue_ns = 0;

  /// Durable undo logging (off for pure flush-counting experiments).
  bool undo_logging = false;
  /// When records become durable: per record (kStrict, Atlas' protocol) or
  /// once per epoch at ordered sync points (kBatched — see DESIGN.md §7 for
  /// the ordering invariant and the eADR/simulated-backend assumption).
  LogSyncMode log_sync = LogSyncMode::kStrict;
  std::size_t log_segment_size = 1u << 20;
  std::size_t max_threads = 64;

  /// Media-fault injection and tolerance (NVC_FAULT_*, DESIGN.md §10). When
  /// fault.enabled() the runtime owns a FaultInjector consulted by every
  /// flush backend, wraps the flush paths in retrying FaultTolerantSinks,
  /// and latches graceful degradation (async→sync flushing, batched→strict
  /// logging) once the media misbehaves. Default-constructed = disabled:
  /// the fault-free hot path is untouched.
  pmem::FaultConfig fault;

  /// Endurance accounting (NVC_WEAR, DESIGN.md §12): attach one shared
  /// pmem::WearTracker to every flush backend — application-thread and
  /// worker-side — so stats()/health() can report bytes written to media
  /// and per-line wear. Off by default: the write-back hot path then keeps
  /// a single null-pointer test.
  bool wear_tracking = false;

  /// FliT-style flush elision (NVC_ELIDE=1, DESIGN.md §13): one shared
  /// core::FlushElisionTable dedups scheduled write-backs across contexts —
  /// an eviction of a line whose write-back is already announced and not
  /// yet started is skipped, and every commit-point drain re-checks its
  /// elided lines. Off by default: the sink stack is unchanged.
  bool elide = false;
  /// Elision-table slot count (power of two; NVC_ELIDE_TABLE).
  std::size_t elide_table_slots = 4096;

  /// Commit-granularity data verification (NVC_VERIFY_DATA=1, DESIGN.md
  /// §14): every FASE commit publishes a CRC32C per touched data line into
  /// a shared LineVerifyTable; the online scrubber and the recovery
  /// pipeline's verify stage check lines against it. Off by default: the
  /// store path keeps a single null-pointer test.
  bool verify_data = false;

  /// Online scrubbing (NVC_SCRUB=1, DESIGN.md §14): register a background
  /// Scrubber on the flush-worker pool's idle hook — it re-reads the image
  /// when the write-back rings are empty, repairs detectably corrupt
  /// metadata from redundant copies, and quarantines lines the fault
  /// model marks bad. Requires nothing else; combines with verify_data for
  /// data-line checking.
  bool scrub = false;
  /// Data lines re-read per idle slice (NVC_SCRUB_BATCH).
  std::size_t scrub_batch_lines = 64;
  /// Restore detectably corrupt metadata in place (NVC_SCRUB_REPAIR;
  /// 0 = detect and count only).
  bool scrub_repair = true;
};

/// Statistics aggregated over all thread contexts.
struct RuntimeStats {
  std::uint64_t stores = 0;
  std::uint64_t combined = 0;
  std::uint64_t fases = 0;
  std::uint64_t flushes = 0;       // data lines written back to NVRAM
  std::uint64_t log_flushes = 0;   // undo-log lines written back
  std::uint64_t fences = 0;
  std::uint64_t log_fences = 0;    // fences on the undo-log path
  std::uint64_t instructions = 0;  // policy bookkeeping estimate
  std::uint64_t log_records = 0;
  std::uint64_t log_bytes = 0;
  std::uint64_t log_syncs = 0;     // log sync points (epochs in kBatched)
  // Media-fault tolerance (all zero when no injector is attached):
  std::uint64_t transient_faults = 0;  // rejected write-back attempts
  std::uint64_t flush_retries = 0;     // retry attempts issued
  std::uint64_t quarantined_lines = 0; // lines that exhausted retries
  std::uint64_t flush_degrades = 0;    // contexts latched async -> sync
  std::uint64_t log_degrades = 0;      // contexts latched batched -> strict
  // Write admission (NVC_ADMIT; zero under the default `always` mode):
  std::uint64_t bypassed_stores = 0;   // stores written through past a cache
  // Flush elision (NVC_ELIDE=1; zero when off):
  std::uint64_t elided_flushes = 0;     // scheduled write-backs skipped
  std::uint64_t elision_reflushes = 0;  // drain re-checks that flushed
  // Endurance accounting (NVC_WEAR=1; all zero when tracking is off):
  std::uint64_t media_line_writes = 0;   // write-backs that reached media
  std::uint64_t media_bytes_written = 0; // media_line_writes * line size
  std::uint64_t wear_lines_touched = 0;  // distinct lines written
  std::uint64_t wear_max_line_writes = 0;
  double wear_mean_line_writes = 0.0;
  double wear_leveling_skew = 0.0;       // max/mean - 1 (0 = leveled)
  std::size_t threads = 0;
  std::vector<std::size_t> cache_sizes;  // per-thread selected sizes (SC)

  double flush_ratio() const noexcept {
    return stores == 0
               ? 0.0
               : static_cast<double>(flushes) / static_cast<double>(stores);
  }
};

class Runtime {
 public:
  explicit Runtime(RuntimeConfig config);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- persistent heap ------------------------------------------------------

  /// Allocate persistent memory (durable location, not failure-atomic).
  void* pm_alloc(std::size_t size);
  void pm_free(void* p);

  /// Durable root pointer, the recovery entry point.
  void set_root(void* p);
  void* get_root() const;

  template <typename T>
  T* pm_new() {
    return static_cast<T*>(pm_alloc(sizeof(T)));
  }

  // --- FASEs and instrumented stores ---------------------------------------

  /// Enter a failure-atomic section on this thread (nestable).
  void fase_begin();

  /// Leave a FASE; the outermost end flushes per policy and commits the log.
  void fase_end();

  /// Instrumented persistent store: logs the old value (if logging), applies
  /// the write, and reports the line to the caching policy. Must run inside
  /// a FASE for atomicity; outside a FASE it degrades to store+report, as
  /// Atlas permits for unprotected persistent writes.
  void pstore(void* dst, const void* src, std::size_t len);

  template <typename T>
  void pstore(T& dst, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    pstore(&dst, &value, sizeof(T));
  }

  /// Report-only variant: the caller already wrote [addr, addr+len) (e.g.
  /// via a library like memcpy) and needs it tracked for persistence.
  void pwrote(const void* addr, std::size_t len);

  /// Mid-FASE persistence barrier: flush everything this thread's policy
  /// has buffered and fence. Used by stores with their own commit ordering
  /// (e.g. MDB writes data pages durably before publishing the new meta).
  void persist_barrier();

  // --- recovery -------------------------------------------------------------

  /// True if any thread's log segment holds uncommitted records — or
  /// corruption the salvage pipeline needs to classify and repair.
  bool needs_recovery() const;

  /// Run the salvage-mode recovery pipeline (runtime/recovery.hpp): roll
  /// back uncommitted FASEs to their last verifiable commit, classify every
  /// corruption, reformat unrecoverable log segments. Returns records
  /// undone; the full report is available from last_recovery() and the
  /// headline from health().
  std::size_t recover();

  /// Classified report of the most recent recover() (default-constructed
  /// if recovery never ran; see HealthReport::recovery_ran).
  RecoveryReport last_recovery() const;

  // --- introspection ---------------------------------------------------------

  /// Aggregate statistics over every thread that used this runtime.
  RuntimeStats stats() const;

  /// Aggregate media-health view: fault counters, quarantined lines, and
  /// which degradation latches have fired (runtime/health.hpp).
  HealthReport health() const;

  /// Drain this thread's context: flush anything buffered (program end).
  void thread_flush();

  const RuntimeConfig& config() const noexcept { return config_; }
  pmem::PmemAllocator& allocator() noexcept { return *allocator_; }

  /// Commit-time data checksums (null unless config.verify_data).
  const LineVerifyTable* verify_table() const noexcept {
    return verify_table_.get();
  }
  /// The online scrubber (null unless config.scrub). Exposed so tests and
  /// benchmarks can pump slices manually instead of waiting for pool idle.
  Scrubber* scrubber() noexcept { return scrubber_.get(); }
  /// Scrubber counters (all zero when scrubbing is off).
  ScrubStats scrub_stats() const;

  /// Remove the backing files (test teardown).
  void destroy_storage();

 private:
  struct ThreadContext;

  ThreadContext& ctx();
  ThreadContext& ctx_slow();
  void pwrote_in(ThreadContext& c, const void* addr, std::size_t len);
  void maybe_degrade(ThreadContext& c);
  /// Publish commit-time checksums for the FASE's touched lines
  /// (NVC_VERIFY_DATA; no-op otherwise).
  void publish_commit(ThreadContext& c);
  /// Raw-memory view of the live regions for the recovery pipeline.
  RegionView region_view(core::FlushSink* sink) const;

  RuntimeConfig config_;
  /// Media-fault decision source (null when config_.fault is disabled).
  /// Shared: the worker-side sink inside a FlushChannel keeps a reference,
  /// and a channel may outlive the Runtime (see open_flush_channel).
  std::shared_ptr<pmem::FaultInjector> injector_;
  /// Endurance accounting (null unless config_.wear_tracking). Shared for
  /// the same lifetime reason: worker-side backends hold a reference.
  std::shared_ptr<pmem::WearTracker> wear_;
  /// Flush-elision table (null unless config_.elide). One table for all
  /// contexts — cross-thread dedup is the point — and shared because the
  /// worker-side RetiringSink inside a FlushChannel may outlive us.
  std::shared_ptr<core::FlushElisionTable> elision_;
  std::unique_ptr<pmem::PmemAllocator> allocator_;
  pmem::PmemRegion log_region_;
  std::uint64_t instance_id_;
  /// Commit-time data-line checksums (null unless config_.verify_data).
  /// Shared: the scrubber holds a reference and is itself kept alive by the
  /// worker pool only through a weak_ptr, but belt-and-braces beats a
  /// dangle.
  std::shared_ptr<LineVerifyTable> verify_table_;
  /// Online scrubber (null unless config_.scrub). shared_ptr because the
  /// pool's idle hook tracks it via weak_ptr — destruction is deregistration.
  std::shared_ptr<Scrubber> scrubber_;
  /// Quarantine destination for scrub discoveries (allocated only when an
  /// armed injector exists). Separate from the per-context FaultStats —
  /// scrub findings are global, not attributable to one thread — and merged
  /// into health() alongside them.
  std::shared_ptr<core::FaultStats> scrub_faults_;
  /// Most recent salvage report (guarded by recovery_mutex_).
  mutable std::mutex recovery_mutex_;
  RecoveryReport last_recovery_;
  bool recovery_ran_ = false;

  /// Guards the persistent heap (allocate/free/root). Separate from
  /// contexts_mutex_ so allocation never contends with thread registration
  /// or stats().
  mutable std::mutex alloc_mutex_;

  mutable std::mutex contexts_mutex_;
  std::vector<std::unique_ptr<ThreadContext>> contexts_;
};

/// RAII failure-atomic section (maps to Atlas' lock-based FASE).
class FaseScope {
 public:
  explicit FaseScope(Runtime& rt) : rt_(rt) { rt_.fase_begin(); }
  ~FaseScope() { rt_.fase_end(); }
  FaseScope(const FaseScope&) = delete;
  FaseScope& operator=(const FaseScope&) = delete;

 private:
  Runtime& rt_;
};

}  // namespace nvc::runtime
