// Online scrubbing (DESIGN.md §14): a background pass that re-reads the
// persistent image while the runtime serves traffic, piggybacked on the
// flush-worker pool's idle hook (core::IdleTask) so it costs nothing while
// write-back rings hold work.
//
// Each slice (one idle_step) does a bounded amount of work:
//
//   metadata — the heap header and the per-slot undo-log header magics are
//     checked against redundant copies: a DRAM mirror of the heap header the
//     Runtime refreshes under its allocation lock at every legitimate
//     mutation (so the mirror is authoritative by construction), and the
//     compile-time log magic constant. Detectably corrupt metadata is
//     *repaired* in place and counted.
//   data lines — a batch of NVC_SCRUB_BATCH lines is swept per slice:
//     lines the FaultInjector's persistent-fault model marks bad are
//     quarantined into the PR 5 FaultStats machinery (commit suspension and
//     HealthReport pick them up exactly as write-path quarantines), and —
//     when NVC_VERIFY_DATA is on — clean, committed lines are verified
//     against their commit-time CRC32C; mismatches are counted and reported
//     (data has no redundant copy to repair from; honesty over heroics).
//
// Thread-safety: slices self-serialize on a try-lock (two pool workers never
// scrub concurrently; a busy scrubber is simply skipped), the heap-header
// check runs under the Runtime's allocation lock so it can never race a
// legitimate mutation, and the verify table's dirty bits suppress checks on
// lines with in-flight stores.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.hpp"
#include "core/fault_sink.hpp"
#include "core/flush_pipeline.hpp"
#include "pmem/fault.hpp"
#include "pmem/wear.hpp"
#include "runtime/recovery.hpp"

namespace nvc::runtime {

struct ScrubConfig {
  /// Data lines re-read per idle slice (NVC_SCRUB_BATCH).
  std::size_t batch_lines = 64;
  /// Restore detectably corrupt metadata from redundant copies
  /// (NVC_SCRUB_REPAIR; off = detect and count only).
  bool repair_metadata = true;
};

struct ScrubStats {
  std::uint64_t slices = 0;          // idle steps that did work
  std::uint64_t passes = 0;          // full sweeps of the data region
  std::uint64_t lines_scanned = 0;
  std::uint64_t metadata_repairs = 0;
  std::uint64_t checksum_mismatches = 0;
  std::uint64_t media_quarantines = 0;
};

class Scrubber final : public core::IdleTask {
 public:
  Scrubber(ScrubConfig config, void* data, std::size_t data_size, void* logs,
           std::size_t log_segment_size, std::size_t log_segments);

  // --- wiring (all optional; call before the first slice) -------------------

  /// The owner's lock guarding heap-header mutations (Runtime's allocation
  /// mutex). Header checks/repairs run under it; without one the header
  /// phase is skipped (no way to exclude a racing legitimate mutation).
  void set_header_lock(std::mutex* lock) { header_lock_ = lock; }
  /// Commit-time data checksums (NVC_VERIFY_DATA).
  void set_verify_table(std::shared_ptr<const LineVerifyTable> table) {
    table_ = std::move(table);
  }
  /// Persistent-fault model: lines it marks bad are quarantined.
  void set_injector(std::shared_ptr<pmem::FaultInjector> injector) {
    injector_ = std::move(injector);
  }
  /// Quarantine destination (shared with the runtime's fault machinery).
  void set_fault_stats(std::shared_ptr<core::FaultStats> stats) {
    fault_stats_ = std::move(stats);
  }
  /// Endurance accounting: metadata repairs are media writes too.
  void set_wear(std::shared_ptr<pmem::WearTracker> wear) {
    wear_ = std::move(wear);
  }

  /// Owner hook: the heap header was legitimately mutated — refresh the
  /// mirror. MUST be called under the same lock passed to set_header_lock
  /// (the Runtime calls it from its allocation paths).
  void refresh_header_mirror();

  // --- execution ------------------------------------------------------------

  /// One bounded slice (core::IdleTask). Returns true when anything was
  /// scanned; false when another slice is already running.
  bool idle_step() override;

  /// Manual pump for tests/benchmarks: same slice as idle_step.
  bool step() { return idle_step(); }

  /// Stop scrubbing and wait out any in-flight slice. After this returns no
  /// step will touch the region again — the owner calls it before unmapping
  /// (a pool worker may hold a locked shared_ptr mid-slice; the weak_ptr
  /// expiring alone cannot interrupt that).
  void shutdown();

  ScrubStats stats() const;

 private:
  void scrub_metadata();
  void scrub_data_batch();

  const ScrubConfig config_;
  char* const data_;
  const std::size_t data_size_;
  char* const logs_;
  const std::size_t log_segment_size_;
  const std::size_t log_segments_;

  std::mutex* header_lock_ = nullptr;
  std::shared_ptr<const LineVerifyTable> table_;
  std::shared_ptr<pmem::FaultInjector> injector_;
  std::shared_ptr<core::FaultStats> fault_stats_;
  std::shared_ptr<pmem::WearTracker> wear_;

  /// Serializes slices across pool workers (try-lock: a busy scrubber is
  /// skipped, never waited on).
  std::mutex slice_mutex_;
  std::atomic<bool> stopped_{false};
  /// Heap-header mirror (refreshed by the owner under header_lock_).
  std::vector<char> header_mirror_;
  bool mirror_valid_ = false;

  std::size_t cursor_ = 0;  // next data line to scan (under slice_mutex_)
  std::atomic<std::uint64_t> slices_{0};
  std::atomic<std::uint64_t> passes_{0};
  std::atomic<std::uint64_t> lines_scanned_{0};
  std::atomic<std::uint64_t> metadata_repairs_{0};
  std::atomic<std::uint64_t> checksum_mismatches_{0};
  std::atomic<std::uint64_t> media_quarantines_{0};
};

}  // namespace nvc::runtime
