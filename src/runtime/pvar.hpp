// Typed convenience wrappers over the instrumentation API, so application
// code reads like ordinary assignments (the role Atlas' LLVM pass plays).
#pragma once

#include <type_traits>

#include "runtime/runtime.hpp"

namespace nvc::runtime {

/// A reference to a persistent variable; assignment routes through
/// Runtime::pstore so the write is logged and reported to the policy.
template <typename T>
class PRef {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  PRef(Runtime& rt, T* location) noexcept : rt_(&rt), p_(location) {}

  PRef& operator=(const T& value) {
    rt_->pstore(*p_, value);
    return *this;
  }

  PRef& operator+=(const T& delta) { return *this = get() + delta; }
  PRef& operator-=(const T& delta) { return *this = get() - delta; }

  /// Reads are not instrumented: the software cache is write-combining and
  /// the paper's locality analysis considers only persistent writes.
  T get() const noexcept { return *p_; }
  operator T() const noexcept { return get(); }

  T* raw() const noexcept { return p_; }

 private:
  Runtime* rt_;
  T* p_;
};

/// A persistent array view with instrumented element assignment.
template <typename T>
class PArray {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  PArray(Runtime& rt, T* data, std::size_t count) noexcept
      : rt_(&rt), data_(data), count_(count) {}

  /// Allocate a persistent array from the runtime's heap.
  static PArray allocate(Runtime& rt, std::size_t count) {
    auto* data = static_cast<T*>(rt.pm_alloc(count * sizeof(T)));
    return PArray(rt, data, count);
  }

  std::size_t size() const noexcept { return count_; }
  PRef<T> operator[](std::size_t i) {
    NVC_ASSERT(i < count_);
    return PRef<T>(*rt_, data_ + i);
  }
  const T& read(std::size_t i) const noexcept {
    NVC_ASSERT(i < count_);
    return data_[i];
  }
  T* data() const noexcept { return data_; }

 private:
  Runtime* rt_;
  T* data_;
  std::size_t count_;
};

}  // namespace nvc::runtime
