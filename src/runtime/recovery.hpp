// Salvage-mode recovery (DESIGN.md §14).
//
// Before this module, recovery *trusted* the durable image: Runtime::recover
// rebuilt UndoLog objects over the log region, and any byte pattern the
// validation asserts didn't expect aborted the process. That is the wrong
// contract for the one code path whose whole job is reading a possibly
// half-written, bit-rotted, or truncated image. RecoveryManager treats the
// image as hostile input and runs a staged pipeline:
//
//   1. validate region   — heap header magic/version/seal/bump plausibility
//                          (PmemAllocator::inspect; clean-shutdown fast path)
//   2. walk logs         — per-segment UndoLog::inspect: every record is
//                          re-certified against its check word; nothing is
//                          trusted past the first failure
//   3. replay undo       — certified records applied newest-first with the
//                          target range bounds-checked against the data
//                          region; unrecoverable segments are reformatted
//                          only after their defects are reported
//   4. verify result     — optional per-line CRC32C check of the data image
//                          against commit-time checksums (NVC_VERIFY_DATA)
//
// No stage ever aborts or UBs on arbitrary bytes: every corruption is
// *classified* into the RecoveryReport (clean / salvaged / unrecoverable,
// with per-segment outcomes and human-readable defect strings) and the image
// is rolled back to the last verifiable commit. "Unrecoverable" is an honest
// answer — it is how the pipeline guarantees it never hands back silently
// wrong data.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/write_cache.hpp"
#include "runtime/health.hpp"

namespace nvc::runtime {

/// Commit-granularity data-line checksums (NVC_VERIFY_DATA). One slot per
/// cache line of the data region packing known|dirty|CRC32C into a single
/// atomic word. Committing threads publish a line's checksum at FASE end;
/// lines mid-mutation carry the dirty bit so the scrubber and the verify
/// stage never flag a legitimately in-flight line. Volatile by design: it is
/// rebuilt as FASEs commit, and crash tests supply their own table built
/// from committed snapshots (modeling a persisted checksum arena).
class LineVerifyTable {
 public:
  explicit LineVerifyTable(std::size_t region_bytes)
      : slots_((region_bytes + kCacheLineSize - 1) / kCacheLineSize) {}

  std::size_t lines() const noexcept { return slots_.size(); }

  /// A store touched this line inside (or outside) a FASE: suppress checks
  /// until the next commit publishes a fresh checksum.
  void mark_dirty(std::size_t idx) noexcept {
    if (idx < slots_.size()) {
      slots_[idx].fetch_or(kDirty, std::memory_order_relaxed);
    }
  }

  /// Commit point: publish the checksum of the line's committed content and
  /// clear the dirty bit.
  void note_commit(std::size_t idx, const void* line_bytes) noexcept;

  /// True when the line has a published checksum and no in-flight store.
  bool checkable(std::size_t idx) const noexcept {
    if (idx >= slots_.size()) return false;
    const std::uint64_t v = slots_[idx].load(std::memory_order_acquire);
    return (v & kKnown) != 0 && (v & kDirty) == 0;
  }

  /// Verify the line's current bytes; true = pass (or not checkable).
  bool verify(std::size_t idx, const void* line_bytes) const noexcept;

 private:
  static constexpr std::uint64_t kKnown = 1ull << 32;
  static constexpr std::uint64_t kDirty = 1ull << 33;

  std::vector<std::atomic<std::uint64_t>> slots_;
};

/// What became of one undo-log segment during salvage.
enum class SegmentOutcome : std::uint8_t {
  kClean,          // committed log; nothing to replay
  kRolledBack,     // certified records replayed, FASE rolled back
  kStillborn,      // never formatted (all-zero slot); harmless
  kUnrecoverable,  // corruption ate state the image depended on
};

const char* to_string(SegmentOutcome outcome);
const char* to_string(RecoveryOutcome outcome);

struct SegmentReport {
  std::size_t slot = 0;
  SegmentOutcome outcome = SegmentOutcome::kClean;
  std::uint32_t generation = 0;
  std::size_t records_certified = 0;  // records that passed their check word
  std::size_t records_applied = 0;    // records actually replayed
  std::string detail;                 // one-line diagnostic (empty = fine)
};

/// The classified result of a salvage pass. `outcome` is the headline:
/// kClean (nothing to do / clean shutdown), kSalvaged (uncommitted FASEs
/// rolled back to their last verifiable commit), kUnrecoverable (corruption
/// destroyed state the all-or-nothing contract depends on — the surviving
/// image must not be trusted as committed data).
struct RecoveryReport {
  RecoveryOutcome outcome = RecoveryOutcome::kClean;
  bool clean_shutdown = false;  // valid heap seal short-circuited the walk
  bool heap_header_ok = false;
  bool heap_bump_plausible = false;
  std::size_t records_undone = 0;
  std::size_t segments_clean = 0;
  std::size_t segments_rolled_back = 0;
  std::size_t segments_stillborn = 0;
  std::size_t segments_unrecoverable = 0;
  std::size_t data_lines_failed_verify = 0;
  std::vector<SegmentReport> segments;
  /// Every corruption the pipeline classified, human-readable.
  std::vector<std::string> defects;

  bool ok() const noexcept {
    return outcome != RecoveryOutcome::kUnrecoverable;
  }
  /// One-line operator summary.
  std::string summary() const;
};

/// Raw-memory view of a persistent image: the manager never owns mappings,
/// so the Runtime (live regions) and the crash/corruption rigs (frozen
/// ShadowPmem images) share one implementation.
struct RegionView {
  void* data = nullptr;             // data region base (heap header at 0)
  std::size_t data_size = 0;
  void* logs = nullptr;             // log region base; null = no undo logs
  std::size_t log_segment_size = 0;
  std::size_t log_segments = 0;
  /// False for images whose data region is raw cells with no PmemAllocator
  /// header at offset 0 (the crash rig's shadow images): stage 1 is skipped
  /// and the region's recoverability rides on the log walk alone.
  bool heap_header = true;
  /// Optional durability sink for the bytes recovery mutates (rollback
  /// writes, log reformats). Null = mutate the mapping only (fuzzer mode,
  /// where the image is already a frozen copy).
  core::FlushSink* sink = nullptr;
};

class RecoveryManager {
 public:
  explicit RecoveryManager(RegionView view) : view_(view) {}

  /// Stage-4 data verification against commit-time checksums (optional).
  void set_verify_table(const LineVerifyTable* table) { table_ = table; }

  /// Seeded bug for the corruption fuzzer (test_recovery_fuzz): skip all
  /// checksum verification — records are trusted on their length fields
  /// alone and the data-verify stage is bypassed. This is the classic
  /// recovery bug class (a "fast path" that stops validating); the fuzzer
  /// proves the harness catches it, i.e. that corrupted images now produce
  /// silently wrong data with a clean report.
  void set_bug_skip_verification(bool on) { bug_skip_verification_ = on; }

  /// True when any log segment holds work for run(): uncommitted certified
  /// records, or corruption that salvage must classify/repair.
  bool needs_recovery() const;

  /// Run the full pipeline (see file comment). Mutates the image: certified
  /// uncommitted records are rolled back and committed, unrecoverable
  /// segments are reformatted (after reporting) so the region reopens.
  RecoveryReport run();

 private:
  void salvage_segment(std::size_t slot, RecoveryReport& report);
  void verify_data(RecoveryReport& report);
  void note_defect(RecoveryReport& report, std::string text);
  /// Persist [p, p+len) through the view's sink, if any.
  void persist(const void* p, std::size_t len);

  RegionView view_;
  const LineVerifyTable* table_ = nullptr;
  bool bug_skip_verification_ = false;
};

}  // namespace nvc::runtime
