// Media-health introspection for the FASE runtime.
//
// When a FaultInjector is attached (NVC_FAULT_* knobs, or a real fallible
// backend in spirit), the retry/quarantine machinery of core::FaultTolerantSink
// accumulates per-thread FaultStats; Runtime::health() aggregates them into
// one report an operator (or a test) can poll: how much transient noise the
// media produced, which lines are permanently lost, and which graceful
// degradations have latched (DESIGN.md §10).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace nvc::runtime {

/// Headline verdict of a salvage-mode recovery pass (runtime/recovery.hpp).
enum class RecoveryOutcome : std::uint8_t {
  kClean,          // image committed; nothing to replay
  kSalvaged,       // uncommitted FASEs rolled back to the last verifiable
                   // commit; image is consistent
  kUnrecoverable,  // corruption destroyed state the all-or-nothing contract
                   // depends on — surviving bytes must not be trusted
};

/// Aggregated media-health view over every thread context of a Runtime.
struct HealthReport {
  /// A FaultInjector is wired into the flush paths (even if all-zero rates).
  bool faults_attached = false;

  /// Write-back attempts rejected transiently (before retry verdicts).
  std::uint64_t transient_faults = 0;
  /// Retry attempts issued by the fault-tolerant sinks.
  std::uint64_t flush_retries = 0;

  /// Union of every context's poisoned-line set, sorted. A quarantined line
  /// exhausted its retries: its content is NOT durable and the owning
  /// context has suspended commits (recovery pins at its last good commit).
  std::vector<LineAddr> quarantined_lines;

  /// Contexts whose flush-behind pipeline latched to synchronous flushing.
  std::size_t flush_degraded_contexts = 0;
  /// Contexts whose batched log latched to strict per-record durability.
  std::size_t log_degraded_contexts = 0;
  /// Contexts that stopped committing FASEs because of quarantined lines.
  std::size_t commit_suspended_contexts = 0;

  /// A WearTracker is wired into the flush paths (NVC_WEAR=1).
  bool wear_attached = false;
  /// Endurance accounting snapshot (all zero unless wear_attached):
  std::uint64_t media_bytes_written = 0;
  std::uint64_t wear_max_line_writes = 0;
  double wear_mean_line_writes = 0.0;
  /// max/mean - 1: 0 = perfectly leveled, large = one line absorbing a
  /// disproportionate share of the device's endurance budget.
  double wear_leveling_skew = 0.0;

  /// Salvage-mode recovery (runtime/recovery.hpp): set once Runtime::recover
  /// has run. The full classified RecoveryReport is available from
  /// Runtime::last_recovery(); this is the operator headline.
  bool recovery_ran = false;
  RecoveryOutcome recovery_outcome = RecoveryOutcome::kClean;
  std::uint64_t recovery_records_undone = 0;
  std::uint64_t recovery_defects = 0;

  /// Online scrubber (runtime/scrub.hpp): zero unless NVC_SCRUB armed it.
  bool scrub_attached = false;
  std::uint64_t scrub_lines_scanned = 0;
  std::uint64_t scrub_metadata_repairs = 0;  // restored from redundant copies
  std::uint64_t scrub_checksum_mismatches = 0;
  std::uint64_t scrub_media_quarantines = 0;  // injector-confirmed bad lines

  /// Any degradation latch fired or any line was lost.
  bool degraded() const noexcept {
    return flush_degraded_contexts > 0 || log_degraded_contexts > 0 ||
           commit_suspended_contexts > 0 || !quarantined_lines.empty() ||
           recovery_outcome == RecoveryOutcome::kUnrecoverable;
  }
};

}  // namespace nvc::runtime
