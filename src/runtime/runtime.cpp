#include "runtime/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstring>
#include <unordered_map>

#include "common/assert.hpp"
#include "core/elision_sink.hpp"
#include "core/fault_sink.hpp"
#include "core/flush_pipeline.hpp"
#include "core/log_ordered_sink.hpp"
#include "pmem/wear.hpp"
#include "runtime/backend_sink.hpp"
#include "runtime/scrub.hpp"

namespace nvc::runtime {

namespace {

std::uint64_t next_instance_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// The retry schedule the core fault-tolerant sinks run with, copied from
/// the (pmem-side) fault config so one env surface controls both layers.
core::RetryPolicy retry_policy(const RuntimeConfig& config) {
  return core::RetryPolicy{config.fault.max_retries, config.fault.backoff_ns,
                           config.fault.backoff_cap_ns};
}

/// Worker-side sink for fault mode: retry/quarantine wrapped around the
/// channel's IssueSink. It keeps shared ownership of the injector and the
/// per-thread FaultStats because the FlushChannel that owns this sink may
/// outlive both the ThreadContext and the Runtime (see open_flush_channel).
struct WorkerFaultSink final : core::FlushSink {
  WorkerFaultSink(std::unique_ptr<IssueSink> issue,
                  std::shared_ptr<pmem::FaultInjector> injector,
                  std::shared_ptr<core::FaultStats> stats,
                  core::RetryPolicy policy)
      : injector_(std::move(injector)),
        stats_(std::move(stats)),
        issue_(std::move(issue)),
        ft_(issue_.get(), stats_.get(), policy) {
    issue_->backend().set_fault_injector(injector_.get());
  }
  bool flush_line(LineAddr line) override { return ft_.flush_line(line); }
  void drain() override { ft_.drain(); }

  std::shared_ptr<pmem::FaultInjector> injector_;
  std::shared_ptr<core::FaultStats> stats_;
  std::unique_ptr<IssueSink> issue_;
  core::FaultTolerantSink ft_;
};

/// Open this thread's ring to the shared flush worker. The channel owns the
/// worker-side IssueSink (posted write-backs, private backend) so it stays
/// valid even if the worker still holds the channel after the runtime dies.
std::shared_ptr<core::FlushChannel> open_flush_channel(
    const RuntimeConfig& config,
    const std::shared_ptr<pmem::FaultInjector>& injector,
    const std::shared_ptr<core::FaultStats>& faults,
    const std::shared_ptr<pmem::WearTracker>& wear,
    const std::shared_ptr<core::FlushElisionTable>& elision) {
  if (!config.async_flush) return nullptr;
  // Sanitize the configured depth (it arrives from NVC_FLUSH_QUEUE in the
  // harness): clamp to a sane range and round up to the power of two the
  // ring requires, instead of aborting on a typo.
  std::size_t depth = config.flush_queue_depth;
  if (depth < 16) depth = 16;
  if (depth > (std::size_t{1} << 20)) depth = std::size_t{1} << 20;
  depth = std::bit_ceil(depth);
  auto issue =
      std::make_unique<IssueSink>(config.flush, config.simulated_flush_ns);
  // The worker backend shares ownership of the tracker (this channel may
  // outlive the Runtime); its recordings go through the tracker's atomics,
  // never its plain counters, so stats() stays race-free.
  if (wear != nullptr) issue->backend().set_wear_tracker(wear);
  std::unique_ptr<core::FlushSink> sink;
  // `faults` is only allocated for an armed injector (one that can actually
  // fire). An attached-but-idle injector keeps its hooks on the
  // application-thread backends but not here: the worker sink would need
  // shared ownership purely to consult a branch that always says kOk.
  if (injector != nullptr && faults != nullptr) {
    sink = std::make_unique<WorkerFaultSink>(std::move(issue), injector,
                                             faults, retry_policy(config));
  } else {
    sink = std::move(issue);
  }
  if (elision != nullptr) {
    // Decrement-before-write: the pending count clears where the write-back
    // actually executes, above retries (a retried line stays retired — any
    // elider that raced in meanwhile became an owner and rescheduled).
    sink = std::make_unique<core::RetiringSink>(std::move(sink), elision);
  }
  return core::FlushWorker::shared().open_channel(std::move(sink), depth);
}

/// Device timing model for the async sink: active only when the backend
/// resolves to the simulated kind (hardware kinds self-time). Occupancy
/// defaults to a quarter of the full write latency — a pipelined device
/// accepts lines ~4x faster than one synchronous strongly-ordered flush
/// completes (see DESIGN.md §8).
core::AsyncFlushSink::DeviceModel device_model(const RuntimeConfig& config) {
  core::AsyncFlushSink::DeviceModel model;
  const pmem::FlushBackend probe(config.flush, config.simulated_flush_ns);
  if (probe.kind() == pmem::FlushKind::kSimulated) {
    model.latency_ns = config.simulated_flush_ns;
    model.issue_ns = config.simulated_flush_issue_ns != 0
                         ? config.simulated_flush_issue_ns
                         : std::max<std::uint32_t>(
                               1, config.simulated_flush_ns / 4);
  }
  return model;
}

}  // namespace

struct Runtime::ThreadContext {
  ThreadContext(const RuntimeConfig& config, std::size_t slot_index,
                void* log_base,
                const std::shared_ptr<pmem::FaultInjector>& injector,
                const std::shared_ptr<pmem::WearTracker>& wear,
                const std::shared_ptr<core::FlushElisionTable>& elision_table)
      : slot(slot_index),
        backend(config.flush, config.simulated_flush_ns),
        log_backend(config.flush, config.simulated_flush_ns),
        sink(&backend),
        log_sink(&log_backend),
        // The retry/quarantine layer arms only when the injector can
        // actually fire. An attached-but-idle injector (NVC_FAULT_ATTACH
        // with every rate zero) keeps the backend hooks in place — that is
        // what BM_PstoreFaseFaultIdle prices — but a retry of a flush that
        // cannot fail is dead weight on every write-back.
        faults(injector != nullptr && !injector->idle()
                   ? std::make_shared<core::FaultStats>()
                   : nullptr),
        ft_data(faults != nullptr
                    ? std::make_unique<core::FaultTolerantSink>(
                          &sink, faults.get(), retry_policy(config))
                    : nullptr),
        ft_log(faults != nullptr
                   ? std::make_unique<core::FaultTolerantSink>(
                         &log_sink, faults.get(), retry_policy(config))
                   : nullptr),
        policy(core::make_policy(config.policy, config.policy_config)),
        log(log_base != nullptr
                ? std::make_unique<UndoLog>(
                      log_base, config.log_segment_size,
                      ft_log != nullptr
                          ? static_cast<core::FlushSink*>(ft_log.get())
                          : &log_sink,
                      config.log_sync)
                : nullptr),
        flush_channel(
            open_flush_channel(config, injector, faults, wear, elision_table)),
        retiring_fallback(
            flush_channel != nullptr && elision_table != nullptr
                ? std::make_unique<core::RetiringSink>(sync_data(),
                                                       elision_table)
                : nullptr),
        async_sink(flush_channel != nullptr
                       ? std::make_unique<core::AsyncFlushSink>(
                             flush_channel,
                             retiring_fallback != nullptr
                                 ? static_cast<core::FlushSink*>(
                                       retiring_fallback.get())
                                 : sync_data(),
                             device_model(config))
                       : nullptr),
        elision(elision_table),
        eliding_sink(elision != nullptr
                         ? std::make_unique<core::ElidingSink>(
                               async_sink != nullptr
                                   ? static_cast<core::FlushSink*>(
                                         async_sink.get())
                                   : sync_data(),
                               elision,
                               /*immediate=*/async_sink == nullptr)
                         : nullptr),
        ordered_sink(eliding_sink != nullptr
                         ? static_cast<core::FlushSink*>(eliding_sink.get())
                         : (async_sink != nullptr
                                ? static_cast<core::FlushSink*>(
                                      async_sink.get())
                                : sync_data()),
                     log.get()),
        ordered_sync(async_sink != nullptr && faults != nullptr
                         ? std::make_unique<core::LogOrderedSink>(sync_data(),
                                                                  log.get())
                         : nullptr) {
    if (injector != nullptr) {
      backend.set_fault_injector(injector.get());
      log_backend.set_fault_injector(injector.get());
    }
    if (wear != nullptr) {
      backend.set_wear_tracker(wear);
      log_backend.set_wear_tracker(wear);
    }
  }

  /// The synchronous data path: the retrying decorator when faults are on,
  /// else the bare backend sink. Used directly (sync mode), as the async
  /// sink's local overflow/fallback sink, and as the degraded route.
  core::FlushSink* sync_data() noexcept {
    return ft_data != nullptr ? static_cast<core::FlushSink*>(ft_data.get())
                              : &sink;
  }

  /// The sink policies flush into. With a log, data flushes are routed
  /// through the ordering decorator so log entries are durable before any
  /// line they cover (the batched-mode invariant; a cheap no-op in strict
  /// mode, where record() already synced). The decorator wraps the async
  /// sink when the flush-behind pipeline is on — the log sync therefore
  /// happens at *enqueue* time, before a line can enter the ring. Once the
  /// async→sync degradation latch fires, traffic reroutes to the ordered
  /// synchronous (retrying) path and the ring is never fed again.
  core::FlushSink& data_sink() noexcept {
    if (flush_degraded) {
      // Degraded route bypasses elision: the medium is already misbehaving,
      // so every write-back goes straight to the retrying synchronous path.
      if (ordered_sync) return *ordered_sync;
      return *sync_data();  // no log: plain retrying synchronous path
    }
    if (log) return ordered_sink;
    if (eliding_sink) return *eliding_sink;
    if (async_sink) return *async_sink;
    return *sync_data();
  }

  std::size_t slot;
  pmem::FlushBackend backend;      // data-line flushes (the paper's metric)
  pmem::FlushBackend log_backend;  // undo-log persistence traffic
  BackendSink sink;
  BackendSink log_sink;
  // Fault tolerance (all null in fault-free runs and under an idle
  // injector — the hot path then touches none of this). `faults` is shared
  // with the worker-side sink inside flush_channel, which may outlive this
  // context.
  std::shared_ptr<core::FaultStats> faults;
  std::unique_ptr<core::FaultTolerantSink> ft_data;  // retry over sink
  std::unique_ptr<core::FaultTolerantSink> ft_log;   // retry over log_sink
  std::unique_ptr<core::Policy> policy;
  std::unique_ptr<UndoLog> log;
  /// Flush-behind pipeline state (async mode only). Declared before
  /// ordered_sink (which points into async_sink) and destroyed after it;
  /// the AsyncFlushSink destructor drains the ring while the data region
  /// is still mapped (contexts die before the allocator in ~Runtime).
  std::shared_ptr<core::FlushChannel> flush_channel;
  /// Elision + async: the ring-full overflow fallback executes write-backs
  /// locally, bypassing the worker-side RetiringSink, so the fallback sink
  /// must retire too — every owner path retires exactly once, whichever
  /// side performs the write.
  std::unique_ptr<core::RetiringSink> retiring_fallback;
  std::unique_ptr<core::AsyncFlushSink> async_sink;
  /// Flush elision (NVC_ELIDE only; both null otherwise). The eliding sink
  /// sits below the LogOrderedSink — the log sync for a line runs before
  /// the elide/forward decision — and above the async sink/ring.
  std::shared_ptr<core::FlushElisionTable> elision;
  std::unique_ptr<core::ElidingSink> eliding_sink;
  core::LogOrderedSink ordered_sink;
  /// Degraded sync route (fault+async+log only): ordering decorator over
  /// the retrying synchronous sink, bypassing the ring.
  std::unique_ptr<core::LogOrderedSink> ordered_sync;
  std::uint32_t fase_depth = 0;
  /// Data-region line indices this FASE has touched (NVC_VERIFY_DATA only;
  /// stays empty otherwise). fase_end publishes their commit-time checksums
  /// into the shared LineVerifyTable after a successful log commit.
  std::vector<std::size_t> touched_lines;
  // Graceful-degradation latches (one-way; evaluated at outermost
  // fase_begin, except commit suspension which fires at fase_end):
  bool flush_degraded = false;
  bool log_degraded = false;
  /// A quarantined line means some write-back of this context is
  /// permanently lost; committing would truncate the undo records that
  /// still cover it. Suspending commits pins recovery at the last good
  /// commit, preserving all-or-nothing (data since then is sacrificed).
  bool commit_suspended = false;
};

Runtime::Runtime(RuntimeConfig config)
    : config_(std::move(config)), instance_id_(next_instance_id()) {
  NVC_REQUIRE(config_.region_size >= (1u << 16));
  NVC_REQUIRE(config_.max_threads >= 1);

  if (config_.fault.enabled()) {
    injector_ = std::make_shared<pmem::FaultInjector>(config_.fault);
  }
  if (config_.wear_tracking) {
    wear_ = std::make_shared<pmem::WearTracker>();
  }
  if (config_.elide) {
    elision_ =
        std::make_shared<core::FlushElisionTable>(config_.elide_table_slots);
  }

  pmem::PmemRegion data =
      config_.fresh
          ? pmem::PmemRegion::create(config_.region_name, config_.region_size)
          : pmem::PmemRegion::open(config_.region_name);
  allocator_ =
      std::make_unique<pmem::PmemAllocator>(std::move(data), config_.fresh);
  if (!config_.fresh) {
    // Consume the clean-shutdown proof before any mutation: a crash from
    // here on must reopen as *unsealed* (the seal only ever vouches for an
    // image no live runtime can still be dirtying).
    allocator_->unseal();
    pmem::FlushBackend backend(config_.flush, config_.simulated_flush_ns);
    backend.flush_range(static_cast<char*>(allocator_->region().base()) +
                            pmem::PmemAllocator::seal_offset(),
                        sizeof(std::uint64_t));
    backend.fence();
  }
  if (config_.verify_data) {
    verify_table_ =
        std::make_shared<LineVerifyTable>(allocator_->region().size());
  }
  // Contexts hash admission-doorkeeper slots relative to the region base so
  // bypass/readmit decisions replay bit-for-bit across processes (ASLR moves
  // the mapping; line offsets within the region do not).
  config_.policy_config.admission.line_base =
      reinterpret_cast<std::uintptr_t>(allocator_->region().base()) /
      kCacheLineSize;

  if (config_.undo_logging) {
    const std::string log_name = config_.region_name + ".log";
    const std::size_t log_size =
        config_.log_segment_size * config_.max_threads;
    if (config_.fresh || !pmem::PmemRegion::exists(log_name)) {
      log_region_ = pmem::PmemRegion::create(log_name, log_size);
      pmem::FlushBackend backend(config_.flush, config_.simulated_flush_ns);
      BackendSink sink(&backend);
      for (std::size_t s = 0; s < config_.max_threads; ++s) {
        UndoLog(static_cast<char*>(log_region_.base()) +
                    s * config_.log_segment_size,
                config_.log_segment_size, &sink)
            .format();
      }
    } else {
      log_region_ = pmem::PmemRegion::open(log_name);
    }
  }

  if (config_.scrub) {
    ScrubConfig sc;
    sc.batch_lines = config_.scrub_batch_lines;
    sc.repair_metadata = config_.scrub_repair;
    scrubber_ = std::make_shared<Scrubber>(
        sc, allocator_->region().base(), allocator_->region().size(),
        log_region_.valid() ? log_region_.base() : nullptr,
        config_.log_segment_size,
        log_region_.valid() ? config_.max_threads : 0);
    scrubber_->set_header_lock(&alloc_mutex_);
    if (verify_table_ != nullptr) scrubber_->set_verify_table(verify_table_);
    if (injector_ != nullptr && !injector_->idle()) {
      // Same armed/idle rule as the per-context fault machinery: an idle
      // injector never marks a line bad, so the media check would be dead
      // weight on every scanned line.
      scrub_faults_ = std::make_shared<core::FaultStats>();
      scrubber_->set_injector(injector_);
      scrubber_->set_fault_stats(scrub_faults_);
    }
    if (wear_ != nullptr) scrubber_->set_wear(wear_);
    {
      std::lock_guard<std::mutex> lock(alloc_mutex_);
      scrubber_->refresh_header_mirror();
    }
    // The pool holds only a weak_ptr: resetting scrubber_ is deregistration.
    core::FlushWorker::shared().register_idle_task(scrubber_);
  }
}

Runtime::~Runtime() {
  // A pool worker may be mid-slice holding a locked shared_ptr; the weak_ptr
  // expiring cannot interrupt that, so stop the scrubber and wait out any
  // in-flight slice before the region can be unmapped below.
  if (scrubber_ != nullptr) scrubber_->shutdown();

  // Seal the heap iff shutdown is provably clean: every context quiescent
  // (no open FASE, no suspended commit) and every write-back ring drained.
  // The seal is the recovery pipeline's clean-shutdown fast path; writing it
  // over a dirty image would vouch for bytes still in flight.
  bool quiescent = allocator_ != nullptr;
  {
    std::lock_guard<std::mutex> lock(contexts_mutex_);
    for (const auto& c : contexts_) {
      if (c->flush_channel) c->flush_channel->wait_drained();
      if (c->fase_depth != 0 || c->commit_suspended) quiescent = false;
      if (c->faults != nullptr && c->faults->quarantined_count() > 0) {
        quiescent = false;
      }
    }
  }
  if (scrub_faults_ != nullptr && scrub_faults_->quarantined_count() > 0) {
    quiescent = false;
  }
  if (quiescent) {
    std::lock_guard<std::mutex> lock(alloc_mutex_);
    allocator_->seal();
    pmem::FlushBackend backend(config_.flush, config_.simulated_flush_ns);
    backend.flush_range(allocator_->region().base(),
                        pmem::PmemAllocator::header_size());
    backend.fence();
  }
}

Runtime::ThreadContext& Runtime::ctx() {
  // Single-entry fast path: a thread overwhelmingly talks to one Runtime, so
  // pstore/fase_begin/fase_end resolve their context with one compare
  // instead of a hash-map probe. Instance ids are never reused, so a stale
  // entry can only miss, never alias another runtime.
  thread_local std::uint64_t tl_last_instance = 0;
  thread_local ThreadContext* tl_last_ctx = nullptr;
  if (tl_last_instance == instance_id_) return *tl_last_ctx;
  ThreadContext& c = ctx_slow();
  tl_last_instance = instance_id_;
  tl_last_ctx = &c;
  return c;
}

Runtime::ThreadContext& Runtime::ctx_slow() {
  // Per-(thread, runtime-instance) context cache. Keyed by instance id so a
  // Runtime reallocated at the same address cannot alias a stale entry.
  thread_local std::unordered_map<std::uint64_t, ThreadContext*> tl_cache;
  auto it = tl_cache.find(instance_id_);
  if (it != tl_cache.end()) return *it->second;

  std::lock_guard<std::mutex> lock(contexts_mutex_);
  const std::size_t slot = contexts_.size();
  NVC_REQUIRE(slot < config_.max_threads || !config_.undo_logging,
              "more threads than configured log segments");
  void* log_base =
      config_.undo_logging
          ? static_cast<char*>(log_region_.base()) +
                slot * config_.log_segment_size
          : nullptr;
  contexts_.push_back(std::make_unique<ThreadContext>(config_, slot, log_base,
                                                      injector_, wear_,
                                                      elision_));
  ThreadContext* c = contexts_.back().get();
  tl_cache.emplace(instance_id_, c);
  return *c;
}

void* Runtime::pm_alloc(std::size_t size) {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  const pmem::POffset off = allocator_->allocate(size);
  NVC_REQUIRE(off != pmem::kNullOffset, "persistent region exhausted");
  if (scrubber_ != nullptr) scrubber_->refresh_header_mirror();
  return allocator_->resolve(off);
}

void Runtime::pm_free(void* p) {
  if (p == nullptr) return;
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  allocator_->deallocate(allocator_->offset_of(p));
  if (scrubber_ != nullptr) scrubber_->refresh_header_mirror();
}

void Runtime::set_root(void* p) {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  allocator_->set_root(p == nullptr ? pmem::kNullOffset
                                    : allocator_->offset_of(p));
  if (scrubber_ != nullptr) scrubber_->refresh_header_mirror();
}

void* Runtime::get_root() const {
  std::lock_guard<std::mutex> lock(alloc_mutex_);
  return allocator_->resolve(allocator_->root());
}

void Runtime::maybe_degrade(ThreadContext& c) {
  if (c.faults == nullptr) return;
  const bool trigger =
      c.faults->quarantined_count() > 0 ||
      c.faults->transients() >= config_.fault.degrade_after;
  if (!trigger) return;
  if (c.async_sink != nullptr && !c.flush_degraded) {
    // Async→sync latch: drain the ring so no line is stranded behind the
    // reroute, then send all further traffic through the synchronous
    // retrying path. One-way — a misbehaving medium does not earn the
    // pipeline back.
    c.async_sink->drain();
    c.flush_degraded = true;
  }
  if (c.log != nullptr && !c.log_degraded &&
      c.log->mode() == LogSyncMode::kBatched) {
    // Batched→strict latch: persist what is pending under the old
    // discipline (best effort — a failure here surfaces as a transient and
    // the per-record syncs retry the same range), then every record is
    // durable before its pstore returns.
    c.log->sync();
    c.log->degrade_to_strict();
    c.log_degraded = true;
  }
}

void Runtime::fase_begin() {
  ThreadContext& c = ctx();
  if (c.fase_depth++ == 0) {
    if (c.faults != nullptr) maybe_degrade(c);
    c.policy->on_fase_begin(c.data_sink());
  }
}

void Runtime::fase_end() {
  ThreadContext& c = ctx();
  NVC_REQUIRE(c.fase_depth > 0, "fase_end without matching fase_begin");
  if (--c.fase_depth == 0) {
    c.policy->on_fase_end(c.data_sink());
    if (c.log) {
      // Commit suspension: once any line of this context is quarantined,
      // never move the commit point again (checked after the policy's
      // flushes above, which is where quarantine verdicts land). Touched
      // lines stay dirty in the verify table — their content was never
      // committed, so no checksum may vouch for it.
      if (c.commit_suspended) return;
      if (c.faults != nullptr && c.faults->quarantined_count() > 0) {
        c.commit_suspended = true;
        return;
      }
      if (c.log->commit()) publish_commit(c);  // atomic commit point
    } else {
      // No undo log: the FASE boundary itself is the commit point for
      // checksum purposes.
      publish_commit(c);
    }
  }
}

void Runtime::publish_commit(ThreadContext& c) {
  if (verify_table_ == nullptr || c.touched_lines.empty()) return;
  std::sort(c.touched_lines.begin(), c.touched_lines.end());
  c.touched_lines.erase(
      std::unique(c.touched_lines.begin(), c.touched_lines.end()),
      c.touched_lines.end());
  const char* base = static_cast<const char*>(allocator_->region().base());
  for (const std::size_t idx : c.touched_lines) {
    verify_table_->note_commit(idx, base + idx * kCacheLineSize);
  }
  c.touched_lines.clear();
}

void Runtime::pstore(void* dst, const void* src, std::size_t len) {
  NVC_REQUIRE(len > 0);
  ThreadContext& c = ctx();
  if (c.log && c.fase_depth > 0) {
    // Log the old value before overwriting (undo logging); large stores are
    // logged in kMaxPayload pieces.
    const auto token = allocator_->region().offset_of(dst);
    std::size_t done = 0;
    while (done < len) {
      const auto piece = static_cast<std::uint32_t>(
          std::min<std::size_t>(len - done, UndoLog::kMaxPayload));
      c.log->record(token + done, static_cast<const char*>(dst) + done,
                    piece);
      done += piece;
    }
    if ((c.async_sink && !c.flush_degraded) || c.elision) {
      // Write-after-enqueue hazard (DESIGN.md §8): if any line this store
      // touches is still queued in the flush-behind ring, the background
      // write-back may carry this store's new bytes — so this store's undo
      // record must be durable before the data write below. If the log
      // media rejects the sync, fall back to draining the ring: with no
      // line of this store in flight, the hazard is gone. With elision
      // (§13) the same hazard extends cross-thread: a line pending in the
      // shared table may be carried by *another* context's scheduled
      // write-back, so the pending probe joins the own-ring check.
      const auto a = reinterpret_cast<PmAddr>(dst);
      const LineAddr first = line_of(a);
      const LineAddr last = line_of(a + len - 1);
      const bool own_ring = c.async_sink && !c.flush_degraded;
      for (LineAddr line = first; line <= last; ++line) {
        const bool inflight = own_ring && c.async_sink->maybe_inflight(line);
        const bool cross = c.elision && c.elision->pending(line);
        if (inflight || cross) {
          if (!c.log->sync() && own_ring) c.async_sink->drain();
          break;
        }
      }
    }
  }
  std::memcpy(dst, src, len);
  pwrote_in(c, dst, len);
}

void Runtime::persist_barrier() {
  ThreadContext& c = ctx();
  // Flush everything the policy has buffered and drain — without signalling
  // a FASE boundary (the FASE stays open; the sampling policy's renamer
  // epoch and deferred resize application must not fire mid-FASE).
  c.policy->flush_buffered(c.data_sink());
}

void Runtime::pwrote(const void* addr, std::size_t len) {
  NVC_REQUIRE(len > 0);
  pwrote_in(ctx(), addr, len);
}

void Runtime::pwrote_in(ThreadContext& c, const void* addr, std::size_t len) {
  const auto a = reinterpret_cast<PmAddr>(addr);
  const LineAddr first = line_of(a);
  const LineAddr last = line_of(a + len - 1);
  if (verify_table_ != nullptr) {
    // NVC_VERIFY_DATA: dirty every touched line (suppressing scrub checks
    // while content is in flight). Lines touched inside a FASE are recorded
    // so fase_end can publish their checksums at the commit point; stores
    // outside any FASE leave the line permanently dirty — there is no commit
    // whose content a checksum could vouch for.
    const auto base = reinterpret_cast<PmAddr>(allocator_->region().base());
    if (a >= base && a + len <= base + allocator_->region().size()) {
      const LineAddr base_line = line_of(base);
      for (LineAddr line = first; line <= last; ++line) {
        const auto idx = static_cast<std::size_t>(line - base_line);
        verify_table_->mark_dirty(idx);
        if (c.fase_depth > 0) c.touched_lines.push_back(idx);
      }
    }
  }
  core::FlushSink& sink = c.data_sink();
  for (LineAddr line = first; line <= last; ++line) {
    c.policy->on_store(line, sink);
  }
}

RegionView Runtime::region_view(core::FlushSink* sink) const {
  RegionView view;
  view.data = allocator_->region().base();
  view.data_size = allocator_->region().size();
  view.logs = log_region_.valid() ? log_region_.base() : nullptr;
  view.log_segment_size = config_.log_segment_size;
  view.log_segments = log_region_.valid() ? config_.max_threads : 0;
  view.sink = sink;
  return view;
}

bool Runtime::needs_recovery() const {
  if (!config_.undo_logging || !log_region_.valid()) return false;
  return RecoveryManager(region_view(nullptr)).needs_recovery();
}

std::size_t Runtime::recover() {
  if (!config_.undo_logging || !log_region_.valid()) return 0;
  pmem::FlushBackend backend(config_.flush, config_.simulated_flush_ns);
  BackendSink sink(&backend);
  RecoveryManager manager(region_view(&sink));
  if (verify_table_ != nullptr) manager.set_verify_table(verify_table_.get());
  RecoveryReport report = manager.run();
  backend.fence();
  const std::size_t undone = report.records_undone;
  {
    std::lock_guard<std::mutex> lock(recovery_mutex_);
    recovery_ran_ = true;
    last_recovery_ = std::move(report);
  }
  return undone;
}

RecoveryReport Runtime::last_recovery() const {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  return last_recovery_;
}

ScrubStats Runtime::scrub_stats() const {
  return scrubber_ != nullptr ? scrubber_->stats() : ScrubStats{};
}

void Runtime::thread_flush() {
  ThreadContext& c = ctx();
  c.policy->finish(c.data_sink());
}

RuntimeStats Runtime::stats() const {
  std::lock_guard<std::mutex> lock(contexts_mutex_);
  RuntimeStats s;
  s.threads = contexts_.size();
  for (const auto& c : contexts_) {
    const core::PolicyCounters& pc = c->policy->counters();
    s.stores += pc.stores;
    s.combined += pc.combined;
    s.fases += pc.fases;
    s.instructions += pc.instructions;
    s.bypassed_stores += pc.bypassed;
    s.flushes += c->backend.flush_count();
    s.fences += c->backend.fence_count();
    if (c->flush_channel) {
      // Lines written back through the flush-behind pipeline. The channel's
      // release-ordered counter is the authoritative count; the worker-side
      // backend's plain counters are never read here, so stats() cannot
      // race with an in-flight worker write-back. The app-side backend
      // above only counts overflow/sync flushes and fences, and is only
      // ever mutated by its owning thread.
      s.flushes += c->flush_channel->flushed();
    }
    s.log_flushes += c->log_backend.flush_count();
    s.log_fences += c->log_backend.fence_count();
    if (c->log) {
      s.log_records += c->log->records();
      s.log_bytes += c->log->bytes_logged();
      s.log_syncs += c->log->sync_points();
    }
    if (c->faults) {
      s.transient_faults += c->faults->transients();
      s.flush_retries += c->faults->retries();
      s.quarantined_lines += c->faults->quarantined_count();
      s.flush_degrades += c->flush_degraded ? 1 : 0;
      s.log_degrades += c->log_degraded ? 1 : 0;
    }
    if (c->eliding_sink) {
      s.elided_flushes += c->eliding_sink->elided_count();
      s.elision_reflushes += c->eliding_sink->reflushed_count();
    }
    if (const std::size_t size = c->policy->current_cache_size(); size > 0) {
      s.cache_sizes.push_back(size);
    }
  }
  if (wear_ != nullptr) {
    // Thread-safe by construction: the tracker's totals are release-
    // published and its map is mutex-guarded, so this races with no
    // worker-side recording.
    const pmem::WearStats ws = wear_->stats();
    s.media_line_writes = ws.line_writes;
    s.media_bytes_written = ws.bytes_written;
    s.wear_lines_touched = ws.lines_touched;
    s.wear_max_line_writes = ws.max_line_writes;
    s.wear_mean_line_writes = ws.mean_line_writes;
    s.wear_leveling_skew = ws.leveling_skew;
  }
  return s;
}

HealthReport Runtime::health() const {
  std::lock_guard<std::mutex> lock(contexts_mutex_);
  HealthReport report;
  report.faults_attached = injector_ != nullptr;
  for (const auto& c : contexts_) {
    if (c->faults == nullptr) continue;
    report.transient_faults += c->faults->transients();
    report.flush_retries += c->faults->retries();
    const std::vector<LineAddr> lines = c->faults->quarantined_lines();
    report.quarantined_lines.insert(report.quarantined_lines.end(),
                                    lines.begin(), lines.end());
    report.flush_degraded_contexts += c->flush_degraded ? 1 : 0;
    report.log_degraded_contexts += c->log_degraded ? 1 : 0;
    report.commit_suspended_contexts += c->commit_suspended ? 1 : 0;
  }
  if (scrub_faults_ != nullptr) {
    // Scrub-discovered media failures join the same quarantine ledger as
    // write-path discoveries.
    const std::vector<LineAddr> lines = scrub_faults_->quarantined_lines();
    report.quarantined_lines.insert(report.quarantined_lines.end(),
                                    lines.begin(), lines.end());
  }
  std::sort(report.quarantined_lines.begin(), report.quarantined_lines.end());
  report.quarantined_lines.erase(
      std::unique(report.quarantined_lines.begin(),
                  report.quarantined_lines.end()),
      report.quarantined_lines.end());
  report.wear_attached = wear_ != nullptr;
  if (wear_ != nullptr) {
    const pmem::WearStats ws = wear_->stats();
    report.media_bytes_written = ws.bytes_written;
    report.wear_max_line_writes = ws.max_line_writes;
    report.wear_mean_line_writes = ws.mean_line_writes;
    report.wear_leveling_skew = ws.leveling_skew;
  }
  {
    std::lock_guard<std::mutex> rlock(recovery_mutex_);
    report.recovery_ran = recovery_ran_;
    if (recovery_ran_) {
      report.recovery_outcome = last_recovery_.outcome;
      report.recovery_records_undone = last_recovery_.records_undone;
      report.recovery_defects = last_recovery_.defects.size();
    }
  }
  if (scrubber_ != nullptr) {
    report.scrub_attached = true;
    const ScrubStats ss = scrubber_->stats();
    report.scrub_lines_scanned = ss.lines_scanned;
    report.scrub_metadata_repairs = ss.metadata_repairs;
    report.scrub_checksum_mismatches = ss.checksum_mismatches;
    report.scrub_media_quarantines = ss.media_quarantines;
  }
  return report;
}

void Runtime::destroy_storage() {
  const std::string data_name = config_.region_name;
  const std::string log_name = config_.region_name + ".log";
  if (scrubber_ != nullptr) {
    // Stop slices (and wait out an in-flight one) before the mappings go
    // away; resetting drops the pool's weak_ptr registration.
    scrubber_->shutdown();
    scrubber_.reset();
  }
  {
    // Write back anything still queued in the pipeline while the region is
    // still mapped (an eviction pushed outside a FASE has no commit point
    // to drain it). Producers must be quiescent by now — destroy_storage
    // is teardown — so draining from this thread is safe.
    std::lock_guard<std::mutex> lock(contexts_mutex_);
    for (const auto& c : contexts_) {
      if (c->flush_channel) c->flush_channel->wait_drained();
    }
  }
  allocator_.reset();
  log_region_ = pmem::PmemRegion();
  pmem::PmemRegion::destroy(data_name);
  pmem::PmemRegion::destroy(log_name);
}

}  // namespace nvc::runtime
