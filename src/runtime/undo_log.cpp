#include "runtime/undo_log.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace nvc::runtime {

UndoLog::UndoLog(void* base, std::size_t size, pmem::FlushBackend* backend)
    : base_(static_cast<char*>(base)), size_(size), backend_(backend) {
  NVC_REQUIRE(base_ != nullptr);
  NVC_REQUIRE((reinterpret_cast<std::uintptr_t>(base_) % kCacheLineSize) == 0,
              "log segment must be cache-line aligned");
  NVC_REQUIRE(size_ >= kHeaderSize + kMaxPayload + sizeof(EntryFooter));
}

void UndoLog::persist(const void* p, std::size_t len) {
  backend_->flush_range(p, len);
  backend_->fence();
}

void UndoLog::format() {
  LogHeader* h = header();
  h->magic = kMagic;
  h->tail = kHeaderSize;
  persist(h, sizeof(LogHeader));
}

bool UndoLog::valid() const { return header()->magic == kMagic; }

bool UndoLog::needs_recovery() const {
  return valid() && header()->tail > kHeaderSize;
}

std::uint64_t UndoLog::tail() const { return header()->tail; }

void UndoLog::record(std::uint64_t addr_token, const void* current_bytes,
                     std::uint32_t len) {
  NVC_REQUIRE(len >= 1 && len <= kMaxPayload);
  const std::uint64_t payload_size = align_up(len, 8);
  const std::uint64_t entry_size = payload_size + sizeof(EntryFooter);
  LogHeader* h = header();
  NVC_REQUIRE(h->tail + entry_size <= size_, "undo log segment overflow");

  char* payload = base_ + h->tail;
  std::memcpy(payload, current_bytes, len);
  auto* footer = reinterpret_cast<EntryFooter*>(payload + payload_size);
  footer->addr_token = addr_token;
  footer->len = len;
  footer->check = static_cast<std::uint32_t>(addr_token ^ len ^ kMagic);

  // Entry must be durable before the new tail that makes it reachable, and
  // the tail must be durable before the caller's in-place data update.
  persist(payload, entry_size);
  h->tail += entry_size;
  persist(&h->tail, sizeof(h->tail));

  ++records_;
  bytes_logged_ += entry_size;
}

void UndoLog::commit() {
  LogHeader* h = header();
  h->tail = kHeaderSize;
  persist(&h->tail, sizeof(h->tail));
}

}  // namespace nvc::runtime
