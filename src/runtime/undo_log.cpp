#include "runtime/undo_log.hpp"

#include <cstring>
#include <string_view>

#include "common/assert.hpp"
#include "common/checksum.hpp"

namespace nvc::runtime {

LogSyncMode parse_log_sync_mode(const char* name) {
  if (name != nullptr && std::string_view(name) == "batched") {
    return LogSyncMode::kBatched;
  }
  return LogSyncMode::kStrict;  // unknown values fall back to the default
}

const char* to_string(LogSyncMode mode) {
  switch (mode) {
    case LogSyncMode::kStrict:
      return "strict";
    case LogSyncMode::kBatched:
      return "batched";
  }
  NVC_UNREACHABLE("invalid LogSyncMode");
}

UndoLog::UndoLog(void* base, std::size_t size, core::FlushSink* sink,
                 LogSyncMode mode)
    : base_(static_cast<char*>(base)), size_(size), sink_(sink), mode_(mode) {
  NVC_REQUIRE(base_ != nullptr);
  NVC_REQUIRE(sink_ != nullptr);
  NVC_REQUIRE((reinterpret_cast<std::uintptr_t>(base_) % kCacheLineSize) == 0,
              "log segment must be cache-line aligned");
  NVC_REQUIRE(size_ >= kHeaderSize + kMaxPayload + sizeof(EntryHead));
  NVC_REQUIRE(size_ <= 0xffffffffULL, "tail must fit the packed state word");
  if (valid()) {
    // Reopened segment (restart path): adopt the durable generation and
    // tail, and treat any self-certifying entries beyond the tail as the
    // appended extent (batched-mode records that made it to NVRAM).
    const std::uint64_t state = header()->state;
    gen_ = state_gen(state);
    synced_tail_ = state_tail(state);
    const std::vector<std::uint64_t> offsets = walk_entries();
    appended_tail_ = synced_tail_;
    if (!offsets.empty()) {
      const auto* head =
          reinterpret_cast<const EntryHead*>(base_ + offsets.back());
      appended_tail_ = offsets.back() + sizeof(EntryHead) +
                       align_up(head->len, 8);
    }
  }
}

bool UndoLog::persist(const void* p, std::size_t len) {
  NVC_ASSERT(len > 0);
  const auto addr = reinterpret_cast<PmAddr>(p);
  const LineAddr first = line_of(addr);
  const LineAddr last = line_of(addr + len - 1);
  bool ok = true;
  // Attempt every line even after a failure (retry/quarantine accounting
  // below the sink wants to see each one), then fence what did land.
  for (LineAddr line = first; line <= last; ++line) {
    ok = sink_->flush_line(line) && ok;
  }
  sink_->drain();
  return ok;
}

bool UndoLog::publish_state(std::uint32_t gen, std::uint64_t tail) {
  // A single aligned 8-byte store: atomic with respect to power failure, so
  // generation and tail can never tear apart.
  const std::uint64_t previous = header()->state;
  header()->state = pack_state(gen, tail);
  if (persist(&header()->state, sizeof(header()->state))) return true;
  // The durable header still holds `previous`: restore the volatile view
  // to match so in-memory reads (tail(), walk_entries()) never run ahead
  // of what a crash would leave behind.
  header()->state = previous;
  return false;
}

std::uint32_t UndoLog::entry_check(std::uint64_t addr_token, std::uint32_t len,
                                   std::uint32_t gen,
                                   const void* payload) noexcept {
  // FNV-1a over token, length, generation, and the payload bytes. The
  // generation term invalidates stale entries after commit(); the payload
  // term catches torn entries whose head line persisted without the data.
  // The mix order (token LE, len LE, gen LE, payload) is the durable format
  // from PR 2 — common/checksum.hpp reproduces it bit-for-bit.
  Fnv32 h;
  h.mix_le(addr_token);
  h.mix_le(len);
  h.mix_le(gen);
  h.mix_bytes(payload, len);
  return h.value();
}

void UndoLog::format() {
  LogHeader* h = header();
  h->magic = kMagic;
  gen_ = 1;
  h->state = pack_state(gen_, kHeaderSize);
  appended_tail_ = synced_tail_ = kHeaderSize;
  persist(h, sizeof(LogHeader));
}

bool UndoLog::valid() const { return header()->magic == kMagic; }

bool UndoLog::needs_recovery() const {
  if (!valid()) return false;
  if (state_tail(header()->state) > kHeaderSize) return true;
  // Batched mode can crash with a committed (header-size) durable tail but
  // appended entries that reached NVRAM; the entry chain self-certifies.
  return !walk_entries().empty();
}

std::uint64_t UndoLog::tail() const { return state_tail(header()->state); }

UndoLog::Inspection UndoLog::inspect(const void* base, std::size_t size) {
  Inspection out;
  if (base == nullptr || size < kHeaderSize + sizeof(EntryHead)) return out;
  const char* bytes = static_cast<const char*>(base);
  LogHeader head_copy;
  std::memcpy(&head_copy, bytes, sizeof(head_copy));
  if (head_copy.magic != kMagic) return out;
  out.formatted = true;
  out.gen = state_gen(head_copy.state);
  out.durable_tail = state_tail(head_copy.state);
  out.state_plausible =
      out.durable_tail >= kHeaderSize && out.durable_tail <= size;
  std::uint64_t off = kHeaderSize;
  while (off + sizeof(EntryHead) <= size) {
    EntryHead entry;
    std::memcpy(&entry, bytes + off, sizeof(entry));
    if (entry.len < 1 || entry.len > kMaxPayload) break;
    const std::uint64_t entry_size = sizeof(EntryHead) + align_up(entry.len, 8);
    if (off + entry_size > size) break;
    if (entry.check != entry_check(entry.addr_token, entry.len, out.gen,
                                   bytes + off + sizeof(EntryHead))) {
      break;
    }
    out.offsets.push_back(off);
    off += entry_size;
  }
  out.certified_extent = off;
  // Everything below the durable tail was synced (flushed + fenced) before
  // the tail was published; a chain that stops short of it means synced
  // bytes were corrupted after the fact.
  out.tail_covered = out.state_plausible && off >= out.durable_tail;
  return out;
}

std::vector<std::uint64_t> UndoLog::walk_entries() const {
  Inspection ins = inspect(base_, size_);
  NVC_REQUIRE(ins.tail_covered,
              "corrupt undo log: synced entries fail validation");
  return std::move(ins.offsets);
}

void UndoLog::record(std::uint64_t addr_token, const void* current_bytes,
                     std::uint32_t len) {
  NVC_REQUIRE(len >= 1 && len <= kMaxPayload);
  const std::uint64_t entry_size = sizeof(EntryHead) + align_up(len, 8);
  NVC_REQUIRE(appended_tail_ + entry_size <= size_,
              "undo log segment overflow");

  char* entry = base_ + appended_tail_;
  char* payload = entry + sizeof(EntryHead);
  std::memcpy(payload, current_bytes, len);
  auto* head = reinterpret_cast<EntryHead*>(entry);
  head->addr_token = addr_token;
  head->len = len;
  head->check = entry_check(addr_token, len, gen_, payload);

  appended_tail_ += entry_size;
  ++records_;
  bytes_logged_ += entry_size;

  // Strict mode: the entry must be durable before the tail that covers it,
  // and the tail durable before the caller's in-place data update.
  if (mode_ == LogSyncMode::kStrict) sync();
}

bool UndoLog::sync() {
  if (appended_tail_ == synced_tail_) return true;
  // Entries must be durable before the tail that covers them: a failed
  // entry flush leaves the synced state untouched so the next sync (or a
  // retry above us) covers the same range again.
  if (!persist(base_ + synced_tail_, appended_tail_ - synced_tail_)) {
    return false;
  }
  if (!publish_state(gen_, appended_tail_)) return false;
  synced_tail_ = appended_tail_;
  ++sync_points_;
  return true;
}

bool UndoLog::commit() {
  // Advancing the generation de-certifies every entry of this FASE in one
  // atomic durable store; unsynced entries are simply discarded.
  if (!publish_state(gen_ + 1, kHeaderSize)) {
    // The durable header still certifies this generation's records; keep
    // the volatile generation in step so recovery (which would roll the
    // whole FASE back) and future records agree on it.
    return false;
  }
  ++gen_;
  appended_tail_ = synced_tail_ = kHeaderSize;
  return true;
}

}  // namespace nvc::runtime
