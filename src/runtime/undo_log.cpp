#include "runtime/undo_log.hpp"

#include <cstring>
#include <string_view>

#include "common/assert.hpp"

namespace nvc::runtime {

LogSyncMode parse_log_sync_mode(const char* name) {
  if (name != nullptr && std::string_view(name) == "batched") {
    return LogSyncMode::kBatched;
  }
  return LogSyncMode::kStrict;  // unknown values fall back to the default
}

const char* to_string(LogSyncMode mode) {
  switch (mode) {
    case LogSyncMode::kStrict:
      return "strict";
    case LogSyncMode::kBatched:
      return "batched";
  }
  NVC_UNREACHABLE("invalid LogSyncMode");
}

UndoLog::UndoLog(void* base, std::size_t size, core::FlushSink* sink,
                 LogSyncMode mode)
    : base_(static_cast<char*>(base)), size_(size), sink_(sink), mode_(mode) {
  NVC_REQUIRE(base_ != nullptr);
  NVC_REQUIRE(sink_ != nullptr);
  NVC_REQUIRE((reinterpret_cast<std::uintptr_t>(base_) % kCacheLineSize) == 0,
              "log segment must be cache-line aligned");
  NVC_REQUIRE(size_ >= kHeaderSize + kMaxPayload + sizeof(EntryHead));
  NVC_REQUIRE(size_ <= 0xffffffffULL, "tail must fit the packed state word");
  if (valid()) {
    // Reopened segment (restart path): adopt the durable generation and
    // tail, and treat any self-certifying entries beyond the tail as the
    // appended extent (batched-mode records that made it to NVRAM).
    const std::uint64_t state = header()->state;
    gen_ = state_gen(state);
    synced_tail_ = state_tail(state);
    const std::vector<std::uint64_t> offsets = walk_entries();
    appended_tail_ = synced_tail_;
    if (!offsets.empty()) {
      const auto* head =
          reinterpret_cast<const EntryHead*>(base_ + offsets.back());
      appended_tail_ = offsets.back() + sizeof(EntryHead) +
                       align_up(head->len, 8);
    }
  }
}

bool UndoLog::persist(const void* p, std::size_t len) {
  NVC_ASSERT(len > 0);
  const auto addr = reinterpret_cast<PmAddr>(p);
  const LineAddr first = line_of(addr);
  const LineAddr last = line_of(addr + len - 1);
  bool ok = true;
  // Attempt every line even after a failure (retry/quarantine accounting
  // below the sink wants to see each one), then fence what did land.
  for (LineAddr line = first; line <= last; ++line) {
    ok = sink_->flush_line(line) && ok;
  }
  sink_->drain();
  return ok;
}

bool UndoLog::publish_state(std::uint32_t gen, std::uint64_t tail) {
  // A single aligned 8-byte store: atomic with respect to power failure, so
  // generation and tail can never tear apart.
  const std::uint64_t previous = header()->state;
  header()->state = pack_state(gen, tail);
  if (persist(&header()->state, sizeof(header()->state))) return true;
  // The durable header still holds `previous`: restore the volatile view
  // to match so in-memory reads (tail(), walk_entries()) never run ahead
  // of what a crash would leave behind.
  header()->state = previous;
  return false;
}

std::uint32_t UndoLog::entry_check(std::uint64_t addr_token, std::uint32_t len,
                                   std::uint32_t gen,
                                   const void* payload) noexcept {
  // FNV-1a over token, length, generation, and the payload bytes. The
  // generation term invalidates stale entries after commit(); the payload
  // term catches torn entries whose head line persisted without the data.
  std::uint32_t h = 0x811c9dc5u;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x01000193u;
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(addr_token >> (8 * i)));
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(len >> (8 * i)));
  for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(gen >> (8 * i)));
  const auto* bytes = static_cast<const std::uint8_t*>(payload);
  for (std::uint32_t i = 0; i < len; ++i) mix(bytes[i]);
  return h;
}

void UndoLog::format() {
  LogHeader* h = header();
  h->magic = kMagic;
  gen_ = 1;
  h->state = pack_state(gen_, kHeaderSize);
  appended_tail_ = synced_tail_ = kHeaderSize;
  persist(h, sizeof(LogHeader));
}

bool UndoLog::valid() const { return header()->magic == kMagic; }

bool UndoLog::needs_recovery() const {
  if (!valid()) return false;
  if (state_tail(header()->state) > kHeaderSize) return true;
  // Batched mode can crash with a committed (header-size) durable tail but
  // appended entries that reached NVRAM; the entry chain self-certifies.
  return !walk_entries().empty();
}

std::uint64_t UndoLog::tail() const { return state_tail(header()->state); }

std::vector<std::uint64_t> UndoLog::walk_entries() const {
  std::vector<std::uint64_t> offsets;
  const std::uint32_t gen = state_gen(header()->state);
  std::uint64_t off = kHeaderSize;
  while (off + sizeof(EntryHead) <= size_) {
    const auto* head = reinterpret_cast<const EntryHead*>(base_ + off);
    if (head->len < 1 || head->len > kMaxPayload) break;
    const std::uint64_t entry_size =
        sizeof(EntryHead) + align_up(head->len, 8);
    if (off + entry_size > size_) break;
    if (head->check != entry_check(head->addr_token, head->len, gen,
                                   base_ + off + sizeof(EntryHead))) {
      break;
    }
    offsets.push_back(off);
    off = off + entry_size;
  }
  // Everything below the durable tail was synced (flushed + fenced) before
  // the tail was published, so the chain must reach at least that far.
  NVC_REQUIRE(off >= state_tail(header()->state),
              "corrupt undo log: synced entries fail validation");
  return offsets;
}

void UndoLog::record(std::uint64_t addr_token, const void* current_bytes,
                     std::uint32_t len) {
  NVC_REQUIRE(len >= 1 && len <= kMaxPayload);
  const std::uint64_t entry_size = sizeof(EntryHead) + align_up(len, 8);
  NVC_REQUIRE(appended_tail_ + entry_size <= size_,
              "undo log segment overflow");

  char* entry = base_ + appended_tail_;
  char* payload = entry + sizeof(EntryHead);
  std::memcpy(payload, current_bytes, len);
  auto* head = reinterpret_cast<EntryHead*>(entry);
  head->addr_token = addr_token;
  head->len = len;
  head->check = entry_check(addr_token, len, gen_, payload);

  appended_tail_ += entry_size;
  ++records_;
  bytes_logged_ += entry_size;

  // Strict mode: the entry must be durable before the tail that covers it,
  // and the tail durable before the caller's in-place data update.
  if (mode_ == LogSyncMode::kStrict) sync();
}

bool UndoLog::sync() {
  if (appended_tail_ == synced_tail_) return true;
  // Entries must be durable before the tail that covers them: a failed
  // entry flush leaves the synced state untouched so the next sync (or a
  // retry above us) covers the same range again.
  if (!persist(base_ + synced_tail_, appended_tail_ - synced_tail_)) {
    return false;
  }
  if (!publish_state(gen_, appended_tail_)) return false;
  synced_tail_ = appended_tail_;
  ++sync_points_;
  return true;
}

bool UndoLog::commit() {
  // Advancing the generation de-certifies every entry of this FASE in one
  // atomic durable store; unsynced entries are simply discarded.
  if (!publish_state(gen_ + 1, kHeaderSize)) {
    // The durable header still certifies this generation's records; keep
    // the volatile generation in step so recovery (which would roll the
    // whole FASE back) and future records agree on it.
    return false;
  }
  ++gen_;
  appended_tail_ = synced_tail_ = kHeaderSize;
  return true;
}

}  // namespace nvc::runtime
