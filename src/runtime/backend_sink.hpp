// Bridge from the policies' FlushSink interface to a pmem::FlushBackend:
// flush_line() issues a real cache-line write-back, drain() a fence. The
// backend's own counters keep the per-thread flush/fence accounting.
#pragma once

#include "core/write_cache.hpp"
#include "pmem/flush.hpp"

namespace nvc::runtime {

class BackendSink final : public core::FlushSink {
 public:
  explicit BackendSink(pmem::FlushBackend* backend) : backend_(backend) {}

  void flush_line(LineAddr line) override {
    backend_->flush(reinterpret_cast<const void*>(line_base(line)));
  }
  void drain() override { backend_->fence(); }

 private:
  pmem::FlushBackend* backend_;
};

}  // namespace nvc::runtime
