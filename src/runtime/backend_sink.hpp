// Bridge from the policies' FlushSink interface to a pmem::FlushBackend:
// flush_line() issues a real cache-line write-back, drain() a fence. The
// backend's own counters keep the per-thread flush/fence accounting.
#pragma once

#include "core/write_cache.hpp"
#include "pmem/flush.hpp"

namespace nvc::runtime {

class BackendSink final : public core::FlushSink {
 public:
  explicit BackendSink(pmem::FlushBackend* backend) : backend_(backend) {}

  bool flush_line(LineAddr line) override {
    return backend_->flush(reinterpret_cast<const void*>(line_base(line))) ==
           pmem::FlushResult::kOk;
  }
  void drain() override { backend_->fence(); }

 private:
  pmem::FlushBackend* backend_;
};

/// Worker-side sink for the flush-behind pipeline (core::FlushChannel owns
/// one). It owns its backend outright — the backend's plain counters are
/// only ever touched from whichever thread holds the channel's consumer
/// lock, and stats aggregation reads the channel's atomic flushed() count
/// instead — and issues posted write-backs: the producer's drain() fence
/// (and, for the simulated kind, its device-timeline model) is where
/// completion is awaited, so the worker never stalls per line.
class IssueSink final : public core::FlushSink {
 public:
  IssueSink(pmem::FlushKind kind, std::uint32_t simulated_latency_ns)
      : backend_(kind, simulated_latency_ns) {}

  bool flush_line(LineAddr line) override {
    return backend_.issue(reinterpret_cast<const void*>(line_base(line))) ==
           pmem::FlushResult::kOk;
  }
  void drain() override { backend_.fence(); }

  const pmem::FlushBackend& backend() const noexcept { return backend_; }
  pmem::FlushBackend& backend() noexcept { return backend_; }

 private:
  pmem::FlushBackend backend_;
};

}  // namespace nvc::runtime
