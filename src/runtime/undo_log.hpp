// Durable undo logging for failure-atomic sections.
//
// Atlas guarantees that upon a failure either all or none of a FASE's updates
// are visible in NVRAM (paper Section II-A). The mechanism is a per-thread
// persistent undo log: before data is overwritten inside a FASE, the old
// bytes are appended to the log; at the outermost FASE end the dirty data
// lines are flushed (by whichever caching policy is active) and the log is
// truncated, which is the atomic commit. Recovery after a crash rolls back
// any non-truncated records in reverse order, restoring the pre-FASE state.
//
// Two durability disciplines (LogSyncMode, DESIGN.md §7):
//
//   kStrict   every record() is made durable before it returns — two
//             flush+fence pairs per logged store (entry, then tail). This is
//             Atlas' protocol: the old-value entry is durable before the
//             in-place update can possibly reach NVRAM, sound even under
//             spontaneous hardware cache eviction.
//   kBatched  record() only appends; durability is enforced once per epoch
//             by sync() — a single flush of the dirty log range, one fence,
//             and one durable tail publish. The runtime orders sync()
//             before every software-issued data-line flush via
//             core::LogOrderedSink, which preserves the recovery invariant
//             under the simulated/shadow backends and eADR semantics (no
//             spontaneous eviction of dirty lines to NVRAM).
//
// Entries are *self-certifying*: each carries a check word mixing the
// address token, length, payload bytes, and the log generation. Recovery
// does not trust the tail beyond its durable value — it walks the entry
// chain forward and replays exactly the records whose check words validate
// against the current generation, so a tail that lags the appended entries
// (batched mode) still yields a sound rollback, and stale entries from a
// committed generation are never replayed.
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "core/log_ordered_sink.hpp"

namespace nvc::runtime {

/// When undo-log records become durable (see file comment).
enum class LogSyncMode : std::uint8_t {
  kStrict,   // per record: Atlas' protocol, the default
  kBatched,  // per epoch: one flush_range + fence at each sync point
};

/// Parse "strict" / "batched".
LogSyncMode parse_log_sync_mode(const char* name);
const char* to_string(LogSyncMode mode);

/// One log segment: a fixed [base, base+size) slice of a persistent region.
/// Layout: a 64-byte header (magic + packed generation/tail state) followed
/// by entries, each [EntryHead][payload padded to 8].
class UndoLog final : public core::EpochLog {
 public:
  /// `base` must be 64-byte aligned; `size` covers header + payload.
  /// Durability traffic is issued through `sink` (the runtime passes a
  /// BackendSink over the per-thread log backend; crash tests pass a
  /// shadow-memory sink).
  UndoLog(void* base, std::size_t size, core::FlushSink* sink,
          LogSyncMode mode = LogSyncMode::kStrict);

  /// Format the segment as an empty, committed log (generation 1).
  void format();

  /// True if the header magic is valid (segment was formatted).
  bool valid() const;

  /// True if the log holds uncommitted entries (crash inside a FASE):
  /// any entry of the current generation self-certifies.
  bool needs_recovery() const;

  /// Append the current content of [addr, addr+len) as an undo record.
  /// kStrict: durable before returning. kBatched: durable at the next
  /// sync()/strict boundary. len <= kMaxPayload. `addr_token` is the
  /// position-independent token stored in the record (the caller maps
  /// pointers to region offsets).
  void record(std::uint64_t addr_token, const void* current_bytes,
              std::uint32_t len);

  /// Epoch boundary (core::EpochLog): make every appended record durable.
  /// O(1) no-op when nothing has been appended since the last sync.
  /// Returns false when the log media rejected a write-back: the pending
  /// entries (or the tail covering them) are NOT durable, synced state is
  /// unchanged, and callers must not flush data those entries cover.
  bool sync() override;

  /// Commit: truncate the log durably and advance the generation (the
  /// FASE's updates become permanent; stale entry bytes left in the segment
  /// no longer certify). A single flush+fence of the header word. Returns
  /// false when the header write-back failed: the generation does NOT
  /// advance (volatile and durable state are restored to the pre-commit
  /// view), so the FASE stays uncommitted and recovery would roll it back.
  bool commit();

  /// Graceful degradation latch: switch a batched log to strict, per-record
  /// durability. Callers sync() first so no appended entry is left behind
  /// under the old discipline. Irreversible by design.
  void degrade_to_strict() noexcept { mode_ = LogSyncMode::kStrict; }

  /// Roll back every uncommitted record, newest first. `apply` restores the
  /// payload bytes at the location identified by the token. Walks the entry
  /// chain forward to find the recovery extent (see file comment), then
  /// applies in reverse.
  template <typename ApplyFn>
  std::size_t rollback(ApplyFn&& apply) {
    std::vector<std::uint64_t> offsets = walk_entries();
    for (auto it = offsets.rbegin(); it != offsets.rend(); ++it) {
      const auto* head = reinterpret_cast<const EntryHead*>(base_ + *it);
      apply(head->addr_token, base_ + *it + sizeof(EntryHead), head->len);
    }
    commit();
    return offsets.size();
  }

  /// Durable tail offset (kHeaderSize when empty/committed). In batched
  /// mode this lags appended_tail() until the next sync().
  std::uint64_t tail() const;
  std::uint64_t appended_tail() const noexcept { return appended_tail_; }

  std::size_t capacity() const noexcept { return size_; }
  std::uint64_t records() const noexcept { return records_; }
  std::uint64_t bytes_logged() const noexcept { return bytes_logged_; }
  /// Number of sync points that actually persisted pending entries — one
  /// per record in strict mode, one per epoch in batched mode.
  std::uint64_t sync_points() const noexcept { return sync_points_; }
  LogSyncMode mode() const noexcept { return mode_; }

  static constexpr std::uint32_t kMaxPayload = 256;
  static constexpr std::size_t kHeaderSize = kCacheLineSize;

  // The durable layout is public: the salvage-mode RecoveryManager and the
  // image fuzzer read (and deliberately corrupt) segments without an UndoLog
  // object, so they need the header/entry shapes and the state packing.
  struct LogHeader {
    std::uint64_t magic;
    std::uint64_t state;  // generation << 32 | tail (one atomic 8-byte word)
  };
  struct EntryHead {
    std::uint64_t addr_token;
    std::uint32_t len;
    std::uint32_t check;  // self-certifying word over token/len/gen/payload
  };
  static constexpr std::uint64_t kMagic = 0x4e5643554e444f4cULL;  // NVCUNDOL

  static std::uint64_t pack_state(std::uint32_t gen,
                                  std::uint64_t tail) noexcept {
    return (static_cast<std::uint64_t>(gen) << 32) | tail;
  }
  static std::uint32_t state_gen(std::uint64_t state) noexcept {
    return static_cast<std::uint32_t>(state >> 32);
  }
  static std::uint64_t state_tail(std::uint64_t state) noexcept {
    return state & 0xffffffffULL;
  }

  /// Self-certifying check word over token/len/generation/payload (FNV-1a
  /// via common/checksum.hpp; the mix order is the durable format).
  static std::uint32_t entry_check(std::uint64_t addr_token, std::uint32_t len,
                                   std::uint32_t gen,
                                   const void* payload) noexcept;

  /// Untrusted read of a raw log segment: never aborts, never reads outside
  /// [base, base+size). The salvage pipeline's view of a segment whose
  /// bytes may be arbitrary garbage.
  struct Inspection {
    bool formatted = false;        // header magic validates
    bool state_plausible = false;  // durable tail lands inside the segment
    bool tail_covered = false;     // certified chain reaches the durable tail
    std::uint32_t gen = 0;
    std::uint64_t durable_tail = 0;
    std::uint64_t certified_extent = 0;   // end offset of the certified chain
    std::vector<std::uint64_t> offsets;   // certified entries, oldest first
  };
  static Inspection inspect(const void* base, std::size_t size);

 private:
  LogHeader* header() const { return reinterpret_cast<LogHeader*>(base_); }
  bool persist(const void* p, std::size_t len);
  bool publish_state(std::uint32_t gen, std::uint64_t tail);

  /// Offsets of every entry of the current generation that self-certifies,
  /// oldest first, starting at kHeaderSize; stops at the first entry that
  /// fails validation. Requires the chain to cover the durable tail (the
  /// trusted in-process path; RecoveryManager uses inspect() instead).
  std::vector<std::uint64_t> walk_entries() const;

  char* base_;
  std::size_t size_;
  core::FlushSink* sink_;
  LogSyncMode mode_;
  std::uint32_t gen_ = 0;
  std::uint64_t appended_tail_ = kHeaderSize;  // includes unsynced entries
  std::uint64_t synced_tail_ = kHeaderSize;    // durable prefix
  std::uint64_t records_ = 0;
  std::uint64_t bytes_logged_ = 0;
  std::uint64_t sync_points_ = 0;
};

}  // namespace nvc::runtime
