// Durable undo logging for failure-atomic sections.
//
// Atlas guarantees that upon a failure either all or none of a FASE's updates
// are visible in NVRAM (paper Section II-A). The mechanism is a per-thread
// persistent undo log: before data is overwritten inside a FASE, the old
// bytes are appended to the log and persisted; at the outermost FASE end the
// dirty data lines are flushed (by whichever caching policy is active) and
// the log is truncated, which is the atomic commit. Recovery after a crash
// rolls back any non-truncated log tail in reverse order, restoring the
// pre-FASE state.
//
// The log lives in its own slice of persistent memory and is written with
// store + flush + fence ordering so the "old value" entry is durable before
// the in-place update can possibly reach NVRAM.
#pragma once

#include <cstdint>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "pmem/flush.hpp"

namespace nvc::runtime {

/// One log segment: a fixed [base, base+size) slice of a persistent region.
/// Layout: a 64-byte header (tail offset + magic) followed by entries.
class UndoLog {
 public:
  /// `base` must be 64-byte aligned; `size` covers header + payload.
  UndoLog(void* base, std::size_t size, pmem::FlushBackend* backend);

  /// Format the segment as an empty, committed log.
  void format();

  /// True if the header magic is valid (segment was formatted).
  bool valid() const;

  /// True if the log holds uncommitted entries (crash inside a FASE).
  bool needs_recovery() const;

  /// Append the current content of [addr, addr+len) as an undo record and
  /// make the record durable before returning. len <= kMaxPayload.
  /// `addr_token` is the position-independent token stored in the record
  /// (the caller maps pointers to region offsets).
  void record(std::uint64_t addr_token, const void* current_bytes,
              std::uint32_t len);

  /// Commit: truncate the log durably (the FASE's updates become permanent).
  void commit();

  /// Roll back every uncommitted record, newest first. `apply` restores the
  /// payload bytes at the location identified by the token.
  template <typename ApplyFn>
  std::size_t rollback(ApplyFn&& apply) {
    std::size_t undone = 0;
    std::uint64_t off = tail();
    while (off > kHeaderSize) {
      // Each record is: [payload][EntryFooter]; walk backward via footers.
      const auto* footer = reinterpret_cast<const EntryFooter*>(
          base_ + off - sizeof(EntryFooter));
      NVC_REQUIRE(footer->check == static_cast<std::uint32_t>(
                                       footer->addr_token ^ footer->len ^
                                       kMagic),
                  "corrupt undo-log record");
      const std::uint64_t payload_start =
          off - sizeof(EntryFooter) - align_up(footer->len, 8);
      apply(footer->addr_token, base_ + payload_start, footer->len);
      off = payload_start;
      ++undone;
    }
    commit();
    return undone;
  }

  std::uint64_t tail() const;
  std::size_t capacity() const noexcept { return size_; }
  std::uint64_t records() const noexcept { return records_; }
  std::uint64_t bytes_logged() const noexcept { return bytes_logged_; }

  static constexpr std::uint32_t kMaxPayload = 256;
  static constexpr std::size_t kHeaderSize = kCacheLineSize;

 private:
  struct LogHeader {
    std::uint64_t magic;
    std::uint64_t tail;  // next free offset; kHeaderSize when empty
  };
  struct EntryFooter {
    std::uint64_t addr_token;
    std::uint32_t len;
    std::uint32_t check;  // footer integrity word
  };
  static constexpr std::uint64_t kMagic = 0x4e5643554e444f4cULL;  // NVCUNDOL

  LogHeader* header() const {
    return reinterpret_cast<LogHeader*>(base_);
  }
  void persist(const void* p, std::size_t len);

  char* base_;
  std::size_t size_;
  pmem::FlushBackend* backend_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_logged_ = 0;
};

}  // namespace nvc::runtime
