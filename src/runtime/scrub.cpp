#include "runtime/scrub.hpp"

#include <algorithm>
#include <cstring>

#include "pmem/pmem_alloc.hpp"
#include "runtime/undo_log.hpp"

namespace nvc::runtime {

Scrubber::Scrubber(ScrubConfig config, void* data, std::size_t data_size,
                   void* logs, std::size_t log_segment_size,
                   std::size_t log_segments)
    : config_(config),
      data_(static_cast<char*>(data)),
      data_size_(data_size),
      logs_(static_cast<char*>(logs)),
      log_segment_size_(log_segment_size),
      log_segments_(log_segments) {}

void Scrubber::refresh_header_mirror() {
  // Caller holds header_lock_. The mirror is refreshed after every
  // legitimate mutation, so by the time scrub_metadata compares (under the
  // same lock) any divergence with an *implausible* live header is
  // corruption, never an in-flight update.
  const std::size_t n = pmem::PmemAllocator::header_size();
  if (data_ == nullptr || data_size_ < n) return;
  header_mirror_.resize(n);
  std::memcpy(header_mirror_.data(), data_, n);
  mirror_valid_ = true;
}

void Scrubber::scrub_metadata() {
  // Heap header: only under the owner's lock, and only repair when the
  // header fails its own plausibility checks — a legitimate racer never
  // produces an implausible header, so restoring the mirror can never
  // clobber a valid newer state.
  if (header_lock_ != nullptr && data_ != nullptr) {
    std::lock_guard<std::mutex> lock(*header_lock_);
    const pmem::PmemAllocator::HeaderStatus st =
        pmem::PmemAllocator::inspect(data_, data_size_);
    const bool corrupt = !st.magic_ok || !st.version_ok || !st.bump_plausible;
    if (corrupt) {
      ++checksum_mismatches_;  // detected either way
      if (config_.repair_metadata && mirror_valid_) {
        std::memcpy(data_, header_mirror_.data(), header_mirror_.size());
        metadata_repairs_.fetch_add(1, std::memory_order_relaxed);
        if (wear_ != nullptr) {
          // A repair is a media write like any other.
          const LineAddr first = line_of(reinterpret_cast<PmAddr>(data_));
          const LineAddr last = line_of(reinterpret_cast<PmAddr>(
              data_ + header_mirror_.size() - 1));
          for (LineAddr line = first; line <= last; ++line) {
            wear_->record(line);
          }
        }
      }
    }
  }

  // Undo-log header magics: the magic is immutable after format, so the
  // compile-time constant IS the redundant copy. The state word mutates on
  // every sync/commit and cannot be checked online. All-zero headers are
  // stillborn slots, not corruption.
  if (logs_ != nullptr && config_.repair_metadata) {
    for (std::size_t s = 0; s < log_segments_; ++s) {
      char* seg = logs_ + s * log_segment_size_;
      std::uint64_t magic;
      std::memcpy(&magic, seg, sizeof(magic));
      if (magic == UndoLog::kMagic || magic == 0) continue;
      const std::uint64_t fixed = UndoLog::kMagic;
      std::memcpy(seg, &fixed, sizeof(fixed));
      metadata_repairs_.fetch_add(1, std::memory_order_relaxed);
      if (wear_ != nullptr) {
        wear_->record(line_of(reinterpret_cast<PmAddr>(seg)));
      }
    }
  }
}

void Scrubber::scrub_data_batch() {
  if (data_ == nullptr || data_size_ < kCacheLineSize) return;
  const std::size_t total_lines = data_size_ / kCacheLineSize;
  const std::size_t batch = std::min(config_.batch_lines, total_lines);
  const bool check_media = injector_ != nullptr && fault_stats_ != nullptr;
  for (std::size_t i = 0; i < batch; ++i) {
    const std::size_t idx = cursor_;
    cursor_ = (cursor_ + 1) % total_lines;
    if (cursor_ == 0) passes_.fetch_add(1, std::memory_order_relaxed);
    const char* line_bytes = data_ + idx * kCacheLineSize;
    const LineAddr line = line_of(reinterpret_cast<PmAddr>(line_bytes));
    if (check_media && injector_->line_bad(line) &&
        !fault_stats_->quarantined(line)) {
      // The persistent-fault model says this line's media is gone: poison
      // it through the same FaultStats the write path uses, so commit
      // suspension and HealthReport treat a scrub discovery exactly like a
      // write-back discovery.
      fault_stats_->quarantine(line);
      media_quarantines_.fetch_add(1, std::memory_order_relaxed);
    }
    if (table_ != nullptr && !table_->verify(idx, line_bytes)) {
      // Committed content no longer matches its commit-time checksum and
      // no store is in flight (dirty lines are not checkable). Data has no
      // redundant copy — count and surface, never "repair" by guessing.
      checksum_mismatches_.fetch_add(1, std::memory_order_relaxed);
    }
    lines_scanned_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool Scrubber::idle_step() {
  if (stopped_.load(std::memory_order_acquire)) return false;
  std::unique_lock<std::mutex> lock(slice_mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return false;  // another worker's slice is running
  if (stopped_.load(std::memory_order_acquire)) return false;
  scrub_metadata();
  scrub_data_batch();
  slices_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void Scrubber::shutdown() {
  stopped_.store(true, std::memory_order_release);
  // Wait out an in-flight slice: once we hold the slice lock, every later
  // idle_step observes stopped_ and returns before touching the region.
  std::lock_guard<std::mutex> lock(slice_mutex_);
}

ScrubStats Scrubber::stats() const {
  ScrubStats s;
  s.slices = slices_.load(std::memory_order_relaxed);
  s.passes = passes_.load(std::memory_order_relaxed);
  s.lines_scanned = lines_scanned_.load(std::memory_order_relaxed);
  s.metadata_repairs = metadata_repairs_.load(std::memory_order_relaxed);
  s.checksum_mismatches = checksum_mismatches_.load(std::memory_order_relaxed);
  s.media_quarantines = media_quarantines_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace nvc::runtime
