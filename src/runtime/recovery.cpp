#include "runtime/recovery.hpp"

#include <algorithm>
#include <cstring>

#include "common/checksum.hpp"
#include "pmem/pmem_alloc.hpp"
#include "runtime/undo_log.hpp"

namespace nvc::runtime {

namespace {

/// Records replayed in bug-skip mode trust length fields alone: walk the
/// segment accepting any in-bounds entry shape without certifying a single
/// check word. This is the seeded verification-skip bug the corruption
/// fuzzer must catch — it replays whatever bytes the image holds.
std::vector<std::uint64_t> trusting_walk(const char* seg, std::size_t size) {
  std::vector<std::uint64_t> offsets;
  std::uint64_t off = UndoLog::kHeaderSize;
  while (off + sizeof(UndoLog::EntryHead) <= size) {
    UndoLog::EntryHead head;
    std::memcpy(&head, seg + off, sizeof(head));
    if (head.len < 1 || head.len > UndoLog::kMaxPayload) break;
    const std::uint64_t entry_size =
        sizeof(UndoLog::EntryHead) + align_up(head.len, 8);
    if (off + entry_size > size) break;
    offsets.push_back(off);
    off += entry_size;
  }
  return offsets;
}

bool header_all_zero(const char* seg, std::size_t size) {
  const std::size_t probe = std::min(size, sizeof(UndoLog::LogHeader));
  for (std::size_t i = 0; i < probe; ++i) {
    if (seg[i] != 0) return false;
  }
  return true;
}

}  // namespace

void LineVerifyTable::note_commit(std::size_t idx,
                                  const void* line_bytes) noexcept {
  if (idx >= slots_.size()) return;
  const std::uint64_t v = kKnown | crc32c(line_bytes, kCacheLineSize);
  slots_[idx].store(v, std::memory_order_release);
}

bool LineVerifyTable::verify(std::size_t idx,
                             const void* line_bytes) const noexcept {
  if (!checkable(idx)) return true;
  const std::uint64_t v = slots_[idx].load(std::memory_order_acquire);
  return static_cast<std::uint32_t>(v) == crc32c(line_bytes, kCacheLineSize);
}

const char* to_string(SegmentOutcome outcome) {
  switch (outcome) {
    case SegmentOutcome::kClean:
      return "clean";
    case SegmentOutcome::kRolledBack:
      return "rolled-back";
    case SegmentOutcome::kStillborn:
      return "stillborn";
    case SegmentOutcome::kUnrecoverable:
      return "unrecoverable";
  }
  return "?";
}

const char* to_string(RecoveryOutcome outcome) {
  switch (outcome) {
    case RecoveryOutcome::kClean:
      return "clean";
    case RecoveryOutcome::kSalvaged:
      return "salvaged";
    case RecoveryOutcome::kUnrecoverable:
      return "unrecoverable";
  }
  return "?";
}

std::string RecoveryReport::summary() const {
  std::string s = "recovery: ";
  s += to_string(outcome);
  if (clean_shutdown) s += " (clean shutdown seal)";
  s += ", " + std::to_string(records_undone) + " records undone, ";
  s += std::to_string(segments_rolled_back) + " rolled back / " +
       std::to_string(segments_unrecoverable) + " unrecoverable of " +
       std::to_string(segments.size()) + " segments";
  if (data_lines_failed_verify > 0) {
    s += ", " + std::to_string(data_lines_failed_verify) +
         " data lines failed verification";
  }
  if (!defects.empty()) {
    s += ", " + std::to_string(defects.size()) + " defects";
  }
  return s;
}

void RecoveryManager::note_defect(RecoveryReport& report, std::string text) {
  report.defects.push_back(std::move(text));
}

void RecoveryManager::persist(const void* p, std::size_t len) {
  if (view_.sink == nullptr || len == 0) return;
  const auto addr = reinterpret_cast<PmAddr>(p);
  const LineAddr first = line_of(addr);
  const LineAddr last = line_of(addr + len - 1);
  for (LineAddr line = first; line <= last; ++line) {
    view_.sink->flush_line(line);
  }
  view_.sink->drain();
}

bool RecoveryManager::needs_recovery() const {
  if (view_.logs == nullptr) return false;
  const char* logs = static_cast<const char*>(view_.logs);
  for (std::size_t s = 0; s < view_.log_segments; ++s) {
    const char* seg = logs + s * view_.log_segment_size;
    if (header_all_zero(seg, view_.log_segment_size)) continue;
    const UndoLog::Inspection ins =
        UndoLog::inspect(seg, view_.log_segment_size);
    // Corruption needs salvage just as much as uncommitted records do: a
    // destroyed magic, an implausible tail, or a chain that stops short of
    // the durable tail all require run() to classify and repair.
    if (!ins.formatted || !ins.state_plausible || !ins.tail_covered) {
      return true;
    }
    if (ins.durable_tail > UndoLog::kHeaderSize || !ins.offsets.empty()) {
      return true;
    }
  }
  return false;
}

void RecoveryManager::salvage_segment(std::size_t slot,
                                      RecoveryReport& report) {
  char* seg = static_cast<char*>(view_.logs) + slot * view_.log_segment_size;
  const std::size_t seg_size = view_.log_segment_size;

  SegmentReport sr;
  sr.slot = slot;

  if (header_all_zero(seg, seg_size)) {
    // Never formatted: a thread slot that was never claimed (or a fresh
    // region). Nothing could have been logged, so nothing is lost.
    sr.outcome = SegmentOutcome::kStillborn;
    ++report.segments_stillborn;
    report.segments.push_back(std::move(sr));
    return;
  }

  UndoLog::Inspection ins = UndoLog::inspect(seg, seg_size);
  sr.generation = ins.gen;

  bool reformat = false;
  if (!ins.formatted) {
    sr.outcome = SegmentOutcome::kUnrecoverable;
    sr.detail = "log header magic destroyed; any covered FASE is lost";
    reformat = true;
  } else if (!ins.state_plausible) {
    sr.outcome = SegmentOutcome::kUnrecoverable;
    sr.detail = "state word implausible (durable tail " +
                std::to_string(ins.durable_tail) + " outside segment of " +
                std::to_string(seg_size) + " bytes)";
    reformat = true;
  } else {
    std::vector<std::uint64_t> offsets = std::move(ins.offsets);
    bool tail_covered = ins.tail_covered;
    if (bug_skip_verification_) {
      offsets = trusting_walk(seg, seg_size);
      tail_covered = true;  // the bug: trust whatever the image says
    }
    sr.records_certified = offsets.size();

    // Replay the verifiable records newest-first. Tokens are bounds-checked
    // against the data region even though they sit under the check word: a
    // shrunken (truncated) region legitimately invalidates old tokens, and
    // writing through one would corrupt unrelated memory.
    char* data = static_cast<char*>(view_.data);
    for (auto it = offsets.rbegin(); it != offsets.rend(); ++it) {
      UndoLog::EntryHead head;
      std::memcpy(&head, seg + *it, sizeof(head));
      if (head.addr_token + head.len > view_.data_size) {
        sr.detail = "record at offset " + std::to_string(*it) +
                    " targets bytes outside the data region (token " +
                    std::to_string(head.addr_token) + ")";
        sr.outcome = SegmentOutcome::kUnrecoverable;
        reformat = true;
        continue;
      }
      std::memcpy(data + head.addr_token, seg + *it + sizeof(head), head.len);
      persist(data + head.addr_token, head.len);
      ++sr.records_applied;
    }

    if (sr.records_applied > 0) {
      // The rollback's commit point: de-certify the replayed generation in
      // one 8-byte power-fail-atomic store, exactly as UndoLog::commit.
      UndoLog::LogHeader head;
      std::memcpy(&head, seg, sizeof(head));
      head.state = UndoLog::pack_state(ins.gen + 1, UndoLog::kHeaderSize);
      std::memcpy(seg, &head, sizeof(head));
      persist(seg, sizeof(head));
    }

    if (!tail_covered) {
      sr.outcome = SegmentOutcome::kUnrecoverable;
      sr.detail = "certified chain ends at offset " +
                  std::to_string(ins.certified_extent) +
                  ", short of durable tail " +
                  std::to_string(ins.durable_tail) +
                  "; synced records were corrupted and their undo bytes are "
                  "lost";
      reformat = true;
    } else if (sr.outcome != SegmentOutcome::kUnrecoverable) {
      sr.outcome = sr.records_applied > 0 ? SegmentOutcome::kRolledBack
                                          : SegmentOutcome::kClean;
    }
  }

  if (reformat) {
    // Report first (above), then make the slot reusable: a fresh committed
    // header two generations ahead, so no stale byte pattern left in the
    // segment can certify against the new generation.
    UndoLog::LogHeader head;
    head.magic = UndoLog::kMagic;
    head.state = UndoLog::pack_state(ins.formatted ? ins.gen + 2 : 1,
                                     UndoLog::kHeaderSize);
    std::memcpy(seg, &head, sizeof(head));
    persist(seg, sizeof(head));
  }

  switch (sr.outcome) {
    case SegmentOutcome::kClean:
      ++report.segments_clean;
      break;
    case SegmentOutcome::kRolledBack:
      ++report.segments_rolled_back;
      break;
    case SegmentOutcome::kStillborn:
      ++report.segments_stillborn;
      break;
    case SegmentOutcome::kUnrecoverable:
      ++report.segments_unrecoverable;
      break;
  }
  report.records_undone += sr.records_applied;
  if (!sr.detail.empty()) {
    note_defect(report,
                "log segment " + std::to_string(slot) + ": " + sr.detail);
  }
  report.segments.push_back(std::move(sr));
}

void RecoveryManager::verify_data(RecoveryReport& report) {
  if (table_ == nullptr || bug_skip_verification_) return;
  const char* data = static_cast<const char*>(view_.data);
  const std::size_t lines =
      std::min(table_->lines(), view_.data_size / kCacheLineSize);
  constexpr std::size_t kMaxDetailed = 8;
  for (std::size_t idx = 0; idx < lines; ++idx) {
    if (table_->verify(idx, data + idx * kCacheLineSize)) continue;
    ++report.data_lines_failed_verify;
    if (report.data_lines_failed_verify <= kMaxDetailed) {
      note_defect(report, "data line " + std::to_string(idx) +
                              " fails its commit-time checksum");
    }
  }
  if (report.data_lines_failed_verify > kMaxDetailed) {
    note_defect(report,
                "(" +
                    std::to_string(report.data_lines_failed_verify -
                                   kMaxDetailed) +
                    " more data lines fail verification)");
  }
}

RecoveryReport RecoveryManager::run() {
  RecoveryReport report;

  // Stage 1: validate the heap header. A destroyed header does not stop the
  // log walk — committed data lines are still restored to their last
  // verifiable commit — but the region as a whole is unrecoverable: the
  // root pointer and allocator state can no longer be trusted. Headerless
  // views (crash-rig shadow images) skip the stage.
  if (view_.heap_header) {
    const pmem::PmemAllocator::HeaderStatus heap =
        pmem::PmemAllocator::inspect(view_.data, view_.data_size);
    report.heap_header_ok = heap.magic_ok && heap.version_ok;
    report.heap_bump_plausible = heap.bump_plausible;
    report.clean_shutdown = heap.seal_valid;
    if (!heap.magic_ok) {
      note_defect(report, "heap header magic destroyed");
    } else if (!heap.version_ok) {
      note_defect(report, "heap layout version mismatch (found " +
                              std::to_string(heap.version) + ", want " +
                              std::to_string(pmem::PmemAllocator::kVersion) +
                              ")");
    } else if (!heap.bump_plausible) {
      note_defect(report, "heap bump frontier implausible (" +
                              std::to_string(heap.bump) + " of " +
                              std::to_string(view_.data_size) + " bytes)");
    }
    if (heap.sealed && !heap.seal_valid) {
      note_defect(report,
                  "clean-shutdown seal present but its checksum does not "
                  "match the header bytes");
    }
  } else {
    report.heap_header_ok = true;
    report.heap_bump_plausible = true;
  }

  // Stages 2+3: walk and salvage every log segment.
  if (view_.logs != nullptr) {
    for (std::size_t s = 0; s < view_.log_segments; ++s) {
      salvage_segment(s, report);
    }
  }

  // Stage 4: verify the resulting data image against commit-time checksums.
  verify_data(report);

  const bool unrecoverable = !report.heap_header_ok ||
                             !report.heap_bump_plausible ||
                             report.segments_unrecoverable > 0 ||
                             report.data_lines_failed_verify > 0;
  if (unrecoverable) {
    report.outcome = RecoveryOutcome::kUnrecoverable;
  } else if (report.segments_rolled_back > 0) {
    report.outcome = RecoveryOutcome::kSalvaged;
  } else {
    report.outcome = RecoveryOutcome::kClean;
  }
  // A valid seal only means the *header* was quiescent at shutdown; log or
  // data corruption found above still overrides the clean verdict.
  report.clean_shutdown =
      report.clean_shutdown && report.outcome == RecoveryOutcome::kClean;
  return report;
}

}  // namespace nvc::runtime
