#include "testing/history.hpp"

#include <algorithm>
#include <sstream>

namespace nvc::testing {

const char* op_name(OpCode code) noexcept {
  switch (code) {
    case OpCode::kEnqueue:
      return "enqueue";
    case OpCode::kDequeue:
      return "dequeue";
    case OpCode::kInsert:
      return "insert";
    case OpCode::kErase:
      return "erase";
    case OpCode::kContains:
      return "contains";
  }
  return "?";
}

std::string Op::describe() const {
  std::ostringstream out;
  out << "t" << thread << ":" << op_name(code) << "(" << arg;
  if (code == OpCode::kInsert) out << "," << arg2;
  out << ")";
  if (res == kNoResponse) {
    out << "->pending";
  } else {
    out << "->" << (ok ? "ok" : "no");
    if (code != OpCode::kEnqueue && code != OpCode::kInsert && ok) {
      out << ":" << ret;
    }
  }
  out << "@[" << inv << "," << (res == kNoResponse ? -1 : (long long)res)
      << "]";
  return out.str();
}

HistoryRecorder::HistoryRecorder(std::size_t threads, Clock clock)
    : clock_(std::move(clock)), lanes_(threads) {}

std::size_t HistoryRecorder::begin(std::size_t thread, OpCode code,
                                   std::uint64_t arg, std::uint64_t arg2) {
  NVC_REQUIRE(thread < lanes_.size(), "lane out of range");
  Op op;
  op.thread = thread;
  op.code = code;
  op.arg = arg;
  op.arg2 = arg2;
  op.inv = tick();
  lanes_[thread].push_back(op);
  return lanes_[thread].size() - 1;
}

void HistoryRecorder::end(std::size_t thread, std::size_t idx, bool ok,
                          std::uint64_t ret) {
  Op& op = lanes_[thread][idx];
  NVC_ASSERT(op.res == kNoResponse, "double end()");
  op.ok = ok;
  op.ret = ret;
  op.res = tick();
}

std::vector<Op> HistoryRecorder::snapshot() const {
  std::vector<Op> out;
  for (const auto& lane : lanes_) out.insert(out.end(), lane.begin(), lane.end());
  std::sort(out.begin(), out.end(),
            [](const Op& a, const Op& b) { return a.inv < b.inv; });
  return out;
}

std::vector<Op> HistoryRecorder::cut(std::uint64_t event) const {
  std::vector<Op> out;
  for (const Op& op : snapshot()) {
    if (op.inv > event) continue;
    Op c = op;
    if (c.res != kNoResponse && c.res > event) c.res = kNoResponse;
    out.push_back(c);
  }
  return out;
}

}  // namespace nvc::testing
