#include "testing/durability_oracle.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace nvc::testing {

DurabilityOracle::DurabilityOracle(const FuzzProgram& program) {
  snapshots_.resize(program.contexts);
  std::vector<std::vector<std::uint8_t>> image(
      program.contexts, std::vector<std::uint8_t>(program.data_bytes(), 0));
  std::vector<int> depth(program.contexts, 0);
  for (std::size_t c = 0; c < program.contexts; ++c) {
    snapshots_[c].push_back(image[c]);  // snapshot 0: pre-program zeros
  }
  for (const FuzzOp& op : program.ops) {
    switch (op.kind) {
      case FuzzOpKind::kFaseBegin:
        ++depth[op.ctx];
        break;
      case FuzzOpKind::kFaseEnd:
        NVC_REQUIRE(depth[op.ctx] > 0, "unbalanced fase_end");
        if (--depth[op.ctx] == 0) {
          // Outermost commit: everything stored since the previous commit
          // becomes permanent, atomically.
          snapshots_[op.ctx].push_back(image[op.ctx]);
        }
        break;
      case FuzzOpKind::kPstore: {
        NVC_REQUIRE(depth[op.ctx] > 0, "pstore outside a FASE");
        const FuzzObject& obj = program.objects[op.object];
        NVC_REQUIRE(op.offset + op.len <= obj.size, "store past object end");
        const std::vector<std::uint8_t> bytes =
            payload_bytes(op.value_seed, op.len);
        std::copy(bytes.begin(), bytes.end(),
                  image[op.ctx].begin() +
                      static_cast<std::ptrdiff_t>(obj.offset + op.offset));
        break;
      }
      case FuzzOpKind::kPersistBarrier:
        // Flush scheduling only — a barrier mid-FASE creates no new
        // recoverable state: the undo log still covers the open FASE, so a
        // crash after the barrier rolls back to the last commit.
        break;
      case FuzzOpKind::kAlloc:
      case FuzzOpKind::kFree:
        // Addresses are never reused, so the image is unaffected.
        break;
    }
  }
  for (std::size_t c = 0; c < program.contexts; ++c) {
    NVC_REQUIRE(depth[c] == 0, "program left a FASE open");
  }
}

int DurabilityOracle::match(std::size_t ctx,
                            const std::vector<std::uint8_t>& image) const {
  const auto& snaps = snapshots_[ctx];
  for (std::size_t i = snaps.size(); i-- > 0;) {
    if (snaps[i] == image) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::uint8_t> DurabilityOracle::final_object_bytes(
    const FuzzProgram& program, std::uint32_t object) const {
  const FuzzObject& obj = program.objects[object];
  const auto& image = final_committed(obj.ctx);
  const auto first =
      image.begin() + static_cast<std::ptrdiff_t>(obj.offset);
  return std::vector<std::uint8_t>(first,
                                   first + static_cast<std::ptrdiff_t>(obj.size));
}

}  // namespace nvc::testing
