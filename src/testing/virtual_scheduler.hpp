// Deterministic stand-in for the OS scheduler in crash-fuzzing runs.
//
// The production flush-behind pipeline and async burst analysis hand work
// to real background threads; which write-backs have completed at a crash
// is then decided by the OS scheduler and not reproducible. For fuzzing,
// the rig opens *manual* channels instead (FlushWorker::open_manual_channel,
// AnalysisWorker::open_manual_channel): the background threads never touch
// them, and the handed-off work runs only when the driver pumps it. This
// scheduler makes those pump decisions from a seed — after every program
// op it draws how many queued write-backs the virtual flush worker performs
// and whether the virtual analysis worker gets a quantum — so the entire
// interleaving, and therefore every crash state, replays from NVC_FUZZ_SEED
// on a single OS thread.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace nvc::testing {

struct VirtualSchedulerConfig {
  /// Chance the virtual flush worker runs at all at a yield point.
  double flush_run_p = 0.55;
  /// Most write-backs per quantum when it does run (uniform 1..max). Small,
  /// so lines linger in the ring across several ops and crashes land with
  /// writes genuinely in flight.
  std::uint32_t flush_max_batch = 3;
  /// Chance the virtual analysis worker gets a quantum at a yield point.
  double analysis_run_p = 0.4;
};

class VirtualScheduler {
 public:
  explicit VirtualScheduler(std::uint64_t seed,
                            VirtualSchedulerConfig config = {})
      : rng_(seed), config_(config) {}

  /// How many queued lines the virtual flush worker writes back now
  /// (0 = it stays descheduled this quantum).
  std::uint32_t flush_quantum() {
    if (!rng_.chance(config_.flush_run_p)) return 0;
    return static_cast<std::uint32_t>(rng_.range(1, config_.flush_max_batch));
  }

  /// Whether the virtual analysis worker runs one handed-off burst now.
  bool analysis_quantum() { return rng_.chance(config_.analysis_run_p); }

 private:
  Rng rng_;
  VirtualSchedulerConfig config_;
};

}  // namespace nvc::testing
