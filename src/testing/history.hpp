// Operation histories for the linearizability + durability harness.
//
// Each structure operation is recorded as an invocation/response pair of
// timestamps drawn from a pluggable clock. Under the crash rig the clock is
// ShadowPSpace::claim_event — the SAME event counter that media write-backs
// claim — so a crash cut at event e cleanly partitions the history:
//
//   res <= e          completed before the cut (its effect must survive)
//   inv <= e < res    pending at the cut (may or may not have taken effect;
//                     its return value was never observed)
//   inv > e           never invoked (excluded)
//
// which is exactly the input shape check_durable() (linearizability.hpp)
// consumes. Free-running stress tests use the recorder's internal atomic
// clock instead and check ordinary linearizability of the full history.
//
// Threads append only to their own lane; merging happens in snapshot()
// after the workers have joined. No locks anywhere on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace nvc::testing {

enum class OpCode : std::uint8_t {
  kEnqueue,
  kDequeue,
  kInsert,
  kErase,
  kContains,
};

const char* op_name(OpCode code) noexcept;

inline constexpr std::uint64_t kNoResponse = ~std::uint64_t{0};

struct Op {
  std::size_t thread = 0;
  OpCode code = OpCode::kEnqueue;
  std::uint64_t arg = 0;   // enqueue value; map/skiplist key
  std::uint64_t arg2 = 0;  // insert value
  bool ok = false;         // recorded boolean result
  std::uint64_t ret = 0;   // dequeued / erased / looked-up value
  std::uint64_t inv = 0;
  std::uint64_t res = kNoResponse;

  bool completed_by(std::uint64_t cut) const noexcept { return res <= cut; }
  std::string describe() const;
};

class HistoryRecorder {
 public:
  using Clock = std::function<std::uint64_t()>;

  /// With no clock, an internal atomic counter is used (free-running mode).
  /// Under the crash rig pass [&ps] { return ps.claim_event(); } so history
  /// timestamps and flush events share one total order.
  explicit HistoryRecorder(std::size_t threads, Clock clock = {});

  /// Record an invocation on `thread`'s lane; returns the lane index to
  /// hand back to end().
  std::size_t begin(std::size_t thread, OpCode code, std::uint64_t arg,
                    std::uint64_t arg2 = 0);
  void end(std::size_t thread, std::size_t idx, bool ok,
           std::uint64_t ret = 0);

  /// Merged history (call after workers join). Sorted by invocation time.
  std::vector<Op> snapshot() const;

  /// The history as a crash at event `cut` leaves it: ops invoked by the
  /// cut, sorted; responses after the cut are erased to kNoResponse
  /// (pending — the caller never saw them return).
  std::vector<Op> cut(std::uint64_t event) const;

 private:
  Clock clock_;
  std::atomic<std::uint64_t> internal_{0};
  std::vector<std::vector<Op>> lanes_;

  std::uint64_t tick() {
    return clock_ ? clock_()
                  : internal_.fetch_add(1, std::memory_order_acq_rel);
  }
};

}  // namespace nvc::testing
