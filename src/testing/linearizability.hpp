// Bounded linearizability + durable-linearizability checking (Wing & Gong
// style search with memoization) for the durable structure suite.
//
// check_linearizable<Model>(ops) — is there a total order of the ops,
// consistent with their real-time order (op A precedes op B iff
// res(A) < inv(B)) and with the sequential Model, matching every recorded
// return value? Used by the stress tests on complete histories.
//
// check_durable<Model>(ops, recovered) — the post-crash oracle. `ops` is a
// crash cut (HistoryRecorder::cut): completed ops carry their observed
// returns; PENDING ops (res == kNoResponse) were in flight at the crash.
// The durable-linearizability condition checked (Izraelevitz et al., the
// definition DESIGN.md §13 quotes): there exists a linearization of
//
//   ALL completed ops (their effects and return values are contractual:
//   each op persisted what its return depends on before returning), plus
//   ANY SUBSET of the pending ops (each with any outcome the sequential
//   model permits — their returns were never observed),
//
// consistent with real-time order, that drives the model exactly onto the
// recovered state. No such linearization = durability violation.
//
// The search is exponential in the worst case; histories are capped at 64
// ops (a bitmask) and a node budget converts pathological cases into an
// explicit kBudget verdict instead of a hang. Memoizing visited
// (mask, state) pairs keeps realistic histories (dozens of ops, heavy
// real-time ordering) comfortably inside the budget.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "testing/history.hpp"

namespace nvc::testing {

enum class LinVerdict { kOk, kViolation, kBudget };

struct LinResult {
  LinVerdict verdict = LinVerdict::kOk;
  std::string detail;  // on violation: the history that has no witness
  std::size_t nodes = 0;

  bool ok() const noexcept { return verdict == LinVerdict::kOk; }
};

/// Sequential FIFO queue. Op mapping: kEnqueue(arg=value, ok=true);
/// kDequeue(ok=false ⇔ empty, ret=front).
struct QueueModel {
  using State = std::deque<std::uint64_t>;
  static bool apply(State& s, const Op& op);
  static std::vector<State> apply_pending(const State& s, const Op& op);
  static std::string encode(const State& s);
};

/// Sequential map. Op mapping: kInsert(arg=key, arg2=value, ok ⇔ newly
/// inserted — no overwrite); kErase(arg=key, ok ⇔ present, ret=old value);
/// kContains(arg=key, ok ⇔ present, ret=value).
struct MapModel {
  using State = std::map<std::uint64_t, std::uint64_t>;
  static bool apply(State& s, const Op& op);
  static std::vector<State> apply_pending(const State& s, const Op& op);
  static std::string encode(const State& s);
};

namespace detail {

template <typename Model>
class LinSearch {
 public:
  LinSearch(const std::vector<Op>& ops, const typename Model::State* recovered,
            std::size_t budget)
      : ops_(ops), recovered_(recovered), budget_(budget) {
    NVC_REQUIRE(ops.size() <= 64, "history too long for the bitmask search");
    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if (ops_[i].res != kNoResponse) completed_ |= bit(i);
    }
  }

  LinResult run() {
    typename Model::State init{};
    LinResult r;
    const bool found = dfs(0, init);
    r.nodes = nodes_;
    if (found) {
      r.verdict = LinVerdict::kOk;
    } else if (over_budget_) {
      r.verdict = LinVerdict::kBudget;
      r.detail = "node budget exhausted";
    } else {
      r.verdict = LinVerdict::kViolation;
      r.detail = describe_history();
    }
    return r;
  }

 private:
  static std::uint64_t bit(std::size_t i) { return std::uint64_t{1} << i; }

  bool dfs(std::uint64_t mask, const typename Model::State& state) {
    if (++nodes_ > budget_) {
      over_budget_ = true;
      return false;
    }
    if ((mask & completed_) == completed_) {
      // Every completed op linearized. Without a recovered state this IS
      // success; with one, success requires the states to coincide (we may
      // still linearize more pending ops below to get there).
      if (recovered_ == nullptr || state == *recovered_) return true;
    }
    std::ostringstream key;
    key << mask << "|" << Model::encode(state);
    if (!visited_.insert(key.str()).second) return false;

    for (std::size_t i = 0; i < ops_.size(); ++i) {
      if ((mask & bit(i)) != 0) continue;
      if (!minimal(mask, i)) continue;
      if (ops_[i].res != kNoResponse) {
        typename Model::State next = state;
        if (Model::apply(next, ops_[i]) && dfs(mask | bit(i), next)) {
          return true;
        }
      } else {
        for (const auto& next : Model::apply_pending(state, ops_[i])) {
          if (dfs(mask | bit(i), next)) return true;
        }
      }
      if (over_budget_) return false;
    }
    return false;
  }

  /// op i may be linearized next iff no unlinearized op finished before it
  /// was invoked (real-time order; pending ops never block anyone).
  bool minimal(std::uint64_t mask, std::size_t i) const {
    for (std::size_t j = 0; j < ops_.size(); ++j) {
      if (j == i || (mask & bit(j)) != 0) continue;
      if (ops_[j].res != kNoResponse && ops_[j].res < ops_[i].inv) {
        return false;
      }
    }
    return true;
  }

  std::string describe_history() const {
    std::ostringstream out;
    for (const Op& op : ops_) out << op.describe() << " ";
    if (recovered_ != nullptr) {
      out << "| recovered: " << Model::encode(*recovered_);
    }
    return out.str();
  }

  const std::vector<Op>& ops_;
  const typename Model::State* recovered_;
  std::size_t budget_;
  std::uint64_t completed_ = 0;
  std::size_t nodes_ = 0;
  bool over_budget_ = false;
  std::unordered_set<std::string> visited_;
};

}  // namespace detail

template <typename Model>
LinResult check_linearizable(const std::vector<Op>& ops,
                             std::size_t node_budget = 2'000'000) {
  detail::LinSearch<Model> search(ops, nullptr, node_budget);
  return search.run();
}

template <typename Model>
LinResult check_durable(const std::vector<Op>& ops,
                        const typename Model::State& recovered,
                        std::size_t node_budget = 2'000'000) {
  detail::LinSearch<Model> search(ops, &recovered, node_budget);
  return search.run();
}

}  // namespace nvc::testing
