// Random FASE programs for the crash-state fuzzer (DESIGN.md §9).
//
// A FuzzProgram is a seeded, fully deterministic script over the public
// runtime surface: failure-atomic sections (including nested and empty
// ones), persistent stores of varied sizes and alignments (many straddle a
// cache-line boundary on purpose), mid-FASE persistence barriers, and
// allocate/free of the objects the stores target — interleaved across
// several logical contexts, each modeling one runtime thread. The same
// program is interpreted twice: by the crash rig (tests/support/crash_rig)
// under an injected power failure, and analytically by the
// DurabilityOracle, which computes every legally recoverable state. One
// 64-bit seed reproduces the whole program.
//
// Object model: every context owns a private data region; objects are
// bump-allocated ranges inside it and addresses are never reused, so a
// freed object's bytes stay inert and the whole region image remains a
// deterministic function of the committed stores. Stores only ever target
// live objects and only ever happen inside a FASE.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace nvc::testing {

enum class FuzzOpKind : std::uint8_t {
  kFaseBegin,       // enter a FASE on ctx (nestable)
  kFaseEnd,         // leave a FASE on ctx (outermost end = commit)
  kPstore,          // instrumented persistent store into a live object
  kPersistBarrier,  // mid-FASE flush of everything buffered
  kAlloc,           // allocate `object` (size = len), outside any FASE
  kFree,            // free `object`, outside any FASE
};

const char* to_string(FuzzOpKind kind);

struct FuzzOp {
  FuzzOpKind kind;
  std::uint32_t ctx = 0;     // which logical context executes the op
  std::uint32_t object = 0;  // kPstore/kAlloc/kFree: index into objects
  std::uint32_t offset = 0;  // kPstore: byte offset within the object
  std::uint32_t len = 0;     // kPstore: bytes written; kAlloc: object size
  std::uint64_t value_seed = 0;  // kPstore: derives the payload bytes
};

struct FuzzObject {
  std::uint32_t ctx = 0;  // owning context
  PmAddr offset = 0;      // byte offset within the context's data region
  std::uint32_t size = 0;
};

struct FuzzProgramConfig {
  std::size_t max_contexts = 3;
  /// Per-context data region, in cache lines. Small on purpose: repeated
  /// stores to the same lines are what make crash states interesting.
  std::size_t data_lines = 16;
  /// Approximate op count (the generator adds closing kFaseEnd ops).
  std::size_t target_ops = 160;
  /// Largest single pstore; > kCacheLineSize so some stores span 2+ lines
  /// and get logged in multiple undo pieces.
  std::uint32_t max_store = 160;
};

struct FuzzProgram {
  std::uint64_t seed = 0;
  std::size_t contexts = 1;
  std::size_t data_lines = 16;           // per context
  std::vector<FuzzOp> ops;
  std::vector<FuzzObject> objects;       // indexed by FuzzOp::object

  std::size_t data_bytes() const noexcept {
    return data_lines * kCacheLineSize;
  }
};

/// Generate a random program. Same (seed, config) => identical program,
/// on every platform (all randomness flows through common/rng.hpp).
FuzzProgram generate_program(std::uint64_t seed,
                             const FuzzProgramConfig& config = {});

/// The payload a kPstore writes: `len` bytes derived from `value_seed` by
/// splitmix64. Shared by the interpreter and the oracle so both sides
/// materialize identical data.
std::vector<std::uint8_t> payload_bytes(std::uint64_t value_seed,
                                        std::size_t len);

}  // namespace nvc::testing
