#include "testing/seed.hpp"

#include <sstream>

#include "common/env.hpp"

namespace nvc::testing {

std::uint64_t seed_from_env(const char* env_var, std::uint64_t fallback) {
  return static_cast<std::uint64_t>(
      env_int(env_var, static_cast<std::int64_t>(fallback)));
}

std::string replay_hint(const char* env_var, std::uint64_t seed) {
  std::ostringstream out;
  out << "replay: " << env_var << "=" << seed;
  return out.str();
}

std::string fuzz_replay_line(std::uint64_t program_seed,
                             const std::string& mode_name,
                             std::uint64_t freeze_event,
                             const std::string& fault_env) {
  std::ostringstream out;
  out << "replay: NVC_FUZZ_SEED=" << program_seed << " NVC_FUZZ_MODE="
      << mode_name << " NVC_FUZZ_FREEZE=" << freeze_event;
  if (!fault_env.empty()) out << " " << fault_env;
  out << " ctest -R test_fuzz_crash --output-on-failure";
  return out.str();
}

std::string struct_replay_line(std::uint64_t seed,
                               const std::string& structure,
                               std::uint64_t freeze_event,
                               const std::string& env_fragment) {
  std::ostringstream out;
  out << "replay: NVC_FUZZ_SEED=" << seed << " NVC_FUZZ_STRUCT=" << structure
      << " NVC_FUZZ_FREEZE=" << freeze_event;
  if (!env_fragment.empty()) out << " " << env_fragment;
  out << " ctest -R test_structures_fuzz --output-on-failure";
  return out.str();
}

}  // namespace nvc::testing
