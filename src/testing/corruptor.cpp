#include "testing/corruptor.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "runtime/undo_log.hpp"

namespace nvc::testing {

CorruptionKind corruption_kind(std::size_t index) {
  NVC_REQUIRE(index < kCorruptionKinds);
  return static_cast<CorruptionKind>(index);
}

const char* to_string(CorruptionKind kind) {
  switch (kind) {
    case CorruptionKind::kBitFlips:
      return "bit-flips";
    case CorruptionKind::kLineScribble:
      return "line-scribble";
    case CorruptionKind::kTruncation:
      return "truncation";
    case CorruptionKind::kTornTear:
      return "torn-tear";
    case CorruptionKind::kStaleGeneration:
      return "stale-generation";
    case CorruptionKind::kHeaderMutation:
      return "header-mutation";
  }
  return "?";
}

bool parse_corruption_kind(const char* name, CorruptionKind& kind) {
  if (name == nullptr) return false;
  for (std::size_t i = 0; i < kCorruptionKinds; ++i) {
    const CorruptionKind k = corruption_kind(i);
    if (std::strcmp(name, to_string(k)) == 0) {
      kind = k;
      return true;
    }
  }
  return false;
}

std::uint64_t ImageCorruptor::next() {
  // splitmix64: the repo-wide seeded-stream idiom (see pmem/fault.hpp).
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t ImageCorruptor::next_below(std::uint64_t bound) {
  return bound == 0 ? 0 : next() % bound;
}

std::string ImageCorruptor::corrupt(CorruptionKind kind,
                                    std::vector<std::uint8_t>& image,
                                    const std::vector<std::uint8_t>* stale) {
  NVC_REQUIRE(!image.empty());
  switch (kind) {
    case CorruptionKind::kBitFlips:
      return bit_flips(image);
    case CorruptionKind::kLineScribble:
      return line_scribble(image);
    case CorruptionKind::kTruncation:
      return truncation(image);
    case CorruptionKind::kTornTear:
      return torn_tear(image);
    case CorruptionKind::kStaleGeneration:
      return stale_generation(image, stale);
    case CorruptionKind::kHeaderMutation:
      return header_mutation(image);
  }
  return "?";
}

std::string ImageCorruptor::bit_flips(std::vector<std::uint8_t>& image) {
  std::string what = "bit-flips:";
  for (std::size_t i = 0; i < config_.sites; ++i) {
    const std::size_t byte = next_below(image.size());
    const unsigned bit = static_cast<unsigned>(next_below(8));
    image[byte] ^= static_cast<std::uint8_t>(1u << bit);
    what += " @" + std::to_string(byte) + ".b" + std::to_string(bit);
  }
  return what;
}

std::string ImageCorruptor::line_scribble(std::vector<std::uint8_t>& image) {
  const std::size_t lines = image.size() / kCacheLineSize;
  std::string what = "line-scribble:";
  for (std::size_t i = 0; i < config_.sites && lines > 0; ++i) {
    const std::size_t line = next_below(lines);
    for (std::size_t b = 0; b < kCacheLineSize; b += sizeof(std::uint64_t)) {
      const std::uint64_t junk = next();
      std::memcpy(image.data() + line * kCacheLineSize + b, &junk,
                  sizeof(junk));
    }
    what += " line " + std::to_string(line);
  }
  return what;
}

std::string ImageCorruptor::truncation(std::vector<std::uint8_t>& image) {
  // A truncated file reads back as zeros past the cut. Cut somewhere in the
  // back three quarters so the damage can land in data or logs.
  const std::size_t min_keep = image.size() / 4;
  const std::size_t cut = min_keep + next_below(image.size() - min_keep);
  std::memset(image.data() + cut, 0, image.size() - cut);
  return "truncation: image zeroed from byte " + std::to_string(cut) + " of " +
         std::to_string(image.size());
}

std::string ImageCorruptor::torn_tear(std::vector<std::uint8_t>& image) {
  // A multi-line write-queue tear: 2..5 adjacent lines each persisted only
  // a prefix; bytes past each tear revert to zero (the never-written cell
  // state) — the same shape ShadowPmem::flush_line_torn leaves, but across
  // a burst and with the suffix *lost* rather than stale.
  const std::size_t lines = image.size() / kCacheLineSize;
  if (lines == 0) return "torn-tear: image smaller than one line; untouched";
  const std::size_t burst = 2 + next_below(4);
  const std::size_t first = next_below(lines);
  std::string what = "torn-tear: lines";
  for (std::size_t i = 0; i < burst; ++i) {
    const std::size_t line = first + i;
    if (line >= lines) break;
    const std::size_t keep = 8 * (1 + next_below(kCacheLineSize / 8 - 1));
    std::memset(image.data() + line * kCacheLineSize + keep, 0,
                kCacheLineSize - keep);
    what += " " + std::to_string(line) + "(keep " + std::to_string(keep) +
            "B)";
  }
  return what;
}

std::string ImageCorruptor::stale_generation(
    std::vector<std::uint8_t>& image, const std::vector<std::uint8_t>* stale) {
  if (stale == nullptr || stale->size() != image.size() ||
      layout_.log_segments == 0) {
    // No earlier snapshot to replay: degrade to the closest targeted class.
    return "stale-generation (no snapshot): " + header_mutation(image);
  }
  // Revert one whole log segment to its earlier self: entries of a previous
  // generation reappear under whatever state word the old image held. The
  // generation check plus check-word certification must refuse to replay
  // them as current.
  const std::size_t slot = next_below(layout_.log_segments);
  const std::size_t off = layout_.log_offset + slot * layout_.log_segment_size;
  std::memcpy(image.data() + off, stale->data() + off,
              layout_.log_segment_size);
  return "stale-generation: log segment " + std::to_string(slot) +
         " reverted to earlier snapshot";
}

std::string ImageCorruptor::header_mutation(std::vector<std::uint8_t>& image) {
  if (layout_.log_segments == 0) return bit_flips(image);
  std::string what = "header-mutation:";
  for (std::size_t i = 0; i < config_.sites; ++i) {
    const std::size_t slot = next_below(layout_.log_segments);
    const std::size_t off =
        layout_.log_offset + slot * layout_.log_segment_size;
    std::uint64_t value = next();
    switch (next_below(3)) {
      case 0:  // destroy the magic
        std::memcpy(image.data() + off, &value, sizeof(value));
        what += " slot " + std::to_string(slot) + " magic";
        break;
      case 1:  // arbitrary state word (generation and tail both garbage)
        std::memcpy(image.data() + off + sizeof(std::uint64_t), &value,
                    sizeof(value));
        what += " slot " + std::to_string(slot) + " state";
        break;
      default: {  // plausible-looking tail pointing past every real entry
        const std::uint64_t tail =
            runtime::UndoLog::kHeaderSize +
            8 * next_below(layout_.log_segment_size / 8);
        value = runtime::UndoLog::pack_state(
            static_cast<std::uint32_t>(1 + next_below(4)), tail);
        std::memcpy(image.data() + off + sizeof(std::uint64_t), &value,
                    sizeof(value));
        what += " slot " + std::to_string(slot) + " tail->" +
                std::to_string(tail);
        break;
      }
    }
  }
  return what;
}

}  // namespace nvc::testing
