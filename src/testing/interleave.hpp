// Deterministic turnstile scheduler for the durable-structure tests.
//
// Runs N client bodies on real std::threads but admits exactly ONE at a
// time: every PSpace persist step (and every structure retry-loop head)
// calls yield(), and at each yield the scheduler picks — from a seeded RNG
// — which runnable thread proceeds. The interleaving is therefore a pure
// function of (seed, bodies): a failing schedule replays from its seed, and
// single-threaded backends (ShadowPSpace's crash model) are safe under it
// because the turnstile is mutual exclusion.
//
// The yield points sit exactly where the FliT protocol is vulnerable — a
// writer can be parked between tagging a line and completing its write-back
// while a helper runs, which is the window the seeded elision bug
// (PSpace::set_bug_early_untag) needs to manifest.
//
// free_running=true turns yield() into a no-op and releases all threads at
// once: the same test bodies become a genuine tsan stress test over the
// thread-safe HeapPSpace backend.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace nvc::testing {

class InterleaveScheduler {
 public:
  explicit InterleaveScheduler(std::uint64_t seed, bool free_running = false)
      : rng_(seed), free_running_(free_running) {}

  /// Run every body to completion under the turnstile (or concurrently when
  /// free-running). Bodies receive their thread index. Blocks until all
  /// bodies return.
  void run(const std::vector<std::function<void(std::size_t)>>& bodies) {
    const std::size_t n = bodies.size();
    NVC_REQUIRE(n >= 1, "need at least one body");
    state_.assign(n, State::kWaiting);
    current_ = n;  // nobody admitted yet
    switches_ = 0;

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      threads.emplace_back([this, i, &bodies] {
        if (!free_running_) {
          std::unique_lock<std::mutex> lk(mu_);
          state_[i] = State::kRunnable;
          cv_.wait(lk, [&] { return current_ == i; });
        }
        bodies[i](i);
        if (!free_running_) {
          std::unique_lock<std::mutex> lk(mu_);
          state_[i] = State::kDone;
          grant_next_locked();
          cv_.notify_all();
        }
      });
    }

    if (!free_running_) {
      std::unique_lock<std::mutex> lk(mu_);
      // Wait for every thread to park at the gate, then admit the first.
      for (;;) {
        bool all_parked = true;
        for (std::size_t i = 0; i < n; ++i) {
          if (state_[i] == State::kWaiting) all_parked = false;
        }
        if (all_parked) break;
        lk.unlock();
        std::this_thread::yield();
        lk.lock();
      }
      grant_next_locked();
      cv_.notify_all();
    }
    for (auto& t : threads) t.join();
  }

  /// The yield point: called from worker threads (via PSpace's yield hook).
  /// Picks the next thread to admit; blocks the caller until readmitted.
  void yield() {
    if (free_running_) return;
    std::unique_lock<std::mutex> lk(mu_);
    const std::size_t me = current_;
    grant_next_locked();
    if (current_ == me) return;  // re-picked ourselves: keep running
    cv_.notify_all();
    cv_.wait(lk, [&] { return current_ == me; });
  }

  /// Bind this scheduler's yield() as a PSpace yield hook.
  std::function<void()> hook() {
    return [this] { yield(); };
  }

  /// Context switches performed (deterministic under a fixed seed).
  std::uint64_t switches() const noexcept { return switches_; }

 private:
  enum class State { kWaiting, kRunnable, kDone };

  void grant_next_locked() {
    std::vector<std::size_t> runnable;
    for (std::size_t i = 0; i < state_.size(); ++i) {
      if (state_[i] == State::kRunnable) runnable.push_back(i);
    }
    if (runnable.empty()) {
      current_ = state_.size();  // everyone done
      return;
    }
    const std::size_t pick = runnable[rng_.below(runnable.size())];
    if (pick != current_) ++switches_;
    current_ = pick;
  }

  Rng rng_;
  bool free_running_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<State> state_;
  std::size_t current_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace nvc::testing
