#include "testing/fuzz_program.hpp"

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace nvc::testing {
namespace {

/// Object sizes mix three regimes: sub-word stores, around-a-line stores,
/// and multi-line stores (which the undo log records in several pieces).
std::uint32_t pick_object_size(Rng& rng, std::uint32_t max_store) {
  const std::uint64_t r = rng.below(100);
  if (r < 30) return static_cast<std::uint32_t>(rng.range(1, 16));
  if (r < 70) return static_cast<std::uint32_t>(rng.range(17, 96));
  return static_cast<std::uint32_t>(rng.range(97, max_store));
}

struct CtxState {
  PmAddr bump = 0;                       // next free byte in the region
  int depth = 0;                         // open FASE nesting
  std::vector<std::uint32_t> live;       // allocatable targets for pstores
};

}  // namespace

const char* to_string(FuzzOpKind kind) {
  switch (kind) {
    case FuzzOpKind::kFaseBegin: return "fase_begin";
    case FuzzOpKind::kFaseEnd: return "fase_end";
    case FuzzOpKind::kPstore: return "pstore";
    case FuzzOpKind::kPersistBarrier: return "persist_barrier";
    case FuzzOpKind::kAlloc: return "alloc";
    case FuzzOpKind::kFree: return "free";
  }
  return "?";
}

std::vector<std::uint8_t> payload_bytes(std::uint64_t value_seed,
                                        std::size_t len) {
  std::vector<std::uint8_t> out(len);
  std::uint64_t sm = value_seed;
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < len; ++i) {
    if (i % 8 == 0) word = splitmix64(sm);
    out[i] = static_cast<std::uint8_t>(word >> ((i % 8) * 8));
  }
  return out;
}

FuzzProgram generate_program(std::uint64_t seed,
                             const FuzzProgramConfig& config) {
  NVC_REQUIRE(config.max_contexts >= 1);
  NVC_REQUIRE(config.max_store >= 2);
  Rng rng(seed);
  FuzzProgram p;
  p.seed = seed;
  p.data_lines = config.data_lines;
  p.contexts = rng.range(1, config.max_contexts);
  const std::size_t region = p.data_bytes();

  std::vector<CtxState> ctxs(p.contexts);

  // Bump-allocate one object; false when the region is exhausted. A random
  // 0–7 byte gap before each object varies the starting alignment so store
  // footprints land on every phase of the 64-byte grid.
  auto try_alloc = [&](std::uint32_t c) {
    CtxState& st = ctxs[c];
    const PmAddr gap = rng.below(8);
    const std::uint32_t size = pick_object_size(rng, config.max_store);
    if (st.bump + gap + size > region) return false;
    st.bump += gap;
    const auto id = static_cast<std::uint32_t>(p.objects.size());
    p.objects.push_back(FuzzObject{c, st.bump, size});
    st.bump += size;
    st.live.push_back(id);
    p.ops.push_back(FuzzOp{FuzzOpKind::kAlloc, c, id, 0, size, 0});
    return true;
  };

  // Every context starts with at least one object so its first FASE has a
  // store target.
  for (std::uint32_t c = 0; c < p.contexts; ++c) {
    const std::size_t want = 1 + rng.below(2);
    for (std::size_t i = 0; i < want; ++i) (void)try_alloc(c);
    NVC_REQUIRE(!ctxs[c].live.empty(), "region too small for one object");
  }

  auto emit_pstore = [&](std::uint32_t c) {
    CtxState& st = ctxs[c];
    const std::uint32_t id =
        st.live[rng.below(st.live.size())];
    const FuzzObject& obj = p.objects[id];
    std::uint32_t offset;
    std::uint32_t len;
    // A third of the stores are forced to straddle a cache-line boundary
    // (start on the last byte of a line): the footprint splits across two
    // lines, so the policy sees two dirty lines and the hazard check in
    // the async path has two chances to fire mid-store.
    const std::uint32_t phase = static_cast<std::uint32_t>(
        (kCacheLineSize - 1 - obj.offset % kCacheLineSize) % kCacheLineSize);
    if (obj.size >= phase + 2 && rng.chance(0.33)) {
      offset = phase;
      len = static_cast<std::uint32_t>(rng.range(2, obj.size - offset));
    } else {
      offset = static_cast<std::uint32_t>(rng.below(obj.size));
      len = static_cast<std::uint32_t>(rng.range(1, obj.size - offset));
    }
    if (len > config.max_store) len = config.max_store;
    p.ops.push_back(FuzzOp{FuzzOpKind::kPstore, c, id, offset, len, rng()});
  };

  while (p.ops.size() < config.target_ops) {
    const auto c = static_cast<std::uint32_t>(rng.below(p.contexts));
    CtxState& st = ctxs[c];
    const std::uint64_t r = rng.below(100);
    if (st.depth == 0) {
      if (r < 72) {
        st.depth = 1;
        p.ops.push_back(FuzzOp{FuzzOpKind::kFaseBegin, c, 0, 0, 0, 0});
      } else if (r < 87) {
        if (!try_alloc(c)) {
          st.depth = 1;
          p.ops.push_back(FuzzOp{FuzzOpKind::kFaseBegin, c, 0, 0, 0, 0});
        }
      } else if (st.live.size() > 1) {
        // Free a random live object, but always keep one so the next FASE
        // has a store target. Addresses are never reused (bump allocator).
        const std::size_t pick = rng.below(st.live.size());
        const std::uint32_t id = st.live[pick];
        st.live.erase(st.live.begin() + static_cast<std::ptrdiff_t>(pick));
        p.ops.push_back(FuzzOp{FuzzOpKind::kFree, c, id, 0, 0, 0});
      }
    } else {
      if (r < 64) {
        emit_pstore(c);
      } else if (r < 78) {
        --st.depth;
        p.ops.push_back(FuzzOp{FuzzOpKind::kFaseEnd, c, 0, 0, 0, 0});
      } else if (r < 86 && st.depth < 3) {
        ++st.depth;  // nested FASE: inner begin/end must be no-ops
        p.ops.push_back(FuzzOp{FuzzOpKind::kFaseBegin, c, 0, 0, 0, 0});
      } else if (r < 94) {
        p.ops.push_back(FuzzOp{FuzzOpKind::kPersistBarrier, c, 0, 0, 0, 0});
      } else {
        --st.depth;  // occasionally end immediately => empty nested FASEs
        p.ops.push_back(FuzzOp{FuzzOpKind::kFaseEnd, c, 0, 0, 0, 0});
      }
    }
  }

  // Close every open FASE so the program's final state is committed (the
  // crash sweep still hits mid-FASE states at every interior freeze point).
  for (std::uint32_t c = 0; c < p.contexts; ++c) {
    while (ctxs[c].depth > 0) {
      --ctxs[c].depth;
      p.ops.push_back(FuzzOp{FuzzOpKind::kFaseEnd, c, 0, 0, 0, 0});
    }
  }
  return p;
}

}  // namespace nvc::testing
