// Seeded image corruptor for the recovery fuzzer (DESIGN.md §14).
//
// Takes a frozen durable image (CrashRig::durable_image()) plus a layout
// spec and applies one *class* of damage, deterministically derived from a
// splitmix64 seed — so every corrupted image a CI run ever saw reproduces
// from the one-line NVC_FUZZ_SEED / NVC_CORRUPT_* replay command the test
// prints. Six classes model the distinct ways a persistent image rots:
//
//   bit-flips        — media bit rot anywhere in the image
//   line-scribble    — whole cache lines overwritten with garbage (a wild
//                      DMA, a misdirected write-back)
//   truncation       — the image tail reads as zeros (file truncated or a
//                      short mapping after a resize crash)
//   torn-tear        — a burst of adjacent lines each persisted only a
//                      prefix (multi-line write-queue tear at power cut)
//   stale-generation — a log segment reverts to an earlier snapshot of
//                      itself (firmware write reordering / lost erase: old
//                      generation bytes where new ones should be)
//   header-mutation  — targeted log-header damage (magic, state word)
//
// The corruptor returns a description of every mutation it made, so a
// failing oracle names the exact bytes that were hit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nvc::testing {

enum class CorruptionKind : std::uint8_t {
  kBitFlips,
  kLineScribble,
  kTruncation,
  kTornTear,
  kStaleGeneration,
  kHeaderMutation,
};

inline constexpr std::size_t kCorruptionKinds = 6;

/// Kind by sweep index (0..kCorruptionKinds-1).
CorruptionKind corruption_kind(std::size_t index);
const char* to_string(CorruptionKind kind);
/// Parse the NVC_CORRUPT_KIND pin ("bit-flips", "truncation", …).
/// Returns false (kind untouched) for unknown names.
bool parse_corruption_kind(const char* name, CorruptionKind& kind);

/// Where the interesting structures live inside the flat image.
struct ImageLayout {
  std::size_t data_offset = 0;  // data region (per-context regions packed)
  std::size_t data_size = 0;
  std::size_t log_offset = 0;   // first log segment
  std::size_t log_segment_size = 0;
  std::size_t log_segments = 0;
};

struct CorruptorConfig {
  std::uint64_t seed = 1;       // NVC_FUZZ_SEED
  std::size_t sites = 4;        // distinct hits per pass (NVC_CORRUPT_SITES)
};

class ImageCorruptor {
 public:
  ImageCorruptor(CorruptorConfig config, ImageLayout layout)
      : config_(config), layout_(layout), state_(config.seed) {}

  /// Apply one pass of `kind` to `image` in place. `stale` is an earlier
  /// durable snapshot of the same image (required by kStaleGeneration,
  /// which degrades to header mutation when null/mismatched). Returns a
  /// human-readable account of every mutation.
  std::string corrupt(CorruptionKind kind, std::vector<std::uint8_t>& image,
                      const std::vector<std::uint8_t>* stale = nullptr);

 private:
  std::uint64_t next();  // splitmix64
  std::uint64_t next_below(std::uint64_t bound);

  std::string bit_flips(std::vector<std::uint8_t>& image);
  std::string line_scribble(std::vector<std::uint8_t>& image);
  std::string truncation(std::vector<std::uint8_t>& image);
  std::string torn_tear(std::vector<std::uint8_t>& image);
  std::string stale_generation(std::vector<std::uint8_t>& image,
                               const std::vector<std::uint8_t>* stale);
  std::string header_mutation(std::vector<std::uint8_t>& image);

  CorruptorConfig config_;
  ImageLayout layout_;
  std::uint64_t state_;
};

}  // namespace nvc::testing
