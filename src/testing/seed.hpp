// Seed plumbing for randomized tests.
//
// Every randomized suite in this repo must be replayable from its CTest
// output alone: when a property fails, the line that gtest prints has to
// contain the exact environment that reproduces it. These helpers read the
// seed knobs (NVC_SEED for the property suites, NVC_FUZZ_SEED for the
// crash fuzzer) and format the replay hints the tests attach via
// SCOPED_TRACE / assertion messages.
#pragma once

#include <cstdint>
#include <string>

namespace nvc::testing {

/// The effective seed for a randomized test case: the value of `env_var`
/// when set (a global override that re-seeds every case of the suite),
/// otherwise the case's built-in default.
std::uint64_t seed_from_env(const char* env_var, std::uint64_t fallback);

/// "replay: NVC_SEED=1234" — attach with SCOPED_TRACE so any failing
/// assertion below it prints the seed that reproduces the run.
std::string replay_hint(const char* env_var, std::uint64_t seed);

/// The fuzzer's one-line replay command: environment + ctest invocation
/// that deterministically reproduces one (seed, mode, freeze) crash case.
/// `fault_env` is the active NVC_FAULT_* fragment (FaultConfig::describe())
/// when the run injects media faults — empty keeps the line unchanged.
std::string fuzz_replay_line(std::uint64_t program_seed,
                             const std::string& mode_name,
                             std::uint64_t freeze_event,
                             const std::string& fault_env = "");

/// Same idea for the durable-structure fuzzer (test_structures_fuzz): one
/// line reproducing a (seed, structure, freeze-event) case. `env_fragment`
/// carries extra active knobs (e.g. "NVC_ELIDE=0").
std::string struct_replay_line(std::uint64_t seed,
                               const std::string& structure,
                               std::uint64_t freeze_event,
                               const std::string& env_fragment = "");

}  // namespace nvc::testing
