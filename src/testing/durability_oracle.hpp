// The durability oracle: every legally recoverable state of a FuzzProgram.
//
// The FASE contract (paper Section II-A, DESIGN.md §7) is all-or-nothing
// per context: after a crash at ANY instant, recovery must leave each
// context's data region exactly as it was after some committed outermost
// FASE of that context — never a partial FASE, never a state that skips a
// committed one. The oracle computes those states analytically, straight
// from the op list, with no knowledge of caching policy, flush scheduling,
// or log batching: snapshot i of a context is its region image after its
// i-th outermost commit (snapshot 0 = the all-zero initial image).
//
// Because crash injection freezes the durable image at a single event
// index and execution is deterministic (see tests/support/crash_rig), the
// recoverable-state set at freeze index e is a *prefix* of the snapshot
// list, monotone non-decreasing in e. The fuzzer asserts membership at
// every freeze point and monotonicity of the matched index across the
// sweep; match() returns the LAST equal snapshot so duplicate images
// (empty or idempotent FASEs) can never fake a monotonicity violation.
#pragma once

#include <cstdint>
#include <vector>

#include "testing/fuzz_program.hpp"

namespace nvc::testing {

class DurabilityOracle {
 public:
  explicit DurabilityOracle(const FuzzProgram& program);

  std::size_t contexts() const noexcept { return snapshots_.size(); }

  /// Committed images of one context, oldest first; [0] is all-zero.
  const std::vector<std::vector<std::uint8_t>>& snapshots(
      std::size_t ctx) const {
    return snapshots_[ctx];
  }

  /// Index of the LAST snapshot of `ctx` equal to `image`, or -1 when the
  /// image matches no committed state (an atomicity violation).
  int match(std::size_t ctx, const std::vector<std::uint8_t>& image) const;

  /// The context's image after its final commit (what an uninterrupted run
  /// must leave durable).
  const std::vector<std::uint8_t>& final_committed(std::size_t ctx) const {
    return snapshots_[ctx].back();
  }

  /// Expected final bytes of one object (a slice of its owning context's
  /// final committed image) — the per-object check used by the real-Runtime
  /// differential test, where freed memory may be reused and only live
  /// objects are comparable.
  std::vector<std::uint8_t> final_object_bytes(const FuzzProgram& program,
                                               std::uint32_t object) const;

 private:
  std::vector<std::vector<std::vector<std::uint8_t>>> snapshots_;
};

}  // namespace nvc::testing
