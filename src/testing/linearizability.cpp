#include "testing/linearizability.hpp"

namespace nvc::testing {

bool QueueModel::apply(State& s, const Op& op) {
  switch (op.code) {
    case OpCode::kEnqueue:
      s.push_back(op.arg);
      return op.ok;
    case OpCode::kDequeue:
      if (!op.ok) return s.empty();
      if (s.empty() || s.front() != op.ret) return false;
      s.pop_front();
      return true;
    default:
      return false;  // queue histories contain queue ops only
  }
}

std::vector<QueueModel::State> QueueModel::apply_pending(const State& s,
                                                         const Op& op) {
  std::vector<State> out;
  switch (op.code) {
    case OpCode::kEnqueue: {
      State next = s;
      next.push_back(op.arg);
      out.push_back(std::move(next));
      break;
    }
    case OpCode::kDequeue: {
      // Unknown outcome: on an empty queue it would have returned false
      // (no effect); otherwise it pops the front, whatever it was.
      if (s.empty()) {
        out.push_back(s);
      } else {
        State next = s;
        next.pop_front();
        out.push_back(std::move(next));
      }
      break;
    }
    default:
      break;
  }
  return out;
}

std::string QueueModel::encode(const State& s) {
  std::ostringstream out;
  for (std::uint64_t v : s) out << v << ",";
  return out.str();
}

bool MapModel::apply(State& s, const Op& op) {
  const auto it = s.find(op.arg);
  switch (op.code) {
    case OpCode::kInsert:
      if (it != s.end()) return !op.ok;  // no-overwrite insert fails
      if (!op.ok) return false;
      s.emplace(op.arg, op.arg2);
      return true;
    case OpCode::kErase:
      if (it == s.end()) return !op.ok;
      if (!op.ok || op.ret != it->second) return false;
      s.erase(it);
      return true;
    case OpCode::kContains:
      if (it == s.end()) return !op.ok;
      return op.ok && op.ret == it->second;
    default:
      return false;  // map histories contain map ops only
  }
}

std::vector<MapModel::State> MapModel::apply_pending(const State& s,
                                                     const Op& op) {
  std::vector<State> out;
  const auto it = s.find(op.arg);
  switch (op.code) {
    case OpCode::kInsert: {
      if (it != s.end()) {
        out.push_back(s);  // would have returned false: no effect
      } else {
        State next = s;
        next.emplace(op.arg, op.arg2);
        out.push_back(std::move(next));
      }
      break;
    }
    case OpCode::kErase: {
      if (it == s.end()) {
        out.push_back(s);
      } else {
        State next = s;
        next.erase(op.arg);
        out.push_back(std::move(next));
      }
      break;
    }
    case OpCode::kContains:
      out.push_back(s);  // read-only either way
      break;
    default:
      break;
  }
  return out;
}

std::string MapModel::encode(const State& s) {
  std::ostringstream out;
  for (const auto& [k, v] : s) out << k << ":" << v << ",";
  return out.str();
}

}  // namespace nvc::testing
