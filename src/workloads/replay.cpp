#include "workloads/replay.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace nvc::workloads {

namespace {

/// Trace replays build policies directly (no Runtime to stamp the admission
/// doorkeeper's `line_base`), and the captured store addresses are raw heap
/// lines that move with ASLR from one capture run to the next. Normalize by
/// the trace's smallest store line — a fixed offset from the capture-run
/// region base — so admission decisions replay bit-for-bit across runs.
core::PolicyConfig with_trace_line_base(const ThreadTrace& trace,
                                        core::PolicyConfig config) {
  if (config.admission.mode == core::AdmitMode::kAlways) return config;
  LineAddr base = ~LineAddr{0};
  for (const TraceEvent& ev : trace.events) {
    if (ev.kind == TraceEvent::Kind::kStore) base = std::min(base, ev.value);
  }
  if (base != ~LineAddr{0}) config.admission.line_base = base;
  return config;
}

}  // namespace

FlushCountResult replay_flush_count(const ThreadTrace& trace,
                                    core::PolicyKind kind,
                                    const core::PolicyConfig& config) {
  auto policy = core::make_policy(kind, with_trace_line_base(trace, config));
  core::CountingSink sink;
  for (const TraceEvent& ev : trace.events) {
    switch (ev.kind) {
      case TraceEvent::Kind::kStore:
        policy->on_store(ev.value, sink);
        break;
      case TraceEvent::Kind::kFaseBegin:
        policy->on_fase_begin(sink);
        break;
      case TraceEvent::Kind::kFaseEnd:
        policy->on_fase_end(sink);
        break;
      case TraceEvent::Kind::kBarrier:
        policy->flush_buffered(sink);
        break;
      case TraceEvent::Kind::kLoad:  // reads never reach the write policies
      case TraceEvent::Kind::kCompute:
        break;
    }
  }
  policy->finish(sink);

  FlushCountResult r;
  r.stores = policy->counters().stores;
  r.fases = policy->counters().fases;
  r.flushes = sink.count();
  return r;
}

FlushCountResult replay_flush_count_all(const TraceApi& traces,
                                        core::PolicyKind kind,
                                        const core::PolicyConfig& config) {
  FlushCountResult total;
  for (std::size_t tid = 0; tid < traces.threads(); ++tid) {
    const FlushCountResult r =
        replay_flush_count(traces.trace(tid), kind, config);
    total.stores += r.stores;
    total.flushes += r.flushes;
    total.fases += r.fases;
  }
  return total;
}

namespace {

/// Sink that issues flushes into the simulated core.
class SimSink final : public core::FlushSink {
 public:
  explicit SimSink(hwsim::CoreSim* core) : core_(core) {}
  bool flush_line(LineAddr line) override {
    core_->flush(line);
    return true;
  }
  void drain() override { core_->drain(); }

 private:
  hwsim::CoreSim* core_;
};

}  // namespace

SimThreadResult replay_cost_model(const ThreadTrace& trace,
                                  core::PolicyKind kind,
                                  const SimConfig& config,
                                  std::uint64_t seed) {
  hwsim::CacheConfig l1 = config.l1;
  l1.seed = seed;
  hwsim::CoreSim core(config.cost, l1);
  SimSink sink(&core);
  auto policy =
      core::make_policy(kind, with_trace_line_base(trace, config.policy));

  std::uint64_t policy_instr_seen = 0;
  auto charge_policy_instructions = [&] {
    const std::uint64_t now = policy->counters().instructions;
    if (now > policy_instr_seen) {
      core.execute(now - policy_instr_seen);
      policy_instr_seen = now;
    }
  };

  for (const TraceEvent& ev : trace.events) {
    switch (ev.kind) {
      case TraceEvent::Kind::kStore:
        core.memory_access(ev.value, /*is_write=*/true);
        policy->on_store(ev.value, sink);
        break;
      case TraceEvent::Kind::kLoad:
        core.memory_access(ev.value, /*is_write=*/false);
        break;
      case TraceEvent::Kind::kFaseBegin:
        policy->on_fase_begin(sink);
        break;
      case TraceEvent::Kind::kFaseEnd:
        policy->on_fase_end(sink);
        break;
      case TraceEvent::Kind::kBarrier:
        policy->flush_buffered(sink);
        break;
      case TraceEvent::Kind::kCompute:
        core.execute(ev.value);
        break;
    }
    charge_policy_instructions();
  }
  policy->finish(sink);
  charge_policy_instructions();

  SimThreadResult r;
  r.cycles = core.cycles();
  r.instructions = core.counters().instructions;
  r.flushes = core.counters().flushes;
  r.stall_cycles = core.counters().stall_cycles;
  r.stores = policy->counters().stores;
  r.l1 = core.l1_stats();
  return r;
}

SimRunResult simulate_run(const TraceApi& traces, core::PolicyKind kind,
                          const SimConfig& config) {
  SimRunResult run;
  run.threads.reserve(traces.threads());
  for (std::size_t tid = 0; tid < traces.threads(); ++tid) {
    run.threads.push_back(replay_cost_model(traces.trace(tid), kind, config,
                                            /*seed=*/tid * 7919 + 13));
  }
  return run;
}

double SimRunResult::makespan_cycles() const noexcept {
  double m = 0.0;
  for (const auto& t : threads) m = std::max(m, t.cycles);
  return m;
}

std::uint64_t SimRunResult::total_instructions() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : threads) total += t.instructions;
  return total;
}

std::uint64_t SimRunResult::total_flushes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : threads) total += t.flushes;
  return total;
}

std::uint64_t SimRunResult::total_stores() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : threads) total += t.stores;
  return total;
}

double SimRunResult::flush_ratio() const noexcept {
  const std::uint64_t stores = total_stores();
  return stores == 0 ? 0.0
                     : static_cast<double>(total_flushes()) /
                           static_cast<double>(stores);
}

double SimRunResult::l1_miss_ratio() const noexcept {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  for (const auto& t : threads) {
    accesses += t.l1.accesses;
    misses += t.l1.misses;
  }
  return accesses == 0 ? 0.0
                       : static_cast<double>(misses) /
                             static_cast<double>(accesses);
}

}  // namespace nvc::workloads
