#include <functional>
#include <stdexcept>
#include <utility>

#include "workloads/workload.hpp"

namespace nvc::workloads {

namespace {

struct Entry {
  const char* name;
  std::unique_ptr<Workload> (*factory)();
};

// Paper Table III order (mdb is provided by the nvc-mdb library and is
// registered by the benchmark harness, not here, to keep the dependency
// direction workloads <- mdb).
constexpr Entry kEntries[] = {
    {"linked-list", &make_linked_list},
    {"persistent-array", &make_persistent_array},
    {"queue", &make_queue},
    {"hash", &make_hash},
    {"barnes", &make_barnes},
    {"fmm", &make_fmm},
    {"ocean", &make_ocean},
    {"raytrace", &make_raytrace},
    {"volrend", &make_volrend},
    {"water-nsquared", &make_water_nsquared},
    {"water-spatial", &make_water_spatial},
};

// SPLASH2 kernels beyond the paper's tables (see extra_kernels.cpp).
constexpr Entry kExtensions[] = {
    {"lu", &make_lu},
    {"fft", &make_fft},
    {"radix", &make_radix},
};

}  // namespace

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const Entry& e : kEntries) names.emplace_back(e.name);
  return names;
}

std::vector<std::string> extension_workload_names() {
  std::vector<std::string> names;
  for (const Entry& e : kExtensions) names.emplace_back(e.name);
  return names;
}

std::unique_ptr<Workload> make_workload(const std::string& name) {
  for (const Entry& e : kEntries) {
    if (name == e.name) return e.factory();
  }
  for (const Entry& e : kExtensions) {
    if (name == e.name) return e.factory();
  }
  throw std::out_of_range("unknown workload: " + name);
}

}  // namespace nvc::workloads
