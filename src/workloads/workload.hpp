// Workload abstraction and registry.
//
// The paper evaluates 12 applications: seven SPLASH2 programs (all but
// radiosity, lu, fft, cholesky and radix appear in its tables), four
// micro-benchmarks from the Atlas repository, and the MDB key-value store.
// Each is reproduced here as a self-contained mini-app over PersistApi (see
// DESIGN.md for the substitution rationale). A workload runs its own thread
// team; thread `tid` talks to the API with that tid, which keeps software
// caches, traces and statistics per-thread.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/api.hpp"

namespace nvc::workloads {

struct WorkloadParams {
  std::size_t threads = 1;
  std::uint64_t seed = 42;
  /// false: quick problem size (seconds); true: paper-scale (NVC_FULL=1).
  bool full = false;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;

  /// Problem-size label for the Table III reproduction (e.g. "16384").
  virtual std::string problem_size(const WorkloadParams& p) const = 0;

  /// Execute the workload, reporting persistent writes through `api`.
  virtual void run(PersistApi& api, const WorkloadParams& p) = 0;

  /// Average computation instructions per persistent store fed to the cost
  /// model in trace mode; live computation is the real thing.
  virtual std::uint64_t instr_per_store() const { return 40; }
};

/// The paper's Table III workloads (excluding mdb, provided by nvc-mdb), in
/// the paper's order.
std::vector<std::string> workload_names();

/// Extension workloads implemented beyond the paper's tables (the SPLASH2
/// kernels lu, fft, radix).
std::vector<std::string> extension_workload_names();

/// Instantiate a workload by name (paper set or extensions); throws
/// std::out_of_range for unknown.
std::unique_ptr<Workload> make_workload(const std::string& name);

// Factories (one per mini-app translation unit).
std::unique_ptr<Workload> make_linked_list();
std::unique_ptr<Workload> make_persistent_array();
std::unique_ptr<Workload> make_queue();
std::unique_ptr<Workload> make_hash();
std::unique_ptr<Workload> make_barnes();
std::unique_ptr<Workload> make_fmm();
std::unique_ptr<Workload> make_ocean();
std::unique_ptr<Workload> make_raytrace();
std::unique_ptr<Workload> make_volrend();
std::unique_ptr<Workload> make_water_nsquared();
std::unique_ptr<Workload> make_water_spatial();
std::unique_ptr<Workload> make_lu();
std::unique_ptr<Workload> make_fft();
std::unique_ptr<Workload> make_radix();

}  // namespace nvc::workloads
