// volrend — orthographic volume rendering by ray casting, standing in for
// SPLASH2's volrend (which renders a CT "head" dataset). The volume itself
// is read-only; the persistent writes are the output image (one sequential
// write per pixel) and a tiny opacity histogram that nearly every sample
// updates — a very small, very hot write set. The paper selects cache size 3
// for volrend, and SC reaches the lazy lower bound on it.
#include <cmath>
#include <string>

#include "common/barrier.hpp"
#include "workloads/workload.hpp"

namespace nvc::workloads {

namespace {

constexpr std::size_t kHistBins = 8;

class VolrendWorkload final : public Workload {
 public:
  std::string name() const override { return "volrend"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return p.full ? "head(256px)" : "head(96px)";
  }
  std::uint64_t instr_per_store() const override { return 50; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    const std::size_t res = p.full ? 256 : 128;   // image res x res
    const std::size_t vol = 48;                  // volume vol^3 voxels
    const std::size_t frames = p.full ? 4 : 2;   // rotated re-renders

    auto* image = static_cast<float*>(api.alloc(0, res * res * sizeof(float)));
    // Per-thread opacity histograms (cache-line separated): the hot little
    // write set, with no cross-thread sharing (paper Section II-B).
    std::vector<std::uint32_t*> hists(p.threads);
    for (std::size_t t = 0; t < p.threads; ++t) {
      hists[t] = static_cast<std::uint32_t*>(
          api.alloc(t, kHistBins * sizeof(std::uint32_t)));
    }

    // Procedural "head": a dense ellipsoid with an off-center cavity.
    std::vector<std::uint8_t> volume(vol * vol * vol);
    for (std::size_t z = 0; z < vol; ++z) {
      for (std::size_t y = 0; y < vol; ++y) {
        for (std::size_t x = 0; x < vol; ++x) {
          const double nx = (double(x) / vol - 0.5) * 2;
          const double ny = (double(y) / vol - 0.5) * 2.2;
          const double nz = (double(z) / vol - 0.5) * 2;
          const double head = 1.0 - (nx * nx + ny * ny + nz * nz);
          const double cavity =
              0.3 - ((nx - 0.2) * (nx - 0.2) + ny * ny + nz * nz);
          const double d = std::max(0.0, head - std::max(0.0, cavity));
          volume[(z * vol + y) * vol + x] =
              static_cast<std::uint8_t>(std::min(255.0, d * 300));
        }
      }
    }

    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      for (std::size_t frame = 0; frame < frames; ++frame) {
        const double angle = 0.3 * static_cast<double>(frame);
        const double ca = std::cos(angle);
        const double sa = std::sin(angle);
        // Scanline groups are distributed over threads; FASE per group.
        const std::size_t group = 8;
        for (std::size_t gy = tid * group; gy < res;
             gy += p.threads * group) {
          ApiFase fase(api, tid);
          for (std::size_t py = gy; py < std::min(gy + group, res); ++py) {
            for (std::size_t px = 0; px < res; ++px) {
              double opacity = 0.0;
              double lum = 0.0;
              // March along +z through the rotated volume.
              for (std::size_t step = 0; step < vol && opacity < 0.98;
                   ++step) {
                const double u = (double(px) / res - 0.5);
                const double v = (double(py) / res - 0.5);
                const double w = (double(step) / vol - 0.5);
                const double rx = ca * u - sa * w + 0.5;
                const double rz = sa * u + ca * w + 0.5;
                const double ry = v + 0.5;
                const std::uint8_t d = sample(volume, vol, rx, ry, rz);
                const double a = d / 1024.0;
                lum += (1.0 - opacity) * a * (0.4 + 0.6 * w + 0.5);
                opacity += (1.0 - opacity) * a;
              }
              api.compute(tid, 9 * vol);
              api.store(tid, image[py * res + px],
                        static_cast<float>(lum));
              // Opacity histogram: one line, updated per pixel.
              const std::size_t bin = std::min<std::size_t>(
                  static_cast<std::size_t>(opacity * kHistBins),
                  kHistBins - 1);
              std::uint32_t count = hists[tid][bin] + 1;
              api.store(tid, hists[tid][bin], count);
            }
          }
        }
      }
    });
  }

 private:
  static std::uint8_t sample(const std::vector<std::uint8_t>& volume,
                             std::size_t vol, double x, double y, double z) {
    if (x < 0 || y < 0 || z < 0 || x >= 1 || y >= 1 || z >= 1) return 0;
    const auto xi = static_cast<std::size_t>(x * vol);
    const auto yi = static_cast<std::size_t>(y * vol);
    const auto zi = static_cast<std::size_t>(z * vol);
    return volume[(zi * vol + yi) * vol + xi];
  }
};

}  // namespace

std::unique_ptr<Workload> make_volrend() {
  return std::make_unique<VolrendWorkload>();
}

}  // namespace nvc::workloads
