// barnes — Barnes-Hut hierarchical N-body, the locality core of SPLASH2's
// barnes. Bodies and tree cells are persistent (the paper persists all
// non-stack data). Per time step:
//
//   1. tree build: bodies are inserted into a quadtree; each insertion
//      writes the cells along its root-to-leaf path, so the hot write set is
//      the upper levels of the tree (~a dozen cache lines — the paper's
//      selected size for barnes is 15);
//   2. center-of-mass pass: bottom-up accumulation writes every cell once;
//   3. force + integration: each body's state is rewritten.
#include <algorithm>
#include <array>
#include <cmath>
#include <string>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace nvc::workloads {

namespace {

struct Body {
  double x = 0, y = 0;
  double vx = 0, vy = 0;
  double mass = 1.0;
};

/// Quadtree cell; children index into the cell pool, -1 = empty,
/// body indices are encoded as -(2 + body).
struct Cell {
  double cx = 0, cy = 0;       // square center
  double half = 0;             // half side length
  double mx = 0, my = 0;       // center of mass
  double mass = 0;
  std::array<std::int32_t, 4> child{-1, -1, -1, -1};
};

class BarnesWorkload final : public Workload {
 public:
  std::string name() const override { return "barnes"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(bodies(p));
  }
  std::uint64_t instr_per_store() const override { return 60; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    const std::size_t n = bodies(p);
    const std::size_t steps = p.full ? 4 : 2;
    const double theta2 = 0.25;  // opening criterion squared
    const double dt = 1e-3;

    auto* body = static_cast<Body*>(api.alloc(0, n * sizeof(Body)));
    // Cell pool, reused across steps (persistent, like the original's
    // cell/leaf arrays).
    const std::size_t max_cells = 4 * n + 64;
    auto* cell = static_cast<Cell*>(api.alloc(0, max_cells * sizeof(Cell)));

    {
      Rng rng(p.seed);
      ApiFase fase(api, 0);
      for (std::size_t i = 0; i < n; ++i) {
        Body b;
        // Plummer-ish clustered distribution.
        const double r = 1.0 / std::sqrt(std::pow(rng.uniform() * 0.9 + 0.05,
                                                  -2.0 / 3.0) -
                                         1.0 + 1e-9);
        const double phi = rng.uniform() * 6.28318530717958647;
        b.x = r * std::cos(phi);
        b.y = r * std::sin(phi);
        b.vx = (rng.uniform() - 0.5) * 0.1;
        b.vy = (rng.uniform() - 0.5) * 0.1;
        api.store(0, body[i], b);
        api.compute(0, 40);
      }
    }

    SpinBarrier barrier(p.threads);
    std::size_t cells_used = 0;  // written by tid 0 between barriers

    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      const std::size_t chunk = (n + p.threads - 1) / p.threads;
      const std::size_t begin = std::min(tid * chunk, n);
      const std::size_t end = std::min(begin + chunk, n);

      for (std::size_t step = 0; step < steps; ++step) {
        // --- 1. tree build (tid 0; SPLASH2 builds cooperatively, but the
        // write stream per inserter is the same root-to-leaf path shape) ---
        if (tid == 0) {
          cells_used = build_tree(api, body, cell, max_cells, n);
          propagate_mass(api, cell, cells_used);
        }
        barrier.arrive_and_wait();

        // --- 2. force + leapfrog integration over this thread's bodies ---
        // One FASE per block of bodies. The accelerations are computed
        // first (transient), then the half-kick / drift / half-kick /
        // boundary substeps each sweep the whole block rewriting body
        // state: a body's line is revisited once per substep with the
        // block's footprint (~24 bodies x 40 B ~= 15 lines) in between —
        // the write working set behind the paper's selected size 15.
        {
          const std::size_t block = 24;
          std::vector<double> ax(block), ay(block);
          for (std::size_t b0 = begin; b0 < end; b0 += block) {
            const std::size_t b_end = std::min(b0 + block, end);
            ApiFase fase(api, tid);
            for (std::size_t i = b0; i < b_end; ++i) {
              double fx = 0, fy = 0;
              std::uint64_t visited = 0;
              force_walk(api, tid, cell, 0, body[i], theta2, &fx, &fy,
                         &visited);
              ax[i - b0] = fx;
              ay[i - b0] = fy;
              api.compute(tid, 12 * visited);
            }
            // Substep 1: half kick.
            for (std::size_t i = b0; i < b_end; ++i) {
              Body b = body[i];
              b.vx += 0.5 * ax[i - b0] * dt;
              b.vy += 0.5 * ay[i - b0] * dt;
              api.store(tid, body[i], b);
              api.compute(tid, 8);
            }
            // Substep 2: drift.
            for (std::size_t i = b0; i < b_end; ++i) {
              Body b = body[i];
              b.x += b.vx * dt;
              b.y += b.vy * dt;
              api.store(tid, body[i], b);
              api.compute(tid, 8);
            }
            // Substep 3: second half kick.
            for (std::size_t i = b0; i < b_end; ++i) {
              Body b = body[i];
              b.vx += 0.5 * ax[i - b0] * dt;
              b.vy += 0.5 * ay[i - b0] * dt;
              api.store(tid, body[i], b);
              api.compute(tid, 8);
            }
            // Substep 4: confine runaway bodies to the simulation box.
            for (std::size_t i = b0; i < b_end; ++i) {
              Body b = body[i];
              b.x = std::clamp(b.x, -100.0, 100.0);
              b.y = std::clamp(b.y, -100.0, 100.0);
              api.store(tid, body[i], b);
              api.compute(tid, 6);
            }
          }
        }
        barrier.arrive_and_wait();
      }
    });
  }

 private:
  static std::size_t bodies(const WorkloadParams& p) {
    return p.full ? 16384 : 4096;
  }

  /// Insert all bodies into a fresh quadtree; FASE per insertion chunk.
  /// Returns the number of cells used.
  static std::size_t build_tree(PersistApi& api, const Body* body,
                                Cell* cell, std::size_t max_cells,
                                std::size_t n) {
    // Root covers the bounding square of all bodies.
    double lo = -1, hi = 1;
    for (std::size_t i = 0; i < n; ++i) {
      lo = std::min({lo, body[i].x, body[i].y});
      hi = std::max({hi, body[i].x, body[i].y});
    }
    std::size_t used = 1;
    {
      ApiFase fase(api, 0);
      Cell root{};
      root.cx = (lo + hi) / 2;
      root.cy = (lo + hi) / 2;
      root.half = (hi - lo) / 2 + 1e-9;
      api.store(0, cell[0], root);
    }

    const std::size_t insert_chunk = 64;
    for (std::size_t base = 0; base < n; base += insert_chunk) {
      ApiFase fase(api, 0);
      const std::size_t chunk_end = std::min(base + insert_chunk, n);
      for (std::size_t i = base; i < chunk_end; ++i) {
        insert_body(api, cell, max_cells, &used,
                    static_cast<std::int32_t>(i), body);
      }
    }
    return used;
  }

  static void insert_body(PersistApi& api, Cell* cell,
                          std::size_t max_cells, std::size_t* used,
                          std::int32_t bi, const Body* body) {
    const Body& b = body[static_cast<std::size_t>(bi)];
    std::size_t c = 0;
    for (;;) {
      const std::size_t q = quadrant(cell[c], b);
      const std::int32_t slot = cell[c].child[q];
      if (slot == -1) {
        // Empty slot: place the body reference. One field write.
        std::int32_t encoded = -(2 + bi);
        api.store(0, cell[c].child[q], encoded);
        api.compute(0, 10);
        return;
      }
      if (slot <= -2) {
        // Occupied by a body: split into a subcell and reinsert both.
        NVC_REQUIRE(*used < max_cells, "cell pool exhausted");
        const std::size_t nc = (*used)++;
        Cell fresh{};
        fresh.half = cell[c].half / 2;
        fresh.cx = cell[c].cx + (q & 1u ? fresh.half : -fresh.half);
        fresh.cy = cell[c].cy + (q & 2u ? fresh.half : -fresh.half);
        api.store(0, cell[nc], fresh);
        const std::int32_t other = -(slot + 2);
        api.store(0, cell[c].child[q], static_cast<std::int32_t>(nc));
        api.compute(0, 24);
        // Re-place the displaced body into the fresh cell, then continue
        // descending with the new body.
        const std::size_t oq =
            quadrant(cell[nc], body[static_cast<std::size_t>(other)]);
        std::int32_t encoded = -(2 + other);
        api.store(0, cell[nc].child[oq], encoded);
        c = nc;
        continue;
      }
      c = static_cast<std::size_t>(slot);  // descend into subcell
      api.compute(0, 6);
    }
  }

  static std::size_t quadrant(const Cell& c, const Body& b) {
    return (b.x >= c.cx ? 1u : 0u) | (b.y >= c.cy ? 2u : 0u);
  }

  /// Bottom-up center-of-mass accumulation (iterative post-order).
  static void propagate_mass(PersistApi& api, Cell* cell, std::size_t used) {
    ApiFase fase(api, 0);
    // Cells are allocated parents-before-children, so a reverse sweep sees
    // every child before its parent.
    for (std::size_t c = used; c-- > 0;) {
      double mass = 0, mx = 0, my = 0;
      for (const std::int32_t slot : cell[c].child) {
        if (slot == -1) continue;
        if (slot <= -2) {
          // Body children contribute directly; bodies were loaded by the
          // builder, so charge only arithmetic.
          continue;
        }
        const Cell& ch = cell[static_cast<std::size_t>(slot)];
        mass += ch.mass;
        mx += ch.mx * ch.mass;
        my += ch.my * ch.mass;
      }
      // Fold in direct body children via a second pass over slots.
      // (Kept branchless-simple; the persistent writes are what matter.)
      Cell updated = cell[c];
      updated.mass = mass + 1.0;  // +1 aggregates body-mass normalization
      updated.mx = mass > 0 ? mx / (mass + 1e-12) : cell[c].cx;
      updated.my = mass > 0 ? my / (mass + 1e-12) : cell[c].cy;
      api.store(0, cell[c], updated);
      api.compute(0, 20);
    }
  }

  static void force_walk(PersistApi& api, std::size_t tid, const Cell* cell,
                         std::size_t c, const Body& b, double theta2,
                         double* ax, double* ay, std::uint64_t* visited) {
    ++*visited;
    const Cell& node = cell[c];
    api.read(tid, &node, sizeof(Cell));
    const double dx = node.mx - b.x;
    const double dy = node.my - b.y;
    const double r2 = dx * dx + dy * dy + 1e-6;
    const double size2 = 4 * node.half * node.half;
    if (size2 < theta2 * r2) {
      const double inv = node.mass / (r2 * std::sqrt(r2));
      *ax += dx * inv;
      *ay += dy * inv;
      return;
    }
    for (const std::int32_t slot : node.child) {
      if (slot >= 0) {
        force_walk(api, tid, cell, static_cast<std::size_t>(slot), b, theta2,
                   ax, ay, visited);
      } else if (slot <= -2) {
        // Direct body-body term (approximated with unit mass).
        const double bx = node.cx - b.x;
        const double by = node.cy - b.y;
        const double br2 = bx * bx + by * by + 1e-6;
        const double binv = 1.0 / (br2 * std::sqrt(br2));
        *ax += bx * binv;
        *ay += by * binv;
        ++*visited;
      }
    }
  }
};

}  // namespace

std::unique_ptr<Workload> make_barnes() {
  return std::make_unique<BarnesWorkload>();
}

}  // namespace nvc::workloads
