#include "workloads/api.hpp"

#include <atomic>
#include <cstdlib>

namespace nvc::workloads {

void ThreadTrace::store_trace(std::vector<LineAddr>* stores,
                              std::vector<std::size_t>* boundaries) const {
  stores->clear();
  boundaries->clear();
  stores->reserve(static_cast<std::size_t>(store_count));
  for (const TraceEvent& ev : events) {
    switch (ev.kind) {
      case TraceEvent::Kind::kStore:
        stores->push_back(ev.value);
        break;
      case TraceEvent::Kind::kFaseEnd:
      case TraceEvent::Kind::kBarrier:  // barrier also clears the cache
        boundaries->push_back(stores->size());
        break;
      case TraceEvent::Kind::kFaseBegin:
      case TraceEvent::Kind::kCompute:
        break;
    }
  }
}

/// Bump arena for trace-mode allocations. Thread-safe via an atomic cursor;
/// 64-byte aligns every allocation so trace line addresses never alias
/// across objects.
struct TraceApi::Arena {
  explicit Arena(std::size_t bytes)
      : storage(static_cast<char*>(std::aligned_alloc(
            kCacheLineSize, align_up(bytes, kCacheLineSize)))),
        size(align_up(bytes, kCacheLineSize)) {
    NVC_REQUIRE(storage != nullptr, "trace arena allocation failed");
  }
  ~Arena() { std::free(storage); }

  void* alloc(std::size_t n) {
    const std::size_t need = align_up(n, kCacheLineSize);
    const std::size_t off = cursor.fetch_add(need, std::memory_order_relaxed);
    NVC_REQUIRE(off + need <= size, "trace arena exhausted");
    return storage + off;
  }

  char* storage;
  std::size_t size;
  std::atomic<std::size_t> cursor{0};
};

TraceApi::TraceApi(std::size_t threads, std::size_t arena_bytes)
    : traces_(threads), arena_(std::make_unique<Arena>(arena_bytes)) {
  NVC_REQUIRE(threads >= 1);
}

TraceApi::~TraceApi() = default;
TraceApi::TraceApi(TraceApi&&) noexcept = default;
TraceApi& TraceApi::operator=(TraceApi&&) noexcept = default;

void* TraceApi::alloc(std::size_t, std::size_t size) {
  return arena_->alloc(size);
}

void TraceApi::fase_begin(std::size_t tid) {
  traces_[tid].events.push_back(
      TraceEvent{TraceEvent::Kind::kFaseBegin, 0});
}

void TraceApi::fase_end(std::size_t tid) {
  ThreadTrace& t = traces_[tid];
  t.events.push_back(TraceEvent{TraceEvent::Kind::kFaseEnd, 0});
  ++t.fase_count;
}

void TraceApi::wrote(std::size_t tid, const void* addr, std::size_t len) {
  NVC_ASSERT(len > 0);
  ThreadTrace& t = traces_[tid];
  const auto a = reinterpret_cast<PmAddr>(addr);
  const LineAddr first = line_of(a);
  const LineAddr last = line_of(a + len - 1);
  for (LineAddr line = first; line <= last; ++line) {
    t.events.push_back(TraceEvent{TraceEvent::Kind::kStore, line});
    ++t.store_count;
  }
}

void TraceApi::compute(std::size_t tid, std::uint64_t instr) {
  ThreadTrace& t = traces_[tid];
  // Coalesce adjacent compute events to keep traces compact.
  if (!t.events.empty() &&
      t.events.back().kind == TraceEvent::Kind::kCompute) {
    t.events.back().value += instr;
  } else {
    t.events.push_back(TraceEvent{TraceEvent::Kind::kCompute, instr});
  }
  t.compute_instr += instr;
}

LineAddr TraceApi::arena_base_line() const noexcept {
  return line_of(reinterpret_cast<PmAddr>(arena_->storage));
}

void TraceApi::persist_barrier(std::size_t tid) {
  traces_[tid].events.push_back(TraceEvent{TraceEvent::Kind::kBarrier, 0});
}

void TraceApi::read(std::size_t tid, const void* addr, std::size_t len) {
  NVC_ASSERT(len > 0);
  ThreadTrace& t = traces_[tid];
  const auto a = reinterpret_cast<PmAddr>(addr);
  const LineAddr first = line_of(a);
  const LineAddr last = line_of(a + len - 1);
  for (LineAddr line = first; line <= last; ++line) {
    // Coalesce immediately repeated loads of the same line (a read sweep
    // emits one event per line, like the hardware sees one fill).
    if (!t.events.empty() &&
        t.events.back().kind == TraceEvent::Kind::kLoad &&
        t.events.back().value == line) {
      continue;
    }
    t.events.push_back(TraceEvent{TraceEvent::Kind::kLoad, line});
    ++t.load_count;
  }
}

std::uint64_t TraceApi::total_stores() const noexcept {
  std::uint64_t total = 0;
  for (const auto& t : traces_) total += t.store_count;
  return total;
}

}  // namespace nvc::workloads
