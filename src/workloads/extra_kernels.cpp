// Extension workloads: the SPLASH2 kernels (lu, fft, radix) that the paper's
// tables do not include but the suite contains. They broaden the locality
// spectrum the adaptive cache is tested against:
//
//   lu    — blocked dense LU factorization: a block of the matrix is
//           rewritten once per elimination step, a classic mid-size write
//           working set (the block);
//   fft   — iterative Cooley-Tukey over a persistent complex array: each
//           stage rewrites every point, with butterfly spans that defeat
//           any small cache at early stages and collapse to neighbors at
//           late stages;
//   radix — LSD radix sort: a 256-bin persistent histogram (very hot, a few
//           lines) interleaved with streaming scatter writes — the
//           hot-vs-stream mix that separates associative from
//           direct-mapped bookkeeping.
#include <cmath>
#include <string>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "workloads/workload.hpp"

namespace nvc::workloads {

namespace {

std::pair<std::size_t, std::size_t> split(std::size_t n, std::size_t threads,
                                          std::size_t tid) {
  const std::size_t chunk = (n + threads - 1) / threads;
  const std::size_t begin = std::min(tid * chunk, n);
  return {begin, std::min(begin + chunk, n)};
}

// --- lu ------------------------------------------------------------------------

class LuWorkload final : public Workload {
 public:
  std::string name() const override { return "lu"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(dim(p));
  }
  std::uint64_t instr_per_store() const override { return 30; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    const std::size_t n = dim(p);
    const std::size_t bs = 16;  // block size: 16x16 doubles = 32 lines
    auto* a = static_cast<double*>(api.alloc(0, n * n * sizeof(double)));

    // Init: diagonally dominant matrix so elimination stays stable.
    {
      Rng rng(p.seed);
      ApiFase fase(api, 0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
          const double v = (i == j) ? static_cast<double>(n)
                                    : rng.uniform() - 0.5;
          api.store(0, a[i * n + j], v);
          api.compute(0, 4);
        }
      }
    }

    SpinBarrier barrier(p.threads);
    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      for (std::size_t k = 0; k < n; k += bs) {
        const std::size_t k_end = std::min(k + bs, n);
        // Diagonal block factorization (thread 0, small).
        if (tid == 0) {
          ApiFase fase(api, 0);
          for (std::size_t kk = k; kk < k_end; ++kk) {
            const double pivot = a[kk * n + kk];
            for (std::size_t i = kk + 1; i < k_end; ++i) {
              const double l = a[i * n + kk] / pivot;
              api.store(0, a[i * n + kk], l);
              for (std::size_t j = kk + 1; j < k_end; ++j) {
                api.store(0, a[i * n + j], a[i * n + j] - l * a[kk * n + j]);
              }
              api.compute(0, 6 * (k_end - kk));
            }
          }
        }
        barrier.arrive_and_wait();

        // Trailing update: each thread owns row blocks; one FASE per block
        // pair. The target block (bs x bs doubles) is rewritten once per
        // kk, giving a block-footprint write working set.
        const auto [rb_begin, rb_end] = split(n, p.threads, tid);
        for (std::size_t ib = std::max(rb_begin, k_end); ib < rb_end;
             ib += bs) {
          const std::size_t i_end = std::min(ib + bs, rb_end);
          // Column factor for this row block first.
          {
            ApiFase fase(api, tid);
            for (std::size_t i = ib; i < i_end; ++i) {
              for (std::size_t kk = k; kk < k_end; ++kk) {
                const double l = a[i * n + kk] / a[kk * n + kk];
                api.store(tid, a[i * n + kk], l);
                api.compute(tid, 4);
              }
            }
          }
          for (std::size_t jb = k_end; jb < n; jb += bs) {
            const std::size_t j_end = std::min(jb + bs, n);
            ApiFase fase(api, tid);
            for (std::size_t kk = k; kk < k_end; ++kk) {
              api.read(tid, &a[kk * n + jb], (j_end - jb) * sizeof(double));
              for (std::size_t i = ib; i < i_end; ++i) {
                const double l = a[i * n + kk];
                for (std::size_t j = jb; j < j_end; ++j) {
                  api.store(tid, a[i * n + j],
                            a[i * n + j] - l * a[kk * n + j]);
                }
                api.compute(tid, 4 * (j_end - jb));
              }
            }
          }
        }
        barrier.arrive_and_wait();
      }
    });
  }

 private:
  static std::size_t dim(const WorkloadParams& p) {
    return p.full ? 512 : 128;
  }
};

// --- fft -----------------------------------------------------------------------

class FftWorkload final : public Workload {
 public:
  std::string name() const override { return "fft"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(points(p));
  }
  std::uint64_t instr_per_store() const override { return 24; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    const std::size_t n = points(p);
    auto* re = static_cast<double*>(api.alloc(0, n * sizeof(double)));
    auto* im = static_cast<double*>(api.alloc(0, n * sizeof(double)));

    {
      Rng rng(p.seed);
      ApiFase fase(api, 0);
      for (std::size_t i = 0; i < n; ++i) {
        api.store(0, re[i], rng.uniform() - 0.5);
        api.store(0, im[i], 0.0);
        api.compute(0, 4);
      }
    }

    SpinBarrier barrier(p.threads);
    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      // Bit-reversal permutation (thread 0; swaps are persistent writes).
      if (tid == 0) {
        ApiFase fase(api, 0);
        unsigned bits = 0;
        while ((1ull << bits) < n) ++bits;
        for (std::size_t i = 0; i < n; ++i) {
          std::size_t r = 0;
          for (unsigned b = 0; b < bits; ++b) r = (r << 1) | ((i >> b) & 1u);
          if (r > i) {
            std::swap(re[i], re[r]);
            std::swap(im[i], im[r]);
            api.wrote(0, &re[i], sizeof(double));
            api.wrote(0, &re[r], sizeof(double));
            api.wrote(0, &im[i], sizeof(double));
            api.wrote(0, &im[r], sizeof(double));
            api.compute(0, 12);
          }
        }
      }
      barrier.arrive_and_wait();

      // log2(n) butterfly stages; each thread owns a contiguous range of
      // butterfly groups; FASE per (stage, thread).
      for (std::size_t len = 2; len <= n; len <<= 1) {
        const double angle = -6.283185307179586 / static_cast<double>(len);
        const std::size_t half = len / 2;
        const std::size_t groups = n / len;
        const auto [g_begin, g_end] = split(groups, p.threads, tid);
        {
          ApiFase fase(api, tid);
          for (std::size_t g = g_begin; g < g_end; ++g) {
            const std::size_t base = g * len;
            for (std::size_t k = 0; k < half; ++k) {
              const double wr = std::cos(angle * static_cast<double>(k));
              const double wi = std::sin(angle * static_cast<double>(k));
              const std::size_t i = base + k;
              const std::size_t j = i + half;
              const double tr = re[j] * wr - im[j] * wi;
              const double ti = re[j] * wi + im[j] * wr;
              api.store(tid, re[j], re[i] - tr);
              api.store(tid, im[j], im[i] - ti);
              api.store(tid, re[i], re[i] + tr);
              api.store(tid, im[i], im[i] + ti);
              api.compute(tid, 18);
            }
          }
        }
        barrier.arrive_and_wait();
      }
    });
  }

 private:
  static std::size_t points(const WorkloadParams& p) {
    return p.full ? (1u << 16) : (1u << 13);
  }
};

// --- radix ---------------------------------------------------------------------

class RadixWorkload final : public Workload {
 public:
  std::string name() const override { return "radix"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(keys(p));
  }
  std::uint64_t instr_per_store() const override { return 12; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    const std::size_t n = keys(p);
    constexpr std::size_t kBins = 256;
    auto* src = static_cast<std::uint32_t*>(
        api.alloc(0, n * sizeof(std::uint32_t)));
    auto* dst = static_cast<std::uint32_t*>(
        api.alloc(0, n * sizeof(std::uint32_t)));
    // Per-thread persistent histograms (cache-line separated hot sets).
    std::vector<std::uint32_t*> hist(p.threads);
    for (std::size_t t = 0; t < p.threads; ++t) {
      hist[t] = static_cast<std::uint32_t*>(
          api.alloc(t, kBins * sizeof(std::uint32_t)));
    }

    {
      Rng rng(p.seed);
      ApiFase fase(api, 0);
      for (std::size_t i = 0; i < n; ++i) {
        api.store(0, src[i], static_cast<std::uint32_t>(rng()));
        api.compute(0, 3);
      }
    }

    SpinBarrier barrier(p.threads);
    std::vector<std::vector<std::uint32_t>> offsets(
        p.threads, std::vector<std::uint32_t>(kBins));

    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      for (unsigned pass = 0; pass < 4; ++pass) {
        const unsigned shift = pass * 8;
        const auto [begin, end] = split(n, p.threads, tid);

        // Count phase: the 256-bin histogram (16 lines) is the hot write
        // set, incremented once per key.
        {
          ApiFase fase(api, tid);
          for (std::size_t b = 0; b < kBins; ++b) {
            api.store(tid, hist[tid][b], 0u);
          }
          for (std::size_t i = begin; i < end; ++i) {
            api.read(tid, &src[i], sizeof(std::uint32_t));
            const std::size_t b = (src[i] >> shift) & 0xffu;
            api.store(tid, hist[tid][b], hist[tid][b] + 1);
            api.compute(tid, 5);
          }
        }
        barrier.arrive_and_wait();

        // Prefix phase (thread 0): global offsets from all histograms.
        if (tid == 0) {
          std::uint32_t running = 0;
          for (std::size_t b = 0; b < kBins; ++b) {
            for (std::size_t t = 0; t < p.threads; ++t) {
              offsets[t][b] = running;
              running += hist[t][b];
            }
          }
        }
        barrier.arrive_and_wait();

        // Scatter phase: streaming writes to dst at histogram-determined
        // positions (mostly sequential within a bin).
        {
          ApiFase fase(api, tid);
          auto& my_offsets = offsets[tid];
          for (std::size_t i = begin; i < end; ++i) {
            api.read(tid, &src[i], sizeof(std::uint32_t));
            const std::size_t b = (src[i] >> shift) & 0xffu;
            api.store(tid, dst[my_offsets[b]], src[i]);
            ++my_offsets[b];
            api.compute(tid, 7);
          }
        }
        barrier.arrive_and_wait();

        if (tid == 0) std::swap(src, dst);
        barrier.arrive_and_wait();
      }
    });
  }

 private:
  static std::size_t keys(const WorkloadParams& p) {
    return p.full ? 262144 : 32768;
  }
};

}  // namespace

std::unique_ptr<Workload> make_lu() { return std::make_unique<LuWorkload>(); }
std::unique_ptr<Workload> make_fft() {
  return std::make_unique<FftWorkload>();
}
std::unique_ptr<Workload> make_radix() {
  return std::make_unique<RadixWorkload>();
}

}  // namespace nvc::workloads
