// The four micro-benchmarks of the paper's evaluation (Section IV-B), all
// modeled on the Atlas repository versions:
//
//   persistent-array — one FASE, nested loop writing an int array (the
//                      paper's working-set / cache-size case study);
//   queue            — Michael & Scott's two-lock concurrent queue, made
//                      persistent, one FASE per operation;
//   hash             — chained hash table (single-threaded), FASE per insert;
//   linked-list      — sorted singly linked list, elements inserted in a
//                      perfect-shuffle (bit-reversal) order, multithreaded.
#include <mutex>
#include <string>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace nvc::workloads {

namespace {

// --- persistent-array --------------------------------------------------------

class PersistentArrayWorkload final : public Workload {
 public:
  std::string name() const override { return "persistent-array"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(total_writes(p));
  }
  std::uint64_t instr_per_store() const override { return 6; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    // Paper: inner loop writes elements 0..399 of an int array; the outer
    // loop repeats 2500 times; a single FASE wraps everything. The inner
    // working set is 400 ints = 25 or 26 cache lines.
    const std::size_t inner = 400;
    const std::size_t outer = p.full ? 2500 : 250;
    auto* array = static_cast<int*>(api.alloc(0, inner * sizeof(int)));

    ApiFase fase(api, 0);
    for (std::size_t rep = 0; rep < outer; ++rep) {
      for (std::size_t i = 0; i < inner; ++i) {
        api.store(0, array[i], static_cast<int>(rep + i));
        api.compute(0, 6);
      }
    }
  }

 private:
  static std::uint64_t total_writes(const WorkloadParams& p) {
    return 400ull * (p.full ? 2500 : 250);
  }
};

// --- queue --------------------------------------------------------------------

/// Michael & Scott two-lock queue (PODC'96, the blocking algorithm), with
/// persistent nodes and head/tail anchors.
class QueueWorkload final : public Workload {
 public:
  std::string name() const override { return "queue"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(ops(p));
  }
  std::uint64_t instr_per_store() const override { return 18; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    struct Node {
      std::uint64_t value;
      Node* next;
    };
    struct Anchors {
      alignas(kCacheLineSize) Node* head;
      alignas(kCacheLineSize) Node* tail;
    };

    auto* anchors = static_cast<Anchors*>(api.alloc(0, sizeof(Anchors)));
    auto* dummy = static_cast<Node*>(api.alloc(0, sizeof(Node)));
    {
      ApiFase fase(api, 0);
      api.store(0, dummy->value, std::uint64_t{0});
      api.store(0, dummy->next, static_cast<Node*>(nullptr));
      api.store(0, anchors->head, dummy);
      api.store(0, anchors->tail, dummy);
    }

    std::mutex head_lock;
    std::mutex tail_lock;
    const std::uint64_t per_thread = ops(p) / p.threads;

    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      Rng rng(p.seed + tid * 1000003);
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        // Enqueue.
        auto* node = static_cast<Node*>(api.alloc(tid, sizeof(Node)));
        {
          std::lock_guard<std::mutex> guard(tail_lock);
          ApiFase fase(api, tid);
          api.store(tid, node->value, rng());
          api.store(tid, node->next, static_cast<Node*>(nullptr));
          api.store(tid, anchors->tail->next, node);
          api.store(tid, anchors->tail, node);
          api.compute(tid, 24);
        }
        // Dequeue every other operation to keep the queue bounded.
        if ((i & 1u) != 0) {
          std::lock_guard<std::mutex> guard(head_lock);
          Node* old_head = anchors->head;
          Node* new_head = old_head->next;
          if (new_head != nullptr) {
            ApiFase fase(api, tid);
            api.store(tid, anchors->head, new_head);
            api.compute(tid, 12);
          }
        }
      }
    });
  }

 private:
  static std::uint64_t ops(const WorkloadParams& p) {
    return p.full ? 400000 : 40000;
  }
};

// --- hash ----------------------------------------------------------------------

/// Chained hash table modeled on the c-hashtable micro-benchmark the paper
/// cites: insert key/value pairs, occasional lookups and removals, one FASE
/// per mutation.
class HashWorkload final : public Workload {
 public:
  std::string name() const override { return "hash"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(inserts(p));
  }
  std::uint64_t instr_per_store() const override { return 22; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    struct Node {
      std::uint64_t key;
      std::uint64_t value;
      Node* next;
    };
    const std::size_t buckets = 1024;
    auto** table =
        static_cast<Node**>(api.alloc(0, buckets * sizeof(Node*)));
    {
      ApiFase fase(api, 0);
      for (std::size_t b = 0; b < buckets; ++b) {
        api.store(0, table[b], static_cast<Node*>(nullptr));
      }
    }

    Rng rng(p.seed);
    const std::uint64_t n = inserts(p);
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t key = rng.below(n * 2);
      const std::size_t b =
          static_cast<std::size_t>(splitmix64_mix(key)) & (buckets - 1);
      auto* node = static_cast<Node*>(api.alloc(0, sizeof(Node)));
      ApiFase fase(api, 0);
      api.store(0, node->key, key);
      api.store(0, node->value, key * 3 + 1);
      api.store(0, node->next, table[b]);
      api.store(0, table[b], node);
      api.compute(0, 30);
      // Every 8th mutation removes the bucket head again (delete path).
      if ((i & 7u) == 7u && table[b] != nullptr) {
        Node* head = table[b];
        api.store(0, table[b], head->next);
        api.compute(0, 10);
      }
    }
  }

 private:
  static std::uint64_t inserts(const WorkloadParams& p) {
    return p.full ? 40000 : 4000;
  }
};

// --- linked-list ----------------------------------------------------------------

/// Sorted singly linked list; N keys inserted in bit-reversal ("perfect
/// shuffle") order so successive insertions land far apart. Threads insert
/// disjoint key ranges under a shared lock (the Atlas benchmark uses a
/// global lock too — the FASE is the lock's critical section).
class LinkedListWorkload final : public Workload {
 public:
  std::string name() const override { return "linked-list"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(elements(p));
  }
  std::uint64_t instr_per_store() const override { return 26; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    struct Node {
      std::uint64_t key;
      Node* next;
    };

    auto** head_slot = static_cast<Node**>(api.alloc(0, sizeof(Node*)));
    {
      ApiFase fase(api, 0);
      api.store(0, *head_slot, static_cast<Node*>(nullptr));
    }

    const std::uint64_t n = elements(p);
    unsigned bits = 0;
    while ((1ull << bits) < n) ++bits;
    std::mutex list_lock;
    const std::uint64_t per_thread = n / p.threads;

    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        const std::uint64_t seq = tid * per_thread + i;
        const std::uint64_t key = bit_reverse(seq, bits);
        auto* node = static_cast<Node*>(api.alloc(tid, sizeof(Node)));
        std::lock_guard<std::mutex> guard(list_lock);
        ApiFase fase(api, tid);

        Node** link = head_slot;
        std::uint64_t traversed = 0;
        while (*link != nullptr && (*link)->key < key) {
          link = &(*link)->next;
          ++traversed;
        }
        api.store(tid, node->key, key);
        api.store(tid, node->next, *link);
        api.store(tid, *link, node);
        api.compute(tid, 8 + traversed * 3);
      }
    });
  }

 private:
  static std::uint64_t elements(const WorkloadParams& p) {
    return p.full ? 10000 : 4000;
  }
  static std::uint64_t bit_reverse(std::uint64_t x, unsigned bits) {
    std::uint64_t r = 0;
    for (unsigned b = 0; b < bits; ++b) {
      r = (r << 1) | ((x >> b) & 1u);
    }
    return r;
  }
};

}  // namespace

std::unique_ptr<Workload> make_persistent_array() {
  return std::make_unique<PersistentArrayWorkload>();
}
std::unique_ptr<Workload> make_queue() {
  return std::make_unique<QueueWorkload>();
}
std::unique_ptr<Workload> make_hash() {
  return std::make_unique<HashWorkload>();
}
std::unique_ptr<Workload> make_linked_list() {
  return std::make_unique<LinkedListWorkload>();
}

}  // namespace nvc::workloads
