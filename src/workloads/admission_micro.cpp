#include "workloads/admission_micro.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "runtime/runtime.hpp"

namespace nvc::workloads {

namespace {

constexpr std::uint64_t kStreamPerFase = 64;  // never-reused lines per FASE
constexpr std::uint64_t kHotLines = 8;        // fits the default soft cache
constexpr std::uint64_t kReuseLines = 6;
constexpr std::uint64_t kReuseStoresPerFase = 128;

std::string unique_region_name() {
  static std::atomic<std::uint64_t> counter{0};
  char buf[64];
  std::snprintf(buf, sizeof(buf), "admit-micro-%d-%llu",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(
                    counter.fetch_add(1, std::memory_order_relaxed)));
  return buf;
}

/// First 64-byte-aligned address inside an allocation of `lines` cache
/// lines plus alignment slack, so every 64-byte-strided store touches
/// exactly one line and the byte accounting is exact.
std::uint8_t* aligned_lines(runtime::Runtime& rt, std::uint64_t lines) {
  auto* raw = static_cast<std::uint8_t*>(
      rt.pm_alloc(lines * kCacheLineSize + kCacheLineSize));
  const auto addr = reinterpret_cast<std::uintptr_t>(raw);
  return raw + (align_up(addr, kCacheLineSize) - addr);
}

}  // namespace

const char* to_string(AdmissionWorkload workload) {
  switch (workload) {
    case AdmissionWorkload::kWriteOnceStream:
      return "stream";
    case AdmissionWorkload::kReuseHeavy:
      return "reuse";
  }
  NVC_UNREACHABLE("invalid AdmissionWorkload");
}

AdmissionMicroResult run_admission_micro(core::PolicyKind policy,
                                         core::AdmitMode admit,
                                         AdmissionWorkload workload,
                                         std::uint64_t fases) {
  NVC_REQUIRE(fases >= 1);
  runtime::RuntimeConfig config;
  config.region_name = unique_region_name();
  const std::uint64_t stream_lines = fases * kStreamPerFase;
  config.region_size = std::max<std::size_t>(
      std::size_t{1} << 20, (stream_lines + 64) * kCacheLineSize * 2);
  config.policy = policy;
  config.flush = pmem::FlushKind::kCountOnly;
  config.wear_tracking = true;
  config.policy_config.admission.mode = admit;
  if (policy == core::PolicyKind::kSoftCache) {
    // Online sampling, scaled so the first burst (and with it the kReuse
    // verdict) lands after two FASEs; synchronous analysis keeps the run
    // deterministic. The knee selection is capped at the base capacity so
    // the stall bound — not the cache — has to absorb the stream: without
    // the cap the online policy simply grows the cache past the hot set's
    // reuse distance and the admission dimension measures nothing.
    config.policy_config.sampler.burst_length = 256;
    config.policy_config.sampler.async_analysis = false;
    config.policy_config.sampler.knee.max_size = 8;
  }

  runtime::Runtime rt(config);
  {
    std::uint8_t* stream = aligned_lines(rt, stream_lines);
    std::uint8_t* hot = aligned_lines(rt, kHotLines);
    std::uint64_t next_stream = 0;
    const std::uint64_t value = 0x5ca1ab1eULL;

    for (std::uint64_t f = 0; f < fases; ++f) {
      runtime::FaseScope fase(rt);
      if (workload == AdmissionWorkload::kWriteOnceStream) {
        // One stream store between consecutive hot-line writes: each hot
        // line's reuse distance is 15 distinct lines, just past the
        // default capacity-8 soft cache, so under `always` the stream
        // turns the whole hot set into eviction churn.
        for (std::uint64_t step = 0; step < kStreamPerFase; ++step) {
          rt.pstore(stream + (next_stream++) * kCacheLineSize, &value,
                    sizeof(value));
          rt.pstore(hot + (step % kHotLines) * kCacheLineSize, &value,
                    sizeof(value));
        }
      } else {
        for (std::uint64_t step = 0; step < kReuseStoresPerFase; ++step) {
          rt.pstore(hot + (step % kReuseLines) * kCacheLineSize, &value,
                    sizeof(value));
        }
      }
    }
    rt.thread_flush();
  }

  const runtime::RuntimeStats s = rt.stats();
  AdmissionMicroResult r;
  r.fases = s.fases;
  r.stores = s.stores;
  r.bypassed = s.bypassed_stores;
  r.media_line_writes = s.media_line_writes;
  r.media_bytes = s.media_bytes_written;
  r.wear_max_line_writes = s.wear_max_line_writes;
  r.wear_leveling_skew = s.wear_leveling_skew;
  r.bytes_per_fase =
      static_cast<double>(r.media_bytes) / static_cast<double>(fases);
  rt.destroy_storage();
  return r;
}

}  // namespace nvc::workloads
