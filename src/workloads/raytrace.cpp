// raytrace — a sphere-scene ray caster standing in for SPLASH2's raytrace.
// Persistent data: the framebuffer (written once per pixel, mostly
// sequentially within a tile) and per-object hit statistics (small, very hot
// — rewritten on every intersection test that hits). The mix of streaming
// pixel writes and a compact hot counter set gives a mid-small MRC knee
// (the paper selects 8 for raytrace).
#include <cmath>
#include <string>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace nvc::workloads {

namespace {

struct Sphere {
  double x, y, z, r;
  double shade;
};

struct HitStats {
  std::uint64_t tests = 0;
  std::uint64_t hits = 0;
};

class RaytraceWorkload final : public Workload {
 public:
  std::string name() const override { return "raytrace"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return p.full ? "car(512px)" : "teapot(192px)";
  }
  std::uint64_t instr_per_store() const override { return 80; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    const std::size_t res = p.full ? 512 : 192;  // image is res x res
    const std::size_t num_spheres = 24;
    const std::size_t tile = 16;

    auto* image = static_cast<float*>(api.alloc(0, res * res * sizeof(float)));
    // Per-thread hit statistics: the hot persistent counters, cache-line
    // separated so threads never share a software-cache line.
    std::vector<HitStats*> stats(p.threads);
    for (std::size_t t = 0; t < p.threads; ++t) {
      stats[t] = static_cast<HitStats*>(
          api.alloc(t, num_spheres * sizeof(HitStats)));
    }

    // Scene setup (transient array of spheres; read-only during tracing).
    std::vector<Sphere> scene(num_spheres);
    {
      Rng rng(p.seed);
      for (auto& s : scene) {
        s = Sphere{rng.uniform() * 4 - 2, rng.uniform() * 4 - 2,
                   rng.uniform() * 4 + 2, rng.uniform() * 0.5 + 0.2,
                   rng.uniform()};
      }
      ApiFase fase(api, 0);
      for (std::size_t t = 0; t < p.threads; ++t) {
        for (std::size_t i = 0; i < num_spheres; ++i) {
          api.store(0, stats[t][i], HitStats{});
        }
      }
    }

    // Tiles are distributed round-robin over threads; one FASE per tile.
    const std::size_t tiles_per_side = res / tile;
    const std::size_t num_tiles = tiles_per_side * tiles_per_side;

    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      for (std::size_t t = tid; t < num_tiles; t += p.threads) {
        const std::size_t tx = (t % tiles_per_side) * tile;
        const std::size_t ty = (t / tiles_per_side) * tile;
        ApiFase fase(api, tid);
        for (std::size_t py = ty; py < ty + tile; ++py) {
          for (std::size_t px = tx; px < tx + tile; ++px) {
            const double dx =
                (static_cast<double>(px) / static_cast<double>(res)) * 2 - 1;
            const double dy =
                (static_cast<double>(py) / static_cast<double>(res)) * 2 - 1;
            float shade = 0.05f;  // background
            double best_t = 1e30;
            for (std::size_t s = 0; s < num_spheres; ++s) {
              double hit_t;
              const bool hit = intersect(scene[s], dx, dy, &hit_t);
              // Per-object statistics: hot persistent counters. Recording
              // every 4th test keeps counter traffic from dwarfing pixels.
              if ((px & 3u) == 0) {
                HitStats st = stats[tid][s];
                ++st.tests;
                st.hits += hit ? 1 : 0;
                api.store(tid, stats[tid][s], st);
              }
              if (hit && hit_t < best_t) {
                best_t = hit_t;
                shade = static_cast<float>(scene[s].shade /
                                           (1.0 + 0.1 * hit_t));
              }
              api.compute(tid, 18);
            }
            api.store(tid, image[py * res + px], shade);
          }
        }
      }
    });
  }

 private:
  /// Ray from origin through (dx, dy, 1): solve |o + t*d - c|^2 = r^2.
  static bool intersect(const Sphere& s, double dx, double dy, double* t) {
    const double dz = 1.0;
    const double a = dx * dx + dy * dy + dz * dz;
    const double b = -2 * (dx * s.x + dy * s.y + dz * s.z);
    const double c = s.x * s.x + s.y * s.y + s.z * s.z - s.r * s.r;
    const double disc = b * b - 4 * a * c;
    if (disc < 0) return false;
    const double root = (-b - std::sqrt(disc)) / (2 * a);
    if (root <= 1e-9) return false;
    *t = root;
    return true;
  }
};

}  // namespace

std::unique_ptr<Workload> make_raytrace() {
  return std::make_unique<RaytraceWorkload>();
}

}  // namespace nvc::workloads
