// fmm — a uniform-grid fast-multipole-style N-body solver capturing the
// write-locality of SPLASH2's fmm: per-cell multipole expansion blocks are
// the persistent hot data.
//
// Phases per step (each thread owns a slab of cells):
//   P2M  — accumulate each body into its cell's multipole coefficients; the
//          coefficient block (K complex terms ~ a few cache lines) is
//          revisited per body in the cell;
//   M2L  — translate neighbor-cell multipoles into each cell's local
//          expansion; the local block is revisited per interaction partner;
//   L2P  — evaluate local expansions at the bodies and rewrite body state.
//
// The hot write set is a handful of coefficient blocks — the paper selects
// cache size 10 for fmm.
#include <cmath>
#include <string>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace nvc::workloads {

namespace {

constexpr std::size_t kTerms = 16;  // expansion terms (complex doubles)

struct Complex {
  double re = 0, im = 0;
};

struct CellExp {
  Complex multipole[kTerms];
  Complex local[kTerms];
};

struct FmmBody {
  double x = 0, y = 0;
  double charge = 1.0;
  double potential = 0;
};

class FmmWorkload final : public Workload {
 public:
  std::string name() const override { return "fmm"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(bodies(p));
  }
  std::uint64_t instr_per_store() const override { return 70; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    const std::size_t n = bodies(p);
    const std::size_t steps = p.full ? 3 : 2;
    const std::size_t dim = 8;  // cells per side
    const std::size_t num_cells = dim * dim;

    auto* body = static_cast<FmmBody*>(api.alloc(0, n * sizeof(FmmBody)));
    auto* cells =
        static_cast<CellExp*>(api.alloc(0, num_cells * sizeof(CellExp)));

    // Transient binning scaffolding (DRAM in the original as well).
    std::vector<std::vector<std::uint32_t>> members(num_cells);

    {
      Rng rng(p.seed);
      ApiFase fase(api, 0);
      for (std::size_t i = 0; i < n; ++i) {
        FmmBody b;
        b.x = rng.uniform();
        b.y = rng.uniform();
        b.charge = rng.uniform() * 2 - 1;
        api.store(0, body[i], b);
        api.compute(0, 14);
      }
    }

    SpinBarrier barrier(p.threads);
    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      const std::size_t cell_chunk = (num_cells + p.threads - 1) / p.threads;
      const std::size_t c_begin = std::min(tid * cell_chunk, num_cells);
      const std::size_t c_end = std::min(c_begin + cell_chunk, num_cells);

      for (std::size_t step = 0; step < steps; ++step) {
        if (tid == 0) {
          for (auto& m : members) m.clear();
          for (std::uint32_t i = 0; i < n; ++i) {
            const auto cx = std::min<std::size_t>(
                static_cast<std::size_t>(body[i].x * dim), dim - 1);
            const auto cy = std::min<std::size_t>(
                static_cast<std::size_t>(body[i].y * dim), dim - 1);
            members[cy * dim + cx].push_back(i);
          }
        }
        barrier.arrive_and_wait();

        // P2M: FASE per cell pair so two coefficient blocks stay hot.
        for (std::size_t c = c_begin; c < c_end; c += 2) {
          ApiFase fase(api, tid);
          for (std::size_t cc = c; cc < std::min(c + 2, c_end); ++cc) {
            p2m(api, tid, cells[cc], members[cc], body, cc, dim);
          }
        }
        barrier.arrive_and_wait();

        // M2L: FASE per *pair* of cells, sweeping the interaction offsets
        // outermost and alternating between the two cells' local blocks.
        // sizeof(CellExp) is exactly 8 cache lines, so any two cells' local
        // blocks occupy the same direct-mapped slots — Atlas' table evicts
        // one block while SC's associative LRU (the paper selects 10 for
        // fmm) keeps both resident across the whole sweep.
        for (std::size_t c = c_begin; c < c_end; c += 2) {
          const std::size_t pair_end = std::min(c + 2, c_end);
          ApiFase fase(api, tid);
          for (std::size_t cc = c; cc < pair_end; ++cc) {
            for (std::size_t t = 0; t < kTerms; ++t) {
              api.store(tid, cells[cc].local[t], Complex{});
            }
          }
          for (std::int64_t dy = -3; dy <= 3; ++dy) {
            for (std::int64_t dx = -3; dx <= 3; ++dx) {
              if (std::max(std::llabs(dx), std::llabs(dy)) < 2) continue;
              for (std::size_t cc = c; cc < pair_end; ++cc) {
                m2l_accumulate(api, tid, cells, cc, dim, dx, dy);
              }
            }
          }
        }
        barrier.arrive_and_wait();

        // L2P: rewrite body potentials (sequential over the cell members).
        for (std::size_t c = c_begin; c < c_end; ++c) {
          ApiFase fase(api, tid);
          for (const std::uint32_t i : members[c]) {
            FmmBody b = body[i];
            double pot = 0;
            for (std::size_t t = 0; t < kTerms; ++t) {
              pot += cells[c].local[t].re * std::pow(0.5, double(t));
            }
            b.potential = pot;
            api.store(tid, body[i], b);
            api.compute(tid, 6 * kTerms);
          }
        }
        barrier.arrive_and_wait();
      }
    });
  }

 private:
  static std::size_t bodies(const WorkloadParams& p) {
    return p.full ? 16384 : 4096;
  }

  static void p2m(PersistApi& api, std::size_t tid, CellExp& cell,
                  const std::vector<std::uint32_t>& mem, const FmmBody* body,
                  std::size_t c, std::size_t dim) {
    const double cx = (static_cast<double>(c % dim) + 0.5) /
                      static_cast<double>(dim);
    const double cy = (static_cast<double>(c / dim) + 0.5) /
                      static_cast<double>(dim);
    // Zero the block, then fold each member body in term by term; every
    // body rewrites the whole coefficient block (the hot lines).
    for (std::size_t t = 0; t < kTerms; ++t) {
      api.store(tid, cell.multipole[t], Complex{});
    }
    for (const std::uint32_t i : mem) {
      const double dx = body[i].x - cx;
      const double dy = body[i].y - cy;
      Complex z{dx, dy};
      Complex zk{1, 0};
      for (std::size_t t = 0; t < kTerms; ++t) {
        Complex m = cell.multipole[t];
        m.re += body[i].charge * zk.re;
        m.im += body[i].charge * zk.im;
        api.store(tid, cell.multipole[t], m);
        const Complex nz{zk.re * z.re - zk.im * z.im,
                         zk.re * z.im + zk.im * z.re};
        zk = nz;
      }
      api.compute(tid, 10 * kTerms);
    }
  }

  /// Fold one well-separated interaction partner (offset dx, dy) into cell
  /// c's local expansion.
  static void m2l_accumulate(PersistApi& api, std::size_t tid,
                             CellExp* cells, std::size_t c, std::size_t dim,
                             std::int64_t dx, std::int64_t dy) {
    const std::int64_t nx = static_cast<std::int64_t>(c % dim) + dx;
    const std::int64_t ny = static_cast<std::int64_t>(c / dim) + dy;
    if (nx < 0 || ny < 0 || nx >= static_cast<std::int64_t>(dim) ||
        ny >= static_cast<std::int64_t>(dim)) {
      return;
    }
    const CellExp& src = cells[static_cast<std::size_t>(ny) * dim +
                               static_cast<std::size_t>(nx)];
    api.read(tid, src.multipole, sizeof(src.multipole));
    const double sep = 1.0 / (std::sqrt(double(dx * dx + dy * dy)) + 0.1);
    for (std::size_t t = 0; t < kTerms; ++t) {
      Complex l = cells[c].local[t];
      l.re += src.multipole[t].re * sep;
      l.im += src.multipole[t].im * sep;
      api.store(tid, cells[c].local[t], l);
    }
    api.compute(tid, 8 * kTerms);
  }
};

}  // namespace

std::unique_ptr<Workload> make_fmm() {
  return std::make_unique<FmmWorkload>();
}

}  // namespace nvc::workloads
