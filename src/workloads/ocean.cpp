// ocean — red-black relaxation over the coupled stream-function (psi) and
// vorticity grids, the locality core of SPLASH2's ocean simulation.
//
// Write-locality shape (the structural reason for the paper's Table III
// numbers on ocean): every interior point updates *two* same-shaped grids
// plus a per-row residual accumulator. The grids are laid out contiguously
// with strides that are multiples of 512 B — the natural layout for
// power-of-two ocean grids — so the same-index lines of psi and vort map to
// the SAME slot of a direct-mapped table and evict each other on every
// point, while a tiny fully-associative LRU (the paper selects size 2 for
// ocean) holds both streams and combines the 8 writes per line.
#include <cmath>
#include <string>

#include "common/barrier.hpp"
#include "common/types.hpp"
#include "workloads/workload.hpp"

namespace nvc::workloads {

namespace {

class OceanWorkload final : public Workload {
 public:
  std::string name() const override { return "ocean"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(grid_dim(p));
  }
  std::uint64_t instr_per_store() const override { return 14; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    const std::size_t n = grid_dim(p);
    const std::size_t steps = p.full ? 5 : 3;

    // One contiguous block of two grids; the stride is 512B-aligned so
    // psi[i][j] and vort[i][j] always share a direct-mapped slot.
    const std::size_t stride =
        align_up(n * n * sizeof(double), 8 * kCacheLineSize) /
        sizeof(double);
    auto* block = static_cast<double*>(api.alloc(0, 2 * stride *
                                                 sizeof(double)));
    double* psi = block;
    double* vort = block + stride;
    auto* row_err = static_cast<double*>(api.alloc(0, n * sizeof(double)));

    SpinBarrier barrier(p.threads);
    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      const auto [row_begin, row_end] = partition(n, p.threads, tid);
      {
        ApiFase fase(api, tid);
        for (std::size_t i = row_begin; i < row_end; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            const double boundary =
                (i == 0 || j == 0 || i == n - 1 || j == n - 1)
                    ? std::sin(static_cast<double>(i + j) * 0.01)
                    : 0.0;
            api.store(tid, psi[i * n + j], boundary);
            api.store(tid, vort[i * n + j], boundary * 0.5);
            api.compute(tid, 6);
          }
        }
      }
      barrier.arrive_and_wait();

      // Red-black coupled relaxation: per (step, color, thread) one FASE.
      for (std::size_t step = 0; step < steps; ++step) {
        for (int color = 0; color < 2; ++color) {
          ApiFase fase(api, tid);
          const std::size_t lo = std::max<std::size_t>(row_begin, 1);
          const std::size_t hi = std::min(row_end, n - 1);
          for (std::size_t i = lo; i < hi; ++i) {
            double err = 0.0;
            for (std::size_t j = 1 + ((i + static_cast<std::size_t>(color)) &
                                      1u);
                 j < n - 1; j += 2) {
              const std::size_t at = i * n + j;
              api.read(tid, &psi[at - n], sizeof(double));
              api.read(tid, &psi[at + n], sizeof(double));
              api.read(tid, &vort[at - n], sizeof(double));
              const double relaxed =
                  0.25 * (psi[at - n] + psi[at + n] + psi[at - 1] +
                          psi[at + 1]) -
                  0.125 * vort[at];
              err += std::abs(relaxed - psi[at]);
              api.store(tid, psi[at], relaxed);
              // Vorticity follows the curl of the updated stream function.
              const double curled =
                  0.25 * (vort[at - n] + vort[at + n] + vort[at - 1] +
                          vort[at + 1]) +
                  0.02 * relaxed;
              api.store(tid, vort[at], curled);
              // Residual checkpointing every few points: a third, hot line
              // visiting the rotation occasionally.
              if ((j & 7u) == 1u) api.store(tid, row_err[i], err);
              api.compute(tid, 22);
            }
          }
          barrier.arrive_and_wait();
        }
      }
    });
  }

 private:
  static std::size_t grid_dim(const WorkloadParams& p) {
    return p.full ? 1026 : 258;
  }
  static std::pair<std::size_t, std::size_t> partition(std::size_t n,
                                                       std::size_t threads,
                                                       std::size_t tid) {
    const std::size_t chunk = (n + threads - 1) / threads;
    const std::size_t begin = std::min(tid * chunk, n);
    return {begin, std::min(begin + chunk, n)};
  }
};

}  // namespace

std::unique_ptr<Workload> make_ocean() {
  return std::make_unique<OceanWorkload>();
}

}  // namespace nvc::workloads
