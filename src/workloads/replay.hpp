// Offline replay of recorded workload traces through a caching policy.
//
// Two replay substrates:
//   * flush counting — drives a policy with a CountingSink; produces the
//     flush ratios of Table III at trace speed;
//   * cost-model simulation — drives policy + hwsim::CoreSim; produces the
//     deterministic cycle counts behind Fig. 5/6 and Table IV.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/policy.hpp"
#include "hwsim/cache_sim.hpp"
#include "hwsim/cost_model.hpp"
#include "workloads/api.hpp"

namespace nvc::workloads {

struct FlushCountResult {
  std::uint64_t stores = 0;
  std::uint64_t flushes = 0;
  std::uint64_t fases = 0;

  double flush_ratio() const noexcept {
    return stores == 0
               ? 0.0
               : static_cast<double>(flushes) / static_cast<double>(stores);
  }
};

/// Replay one thread's trace through a fresh policy of the given kind and
/// count the flushes it issues.
FlushCountResult replay_flush_count(const ThreadTrace& trace,
                                    core::PolicyKind kind,
                                    const core::PolicyConfig& config = {});

/// Replay every thread of a TraceApi recording; sums the per-thread counts
/// (each thread has its own policy instance, as in the paper).
FlushCountResult replay_flush_count_all(const TraceApi& traces,
                                        core::PolicyKind kind,
                                        const core::PolicyConfig& config = {});

// ---------------------------------------------------------------------------

struct SimThreadResult {
  double cycles = 0.0;
  std::uint64_t instructions = 0;  // app compute + policy bookkeeping
  std::uint64_t flushes = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t stores = 0;
  hwsim::CacheStats l1;
};

struct SimRunResult {
  std::vector<SimThreadResult> threads;

  /// Simulated wall-clock of the parallel run: slowest thread.
  double makespan_cycles() const noexcept;
  std::uint64_t total_instructions() const noexcept;
  std::uint64_t total_flushes() const noexcept;
  std::uint64_t total_stores() const noexcept;
  double flush_ratio() const noexcept;
  /// Aggregate L1 miss ratio over all threads.
  double l1_miss_ratio() const noexcept;
};

struct SimConfig {
  hwsim::CostParams cost;
  hwsim::CacheConfig l1;
  core::PolicyConfig policy;
};

/// Replay one thread's trace through policy + core model.
SimThreadResult replay_cost_model(const ThreadTrace& trace,
                                  core::PolicyKind kind,
                                  const SimConfig& config,
                                  std::uint64_t seed);

/// Replay all threads; each gets its own policy and core. The L1 contention
/// probability should already be set in config.l1 for the thread count.
SimRunResult simulate_run(const TraceApi& traces, core::PolicyKind kind,
                          const SimConfig& config);

}  // namespace nvc::workloads
