// Deterministic microworkloads for the write-admission ablation
// (DESIGN.md §12, EXPERIMENTS.md "bytes written to media per FASE").
//
// Two traffic shapes, designed so the byte counts are exact and replayable
// (count backend, fixed iteration order, no randomness):
//
//   write-once stream  every FASE interleaves 64 never-reused streaming
//                      lines with 8 hot lines written 8 times each, one
//                      stream store between consecutive hot-line writes.
//                      The hot set alone fits the default soft cache
//                      (capacity 8), but the interleaved stream pushes each
//                      hot line's reuse distance to 15 — under NVC_ADMIT=
//                      always every access misses and the hot set is pure
//                      eviction churn (128 media writes per FASE); under
//                      write-once the stream bypasses, the hot set stays
//                      resident, and the FASE costs 64 + 8 media writes.
//
//   reuse-heavy        every FASE writes 6 lines round-robin, 128 stores.
//                      All residencies fit, writes combine, and admission
//                      must not change the byte count: the 6 lines are
//                      re-admitted from the doorkeeper after the first FASE.
//
// Used by bench/micro_gbench.cpp (exact_ counters gated by compare.py) and
// tests/test_admission.cpp (the ≥30% reduction acceptance bound).
#pragma once

#include <cstdint>

#include "core/admission.hpp"
#include "core/policy.hpp"

namespace nvc::workloads {

enum class AdmissionWorkload : std::uint8_t {
  kWriteOnceStream,
  kReuseHeavy,
};

const char* to_string(AdmissionWorkload workload);

struct AdmissionMicroResult {
  std::uint64_t fases = 0;
  std::uint64_t stores = 0;
  std::uint64_t bypassed = 0;           // admission write-throughs
  std::uint64_t media_line_writes = 0;  // wear tracker: lines that landed
  std::uint64_t media_bytes = 0;        // wear tracker: bytes that landed
  std::uint64_t wear_max_line_writes = 0;
  double wear_leveling_skew = 0.0;
  double bytes_per_fase = 0.0;          // the ablation's headline metric
};

/// Run `fases` FASEs of the chosen shape through a fresh Runtime (count
/// backend, wear tracking on, no undo log) under `policy` x `admit`.
/// Deterministic: same arguments, same result, bit for bit.
AdmissionMicroResult run_admission_micro(core::PolicyKind policy,
                                         core::AdmitMode admit,
                                         AdmissionWorkload workload,
                                         std::uint64_t fases = 64);

}  // namespace nvc::workloads
