// The instrumentation seam between workloads and the persistence machinery.
//
// Every workload (SPLASH2-style mini-app, micro-benchmark, MDB adapter) is
// written against PersistApi. Two implementations cover the two measurement
// substrates of DESIGN.md:
//
//   RuntimeApi — forwards to runtime::Runtime: real persistent heap, real
//                cache-line flushes; used for wall-clock experiments.
//   TraceApi   — records a per-thread event trace (stores at cache-line
//                granularity, FASE boundaries, computation amounts); the
//                trace is replayed offline through any policy, either for
//                flush counting or through the hwsim cost model.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"
#include "runtime/runtime.hpp"

namespace nvc::workloads {

class PersistApi {
 public:
  virtual ~PersistApi() = default;

  /// Allocate durable memory (real persistent heap or trace-mode arena).
  virtual void* alloc(std::size_t tid, std::size_t size) = 0;

  virtual void fase_begin(std::size_t tid) = 0;
  virtual void fase_end(std::size_t tid) = 0;

  /// The workload wrote [addr, addr+len); track it for persistence.
  virtual void wrote(std::size_t tid, const void* addr, std::size_t len) = 0;

  /// Persistence barrier inside a FASE: everything written so far must be
  /// durable before this call returns (flush buffered lines + fence). Used
  /// by stores that implement their own commit ordering, e.g. MDB flushing
  /// data pages before publishing the new meta (LMDB's fsync-before-meta).
  virtual void persist_barrier(std::size_t tid) = 0;

  /// The workload read [addr, addr+len) of persistent data. Reads are NOT
  /// reported to the caching policy (the paper's analysis is write-only)
  /// but they drive the hardware-cache model: a clflush-invalidated line
  /// re-misses on its next load — the indirect flush cost of Section II-A.
  /// Live mode ignores this (the real load already ran).
  virtual void read(std::size_t tid, const void* addr, std::size_t len) {
    (void)tid;
    (void)addr;
    (void)len;
  }

  /// Hint: `instr` instructions of pure computation happened (trace mode
  /// feeds this to the cost model; live mode ignores it — the computation
  /// itself already consumed wall-clock time).
  virtual void compute(std::size_t tid, std::uint64_t instr) {
    (void)tid;
    (void)instr;
  }

  /// Typed store helper: write the value, then track it.
  template <typename T>
  void store(std::size_t tid, T& dst, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    dst = value;
    wrote(tid, &dst, sizeof(T));
  }
};

/// RAII FASE for workload code.
class ApiFase {
 public:
  ApiFase(PersistApi& api, std::size_t tid) : api_(api), tid_(tid) {
    api_.fase_begin(tid_);
  }
  ~ApiFase() { api_.fase_end(tid_); }
  ApiFase(const ApiFase&) = delete;
  ApiFase& operator=(const ApiFase&) = delete;

 private:
  PersistApi& api_;
  std::size_t tid_;
};

// ---------------------------------------------------------------------------

/// Live-mode adapter over the FASE runtime.
class RuntimeApi final : public PersistApi {
 public:
  explicit RuntimeApi(runtime::Runtime& rt) : rt_(rt) {}

  void* alloc(std::size_t, std::size_t size) override {
    return rt_.pm_alloc(size);
  }
  void fase_begin(std::size_t) override { rt_.fase_begin(); }
  void fase_end(std::size_t) override { rt_.fase_end(); }
  void wrote(std::size_t, const void* addr, std::size_t len) override {
    rt_.pwrote(addr, len);
  }
  void persist_barrier(std::size_t) override { rt_.persist_barrier(); }

 private:
  runtime::Runtime& rt_;
};

// ---------------------------------------------------------------------------

/// One recorded event. Stores are cache-line granular (like Atlas, which
/// monitors writes at cache-line granularity).
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kStore,
    kLoad,  // persistent-data read (L1 model only; not seen by policies)
    kFaseBegin,
    kFaseEnd,
    kCompute,
    kBarrier,  // mid-FASE persistence barrier
  };
  Kind kind;
  std::uint64_t value;  // kStore: LineAddr; kCompute: instruction count
};

/// Per-thread event trace of one workload execution.
struct ThreadTrace {
  std::vector<TraceEvent> events;

  std::uint64_t store_count = 0;
  std::uint64_t load_count = 0;
  std::uint64_t fase_count = 0;
  std::uint64_t compute_instr = 0;

  /// Extract the bare store trace and FASE-end boundary positions (indices
  /// into the store sequence), the form the locality analyses consume.
  void store_trace(std::vector<LineAddr>* stores,
                   std::vector<std::size_t>* boundaries) const;
};

/// Trace-mode implementation; thread-safe across distinct tids.
class TraceApi final : public PersistApi {
 public:
  /// `threads`: number of tids that will be used. Trace-mode allocations come
  /// from a private arena so that line addresses are deterministic across
  /// runs (same seed => byte-identical traces).
  explicit TraceApi(std::size_t threads, std::size_t arena_bytes = 64u << 20);
  ~TraceApi() override;
  TraceApi(TraceApi&&) noexcept;
  TraceApi& operator=(TraceApi&&) noexcept;

  void* alloc(std::size_t tid, std::size_t size) override;
  void fase_begin(std::size_t tid) override;
  void fase_end(std::size_t tid) override;
  void wrote(std::size_t tid, const void* addr, std::size_t len) override;
  void compute(std::size_t tid, std::uint64_t instr) override;
  void persist_barrier(std::size_t tid) override;
  void read(std::size_t tid, const void* addr, std::size_t len) override;

  std::size_t threads() const noexcept { return traces_.size(); }
  const ThreadTrace& trace(std::size_t tid) const {
    NVC_REQUIRE(tid < traces_.size());
    return traces_[tid];
  }

  /// Concatenated store count over all threads.
  std::uint64_t total_stores() const noexcept;

  /// Cache-line address of the arena base. Store-event line addresses are
  /// deterministic *relative to this base* across runs (the arena itself
  /// lands wherever the OS maps it).
  LineAddr arena_base_line() const noexcept;

 private:
  struct Arena;
  std::vector<ThreadTrace> traces_;
  std::unique_ptr<Arena> arena_;
};

}  // namespace nvc::workloads
