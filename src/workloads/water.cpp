// water-nsquared and water-spatial — molecular dynamics with Lennard-Jones
// style pair forces, the two water codes of SPLASH2.
//
//   water-nsquared: every molecule interacts with every other (O(N^2));
//     the force phase processes molecules in blocks, sweeping all partners
//     per block, so a block's force accumulators (a few dozen cache lines)
//     are revisited once per partner chunk — a wide write working set whose
//     MRC knee sits around the block footprint (the paper selects 28).
//
//   water-spatial: molecules are binned into a uniform cell grid and only
//     neighbor cells interact; a FASE covers one cell neighborhood, whose
//     resident molecules' accumulators form a mid-sized working set (the
//     paper selects 23).
//
// Both are strong-scaling: fixed total molecules, partitioned over threads,
// so the FASE count grows with the thread count while total stores stay put
// (the effect analyzed in the paper's Table IV).
#include <cmath>
#include <string>
#include <vector>

#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "workloads/workload.hpp"

namespace nvc::workloads {

namespace {

struct Vec3 {
  double x = 0, y = 0, z = 0;
};

struct Molecule {
  Vec3 pos;
  Vec3 vel;
};

/// Pair force with an inlined inverse-square falloff (a stand-in for the
/// water potential's dominant term); returns the force on `a` from `b`.
inline Vec3 pair_force(const Vec3& a, const Vec3& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  const double dz = a.z - b.z;
  const double r2 = dx * dx + dy * dy + dz * dz + 1e-6;
  const double inv = 1.0 / r2;
  const double mag = inv * inv - 0.5 * inv;  // LJ-like: repulsion - cohesion
  return Vec3{dx * mag, dy * mag, dz * mag};
}

void init_molecules(PersistApi& api, std::size_t tid, Molecule* mol,
                    Vec3* force, std::size_t n, std::uint64_t seed,
                    double box) {
  Rng rng(seed);
  ApiFase fase(api, tid);
  for (std::size_t i = 0; i < n; ++i) {
    Molecule m;
    m.pos = Vec3{rng.uniform() * box, rng.uniform() * box,
                 rng.uniform() * box};
    m.vel = Vec3{rng.uniform() - 0.5, rng.uniform() - 0.5,
                 rng.uniform() - 0.5};
    api.store(tid, mol[i], m);
    api.store(tid, force[i], Vec3{});
    api.compute(tid, 20);
  }
}

void integrate_partition(PersistApi& api, std::size_t tid, Molecule* mol,
                         Vec3* force, std::size_t begin, std::size_t end,
                         double dt, double box) {
  ApiFase fase(api, tid);
  for (std::size_t i = begin; i < end; ++i) {
    Molecule m = mol[i];
    m.vel.x += force[i].x * dt;
    m.vel.y += force[i].y * dt;
    m.vel.z += force[i].z * dt;
    m.pos.x = std::fmod(m.pos.x + m.vel.x * dt + box, box);
    m.pos.y = std::fmod(m.pos.y + m.vel.y * dt + box, box);
    m.pos.z = std::fmod(m.pos.z + m.vel.z * dt + box, box);
    api.store(tid, mol[i], m);
    api.compute(tid, 28);
  }
}

std::pair<std::size_t, std::size_t> partition(std::size_t n,
                                              std::size_t threads,
                                              std::size_t tid) {
  const std::size_t chunk = (n + threads - 1) / threads;
  const std::size_t begin = std::min(tid * chunk, n);
  return {begin, std::min(begin + chunk, n)};
}

// --- water-nsquared -----------------------------------------------------------

class WaterNsquaredWorkload final : public Workload {
 public:
  std::string name() const override { return "water-nsquared"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(molecules(p));
  }
  std::uint64_t instr_per_store() const override { return 120; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    const std::size_t n = molecules(p);
    const std::size_t steps = p.full ? 4 : 3;
    const double box = 10.0;
    const double dt = 1e-3;
    // Block of molecules whose accumulators one FASE keeps hot: 64
    // molecules x sizeof(Vec3) = 24 cache lines.
    const std::size_t block = 64;
    // Partner chunk: accumulate this many partners in registers before
    // writing the force line back (one persistent write per chunk).
    const std::size_t chunk = 16;

    auto* mol = static_cast<Molecule*>(api.alloc(0, n * sizeof(Molecule)));
    auto* force = static_cast<Vec3*>(api.alloc(0, n * sizeof(Vec3)));

    SpinBarrier barrier(p.threads);
    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      const auto [begin, end] = partition(n, p.threads, tid);
      if (tid == 0) init_molecules(api, tid, mol, force, n, p.seed, box);
      barrier.arrive_and_wait();

      for (std::size_t step = 0; step < steps; ++step) {
        // Force phase: blocks of i, all partners j, chunked accumulation.
        for (std::size_t b = begin; b < end; b += block) {
          const std::size_t b_end = std::min(b + block, end);
          ApiFase fase(api, tid);
          for (std::size_t jc = 0; jc < n; jc += chunk) {
            const std::size_t jc_end = std::min(jc + chunk, n);
            api.read(tid, &mol[jc], (jc_end - jc) * sizeof(Molecule));
            for (std::size_t i = b; i < b_end; ++i) {
              Vec3 acc{};
              api.read(tid, &mol[i], sizeof(Molecule));
              for (std::size_t j = jc; j < jc_end; ++j) {
                if (j == i) continue;
                const Vec3 f = pair_force(mol[i].pos, mol[j].pos);
                acc.x += f.x;
                acc.y += f.y;
                acc.z += f.z;
              }
              Vec3 total = force[i];
              total.x += acc.x;
              total.y += acc.y;
              total.z += acc.z;
              api.store(tid, force[i], total);
              api.compute(tid, 14 * (jc_end - jc));
            }
          }
        }
        barrier.arrive_and_wait();

        integrate_partition(api, tid, mol, force, begin, end, dt, box);
        // Reset accumulators for the next step.
        {
          ApiFase fase(api, tid);
          for (std::size_t i = begin; i < end; ++i) {
            api.store(tid, force[i], Vec3{});
            api.compute(tid, 4);
          }
        }
        barrier.arrive_and_wait();
      }
    });
  }

 private:
  static std::size_t molecules(const WorkloadParams& p) {
    return p.full ? 512 : 448;
  }
};

// --- water-spatial --------------------------------------------------------------

class WaterSpatialWorkload final : public Workload {
 public:
  std::string name() const override { return "water-spatial"; }
  std::string problem_size(const WorkloadParams& p) const override {
    return std::to_string(molecules(p));
  }
  std::uint64_t instr_per_store() const override { return 90; }

  void run(PersistApi& api, const WorkloadParams& p) override {
    const std::size_t n = molecules(p);
    const std::size_t steps = p.full ? 8 : 6;
    const double box = 10.0;
    const double dt = 1e-3;
    const std::size_t cells = 4;  // cells per dimension (3D grid)
    const double cell_w = box / static_cast<double>(cells);

    auto* mol = static_cast<Molecule*>(api.alloc(0, n * sizeof(Molecule)));
    auto* force = static_cast<Vec3*>(api.alloc(0, n * sizeof(Vec3)));

    SpinBarrier barrier(p.threads);
    // Cell lists are transient (rebuilt each step, stack/heap data — the
    // paper persists only non-stack program data; index scaffolding lives in
    // DRAM in the original too).
    std::vector<std::vector<std::uint32_t>> cell_of(cells * cells * cells);

    ThreadTeam::run(p.threads, [&](std::size_t tid) {
      const auto [begin, end] = partition(n, p.threads, tid);
      if (tid == 0) init_molecules(api, tid, mol, force, n, p.seed, box);
      barrier.arrive_and_wait();

      for (std::size_t step = 0; step < steps; ++step) {
        // Bin molecules (thread 0; cheap relative to the force phase).
        if (tid == 0) {
          for (auto& c : cell_of) c.clear();
          for (std::uint32_t i = 0; i < n; ++i) {
            const auto cx = static_cast<std::size_t>(mol[i].pos.x / cell_w) %
                            cells;
            const auto cy = static_cast<std::size_t>(mol[i].pos.y / cell_w) %
                            cells;
            const auto cz = static_cast<std::size_t>(mol[i].pos.z / cell_w) %
                            cells;
            cell_of[(cx * cells + cy) * cells + cz].push_back(i);
          }
        }
        barrier.arrive_and_wait();

        // Force phase: one FASE per *block* of home cells. The neighbor
        // offset loop is outermost and the block's cells are interleaved
        // inside it, so consecutive writes to a molecule's accumulator line
        // are separated by the whole block footprint (~a few hundred bytes)
        // — the write working set whose knee the MRC analysis finds.
        const std::size_t total_cells = cells * cells * cells;
        // 4 cells x ~5 molecules x 24B accumulators ~= 20 cache lines of
        // block footprint: the MRC knee the paper reports at 23.
        const std::size_t cell_block = 4;
        const auto [cell_begin, cell_end] =
            partition(total_cells, p.threads, tid);
        for (std::size_t cb = cell_begin; cb < cell_end; cb += cell_block) {
          const std::size_t cb_end = std::min(cb + cell_block, cell_end);
          ApiFase fase(api, tid);
          for (std::size_t dxi = 0; dxi < 3; ++dxi) {
            for (std::size_t dyi = 0; dyi < 3; ++dyi) {
              for (std::size_t dzi = 0; dzi < 3; ++dzi) {
                for (std::size_t c = cb; c < cb_end; ++c) {
                  const std::size_t cx = c / (cells * cells);
                  const std::size_t cy = (c / cells) % cells;
                  const std::size_t cz = c % cells;
                  const auto& home = cell_of[c];
                  if (home.empty()) continue;
                  const std::size_t nx = (cx + dxi + cells - 1) % cells;
                  const std::size_t ny = (cy + dyi + cells - 1) % cells;
                  const std::size_t nz = (cz + dzi + cells - 1) % cells;
                  const auto& nbr = cell_of[(nx * cells + ny) * cells + nz];
                  for (const std::uint32_t j : nbr) {
                    api.read(tid, &mol[j], sizeof(Molecule));
                  }
                  for (const std::uint32_t i : home) {
                    Vec3 acc{};
                    for (const std::uint32_t j : nbr) {
                      if (j == i) continue;
                      const Vec3 f = pair_force(mol[i].pos, mol[j].pos);
                      acc.x += f.x;
                      acc.y += f.y;
                      acc.z += f.z;
                    }
                    Vec3 total = force[i];
                    total.x += acc.x;
                    total.y += acc.y;
                    total.z += acc.z;
                    api.store(tid, force[i], total);
                    api.compute(tid, 14 * nbr.size());
                  }
                }
              }
            }
          }
        }
        barrier.arrive_and_wait();

        integrate_partition(api, tid, mol, force, begin, end, dt, box);
        {
          ApiFase fase(api, tid);
          for (std::size_t i = begin; i < end; ++i) {
            api.store(tid, force[i], Vec3{});
            api.compute(tid, 4);
          }
        }
        barrier.arrive_and_wait();
      }
    });
  }

 private:
  static std::size_t molecules(const WorkloadParams& p) {
    return p.full ? 512 : 343;
  }
};

}  // namespace

std::unique_ptr<Workload> make_water_nsquared() {
  return std::make_unique<WaterNsquaredWorkload>();
}
std::unique_ptr<Workload> make_water_spatial() {
  return std::make_unique<WaterSpatialWorkload>();
}

}  // namespace nvc::workloads
