// Thread coordination primitives for the strong-scaling workloads:
// a reusable sense-reversing spin barrier (cheap for short phases) and a
// simple thread team that joins on destruction (RAII, CP.23/CP.25).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace nvc {

/// Sense-reversing centralized spin barrier. Reusable across phases.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t parties) noexcept
      : parties_(parties), remaining_(parties) {
    NVC_REQUIRE(parties > 0);
  }

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      remaining_.store(parties_, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        std::this_thread::yield();  // host may have fewer cores than threads
      }
    }
  }

 private:
  const std::size_t parties_;
  std::atomic<std::size_t> remaining_;
  std::atomic<bool> sense_{false};
};

/// Launches `n` threads running fn(thread_id) and joins them on run() return.
class ThreadTeam {
 public:
  /// Run fn(tid) on `n` threads; tid 0 runs on the calling thread so that
  /// single-threaded configurations have zero spawn overhead.
  static void run(std::size_t n, const std::function<void(std::size_t)>& fn) {
    NVC_REQUIRE(n > 0);
    std::vector<std::thread> threads;
    threads.reserve(n - 1);
    for (std::size_t tid = 1; tid < n; ++tid) {
      threads.emplace_back([&fn, tid] { fn(tid); });
    }
    fn(0);
    for (auto& t : threads) t.join();
  }
};

}  // namespace nvc
