// Runtime CPU feature detection for the persistent-memory flush instructions,
// plus a cached core/NUMA topology probe used for worker-pool sizing and
// placement.
#pragma once

#include <cstdint>
#include <vector>

namespace nvc {

struct CpuFeatures {
  bool clflush = false;     // SSE2 CLFLUSH
  bool clflushopt = false;  // CLFLUSHOPT (weakly ordered flush+invalidate)
  bool clwb = false;        // CLWB (write back without invalidate)
};

/// Detect flush-instruction support via CPUID (cached after first call).
const CpuFeatures& cpu_features();

/// Core/NUMA map, probed once (sysfs on Linux, hardware_concurrency
/// fallback elsewhere). Cheap to copy around: a handful of ints plus one
/// cpu->node vector.
struct CpuTopology {
  int logical_cpus = 1;           // online logical CPUs, always >= 1
  int numa_nodes = 1;             // online NUMA nodes, always >= 1
  std::vector<int> cpu_node;      // cpu_node[cpu] = NUMA node (size logical_cpus)

  /// CPUs living on `node` (ascending). Empty only for an invalid node.
  std::vector<int> cpus_on_node(int node) const;
  /// True when more than one logical CPU is online — the only question the
  /// drain spin-vs-yield heuristic needs.
  bool can_spin() const { return logical_cpus > 1; }
};

/// The topology, probed on first call and cached for the process lifetime
/// (hot paths like the drain watchdog must not re-query sysfs or
/// std::thread::hardware_concurrency per decision).
const CpuTopology& cpu_topology();

/// Pin the calling thread to one logical CPU. Returns false (and leaves the
/// affinity untouched) when pinning is unsupported or rejected — callers
/// treat pinning as a hint, never a requirement.
bool pin_thread_to_cpu(int cpu);

}  // namespace nvc
