// Runtime CPU feature detection for the persistent-memory flush instructions.
#pragma once

namespace nvc {

struct CpuFeatures {
  bool clflush = false;     // SSE2 CLFLUSH
  bool clflushopt = false;  // CLFLUSHOPT (weakly ordered flush+invalidate)
  bool clwb = false;        // CLWB (write back without invalidate)
};

/// Detect flush-instruction support via CPUID (cached after first call).
const CpuFeatures& cpu_features();

}  // namespace nvc
