#include "common/cpu.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace nvc {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    f.clflush = (edx & (1u << 19)) != 0;  // CLFSH
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.clflushopt = (ebx & (1u << 23)) != 0;
    f.clwb = (ebx & (1u << 24)) != 0;
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = detect();
  return features;
}

namespace {

// Parse a sysfs cpulist ("0-3,8,10-11") into CPU ids. Returns false on any
// syntax surprise so the caller can fall back to a flat topology.
bool parse_cpulist(const std::string& list, std::vector<int>* out) {
  size_t pos = 0;
  while (pos < list.size()) {
    size_t end = list.find(',', pos);
    if (end == std::string::npos) end = list.size();
    const std::string tok = list.substr(pos, end - pos);
    pos = end + 1;
    if (tok.empty()) continue;
    const size_t dash = tok.find('-');
    int lo = 0, hi = 0;
    if (std::sscanf(tok.c_str(), "%d", &lo) != 1 || lo < 0) return false;
    hi = lo;
    if (dash != std::string::npos &&
        (std::sscanf(tok.c_str() + dash + 1, "%d", &hi) != 1 || hi < lo)) {
      return false;
    }
    // Sanity cap: a corrupt sysfs line must not allocate a huge map.
    if (hi >= 1 << 20) return false;
    for (int cpu = lo; cpu <= hi; ++cpu) out->push_back(cpu);
  }
  return true;
}

bool read_line(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "re");
  if (f == nullptr) return false;
  char buf[4096];
  const bool ok = std::fgets(buf, sizeof buf, f) != nullptr;
  std::fclose(f);
  if (!ok) return false;
  out->assign(buf);
  while (!out->empty() && (out->back() == '\n' || out->back() == '\r')) {
    out->pop_back();
  }
  return true;
}

CpuTopology probe_topology() {
  CpuTopology topo;
  const unsigned hw = std::thread::hardware_concurrency();
  topo.logical_cpus = hw > 0 ? static_cast<int>(hw) : 1;
  topo.cpu_node.assign(static_cast<size_t>(topo.logical_cpus), 0);
#if defined(__linux__)
  // Walk node directories until the first gap; sysfs numbers online nodes
  // densely on every configuration we care about, and a miss just means we
  // keep the flat single-node answer for the remainder.
  int max_cpu = -1;
  std::vector<std::pair<int, std::vector<int>>> nodes;
  for (int node = 0;; ++node) {
    std::string list;
    if (!read_line("/sys/devices/system/node/node" + std::to_string(node) +
                       "/cpulist",
                   &list)) {
      break;
    }
    std::vector<int> cpus;
    if (!parse_cpulist(list, &cpus)) return topo;
    if (!cpus.empty()) {
      max_cpu = std::max(max_cpu, *std::max_element(cpus.begin(), cpus.end()));
      nodes.emplace_back(node, std::move(cpus));
    }
  }
  if (!nodes.empty() && max_cpu >= 0) {
    topo.logical_cpus = std::max(topo.logical_cpus, max_cpu + 1);
    topo.cpu_node.assign(static_cast<size_t>(topo.logical_cpus), 0);
    topo.numa_nodes = static_cast<int>(nodes.size());
    for (size_t i = 0; i < nodes.size(); ++i) {
      for (int cpu : nodes[i].second) {
        topo.cpu_node[static_cast<size_t>(cpu)] = static_cast<int>(i);
      }
    }
  }
#endif
  return topo;
}

}  // namespace

std::vector<int> CpuTopology::cpus_on_node(int node) const {
  std::vector<int> cpus;
  for (size_t cpu = 0; cpu < cpu_node.size(); ++cpu) {
    if (cpu_node[cpu] == node) cpus.push_back(static_cast<int>(cpu));
  }
  return cpus;
}

const CpuTopology& cpu_topology() {
  static const CpuTopology topo = probe_topology();
  return topo;
}

bool pin_thread_to_cpu(int cpu) {
#if defined(__linux__)
  if (cpu < 0 || cpu >= CPU_SETSIZE) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof set, &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace nvc
