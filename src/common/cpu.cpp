#include "common/cpu.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace nvc {

namespace {

CpuFeatures detect() {
  CpuFeatures f;
#if defined(__x86_64__) || defined(__i386__)
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    f.clflush = (edx & (1u << 19)) != 0;  // CLFSH
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.clflushopt = (ebx & (1u << 23)) != 0;
    f.clwb = (ebx & (1u << 24)) != 0;
  }
#endif
  return f;
}

}  // namespace

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = detect();
  return features;
}

}  // namespace nvc
