// Plain-text table printer used by the benchmark harness to emit rows in the
// same layout as the paper's tables.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace nvc {

/// Accumulates rows of string cells and prints an aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Append one row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render to `out` (defaults to stdout) with column alignment and rules.
  void print(std::FILE* out = stdout) const;

  /// Number formatting helpers for table cells.
  static std::string fmt(double v, int precision = 3);
  static std::string fmt_ratio(double v);     // "2.94x"
  static std::string fmt_percent(double v);   // "83.21%"
  static std::string fmt_count(std::uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nvc
