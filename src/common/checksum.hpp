// The one checksum module every self-certifying persistent byte in this
// repo goes through (DESIGN.md §14).
//
// Two families, chosen per use:
//
//   FNV-1a (32-bit)  — the undo log's record check words (PR 2). Cheap,
//                      byte-at-a-time, and already baked into every durable
//                      log image: the incremental Fnv32 class reproduces the
//                      historical per-record mixing order bit-for-bit, so
//                      logs written before this module existed still
//                      certify after reopen.
//   CRC32C (Castagnoli) — region/heap metadata seals and data-line
//                      verification (NVC_VERIFY_DATA, the online scrubber).
//                      Detects burst errors FNV can miss; the polynomial
//                      real NVRAM/storage stacks use (iSCSI, ext4, NVMe).
//
// Everything here is header-only, constexpr-friendly, and allocation-free;
// recovery code calls it on arbitrary untrusted bytes, so nothing in this
// file may read outside [data, data+len) or branch on byte values.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace nvc {

/// Incremental FNV-1a (32-bit). Mix order defines the certified layout:
/// callers feed fields in a fixed sequence and any reordering changes the
/// check word (which is the point — a field swap is corruption).
class Fnv32 {
 public:
  static constexpr std::uint32_t kOffsetBasis = 0x811c9dc5u;
  static constexpr std::uint32_t kPrime = 0x01000193u;

  constexpr void mix_byte(std::uint8_t byte) noexcept {
    h_ ^= byte;
    h_ *= kPrime;
  }

  constexpr void mix_bytes(const void* data, std::size_t len) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) mix_byte(p[i]);
  }

  /// Mix an unsigned integral value little-endian (byte 0 = low byte),
  /// independent of host endianness — durable images are byte streams.
  template <typename T>
  constexpr void mix_le(T value) noexcept {
    static_assert(std::is_unsigned_v<T>);
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      mix_byte(static_cast<std::uint8_t>(value >> (8 * i)));
    }
  }

  constexpr std::uint32_t value() const noexcept { return h_; }

 private:
  std::uint32_t h_ = kOffsetBasis;
};

/// One-shot FNV-1a over a byte range.
constexpr std::uint32_t fnv1a32(const void* data, std::size_t len) noexcept {
  Fnv32 h;
  h.mix_bytes(data, len);
  return h.value();
}

namespace detail {

/// Reflected CRC32C (Castagnoli, poly 0x1EDC6F41 => reflected 0x82F63B78),
/// byte-at-a-time table generated at compile time. 64-byte lines and
/// 144-byte headers don't justify a sliced or hardware variant; the table
/// fits one KiB and the scrubber's batches amortize everything else.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82f63b78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable =
    make_crc32c_table();

}  // namespace detail

/// CRC32C of [data, data+len), chainable: pass a previous return value as
/// `seed` to continue a running checksum over a split buffer (the identity
/// crc32c(a+b) == crc32c(b, seed=crc32c(a)) holds).
constexpr std::uint32_t crc32c(const void* data, std::size_t len,
                               std::uint32_t seed = 0) noexcept {
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = (crc >> 8) ^ detail::kCrc32cTable[(crc ^ p[i]) & 0xffu];
  }
  return ~crc;
}

}  // namespace nvc
