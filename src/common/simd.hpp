// Compile-time SIMD dispatch for the analysis kernels (PR 7).
//
// The hot analysis loops (reuse/footprint accumulation, SHARDS spatial
// hashing) get AVX2 paths guarded by a scalar fallback chosen at compile
// time: __AVX2__ is set by -march=native (NVC_NATIVE=ON, the default) on
// hosts that have it, and NVC_NO_SIMD=ON forces the scalar path everywhere
// for differential testing. There is deliberately no runtime dispatch —
// per-call branching would cost more than these short kernels, and the
// binary already targets the build host.
//
// Bit-exactness contract: every vector path here must produce bit-identical
// results to its scalar fallback. The double-precision kernels only ever
// add/subtract integer-valued doubles (interval counts, gap counts) whose
// magnitudes stay far below 2^53, so reassociating the additions across
// lanes is exact, and the final divisions use operand-for-operand the same
// values as the scalar loop. The integer kernels (splitmix64) are plain
// modular arithmetic, lane-for-lane identical. Tests assert equality with
// EXPECT_DOUBLE_EQ, not tolerances, and the crash fuzzer's byte-identical
// replay oracle would catch any divergence that slipped through.
#pragma once

#include <cstdint>

#if defined(__AVX2__) && !defined(NVC_NO_SIMD)
#define NVC_SIMD_AVX2 1
#include <immintrin.h>
#else
#define NVC_SIMD_AVX2 0
#endif

namespace nvc {

/// Which kernel flavor this binary compiled in (diagnostics, bench labels).
inline constexpr const char* simd_backend() noexcept {
#if NVC_SIMD_AVX2
  return "avx2";
#else
  return "scalar";
#endif
}

#if NVC_SIMD_AVX2

namespace simd {

/// [0, a0, a1, a2]: shift doubles up one lane, zero-filling lane 0.
inline __m256d shift_up1_pd(__m256d a) noexcept {
  const __m256d rot = _mm256_permute4x64_pd(a, _MM_SHUFFLE(2, 1, 0, 0));
  return _mm256_blend_pd(rot, _mm256_setzero_pd(), 0x1);
}

/// [0, 0, a0, a1]: shift doubles up two lanes, zero-filling lanes 0-1.
inline __m256d shift_up2_pd(__m256d a) noexcept {
  const __m256d rot = _mm256_permute4x64_pd(a, _MM_SHUFFLE(1, 0, 0, 0));
  return _mm256_blend_pd(rot, _mm256_setzero_pd(), 0x3);
}

/// In-register inclusive prefix sum: [a0, a0+a1, a0+a1+a2, a0+a1+a2+a3].
/// Exact for integer-valued doubles (addition of exactly representable
/// integers below 2^53 is associative).
inline __m256d prefix_sum_pd(__m256d a) noexcept {
  a = _mm256_add_pd(a, shift_up1_pd(a));
  return _mm256_add_pd(a, shift_up2_pd(a));
}

/// 64-bit lane-wise multiply (AVX2 has no _mm256_mullo_epi64): decompose
/// each 64-bit product into three 32x32 partials; the high*high partial
/// only feeds bits >= 64 and is dropped.
inline __m256i mullo_epi64(__m256i a, __m256i b) noexcept {
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i lo_lo = _mm256_mul_epu32(a, b);       // a_lo * b_lo
  const __m256i a_hi_b = _mm256_mul_epu32(a_hi, b);   // a_hi * b_lo
  const __m256i a_b_hi = _mm256_mul_epu32(a, b_hi);   // a_lo * b_hi
  const __m256i cross = _mm256_add_epi64(a_hi_b, a_b_hi);
  return _mm256_add_epi64(lo_lo, _mm256_slli_epi64(cross, 32));
}

/// Four independent splitmix64 mixes: out[i] = mix(in[i] + 0x9e37...).
/// Matches nvc::splitmix64 (rng.hpp) lane for lane.
inline __m256i splitmix64x4(__m256i x) noexcept {
  const __m256i gamma = _mm256_set1_epi64x(
      static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m256i mul1 = _mm256_set1_epi64x(
      static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i mul2 = _mm256_set1_epi64x(
      static_cast<long long>(0x94d049bb133111ebULL));
  __m256i z = _mm256_add_epi64(x, gamma);
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
  z = mullo_epi64(z, mul1);
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
  z = mullo_epi64(z, mul2);
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

}  // namespace simd

#endif  // NVC_SIMD_AVX2

}  // namespace nvc
