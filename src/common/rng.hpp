// Deterministic, fast pseudo-random number generation for workloads and
// property tests. xoshiro256** (public-domain algorithm by Blackman & Vigna)
// seeded through splitmix64 so any 64-bit seed gives a well-mixed state.
#pragma once

#include <cstdint>
#include <limits>

#include "common/assert.hpp"

namespace nvc {

/// splitmix64 step; used for seeding and as a cheap standalone mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless one-shot mixer: exactly one splitmix64 step of `x`, without
/// advancing a stream. The single hash function behind SHARDS spatial
/// sampling, the admission doorkeeper, fault torn-length draws, and workload
/// address scrambling — all of which need the same bit-identical output as
/// advancing a fresh splitmix64 stream once (simd.hpp's splitmix64x4 is the
/// vector counterpart, lane-for-lane identical).
constexpr std::uint64_t splitmix64_mix(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** engine. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept {
    NVC_ASSERT(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    NVC_ASSERT(lo <= hi);
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace nvc
