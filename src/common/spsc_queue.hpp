// Bounded lock-free single-producer / single-consumer ring buffer.
//
// Used to hand completed burst traces from an application thread to the
// shared background analysis worker: the producing thread only writes its
// own tail index and the consumer only writes its own head index, so a
// push is wait-free — one slot move plus one release store. Capacity is a
// power of two fixed at construction; push fails (rather than blocks) when
// the ring is full so the producer can fall back instead of stalling.
#pragma once

#include <atomic>
#include <cstddef>
#include <optional>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/types.hpp"

namespace nvc {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity)
      : ring_(capacity), mask_(capacity - 1) {
    NVC_REQUIRE(is_pow2(capacity), "SPSC capacity must be a power of two");
  }

  /// Producer side. Returns false (leaving `v` intact) when full.
  bool try_push(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head == ring_.size()) return false;
    ring_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Empty optional when no element is ready.
  std::optional<T> try_pop() {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return std::nullopt;
    std::optional<T> v(std::move(ring_[head & mask_]));
    ring_[head & mask_] = T{};  // release payload resources eagerly
    head_.store(head + 1, std::memory_order_release);
    return v;
  }

  /// Approximate (exact only from the owning side's perspective).
  std::size_t size() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  bool empty() const noexcept { return size() == 0; }
  std::size_t capacity() const noexcept { return ring_.size(); }

 private:
  std::vector<T> ring_;
  const std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace nvc
