#include "common/table.hpp"

#include <algorithm>
#include <cstdint>

#include "common/assert.hpp"

namespace nvc {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  NVC_REQUIRE(!header_.empty());
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  NVC_REQUIRE(cells.size() == header_.size(),
              "row arity must match the header");
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::FILE* out) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_rule = [&] {
    std::fputc('+', out);
    for (std::size_t c = 0; c < width.size(); ++c) {
      for (std::size_t i = 0; i < width[c] + 2; ++i) std::fputc('-', out);
      std::fputc('+', out);
    }
    std::fputc('\n', out);
  };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    std::fputc('|', out);
    for (std::size_t c = 0; c < cells.size(); ++c) {
      std::fprintf(out, " %-*s |", static_cast<int>(width[c]),
                   cells[c].c_str());
    }
    std::fputc('\n', out);
  };

  print_rule();
  print_cells(header_);
  print_rule();
  for (const auto& row : rows_) print_cells(row);
  print_rule();
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_ratio(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2fx", v);
  return buf;
}

std::string TablePrinter::fmt_percent(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f%%", v * 100.0);
  return buf;
}

std::string TablePrinter::fmt_count(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace nvc
