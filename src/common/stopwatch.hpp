// Wall-clock stopwatch for the benchmark harness.
#pragma once

#include <chrono>
#include <cstdint>

namespace nvc {

class Stopwatch {
 public:
  Stopwatch() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed time since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t nanoseconds() const noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nvc
