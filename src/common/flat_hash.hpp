// Open-addressing hash map for the analysis kernels.
//
// The locality analyses (interval extraction, footprint, Mattson, SHARDS,
// FASE renaming) are O(n) passes whose constant factor is dominated by one
// hash lookup per trace element. `std::unordered_map` pays a pointer chase
// per probe (node-based buckets); this table uses the same technique as
// WriteCache's inner map — power-of-two slot array, linear probing at load
// factor <= 0.5, backward-shift deletion (no tombstones, so probe chains
// never degrade and rehash is only ever for growth).
//
// Keys must be trivially copyable integers (cache-line addresses, logical
// times); values must be default-constructible and movable. Pointers
// returned by find()/try_emplace() are invalidated by the next insertion.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/assert.hpp"

namespace nvc {

/// 64-bit finalizer (murmur3) — line addresses are often sequential, which
/// plain masking would cluster badly.
constexpr std::uint64_t hash_mix_u64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

template <typename Key, typename Value>
class FlatHashMap {
  static_assert(std::is_integral_v<Key> || std::is_enum_v<Key>,
                "FlatHashMap keys are hashed as 64-bit integers");

 public:
  FlatHashMap() { allocate(kMinSlots); }
  explicit FlatHashMap(std::size_t expected_entries) {
    allocate(slots_for(expected_entries));
  }

  /// Grow so that `expected_entries` insertions need no further rehash.
  void reserve(std::size_t expected_entries) {
    const std::size_t want = slots_for(expected_entries);
    if (want > slots_.size()) rehash(want);
  }

  /// Insert `key -> value` unless present. Returns the value slot and
  /// whether an insertion happened (mirrors unordered_map::try_emplace).
  std::pair<Value*, bool> try_emplace(Key key, Value value) {
    if ((size_ + 1) * 2 > slots_.size()) rehash(slots_.size() * 2);
    std::size_t slot = home(key);
    while (slots_[slot].used) {
      if (slots_[slot].key == key) return {&slots_[slot].value, false};
      slot = (slot + 1) & mask_;
    }
    slots_[slot].key = key;
    slots_[slot].value = std::move(value);
    slots_[slot].used = true;
    ++size_;
    return {&slots_[slot].value, true};
  }

  Value* find(Key key) noexcept {
    std::size_t slot = home(key);
    while (slots_[slot].used) {
      if (slots_[slot].key == key) return &slots_[slot].value;
      slot = (slot + 1) & mask_;
    }
    return nullptr;
  }
  const Value* find(Key key) const noexcept {
    return const_cast<FlatHashMap*>(this)->find(key);
  }

  bool contains(Key key) const noexcept { return find(key) != nullptr; }

  /// Remove `key` if present; backward-shift deletion keeps probe chains
  /// tombstone-free. Returns whether a removal happened.
  bool erase(Key key) noexcept {
    std::size_t slot = home(key);
    while (slots_[slot].used) {
      if (slots_[slot].key == key) break;
      slot = (slot + 1) & mask_;
    }
    if (!slots_[slot].used) return false;

    std::size_t hole = slot;
    std::size_t probe = (hole + 1) & mask_;
    while (slots_[probe].used) {
      const std::size_t h = home(slots_[probe].key);
      // Move the entry back if its home does not lie in (hole, probe].
      if (((probe - h) & mask_) >= ((probe - hole) & mask_)) {
        slots_[hole] = std::move(slots_[probe]);
        hole = probe;
      }
      probe = (probe + 1) & mask_;
    }
    slots_[hole] = Slot{};
    --size_;
    return true;
  }

  /// Drop all entries, keeping the slot array.
  void clear() noexcept {
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t slot_count() const noexcept { return slots_.size(); }

  /// Visit every entry as fn(key, value) in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.used) fn(s.key, s.value);
    }
  }

 private:
  struct Slot {
    Key key{};
    Value value{};
    bool used = false;
  };

  static constexpr std::size_t kMinSlots = 16;

  static std::size_t slots_for(std::size_t entries) {
    std::size_t n = kMinSlots;
    while (n < entries * 2) n <<= 1;  // keep load factor <= 0.5
    return n;
  }

  std::size_t home(Key key) const noexcept {
    return static_cast<std::size_t>(
               hash_mix_u64(static_cast<std::uint64_t>(key))) &
           mask_;
  }

  void allocate(std::size_t n) {
    NVC_ASSERT(n >= kMinSlots && (n & (n - 1)) == 0);
    slots_.assign(n, Slot{});
    mask_ = n - 1;
  }

  void rehash(std::size_t n) {
    std::vector<Slot> old = std::move(slots_);
    allocate(n);
    for (Slot& s : old) {
      if (!s.used) continue;
      std::size_t slot = home(s.key);
      while (slots_[slot].used) slot = (slot + 1) & mask_;
      slots_[slot] = std::move(s);
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace nvc
