// Lightweight statistics accumulators used by the benchmark harness and the
// hardware-cache simulator: running mean/variance (Welford), min/max, and a
// log2-bucketed histogram suitable for latency distributions.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/assert.hpp"

namespace nvc {

/// Welford online mean/variance with min/max tracking.
class RunningStat {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStat& other) noexcept {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::uint64_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Histogram with log2 buckets: bucket b holds values in [2^b, 2^(b+1)).
class Log2Histogram {
 public:
  void add(std::uint64_t value) noexcept {
    const unsigned b =
        value == 0 ? 0u : static_cast<unsigned>(64 - __builtin_clzll(value));
    ++buckets_[std::min<unsigned>(b, kBuckets - 1)];
    ++total_;
  }

  std::uint64_t total() const noexcept { return total_; }
  std::uint64_t bucket(unsigned b) const noexcept {
    NVC_REQUIRE(b < kBuckets);
    return buckets_[b];
  }

  /// Smallest value v such that at least `q` (0..1) of samples are <= 2^v.
  unsigned quantile_bucket(double q) const noexcept {
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (unsigned b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= target) return b;
    }
    return kBuckets - 1;
  }

  static constexpr unsigned kBuckets = 64;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t total_ = 0;
};

/// Arithmetic and geometric means of a sample vector (used for the paper's
/// "average" rows, which mix both conventions).
struct MeanSummary {
  double arithmetic = 0.0;
  double geometric = 0.0;
};

inline MeanSummary summarize_means(const std::vector<double>& xs) {
  MeanSummary s;
  if (xs.empty()) return s;
  double sum = 0.0;
  double logsum = 0.0;
  for (double x : xs) {
    sum += x;
    logsum += std::log(std::max(x, 1e-300));
  }
  s.arithmetic = sum / static_cast<double>(xs.size());
  s.geometric = std::exp(logsum / static_cast<double>(xs.size()));
  return s;
}

}  // namespace nvc
