// Contract-checking macros (C++ Core Guidelines I.6/I.8 style Expects/Ensures).
//
// NVC_REQUIRE  — precondition, always checked, aborts with a message.
// NVC_ENSURE   — postcondition, always checked.
// NVC_ASSERT   — internal invariant, checked unless NDEBUG.
// NVC_UNREACHABLE — marks impossible control flow.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace nvc::detail {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const char* msg) {
  std::fprintf(stderr, "nvcache: %s failed: %s\n  at %s:%d\n  %s\n", kind,
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace nvc::detail

#define NVC_REQUIRE(expr, ...)                                         \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::nvc::detail::contract_failure("precondition", #expr, __FILE__, \
                                      __LINE__, "" __VA_ARGS__);       \
    }                                                                  \
  } while (0)

#define NVC_ENSURE(expr, ...)                                           \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::nvc::detail::contract_failure("postcondition", #expr, __FILE__, \
                                      __LINE__, "" __VA_ARGS__);        \
    }                                                                   \
  } while (0)

#ifdef NDEBUG
#define NVC_ASSERT(expr, ...) \
  do {                        \
  } while (0)
#else
#define NVC_ASSERT(expr, ...)                                        \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::nvc::detail::contract_failure("invariant", #expr, __FILE__, \
                                      __LINE__, "" __VA_ARGS__);     \
    }                                                                \
  } while (0)
#endif

#define NVC_UNREACHABLE(msg)                                             \
  ::nvc::detail::contract_failure("unreachable", "control flow", __FILE__, \
                                  __LINE__, msg)
