#include "common/env.hpp"

#include <cstdlib>

namespace nvc {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v) return fallback;
  return parsed;
}

std::string env_str(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

bool full_scale() { return env_int("NVC_FULL", 0) != 0; }

std::int64_t scaled(std::int64_t quick, std::int64_t full) {
  return full_scale() ? full : quick;
}

}  // namespace nvc
