// Environment-variable based configuration for the benchmark harness.
// Every bench binary honors:
//   NVC_FULL=1        run paper-scale problem sizes (defaults are scaled down)
//   NVC_THREADS=...   cap the thread sweep
//   NVC_SEED=...      workload RNG seed
#pragma once

#include <cstdint>
#include <string>

namespace nvc {

/// Read an integer environment variable, or `fallback` if unset/invalid.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Read a floating-point environment variable (rates, probabilities), or
/// `fallback` if unset/invalid.
double env_double(const char* name, double fallback);

/// Read a string environment variable, or `fallback` if unset.
std::string env_str(const char* name, const std::string& fallback);

/// True when NVC_FULL is set to a nonzero value: run paper-scale inputs.
bool full_scale();

/// Scale a problem size: full-scale value when NVC_FULL=1, else the default.
std::int64_t scaled(std::int64_t quick, std::int64_t full);

}  // namespace nvc
