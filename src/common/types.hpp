// Fundamental types shared across the nvcache libraries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nvc {

/// Byte address into (emulated) persistent memory.
using PmAddr = std::uintptr_t;

/// Address of a 64-byte hardware cache line (byte address >> kLineShift).
using LineAddr = std::uint64_t;

/// Logical time: index of a persistent write in a per-thread trace.
using LogicalTime = std::uint64_t;

/// Identifier of a failure-atomic section instance (monotonic per thread).
using FaseId = std::uint64_t;

inline constexpr std::size_t kCacheLineSize = 64;
inline constexpr std::size_t kLineShift = 6;  // log2(kCacheLineSize)

/// Convert a byte address to the address of its enclosing cache line.
constexpr LineAddr line_of(PmAddr addr) noexcept {
  return static_cast<LineAddr>(addr >> kLineShift);
}

/// First byte address of a cache line.
constexpr PmAddr line_base(LineAddr line) noexcept {
  return static_cast<PmAddr>(line) << kLineShift;
}

/// Round `n` up to a multiple of `align` (align must be a power of two).
constexpr std::size_t align_up(std::size_t n, std::size_t align) noexcept {
  return (n + align - 1) & ~(align - 1);
}

/// True if `n` is a power of two (and nonzero).
constexpr bool is_pow2(std::size_t n) noexcept {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Integer log2 for powers of two.
constexpr unsigned log2_pow2(std::size_t n) noexcept {
  unsigned r = 0;
  while (n > 1) {
    n >>= 1;
    ++r;
  }
  return r;
}

}  // namespace nvc
