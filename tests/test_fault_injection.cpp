// Media-fault tolerance (DESIGN.md §10): the seeded FaultInjector, the
// retry/backoff/quarantine sink, the runtime's HealthReport and graceful
// degradation latches, and the flush-drain watchdog. Runs under the `fault`
// ctest label (`ctest -L fault`), in the default tier-1 sweep, and under
// NVC_SANITIZE builds like any other suite.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/fault_sink.hpp"
#include "core/flush_pipeline.hpp"
#include "pmem/fault.hpp"
#include "pmem/flush.hpp"
#include "pmem/shadow.hpp"
#include "runtime/runtime.hpp"
#include "support/crash_rig.hpp"

namespace nvc::testing {
namespace {

std::string unique_region(const char* base) {
  static int counter = 0;
  return std::string(base) + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter++);
}

// --------------------------------------------------------------------------
// FaultInjector: determinism and fault-class contracts.
// --------------------------------------------------------------------------

TEST(FaultInjector, DecisionsReplayBitForBitFromTheSeed) {
  pmem::FaultConfig config;
  config.rate = 0.5;
  config.bad_line_rate = 0.1;
  config.torn_rate = 0.5;
  config.seed = 12345;
  pmem::FaultInjector a(config);
  pmem::FaultInjector b(config);
  for (LineAddr line = 0; line < 32; ++line) {
    EXPECT_EQ(a.line_bad(line), b.line_bad(line)) << "line " << line;
    EXPECT_EQ(a.torn_bytes(line), b.torn_bytes(line)) << "line " << line;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const pmem::FaultDecision da = a.on_flush_attempt(line);
      const pmem::FaultDecision db = b.on_flush_attempt(line);
      EXPECT_EQ(da.fail, db.fail) << "line " << line << " attempt " << attempt;
      EXPECT_EQ(da.bad, db.bad) << "line " << line << " attempt " << attempt;
    }
  }

  // A different seed explores different placements (256 coin flips at
  // rate 0.5 cannot collide by accident).
  config.seed = 54321;
  pmem::FaultInjector c(config);
  int diverged = 0;
  for (LineAddr line = 0; line < 32; ++line) {
    pmem::FaultInjector fresh(config);
    for (int attempt = 0; attempt < 8; ++attempt) {
      // Compare against a's recorded behavior indirectly: just count fails.
      diverged += c.on_flush_attempt(line).fail ? 1 : 0;
    }
    (void)fresh;
  }
  EXPECT_GT(diverged, 0);
  EXPECT_LT(diverged, 32 * 8);
}

TEST(FaultInjector, TornBytesAreAlignedPureAndGated) {
  pmem::FaultConfig config;
  config.torn_rate = 1.0;  // every crash-point write-back tears
  config.seed = 7;
  pmem::FaultInjector always(config);
  for (LineAddr line = 0; line < 64; ++line) {
    const std::size_t bytes = always.torn_bytes(line);
    EXPECT_GE(bytes, 8u) << "line " << line;
    EXPECT_LE(bytes, 56u) << "line " << line;
    EXPECT_EQ(bytes % 8, 0u) << "line " << line;        // ADR atomicity unit
    EXPECT_EQ(bytes, always.torn_bytes(line));          // pure: no ordinal
  }
  config.torn_rate = 0.0;
  pmem::FaultInjector never(config);
  for (LineAddr line = 0; line < 64; ++line) {
    EXPECT_EQ(never.torn_bytes(line), 0u);
  }
}

TEST(FaultInjector, ExplicitBadLinesFailEveryAttempt) {
  pmem::FaultConfig config;
  config.bad_lines = {5};
  config.seed = 1;
  pmem::FaultInjector injector(config);
  EXPECT_TRUE(injector.line_bad(5));
  EXPECT_FALSE(injector.line_bad(6));  // bad_line_rate is zero
  for (int attempt = 0; attempt < 4; ++attempt) {
    const pmem::FaultDecision d = injector.on_flush_attempt(5);
    EXPECT_TRUE(d.fail);
    EXPECT_TRUE(d.bad);
  }
  EXPECT_EQ(injector.bad_hits(), 4u);
  const pmem::FaultDecision ok = injector.on_flush_attempt(6);
  EXPECT_FALSE(ok.fail);
  injector.reset_counters();
  EXPECT_EQ(injector.bad_hits(), 0u);
  EXPECT_EQ(injector.transients(), 0u);
}

// --------------------------------------------------------------------------
// FlushBackend: injector consult and counter reset (satellite: the new
// fault counter participates in reset_counters()).
// --------------------------------------------------------------------------

TEST(FlushBackendFaults, CountsFaultsAndResetsAllCounters) {
  pmem::FaultConfig config;
  config.rate = 1.0;  // every attempt rejected
  config.seed = 3;
  pmem::FaultInjector injector(config);
  pmem::FlushBackend backend(pmem::FlushKind::kCountOnly);
  backend.set_fault_injector(&injector);
  alignas(kCacheLineSize) char line[kCacheLineSize] = {};
  EXPECT_EQ(backend.flush(line), pmem::FlushResult::kTransient);
  EXPECT_EQ(backend.issue(line), pmem::FlushResult::kTransient);
  backend.fence();
  EXPECT_EQ(backend.fault_count(), 2u);
  EXPECT_EQ(backend.flush_count(), 2u);  // attempts count; faults separately
  EXPECT_EQ(backend.fence_count(), 1u);

  backend.reset_counters();
  EXPECT_EQ(backend.fault_count(), 0u);
  EXPECT_EQ(backend.flush_count(), 0u);
  EXPECT_EQ(backend.fence_count(), 0u);

  backend.set_fault_injector(nullptr);
  EXPECT_EQ(backend.flush(line), pmem::FlushResult::kOk);
  EXPECT_EQ(backend.flush_count(), 1u);
  EXPECT_EQ(backend.fault_count(), 0u);
}

// --------------------------------------------------------------------------
// FaultTolerantSink: retry, quarantine, fast-fail.
// --------------------------------------------------------------------------

/// Fails the first `fail_first` attempts of every line, then succeeds.
struct FlakySink final : core::FlushSink {
  explicit FlakySink(int n) : fail_first(n) {}
  bool flush_line(LineAddr line) override {
    ++attempts;
    return ++per_line[line] > fail_first;
  }
  void drain() override { ++drains; }
  int fail_first;
  int attempts = 0;
  int drains = 0;
  std::unordered_map<LineAddr, int> per_line;
};

TEST(FaultTolerantSink, RetryMasksTransientFailures) {
  FlakySink flaky(/*fail_first=*/2);
  core::FaultStats stats;
  core::FaultTolerantSink sink(&flaky, &stats,
                               core::RetryPolicy{/*max_retries=*/3,
                                                 /*backoff_ns=*/0,
                                                 /*backoff_cap_ns=*/0});
  EXPECT_TRUE(sink.flush_line(7));
  EXPECT_EQ(flaky.attempts, 3);  // two failures + the success
  EXPECT_EQ(stats.transients(), 2u);
  EXPECT_EQ(stats.retries(), 2u);
  EXPECT_EQ(stats.quarantined_count(), 0u);
  sink.drain();
  EXPECT_EQ(flaky.drains, 1);
}

TEST(FaultTolerantSink, ExhaustedRetriesQuarantineAndFailFast) {
  FlakySink dead(/*fail_first=*/1 << 20);  // never succeeds
  core::FaultStats stats;
  core::FaultTolerantSink sink(&dead, &stats,
                               core::RetryPolicy{/*max_retries=*/2,
                                                 /*backoff_ns=*/0,
                                                 /*backoff_cap_ns=*/0});
  EXPECT_FALSE(sink.flush_line(9));
  EXPECT_EQ(dead.attempts, 3);  // initial + 2 retries
  EXPECT_EQ(stats.transients(), 3u);
  EXPECT_EQ(stats.retries(), 2u);
  EXPECT_EQ(stats.quarantined_count(), 1u);
  EXPECT_TRUE(stats.quarantined(9));
  EXPECT_EQ(stats.quarantined_lines(), std::vector<LineAddr>{9});

  // Fast-fail: a poisoned line never touches the media again.
  EXPECT_FALSE(sink.flush_line(9));
  EXPECT_EQ(dead.attempts, 3);

  // Other lines are unaffected by the quarantine.
  FlakySink fine(/*fail_first=*/0);
  core::FaultTolerantSink sink2(&fine, &stats, core::RetryPolicy{2, 0, 0});
  EXPECT_TRUE(sink2.flush_line(10));

  stats.reset();
  EXPECT_EQ(stats.quarantined_count(), 0u);
  EXPECT_FALSE(stats.quarantined(9));
  EXPECT_EQ(stats.transients(), 0u);
  EXPECT_EQ(stats.retries(), 0u);
}

// --------------------------------------------------------------------------
// ShadowPmem: torn write-backs persist an aligned prefix only.
// --------------------------------------------------------------------------

TEST(ShadowPmemFaults, TornFlushPersistsAlignedPrefixAndKeepsLineDirty) {
  pmem::ShadowPmem shadow(4 * kCacheLineSize);
  std::vector<std::uint8_t> pattern(kCacheLineSize);
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    pattern[i] = static_cast<std::uint8_t>(0xA0 + i);
  }
  shadow.store(0, pattern.data(), pattern.size());
  shadow.flush_line_torn(0, 16);
  EXPECT_EQ(shadow.torn_flushes(), 1u);
  std::vector<std::uint8_t> durable(kCacheLineSize);
  shadow.load_durable(0, durable.data(), durable.size());
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(durable[i], pattern[i]) << "torn-in byte " << i;
  }
  for (std::size_t i = 16; i < kCacheLineSize; ++i) {
    EXPECT_EQ(durable[i], 0) << "byte " << i << " leaked past the tear";
  }
  EXPECT_TRUE(shadow.line_dirty(0));  // the rest is still unpersisted

  // While frozen, a full flush is dropped but the torn path still lands —
  // it models the write-back racing the power cut itself.
  shadow.freeze();
  EXPECT_TRUE(shadow.flush_line(1));  // dropped, unobservably "ok"
  shadow.flush_line_torn(1, 8);
  EXPECT_EQ(shadow.torn_flushes(), 2u);
}

TEST(ShadowPmemFaults, InjectorFailuresLeaveTheDurableImageUntouched) {
  pmem::ShadowPmem shadow(4 * kCacheLineSize);
  pmem::FaultConfig config;
  config.rate = 1.0;
  config.seed = 11;
  pmem::FaultInjector injector(config);
  shadow.set_fault_injector(&injector);
  const std::uint64_t value = 0xdeadbeefcafef00dULL;
  shadow.store_value(0, value);
  EXPECT_FALSE(shadow.flush_line(0));
  EXPECT_EQ(shadow.fault_drops(), 1u);
  EXPECT_EQ(shadow.durable_value<std::uint64_t>(0), 0u);
  shadow.set_fault_injector(nullptr);
  EXPECT_TRUE(shadow.flush_line(0));
  EXPECT_EQ(shadow.durable_value<std::uint64_t>(0), value);
}

// --------------------------------------------------------------------------
// Runtime: HealthReport, stats, and one-way degradation latches.
// --------------------------------------------------------------------------

TEST(RuntimeFaults, HealthReportAggregatesAndLatchesFireExactlyOnce) {
  runtime::RuntimeConfig config;
  config.region_name = unique_region("fault.rt");
  config.region_size = 1u << 20;
  config.policy = core::PolicyKind::kSoftCacheOffline;
  config.policy_config.cache_size = 4;
  config.flush = pmem::FlushKind::kCountOnly;
  config.async_flush = true;
  config.flush_queue_depth = 16;
  config.undo_logging = true;
  config.log_sync = runtime::LogSyncMode::kBatched;
  // A very noisy medium: transients on ~95% of attempts, one retry, so
  // quarantine (two consecutive rejections) and both degradation latches
  // are effectively certain within the first FASEs.
  config.fault.rate = 0.95;
  config.fault.max_retries = 1;
  config.fault.backoff_ns = 0;
  config.fault.backoff_cap_ns = 0;
  config.fault.degrade_after = 1;
  config.fault.seed = 42;
  runtime::Runtime rt(config);

  auto* cells = static_cast<std::uint64_t*>(rt.pm_alloc(64 * 64));
  auto run_fases = [&](int fases) {
    for (int f = 0; f < fases; ++f) {
      runtime::FaseScope fase(rt);
      for (int s = 0; s < 16; ++s) {
        rt.pstore(cells[(f * 11 + s * 5) % 512],
                  static_cast<std::uint64_t>(f * 100 + s));
      }
    }
  };
  run_fases(8);
  rt.thread_flush();

  const runtime::HealthReport health = rt.health();
  EXPECT_TRUE(health.faults_attached);
  EXPECT_GT(health.transient_faults, 0u);
  EXPECT_GT(health.flush_retries, 0u);
  EXPECT_FALSE(health.quarantined_lines.empty());
  EXPECT_EQ(health.flush_degraded_contexts, 1u);
  EXPECT_EQ(health.log_degraded_contexts, 1u);
  EXPECT_EQ(health.commit_suspended_contexts, 1u);
  EXPECT_TRUE(health.degraded());

  const runtime::RuntimeStats stats = rt.stats();
  EXPECT_EQ(stats.transient_faults, health.transient_faults);
  EXPECT_EQ(stats.flush_retries, health.flush_retries);
  EXPECT_EQ(stats.quarantined_lines, health.quarantined_lines.size());
  EXPECT_EQ(stats.flush_degrades, 1u);
  EXPECT_EQ(stats.log_degrades, 1u);

  // Latches are one-way and fire once: more (noisy) FASEs change the
  // counters but never the latch counts.
  run_fases(8);
  rt.thread_flush();
  const runtime::HealthReport again = rt.health();
  EXPECT_EQ(again.flush_degraded_contexts, 1u);
  EXPECT_EQ(again.log_degraded_contexts, 1u);
  EXPECT_EQ(again.commit_suspended_contexts, 1u);
  EXPECT_GE(again.transient_faults, health.transient_faults);

  // Commit suspension means the log still holds the undone FASEs.
  EXPECT_TRUE(rt.needs_recovery());
  rt.destroy_storage();
}

TEST(RuntimeFaults, IdleInjectorLeavesBehaviorIdentical) {
  // attach=true with all-zero rates wires every hook in but never fires:
  // traffic accounting must be bit-identical to a fault-free run, proving
  // the hooks are behavior-neutral (the bench companion BM_PstoreFaseFaultIdle
  // bounds their cost).
  auto run = [&](bool attach) {
    runtime::RuntimeConfig config;
    config.region_name = unique_region("fault.idle");
    config.region_size = 1u << 20;
    config.policy = core::PolicyKind::kSoftCacheOffline;
    config.policy_config.cache_size = 4;
    config.flush = pmem::FlushKind::kCountOnly;
    config.undo_logging = true;
    config.log_sync = runtime::LogSyncMode::kBatched;
    config.fault.attach = attach;
    runtime::Runtime rt(config);
    auto* cells = static_cast<std::uint64_t*>(rt.pm_alloc(64 * 64));
    for (int f = 0; f < 16; ++f) {
      runtime::FaseScope fase(rt);
      for (int s = 0; s < 16; ++s) {
        rt.pstore(cells[(f * 7 + s * 3) % 512],
                  static_cast<std::uint64_t>(f * 100 + s));
      }
    }
    rt.thread_flush();
    const runtime::RuntimeStats stats = rt.stats();
    const runtime::HealthReport health = rt.health();
    EXPECT_EQ(health.faults_attached, attach);
    EXPECT_FALSE(health.degraded());
    rt.destroy_storage();
    return stats;
  };
  const runtime::RuntimeStats off = run(false);
  const runtime::RuntimeStats on = run(true);
  EXPECT_EQ(off.stores, on.stores);
  EXPECT_EQ(off.flushes, on.flushes);
  EXPECT_EQ(off.fences, on.fences);
  EXPECT_EQ(off.log_records, on.log_records);
  EXPECT_EQ(off.log_syncs, on.log_syncs);
  EXPECT_EQ(on.transient_faults, 0u);
  EXPECT_EQ(on.quarantined_lines, 0u);
}

// --------------------------------------------------------------------------
// CrashRig: quarantine suspends commits; recovery preserves all-or-nothing.
// --------------------------------------------------------------------------

TEST(RigFaults, QuarantinedLineSuspendsCommitsAndRecoveryRollsBack) {
  CrashRigConfig config;
  config.mode = runtime::LogSyncMode::kStrict;
  config.data_lines = 8;
  // Shadow line 0 = the first data line of context 0 (the shadow works in
  // image-offset lines, so explicit bad lines are deterministic).
  config.fault.bad_lines = {0};
  config.fault.max_retries = 2;
  config.fault.backoff_ns = 0;
  config.fault.backoff_cap_ns = 0;
  CrashRig rig(config);

  rig.fase_begin();
  rig.pstore_u64(0, 0, 0xAAAA);  // cell 0 -> bad line 0
  rig.pstore_u64(0, 8, 0xBBBB);  // cell 8 -> healthy line 1
  EXPECT_FALSE(rig.fase_end()) << "a FASE with a lost line must not commit";
  EXPECT_TRUE(rig.commit_suspended());
  EXPECT_GE(rig.fault_stats().quarantined_count(), 1u);
  EXPECT_GT(rig.fault_stats().transients(), 0u);

  // Suspension is sticky: a later FASE touching only healthy lines still
  // refuses to commit — moving the commit point past the quarantined data
  // would break all-or-nothing for the first FASE.
  rig.fase_begin();
  rig.pstore_u64(0, 16, 0xCCCC);
  EXPECT_FALSE(rig.fase_end());

  // A restarted process rolls back to the last good commit: the initial
  // all-zero image (nothing ever committed), even though line 1's bytes
  // landed durably before the quarantine verdict.
  const std::vector<std::uint8_t> recovered = rig.recovered_data();
  const std::vector<std::uint8_t> zeros(rig.data_bytes(), 0);
  EXPECT_EQ(recovered, zeros);
}

TEST(RigFaults, CleanMediumCommitsNormally) {
  // Control for the test above: same script, no faults — commits land.
  CrashRigConfig config;
  config.mode = runtime::LogSyncMode::kStrict;
  config.data_lines = 8;
  CrashRig rig(config);
  rig.fase_begin();
  rig.pstore_u64(0, 0, 0xAAAA);
  rig.pstore_u64(0, 8, 0xBBBB);
  EXPECT_TRUE(rig.fase_end());
  EXPECT_FALSE(rig.commit_suspended());
  const std::vector<std::uint8_t> recovered = rig.recovered_data();
  std::uint64_t cell0 = 0;
  std::uint64_t cell8 = 0;
  std::memcpy(&cell0, recovered.data(), sizeof cell0);
  std::memcpy(&cell8, recovered.data() + 64, sizeof cell8);
  EXPECT_EQ(cell0, 0xAAAAu);
  EXPECT_EQ(cell8, 0xBBBBu);
}

// --------------------------------------------------------------------------
// Flush-drain watchdog (satellite): a wedged consumer is diagnosed, never
// aborted, and the helping drain still completes.
// --------------------------------------------------------------------------

/// Blocks its first flush until the channel's drain watchdog has fired,
/// modeling a worker wedged mid-write-back while holding the consumer lock.
struct WedgedSink final : core::FlushSink {
  bool flush_line(LineAddr) override {
    entered.store(true, std::memory_order_release);
    const core::FlushChannel* ch = channel.load(std::memory_order_acquire);
    while (ch == nullptr || ch->stall_warnings() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ch = channel.load(std::memory_order_acquire);
    }
    return true;
  }
  void drain() override {}
  std::atomic<bool> entered{false};
  std::atomic<const core::FlushChannel*> channel{nullptr};
};

TEST(FlushDrainWatchdog, DiagnosesStalledConsumerAndKeepsHelping) {
  // The timeout knob is read when the channel is opened.
  ::setenv("NVC_FLUSH_DRAIN_TIMEOUT_MS", "50", 1);
  auto owned = std::make_unique<WedgedSink>();
  WedgedSink* wedged = owned.get();
  auto channel =
      core::FlushWorker::shared().open_manual_channel(std::move(owned), 16);
  ::unsetenv("NVC_FLUSH_DRAIN_TIMEOUT_MS");
  wedged->channel.store(channel.get(), std::memory_order_release);

  for (LineAddr l = 1; l <= 4; ++l) ASSERT_TRUE(channel->try_push(l));
  // The "worker": grabs the consumer lock and wedges inside the sink until
  // the watchdog fires.
  std::thread worker([&] { channel->pump_one(); });
  while (!wedged->entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }

  // The producer's completion ticket cannot make progress (lock held) until
  // the watchdog unwedges the sink; it must diagnose, keep helping, and
  // finish the drain rather than aborting.
  channel->wait_drained();
  worker.join();
  EXPECT_GE(channel->stall_warnings(), 1u);
  EXPECT_EQ(channel->flushed(), channel->pushed());
  channel->close();
}

/// Accepts everything (the silent-path control below).
struct AcceptSink final : core::FlushSink {
  bool flush_line(LineAddr) override { return true; }
  void drain() override {}
};

TEST(FlushDrainWatchdog, DisabledByDefaultAndSilentWhenDraining) {
  auto channel = core::FlushWorker::shared().open_manual_channel(
      std::make_unique<AcceptSink>(), 16);
  for (LineAddr l = 1; l <= 8; ++l) ASSERT_TRUE(channel->try_push(l));
  channel->wait_drained();  // helping consumer drains everything itself
  EXPECT_EQ(channel->stall_warnings(), 0u);
  EXPECT_EQ(channel->flushed(), 8u);
  channel->close();
}

}  // namespace
}  // namespace nvc::testing
