// Unit tests for the hardened-recovery building blocks (DESIGN.md §14):
// the shared checksum module, commit-granularity data-line verification,
// the heap clean-shutdown seal, untrusted header/log inspection on hostile
// bytes, and the region-open diagnostics for truncated / empty / foreign /
// version-mismatched image files. The common thread: every routine here is
// fed arbitrary garbage somewhere below and must classify, throw, or return
// a status — never abort, crash, or read out of bounds.
#include <gtest/gtest.h>

#include <unistd.h>

#include <array>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/checksum.hpp"
#include "common/types.hpp"
#include "pmem/pmem_alloc.hpp"
#include "pmem/pmem_region.hpp"
#include "runtime/recovery.hpp"
#include "runtime/undo_log.hpp"

namespace nvc {
namespace {

std::uint64_t splitmix(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// --- checksum module -------------------------------------------------------

TEST(Checksum, Crc32cKnownAnswers) {
  // The standard CRC32C check value (RFC 3720 appendix / every iSCSI stack).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
  // 32 zero bytes, another published vector.
  const std::array<std::uint8_t, 32> zeros{};
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Checksum, Crc32cChains) {
  const char* msg = "adaptive software caching";
  const std::size_t len = std::strlen(msg);
  const std::uint32_t whole = crc32c(msg, len);
  for (std::size_t split = 0; split <= len; ++split) {
    const std::uint32_t part = crc32c(msg, split);
    EXPECT_EQ(crc32c(msg + split, len - split, part), whole) << split;
  }
}

TEST(Checksum, Fnv32KnownAnswers) {
  EXPECT_EQ(fnv1a32("", 0), Fnv32::kOffsetBasis);
  // FNV-1a reference vectors.
  EXPECT_EQ(fnv1a32("a", 1), 0xe40c292cu);
  EXPECT_EQ(fnv1a32("foobar", 6), 0xbf9cf968u);
}

TEST(Checksum, Fnv32MixLeIsHostEndianIndependent) {
  // mix_le must equal mixing the value's little-endian byte image, whatever
  // the host order — the durable log format is a byte stream.
  Fnv32 a;
  a.mix_le(std::uint64_t{0x1122334455667788ull});
  const std::uint8_t le[8] = {0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11};
  Fnv32 b;
  b.mix_bytes(le, sizeof(le));
  EXPECT_EQ(a.value(), b.value());
}

TEST(Checksum, UndoLogCheckWordIsTheSharedFnv) {
  // The undo log's record certification must be exactly the shared module's
  // FNV over token/len/gen/payload in that order — the durable PR 2 format.
  const std::uint64_t token = 0x00c0ffee00c0ffeeull;
  const std::uint32_t len = 24;
  const std::uint32_t gen = 7;
  std::uint8_t payload[24];
  std::uint64_t s = 42;
  for (auto& b : payload) b = static_cast<std::uint8_t>(splitmix(s));

  Fnv32 h;
  h.mix_le(token);
  h.mix_le(len);
  h.mix_le(gen);
  h.mix_bytes(payload, len);
  EXPECT_EQ(runtime::UndoLog::entry_check(token, len, gen, payload),
            h.value());
  // Any field perturbation changes the word.
  EXPECT_NE(runtime::UndoLog::entry_check(token + 1, len, gen, payload),
            h.value());
  EXPECT_NE(runtime::UndoLog::entry_check(token, len, gen + 1, payload),
            h.value());
}

// --- LineVerifyTable -------------------------------------------------------

TEST(LineVerifyTable, CommitDirtyVerifyLifecycle) {
  runtime::LineVerifyTable table(4 * kCacheLineSize);
  ASSERT_EQ(table.lines(), 4u);
  std::uint8_t line[kCacheLineSize];
  std::memset(line, 0x5a, sizeof(line));

  // Unknown lines are not checkable and verify() passes them (no false
  // positives before the first commit publishes a checksum).
  EXPECT_FALSE(table.checkable(0));
  EXPECT_TRUE(table.verify(0, line));

  table.note_commit(0, line);
  EXPECT_TRUE(table.checkable(0));
  EXPECT_TRUE(table.verify(0, line));

  // A corrupted byte fails verification...
  line[17] ^= 0x01;
  EXPECT_FALSE(table.verify(0, line));

  // ...but a line marked dirty (in-flight FASE store) is never checked.
  table.mark_dirty(0);
  EXPECT_FALSE(table.checkable(0));
  EXPECT_TRUE(table.verify(0, line));

  // The next commit republishes the new content and re-arms checking.
  table.note_commit(0, line);
  EXPECT_TRUE(table.checkable(0));
  EXPECT_TRUE(table.verify(0, line));
  line[17] ^= 0x01;
  EXPECT_FALSE(table.verify(0, line));
}

TEST(LineVerifyTable, OutOfRangeIndicesAreInert) {
  runtime::LineVerifyTable table(2 * kCacheLineSize);
  std::uint8_t line[kCacheLineSize] = {};
  table.mark_dirty(99);          // must not write anywhere
  table.note_commit(99, line);   // ditto
  EXPECT_FALSE(table.checkable(99));
  EXPECT_TRUE(table.verify(99, line));  // not checkable => passes
}

// --- heap clean-shutdown seal ---------------------------------------------

std::string unique_region(const char* tag) {
  return std::string("recovery_units_") + tag + "_" +
         std::to_string(::getpid());
}

TEST(HeapSeal, SealUnsealLifecycle) {
  const std::string name = unique_region("seal");
  pmem::PmemRegion::destroy(name);
  {
    pmem::PmemAllocator heap(pmem::PmemRegion::create(name, 256 * 1024),
                             /*format=*/true);
    EXPECT_FALSE(heap.sealed_clean());

    const std::uint64_t word = heap.seal();
    EXPECT_NE(word, 0u);
    EXPECT_TRUE(heap.sealed_clean());
    auto st = pmem::PmemAllocator::inspect(heap.region().base(),
                                           heap.region().size());
    EXPECT_TRUE(st.magic_ok);
    EXPECT_TRUE(st.version_ok);
    EXPECT_TRUE(st.sealed);
    EXPECT_TRUE(st.seal_valid);
    EXPECT_TRUE(st.bump_plausible);
    EXPECT_EQ(st.seal_gen, 1u);

    // Unseal: the image reads as dirty again.
    heap.unseal();
    EXPECT_FALSE(heap.sealed_clean());
    st = pmem::PmemAllocator::inspect(heap.region().base(),
                                      heap.region().size());
    EXPECT_FALSE(st.sealed);

    // Re-seal bumps the generation.
    heap.seal();
    st = pmem::PmemAllocator::inspect(heap.region().base(),
                                      heap.region().size());
    EXPECT_TRUE(st.seal_valid);
    EXPECT_EQ(st.seal_gen, 2u);
  }
  pmem::PmemRegion::destroy(name);
}

TEST(HeapSeal, StaleSealOverMutatedHeaderIsInvalid) {
  const std::string name = unique_region("stale_seal");
  pmem::PmemRegion::destroy(name);
  {
    pmem::PmemAllocator heap(pmem::PmemRegion::create(name, 256 * 1024),
                             /*format=*/true);
    heap.seal();
    ASSERT_TRUE(heap.sealed_clean());
    // Mutate a covered header byte (the root slot) *without* unsealing —
    // the checksum no longer matches, so the seal cannot fake cleanliness.
    auto* bytes = static_cast<std::uint8_t*>(heap.region().base());
    bytes[16] ^= 0xff;  // root field, byte 0
    EXPECT_FALSE(heap.sealed_clean());
    const auto st = pmem::PmemAllocator::inspect(heap.region().base(),
                                                 heap.region().size());
    EXPECT_TRUE(st.sealed);
    EXPECT_FALSE(st.seal_valid);
  }
  pmem::PmemRegion::destroy(name);
}

TEST(HeapSeal, InspectNeverCrashesOnGarbage) {
  std::vector<std::uint8_t> buf(4096);
  std::uint64_t s = 0xdecafull;
  for (int round = 0; round < 64; ++round) {
    for (auto& b : buf) b = static_cast<std::uint8_t>(splitmix(s));
    const auto st = pmem::PmemAllocator::inspect(buf.data(), buf.size());
    EXPECT_FALSE(st.magic_ok);  // 2^-64 false-positive budget, accepted
  }
  // Undersized and empty views must be handled too.
  for (const std::size_t size : {std::size_t{0}, std::size_t{1},
                                 std::size_t{16}, std::size_t{100}}) {
    const auto st = pmem::PmemAllocator::inspect(buf.data(), size);
    EXPECT_FALSE(st.magic_ok) << size;
  }
}

// --- region-open diagnostics ----------------------------------------------

TEST(RegionOpen, MissingFileThrowsDiagnostic) {
  EXPECT_THROW(pmem::PmemRegion::open("recovery_units_never_created"),
               std::runtime_error);
}

TEST(RegionOpen, EmptyFileThrowsDiagnostic) {
  const std::string name = unique_region("empty");
  pmem::PmemRegion::destroy(name);
  std::string path;
  {
    pmem::PmemRegion region = pmem::PmemRegion::create(name, 4096);
    path = region.path();
  }
  ASSERT_EQ(::truncate(path.c_str(), 0), 0);
  try {
    pmem::PmemRegion::open(name);
    FAIL() << "open() accepted a zero-length image";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("empty"), std::string::npos)
        << e.what();
  }
  pmem::PmemRegion::destroy(name);
}

TEST(RegionOpen, TruncatedHeapThrowsDiagnostic) {
  const std::string name = unique_region("truncated");
  pmem::PmemRegion::destroy(name);
  std::string path;
  {
    pmem::PmemAllocator heap(pmem::PmemRegion::create(name, 256 * 1024),
                             /*format=*/true);
    path = heap.region().path();
  }
  // The file survives but most of it is gone — smaller than a heap header.
  ASSERT_EQ(::truncate(path.c_str(), 128), 0);
  try {
    pmem::PmemAllocator heap(pmem::PmemRegion::open(name), /*format=*/false);
    FAIL() << "open() accepted a truncated heap image";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("too small"), std::string::npos)
        << e.what();
  }
  pmem::PmemRegion::destroy(name);
}

TEST(RegionOpen, VersionMismatchThrowsDiagnostic) {
  const std::string name = unique_region("version");
  pmem::PmemRegion::destroy(name);
  {
    pmem::PmemAllocator heap(pmem::PmemRegion::create(name, 256 * 1024),
                             /*format=*/true);
  }
  {
    pmem::PmemRegion region = pmem::PmemRegion::open(name);
    // Bump the version field (offset 8, after the 8-byte magic).
    const std::uint32_t alien = pmem::PmemAllocator::kVersion + 7;
    std::memcpy(static_cast<std::uint8_t*>(region.base()) + 8, &alien,
                sizeof(alien));
    const auto st =
        pmem::PmemAllocator::inspect(region.base(), region.size());
    EXPECT_TRUE(st.magic_ok);
    EXPECT_FALSE(st.version_ok);
    EXPECT_EQ(st.version, alien);
    try {
      pmem::PmemAllocator heap(std::move(region), /*format=*/false);
      FAIL() << "open() accepted a version-mismatched heap";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("version mismatch"),
                std::string::npos)
          << e.what();
    }
  }
  pmem::PmemRegion::destroy(name);
}

TEST(RegionOpen, ForeignBytesThrowDiagnostic) {
  const std::string name = unique_region("foreign");
  pmem::PmemRegion::destroy(name);
  {
    pmem::PmemRegion region = pmem::PmemRegion::create(name, 256 * 1024);
    std::uint64_t s = 3;
    auto* bytes = static_cast<std::uint8_t*>(region.base());
    for (std::size_t i = 0; i < 4096; ++i) {
      bytes[i] = static_cast<std::uint8_t>(splitmix(s));
    }
  }
  try {
    pmem::PmemAllocator heap(pmem::PmemRegion::open(name), /*format=*/false);
    FAIL() << "open() accepted foreign bytes as a heap";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("not a nvcache heap"),
              std::string::npos)
        << e.what();
  }
  pmem::PmemRegion::destroy(name);
}

// --- untrusted undo-log inspection ----------------------------------------

using runtime::UndoLog;

TEST(UndoLogInspect, HostileBytesNeverCrash) {
  alignas(64) std::uint8_t seg[4096];
  std::uint64_t s = 0xfacefeedull;
  for (int round = 0; round < 128; ++round) {
    for (auto& b : seg) b = static_cast<std::uint8_t>(splitmix(s));
    const UndoLog::Inspection ins = UndoLog::inspect(seg, sizeof(seg));
    // Random bytes essentially never spell the magic; whatever happens, the
    // reported extents must stay inside the segment.
    EXPECT_LE(ins.certified_extent, sizeof(seg));
    for (const std::uint64_t off : ins.offsets) EXPECT_LT(off, sizeof(seg));
    if (!ins.formatted) EXPECT_TRUE(ins.offsets.empty());
  }
  // Undersized views: inspect must refuse rather than read out of bounds.
  EXPECT_FALSE(UndoLog::inspect(seg, 0).formatted);
  EXPECT_FALSE(UndoLog::inspect(seg, 8).formatted);
  EXPECT_FALSE(UndoLog::inspect(nullptr, 4096).formatted);
}

TEST(UndoLogInspect, CertifiesHandcraftedChainAndStopsAtCorruption) {
  alignas(64) std::uint8_t seg[1024];
  std::memset(seg, 0, sizeof(seg));

  // Empty, committed log of generation 7.
  UndoLog::LogHeader header{};
  header.magic = UndoLog::kMagic;
  header.state = UndoLog::pack_state(7, UndoLog::kHeaderSize);
  std::memcpy(seg, &header, sizeof(header));
  UndoLog::Inspection ins = UndoLog::inspect(seg, sizeof(seg));
  EXPECT_TRUE(ins.formatted);
  EXPECT_TRUE(ins.state_plausible);
  EXPECT_TRUE(ins.tail_covered);
  EXPECT_EQ(ins.gen, 7u);
  EXPECT_EQ(ins.certified_extent, UndoLog::kHeaderSize);
  EXPECT_TRUE(ins.offsets.empty());

  // Append one certified 8-byte record and publish a covering tail.
  const std::uint64_t token = 0x140;
  std::uint8_t payload[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  UndoLog::EntryHead entry{};
  entry.addr_token = token;
  entry.len = sizeof(payload);
  entry.check = UndoLog::entry_check(token, entry.len, 7, payload);
  std::memcpy(seg + UndoLog::kHeaderSize, &entry, sizeof(entry));
  std::memcpy(seg + UndoLog::kHeaderSize + sizeof(entry), payload,
              sizeof(payload));
  const std::uint64_t tail =
      UndoLog::kHeaderSize + sizeof(entry) + sizeof(payload);
  header.state = UndoLog::pack_state(7, tail);
  std::memcpy(seg, &header, sizeof(header));

  ins = UndoLog::inspect(seg, sizeof(seg));
  ASSERT_EQ(ins.offsets.size(), 1u);
  EXPECT_EQ(ins.offsets[0], UndoLog::kHeaderSize);
  EXPECT_EQ(ins.certified_extent, tail);
  EXPECT_TRUE(ins.tail_covered);

  // A flipped payload bit breaks certification: the chain stops short of
  // the durable tail, which is exactly the "synced bytes corrupted"
  // signature the salvage pipeline reports as unrecoverable.
  seg[UndoLog::kHeaderSize + sizeof(entry) + 3] ^= 0x10;
  ins = UndoLog::inspect(seg, sizeof(seg));
  EXPECT_TRUE(ins.offsets.empty());
  EXPECT_EQ(ins.certified_extent, UndoLog::kHeaderSize);
  EXPECT_FALSE(ins.tail_covered);

  // A tail pointing outside the segment is implausible on its face.
  header.state = UndoLog::pack_state(7, sizeof(seg) + 64);
  std::memcpy(seg, &header, sizeof(header));
  ins = UndoLog::inspect(seg, sizeof(seg));
  EXPECT_TRUE(ins.formatted);
  EXPECT_FALSE(ins.state_plausible);
  EXPECT_FALSE(ins.tail_covered);
}

}  // namespace
}  // namespace nvc
