// End-to-end integration tests: workloads running live through the FASE
// runtime with real (or counting) flush backends, the full analysis pipeline
// from trace to selected cache size, and cross-substrate consistency.
#include <gtest/gtest.h>

#include <unistd.h>

#include <set>
#include <string>

#include "core/sampler.hpp"
#include "mdb/mtest.hpp"
#include "pmem/pmem_region.hpp"
#include "runtime/runtime.hpp"
#include "workloads/replay.hpp"
#include "workloads/workload.hpp"

namespace nvc {
namespace {

std::string unique_name(const char* base) {
  static int counter = 0;
  return std::string(base) + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter++);
}

/// Run a workload live through the runtime under a policy; returns stats.
runtime::RuntimeStats run_live(const std::string& workload,
                               core::PolicyKind policy, std::size_t threads,
                               std::size_t cache_size = 8) {
  runtime::RuntimeConfig config;
  config.region_name = unique_name("itest");
  config.region_size = 256u << 20;
  config.policy = policy;
  config.policy_config.cache_size = cache_size;
  config.policy_config.sampler.burst_length = 1u << 16;
  config.flush = pmem::FlushKind::kCountOnly;

  runtime::Runtime rt(config);
  workloads::RuntimeApi api(rt);
  workloads::WorkloadParams params;
  params.threads = threads;
  auto w = workloads::make_workload(workload);
  w->run(api, params);
  const runtime::RuntimeStats stats = rt.stats();
  rt.destroy_storage();
  return stats;
}

TEST(LiveIntegration, OceanRunsUnderEveryPolicy) {
  for (const auto policy :
       {core::PolicyKind::kEager, core::PolicyKind::kLazy,
        core::PolicyKind::kAtlas, core::PolicyKind::kSoftCache,
        core::PolicyKind::kSoftCacheOffline, core::PolicyKind::kBest}) {
    const auto stats = run_live("ocean", policy, 1);
    EXPECT_GT(stats.stores, 100000u) << core::to_string(policy);
    if (policy == core::PolicyKind::kBest) {
      EXPECT_EQ(stats.flushes, 0u);
    } else if (policy == core::PolicyKind::kEager) {
      EXPECT_EQ(stats.flushes, stats.stores);
    } else {
      EXPECT_GT(stats.flushes, 0u);
      EXPECT_LT(stats.flushes, stats.stores);
    }
  }
}

TEST(LiveIntegration, FlushRatioOrderingAcrossPolicies) {
  const auto er = run_live("hash", core::PolicyKind::kEager, 1);
  const auto la = run_live("hash", core::PolicyKind::kLazy, 1);
  const auto at = run_live("hash", core::PolicyKind::kAtlas, 1);
  const auto sc = run_live("hash", core::PolicyKind::kSoftCache, 1);
  EXPECT_DOUBLE_EQ(er.flush_ratio(), 1.0);
  EXPECT_LE(la.flush_ratio(), sc.flush_ratio() + 1e-9);
  EXPECT_LE(sc.flush_ratio(), at.flush_ratio() * 1.1);
  EXPECT_LT(at.flush_ratio(), 1.0);
}

TEST(LiveIntegration, MultithreadedWaterSpatialIsConsistent) {
  const auto one = run_live("water-spatial", core::PolicyKind::kAtlas, 1);
  const auto four = run_live("water-spatial", core::PolicyKind::kAtlas, 4);
  EXPECT_EQ(four.threads, 4u);
  // Strong scaling: total stores roughly constant, FASEs grow.
  EXPECT_NEAR(static_cast<double>(four.stores) /
                  static_cast<double>(one.stores),
              1.0, 0.05);
  EXPECT_GT(four.fases, one.fases);
}

TEST(LiveIntegration, OnlineScSelectsSizesPerThread) {
  runtime::RuntimeConfig config;
  config.region_name = unique_name("itest-sc");
  config.region_size = 256u << 20;
  config.policy = core::PolicyKind::kSoftCache;
  config.policy_config.cache_size = 8;
  config.policy_config.sampler.burst_length = 1u << 14;
  config.flush = pmem::FlushKind::kCountOnly;

  runtime::Runtime rt(config);
  workloads::RuntimeApi api(rt);
  workloads::WorkloadParams params;
  params.threads = 2;
  workloads::make_workload("water-nsquared")->run(api, params);
  const auto stats = rt.stats();
  ASSERT_EQ(stats.cache_sizes.size(), 2u);
  for (const std::size_t size : stats.cache_sizes) {
    EXPECT_GE(size, 1u);
    EXPECT_LE(size, 50u);
    EXPECT_NE(size, 0u);
  }
  rt.destroy_storage();
}

TEST(LiveIntegration, MdbRunsLiveWithUndoLogging) {
  runtime::RuntimeConfig config;
  config.region_name = unique_name("itest-mdb");
  config.region_size = 256u << 20;
  config.policy = core::PolicyKind::kSoftCacheOffline;
  config.policy_config.cache_size = 20;
  config.flush = pmem::FlushKind::kCountOnly;

  runtime::Runtime rt(config);
  workloads::RuntimeApi api(rt);
  workloads::WorkloadParams params;
  params.threads = 2;
  mdb::MtestConfig mconfig;
  mconfig.inserts_quick = 4000;
  mdb::make_mdb_workload(mconfig)->run(api, params);
  const auto stats = rt.stats();
  EXPECT_GT(stats.stores, 10000u);
  EXPECT_GT(stats.fases, 100u);
  EXPECT_LT(stats.flush_ratio(), 0.7);  // write combining must help COW
  rt.destroy_storage();
}

// --- trace -> analysis -> size pipeline ---------------------------------------------------

TEST(Pipeline, TraceModeAndLiveModeAgreeOnFlushCounts) {
  // The same workload, same seed, run (a) live through the runtime and
  // (b) recorded and replayed, must produce identical flush counts for a
  // deterministic single-thread policy.
  const std::string workload = "persistent-array";
  const auto live = run_live(workload, core::PolicyKind::kAtlas, 1);

  workloads::TraceApi api(1, 64u << 20);
  workloads::WorkloadParams params;
  workloads::make_workload(workload)->run(api, params);
  core::PolicyConfig config;
  const auto replayed = workloads::replay_flush_count_all(
      api, core::PolicyKind::kAtlas, config);

  EXPECT_EQ(live.stores, replayed.stores);
  // Flush counts may differ slightly: the live heap is 16-byte aligned, the
  // trace arena 64-byte aligned, so the array spans 25 vs 26 lines (the
  // paper notes exactly this split for persistent-array) and the
  // direct-mapped conflict pattern shifts a little.
  const double live_ratio = live.flush_ratio();
  const double replay_ratio = replayed.flush_ratio();
  EXPECT_NEAR(live_ratio, replay_ratio, 0.02);
}

TEST(Pipeline, OfflineKneeImprovesOverDefaultSize) {
  // Full loop: record water-nsquared, pick the knee offline, verify the
  // chosen size flushes (much) less than the default size 8.
  workloads::TraceApi api(1, 64u << 20);
  workloads::WorkloadParams params;
  workloads::make_workload("water-nsquared")->run(api, params);

  std::vector<LineAddr> stores;
  std::vector<std::size_t> boundaries;
  api.trace(0).store_trace(&stores, &boundaries);
  const auto knee = core::BurstSampler::analyze_offline(
      stores, boundaries, core::KneeConfig{}, nullptr);
  EXPECT_GT(knee.chosen_size, 8u);  // the working set is ~24 lines

  core::PolicyConfig config;
  config.cache_size = 8;
  const auto at_default = workloads::replay_flush_count_all(
      api, core::PolicyKind::kSoftCacheOffline, config);
  config.cache_size = knee.chosen_size;
  const auto at_knee = workloads::replay_flush_count_all(
      api, core::PolicyKind::kSoftCacheOffline, config);
  EXPECT_LT(at_knee.flushes, at_default.flushes / 2);
}

TEST(Pipeline, PerWorkloadKneesDiffer) {
  // Paper Section IV-G: "there is no one-fits-for-all solution" — the
  // selected sizes must differ across workloads.
  std::set<std::size_t> sizes;
  for (const char* name : {"ocean", "water-nsquared", "fmm"}) {
    workloads::TraceApi api(1, 64u << 20);
    workloads::WorkloadParams params;
    workloads::make_workload(name)->run(api, params);
    std::vector<LineAddr> stores;
    std::vector<std::size_t> boundaries;
    api.trace(0).store_trace(&stores, &boundaries);
    const auto knee = core::BurstSampler::analyze_offline(
        stores, boundaries, core::KneeConfig{}, nullptr);
    sizes.insert(knee.chosen_size);
  }
  EXPECT_GE(sizes.size(), 2u);
}

TEST(Pipeline, RealFlushBackendWorksEndToEnd) {
  // Smoke test with the real flush instructions on the mmap'ed region.
  runtime::RuntimeConfig config;
  config.region_name = unique_name("itest-real");
  config.region_size = 16u << 20;
  config.policy = core::PolicyKind::kSoftCacheOffline;
  config.policy_config.cache_size = 23;
  config.flush = pmem::default_flush_kind();

  runtime::Runtime rt(config);
  workloads::RuntimeApi api(rt);
  workloads::WorkloadParams params;
  workloads::make_workload("persistent-array")->run(api, params);
  EXPECT_GT(rt.stats().flushes, 0u);
  rt.destroy_storage();
}

}  // namespace
}  // namespace nvc
