// Unit tests for the hardware-cache simulator and the cycle cost model.
#include <gtest/gtest.h>

#include "hwsim/cache_sim.hpp"
#include "hwsim/contention.hpp"
#include "hwsim/cost_model.hpp"

namespace nvc::hwsim {
namespace {

CacheConfig tiny_cache() {
  CacheConfig c;
  c.size_bytes = 4 * 64;  // 4 lines
  c.associativity = 2;    // 2 sets x 2 ways
  return c;
}

TEST(CacheSim, HitAfterFill) {
  CacheSim cache(tiny_cache());
  EXPECT_FALSE(cache.access(1, false));  // cold miss
  EXPECT_TRUE(cache.access(1, false));   // hit
  EXPECT_EQ(cache.stats().accesses, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheSim, LruEvictionWithinSet) {
  CacheSim cache(tiny_cache());
  // Lines 0, 2, 4 all map to set 0 (2 sets). Third one evicts the LRU (0).
  cache.access(0, false);
  cache.access(2, false);
  cache.access(4, false);
  EXPECT_FALSE(cache.contains(0));
  EXPECT_TRUE(cache.contains(2));
  EXPECT_TRUE(cache.contains(4));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheSim, TouchRefreshesLru) {
  CacheSim cache(tiny_cache());
  cache.access(0, false);
  cache.access(2, false);
  cache.access(0, false);  // 0 becomes MRU
  cache.access(4, false);  // evicts 2, not 0
  EXPECT_TRUE(cache.contains(0));
  EXPECT_FALSE(cache.contains(2));
}

TEST(CacheSim, DirtyEvictionCountsWriteback) {
  CacheSim cache(tiny_cache());
  cache.access(0, true);   // dirty
  cache.access(2, false);
  cache.access(4, false);  // evicts dirty 0
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(CacheSim, CleanEvictionNoWriteback) {
  CacheSim cache(tiny_cache());
  cache.access(0, false);
  cache.access(2, false);
  cache.access(4, false);
  EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(CacheSim, ClflushInvalidatesAndWritesBack) {
  CacheSim cache(tiny_cache());
  cache.access(0, true);
  EXPECT_TRUE(cache.clflush(0));
  EXPECT_FALSE(cache.contains(0));
  EXPECT_EQ(cache.stats().flush_writebacks, 1u);
  // Flushing an absent line is a no-op returning false.
  EXPECT_FALSE(cache.clflush(0));
  // The indirect cost: the next access to 0 is a miss again.
  EXPECT_FALSE(cache.access(0, false));
}

TEST(CacheSim, ClwbWritesBackButKeepsLine) {
  CacheSim cache(tiny_cache());
  cache.access(0, true);
  EXPECT_TRUE(cache.clwb(0));
  EXPECT_TRUE(cache.contains(0));
  EXPECT_EQ(cache.stats().flush_writebacks, 1u);
  EXPECT_TRUE(cache.access(0, false));  // still a hit
  // Now clean: a second clwb writes back nothing.
  cache.clwb(0);
  EXPECT_EQ(cache.stats().flush_writebacks, 1u);
}

TEST(CacheSim, ContentionInjectionRaisesMissRatio) {
  CacheConfig base;
  base.size_bytes = 32 * 1024;
  base.associativity = 8;
  CacheConfig noisy = base;
  noisy.contention_prob = 0.3;

  auto run = [](const CacheConfig& cfg) {
    CacheSim cache(cfg);
    // Loop over a footprint that fits comfortably: without noise it should
    // hit nearly always after warmup.
    for (int rep = 0; rep < 50; ++rep) {
      for (LineAddr line = 0; line < 64; ++line) cache.access(line, true);
    }
    return cache.stats().miss_ratio();
  };

  EXPECT_LT(run(base), 0.05);
  EXPECT_GT(run(noisy), run(base) + 0.05);
}

TEST(CacheSim, ContentionLevelsMonotoneInThreads) {
  double prev = -1.0;
  for (std::size_t t : {1u, 2u, 4u, 8u, 16u, 32u}) {
    const double p = contention_for_threads(t);
    EXPECT_GE(p, prev);
    prev = p;
  }
  EXPECT_EQ(contention_for_threads(1), 0.0);
}

TEST(CacheSim, ClearDropsEverythingSilently) {
  CacheSim cache(tiny_cache());
  cache.access(0, true);
  cache.access(1, true);
  cache.clear();
  EXPECT_FALSE(cache.contains(0));
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.stats().writebacks, 0u);  // clear is not a writeback
}

TEST(CacheSim, ResetStatsKeepsContents) {
  CacheSim cache(tiny_cache());
  cache.access(0, true);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_TRUE(cache.contains(0));
}

TEST(CoreSim, DefaultL2IsEightTimesL1) {
  CacheConfig l1;
  l1.size_bytes = 32 * 1024;
  const CacheConfig l2 = CoreSim::default_l2(l1);
  EXPECT_EQ(l2.size_bytes, 8u * 32 * 1024);
  EXPECT_EQ(l2.associativity, l1.associativity);
}

// --- CoreSim ---------------------------------------------------------------------

TEST(CoreSim, ExecuteChargesCpi) {
  CostParams params;
  params.cpi = 2.0;
  CoreSim core(params);
  core.execute(100);
  EXPECT_DOUBLE_EQ(core.cycles(), 200.0);
  EXPECT_EQ(core.counters().instructions, 100u);
}

TEST(CoreSim, MissPenaltyChargedSingleLevel) {
  CostParams params;
  params.cpi = 1.0;
  params.l1_miss_penalty = 30;
  params.enable_l2 = false;
  CoreSim core(params);
  core.memory_access(1, true);  // cold miss: 1 + 30
  EXPECT_DOUBLE_EQ(core.cycles(), 31.0);
  core.memory_access(1, true);  // hit: 1
  EXPECT_DOUBLE_EQ(core.cycles(), 32.0);
}

TEST(CoreSim, TwoLevelHierarchyPenalties) {
  CostParams params;
  params.cpi = 1.0;
  params.l2_hit_penalty = 12;
  params.memory_penalty = 60;
  CacheConfig tiny;
  tiny.size_bytes = 2 * 64;  // 2-line L1 (L2 = 16 lines)
  tiny.associativity = 2;
  CoreSim core(params, tiny);
  core.memory_access(1, true);  // cold: 1 + 12 + 60
  EXPECT_DOUBLE_EQ(core.cycles(), 73.0);
  core.memory_access(1, true);  // L1 hit: 1
  EXPECT_DOUBLE_EQ(core.cycles(), 74.0);
  // Evict line 1 from the tiny L1 (lines 3, 5 share its set) but not L2.
  core.memory_access(3, false);
  core.memory_access(5, false);
  const double before = core.cycles();
  core.memory_access(1, false);  // L1 miss, L2 hit: 1 + 12
  EXPECT_DOUBLE_EQ(core.cycles(), before + 13.0);
  EXPECT_EQ(core.l2_stats().hits, 1u);
}

TEST(CoreSim, FlushInvalidatesBothLevels) {
  CostParams params;
  CoreSim core(params);
  core.memory_access(1, true);
  core.flush(1);
  EXPECT_FALSE(core.l1().contains(1));
  EXPECT_FALSE(core.l2().contains(1));
  // clwb semantics keeps both levels resident.
  CostParams keep;
  keep.invalidate_on_flush = false;
  CoreSim core2(keep);
  core2.memory_access(1, true);
  core2.flush(1);
  EXPECT_TRUE(core2.l1().contains(1));
  EXPECT_TRUE(core2.l2().contains(1));
}

TEST(CoreSim, AsyncFlushOverlapsUntilBacklogFills) {
  CostParams params;
  params.cpi = 1.0;
  params.flush_issue = 10;
  params.nvram_write = 100;
  params.max_backlog = 2;
  CoreSim core(params);
  // First flush: issue cost only (engine works in background).
  core.flush(1);
  EXPECT_DOUBLE_EQ(core.cycles(), 10.0);
  EXPECT_EQ(core.counters().stall_cycles, 0u);
  // Saturate: flushing much faster than the engine drains must stall.
  for (LineAddr l = 2; l < 50; ++l) core.flush(l);
  EXPECT_GT(core.counters().stall_cycles, 0u);
}

TEST(CoreSim, DrainWaitsForEngine) {
  CostParams params;
  params.flush_issue = 10;
  params.nvram_write = 1000;
  params.fence = 5;
  CoreSim core(params);
  core.flush(1);
  const double before = core.cycles();
  core.drain();
  // Drain must wait for the outstanding NVRAM write (~1000 cycles).
  EXPECT_GT(core.cycles(), before + 900);
  EXPECT_EQ(core.counters().fences, 1u);
}

TEST(CoreSim, DrainWithIdleEngineIsCheap) {
  CostParams params;
  params.fence = 5;
  CoreSim core(params);
  core.drain();
  EXPECT_DOUBLE_EQ(core.cycles(), 5.0);
}

TEST(CoreSim, ComputeBetweenFlushesHidesNvramLatency) {
  // The eager benefit (paper Section I): flushes spread between computation
  // cost only their issue overhead, while the same flushes back-to-back
  // stall on the write engine.
  CostParams params;
  params.flush_issue = 10;
  params.nvram_write = 500;
  params.max_backlog = 4;

  CoreSim spread(params);
  for (int i = 0; i < 20; ++i) {
    spread.execute(1000);  // plenty of time for the engine to drain
    spread.flush(static_cast<LineAddr>(i));
  }
  spread.drain();

  CoreSim burst(params);
  burst.execute(20 * 1000);
  for (int i = 0; i < 20; ++i) burst.flush(static_cast<LineAddr>(i));
  burst.drain();

  EXPECT_LT(spread.cycles(), burst.cycles());
}

}  // namespace
}  // namespace nvc::hwsim
