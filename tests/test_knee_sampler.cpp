// Tests for knee-based cache-size selection (paper Section III-C) and the
// online bursty sampler.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/knee.hpp"
#include "core/sampler.hpp"

namespace nvc::core {
namespace {

Mrc step_mrc(std::size_t max_size,
             std::initializer_list<std::pair<std::size_t, double>> levels) {
  // levels: (up_to_size, miss_ratio) steps, e.g. {{4,0.9},{22,0.4},{50,0.1}}.
  std::vector<double> mr(max_size, 1.0);
  std::size_t c = 1;
  for (const auto& [upto, value] : levels) {
    for (; c <= upto && c <= max_size; ++c) mr[c - 1] = value;
  }
  for (; c <= max_size; ++c) mr[c - 1] = mr[c - 2];
  return Mrc(std::move(mr));
}

TEST(KneeFinder, PicksLargestOfTopKnees) {
  // Two clear knees at sizes 5 and 23: the paper's rule takes the largest.
  const Mrc mrc = step_mrc(50, {{4, 0.9}, {22, 0.5}, {50, 0.1}});
  const KneeResult r = KneeFinder().select(mrc);
  EXPECT_TRUE(r.had_knees);
  EXPECT_EQ(r.chosen_size, 23u);
}

TEST(KneeFinder, SingleKnee) {
  const Mrc mrc = step_mrc(50, {{9, 0.8}, {50, 0.05}});
  const KneeResult r = KneeFinder().select(mrc);
  EXPECT_TRUE(r.had_knees);
  EXPECT_EQ(r.chosen_size, 10u);
}

TEST(KneeFinder, FlatCurveFallsBackToMaxSize) {
  const Mrc mrc = step_mrc(50, {{50, 0.4}});
  const KneeResult r = KneeFinder().select(mrc);
  EXPECT_FALSE(r.had_knees);
  EXPECT_EQ(r.chosen_size, 50u);
}

TEST(KneeFinder, IgnoresNoiseBelowThreshold) {
  // A slow, even decline with no drop above min_drop is "no knee".
  std::vector<double> mr(50);
  for (std::size_t c = 0; c < 50; ++c) {
    mr[c] = 0.5 - static_cast<double>(c) * 1e-5;
  }
  KneeConfig config;
  config.min_drop = 1e-3;
  const KneeResult r = KneeFinder(config).select(Mrc(std::move(mr)));
  EXPECT_FALSE(r.had_knees);
  EXPECT_EQ(r.chosen_size, 50u);
}

TEST(KneeFinder, RespectsMaxSizeBound) {
  // A huge drop beyond max_size must not be chosen.
  const Mrc mrc = step_mrc(100, {{7, 0.9}, {79, 0.6}, {100, 0.0}});
  KneeConfig config;
  config.max_size = 50;
  const KneeResult r = KneeFinder(config).select(mrc);
  EXPECT_EQ(r.chosen_size, 8u);  // only the size-8 knee is inside the bound
}

TEST(KneeFinder, CandidatesRankedByDrop) {
  const Mrc mrc = step_mrc(50, {{4, 0.9}, {22, 0.6}, {50, 0.0}});
  const KneeResult r = KneeFinder().select(mrc);
  ASSERT_GE(r.candidates.size(), 2u);
  EXPECT_EQ(r.candidates[0], 23u);  // drop 0.6 at size 23
  EXPECT_EQ(r.candidates[1], 5u);   // drop 0.3 at size 5
}

TEST(KneeFinder, RequiresCoveringMrc) {
  KneeConfig config;
  config.max_size = 50;
  Mrc small(std::vector<double>(10, 0.5));
  EXPECT_DEATH((void)KneeFinder(config).select(small), "cover");
}

// --- BurstSampler -------------------------------------------------------------------

SamplerConfig quick_sampler(std::uint64_t burst) {
  SamplerConfig config;
  config.burst_length = burst;
  config.knee.max_size = 50;
  return config;
}

TEST(BurstSampler, SelectsAfterExactlyOneBurst) {
  BurstSampler sampler(quick_sampler(1000));
  std::optional<std::size_t> selected;
  for (int i = 0; i < 999; ++i) {
    selected = sampler.on_store(static_cast<LineAddr>(i % 12));
    EXPECT_FALSE(selected.has_value());
    EXPECT_TRUE(sampler.sampling());
  }
  selected = sampler.on_store(0);
  ASSERT_TRUE(selected.has_value());
  EXPECT_FALSE(sampler.sampling());  // hibernating forever by default
  EXPECT_EQ(sampler.bursts_completed(), 1u);
}

TEST(BurstSampler, WorkingSetTraceSelectsWorkingSetSize) {
  // Cyclic writes over 12 lines: the knee is at 12.
  BurstSampler sampler(quick_sampler(1200));
  std::optional<std::size_t> selected;
  for (int i = 0; i < 1200; ++i) {
    const auto s = sampler.on_store(static_cast<LineAddr>(i % 12));
    if (s) selected = s;
  }
  ASSERT_TRUE(selected.has_value());
  EXPECT_NEAR(static_cast<double>(*selected), 12.0, 2.0);
}

TEST(BurstSampler, InfiniteHibernationNeverResamples) {
  BurstSampler sampler(quick_sampler(100));
  int selections = 0;
  for (int i = 0; i < 5000; ++i) {
    if (sampler.on_store(static_cast<LineAddr>(i % 5))) ++selections;
  }
  EXPECT_EQ(selections, 1);
}

TEST(BurstSampler, PeriodicResamplingExtension) {
  SamplerConfig config = quick_sampler(100);
  config.hibernation_length = 400;  // re-sample every 400 writes
  BurstSampler sampler(config);
  int selections = 0;
  for (int i = 0; i < 2100; ++i) {
    if (sampler.on_store(static_cast<LineAddr>(i % 7))) ++selections;
  }
  // bursts at writes 100, 600, 1100, 1600, 2100.
  EXPECT_GE(selections, 4);
}

TEST(BurstSampler, FaseBoundariesInvalidateCrossFaseReuse) {
  // "ab|ab|ab..." must select nothing small-and-perfect: with boundaries
  // after every pair, every write is compulsory, the curve is flat, and the
  // sampler falls back to max size (paper Section III-B adaptation).
  SamplerConfig config = quick_sampler(400);
  BurstSampler with_fases(config);
  std::optional<std::size_t> sel_fases;
  for (int i = 0; i < 400; ++i) {
    const auto s = with_fases.on_store(static_cast<LineAddr>(i % 2));
    if (s) sel_fases = s;
    if (i % 2 == 1) with_fases.on_fase_boundary();
  }
  ASSERT_TRUE(sel_fases.has_value());
  EXPECT_FALSE(with_fases.last_selection().had_knees);
  EXPECT_EQ(*sel_fases, config.knee.max_size);

  // Without boundaries the same stream has a perfect knee at 2.
  BurstSampler without(config);
  std::optional<std::size_t> sel_plain;
  for (int i = 0; i < 400; ++i) {
    const auto s = without.on_store(static_cast<LineAddr>(i % 2));
    if (s) sel_plain = s;
  }
  ASSERT_TRUE(sel_plain.has_value());
  EXPECT_TRUE(without.last_selection().had_knees);
  EXPECT_LE(*sel_plain, 3u);
}

TEST(BurstSampler, SkipFasesIgnoresInitializationPhase) {
  // Phase 1 (init FASE): streaming writes, working set 1. Phase 2: loop
  // over 12 lines. Without skipping, the burst samples phase 1 and the
  // selection is wrong; with skip_fases=1 it captures phase 2's knee.
  auto run = [](std::uint32_t skip) {
    SamplerConfig config = quick_sampler(600);
    config.skip_fases = skip;
    BurstSampler sampler(config);
    std::optional<std::size_t> selected;
    for (int i = 0; i < 700; ++i) {  // init: distinct addresses
      if (auto s = sampler.on_store(1000 + i)) selected = s;
    }
    sampler.on_fase_boundary();
    for (int i = 0; i < 2000; ++i) {  // steady state: 12-line loop
      if (auto s = sampler.on_store(static_cast<LineAddr>(i % 12))) {
        selected = s;
      }
    }
    return selected;
  };
  const auto unskipped = run(0);
  const auto skipped = run(1);
  ASSERT_TRUE(unskipped.has_value());
  ASSERT_TRUE(skipped.has_value());
  // Streaming init has no knees => falls back to the max size.
  EXPECT_EQ(*unskipped, KneeConfig{}.max_size);
  EXPECT_NEAR(static_cast<double>(*skipped), 12.0, 2.0);
}

TEST(BurstSampler, SkipFasesGivesUpOnSingleFasePrograms) {
  // One giant FASE: skipping must time out after one burst worth of writes
  // and still produce a selection.
  SamplerConfig config = quick_sampler(500);
  config.skip_fases = 1;
  BurstSampler sampler(config);
  std::optional<std::size_t> selected;
  for (int i = 0; i < 4 * 500 + 600; ++i) {
    if (auto s = sampler.on_store(static_cast<LineAddr>(i % 9))) {
      selected = s;
    }
  }
  ASSERT_TRUE(selected.has_value());
  EXPECT_NEAR(static_cast<double>(*selected), 9.0, 2.0);
}

TEST(BurstSampler, OfflineAnalysisMatchesOnlineOnStationaryTrace) {
  std::vector<LineAddr> trace;
  std::vector<std::size_t> boundaries;
  Rng rng(17);
  for (int f = 0; f < 50; ++f) {
    for (int rep = 0; rep < 4; ++rep) {
      for (LineAddr a = 0; a < 9; ++a) trace.push_back(a);
    }
    boundaries.push_back(trace.size());
  }

  Mrc offline_mrc;
  const KneeResult offline = BurstSampler::analyze_offline(
      trace, boundaries, KneeConfig{}, &offline_mrc);

  BurstSampler online(quick_sampler(trace.size()));
  std::optional<std::size_t> selected;
  std::size_t bi = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    while (bi < boundaries.size() && boundaries[bi] == i) {
      online.on_fase_boundary();
      ++bi;
    }
    const auto s = online.on_store(trace[i]);
    if (s) selected = s;
  }
  ASSERT_TRUE(selected.has_value());
  EXPECT_EQ(*selected, offline.chosen_size);
}

}  // namespace
}  // namespace nvc::core
