// Tests for the FASE-aware trace transformation (paper Section III-B).
#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "core/fase_trace.hpp"

namespace nvc::core {
namespace {

TEST(FaseRenamer, SameAddressSameFaseKeepsIdentity) {
  FaseRenamer r;
  const LineAddr a1 = r.rename(100);
  const LineAddr a2 = r.rename(100);
  EXPECT_EQ(a1, a2);
}

TEST(FaseRenamer, SameAddressAcrossFasesGetsFreshIdentity) {
  FaseRenamer r;
  const LineAddr before = r.rename(100);
  r.fase_boundary();
  const LineAddr after = r.rename(100);
  EXPECT_NE(before, after);
}

TEST(FaseRenamer, DistinctAddressesStayDistinct) {
  FaseRenamer r;
  EXPECT_NE(r.rename(1), r.rename(2));
}

TEST(FaseRenamer, PaperExampleAbAbAb) {
  // "ab|ab|ab" must become six distinct identities ("abcdef").
  FaseRenamer r;
  std::vector<LineAddr> out;
  for (int f = 0; f < 3; ++f) {
    out.push_back(r.rename(1));
    out.push_back(r.rename(2));
    r.fase_boundary();
  }
  std::unordered_set<LineAddr> distinct(out.begin(), out.end());
  EXPECT_EQ(distinct.size(), 6u);
}

TEST(FaseRenamer, ResetRestartsIdentitySpace) {
  FaseRenamer r;
  const LineAddr first = r.rename(5);
  r.fase_boundary();
  r.rename(5);
  r.reset();
  EXPECT_EQ(r.epoch(), 0u);
  EXPECT_EQ(r.rename(5), first);  // identity counter restarted
}

TEST(RenameTrace, BoundaryPositionsRespected) {
  // trace: a b | a b  with boundary before index 2.
  const std::vector<LineAddr> trace{1, 2, 1, 2};
  const auto renamed = rename_trace(trace, {2});
  EXPECT_EQ(renamed[0], renamed[0]);
  EXPECT_NE(renamed[0], renamed[2]);  // a renamed across the boundary
  EXPECT_NE(renamed[1], renamed[3]);
  std::unordered_set<LineAddr> distinct(renamed.begin(), renamed.end());
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(RenameTrace, IntraFaseReusePreserved) {
  // a a b b | a : the two intra-FASE reuses must survive renaming.
  const std::vector<LineAddr> trace{1, 1, 2, 2, 1};
  const auto renamed = rename_trace(trace, {4});
  EXPECT_EQ(renamed[0], renamed[1]);
  EXPECT_EQ(renamed[2], renamed[3]);
  EXPECT_NE(renamed[0], renamed[4]);
}

TEST(RenameTrace, NoBoundariesIsIsomorphicRelabeling) {
  const std::vector<LineAddr> trace{9, 8, 9, 7, 8};
  const auto renamed = rename_trace(trace, {});
  EXPECT_EQ(renamed[0], renamed[2]);
  EXPECT_EQ(renamed[1], renamed[4]);
  EXPECT_NE(renamed[0], renamed[1]);
  EXPECT_NE(renamed[3], renamed[0]);
}

TEST(RenameTrace, AdjacentBoundariesAreIdempotent) {
  // Two boundaries at the same position act like one.
  const std::vector<LineAddr> trace{1, 1};
  const auto renamed = rename_trace(trace, {1, 1});
  EXPECT_NE(renamed[0], renamed[1]);
}

TEST(FaseRenamer, ManyEpochsStayO1PerWrite) {
  // Epoch tagging means no per-boundary table clearing: a million
  // boundary/write pairs must run fast and rename correctly.
  FaseRenamer r;
  LineAddr prev = r.rename(4);
  for (int i = 0; i < 1000000; ++i) {
    r.fase_boundary();
    const LineAddr now = r.rename(4);
    ASSERT_NE(now, prev);
    prev = now;
  }
}

}  // namespace
}  // namespace nvc::core
