// Randomized crash-state fuzzer with a cross-mode durability oracle
// (DESIGN.md §9).
//
// Seeded random FASE programs (src/testing/fuzz_program.hpp) run on the
// shared freeze/restart rig (tests/support/crash_rig.hpp) under every
// combination of the three durability mode axes —
//
//     log protocol      strict | batched     (LogSyncMode)
//     data write-backs  sync   | flush-behind pipeline
//     burst analysis    sync   | async (handed-off)
//
// — with the durable image frozen at randomized event indices. For every
// crash point, the DurabilityOracle gives the only legal outcomes: each
// context must recover to the image after SOME committed outermost FASE of
// that context, and — because the whole run is deterministic (manual
// channels + the seeded virtual scheduler stand in for the background
// workers) — the recovered commit index must be monotone in the freeze
// index. EVERY failure message carries a one-line replay command
// (NVC_FUZZ_SEED + NVC_FUZZ_MODE + NVC_FUZZ_FREEZE) that reproduces the
// exact program, interleaving, and crash point.
//
// Knobs (all optional):
//   NVC_FUZZ_SEED=N    run exactly one program, generated from seed N
//   NVC_FUZZ_ITERS=N   programs per mode (default 8; nightly runs raise it)
//   NVC_FUZZ_MODE=S    only the named mode combo, e.g. batched-asyncflush-syncanalysis
//   NVC_FUZZ_FREEZE=N  only the named freeze event (with SEED: one exact case)
//
// Two differential companions ride along: the analyze/MRC/knee pipeline is
// checked against its brute-force references on random traces, and the
// generated programs are replayed on the REAL Runtime (real threads, real
// background workers, pm_alloc/pm_free) with every live object's final
// bytes checked against the oracle.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "core/analyzer.hpp"
#include "pmem/pmem_region.hpp"
#include "runtime/runtime.hpp"
#include "support/crash_rig.hpp"
#include "testing/durability_oracle.hpp"
#include "testing/fuzz_program.hpp"
#include "testing/seed.hpp"
#include "testing/virtual_scheduler.hpp"

namespace nvc::testing {
namespace {

constexpr std::uint64_t kDefaultBaseSeed = 20260806;

/// Per-iteration program seed: derived from the base by splitmix64 so
/// consecutive iterations explore unrelated programs; masked to int64 range
/// so the printed replay value round-trips through env_int().
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t iter) {
  std::uint64_t sm = base + iter;
  return splitmix64(sm) & 0x7fffffffffffffffULL;
}

/// Effective (seed, iteration-count) honoring the replay knobs: an explicit
/// NVC_FUZZ_SEED pins one exact program.
struct SeedPlan {
  std::uint64_t override_seed;
  bool pinned;
  std::uint64_t iters;

  std::uint64_t seed(std::uint64_t iter) const {
    return pinned ? override_seed : derive_seed(kDefaultBaseSeed, iter);
  }
};

SeedPlan seed_plan(std::uint64_t default_iters) {
  const std::int64_t env_seed = env_int("NVC_FUZZ_SEED", -1);
  SeedPlan plan;
  plan.pinned = env_seed >= 0;
  plan.override_seed = plan.pinned ? static_cast<std::uint64_t>(env_seed) : 0;
  plan.iters =
      plan.pinned
          ? 1
          : static_cast<std::uint64_t>(env_int(
                "NVC_FUZZ_ITERS", static_cast<std::int64_t>(default_iters)));
  return plan;
}

// --------------------------------------------------------------------------
// The 2x2x2 mode matrix.
// --------------------------------------------------------------------------

struct FuzzMode {
  runtime::LogSyncMode log;
  bool async_flush;
  bool async_analysis;
};

std::string mode_name(const FuzzMode& mode) {
  return std::string(runtime::to_string(mode.log)) + "-" +
         (mode.async_flush ? "asyncflush" : "syncflush") + "-" +
         (mode.async_analysis ? "asyncanalysis" : "syncanalysis");
}

const FuzzMode kAllModes[] = {
    {runtime::LogSyncMode::kStrict, false, false},
    {runtime::LogSyncMode::kStrict, false, true},
    {runtime::LogSyncMode::kStrict, true, false},
    {runtime::LogSyncMode::kStrict, true, true},
    {runtime::LogSyncMode::kBatched, false, false},
    {runtime::LogSyncMode::kBatched, false, true},
    {runtime::LogSyncMode::kBatched, true, false},
    {runtime::LogSyncMode::kBatched, true, true},
};

CrashRigConfig fuzz_rig_config(const FuzzProgram& program,
                               const FuzzMode& mode) {
  CrashRigConfig config;
  config.mode = mode.log;
  config.async_flush = mode.async_flush;
  // Deterministic everywhere: the flush ring is a manual channel (pumped
  // only by the virtual scheduler below) and async analysis uses a manual
  // analysis channel — no OS thread other than this one ever runs.
  config.manual_pipeline = true;
  config.online_policy = true;  // the analysis axis needs a sampling policy
  config.async_analysis = mode.async_analysis;
  config.contexts = program.contexts;
  config.data_lines = program.data_lines;
  return config;
}

/// Interpret the program on the rig. After every op the seeded virtual
/// scheduler decides how much "background" work happens — how many queued
/// write-backs each context's virtual flush worker performs, and whether
/// its virtual analysis worker gets a quantum. All scheduler draws depend
/// only on the program seed, never on the freeze point, so every freeze
/// value observes the same execution and the same event indexing.
void run_program(CrashRig& rig, const FuzzProgram& program) {
  std::uint64_t sm = program.seed ^ 0x5ced0123abcd7777ULL;
  VirtualScheduler scheduler(splitmix64(sm));
  for (const FuzzOp& op : program.ops) {
    switch (op.kind) {
      case FuzzOpKind::kFaseBegin:
        rig.fase_begin(op.ctx);
        break;
      case FuzzOpKind::kFaseEnd:
        rig.fase_end(op.ctx);
        break;
      case FuzzOpKind::kPstore: {
        const FuzzObject& obj = program.objects[op.object];
        const std::vector<std::uint8_t> bytes =
            payload_bytes(op.value_seed, op.len);
        rig.pstore(op.ctx, obj.offset + op.offset, bytes.data(),
                   bytes.size());
        break;
      }
      case FuzzOpKind::kPersistBarrier:
        rig.persist_barrier(op.ctx);
        break;
      case FuzzOpKind::kAlloc:
      case FuzzOpKind::kFree:
        break;  // bump-allocated offsets; nothing for the rig to do
    }
    for (std::uint32_t c = 0; c < program.contexts; ++c) {
      for (std::uint32_t n = scheduler.flush_quantum(); n > 0; --n) {
        if (!rig.pump_flush(c)) break;
      }
      if (scheduler.analysis_quantum()) (void)rig.pump_analysis(c);
    }
  }
}

/// The freeze indices to sweep: exhaustive when the run is small, else the
/// endpoints plus a seeded random sample — sorted, so the monotonicity
/// assertion applies across the sampled sweep too. NVC_FUZZ_FREEZE pins a
/// single point (the replay path).
std::vector<std::uint64_t> freeze_points(std::uint64_t total,
                                         std::uint64_t seed) {
  const std::int64_t pinned = env_int("NVC_FUZZ_FREEZE", -1);
  if (pinned >= 0) return {static_cast<std::uint64_t>(pinned)};
  constexpr std::uint64_t kExhaustive = 512;
  std::vector<std::uint64_t> points;
  if (total <= kExhaustive) {
    for (std::uint64_t e = 0; e <= total; ++e) points.push_back(e);
    return points;
  }
  std::uint64_t sm = seed ^ 0xf0f0e1e1d2d2c3c3ULL;
  Rng rng(splitmix64(sm));
  points.push_back(0);
  for (std::uint64_t i = 0; i < kExhaustive; ++i) {
    points.push_back(rng.below(total + 1));
  }
  points.push_back(total);
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

// --------------------------------------------------------------------------
// The tentpole: crash sweep across all eight mode combinations.
// --------------------------------------------------------------------------

class FuzzCrash : public ::testing::TestWithParam<FuzzMode> {};

TEST_P(FuzzCrash, EveryCrashStateIsACommittedFasePrefix) {
  const FuzzMode mode = GetParam();
  const std::string only = env_str("NVC_FUZZ_MODE", "");
  if (!only.empty() && only != mode_name(mode)) {
    GTEST_SKIP() << "NVC_FUZZ_MODE=" << only << " filters out this combo";
  }

  const SeedPlan plan = seed_plan(/*default_iters=*/8);
  for (std::uint64_t iter = 0; iter < plan.iters; ++iter) {
    const std::uint64_t seed = plan.seed(iter);
    const FuzzProgram program = generate_program(seed);
    const DurabilityOracle oracle(program);

    // Probe run, never frozen: learns the event count (identical for every
    // freeze value — the execution is deterministic) and pins down the
    // no-crash contract: an uninterrupted run recovers to exactly the final
    // committed image of every context.
    CrashRig probe(fuzz_rig_config(program, mode));
    run_program(probe, program);
    const std::uint64_t total = probe.events();
    for (std::size_t c = 0; c < program.contexts; ++c) {
      ASSERT_EQ(probe.recovered_data(c), oracle.final_committed(c))
          << "ctx " << c << ": uninterrupted run lost committed data\n  "
          << fuzz_replay_line(seed, mode_name(mode), total);
    }

    std::vector<int> last_index(program.contexts, -1);
    for (const std::uint64_t e : freeze_points(total, seed)) {
      CrashRig rig(fuzz_rig_config(program, mode));
      rig.freeze_at(e);
      run_program(rig, program);
      for (std::size_t c = 0; c < program.contexts; ++c) {
        const std::vector<std::uint8_t> image = rig.recovered_data(c);
        const int index = oracle.match(c, image);
        ASSERT_GE(index, 0)
            << "ctx " << c << ": crash at event " << e << "/" << total
            << " recovered a state matching no committed FASE\n  "
            << fuzz_replay_line(seed, mode_name(mode), e);
        ASSERT_GE(index, last_index[c])
            << "ctx " << c << ": durability regressed — freeze " << e
            << " recovered commit " << index << " after an earlier freeze "
            << "had already reached " << last_index[c] << "\n  "
            << fuzz_replay_line(seed, mode_name(mode), e);
        last_index[c] = index;
      }
    }
    if (env_int("NVC_FUZZ_FREEZE", -1) < 0) {
      // The unfrozen end of the sweep must have reached the final commit.
      for (std::size_t c = 0; c < program.contexts; ++c) {
        ASSERT_EQ(static_cast<std::size_t>(last_index[c]) + 1,
                  oracle.snapshots(c).size())
            << "ctx " << c << ": sweep never recovered the final commit\n  "
            << fuzz_replay_line(seed, mode_name(mode), total);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, FuzzCrash, ::testing::ValuesIn(kAllModes),
                         [](const auto& param_info) {
                           std::string name = mode_name(param_info.param);
                           std::erase(name, '-');
                           return name;
                         });

// --------------------------------------------------------------------------
// Pool-independence of the deterministic schedule (DESIGN.md §11).
// --------------------------------------------------------------------------

TEST(FuzzDeterminism, WorkerPoolsCannotPerturbManualReplays) {
  // The fuzzer's whole value rests on manual channels being invisible to
  // every pool thread: replays must be byte-identical no matter how many
  // flush/analysis workers exist or how busy they are. Run the same program
  // twice in the fully-async manual mode — the second time while local
  // 4-worker flush and analysis pools churn real channels (sweeps, steals,
  // pokes all active) — and require the same event count and the same
  // durable image, byte for byte.
  const FuzzMode mode{runtime::LogSyncMode::kBatched, true, true};
  const std::uint64_t seed = derive_seed(kDefaultBaseSeed, 0);
  const FuzzProgram program = generate_program(seed);

  CrashRig quiet(fuzz_rig_config(program, mode));
  run_program(quiet, program);
  const std::uint64_t quiet_events = quiet.events();
  std::vector<std::vector<std::uint8_t>> quiet_images;
  for (std::size_t c = 0; c < program.contexts; ++c) {
    quiet_images.push_back(quiet.durable_data(c));
  }

  core::FlushWorker flush_pool(4);
  core::AnalysisWorker analysis_pool(4);
  struct NullSink final : core::FlushSink {
    bool flush_line(LineAddr) override { return true; }
  };
  auto noisy_flush =
      flush_pool.open_channel(std::make_unique<NullSink>(), 64);
  auto noisy_analysis = analysis_pool.open_channel();
  std::atomic<bool> done{false};
  std::thread churn([&] {
    std::vector<LineAddr> burst(128);
    for (std::size_t i = 0; i < burst.size(); ++i) {
      burst[i] = static_cast<LineAddr>(i % 16);
    }
    while (!done.load(std::memory_order_acquire)) {
      for (LineAddr l = 0; l < 32; ++l) (void)noisy_flush->try_push(l);
      noisy_flush->request_wake();
      auto copy = burst;
      (void)noisy_analysis->submit(std::move(copy), core::KneeConfig{});
      std::this_thread::yield();
    }
    noisy_flush->wait_drained();
    noisy_analysis->drain();
  });

  CrashRig noisy(fuzz_rig_config(program, mode));
  run_program(noisy, program);
  EXPECT_EQ(noisy.events(), quiet_events)
      << "pool activity changed the deterministic event schedule";
  for (std::size_t c = 0; c < program.contexts; ++c) {
    EXPECT_EQ(noisy.durable_data(c), quiet_images[c])
        << "ctx " << c << ": replay no longer byte-identical under pools\n  "
        << fuzz_replay_line(seed, mode_name(mode), quiet_events);
  }

  done.store(true, std::memory_order_release);
  churn.join();
  noisy_flush->close();
  noisy_analysis->close();
}

// --------------------------------------------------------------------------
// The fault dimension: the same sweep under injected media faults.
// --------------------------------------------------------------------------

/// Fault campaign configuration: NVC_FAULT_* from the environment when the
/// operator set any (the replay path — failure messages print the active
/// fragment), otherwise defaults noisy enough that every failure class and
/// every degradation latch fires somewhere in the campaign. The injector
/// seed derives from the program seed so each iteration explores different
/// fault placements yet replays bit-for-bit.
pmem::FaultConfig fault_fuzz_config(std::uint64_t program_seed) {
  pmem::FaultConfig fault = pmem::FaultConfig::from_env();
  if (!fault.enabled()) {
    fault.rate = 0.08;           // transient per-attempt failure probability
    fault.bad_line_rate = 0.015; // permanently bad media lines
    fault.torn_rate = 0.5;       // the crash-point write-back tears
    fault.max_retries = 3;
    fault.degrade_after = 4;
  }
  // Virtual time: a retry must not busy-wait on the fuzzing thread (with
  // zero backoff a retry is just another deterministic attempt).
  fault.backoff_ns = 0;
  fault.backoff_cap_ns = 0;
  if (env_str("NVC_FAULT_SEED", "").empty() &&
      env_str("NVC_SEED", "").empty()) {
    std::uint64_t sm = program_seed ^ 0xfa17c0defa17c0deULL;
    fault.seed = splitmix64(sm);
  }
  return fault;
}

class FaultFuzzCrash : public ::testing::TestWithParam<FuzzMode> {};

TEST_P(FaultFuzzCrash, DegradedRunsStillRecoverCommittedPrefixes) {
  const FuzzMode mode = GetParam();
  const std::string only = env_str("NVC_FUZZ_MODE", "");
  if (!only.empty() && only != mode_name(mode)) {
    GTEST_SKIP() << "NVC_FUZZ_MODE=" << only << " filters out this combo";
  }

  const SeedPlan plan = seed_plan(/*default_iters=*/4);
  // Campaign aggregates: the defaults must actually exercise quarantine and
  // the degradation latches, not just survive them (asserted below).
  std::uint64_t quarantined = 0;
  std::uint64_t flush_degrades = 0;
  std::uint64_t log_degrades = 0;
  std::uint64_t suspensions = 0;
  for (std::uint64_t iter = 0; iter < plan.iters; ++iter) {
    const std::uint64_t seed = plan.seed(iter);
    const FuzzProgram program = generate_program(seed);
    const DurabilityOracle oracle(program);
    const pmem::FaultConfig fault = fault_fuzz_config(seed);
    const std::string fault_env = fault.describe();

    CrashRigConfig rig_config = fuzz_rig_config(program, mode);
    rig_config.fault = fault;

    // Probe run, never frozen: learns the event count and checks the
    // no-crash contract under faults — commits may be suspended, so the
    // recovered image matches SOME committed FASE of the context (not
    // necessarily the last one, as in the fault-free sweep).
    CrashRig probe(rig_config);
    run_program(probe, program);
    const std::uint64_t total = probe.events();
    for (std::size_t c = 0; c < program.contexts; ++c) {
      ASSERT_GE(oracle.match(c, probe.recovered_data(c)), 0)
          << "ctx " << c << ": uninterrupted faulty run recovered a state "
          << "matching no committed FASE\n  "
          << fuzz_replay_line(seed, mode_name(mode), total, fault_env);
      quarantined += probe.fault_stats(c).quarantined_count();
      flush_degrades += probe.flush_degraded(c) ? 1 : 0;
      log_degrades += probe.log_degraded(c) ? 1 : 0;
      suspensions += probe.commit_suspended(c) ? 1 : 0;
    }

    std::vector<int> last_index(program.contexts, -1);
    for (const std::uint64_t e : freeze_points(total, seed)) {
      CrashRig rig(rig_config);
      rig.freeze_at(e);
      run_program(rig, program);
      for (std::size_t c = 0; c < program.contexts; ++c) {
        const std::vector<std::uint8_t> image = rig.recovered_data(c);
        const int index = oracle.match(c, image);
        ASSERT_GE(index, 0)
            << "ctx " << c << ": crash at event " << e << "/" << total
            << " under injected faults recovered a state matching no "
            << "committed FASE\n  "
            << fuzz_replay_line(seed, mode_name(mode), e, fault_env);
        // Injector decisions are pure in (seed, line, attempt ordinal), so
        // the pre-freeze execution — fault outcomes included — is identical
        // at every freeze point and durability must still be monotone.
        ASSERT_GE(index, last_index[c])
            << "ctx " << c << ": durability regressed under faults — freeze "
            << e << " recovered commit " << index << " after an earlier "
            << "freeze had already reached " << last_index[c] << "\n  "
            << fuzz_replay_line(seed, mode_name(mode), e, fault_env);
        last_index[c] = index;
      }
    }
  }

  // Campaign-coverage asserts (deterministic: seeds derive from the fixed
  // base). Skipped on pinned replays / operator overrides, where the
  // campaign is deliberately partial.
  const bool pinned = env_int("NVC_FUZZ_SEED", -1) >= 0 ||
                      env_int("NVC_FUZZ_FREEZE", -1) >= 0 ||
                      pmem::FaultConfig::from_env().enabled() ||
                      !env_str("NVC_SEED", "").empty() ||
                      env_int("NVC_FUZZ_ITERS", -1) >= 0;
  if (pinned) return;
  EXPECT_GT(quarantined, 0u)
      << "fault campaign never quarantined a line; the bad-line rate no "
      << "longer exercises retry exhaustion";
  EXPECT_EQ(quarantined > 0, suspensions > 0)
      << "quarantine and commit suspension must latch together";
  if (mode.async_flush) {
    EXPECT_GT(flush_degrades, 0u)
        << "no context latched async->sync under a noisy medium";
  }
  if (mode.log == runtime::LogSyncMode::kBatched) {
    EXPECT_GT(log_degrades, 0u)
        << "no context latched batched->strict under a noisy medium";
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, FaultFuzzCrash,
                         ::testing::ValuesIn(kAllModes),
                         [](const auto& param_info) {
                           std::string name = mode_name(param_info.param);
                           std::erase(name, '-');
                           return name;
                         });

// --------------------------------------------------------------------------
// The admission dimension: the same sweep with write-through bypasses.
// --------------------------------------------------------------------------

class AdmitFuzzCrash : public ::testing::TestWithParam<FuzzMode> {};

TEST_P(AdmitFuzzCrash, BypassedLinesKeepTheDurabilityContract) {
  // Write-admission (DESIGN.md §12) changes WHERE a store's write-back
  // happens — immediately through the LogOrderedSink instead of at
  // eviction/FASE end — but must not change WHAT a crash can leave behind:
  // the same oracle, the same monotone durability, under every mode combo
  // and both non-trivial admission modes. NVC_ADMIT pins one admission
  // mode for replay (failure lines carry the fragment).
  const FuzzMode mode = GetParam();
  const std::string only = env_str("NVC_FUZZ_MODE", "");
  if (!only.empty() && only != mode_name(mode)) {
    GTEST_SKIP() << "NVC_FUZZ_MODE=" << only << " filters out this combo";
  }

  const core::AdmitMode sweep[] = {core::AdmitMode::kWriteOnce,
                                   core::AdmitMode::kReuse};
  const std::string admit_pin = env_str("NVC_ADMIT", "");
  const SeedPlan plan = seed_plan(/*default_iters=*/4);
  std::uint64_t bypassed_total = 0;
  for (const core::AdmitMode admit : sweep) {
    if (!admit_pin.empty() && admit_pin != core::to_string(admit)) continue;
    const std::string admit_env =
        std::string("NVC_ADMIT=") + core::to_string(admit);
    for (std::uint64_t iter = 0; iter < plan.iters; ++iter) {
      const std::uint64_t seed = plan.seed(iter);
      const FuzzProgram program = generate_program(seed);
      const DurabilityOracle oracle(program);

      CrashRigConfig rig_config = fuzz_rig_config(program, mode);
      rig_config.admission = admit;

      // Probe run, never frozen: no faults are injected, so even with
      // bypasses the uninterrupted run must recover the final commit.
      CrashRig probe(rig_config);
      run_program(probe, program);
      const std::uint64_t total = probe.events();
      bypassed_total += probe.bypassed_stores();
      for (std::size_t c = 0; c < program.contexts; ++c) {
        ASSERT_EQ(probe.recovered_data(c), oracle.final_committed(c))
            << "ctx " << c << ": uninterrupted run with admission lost "
            << "committed data\n  "
            << fuzz_replay_line(seed, mode_name(mode), total, admit_env);
      }

      std::vector<int> last_index(program.contexts, -1);
      for (const std::uint64_t e : freeze_points(total, seed)) {
        CrashRig rig(rig_config);
        rig.freeze_at(e);
        run_program(rig, program);
        for (std::size_t c = 0; c < program.contexts; ++c) {
          const int index = oracle.match(c, rig.recovered_data(c));
          ASSERT_GE(index, 0)
              << "ctx " << c << ": crash at event " << e << "/" << total
              << " with admission bypasses recovered a state matching no "
              << "committed FASE\n  "
              << fuzz_replay_line(seed, mode_name(mode), e, admit_env);
          ASSERT_GE(index, last_index[c])
              << "ctx " << c << ": durability regressed under admission — "
              << "freeze " << e << " recovered commit " << index
              << " after an earlier freeze had already reached "
              << last_index[c] << "\n  "
              << fuzz_replay_line(seed, mode_name(mode), e, admit_env);
          last_index[c] = index;
        }
      }
    }
  }

  // Campaign coverage (deterministic seeds): the sweep is only meaningful
  // if the doorkeeper actually bypassed stores somewhere. Skipped on
  // pinned replays, where the campaign is deliberately partial.
  const bool pinned = env_int("NVC_FUZZ_SEED", -1) >= 0 ||
                      env_int("NVC_FUZZ_FREEZE", -1) >= 0 ||
                      env_int("NVC_FUZZ_ITERS", -1) >= 0 ||
                      !admit_pin.empty();
  if (pinned) return;
  EXPECT_GT(bypassed_total, 0u)
      << "admission sweep never bypassed a store; the write-once doorkeeper "
      << "no longer sees first touches";
}

INSTANTIATE_TEST_SUITE_P(AllModes, AdmitFuzzCrash,
                         ::testing::ValuesIn(kAllModes),
                         [](const auto& param_info) {
                           std::string name = mode_name(param_info.param);
                           std::erase(name, '-');
                           return name;
                         });

// --------------------------------------------------------------------------
// The elision dimension: the same sweep with FliT-style write-back dedup.
// --------------------------------------------------------------------------

class ElideFuzzCrash : public ::testing::TestWithParam<FuzzMode> {};

TEST_P(ElideFuzzCrash, ElidedWriteBacksKeepTheDurabilityContract) {
  // Flush elision (DESIGN.md §13) may drop a write-back only when an
  // already-announced, not-yet-started write-back of the same line will
  // carry its bytes — so WHAT a crash can leave behind must not change:
  // same oracle, same monotone durability, every mode combo. Two extra
  // invariants ride along: a fully drained run leaves the elision table
  // quiesced (every announce retired — the seeded revert-retire bug is
  // exactly a violation of this), and the elision counters balance
  // (owners + elisions + untracked announces account for every probe).
  const FuzzMode mode = GetParam();
  const std::string only = env_str("NVC_FUZZ_MODE", "");
  if (!only.empty() && only != mode_name(mode)) {
    GTEST_SKIP() << "NVC_FUZZ_MODE=" << only << " filters out this combo";
  }

  const std::string elide_env = "NVC_ELIDE=1";
  const SeedPlan plan = seed_plan(/*default_iters=*/4);
  std::uint64_t elided_total = 0;
  for (std::uint64_t iter = 0; iter < plan.iters; ++iter) {
    const std::uint64_t seed = plan.seed(iter);
    const FuzzProgram program = generate_program(seed);
    const DurabilityOracle oracle(program);

    CrashRigConfig rig_config = fuzz_rig_config(program, mode);
    rig_config.elide = true;

    // Probe run, never frozen: the uninterrupted run must recover the
    // final commit, and — after recovered_data() drained every channel —
    // the table must hold no pending entry.
    CrashRig probe(rig_config);
    run_program(probe, program);
    const std::uint64_t total = probe.events();
    elided_total += probe.elided_flushes();
    for (std::size_t c = 0; c < program.contexts; ++c) {
      ASSERT_EQ(probe.recovered_data(c), oracle.final_committed(c))
          << "ctx " << c << ": uninterrupted run with elision lost "
          << "committed data\n  "
          << fuzz_replay_line(seed, mode_name(mode), total, elide_env);
    }
    ASSERT_EQ(probe.elision_table()->pending_count(), 0u)
        << "elision table not quiescent after a fully drained run — some "
        << "announced write-back never retired\n  "
        << fuzz_replay_line(seed, mode_name(mode), total, elide_env);
    const core::FlushElisionTable::Stats st = probe.elision_table()->stats();
    ASSERT_GE(st.announces, st.owners + st.elisions)
        << "elision counters do not balance\n  "
        << fuzz_replay_line(seed, mode_name(mode), total, elide_env);

    std::vector<int> last_index(program.contexts, -1);
    for (const std::uint64_t e : freeze_points(total, seed)) {
      CrashRig rig(rig_config);
      rig.freeze_at(e);
      run_program(rig, program);
      for (std::size_t c = 0; c < program.contexts; ++c) {
        const int index = oracle.match(c, rig.recovered_data(c));
        ASSERT_GE(index, 0)
            << "ctx " << c << ": crash at event " << e << "/" << total
            << " with flush elision recovered a state matching no "
            << "committed FASE\n  "
            << fuzz_replay_line(seed, mode_name(mode), e, elide_env);
        ASSERT_GE(index, last_index[c])
            << "ctx " << c << ": durability regressed under elision — "
            << "freeze " << e << " recovered commit " << index
            << " after an earlier freeze had already reached "
            << last_index[c] << "\n  "
            << fuzz_replay_line(seed, mode_name(mode), e, elide_env);
        last_index[c] = index;
      }
    }
  }

  // Campaign coverage (deterministic seeds): in flush-behind modes the
  // manual ring holds write-backs across ops, so re-evictions of a queued
  // line must actually elide somewhere — otherwise the dimension tests
  // nothing. Skipped on pinned replays.
  const bool pinned = env_int("NVC_FUZZ_SEED", -1) >= 0 ||
                      env_int("NVC_FUZZ_FREEZE", -1) >= 0 ||
                      env_int("NVC_FUZZ_ITERS", -1) >= 0;
  if (pinned) return;
  if (mode.async_flush) {
    EXPECT_GT(elided_total, 0u)
        << "elision campaign never elided a write-back; the flush-behind "
        << "ring no longer holds lines long enough to dedup";
  } else {
    // Sync mode retires inline: an announce can never find a pending
    // owner, so elision must be exactly zero (the dimension degenerates
    // to counter bookkeeping, and durability must be untouched).
    EXPECT_EQ(elided_total, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllModes, ElideFuzzCrash,
                         ::testing::ValuesIn(kAllModes),
                         [](const auto& param_info) {
                           std::string name = mode_name(param_info.param);
                           std::erase(name, '-');
                           return name;
                         });

TEST(ElideFuzzBug, SeededRevertRetireBugIsCaught) {
  // Checker validation (the acceptance bar for the elision dimension): arm
  // the "reverted flush-pending decrement" — retire() reports success but
  // leaves the pending count — and require the harness's quiescence
  // invariant to flag it, with the one-line replay attached. The bug makes
  // every later announce of a retired line elide although no write-back
  // remains scheduled; only the commit-point drain re-check stands between
  // that and silent data loss, which is exactly why the invariant must
  // stay armed in the sweep above.
  const FuzzMode mode{runtime::LogSyncMode::kStrict, true, false};
  const std::uint64_t seed = derive_seed(kDefaultBaseSeed, 0);
  const FuzzProgram program = generate_program(seed);

  CrashRigConfig rig_config = fuzz_rig_config(program, mode);
  rig_config.elide = true;
  rig_config.elide_bug_revert_retire = true;

  CrashRig rig(rig_config);
  run_program(rig, program);
  const std::uint64_t total = rig.events();
  // Quiesce exactly as the sweep does before its invariant check.
  for (std::size_t c = 0; c < program.contexts; ++c) {
    (void)rig.recovered_data(c);
  }
  EXPECT_GT(rig.elision_table()->pending_count(), 0u)
      << "the quiescence checker no longer detects a reverted retire; "
      << "a real elide-forever bug would ship undetected ("
      << fuzz_replay_line(seed, mode_name(mode), total, "NVC_ELIDE=1")
      << ")";
  // Defense in depth held: the drain re-check flushed the stranded lines,
  // so even under the bug the uninterrupted run lost nothing.
  const DurabilityOracle oracle(program);
  for (std::size_t c = 0; c < program.contexts; ++c) {
    EXPECT_EQ(rig.recovered_data(c), oracle.final_committed(c))
        << "ctx " << c
        << ": drain re-check failed to cover the buggy retire";
  }
  EXPECT_GT(rig.elision_reflushes(), 0u)
      << "the buggy run never exercised the drain re-check path";
}

// --------------------------------------------------------------------------
// Differential oracle: the analyze/MRC/knee pipeline vs. brute force.
// --------------------------------------------------------------------------

TEST(FuzzDifferential, AnalysisPipelineMatchesBruteForceReferences) {
  const SeedPlan plan = seed_plan(/*default_iters=*/8);
  for (std::uint64_t iter = 0; iter < plan.iters; ++iter) {
    const std::uint64_t seed = plan.seed(iter);
    SCOPED_TRACE(replay_hint("NVC_FUZZ_SEED", seed));
    Rng rng(seed);
    // A dense renamed trace, the exact shape the burst sampler hands to
    // analyze_burst (identities allocated from 0).
    const LineAddr ids = rng.range(4, 40);
    const std::size_t n = rng.range(64, 384);
    std::vector<LineAddr> trace(n);
    for (LineAddr& t : trace) t = rng.below(ids);

    // Interval extraction: dense fast path vs. hashed reference.
    const auto fast = core::intervals_of_dense_trace(trace, ids);
    const auto ref = core::intervals_of_trace(trace);
    ASSERT_EQ(fast.size(), ref.size());
    auto sorted = [](std::vector<core::ReuseInterval> v) {
      std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
        return a.e != b.e ? a.e < b.e : a.s < b.s;
      });
      return v;
    };
    const auto fast_sorted = sorted(fast);
    const auto ref_sorted = sorted(ref);
    for (std::size_t i = 0; i < fast_sorted.size(); ++i) {
      ASSERT_EQ(fast_sorted[i].s, ref_sorted[i].s) << "interval " << i;
      ASSERT_EQ(fast_sorted[i].e, ref_sorted[i].e) << "interval " << i;
    }

    // Linear-time reuse curve vs. the O(n^2) window enumeration.
    const auto n_time = static_cast<LogicalTime>(n);
    const auto reuse_fast = core::compute_reuse_all_k(fast, n_time);
    const auto reuse_ref = core::compute_reuse_brute_force(ref, n_time);
    for (LogicalTime k = 1; k <= n_time; ++k) {
      ASSERT_NEAR(reuse_fast.at(k), reuse_ref.at(k), 1e-7) << "k=" << k;
    }

    // Footprint curve vs. its brute-force reference.
    const auto fp_fast = core::compute_footprint_all_k(trace);
    const auto fp_ref = core::compute_footprint_brute_force(trace);
    for (LogicalTime k = 1; k <= n_time; ++k) {
      ASSERT_NEAR(fp_fast.at(k), fp_ref.at(k), 1e-7) << "k=" << k;
    }

    // End to end: analyze_burst must equal the pipeline recomposed from the
    // brute-force reuse curve — same MRC, same knee selection.
    const core::KneeConfig knee;
    const core::BurstAnalysis analysis = core::analyze_burst(trace, knee);
    const core::Mrc mrc_ref = core::mrc_from_reuse(reuse_ref, knee.max_size);
    ASSERT_EQ(analysis.mrc.max_size(), mrc_ref.max_size());
    for (std::size_t c = 1; c <= mrc_ref.max_size(); ++c) {
      ASSERT_NEAR(analysis.mrc.at(c), mrc_ref.at(c), 1e-7) << "size " << c;
      if (c >= 2) {  // LRU inclusion: the published MRC is non-increasing
        ASSERT_LE(analysis.mrc.at(c), analysis.mrc.at(c - 1) + 1e-12);
      }
    }
    const core::KneeResult selection =
        core::KneeFinder(knee).select(mrc_ref);
    EXPECT_EQ(analysis.selection.chosen_size, selection.chosen_size);
    EXPECT_EQ(analysis.selection.had_knees, selection.had_knees);
    EXPECT_EQ(analysis.selection.candidates, selection.candidates);
  }
}

// --------------------------------------------------------------------------
// Differential oracle: generated programs on the REAL runtime.
// --------------------------------------------------------------------------

std::string unique_region(const char* base) {
  static int counter = 0;
  return std::string(base) + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter++);
}

TEST(FuzzRuntimeDifferential, LiveObjectsMatchTheOracleAfterRealThreads) {
  // The crash sweep runs the deterministic rig; this companion replays the
  // same generated programs on the production Runtime — one real OS thread
  // per context, real background flush/analysis workers, the real
  // allocator — and checks every live object's final bytes against the
  // oracle, plus the log's committed-at-exit invariant. (No crash injection
  // here: the real backends cannot freeze; nondeterministic interleavings
  // are exactly what the end-state check must be robust to.)
  struct RtMode {
    runtime::LogSyncMode log;
    bool async_flush;
    bool async_analysis;
  };
  const RtMode rt_modes[] = {
      {runtime::LogSyncMode::kStrict, false, false},
      {runtime::LogSyncMode::kBatched, true, true},
  };
  const SeedPlan plan = seed_plan(/*default_iters=*/4);
  for (std::uint64_t iter = 0; iter < plan.iters; ++iter) {
    const std::uint64_t seed = plan.seed(iter);
    SCOPED_TRACE(replay_hint("NVC_FUZZ_SEED", seed));
    const FuzzProgram program = generate_program(seed);
    const DurabilityOracle oracle(program);
    for (const RtMode& mode : rt_modes) {
      SCOPED_TRACE(std::string("log=") + runtime::to_string(mode.log) +
                   (mode.async_flush ? " asyncflush" : " syncflush") +
                   (mode.async_analysis ? " asyncanalysis" : ""));
      runtime::RuntimeConfig config;
      config.region_name = unique_region("fuzzrt");
      config.region_size = 1u << 20;
      config.policy = core::PolicyKind::kSoftCache;
      config.policy_config.cache_size = 4;
      config.policy_config.sampler.burst_length = 64;
      config.policy_config.sampler.hibernation_length = 32;
      config.policy_config.sampler.async_analysis = mode.async_analysis;
      config.flush = pmem::FlushKind::kCountOnly;
      config.undo_logging = true;
      config.log_sync = mode.log;
      config.async_flush = mode.async_flush;
      config.flush_queue_depth = 8;
      runtime::Runtime rt(config);

      std::vector<void*> ptrs(program.objects.size(), nullptr);
      std::vector<std::thread> threads;
      for (std::uint32_t c = 0; c < program.contexts; ++c) {
        threads.emplace_back([&, c] {
          for (const FuzzOp& op : program.ops) {
            if (op.ctx != c) continue;
            switch (op.kind) {
              case FuzzOpKind::kFaseBegin:
                rt.fase_begin();
                break;
              case FuzzOpKind::kFaseEnd:
                rt.fase_end();
                break;
              case FuzzOpKind::kPstore: {
                const std::vector<std::uint8_t> bytes =
                    payload_bytes(op.value_seed, op.len);
                rt.pstore(static_cast<char*>(ptrs[op.object]) + op.offset,
                          bytes.data(), bytes.size());
                break;
              }
              case FuzzOpKind::kPersistBarrier:
                rt.persist_barrier();
                break;
              case FuzzOpKind::kAlloc: {
                void* p = rt.pm_alloc(op.len);
                ptrs[op.object] = p;
                // The oracle's images start zeroed; match it (an
                // unprotected pstore outside any FASE, as Atlas permits
                // for initialization).
                const std::vector<std::uint8_t> zeros(op.len, 0);
                rt.pstore(p, zeros.data(), zeros.size());
                break;
              }
              case FuzzOpKind::kFree:
                rt.pm_free(ptrs[op.object]);
                ptrs[op.object] = nullptr;
                break;
            }
          }
          rt.thread_flush();
        });
      }
      for (std::thread& t : threads) t.join();

      EXPECT_FALSE(rt.needs_recovery())
          << "every FASE committed, yet a log segment wants recovery";
      for (std::uint32_t id = 0; id < program.objects.size(); ++id) {
        if (ptrs[id] == nullptr) continue;  // freed: memory may be reused
        const std::vector<std::uint8_t> expected =
            oracle.final_object_bytes(program, id);
        EXPECT_EQ(0,
                  std::memcmp(ptrs[id], expected.data(), expected.size()))
            << "object " << id << " (ctx " << program.objects[id].ctx
            << ", " << expected.size() << " bytes) diverged from the oracle";
      }
      rt.destroy_storage();
    }
  }
}

}  // namespace
}  // namespace nvc::testing
