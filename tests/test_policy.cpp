// Tests for the six persistence policies (paper Section IV-A): flush-count
// semantics, write combining, FASE handling, and — through the ShadowPmem
// crash model — the guarantee that every valid policy persists all data
// written in a FASE by the FASE's end.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/policy.hpp"
#include "pmem/shadow.hpp"

namespace nvc::core {
namespace {

class RecordingSink final : public FlushSink {
 public:
  bool flush_line(LineAddr line) override {
    flushed.push_back(line);
    return true;
  }
  void drain() override { ++drains; }
  std::vector<LineAddr> flushed;
  int drains = 0;
};

/// Drive a policy through one FASE writing `lines`.
void run_fase(Policy& p, FlushSink& sink,
              const std::vector<LineAddr>& lines) {
  p.on_fase_begin(sink);
  for (const LineAddr l : lines) p.on_store(l, sink);
  p.on_fase_end(sink);
}

TEST(EagerPolicy, FlushesEveryStore) {
  auto p = make_policy(PolicyKind::kEager);
  RecordingSink sink;
  run_fase(*p, sink, {1, 1, 2, 1});
  EXPECT_EQ(sink.flushed, (std::vector<LineAddr>{1, 1, 2, 1}));
  EXPECT_EQ(p->counters().stores, 4u);
  EXPECT_EQ(p->counters().flush_ratio(sink.flushed.size()), 1.0);
}

TEST(LazyPolicy, FlushesDistinctLinesAtFaseEnd) {
  auto p = make_policy(PolicyKind::kLazy);
  RecordingSink sink;
  p->on_fase_begin(sink);
  for (const LineAddr l : {1, 2, 1, 3, 2, 1}) p->on_store(l, sink);
  EXPECT_TRUE(sink.flushed.empty());  // nothing until FASE end
  p->on_fase_end(sink);
  EXPECT_EQ(sink.flushed, (std::vector<LineAddr>{1, 2, 3}));
  EXPECT_EQ(p->counters().combined, 3u);
}

TEST(LazyPolicy, LowestPossibleFlushCount) {
  // LA is the paper's lower bound: flushes == distinct lines per FASE.
  auto p = make_policy(PolicyKind::kLazy);
  RecordingSink sink;
  Rng rng(4);
  std::uint64_t expected = 0;
  for (int f = 0; f < 20; ++f) {
    std::vector<LineAddr> lines;
    std::set<LineAddr> distinct;
    for (int i = 0; i < 100; ++i) {
      lines.push_back(rng.below(17));
      distinct.insert(lines.back());
    }
    expected += distinct.size();
    run_fase(*p, sink, lines);
  }
  EXPECT_EQ(sink.flushed.size(), expected);
}

TEST(AtlasPolicy, CombinesRepeatsInSameSlot) {
  PolicyConfig config;
  config.atlas_table_size = 8;
  auto p = make_policy(PolicyKind::kAtlas, config);
  RecordingSink sink;
  p->on_fase_begin(sink);
  p->on_store(1, sink);
  p->on_store(1, sink);  // combined
  p->on_store(1, sink);  // combined
  EXPECT_TRUE(sink.flushed.empty());
  p->on_fase_end(sink);
  EXPECT_EQ(sink.flushed, (std::vector<LineAddr>{1}));
  EXPECT_EQ(p->counters().combined, 2u);
}

TEST(AtlasPolicy, DirectMappedConflictFlushesOldLine) {
  PolicyConfig config;
  config.atlas_table_size = 8;
  auto p = make_policy(PolicyKind::kAtlas, config);
  RecordingSink sink;
  p->on_fase_begin(sink);
  p->on_store(3, sink);
  p->on_store(3 + 8, sink);  // same slot (direct-mapped by line % 8)
  ASSERT_EQ(sink.flushed.size(), 1u);
  EXPECT_EQ(sink.flushed[0], 3u);
  p->on_fase_end(sink);
  EXPECT_EQ(sink.flushed, (std::vector<LineAddr>{3, 11}));
}

TEST(AtlasPolicy, TableClearedAtFaseEnd) {
  PolicyConfig config;
  config.atlas_table_size = 8;
  auto p = make_policy(PolicyKind::kAtlas, config);
  RecordingSink sink;
  run_fase(*p, sink, {5});
  run_fase(*p, sink, {5});
  // The second FASE's write is compulsory again: two flushes total.
  EXPECT_EQ(sink.flushed, (std::vector<LineAddr>{5, 5}));
}

TEST(AtlasPolicy, AssociativeVariantResolvesConflicts) {
  // Lines 3 and 11 collide in a direct-mapped 8-entry table but coexist in
  // a 2-way variant with the same 8-entry budget.
  PolicyConfig dm;
  dm.atlas_table_size = 8;
  PolicyConfig assoc = dm;
  assoc.atlas_associativity = 2;

  auto count = [](const PolicyConfig& config) {
    auto p = make_policy(PolicyKind::kAtlas, config);
    RecordingSink sink;
    p->on_fase_begin(sink);
    for (int rep = 0; rep < 100; ++rep) {
      p->on_store(3, sink);
      p->on_store(11, sink);
    }
    p->on_fase_end(sink);
    return sink.flushed.size();
  };
  EXPECT_GE(count(dm), 199u);   // thrash: nearly every store flushes
  EXPECT_EQ(count(assoc), 2u);  // both lines resident; FASE-end flush only
}

TEST(AtlasPolicy, AssociativeEvictsLruWithinSet) {
  PolicyConfig config;
  config.atlas_table_size = 4;   // 2 sets x 2 ways
  config.atlas_associativity = 2;
  auto p = make_policy(PolicyKind::kAtlas, config);
  RecordingSink sink;
  p->on_fase_begin(sink);
  p->on_store(2, sink);   // set 0
  p->on_store(4, sink);   // set 0
  p->on_store(2, sink);   // refresh 2
  p->on_store(6, sink);   // set 0 full: evicts LRU = 4
  ASSERT_EQ(sink.flushed.size(), 1u);
  EXPECT_EQ(sink.flushed[0], 4u);
}

TEST(SoftCachePolicy, EvictsOnlyWhenOverCapacity) {
  PolicyConfig config;
  config.cache_size = 4;
  auto p = make_policy(PolicyKind::kSoftCacheOffline, config);
  RecordingSink sink;
  p->on_fase_begin(sink);
  for (LineAddr l = 1; l <= 4; ++l) p->on_store(l, sink);
  EXPECT_TRUE(sink.flushed.empty());
  p->on_store(5, sink);  // evicts LRU (line 1)
  EXPECT_EQ(sink.flushed, (std::vector<LineAddr>{1}));
  p->on_fase_end(sink);
  EXPECT_EQ(sink.flushed.size(), 5u);  // remaining 4 flushed at FASE end
}

TEST(SoftCachePolicy, OutperformsAtlasOnLoopWorkingSet) {
  // A 20-line loop: Atlas' 8-entry direct-mapped table thrashes; SC at the
  // right size combines everything after the first pass. This is the
  // paper's core claim in miniature (Table III).
  PolicyConfig at_config;
  at_config.atlas_table_size = 8;
  PolicyConfig sc_config;
  sc_config.cache_size = 24;

  auto at = make_policy(PolicyKind::kAtlas, at_config);
  auto sc = make_policy(PolicyKind::kSoftCacheOffline, sc_config);
  RecordingSink at_sink, sc_sink;

  at->on_fase_begin(at_sink);
  sc->on_fase_begin(sc_sink);
  for (int rep = 0; rep < 100; ++rep) {
    for (LineAddr l = 1; l <= 20; ++l) {
      at->on_store(l, at_sink);
      sc->on_store(l, sc_sink);
    }
  }
  at->on_fase_end(at_sink);
  sc->on_fase_end(sc_sink);

  EXPECT_EQ(sc_sink.flushed.size(), 20u);  // compulsory only
  EXPECT_GT(at_sink.flushed.size(), 10 * sc_sink.flushed.size());
}

TEST(SoftCachePolicy, OnlineAdaptsSizeAfterBurst) {
  PolicyConfig config;
  config.cache_size = 8;  // default start
  config.sampler.burst_length = 2000;
  config.sampler.knee.max_size = 50;
  auto p = make_policy(PolicyKind::kSoftCache, config);
  RecordingSink sink;
  EXPECT_EQ(p->current_cache_size(), 8u);
  p->on_fase_begin(sink);
  for (int i = 0; i < 2100; ++i) {
    p->on_store(static_cast<LineAddr>(i % 14), sink);
  }
  p->on_fase_end(sink);
  // After the burst the cache must have resized to ~the working set.
  EXPECT_NEAR(static_cast<double>(p->current_cache_size()), 14.0, 3.0);
}

TEST(SoftCachePolicy, FlushBufferedEmptiesCacheWithoutFaseBoundary) {
  PolicyConfig config;
  config.cache_size = 8;
  auto p = make_policy(PolicyKind::kSoftCacheOffline, config);
  RecordingSink sink;
  p->on_fase_begin(sink);
  for (LineAddr l = 1; l <= 3; ++l) p->on_store(l, sink);
  p->flush_buffered(sink);  // mid-FASE ordering point
  EXPECT_EQ(sink.flushed, (std::vector<LineAddr>{1, 2, 3}));
  EXPECT_EQ(sink.drains, 1);
  EXPECT_EQ(p->counters().fases, 1u);  // not a FASE boundary
  // The cache really is empty: re-storing the same lines misses again.
  p->on_store(1, sink);
  EXPECT_EQ(p->counters().combined, 0u);
  p->on_fase_end(sink);
}

TEST(SoftCachePolicy, FlushBufferedIsNotASamplerFaseBoundary) {
  // skip_fases counts *FASE boundaries*. A mid-FASE barrier must not count:
  // a store-with-own-commit-ordering (MDB) issues many barriers per FASE,
  // and treating them as boundaries would both end the warmup skip early
  // and corrupt the renamer's epoch numbering.
  PolicyConfig config;
  config.cache_size = 8;
  config.sampler.burst_length = 8;
  config.sampler.skip_fases = 2;

  // Barriers only: the sampler must still be skipping (so no burst can
  // complete, no matter how many stores pass through).
  SoftCachePolicy barriers(config, /*online=*/true);
  RecordingSink sink_b;
  barriers.on_fase_begin(sink_b);
  for (int round = 0; round < 3; ++round) {
    for (LineAddr l = 1; l <= 4; ++l) barriers.on_store(l, sink_b);
    barriers.flush_buffered(sink_b);
  }
  barriers.on_fase_end(sink_b);
  EXPECT_EQ(barriers.sampler().bursts_completed(), 0u);

  // Same store stream split into real FASEs: two boundaries finish the
  // warmup skip, the next 8 stores fill a burst.
  SoftCachePolicy fases(config, /*online=*/true);
  RecordingSink sink_f;
  for (int round = 0; round < 4; ++round) {
    fases.on_fase_begin(sink_f);
    for (LineAddr l = 1; l <= 4; ++l) fases.on_store(l, sink_f);
    fases.on_fase_end(sink_f);
  }
  EXPECT_EQ(fases.sampler().bursts_completed(), 1u);
}

TEST(SoftCachePolicy, FlushBufferedDefersAsyncResizeToFaseBoundary) {
  // An async burst selection that lands mid-FASE must wait at the barrier
  // (a resize must never happen inside a FASE, DESIGN.md §6) and apply at
  // the next real boundary.
  PolicyConfig config;
  config.cache_size = 8;
  config.sampler.burst_length = 2000;
  config.sampler.knee.max_size = 50;
  config.sampler.async_analysis = true;
  SoftCachePolicy p(config, /*online=*/true);
  RecordingSink sink;
  p.on_fase_begin(sink);
  for (int i = 0; i < 2000; ++i) {
    p.on_store(static_cast<LineAddr>(i % 14 + 1), sink);
  }
  p.drain_analysis();  // the background selection has landed by now
  p.flush_buffered(sink);
  EXPECT_EQ(p.current_cache_size(), 8u);  // unchanged mid-FASE
  p.on_fase_end(sink);
  EXPECT_NEAR(static_cast<double>(p.current_cache_size()), 14.0, 3.0);
}

TEST(BestPolicy, NeverFlushes) {
  auto p = make_policy(PolicyKind::kBest);
  RecordingSink sink;
  run_fase(*p, sink, {1, 2, 3, 1, 2});
  p->finish(sink);
  EXPECT_TRUE(sink.flushed.empty());
  EXPECT_EQ(p->counters().stores, 5u);
}

TEST(PolicyNames, AllSixNamed) {
  EXPECT_STREQ(to_string(PolicyKind::kEager), "ER");
  EXPECT_STREQ(to_string(PolicyKind::kLazy), "LA");
  EXPECT_STREQ(to_string(PolicyKind::kAtlas), "AT");
  EXPECT_STREQ(to_string(PolicyKind::kSoftCache), "SC");
  EXPECT_STREQ(to_string(PolicyKind::kSoftCacheOffline), "SC-offline");
  EXPECT_STREQ(to_string(PolicyKind::kBest), "BEST");
}

// --- crash-consistency property (ShadowPmem) -----------------------------------------

/// Sink that persists lines into the shadow memory.
class ShadowSink final : public FlushSink {
 public:
  explicit ShadowSink(pmem::ShadowPmem* mem) : mem_(mem) {}
  bool flush_line(LineAddr line) override { return mem_->flush_line(line); }

 private:
  pmem::ShadowPmem* mem_;
};

struct CrashCase {
  PolicyKind kind;
  std::uint64_t seed;
};

class PolicyCrashConsistency : public ::testing::TestWithParam<CrashCase> {};

TEST_P(PolicyCrashConsistency, EveryFaseWriteDurableAtFaseEnd) {
  // Property: for ER, LA, AT, SC and SC-offline, a crash *between* FASEs
  // loses nothing: every line written inside a completed FASE has been
  // flushed. (BEST intentionally violates this — checked separately.)
  const CrashCase param = GetParam();
  pmem::ShadowPmem mem(64 * 1024);
  ShadowSink sink(&mem);
  PolicyConfig config;
  config.cache_size = 8;
  config.sampler.burst_length = 500;
  auto policy = make_policy(param.kind, config);
  Rng rng(param.seed);

  for (int fase = 0; fase < 30; ++fase) {
    policy->on_fase_begin(sink);
    const int writes = 1 + static_cast<int>(rng.below(60));
    for (int w = 0; w < writes; ++w) {
      // Line 0 is the Atlas table's empty sentinel (never a real persistent
      // line in the runtime), so test addresses start at line 1.
      const PmAddr addr = (1 + rng.below(1023)) * 64 + rng.below(60);
      const std::uint32_t value = static_cast<std::uint32_t>(rng());
      mem.store_value(addr, value);
      policy->on_store(line_of(addr), sink);
    }
    policy->on_fase_end(sink);
    // Crash here: all completed-FASE data must be durable.
    ASSERT_EQ(mem.dirty_line_count(), 0u)
        << to_string(param.kind) << " left unflushed lines after FASE "
        << fase;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllValidPolicies, PolicyCrashConsistency,
    ::testing::Values(CrashCase{PolicyKind::kEager, 1},
                      CrashCase{PolicyKind::kLazy, 2},
                      CrashCase{PolicyKind::kAtlas, 3},
                      CrashCase{PolicyKind::kSoftCache, 4},
                      CrashCase{PolicyKind::kSoftCacheOffline, 5},
                      CrashCase{PolicyKind::kEager, 6},
                      CrashCase{PolicyKind::kLazy, 7},
                      CrashCase{PolicyKind::kAtlas, 8},
                      CrashCase{PolicyKind::kSoftCache, 9},
                      CrashCase{PolicyKind::kSoftCacheOffline, 10}));

TEST(BestPolicy, IsNotCrashConsistent) {
  // Sanity for the harness: BEST must fail the durability property (it is
  // the invalid upper bound, paper Section IV-A).
  pmem::ShadowPmem mem(4096);
  ShadowSink sink(&mem);
  auto policy = make_policy(PolicyKind::kBest);
  policy->on_fase_begin(sink);
  mem.store_value<int>(0, 99);
  policy->on_store(0, sink);
  policy->on_fase_end(sink);
  EXPECT_GT(mem.dirty_line_count(), 0u);
  mem.crash();
  EXPECT_EQ(mem.load_value<int>(0), 0);  // data lost
}

// --- flush-ratio ordering property ----------------------------------------------------

TEST(PolicyOrdering, LaLeqScLeqAtLeqEr) {
  // Paper Table III ordering on any trace: LA <= SC(best size) and
  // AT <= ER; SC is never worse than AT given the adapted size.
  Rng rng(99);
  std::vector<std::vector<LineAddr>> fases;
  for (int f = 0; f < 50; ++f) {
    std::vector<LineAddr> lines;
    for (int rep = 0; rep < 8; ++rep) {
      for (LineAddr a = 1; a <= 18; ++a) lines.push_back(a);
    }
    fases.push_back(std::move(lines));
  }

  auto count = [&](PolicyKind kind, const PolicyConfig& config) {
    auto p = make_policy(kind, config);
    RecordingSink sink;
    for (const auto& f : fases) run_fase(*p, sink, f);
    return sink.flushed.size();
  };

  PolicyConfig config;
  config.atlas_table_size = 8;
  config.cache_size = 20;  // SC-offline at the right size
  const auto er = count(PolicyKind::kEager, config);
  const auto la = count(PolicyKind::kLazy, config);
  const auto at = count(PolicyKind::kAtlas, config);
  const auto sc = count(PolicyKind::kSoftCacheOffline, config);

  EXPECT_LE(la, sc);
  EXPECT_LE(sc, at);
  EXPECT_LE(at, er);
  EXPECT_EQ(la, sc);  // working set fits: SC reaches the lower bound
}

}  // namespace
}  // namespace nvc::core
