// Tests for thread grouping by write-locality similarity (core/thread_groups,
// the paper's Section III-C future-work extension).
#include <gtest/gtest.h>

#include <vector>

#include "core/thread_groups.hpp"

namespace nvc::core {
namespace {

Mrc step(std::size_t knee, std::size_t max_size = 50, double high = 0.9,
         double low = 0.1) {
  std::vector<double> mr(max_size);
  for (std::size_t c = 1; c <= max_size; ++c) {
    mr[c - 1] = c < knee ? high : low;
  }
  return Mrc(std::move(mr));
}

TEST(MrcDistance, ZeroForIdenticalCurves) {
  EXPECT_DOUBLE_EQ(mrc_distance(step(10), step(10)), 0.0);
}

TEST(MrcDistance, GrowsWithKneeSeparation) {
  const double near = mrc_distance(step(10), step(12));
  const double far = mrc_distance(step(10), step(40));
  EXPECT_LT(near, far);
  EXPECT_GT(far, 0.3);
}

TEST(ThreadGroups, IdenticalThreadsCollapseToOneGroup) {
  const std::vector<Mrc> mrcs(8, step(23));
  const ThreadGroups groups = group_threads(mrcs);
  EXPECT_EQ(groups.num_groups(), 1u);
  for (const std::size_t g : groups.group_of) EXPECT_EQ(g, 0u);
  EXPECT_EQ(groups.group_size[0], 23u);
}

TEST(ThreadGroups, DistinctLocalitiesStaySeparate) {
  std::vector<Mrc> mrcs{step(5), step(5), step(40), step(40)};
  const ThreadGroups groups = group_threads(mrcs);
  EXPECT_EQ(groups.num_groups(), 2u);
  EXPECT_EQ(groups.group_of[0], groups.group_of[1]);
  EXPECT_EQ(groups.group_of[2], groups.group_of[3]);
  EXPECT_NE(groups.group_of[0], groups.group_of[2]);
  // Each group's size matches its knee.
  const std::size_t g01 = groups.group_of[0];
  const std::size_t g23 = groups.group_of[2];
  EXPECT_EQ(groups.group_size[g01], 5u);
  EXPECT_EQ(groups.group_size[g23], 40u);
}

TEST(ThreadGroups, NearIdenticalCurvesMergeWithinTolerance) {
  // Knees at 20 and 21 differ at a single size: distance 0.8/50 = 0.016,
  // inside the default 0.05 tolerance.
  std::vector<Mrc> mrcs{step(20), step(21)};
  const ThreadGroups groups = group_threads(mrcs);
  EXPECT_EQ(groups.num_groups(), 1u);
}

TEST(ThreadGroups, ZeroToleranceKeepsSingletons) {
  std::vector<Mrc> mrcs{step(20), step(21), step(22)};
  ThreadGroupConfig config;
  config.merge_tolerance = 0.0;
  const ThreadGroups groups = group_threads(mrcs, config);
  EXPECT_EQ(groups.num_groups(), 3u);
}

TEST(ThreadGroups, SingleThread) {
  const ThreadGroups groups = group_threads({step(8)});
  EXPECT_EQ(groups.num_groups(), 1u);
  EXPECT_EQ(groups.group_size[0], 8u);
}

TEST(ThreadGroups, GroupSizeSelectedFromMergedCurve) {
  // Two curves whose average still has the dominant knee at 25.
  std::vector<Mrc> mrcs{step(25, 50, 0.9, 0.1), step(25, 50, 0.85, 0.12)};
  const ThreadGroups groups = group_threads(mrcs);
  ASSERT_EQ(groups.num_groups(), 1u);
  EXPECT_EQ(groups.group_size[0], 25u);
}

TEST(ThreadGroups, ManyThreadsTwoPhasesScaleDown) {
  // 16 threads, half with small knees, half with large ones: sampling cost
  // collapses from 16 analyses to 2.
  std::vector<Mrc> mrcs;
  for (int i = 0; i < 8; ++i) mrcs.push_back(step(6));
  for (int i = 0; i < 8; ++i) mrcs.push_back(step(35));
  const ThreadGroups groups = group_threads(mrcs);
  EXPECT_EQ(groups.num_groups(), 2u);
}

}  // namespace
}  // namespace nvc::core
