// Tests for the persistent containers (runtime/pcontainers): durability
// across runtime re-opens and failure atomicity of container mutations.
#include <gtest/gtest.h>

#include <unistd.h>

#include <string>

#include "pmem/pmem_region.hpp"
#include "runtime/pcontainers.hpp"

namespace nvc::runtime {
namespace {

std::string unique_name(const char* base) {
  static int counter = 0;
  return std::string(base) + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter++);
}

RuntimeConfig config_for(const std::string& name, bool fresh = true,
                         bool logging = false) {
  RuntimeConfig config;
  config.region_name = name;
  config.region_size = 8u << 20;
  config.fresh = fresh;
  config.undo_logging = logging;
  config.policy = core::PolicyKind::kSoftCacheOffline;
  config.flush = pmem::FlushKind::kCountOnly;
  return config;
}

struct PContainersTest : public ::testing::Test {
  PContainersTest() : name(unique_name("pcont")) {}
  ~PContainersTest() override {
    pmem::PmemRegion::destroy(name);
    pmem::PmemRegion::destroy(name + ".log");
  }
  std::string name;
};

TEST_F(PContainersTest, PushPopIndex) {
  Runtime rt(config_for(name));
  auto vec = PVector<int>::create(rt, 16);
  EXPECT_TRUE(vec.empty());
  {
    FaseScope fase(rt);
    for (int i = 0; i < 10; ++i) vec.push_back(i * i);
  }
  EXPECT_EQ(vec.size(), 10u);
  EXPECT_EQ(vec[3], 9);
  EXPECT_EQ(vec[9], 81);
  {
    FaseScope fase(rt);
    vec.pop_back();
    vec.assign(0, -1);
  }
  EXPECT_EQ(vec.size(), 9u);
  EXPECT_EQ(vec[0], -1);
  rt.destroy_storage();
}

TEST_F(PContainersTest, IterationMatchesContents) {
  Runtime rt(config_for(name));
  auto vec = PVector<double>::create(rt, 8);
  {
    FaseScope fase(rt);
    vec.push_back(1.5);
    vec.push_back(2.5);
  }
  double sum = 0;
  for (const double v : vec) sum += v;
  EXPECT_DOUBLE_EQ(sum, 4.0);
  rt.destroy_storage();
}

TEST_F(PContainersTest, CapacityEnforced) {
  Runtime rt(config_for(name));
  auto vec = PVector<int>::create(rt, 2);
  FaseScope fase(rt);
  vec.push_back(1);
  vec.push_back(2);
  EXPECT_DEATH(vec.push_back(3), "full");
  rt.destroy_storage();
}

TEST_F(PContainersTest, SurvivesRuntimeReopen) {
  {
    Runtime rt(config_for(name));
    auto vec = PVector<std::uint64_t>::create(rt, 32);
    {
      FaseScope fase(rt);
      for (std::uint64_t i = 0; i < 5; ++i) vec.push_back(i + 100);
    }
    rt.set_root(vec.root());
    rt.thread_flush();
  }
  Runtime rt(config_for(name, /*fresh=*/false));
  auto vec = PVector<std::uint64_t>::open(rt, rt.get_root());
  ASSERT_EQ(vec.size(), 5u);
  EXPECT_EQ(vec[0], 100u);
  EXPECT_EQ(vec[4], 104u);
  rt.destroy_storage();
}

TEST_F(PContainersTest, OpenRejectsForeignMemory) {
  Runtime rt(config_for(name));
  auto* garbage = rt.pm_alloc(256);
  EXPECT_DEATH((void)PVector<int>::open(rt, garbage), "not a PVector");
  rt.destroy_storage();
}

TEST_F(PContainersTest, PushBackIsFailureAtomicWithUndoLog) {
  std::uint64_t root_offset = 0;
  {
    Runtime rt(config_for(name, true, /*logging=*/true));
    auto vec = PVector<int>::create(rt, 8);
    rt.set_root(vec.root());
    root_offset = rt.allocator().offset_of(vec.root());
    {
      FaseScope fase(rt);
      vec.push_back(1);
    }
    // Crash mid-FASE: the push below must be rolled back entirely — both
    // the element write and the size bump.
    rt.fase_begin();
    vec.push_back(2);
    EXPECT_EQ(vec.size(), 2u);
    // Runtime destroyed with the FASE open (process kill).
  }
  Runtime rt(config_for(name, /*fresh=*/false, /*logging=*/true));
  ASSERT_TRUE(rt.needs_recovery());
  rt.recover();
  auto vec =
      PVector<int>::open(rt, rt.allocator().resolve(root_offset));
  EXPECT_EQ(vec.size(), 1u);  // the uncommitted push is gone
  EXPECT_EQ(vec[0], 1);
  rt.destroy_storage();
}

TEST_F(PContainersTest, CounterPersistsAndSaturates) {
  {
    Runtime rt(config_for(name));
    auto counter = PCounter::create(rt);
    rt.set_root(counter.root());
    FaseScope fase(rt);
    counter.add(7);
    counter.add(3);
    EXPECT_EQ(counter.get(), 10u);
  }
  Runtime rt(config_for(name, /*fresh=*/false));
  auto counter = PCounter::open(rt, rt.get_root());
  EXPECT_EQ(counter.get(), 10u);
  {
    FaseScope fase(rt);
    counter.add(~std::uint64_t{0});  // overflow saturates
  }
  EXPECT_EQ(counter.get(), ~std::uint64_t{0});
  rt.destroy_storage();
}

}  // namespace
}  // namespace nvc::runtime
