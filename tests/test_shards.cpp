// Tests for the SHARDS-style sampled reuse-distance MRC (core/shards).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/shards.hpp"

namespace nvc::core {
namespace {

std::vector<LineAddr> loop_trace(std::size_t working_set, std::size_t reps) {
  std::vector<LineAddr> trace;
  trace.reserve(working_set * reps);
  for (std::size_t r = 0; r < reps; ++r) {
    for (LineAddr a = 0; a < working_set; ++a) trace.push_back(a * 977 + 3);
  }
  return trace;
}

TEST(Shards, FullRateMatchesExactMattson) {
  // threshold == modulus samples everything: must equal the exact MRC.
  Rng rng(9);
  std::vector<LineAddr> trace;
  for (int i = 0; i < 3000; ++i) trace.push_back(rng.below(40));
  ShardsConfig config;
  config.threshold = 16;
  config.modulus = 16;
  const Mrc sampled = mrc_shards(trace, 50, config);
  const Mrc exact = mrc_exact_lru(trace, 50);
  for (std::size_t c = 1; c <= 50; ++c) {
    EXPECT_NEAR(sampled.at(c), exact.at(c), 1e-12) << c;
  }
}

TEST(Shards, SamplingIsSpatial) {
  // The same address is either always or never sampled.
  ShardsConfig config;
  config.threshold = 1;
  config.modulus = 4;
  for (LineAddr a = 0; a < 1000; ++a) {
    const bool first = shards_samples(a, config);
    EXPECT_EQ(first, shards_samples(a, config));
  }
}

TEST(Shards, SampleRateApproximatesConfig) {
  ShardsConfig config;
  config.threshold = 1;
  config.modulus = 8;
  std::size_t sampled = 0;
  for (LineAddr a = 0; a < 100000; ++a) {
    if (shards_samples(a, config)) ++sampled;
  }
  EXPECT_NEAR(static_cast<double>(sampled) / 100000.0, 0.125, 0.01);
}

TEST(Shards, QuarterRateFindsTheLoopKnee) {
  // 40-line loop: the exact MRC cliffs at 40; the sampled estimate must
  // cliff in the same region.
  const auto trace = loop_trace(40, 200);
  ShardsConfig config;
  config.threshold = 1;
  config.modulus = 4;
  const Mrc sampled = mrc_shards(trace, 50, config);
  EXPECT_GT(sampled.at(30), 0.8);  // below the loop: thrash
  EXPECT_LT(sampled.at(48), 0.2);  // above it: hits
}

TEST(Shards, EstimateTracksExactOnSkewedTraffic) {
  Rng rng(4);
  std::vector<LineAddr> trace;
  for (int i = 0; i < 60000; ++i) {
    const double u = rng.uniform();
    trace.push_back(static_cast<LineAddr>(u * u * 120));
  }
  ShardsConfig config;
  config.threshold = 1;
  config.modulus = 4;
  const Mrc sampled = mrc_shards(trace, 50, config);
  const Mrc exact = mrc_exact_lru(trace, 50);
  // Pointwise agreement within a few percent at representative sizes.
  for (const std::size_t c : {5u, 10u, 20u, 35u, 50u}) {
    EXPECT_NEAR(sampled.at(c), exact.at(c), 0.09) << "size " << c;  // 1/4-rate variance
  }
}

TEST(Shards, NoSampledAddressesYieldsAllMisses) {
  // A trace whose addresses all hash outside the threshold: the estimator
  // degrades to "no information" (miss ratio 1) rather than crashing.
  ShardsConfig config;
  config.threshold = 1;
  config.modulus = 1u << 30;  // nothing realistically sampled
  std::vector<LineAddr> trace(100, 7);
  if (!shards_samples(7, config)) {
    const Mrc mrc = mrc_shards(trace, 10, config);
    for (std::size_t c = 1; c <= 10; ++c) EXPECT_DOUBLE_EQ(mrc.at(c), 1.0);
  }
}

}  // namespace
}  // namespace nvc::core
