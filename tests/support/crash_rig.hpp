// Reusable freeze/restart rig for crash-consistency tests (DESIGN.md §9).
//
// A miniature FASE engine — caching policy + LogOrderedSink + UndoLog per
// context — runs against the ShadowPmem crash model with both the data
// regions and the log segments living inside one shadow image. Every pstore
// and every attempted line flush (data or log path) atomically claims a
// monotonically increasing *event index*; freeze_at(e) models power failing
// at that instant: flushes that claim a later index are dropped, exactly as
// write-backs still in flight at a power cut never persist. recovered_data()
// then restarts from the durable image, runs log recovery, and returns what
// a restarted process would see — the caller checks it against the set of
// committed states.
//
// Grown out of tests/test_crash_matrix.cpp (which now uses this rig
// unchanged in behavior) and generalized for the crash-state fuzzer:
//
//   * several logical contexts (runtime threads), each with a private data
//     region, policy, and log segment, sharing the event clock and freeze;
//   * byte-granularity pstores of any size/alignment, mirroring
//     Runtime::pstore exactly — piecewise undo records, the
//     write-after-enqueue hazard sync, per-touched-line policy reports;
//   * nested FASEs (outermost-only policy/commit) and persist_barrier;
//   * a *deterministic* flush-behind mode (manual_pipeline): the ring is
//     never served by the background worker — queued write-backs run only
//     when the test's virtual scheduler calls pump_flush() — so the whole
//     interleaving replays from a seed on one OS thread;
//   * an online-sampling policy mode with synchronous or manual-async burst
//     analysis (pump_analysis()), covering the analysis axis of the
//     mode matrix.
//
// In deterministic configurations the rig additionally freezes the shadow
// image itself once the event clock passes the freeze point (belt and
// braces: no flush path, however indirect, can leak past the power cut).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/elision_sink.hpp"
#include "core/fault_sink.hpp"
#include "core/flush_pipeline.hpp"
#include "core/log_ordered_sink.hpp"
#include "core/policy.hpp"
#include "pmem/fault.hpp"
#include "pmem/shadow.hpp"
#include "runtime/undo_log.hpp"

namespace nvc::testing {

struct CrashRigConfig {
  runtime::LogSyncMode mode = runtime::LogSyncMode::kStrict;
  /// Flush-behind pipeline in the data path (ring + AsyncFlushSink).
  bool async_flush = false;
  /// With async_flush: open a manual channel the background worker never
  /// sweeps; queued lines are written back only by pump_flush() and by the
  /// helping drain. Deterministic — the fuzzer's configuration.
  bool manual_pipeline = false;
  /// SC online policy (bursty sampling + knee-selected resizes at FASE
  /// boundaries) instead of SC-offline at a fixed size.
  bool online_policy = false;
  /// With online_policy: hand burst analysis to a manual channel, run only
  /// by pump_analysis() (deterministic async analysis). Without it the
  /// analysis runs synchronously inside the completing on_store().
  bool async_analysis = false;

  std::size_t contexts = 1;
  std::size_t data_lines = 8;         // per-context data region, in lines
  std::size_t log_bytes = 32u << 10;  // per-context log segment
  std::size_t cache_size = 2;  // tiny: mid-FASE evictions => many epochs
  std::size_t flush_ring = 8;  // small: overflow fallback gets exercised

  /// Media-fault dimension: when enabled(), the rig owns a FaultInjector
  /// attached to the shadow image, wraps every sink in FaultTolerantSink
  /// (retry/quarantine with the config's RetryPolicy fields), mirrors the
  /// runtime's degradation latches, and lets write-backs racing the power
  /// cut land torn. Decisions derive from fault.seed, so runs replay.
  pmem::FaultConfig fault;
  /// Max lines of the write-back burst racing the power cut that may land
  /// torn/dropped (the modeled write-queue depth; see CrashRig::maybe_tear).
  std::size_t tear_burst = 8;
  /// Online sampler knobs (scaled down so short scripts complete bursts).
  std::uint64_t burst_length = 48;
  std::uint64_t hibernation_length = 32;
  /// Write-admission dimension (DESIGN.md §12): bypassed stores write
  /// through the same LogOrderedSink route as evictions, so the durability
  /// oracle must hold unchanged under every mode. kReuse attaches only in
  /// online_policy configurations (make_policy's rule).
  core::AdmitMode admission = core::AdmitMode::kAlways;

  /// Flush-elision dimension (DESIGN.md §13): one FlushElisionTable shared
  /// by all contexts, an ElidingSink below each LogOrderedSink, and (async
  /// mode) a RetiringSink worker-side below the ring. The durability oracle
  /// must hold unchanged: elision may only drop write-backs whose bytes an
  /// already-scheduled write-back carries, and the commit-point drain
  /// re-flushes elided lines still pending.
  bool elide = false;
  /// Checker-validation hook: arm FlushElisionTable::set_bug_revert_retire
  /// on the rig's table, the "reverted flush-pending decrement". The fuzz
  /// harness must catch it (quiescence invariant / durability oracle).
  bool elide_bug_revert_retire = false;
};

class CrashRig {
 public:
  explicit CrashRig(const CrashRigConfig& config);
  ~CrashRig();

  CrashRig(const CrashRig&) = delete;
  CrashRig& operator=(const CrashRig&) = delete;

  // --- script surface (mirrors the Runtime API) ----------------------------

  void fase_begin(std::size_t ctx = 0);
  /// Returns true when the outermost end committed the FASE durably; false
  /// for inner ends, suspended commits (quarantine), and failed commits —
  /// the caller's oracle bookkeeping must not advance its committed
  /// snapshot on false.
  bool fase_end(std::size_t ctx = 0);

  /// Instrumented persistent store of `len` bytes at byte offset `addr` of
  /// context `ctx`'s data region. Must be inside a FASE.
  void pstore(std::size_t ctx, PmAddr addr, const void* bytes,
              std::size_t len);

  void pstore_u64(std::size_t ctx, std::size_t cell, std::uint64_t value) {
    pstore(ctx, cell * sizeof(std::uint64_t), &value, sizeof value);
  }

  /// Mid-FASE persistence barrier: flush everything the context's policy
  /// has buffered, without signalling a FASE boundary.
  void persist_barrier(std::size_t ctx = 0);

  // --- virtual-scheduler hooks (manual modes) ------------------------------

  /// Write back one queued line of `ctx`'s flush ring, if any (true when a
  /// line was flushed). No-op without a flush channel. `worker` is the
  /// virtual pool-worker index the simulated schedule charges the flush to
  /// (attribution only — the rig stays single-threaded deterministic).
  bool pump_flush(std::size_t ctx = 0, std::size_t worker = 0);

  /// Run one handed-off burst analysis of `ctx`'s sampler, if any (true
  /// when a job ran). No-op unless async_analysis. `worker` as above.
  bool pump_analysis(std::size_t ctx = 0, std::size_t worker = 0);

  // --- crash injection ------------------------------------------------------

  /// Power fails once `events()` reaches `event`: later flushes are lost.
  void freeze_at(std::uint64_t event) { freeze_event_ = event; }
  std::uint64_t events() const noexcept {
    return events_.load(std::memory_order_relaxed);
  }

  /// Restart after the (frozen) power failure: reload from the durable
  /// image, run log recovery for every context, persist the rolled-back
  /// bytes, and return the durable data region of `ctx` a restarted
  /// process would see. Recovery runs once; later calls return slices of
  /// the same recovered image.
  std::vector<std::uint8_t> recovered_data(std::size_t ctx = 0);

  /// Durable bytes of `ctx`'s data region, no crash/recovery.
  std::vector<std::uint8_t> durable_data(std::size_t ctx = 0) const;

  /// The entire durable image — all data regions followed by all log
  /// segments — with no crash/recovery applied. The corruption fuzzer
  /// freezes a run, snapshots this, mutates it, and hands it to the
  /// salvage pipeline (see image_data_offset/image_log_offset for layout).
  std::vector<std::uint8_t> durable_image() const;
  /// Byte offset of `ctx`'s data region within durable_image().
  PmAddr image_data_offset(std::size_t ctx) const noexcept {
    return data_offset(ctx);
  }
  /// Byte offset of `ctx`'s log segment within durable_image().
  PmAddr image_log_offset(std::size_t ctx) const noexcept {
    return log_offset(ctx);
  }
  std::size_t log_bytes() const noexcept { return config_.log_bytes; }

  // --- counters -------------------------------------------------------------

  std::uint64_t data_flushes() const noexcept;  // summed over contexts
  std::uint64_t log_fences() const noexcept;
  /// Stores written through by the admission filter (summed over contexts).
  std::uint64_t bypassed_stores() const noexcept;
  /// Elision dimension: write-backs skipped / drain re-flushes (summed).
  std::uint64_t elided_flushes() const noexcept;
  std::uint64_t elision_reflushes() const noexcept;
  const core::FlushElisionTable* elision_table() const noexcept {
    return elision_.get();
  }

  std::size_t contexts() const noexcept { return contexts_.size(); }
  std::size_t data_bytes() const noexcept {
    return config_.data_lines * kCacheLineSize;
  }

  // --- fault/health surface (mirrors runtime::HealthReport) ----------------

  const pmem::FaultInjector* injector() const noexcept {
    return injector_.get();
  }
  const core::FaultStats& fault_stats(std::size_t ctx = 0) const;
  bool flush_degraded(std::size_t ctx = 0) const;
  bool log_degraded(std::size_t ctx = 0) const;
  bool commit_suspended(std::size_t ctx = 0) const;
  std::uint64_t torn_flushes() const noexcept { return shadow_.torn_flushes(); }

 private:
  struct FreezeSink;
  struct ForwardSink;
  struct LiveSink;
  struct Context;

  PmAddr data_offset(std::size_t ctx) const noexcept {
    return ctx * data_bytes();
  }
  PmAddr log_offset(std::size_t ctx) const noexcept {
    return config_.contexts * data_bytes() + ctx * config_.log_bytes;
  }

  /// Claim the next event index (0 during pre-script setup, which cannot
  /// be frozen away).
  std::uint64_t claim_event();

  /// Torn-write hook, called by FreezeSink for post-freeze flushes: the
  /// gapless burst of write-backs racing the power cut (event indices
  /// freeze+1, freeze+2, … with no intervening event or fence, up to
  /// config_.tear_burst lines) models the in-flight write queue — each of
  /// its lines independently drops or persists a prefix, per the
  /// injector's pure per-line torn decision. See the .cpp comment for why
  /// the window-closing rules keep recovery sound.
  void maybe_tear(LineAddr line, std::uint64_t event);
  /// Post-cut fence observed: permanently close an open tear window.
  void note_fence();

  /// Degradation latches, evaluated at the outermost fase_begin.
  void maybe_degrade(Context& c);
  bool powered(std::uint64_t event) const noexcept {
    return event <= freeze_event_;
  }
  /// True when the whole run executes on the calling thread (no background
  /// worker in the interleaving): sync flushing, or a manual pipeline.
  bool deterministic() const noexcept {
    return !config_.async_flush || config_.manual_pipeline;
  }
  void recover_all();

  CrashRigConfig config_;
  pmem::ShadowPmem shadow_;
  std::unique_ptr<pmem::FaultInjector> injector_;  // null when faults off
  /// Elision dimension (null when config_.elide is off). Shared with the
  /// worker-side RetiringSink inside each context's FlushChannel.
  std::shared_ptr<core::FlushElisionTable> elision_;
  LineAddr log_shift_;  // pointer-line -> shadow-offset-line translation
  bool counting_ = false;
  bool recovered_ = false;
  std::atomic<std::uint64_t> events_{0};
  std::uint64_t freeze_event_ = ~std::uint64_t{0};
  /// Tear-window state (guarded by shadow_mutex_; see maybe_tear).
  std::size_t tear_depth_ = 0;
  std::uint64_t tear_last_event_ = 0;
  bool tear_closed_ = false;
  /// Serializes shadow-image access: in real-worker async mode the worker's
  /// write-back of a queued line may race the application thread's store to
  /// the same line (on hardware the coherent cache arbitrates; the shadow
  /// model needs a lock). Ordering between the two stays nondeterministic —
  /// that is the interleaving the crash matrix sweeps; the fuzzer removes
  /// it with manual_pipeline instead.
  std::mutex shadow_mutex_;
  std::vector<std::unique_ptr<Context>> contexts_;
};

}  // namespace nvc::testing
