#include "support/crash_rig.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace nvc::testing {

/// Freezeable sink: pointer-based lines are translated to shadow-offset
/// lines by `shift` (0 for the data path, whose lines already are shadow
/// offsets; the log writes through raw pointers into the shadow image).
struct CrashRig::FreezeSink final : core::FlushSink {
  FreezeSink(CrashRig* owner, LineAddr line_shift)
      : rig(owner), shift(line_shift) {}
  bool flush_line(LineAddr line) override {
    flushes.fetch_add(1, std::memory_order_relaxed);
    // Atomically claim this flush's event index: in real-worker async mode
    // the background worker and the application thread race for slots, and
    // the power-failure cut must be a single consistent point.
    const std::uint64_t e = rig->claim_event();
    if (!rig->powered(e)) {
      // Power is off: the line never persists — except that write-backs
      // racing the cut may land torn (fault dimension; no-op when no
      // injector or the line drew "no tear"). Either way report success:
      // software running before the cut can never observe this outcome.
      rig->maybe_tear(line - shift, e);
      return true;
    }
    std::lock_guard<std::mutex> lock(rig->shadow_mutex_);
    return rig->shadow_.flush_line(line - shift);
  }
  void drain() override {
    fences.fetch_add(1, std::memory_order_relaxed);
    // A post-cut fence closes the tear window (see CrashRig::maybe_tear):
    // ordering software issued after the cut never completed, so nothing
    // sequenced behind this fence can have reached the write queue.
    if (!rig->powered(rig->events())) rig->note_fence();
  }
  CrashRig* rig;
  LineAddr shift;
  std::atomic<std::uint64_t> flushes{0};
  std::atomic<std::uint64_t> fences{0};
};

/// Worker-side sink for the async data path: the channel owns this thin
/// forwarder while the FreezeSink (and its counters) stay with the rig.
struct CrashRig::ForwardSink final : core::FlushSink {
  explicit ForwardSink(core::FlushSink* t) : target(t) {}
  bool flush_line(LineAddr line) override { return target->flush_line(line); }
  void drain() override {}
  core::FlushSink* target;
};

/// Recovery-time sink: never frozen (the machine is back up).
struct CrashRig::LiveSink final : core::FlushSink {
  LiveSink(pmem::ShadowPmem* target, LineAddr line_shift)
      : shadow(target), shift(line_shift) {}
  bool flush_line(LineAddr line) override {
    return shadow->flush_line(line - shift);
  }
  void drain() override {}
  pmem::ShadowPmem* shadow;
  LineAddr shift;
};

/// One logical runtime thread: private policy, log segment, and (in async
/// mode) flush ring, all against the rig's shared shadow image and event
/// clock. Async members sit between the sinks they use and `ordered`
/// (which points at async_sink): destruction drains the ring while the
/// shadow and the FreezeSink are still alive.
struct CrashRig::Context {
  Context(CrashRig* rig, LineAddr log_shift)
      : data_sink(rig, /*shift=*/0), log_sink(rig, log_shift) {}

  FreezeSink data_sink;
  FreezeSink log_sink;
  std::unique_ptr<core::Policy> policy;
  core::SoftCachePolicy* soft = nullptr;  // set in online_policy mode
  std::unique_ptr<runtime::UndoLog> log;
  int fase_depth = 0;
  std::shared_ptr<core::FlushChannel> flush_channel;
  /// Elision + async: AsyncFlushSink's ring-full/overflow fallback executes
  /// the write-back locally, bypassing the worker-side RetiringSink — so
  /// the fallback itself must retire (every owner path retires exactly
  /// once, whichever side performs the write).
  std::unique_ptr<core::RetiringSink> retiring_fallback;
  std::unique_ptr<core::AsyncFlushSink> async_sink;
  /// Elision dimension: sits between `ordered` and the async/sync path
  /// (declared before `ordered` so destruction order mirrors the stack).
  std::unique_ptr<core::ElidingSink> eliding;
  std::unique_ptr<core::LogOrderedSink> ordered;

  // --- fault dimension (members live only when the injector is attached;
  // the sinks above are used directly otherwise, so the fault-free event
  // sequence is bit-identical to the pre-fault rig) ------------------------
  core::FaultStats faults;
  std::unique_ptr<core::FaultTolerantSink> ft_data;  // retry over data_sink
  std::unique_ptr<core::FaultTolerantSink> ft_log;   // retry over log_sink
  /// Sync data path used after the async→sync latch (and, fault-mode
  /// sync-flush, from the start): ordering decorator over the retrying
  /// synchronous sink.
  std::unique_ptr<core::LogOrderedSink> ordered_sync;
  bool flush_degraded = false;
  bool log_degraded = false;
  /// One-way: a quarantined line means some pre-crash state of this
  /// context may be unrecoverable *if we moved the commit point past it*;
  /// never committing again keeps recovery pinned at the last good commit
  /// (all-or-nothing holds, data past it is sacrificed).
  bool commit_suspended = false;

  /// The sink FASE traffic flows through right now.
  core::FlushSink& route() {
    return flush_degraded ? *ordered_sync : *ordered;
  }
};

CrashRig::CrashRig(const CrashRigConfig& config)
    : config_(config),
      shadow_(config.contexts *
              (config.data_lines * kCacheLineSize + config.log_bytes)),
      log_shift_(line_of(reinterpret_cast<PmAddr>(shadow_.volatile_base()))) {
  NVC_REQUIRE(config.contexts >= 1);
  NVC_REQUIRE(config.log_bytes % kCacheLineSize == 0);
  NVC_REQUIRE(!config.async_analysis || config.online_policy,
              "async analysis is a mode of the online policy");
  if (config_.fault.enabled()) {
    // Attached before any context formats its log, so permanently bad
    // lines can hit even the setup write-backs (a stillborn context whose
    // header never persists is a legal fault outcome recovery must handle).
    injector_ = std::make_unique<pmem::FaultInjector>(config_.fault);
    shadow_.set_fault_injector(injector_.get());
  }
  if (config_.elide) {
    // One table for all contexts: cross-context dedup is the dimension
    // under test (a line evicted by context A while context B's write-back
    // of it is still queued gets elided).
    elision_ = std::make_shared<core::FlushElisionTable>();
    if (config_.elide_bug_revert_retire) {
      elision_->set_bug_revert_retire(true);
    }
  }
  const core::RetryPolicy retry{config_.fault.max_retries,
                                config_.fault.backoff_ns,
                                config_.fault.backoff_cap_ns};
  for (std::size_t i = 0; i < config_.contexts; ++i) {
    auto c = std::make_unique<Context>(this, log_shift_);
    if (injector_) {
      c->ft_data = std::make_unique<core::FaultTolerantSink>(&c->data_sink,
                                                             &c->faults, retry);
      c->ft_log = std::make_unique<core::FaultTolerantSink>(&c->log_sink,
                                                            &c->faults, retry);
    }
    core::PolicyConfig pc;
    pc.cache_size = config_.cache_size;
    pc.admission.mode = config_.admission;
    if (config_.online_policy) {
      pc.sampler.burst_length = config_.burst_length;
      pc.sampler.hibernation_length = config_.hibernation_length;
      // Deterministic async: the analysis channel is never served by the
      // background worker; bursts run only under pump_analysis().
      pc.sampler.manual_analysis = config_.async_analysis;
      c->policy = core::make_policy(core::PolicyKind::kSoftCache, pc);
      c->soft = static_cast<core::SoftCachePolicy*>(c->policy.get());
    } else {
      c->policy = core::make_policy(core::PolicyKind::kSoftCacheOffline, pc);
    }
    core::FlushSink* sync_data =
        c->ft_data ? static_cast<core::FlushSink*>(c->ft_data.get())
                   : &c->data_sink;
    core::FlushSink* log_path =
        c->ft_log ? static_cast<core::FlushSink*>(c->ft_log.get())
                  : &c->log_sink;
    c->log = std::make_unique<runtime::UndoLog>(
        shadow_.volatile_base() + log_offset(i), config_.log_bytes, log_path,
        config_.mode);
    c->log->format();  // pre-script: not an event, cannot be frozen away
    if (config_.async_flush) {
      // Flush-behind data path: a tiny ring (overflow falls back to the
      // synchronous FreezeSink) drained by the background worker — or, in
      // manual mode, only by pump_flush() and the helping drain. With
      // faults the retrying decorator sits worker-side, below the ring:
      // retries and quarantine happen where the write-back executes.
      std::unique_ptr<core::FlushSink> worker_sink =
          std::make_unique<ForwardSink>(&c->data_sink);
      if (injector_) {
        worker_sink = std::make_unique<core::FaultTolerantSink>(
            std::move(worker_sink), &c->faults, retry);
      }
      if (elision_) {
        // Outermost worker-side: the line retires before the write-back
        // starts (decrement-before-write), and before any retries — a
        // retried write is still the same scheduled write-back.
        worker_sink = std::make_unique<core::RetiringSink>(
            std::move(worker_sink), elision_);
      }
      c->flush_channel =
          config_.manual_pipeline
              ? core::FlushWorker::shared().open_manual_channel(
                    std::move(worker_sink), config_.flush_ring)
              : core::FlushWorker::shared().open_channel(
                    std::move(worker_sink), config_.flush_ring);
      core::FlushSink* fallback = sync_data;
      if (elision_) {
        c->retiring_fallback =
            std::make_unique<core::RetiringSink>(sync_data, elision_);
        fallback = c->retiring_fallback.get();
      }
      c->async_sink =
          std::make_unique<core::AsyncFlushSink>(c->flush_channel, fallback);
    }
    core::FlushSink* data_path =
        c->async_sink ? static_cast<core::FlushSink*>(c->async_sink.get())
                      : sync_data;
    if (elision_) {
      // Below the LogOrderedSink (the log sync runs whether or not the
      // media write is elided), above the ring/sync backend. In sync mode
      // the owner retires inline (immediate); in async mode the worker's
      // RetiringSink handles it.
      c->eliding = std::make_unique<core::ElidingSink>(
          data_path, elision_, /*immediate=*/!config_.async_flush);
      data_path = c->eliding.get();
    }
    c->ordered = std::make_unique<core::LogOrderedSink>(data_path,
                                                        c->log.get());
    if (injector_) {
      // Degraded route bypasses elision (mirrors Runtime): once the media
      // misbehaves, every write-back executes, none is deduped away.
      c->ordered_sync =
          std::make_unique<core::LogOrderedSink>(sync_data, c->log.get());
    }
    contexts_.push_back(std::move(c));
  }
  counting_ = true;
}

CrashRig::~CrashRig() = default;

void CrashRig::maybe_degrade(Context& c) {
  if (!injector_) return;
  const bool trigger =
      c.faults.quarantined_count() > 0 ||
      c.faults.transients() >= config_.fault.degrade_after;
  if (!trigger) return;
  if (config_.async_flush && !c.flush_degraded) {
    // Async→sync latch (mirrors Runtime): drain the ring so no line is
    // stranded behind the reroute, then send all further traffic through
    // the synchronous retrying path.
    c.async_sink->drain();
    c.flush_degraded = true;
  }
  if (config_.mode == runtime::LogSyncMode::kBatched && !c.log_degraded &&
      c.log->mode() == runtime::LogSyncMode::kBatched) {
    // Batched→strict latch: persist what is pending under the old
    // discipline (best effort — a failure here surfaces as a transient
    // and the per-record syncs retry the same range), then every record
    // is durable before its pstore returns.
    c.log->sync();
    c.log->degrade_to_strict();
    c.log_degraded = true;
  }
}

void CrashRig::fase_begin(std::size_t ctx) {
  Context& c = *contexts_[ctx];
  if (c.fase_depth++ == 0) {
    maybe_degrade(c);
    c.policy->on_fase_begin(c.route());
  }
}

bool CrashRig::fase_end(std::size_t ctx) {
  Context& c = *contexts_[ctx];
  NVC_REQUIRE(c.fase_depth > 0, "fase_end without matching fase_begin");
  if (--c.fase_depth != 0) return false;
  // Mirrors Runtime::fase_end: the policy flushes its buffered lines
  // through the ordering decorator (log sync precedes each data flush),
  // then the log commits — the FASE's atomic commit point.
  c.policy->on_fase_end(c.route());
  if (c.commit_suspended) return false;
  if (c.faults.quarantined_count() > 0) {
    // A quarantined line means some write-back of this context is
    // permanently lost. Committing would truncate the undo records that
    // still cover the lost data; suspending commits instead pins recovery
    // at the last good commit, preserving all-or-nothing.
    c.commit_suspended = true;
    return false;
  }
  return c.log->commit();
}

void CrashRig::pstore(std::size_t ctx, PmAddr addr, const void* bytes,
                      std::size_t len) {
  NVC_REQUIRE(len > 0);
  NVC_REQUIRE(addr + len <= data_bytes(), "pstore past region end");
  Context& c = *contexts_[ctx];
  NVC_REQUIRE(c.fase_depth > 0, "rig pstores must be inside a FASE");
  const bool async_route = c.async_sink != nullptr && !c.flush_degraded;
  const PmAddr base = data_offset(ctx) + addr;
  // Log the old bytes before overwriting, in kMaxPayload pieces (mirrors
  // Runtime::pstore; the token is the shadow offset, so recovery stores
  // the payload straight back).
  std::vector<std::uint8_t> old(len);
  {
    std::lock_guard<std::mutex> lock(shadow_mutex_);
    shadow_.load(base, old.data(), len);
  }
  std::size_t done = 0;
  while (done < len) {
    const auto piece = static_cast<std::uint32_t>(
        std::min<std::size_t>(len - done, runtime::UndoLog::kMaxPayload));
    c.log->record(base + done, old.data() + done, piece);
    done += piece;
  }
  const LineAddr first = line_of(base);
  const LineAddr last = line_of(base + len - 1);
  if (async_route || elision_ != nullptr) {
    // Write-after-enqueue hazard (DESIGN.md §8, mirrors Runtime::pstore):
    // a touched line may still be queued, so its eventual write-back can
    // carry this store's bytes — the records covering them must be durable
    // before the data write below. With elision the hazard also crosses
    // contexts: a pending() line means some context's announced write-back
    // has not started and may carry these bytes (DESIGN.md §13).
    for (LineAddr line = first; line <= last; ++line) {
      const bool inflight = async_route && c.async_sink->maybe_inflight(line);
      const bool cross = elision_ != nullptr && elision_->pending(line);
      if (inflight || cross) {
        if (!c.log->sync() && async_route) {
          // Records will not persist (log media failing): the queued
          // write-back must not carry the new bytes either. Draining the
          // ring retires it with the pre-store image before the memcpy.
          c.async_sink->drain();
        }
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(shadow_mutex_);
    shadow_.store(base, bytes, len);
  }
  claim_event();
  for (LineAddr line = first; line <= last; ++line) {
    c.policy->on_store(line, c.route());
  }
}

void CrashRig::persist_barrier(std::size_t ctx) {
  Context& c = *contexts_[ctx];
  c.policy->flush_buffered(c.route());
}

bool CrashRig::pump_flush(std::size_t ctx, std::size_t worker) {
  Context& c = *contexts_[ctx];
  return c.flush_channel != nullptr && c.flush_channel->pump_one(worker);
}

bool CrashRig::pump_analysis(std::size_t ctx, std::size_t worker) {
  Context& c = *contexts_[ctx];
  return c.soft != nullptr && c.soft->pump_analysis(worker);
}

void CrashRig::maybe_tear(LineAddr line, std::uint64_t event) {
  // The write queue racing the power cut can hold *several* lines: every
  // flush in the gapless run of post-cut events freeze+1, freeze+2, … was
  // issued back-to-back with no intervening activity, i.e. it sat in the
  // same in-flight burst when power failed. Each such line independently
  // drops or lands torn, per the injector's pure per-line tear decision.
  //
  // What keeps recovery sound is when the window *closes* — permanently:
  //   * on any event-index gap (a pstore or powered flush claimed an index:
  //     the burst was over, later flushes are ordinary post-cut activity
  //     that never reached the queue);
  //   * on any post-cut fence (FreezeSink::drain): ordering issued after
  //     the cut never completed, so flushes sequenced behind it were never
  //     issued — in particular a batched log sync's fence sits between the
  //     log flushes and the data flushes it orders, so a data line can
  //     never tear in ahead of the (dropped) records that cover it;
  //   * at config_.tear_burst lines (a write queue has finite depth).
  // Within an open window every log sync ordered before the burst claimed
  // pre-cut events and is durable, so torn-in data bytes are always covered
  // by durable undo records, and torn log lines are self-certifying.
  if (!injector_) return;
  std::lock_guard<std::mutex> lock(shadow_mutex_);
  if (tear_closed_) return;
  if (event == freeze_event_ + 1) {
    tear_depth_ = 1;
  } else if (tear_depth_ > 0 && event == tear_last_event_ + 1 &&
             tear_depth_ < config_.tear_burst) {
    ++tear_depth_;
  } else {
    if (tear_depth_ > 0) tear_closed_ = true;
    return;
  }
  tear_last_event_ = event;
  const std::size_t bytes = injector_->torn_bytes(line);
  if (bytes == 0) return;  // this line drops entirely instead of tearing
  shadow_.flush_line_torn(line, bytes);
}

void CrashRig::note_fence() {
  std::lock_guard<std::mutex> lock(shadow_mutex_);
  if (tear_depth_ > 0) tear_closed_ = true;
}

const core::FaultStats& CrashRig::fault_stats(std::size_t ctx) const {
  return contexts_[ctx]->faults;
}

bool CrashRig::flush_degraded(std::size_t ctx) const {
  return contexts_[ctx]->flush_degraded;
}

bool CrashRig::log_degraded(std::size_t ctx) const {
  return contexts_[ctx]->log_degraded;
}

bool CrashRig::commit_suspended(std::size_t ctx) const {
  return contexts_[ctx]->commit_suspended;
}

std::uint64_t CrashRig::claim_event() {
  if (!counting_) return 0;
  const std::uint64_t e = events_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!powered(e) && deterministic() && !shadow_.frozen()) {
    // Deterministic runs execute entirely on this thread, so the first
    // post-freeze event is a single well-defined instant: cut the shadow
    // image's power too, closing every conceivable write-back path.
    shadow_.freeze();
  }
  return e;
}

void CrashRig::recover_all() {
  if (recovered_) return;
  recovered_ = true;
  // Quiesce the pipeline first: write-backs of lines that were still
  // queued at the freeze point claim post-freeze event indices and drop —
  // power failed with those writes in flight, they never persist.
  for (auto& c : contexts_) {
    if (c->flush_channel) c->flush_channel->wait_drained();
  }
  shadow_.crash();  // everything unflushed is gone
  // The restarted machine gets fresh media behavior: recovery's own
  // write-backs must not fail, or a crashed-again-during-recovery model
  // would leak into every oracle check. (Testing recovery-time faults is a
  // separate scenario, driven explicitly.)
  shadow_.set_fault_injector(nullptr);
  LiveSink rsink(&shadow_, log_shift_);
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    runtime::UndoLog log(shadow_.volatile_base() + log_offset(i),
                         config_.log_bytes, &rsink, config_.mode);
    if (!log.valid()) {
      // Stillborn context: its header line went bad before format() could
      // persist. Sound, not silent data loss — every sync of this log
      // failed, so the gating LogOrderedSink never let one of its data
      // flushes through; the region's durable image is still all-initial.
      NVC_REQUIRE(injector_ != nullptr, "log segment lost its format");
      continue;
    }
    if (log.needs_recovery()) {
      log.rollback(
          [&](std::uint64_t token, const void* payload, std::uint32_t len) {
            shadow_.store(token, payload, len);
          });
    }
  }
  shadow_.flush_all();
}

std::vector<std::uint8_t> CrashRig::recovered_data(std::size_t ctx) {
  recover_all();
  std::vector<std::uint8_t> out(data_bytes());
  shadow_.load_durable(data_offset(ctx), out.data(), out.size());
  return out;
}

std::vector<std::uint8_t> CrashRig::durable_data(std::size_t ctx) const {
  std::vector<std::uint8_t> out(data_bytes());
  shadow_.load_durable(data_offset(ctx), out.data(), out.size());
  return out;
}

std::vector<std::uint8_t> CrashRig::durable_image() const {
  std::vector<std::uint8_t> out(shadow_.size());
  shadow_.load_durable(0, out.data(), out.size());
  return out;
}

std::uint64_t CrashRig::data_flushes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : contexts_) {
    total += c->data_sink.flushes.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t CrashRig::log_fences() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : contexts_) {
    total += c->log_sink.fences.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t CrashRig::bypassed_stores() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : contexts_) {
    total += c->policy->counters().bypassed;
  }
  return total;
}

std::uint64_t CrashRig::elided_flushes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : contexts_) {
    if (c->eliding) total += c->eliding->elided_count();
  }
  return total;
}

std::uint64_t CrashRig::elision_reflushes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& c : contexts_) {
    if (c->eliding) total += c->eliding->reflushed_count();
  }
  return total;
}

}  // namespace nvc::testing
