// Tests for the FASE runtime: instrumented stores, nesting, per-thread
// contexts, undo logging, and crash recovery across a real process abort
// (fork + _exit on the tmpfs-backed region, the paper's emulation model).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "common/barrier.hpp"
#include "pmem/pmem_region.hpp"
#include "runtime/pvar.hpp"
#include "runtime/runtime.hpp"

namespace nvc::runtime {
namespace {

std::string unique_name(const char* base) {
  static int counter = 0;
  return std::string(base) + "." + std::to_string(::getpid()) + "." +
         std::to_string(counter++);
}

RuntimeConfig quick_config(const std::string& name) {
  RuntimeConfig config;
  config.region_name = name;
  config.region_size = 4u << 20;
  config.policy = core::PolicyKind::kSoftCacheOffline;
  config.policy_config.cache_size = 8;
  config.flush = pmem::FlushKind::kCountOnly;
  return config;
}

class RuntimeTest : public ::testing::Test {
 protected:
  RuntimeTest() : name_(unique_name("rt")) {}
  ~RuntimeTest() override {
    pmem::PmemRegion::destroy(name_);
    pmem::PmemRegion::destroy(name_ + ".log");
  }
  std::string name_;
};

TEST_F(RuntimeTest, PstoreWritesAndCounts) {
  Runtime rt(quick_config(name_));
  auto* x = rt.pm_new<std::uint64_t>();
  {
    FaseScope fase(rt);
    rt.pstore(*x, std::uint64_t{42});
  }
  EXPECT_EQ(*x, 42u);
  rt.thread_flush();
  const RuntimeStats s = rt.stats();
  EXPECT_EQ(s.stores, 1u);
  EXPECT_EQ(s.fases, 1u);
  EXPECT_GE(s.flushes, 1u);
  rt.destroy_storage();
}

TEST_F(RuntimeTest, MultiLineStoreReportsEachLine) {
  Runtime rt(quick_config(name_));
  auto* buf = static_cast<char*>(rt.pm_alloc(256));
  {
    FaseScope fase(rt);
    char data[200] = {1};
    rt.pstore(buf, data, sizeof data);
  }
  // 200 bytes span 4 cache lines (alloc is 16-aligned, so up to 5).
  const RuntimeStats s = rt.stats();
  EXPECT_GE(s.stores, 4u);
  EXPECT_LE(s.stores, 5u);
  rt.destroy_storage();
}

TEST_F(RuntimeTest, NestedFasesFlushOnlyAtOutermostEnd) {
  RuntimeConfig config = quick_config(name_);
  config.policy = core::PolicyKind::kLazy;
  Runtime rt(config);
  auto* x = rt.pm_new<std::uint64_t>();
  {
    FaseScope outer(rt);
    rt.pstore(*x, std::uint64_t{1});
    {
      FaseScope inner(rt);
      rt.pstore(*x, std::uint64_t{2});
    }
    // Inner end must NOT have flushed (lazy flushes at outermost end only).
    EXPECT_EQ(rt.stats().flushes, 0u);
    rt.pstore(*x, std::uint64_t{3});
  }
  EXPECT_EQ(rt.stats().flushes, 1u);  // one distinct line
  EXPECT_EQ(rt.stats().fases, 1u);    // one outermost FASE
  rt.destroy_storage();
}

TEST_F(RuntimeTest, PerThreadContextsAreIndependent) {
  Runtime rt(quick_config(name_));
  constexpr std::size_t kThreads = 4;
  auto* arr = static_cast<std::uint64_t*>(
      rt.pm_alloc(kThreads * 8 * sizeof(std::uint64_t)));
  ThreadTeam::run(kThreads, [&](std::size_t tid) {
    for (int rep = 0; rep < 100; ++rep) {
      FaseScope fase(rt);
      rt.pstore(arr[tid * 8], static_cast<std::uint64_t>(rep));
    }
  });
  const RuntimeStats s = rt.stats();
  EXPECT_EQ(s.threads, kThreads);
  EXPECT_EQ(s.stores, 400u);
  EXPECT_EQ(s.fases, 400u);
  rt.destroy_storage();
}

TEST_F(RuntimeTest, PvarAssignmentRoutesThroughRuntime) {
  Runtime rt(quick_config(name_));
  auto* loc = rt.pm_new<int>();
  PRef<int> ref(rt, loc);
  {
    FaseScope fase(rt);
    ref = 7;
    ref += 3;
  }
  EXPECT_EQ(ref.get(), 10);
  EXPECT_EQ(rt.stats().stores, 2u);
  rt.destroy_storage();
}

TEST_F(RuntimeTest, PArrayAllocatesAndStores) {
  Runtime rt(quick_config(name_));
  auto arr = PArray<double>::allocate(rt, 64);
  {
    FaseScope fase(rt);
    for (std::size_t i = 0; i < arr.size(); ++i) {
      arr[i] = static_cast<double>(i) * 1.5;
    }
  }
  EXPECT_DOUBLE_EQ(arr.read(10), 15.0);
  EXPECT_EQ(rt.stats().stores, 64u);
  rt.destroy_storage();
}

TEST_F(RuntimeTest, RootSurvivesRuntimeReopen) {
  {
    Runtime rt(quick_config(name_));
    auto* x = rt.pm_new<std::uint64_t>();
    {
      FaseScope fase(rt);
      rt.pstore(*x, std::uint64_t{0xabcdef});
    }
    rt.set_root(x);
    rt.thread_flush();
  }
  RuntimeConfig reopen = quick_config(name_);
  reopen.fresh = false;
  Runtime rt(reopen);
  auto* x = static_cast<std::uint64_t*>(rt.get_root());
  ASSERT_NE(x, nullptr);
  EXPECT_EQ(*x, 0xabcdefu);
  rt.destroy_storage();
}

// --- undo logging -----------------------------------------------------------------

TEST_F(RuntimeTest, UndoLogRecordsAndCommits) {
  RuntimeConfig config = quick_config(name_);
  config.undo_logging = true;
  Runtime rt(config);
  auto* x = rt.pm_new<std::uint64_t>();
  {
    FaseScope fase(rt);
    rt.pstore(*x, std::uint64_t{5});
    rt.pstore(*x, std::uint64_t{6});
  }
  const RuntimeStats s = rt.stats();
  EXPECT_EQ(s.log_records, 2u);
  EXPECT_FALSE(rt.needs_recovery());  // committed at FASE end
  rt.destroy_storage();
}

TEST_F(RuntimeTest, RecoveryRollsBackUncommittedFase) {
  RuntimeConfig config = quick_config(name_);
  config.undo_logging = true;
  std::uint64_t root_offset = 0;
  {
    Runtime rt(config);
    auto* x = rt.pm_new<std::uint64_t>();
    rt.set_root(x);
    {
      FaseScope fase(rt);
      rt.pstore(*x, std::uint64_t{111});
    }
    // Simulate a crash mid-FASE: begin, store, and *never* end the FASE.
    rt.fase_begin();
    rt.pstore(*x, std::uint64_t{999});
    EXPECT_EQ(*x, 999u);
    root_offset = rt.allocator().offset_of(x);
    // Runtime destroyed with the FASE open — like a process kill. (The
    // region files survive; the undo log still holds the record.)
  }

  RuntimeConfig reopen = config;
  reopen.fresh = false;
  Runtime rt(reopen);
  EXPECT_TRUE(rt.needs_recovery());
  const std::size_t undone = rt.recover();
  EXPECT_EQ(undone, 1u);
  EXPECT_FALSE(rt.needs_recovery());
  auto* x = rt.allocator().resolve<std::uint64_t>(root_offset);
  EXPECT_EQ(*x, 111u);  // rolled back to the last committed value
  rt.destroy_storage();
}

TEST_F(RuntimeTest, RecoveryAcrossRealProcessCrash) {
  // Fork a child that dies with _exit inside a FASE; the parent recovers.
  // This exercises real persistence across process termination on the
  // tmpfs-backed region (the paper's emulation of NVRAM durability).
  RuntimeConfig config = quick_config(name_);
  config.undo_logging = true;
  config.flush = pmem::default_flush_kind();  // real flushes in the child

  {
    // Parent formats the region and seeds the committed value.
    Runtime rt(config);
    auto* x = rt.pm_new<std::uint64_t>();
    rt.set_root(x);
    FaseScope fase(rt);
    rt.pstore(*x, std::uint64_t{1000});
  }

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    // Child: reopen, start a FASE, clobber the value, die without commit.
    RuntimeConfig child = config;
    child.fresh = false;
    Runtime rt(child);
    auto* x = static_cast<std::uint64_t*>(rt.get_root());
    rt.fase_begin();
    rt.pstore(*x, std::uint64_t{2000});
    ::_exit(0);  // no FASE end, no destructors: a hard crash
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);

  RuntimeConfig reopen = config;
  reopen.fresh = false;
  Runtime rt(reopen);
  EXPECT_TRUE(rt.needs_recovery());
  rt.recover();
  auto* x = static_cast<std::uint64_t*>(rt.get_root());
  EXPECT_EQ(*x, 1000u);  // the uncommitted 2000 was rolled back
  rt.destroy_storage();
}

TEST_F(RuntimeTest, BatchedLogFencesScaleWithEpochsNotRecords) {
  // The tentpole counter assertion: a write-heavy FASE workload (high line
  // reuse, so the cache absorbs the stores and each FASE is one flush
  // epoch) must show strict-mode log traffic O(records) and batched-mode
  // traffic O(epochs).
  constexpr int kFaseCount = 50;
  constexpr int kStoresPerFase = 20;
  constexpr std::uint64_t kRecords = kFaseCount * kStoresPerFase;

  RuntimeStats stats[2];
  int i = 0;
  for (const LogSyncMode mode : {LogSyncMode::kStrict, LogSyncMode::kBatched}) {
    const std::string region = name_ + "." + to_string(mode);
    RuntimeConfig config = quick_config(region);
    config.undo_logging = true;
    config.log_sync = mode;
    Runtime rt(config);
    // 4 lines, cache capacity 8: every line stays cached until FASE end.
    auto* arr = static_cast<std::uint64_t*>(rt.pm_alloc(4 * kCacheLineSize));
    for (int f = 0; f < kFaseCount; ++f) {
      FaseScope fase(rt);
      for (int s = 0; s < kStoresPerFase; ++s) {
        rt.pstore(arr[(s % 4) * 8], static_cast<std::uint64_t>(f * 100 + s));
      }
    }
    stats[i++] = rt.stats();
    rt.destroy_storage();
  }
  const RuntimeStats& strict = stats[0];
  const RuntimeStats& batched = stats[1];

  ASSERT_EQ(strict.log_records, kRecords);
  ASSERT_EQ(batched.log_records, kRecords);
  // Strict syncs once per record (2 fences each) plus one commit per FASE.
  EXPECT_EQ(strict.log_syncs, kRecords);
  EXPECT_EQ(strict.log_fences, 2 * kRecords + kFaseCount);
  // Batched syncs once per epoch — here exactly one per FASE, at the first
  // data-line flush of the end-of-FASE flush burst.
  EXPECT_EQ(batched.log_syncs, static_cast<std::uint64_t>(kFaseCount));
  EXPECT_EQ(batched.log_fences,
            static_cast<std::uint64_t>(2 * kFaseCount + kFaseCount));
  // Batching must not change the data-line traffic the paper measures.
  EXPECT_EQ(strict.flushes, batched.flushes);
  EXPECT_EQ(strict.stores, batched.stores);
}

TEST_F(RuntimeTest, BatchedRecoveryAcrossRealProcessCrash) {
  // The fork-crash test under the batched protocol: the child dies inside
  // a FASE with records appended but never explicitly synced. On the
  // tmpfs-backed region (the eADR-style emulation model) the appended
  // bytes survive, and the self-certifying entry walk must find and roll
  // them back even though the durable tail was never advanced.
  RuntimeConfig config = quick_config(name_);
  config.undo_logging = true;
  config.log_sync = LogSyncMode::kBatched;
  config.flush = pmem::default_flush_kind();

  {
    Runtime rt(config);
    auto* x = rt.pm_new<std::uint64_t>();
    rt.set_root(x);
    FaseScope fase(rt);
    rt.pstore(*x, std::uint64_t{1000});
  }

  const pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    RuntimeConfig child = config;
    child.fresh = false;
    Runtime rt(child);
    auto* x = static_cast<std::uint64_t*>(rt.get_root());
    rt.fase_begin();
    rt.pstore(*x, std::uint64_t{2000});
    rt.persist_barrier();  // forces one ordered sync mid-FASE
    rt.pstore(*x, std::uint64_t{3000});  // appended, never synced
    ::_exit(0);  // no FASE end, no destructors: a hard crash
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);

  RuntimeConfig reopen = config;
  reopen.fresh = false;
  Runtime rt(reopen);
  EXPECT_TRUE(rt.needs_recovery());
  EXPECT_EQ(rt.recover(), 2u);  // both the synced and the unsynced record
  auto* x = static_cast<std::uint64_t*>(rt.get_root());
  EXPECT_EQ(*x, 1000u);
  rt.destroy_storage();
}

TEST_F(RuntimeTest, ContextFastPathSurvivesAlternatingRuntimes) {
  // One thread alternating between two live runtimes must keep each
  // runtime's per-thread state (policy counters, log) separate — the
  // single-entry thread-local context cache may only ever miss, never
  // alias.
  const std::string other_name = unique_name("rt");
  Runtime a(quick_config(name_));
  Runtime b(quick_config(other_name));
  auto* xa = a.pm_new<std::uint64_t>();
  auto* xb = b.pm_new<std::uint64_t>();
  for (std::uint64_t i = 0; i < 64; ++i) {
    {
      FaseScope fase(a);
      a.pstore(*xa, i);
    }
    {
      FaseScope fase(b);
      b.pstore(*xb, i * 2);
    }
  }
  EXPECT_EQ(*xa, 63u);
  EXPECT_EQ(*xb, 126u);
  EXPECT_EQ(a.stats().stores, 64u);
  EXPECT_EQ(a.stats().fases, 64u);
  EXPECT_EQ(b.stats().stores, 64u);
  EXPECT_EQ(b.stats().fases, 64u);
  a.destroy_storage();
  b.destroy_storage();
  pmem::PmemRegion::destroy(other_name);
  pmem::PmemRegion::destroy(other_name + ".log");
}

TEST_F(RuntimeTest, StatsAggregateCacheSizes) {
  RuntimeConfig config = quick_config(name_);
  config.policy = core::PolicyKind::kSoftCacheOffline;
  config.policy_config.cache_size = 23;
  Runtime rt(config);
  auto* x = rt.pm_new<std::uint64_t>();
  {
    FaseScope fase(rt);
    rt.pstore(*x, std::uint64_t{1});
  }
  const RuntimeStats s = rt.stats();
  ASSERT_EQ(s.cache_sizes.size(), 1u);
  EXPECT_EQ(s.cache_sizes[0], 23u);
  rt.destroy_storage();
}

TEST_F(RuntimeTest, PersistBarrierFlushesMidFase) {
  RuntimeConfig config = quick_config(name_);
  config.policy = core::PolicyKind::kLazy;
  Runtime rt(config);
  auto* x = rt.pm_new<std::uint64_t>();
  {
    FaseScope fase(rt);
    rt.pstore(*x, std::uint64_t{1});
    EXPECT_EQ(rt.stats().flushes, 0u);
    rt.persist_barrier();  // LMDB-style ordering point
    EXPECT_EQ(rt.stats().flushes, 1u);
    rt.pstore(*x, std::uint64_t{2});
  }
  EXPECT_EQ(rt.stats().flushes, 2u);  // barrier + FASE end
  EXPECT_EQ(rt.stats().fases, 1u);    // barrier is not a FASE boundary
  rt.destroy_storage();
}

TEST_F(RuntimeTest, FaseEndWithoutBeginDies) {
  Runtime rt(quick_config(name_));
  EXPECT_DEATH(rt.fase_end(), "fase_begin");
  rt.destroy_storage();
}

}  // namespace
}  // namespace nvc::runtime
