// Tests for the workload layer: trace recording, determinism, replay through
// policies, the cost-model replay, and the paper's qualitative per-workload
// properties (flush-ratio ordering, FASE scaling with threads).
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "workloads/replay.hpp"
#include "workloads/workload.hpp"

namespace nvc::workloads {
namespace {

WorkloadParams quick_params(std::size_t threads = 1) {
  WorkloadParams p;
  p.threads = threads;
  p.seed = 7;
  p.full = false;
  return p;
}

TraceApi record(const std::string& name, const WorkloadParams& p,
                std::size_t arena_mb = 64) {
  TraceApi api(p.threads, arena_mb << 20);
  make_workload(name)->run(api, p);
  return api;
}

TEST(Registry, AllElevenWorkloadsRegistered) {
  const auto names = workload_names();
  EXPECT_EQ(names.size(), 11u);
  for (const auto& name : names) {
    EXPECT_NE(make_workload(name), nullptr) << name;
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_workload("radiosity"), std::out_of_range);
}

TEST(TraceApiTest, RecordsStoresAndFases) {
  TraceApi api(1);
  auto* p = static_cast<std::uint64_t*>(api.alloc(0, 64));
  {
    ApiFase fase(api, 0);
    api.store(0, p[0], std::uint64_t{1});
    api.store(0, p[1], std::uint64_t{2});  // same line: two store events
  }
  const ThreadTrace& t = api.trace(0);
  EXPECT_EQ(t.store_count, 2u);
  EXPECT_EQ(t.fase_count, 1u);
  std::vector<LineAddr> stores;
  std::vector<std::size_t> boundaries;
  t.store_trace(&stores, &boundaries);
  ASSERT_EQ(stores.size(), 2u);
  EXPECT_EQ(stores[0], stores[1]);  // same cache line
  EXPECT_EQ(boundaries, (std::vector<std::size_t>{2}));
}

TEST(TraceApiTest, MultiLineWroteSplitsPerLine) {
  TraceApi api(1);
  auto* p = api.alloc(0, 256);
  ApiFase fase(api, 0);
  api.wrote(0, p, 130);  // 64-aligned arena: 3 lines
  EXPECT_EQ(api.trace(0).store_count, 3u);
}

TEST(TraceApiTest, ComputeEventsCoalesce) {
  TraceApi api(1);
  api.compute(0, 10);
  api.compute(0, 20);
  EXPECT_EQ(api.trace(0).events.size(), 1u);
  EXPECT_EQ(api.trace(0).compute_instr, 30u);
}

TEST(TraceApiTest, ArenaAllocationsAreLineAligned) {
  TraceApi api(1);
  for (int i = 0; i < 10; ++i) {
    const auto addr = reinterpret_cast<std::uintptr_t>(api.alloc(0, 17));
    EXPECT_EQ(addr % kCacheLineSize, 0u);
  }
}

// --- determinism -------------------------------------------------------------------

class WorkloadDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadDeterminism, SameSeedSameTrace) {
  const auto p = quick_params();
  const TraceApi a = record(GetParam(), p);
  const TraceApi b = record(GetParam(), p);
  ASSERT_EQ(a.trace(0).events.size(), b.trace(0).events.size());
  ASSERT_EQ(a.total_stores(), b.total_stores());
  for (std::size_t i = 0; i < a.trace(0).events.size(); ++i) {
    const auto& ea = a.trace(0).events[i];
    const auto& eb = b.trace(0).events[i];
    ASSERT_EQ(static_cast<int>(ea.kind), static_cast<int>(eb.kind)) << i;
    if (ea.kind == TraceEvent::Kind::kStore ||
        ea.kind == TraceEvent::Kind::kLoad) {
      // Arena allocation order is deterministic, so line addresses match
      // relative to the arena base; compare offsets by subtracting bases.
      ASSERT_EQ(ea.value - a.arena_base_line(), eb.value - b.arena_base_line())
          << i;
    } else {
      ASSERT_EQ(ea.value, eb.value) << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadDeterminism,
                         ::testing::Values("persistent-array", "queue",
                                           "hash", "linked-list", "ocean",
                                           "volrend"));

// --- workload sanity ----------------------------------------------------------------

class WorkloadSanity : public ::testing::TestWithParam<std::string> {};

TEST_P(WorkloadSanity, ProducesStoresAndFases) {
  const auto p = quick_params();
  const TraceApi api = record(GetParam(), p);
  EXPECT_GT(api.total_stores(), 1000u) << GetParam();
  std::uint64_t fases = 0;
  for (std::size_t tid = 0; tid < api.threads(); ++tid) {
    fases += api.trace(tid).fase_count;
  }
  EXPECT_GE(fases, 1u) << GetParam();
}

TEST_P(WorkloadSanity, FlushRatioOrderingHolds) {
  // Paper Table III ordering per benchmark: LA <= SC* <= AT <= ER = 1.
  // (SC* = SC-offline at its knee; online SC converges to it.)
  const auto p = quick_params();
  const TraceApi api = record(GetParam(), p);

  core::PolicyConfig config;
  config.atlas_table_size = 8;
  const auto er = replay_flush_count_all(api, core::PolicyKind::kEager);
  const auto la = replay_flush_count_all(api, core::PolicyKind::kLazy);
  const auto at =
      replay_flush_count_all(api, core::PolicyKind::kAtlas, config);

  // Choose SC's size from the recorded trace (offline analysis), exactly as
  // SC-offline does.
  std::vector<LineAddr> stores;
  std::vector<std::size_t> boundaries;
  api.trace(0).store_trace(&stores, &boundaries);
  const auto knee = core::BurstSampler::analyze_offline(
      stores, boundaries, core::KneeConfig{}, nullptr);
  config.cache_size = knee.chosen_size;
  const auto sc = replay_flush_count_all(
      api, core::PolicyKind::kSoftCacheOffline, config);

  EXPECT_DOUBLE_EQ(er.flush_ratio(), 1.0) << GetParam();
  EXPECT_LE(la.flushes, sc.flushes) << GetParam();
  EXPECT_LE(sc.flushes, at.flushes * 11 / 10) << GetParam();  // SC <~ AT
  EXPECT_LE(at.flushes, er.flushes) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadSanity,
                         ::testing::Values("linked-list", "persistent-array",
                                           "queue", "hash", "barnes", "fmm",
                                           "ocean", "raytrace", "volrend",
                                           "water-nsquared",
                                           "water-spatial"));

// --- paper-specific shapes -----------------------------------------------------------

TEST(PersistentArray, AtlasFlushRatioNearOneSixteenth) {
  // Paper Section IV-B: Atlas removes ~15/16 of flushes on persistent-array
  // (16 ints per line); SC at the working-set size removes almost all.
  const TraceApi api = record("persistent-array", quick_params());
  core::PolicyConfig config;
  config.atlas_table_size = 8;
  const auto at =
      replay_flush_count_all(api, core::PolicyKind::kAtlas, config);
  EXPECT_NEAR(at.flush_ratio(), 0.0625, 0.01);

  config.cache_size = 26;
  const auto sc = replay_flush_count_all(
      api, core::PolicyKind::kSoftCacheOffline, config);
  EXPECT_LT(sc.flush_ratio(), 0.001);
}

TEST(StrongScaling, TotalStoresStableFasesGrowWithThreads) {
  // Paper Table IV analysis: SPLASH2 is strong scaling — stores stay ~the
  // same while FASE count grows with the thread count.
  const TraceApi one = record("ocean", quick_params(1));
  const TraceApi four = record("ocean", quick_params(4));

  auto totals = [](const TraceApi& api) {
    std::uint64_t stores = 0, fases = 0;
    for (std::size_t t = 0; t < api.threads(); ++t) {
      stores += api.trace(t).store_count;
      fases += api.trace(t).fase_count;
    }
    return std::pair{stores, fases};
  };
  const auto [s1, f1] = totals(one);
  const auto [s4, f4] = totals(four);
  EXPECT_NEAR(static_cast<double>(s4) / static_cast<double>(s1), 1.0, 0.05);
  EXPECT_GT(f4, f1 * 2);
}

// --- cost-model replay ----------------------------------------------------------------

TEST(CostReplay, EagerSlowerThanBest) {
  // Table I in miniature: ER pays for every flush; BEST pays none.
  const TraceApi api = record("ocean", quick_params());
  SimConfig sim;
  const auto er = simulate_run(api, core::PolicyKind::kEager, sim);
  const auto best = simulate_run(api, core::PolicyKind::kBest, sim);
  EXPECT_GT(er.makespan_cycles(), 3.0 * best.makespan_cycles());
}

TEST(CostReplay, PolicySpeedOrdering) {
  // Fig. 4 shape: BEST >= SC >= AT >= ER in speed (cycles inverted).
  const TraceApi api = record("water-nsquared", quick_params());
  SimConfig sim;
  sim.policy.atlas_table_size = 8;
  sim.policy.cache_size = 28;
  const double er =
      simulate_run(api, core::PolicyKind::kEager, sim).makespan_cycles();
  const double at =
      simulate_run(api, core::PolicyKind::kAtlas, sim).makespan_cycles();
  const double sc = simulate_run(api, core::PolicyKind::kSoftCacheOffline,
                                 sim).makespan_cycles();
  const double best =
      simulate_run(api, core::PolicyKind::kBest, sim).makespan_cycles();
  EXPECT_LT(best, sc);
  EXPECT_LT(sc, at);
  EXPECT_LT(at, er);
}

TEST(CostReplay, ScInstructionOverheadModest) {
  // Table IV: SC runs more instructions than AT, but within ~15%.
  const TraceApi api = record("water-spatial", quick_params());
  SimConfig sim;
  sim.policy.cache_size = 23;
  const auto at = simulate_run(api, core::PolicyKind::kAtlas, sim);
  const auto sc =
      simulate_run(api, core::PolicyKind::kSoftCacheOffline, sim);
  const double ratio = static_cast<double>(sc.total_instructions()) /
                       static_cast<double>(at.total_instructions());
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.2);
}

TEST(CostReplay, FlushCountsMatchCountingReplay) {
  // The two replay substrates must agree on flush counts exactly.
  const TraceApi api = record("hash", quick_params());
  core::PolicyConfig config;
  config.cache_size = 8;
  SimConfig sim;
  sim.policy = config;
  const auto counted = replay_flush_count_all(
      api, core::PolicyKind::kSoftCacheOffline, config);
  const auto simulated =
      simulate_run(api, core::PolicyKind::kSoftCacheOffline, sim);
  EXPECT_EQ(simulated.total_flushes(), counted.flushes);
  EXPECT_EQ(simulated.total_stores(), counted.stores);
}

}  // namespace
}  // namespace nvc::workloads
