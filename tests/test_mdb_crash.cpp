// Crash-consistency tests for the full MDB stack: COW pages + barrier-
// ordered commit + checksummed alternating metas, running under each valid
// persistence policy against the ShadowPmem crash model.
//
// Method: the store runs against a PersistApi whose flushes land in a
// shadow durable image. At a chosen event index the durable image is
// *frozen* (no further flushes take effect) — exactly what a power failure
// at that instant would leave in NVRAM. The test then interprets the frozen
// image with Db::read_image and asserts that it is a structurally intact
// tree whose contents equal the state after some committed transaction
// (all-or-nothing per write transaction, the FASE guarantee).
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/policy.hpp"
#include "mdb/btree.hpp"
#include "pmem/shadow.hpp"
#include "workloads/api.hpp"

namespace nvc::mdb {
namespace {

/// PersistApi over ShadowPmem: app writes go to a real buffer (so the Db
/// functions normally), wrote() mirrors the bytes into the shadow volatile
/// image, and policy flushes persist shadow lines — unless frozen.
class ShadowApi final : public workloads::PersistApi {
 public:
  ShadowApi(std::size_t bytes, core::PolicyKind kind,
            const core::PolicyConfig& config)
      : buffer_(static_cast<char*>(std::aligned_alloc(64, bytes)),
                &std::free),
        shadow_(bytes),
        sink_(this),
        policy_(core::make_policy(kind, config)),
        capacity_(bytes) {
    std::memset(buffer_.get(), 0, bytes);
  }

  void* alloc(std::size_t, std::size_t size) override {
    const std::size_t off = align_up(cursor_, kCacheLineSize);
    NVC_REQUIRE(off + size <= capacity_, "shadow arena exhausted");
    cursor_ = off + size;
    return buffer_.get() + off;
  }

  void fase_begin(std::size_t) override { policy_->on_fase_begin(sink_); }
  void fase_end(std::size_t) override {
    ++events_;
    policy_->on_fase_end(sink_);
  }
  void persist_barrier(std::size_t) override {
    ++events_;
    policy_->flush_buffered(sink_);  // flush everything, FASE stays open
  }

  void wrote(std::size_t, const void* addr, std::size_t len) override {
    ++events_;
    const std::size_t off =
        static_cast<std::size_t>(static_cast<const char*>(addr) -
                                 buffer_.get());
    shadow_.store(off, addr, len);
    const LineAddr first = line_of(off);
    const LineAddr last = line_of(off + len - 1);
    for (LineAddr line = first; line <= last; ++line) {
      policy_->on_store(line, sink_);
    }
  }

  /// Stop persisting: everything not yet flushed is lost, as at power-off.
  void freeze_at(std::uint64_t event) { freeze_event_ = event; }
  std::uint64_t events() const noexcept { return events_; }

  /// The durable image a restarted process would map.
  std::vector<std::uint8_t> durable_image() const {
    std::vector<std::uint8_t> image(capacity_);
    shadow_.load_durable(0, image.data(), capacity_);
    return image;
  }

 private:
  class Sink final : public core::FlushSink {
   public:
    explicit Sink(ShadowApi* owner) : owner_(owner) {}
    bool flush_line(LineAddr line) override {
      if (owner_->events_ >= owner_->freeze_event_) return true;  // power off
      return owner_->shadow_.flush_line(line);
    }

   private:
    ShadowApi* owner_;
  };

  std::unique_ptr<char, decltype(&std::free)> buffer_;
  pmem::ShadowPmem shadow_;
  Sink sink_;
  std::unique_ptr<core::Policy> policy_;
  std::size_t capacity_;
  std::size_t cursor_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t freeze_event_ = ~std::uint64_t{0};
};

constexpr std::size_t kSlabPages = 192;
constexpr std::size_t kSlabBytes = kSlabPages * kPageSize;

/// Deterministic transaction script; returns per-committed-txn snapshots.
std::map<TxnId, std::map<Key, Value>> run_script(workloads::PersistApi& api,
                                                 int txns) {
  Db db(api, kSlabPages);
  std::map<TxnId, std::map<Key, Value>> snapshots;
  std::map<Key, Value> state;
  snapshots[0] = state;  // the freshly formatted, empty tree
  Rng rng(1234);
  for (int t = 0; t < txns; ++t) {
    auto txn = db.begin_write(0);
    for (int op = 0; op < 6; ++op) {
      const Key k = rng.below(500);
      if (rng.chance(0.8)) {
        const Value v = rng();
        txn.put(k, v);
        state[k] = v;
      } else {
        txn.del(k);
        state.erase(k);
      }
    }
    txn.commit();
    snapshots[db.last_committed()] = state;
  }
  return snapshots;
}

struct CrashCase {
  core::PolicyKind kind;
  double crash_fraction;  // where in the event stream the power fails
};

class MdbCrash : public ::testing::TestWithParam<CrashCase> {};

TEST_P(MdbCrash, FrozenImageIsACommittedSnapshot) {
  const CrashCase param = GetParam();
  core::PolicyConfig config;
  config.cache_size = 8;
  config.sampler.burst_length = 1u << 20;  // never adapts mid-test

  // Dry run: learn the event count and the per-txn expected snapshots.
  ShadowApi dry(kSlabBytes + (64u << 10), param.kind, config);
  const auto snapshots = run_script(dry, 40);
  const std::uint64_t total_events = dry.events();
  ASSERT_GT(total_events, 1000u);

  // Crash run: same script, durability frozen mid-stream.
  const auto freeze_at = static_cast<std::uint64_t>(
      param.crash_fraction * static_cast<double>(total_events));
  ShadowApi crashed(kSlabBytes + (64u << 10), param.kind, config);
  crashed.freeze_at(freeze_at);
  (void)run_script(crashed, 40);

  const auto image = crashed.durable_image();
  const Db::ImageContents contents =
      Db::read_image(image.data(), kSlabBytes);

  const auto it = snapshots.find(contents.txn);
  ASSERT_NE(it, snapshots.end())
      << "durable tree claims txn " << contents.txn
      << " which never committed";
  EXPECT_EQ(contents.pairs, it->second)
      << core::to_string(param.kind) << " crashed at event " << freeze_at
      << "/" << total_events;
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndCrashPoints, MdbCrash,
    ::testing::Values(
        CrashCase{core::PolicyKind::kEager, 0.05},
        CrashCase{core::PolicyKind::kEager, 0.50},
        CrashCase{core::PolicyKind::kEager, 0.95},
        CrashCase{core::PolicyKind::kLazy, 0.10},
        CrashCase{core::PolicyKind::kLazy, 0.55},
        CrashCase{core::PolicyKind::kLazy, 0.90},
        CrashCase{core::PolicyKind::kAtlas, 0.15},
        CrashCase{core::PolicyKind::kAtlas, 0.60},
        CrashCase{core::PolicyKind::kAtlas, 0.85},
        CrashCase{core::PolicyKind::kSoftCache, 0.20},
        CrashCase{core::PolicyKind::kSoftCache, 0.45},
        CrashCase{core::PolicyKind::kSoftCache, 0.80},
        CrashCase{core::PolicyKind::kSoftCacheOffline, 0.25},
        CrashCase{core::PolicyKind::kSoftCacheOffline, 0.65},
        CrashCase{core::PolicyKind::kSoftCacheOffline, 0.99}));

TEST(MdbCrash, ManyRandomCrashPointsUnderSc) {
  // Dense sweep under the paper's policy: 25 crash points spread across the
  // run, every one must yield a committed snapshot.
  core::PolicyConfig config;
  config.cache_size = 20;
  ShadowApi dry(kSlabBytes + (64u << 10), core::PolicyKind::kSoftCacheOffline,
                config);
  const auto snapshots = run_script(dry, 40);
  const std::uint64_t total_events = dry.events();

  Rng rng(77);
  for (int round = 0; round < 25; ++round) {
    // Crash any time after the store was formatted (the ctor's first ~6
    // events persist the initial metas; before that there is no store to
    // recover, just as an interrupted mkfs leaves no filesystem).
    const std::uint64_t freeze_at = 10 + rng.below(total_events - 10);
    ShadowApi crashed(kSlabBytes + (64u << 10),
                      core::PolicyKind::kSoftCacheOffline, config);
    crashed.freeze_at(freeze_at);
    (void)run_script(crashed, 40);
    const auto image = crashed.durable_image();
    const Db::ImageContents contents =
        Db::read_image(image.data(), kSlabBytes);
    const auto it = snapshots.find(contents.txn);
    ASSERT_NE(it, snapshots.end()) << "freeze " << freeze_at;
    ASSERT_EQ(contents.pairs, it->second) << "freeze " << freeze_at;
  }
}

TEST(MdbCrash, BestPolicyLosesEverything) {
  // Sanity: under BEST (no flushes ever), a crash leaves no intact meta.
  core::PolicyConfig config;
  ShadowApi api(kSlabBytes + (64u << 10), core::PolicyKind::kBest, config);
  api.freeze_at(0);  // nothing ever durable
  (void)run_script(api, 5);
  const auto image = api.durable_image();
  EXPECT_DEATH((void)Db::read_image(image.data(), kSlabBytes),
               "no intact meta");
}

}  // namespace
}  // namespace nvc::mdb
