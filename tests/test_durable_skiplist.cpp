// Durable skiplist (structures/durable_skiplist.hpp) — `ctest -L
// structures`, also in the tsan tier. The volatile tower index is pure
// acceleration: these tests pin its determinism and staleness-tolerance,
// and check the durable bottom list with the same linearizability +
// recovery machinery as the other suites.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "structures/durable_skiplist.hpp"
#include "structures/pspace.hpp"
#include "testing/history.hpp"
#include "testing/interleave.hpp"
#include "testing/linearizability.hpp"
#include "testing/seed.hpp"

namespace {

using nvc::Rng;
using nvc::structures::DurableSkiplist;
using nvc::structures::HeapPSpace;
using nvc::structures::ShadowPSpace;
using nvc::testing::check_linearizable;
using nvc::testing::HistoryRecorder;
using nvc::testing::InterleaveScheduler;
using nvc::testing::LinVerdict;
using nvc::testing::MapModel;
using nvc::testing::OpCode;
using nvc::testing::replay_hint;
using nvc::testing::seed_from_env;

TEST(DurableSkiplist, BasicOpsAndSortedRecovery) {
  ShadowPSpace ps(64 * 1024, /*elide=*/true);
  DurableSkiplist sl(ps);
  for (const std::uint64_t k : {42u, 7u, 99u, 13u, 58u}) {
    EXPECT_TRUE(sl.insert(k, k * 10));
  }
  EXPECT_FALSE(sl.insert(42, 1));  // no overwrite
  std::uint64_t v = 0;
  EXPECT_TRUE(sl.contains(13, &v));
  EXPECT_EQ(v, 130u);
  EXPECT_TRUE(sl.erase(42, &v));
  EXPECT_EQ(v, 420u);
  EXPECT_FALSE(sl.contains(42));
  // Recovery walks the durable bottom chain — already in key order.
  const auto rec = sl.recovered_contents();
  std::vector<std::uint64_t> keys;
  for (const auto& [k, val] : rec) {
    keys.push_back(k);
    EXPECT_EQ(val, k * 10);
  }
  EXPECT_EQ(keys, (std::vector<std::uint64_t>{7, 13, 58, 99}));
  EXPECT_EQ(ps.table().pending_count(), 0u);
}

TEST(DurableSkiplist, TowerHeightsAreDeterministicAndCapped) {
  for (std::uint64_t k = 1; k < 4096; ++k) {
    const std::size_t h = DurableSkiplist::height(k);
    EXPECT_EQ(h, DurableSkiplist::height(k));  // pure function of the key
    EXPECT_GE(h, 1u);
    EXPECT_LE(h, DurableSkiplist::kMaxLevel);
  }
  // A restarted process regrows the identical index from the recovered key
  // set — only possible because heights carry no RNG state.
}

TEST(DurableSkiplist, StaleTowersAfterEraseStayHarmless) {
  ShadowPSpace ps(64 * 1024, /*elide=*/true);
  DurableSkiplist sl(ps);
  for (std::uint64_t k = 1; k <= 32; ++k) ASSERT_TRUE(sl.insert(k, k));
  // Erase a band in the middle: their towers stay linked and point at
  // marked bottom nodes. Searches through them must still land correctly.
  for (std::uint64_t k = 8; k <= 24; ++k) ASSERT_TRUE(sl.erase(k));
  for (std::uint64_t k = 1; k <= 32; ++k) {
    EXPECT_EQ(sl.contains(k), k < 8 || k > 24) << "key " << k;
  }
  // Reinsert through the stale region; searches route via stale hints.
  for (std::uint64_t k = 10; k <= 14; ++k) ASSERT_TRUE(sl.insert(k, k + 1));
  for (std::uint64_t k = 10; k <= 14; ++k) {
    std::uint64_t v = 0;
    ASSERT_TRUE(sl.contains(k, &v));
    EXPECT_EQ(v, k + 1);
  }
  EXPECT_EQ(ps.table().pending_count(), 0u);
}

TEST(DurableSkiplist, TurnstileInterleavingsAreLinearizable) {
  const std::uint64_t base = seed_from_env("NVC_SEED", 20260808);
  for (int iter = 0; iter < 8; ++iter) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(iter);
    SCOPED_TRACE(replay_hint("NVC_SEED", seed));
    HeapPSpace ps(256 * 1024, /*elide=*/true);
    DurableSkiplist sl(ps);
    InterleaveScheduler sched(seed);
    ps.set_yield_hook(sched.hook());
    constexpr std::size_t kThreads = 3;
    HistoryRecorder rec(kThreads);
    std::vector<std::function<void(std::size_t)>> bodies;
    for (std::size_t i = 0; i < kThreads; ++i) {
      bodies.push_back([&, i, seed](std::size_t) {
        Rng rng(seed ^ (0x27D4EB2Fu * (i + 1)));
        for (int k = 0; k < 6; ++k) {
          const std::uint64_t key = 1 + rng.below(6);
          switch (rng.below(3)) {
            case 0: {
              const std::size_t op =
                  rec.begin(i, OpCode::kInsert, key, 100 * (i + 1) + k);
              rec.end(i, op, sl.insert(key, 100 * (i + 1) + k));
              break;
            }
            case 1: {
              const std::size_t op = rec.begin(i, OpCode::kErase, key);
              std::uint64_t v = 0;
              const bool ok = sl.erase(key, &v);
              rec.end(i, op, ok, v);
              break;
            }
            default: {
              const std::size_t op = rec.begin(i, OpCode::kContains, key);
              std::uint64_t v = 0;
              const bool ok = sl.contains(key, &v);
              rec.end(i, op, ok, v);
            }
          }
        }
      });
    }
    sched.run(bodies);
    const auto result = check_linearizable<MapModel>(rec.snapshot());
    ASSERT_EQ(result.verdict, LinVerdict::kOk) << result.detail;
    EXPECT_EQ(ps.table().pending_count(), 0u);
  }
}

TEST(DurableSkiplist, FreeRunningStressIsLinearizable) {
  const std::size_t threads = static_cast<std::size_t>(
      nvc::env_int("NVC_STRUCT_THREADS", 4));
  const std::size_t per = std::max<std::size_t>(2, 56 / threads);
  const std::uint64_t base = seed_from_env("NVC_SEED", 20260808);
  for (int round = 0; round < 3; ++round) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(round);
    SCOPED_TRACE(replay_hint("NVC_SEED", seed));
    HeapPSpace ps(512 * 1024, /*elide=*/true);
    DurableSkiplist sl(ps);
    InterleaveScheduler sched(seed, /*free_running=*/true);
    ps.set_yield_hook(sched.hook());
    HistoryRecorder rec(threads);
    std::vector<std::function<void(std::size_t)>> bodies;
    for (std::size_t i = 0; i < threads; ++i) {
      bodies.push_back([&, i, seed](std::size_t) {
        Rng rng(seed ^ (0x85EBCA77u * (i + 1)));
        for (std::size_t k = 0; k < per; ++k) {
          const std::uint64_t key = 1 + rng.below(8);
          switch (rng.below(3)) {
            case 0: {
              const std::size_t op = rec.begin(i, OpCode::kInsert, key,
                                               1000 * (i + 1) + k);
              rec.end(i, op, sl.insert(key, 1000 * (i + 1) + k));
              break;
            }
            case 1: {
              const std::size_t op = rec.begin(i, OpCode::kErase, key);
              std::uint64_t v = 0;
              const bool ok = sl.erase(key, &v);
              rec.end(i, op, ok, v);
              break;
            }
            default: {
              const std::size_t op = rec.begin(i, OpCode::kContains, key);
              std::uint64_t v = 0;
              const bool ok = sl.contains(key, &v);
              rec.end(i, op, ok, v);
            }
          }
        }
      });
    }
    sched.run(bodies);
    const auto result = check_linearizable<MapModel>(rec.snapshot());
    ASSERT_EQ(result.verdict, LinVerdict::kOk) << result.detail;
    EXPECT_EQ(ps.table().pending_count(), 0u);
  }
}

}  // namespace
