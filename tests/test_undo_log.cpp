// Direct unit tests for the durable undo log (runtime/undo_log), including
// the flush-ordering protocol checked against the shadow crash model.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/rng.hpp"
#include "pmem/flush.hpp"
#include "runtime/undo_log.hpp"

namespace nvc::runtime {
namespace {

struct LogFixture : public ::testing::Test {
  LogFixture()
      : buffer(static_cast<char*>(std::aligned_alloc(64, kSize)), &std::free),
        backend(pmem::FlushKind::kCountOnly) {
    std::memset(buffer.get(), 0, kSize);
  }

  UndoLog make_log() { return UndoLog(buffer.get(), kSize, &backend); }

  static constexpr std::size_t kSize = 16 * 1024;
  std::unique_ptr<char, decltype(&std::free)> buffer;
  pmem::FlushBackend backend;
};

TEST_F(LogFixture, FormatProducesValidEmptyLog) {
  UndoLog log = make_log();
  log.format();
  EXPECT_TRUE(log.valid());
  EXPECT_FALSE(log.needs_recovery());
  EXPECT_EQ(log.tail(), UndoLog::kHeaderSize);
}

TEST_F(LogFixture, UnformattedBufferIsInvalid) {
  UndoLog log = make_log();
  EXPECT_FALSE(log.valid());
  EXPECT_FALSE(log.needs_recovery());
}

TEST_F(LogFixture, RecordAdvancesTailAndNeedsRecovery) {
  UndoLog log = make_log();
  log.format();
  const std::uint64_t old_value = 0x1111;
  log.record(/*addr_token=*/100, &old_value, sizeof old_value);
  EXPECT_TRUE(log.needs_recovery());
  EXPECT_GT(log.tail(), UndoLog::kHeaderSize);
  EXPECT_EQ(log.records(), 1u);
}

TEST_F(LogFixture, CommitTruncates) {
  UndoLog log = make_log();
  log.format();
  const std::uint64_t v = 7;
  log.record(1, &v, sizeof v);
  log.commit();
  EXPECT_FALSE(log.needs_recovery());
  EXPECT_EQ(log.tail(), UndoLog::kHeaderSize);
}

TEST_F(LogFixture, RollbackAppliesNewestFirst) {
  UndoLog log = make_log();
  log.format();
  const std::uint64_t first = 0xAAAA;
  const std::uint64_t second = 0xBBBB;
  log.record(500, &first, sizeof first);   // older value of token 500
  log.record(500, &second, sizeof second); // newer overwrite of same token
  std::vector<std::uint64_t> applied;
  log.rollback([&](std::uint64_t token, const void* bytes, std::uint32_t len) {
    EXPECT_EQ(token, 500u);
    EXPECT_EQ(len, sizeof(std::uint64_t));
    std::uint64_t v;
    std::memcpy(&v, bytes, sizeof v);
    applied.push_back(v);
  });
  // Newest record first, so the final applied value is the *oldest* state.
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0], second);
  EXPECT_EQ(applied[1], first);
  EXPECT_FALSE(log.needs_recovery());
}

TEST_F(LogFixture, RollbackRestoresExactBytesForManyRecords) {
  UndoLog log = make_log();
  log.format();
  Rng rng(6);
  // Simulated "memory": token -> value history; rollback must restore the
  // first (oldest) logged value per token.
  std::map<std::uint64_t, std::uint32_t> oldest;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t token = rng.below(20) * 8;
    const auto value = static_cast<std::uint32_t>(rng());
    log.record(token, &value, sizeof value);
    oldest.try_emplace(token, value);
  }
  std::map<std::uint64_t, std::uint32_t> restored;
  log.rollback([&](std::uint64_t token, const void* bytes, std::uint32_t len) {
    ASSERT_EQ(len, sizeof(std::uint32_t));
    std::uint32_t v;
    std::memcpy(&v, bytes, len);
    restored[token] = v;  // later (older) applications overwrite
  });
  EXPECT_EQ(restored, oldest);
}

TEST_F(LogFixture, VariablePayloadSizes) {
  UndoLog log = make_log();
  log.format();
  std::vector<char> payload(UndoLog::kMaxPayload, 'x');
  log.record(0, payload.data(), 1);
  log.record(8, payload.data(), 13);  // non-multiple-of-8 length
  log.record(16, payload.data(), UndoLog::kMaxPayload);
  std::size_t seen = 0;
  std::vector<std::uint32_t> lens;
  log.rollback([&](std::uint64_t, const void* bytes, std::uint32_t len) {
    ++seen;
    lens.push_back(len);
    EXPECT_EQ(static_cast<const char*>(bytes)[0], 'x');
  });
  EXPECT_EQ(seen, 3u);
  EXPECT_EQ(lens, (std::vector<std::uint32_t>{UndoLog::kMaxPayload, 13, 1}));
}

TEST_F(LogFixture, RecordPersistsEntryBeforeTail) {
  // Protocol check: each record() must flush the entry bytes and fence
  // before publishing the tail, and then flush the tail — at least two
  // flush+fence pairs per record.
  UndoLog log = make_log();
  log.format();
  backend.reset_counters();
  const std::uint64_t v = 1;
  log.record(0, &v, sizeof v);
  EXPECT_GE(backend.flush_count(), 2u);
  EXPECT_GE(backend.fence_count(), 2u);
}

TEST_F(LogFixture, OverflowAborts) {
  UndoLog log = make_log();
  log.format();
  std::vector<char> payload(UndoLog::kMaxPayload, 'y');
  EXPECT_DEATH(
      {
        for (int i = 0; i < 100000; ++i) {
          log.record(0, payload.data(), UndoLog::kMaxPayload);
        }
      },
      "overflow");
}

TEST_F(LogFixture, ReopenedLogSeesPriorRecords) {
  // A second UndoLog over the same bytes (a restarted process) sees the
  // uncommitted records of the first.
  {
    UndoLog log = make_log();
    log.format();
    const std::uint64_t v = 3;
    log.record(42, &v, sizeof v);
  }
  UndoLog reopened = make_log();
  EXPECT_TRUE(reopened.valid());
  EXPECT_TRUE(reopened.needs_recovery());
  std::size_t count = 0;
  reopened.rollback([&](std::uint64_t token, const void*, std::uint32_t) {
    EXPECT_EQ(token, 42u);
    ++count;
  });
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace nvc::runtime
